(* The differential fault-tolerance harness.

   The paper's safety claim — "every task always has a CPU
   implementation", so device artifacts are optimizations, never
   requirements — is only worth anything if a device-degraded run
   produces *exactly* the output of the bytecode path. This suite
   proves it by brute force: every workload runs under every
   substitution policy, healthy and under seeded fault schedules, and
   each result is compared bit-for-bit ([Stdlib.compare] on the
   interpreter value, which also treats NaN = NaN) against the
   Bytecode_only reference. *)

module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Store = Runtime.Store
module Substitute = Runtime.Substitute
module Metrics = Runtime.Metrics
module Fault = Support.Fault
module I = Lime_ir.Interp

(* Small sizes: the matrix is 12 workloads x 5 policies x 4 schedules,
   and bitwise equality doesn't get stronger with bigger inputs. *)
let test_sizes =
  [
    "saxpy", 256; "dotproduct", 256; "matmul", 8; "conv2d", 8; "nbody", 16;
    "mandelbrot", 12; "bitflip", 64; "dsp_chain", 128; "prefix_sum", 128;
    "blackscholes", 128; "fir4", 128; "crc8", 64;
  ]

let policies =
  [
    "bytecode", Substitute.Bytecode_only;
    "accel", Substitute.Prefer_accelerators;
    ( "devices(fpga,native)",
      Substitute.Prefer_devices [ Runtime.Artifact.Fpga; Runtime.Artifact.Native ]
    );
    "smallest", Substitute.Smallest_substitution;
    "adaptive", Substitute.Adaptive;
  ]

(* Seeded fault schedules: a healthy baseline, every device dead (full
   degradation to bytecode), a transient first-launch failure (the
   retry path), and a probabilistic mix across all devices including
   the wire (the re-substitution and snapshot/rewind paths, chosen by
   seed so every run of the suite exercises the same faults). *)
let schedules =
  [
    "healthy", None;
    "all-dead", Some "gpu:*:always,fpga:*:always,native:*:always";
    "transient", Some "gpu:*:n=1,fpga:*:n=1,native:*:n=1,wire:*:at=1";
    "p=0.4", Some "*:*:p=0.4,seed=20260805";
  ]

let parse_exn spec =
  match Fault.parse_spec spec with
  | Ok s -> s
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e

(* One compile per workload; engines are cheap, compiles are not. *)
let compiled_cache : (string, Compiler.compiled) Hashtbl.t = Hashtbl.create 16

let compiled_of (w : Workloads.t) =
  match Hashtbl.find_opt compiled_cache w.name with
  | Some c -> c
  | None ->
    let c = Compiler.compile w.source in
    Hashtbl.add compiled_cache w.name c;
    c

(* Run a workload on a fresh engine under (policy, schedule). The
   store is shared across engines of the same workload, so quarantine
   state must be wiped between runs; the fault schedule is process
   global, so it is cleared even on failure. *)
let run_once (w : Workloads.t) ~size ~policy ~schedule : I.v =
  let c = compiled_of w in
  Store.clear_quarantine c.Compiler.store;
  let engine = Compiler.engine ~policy ~max_retries:1 c in
  (match schedule with
  | None -> Fault.clear ()
  | Some spec -> Fault.install (parse_exn spec));
  Fun.protect
    ~finally:(fun () ->
      Fault.clear ();
      Store.clear_quarantine c.Compiler.store)
    (fun () -> Exec.call engine w.entry (w.args ~size))

let reference (w : Workloads.t) ~size =
  run_once w ~size ~policy:Substitute.Bytecode_only ~schedule:None

let check_identical ~ctx expected got =
  if Stdlib.compare expected got <> 0 then
    Alcotest.failf "%s: output diverged from bytecode reference\n  ref: %s\n  got: %s"
      ctx
      (Format.asprintf "%a" I.pp expected)
      (Format.asprintf "%a" I.pp got)

(* --- the full matrix --------------------------------------------------- *)

let test_workload_matrix name () =
  let w = Workloads.find name in
  let size = List.assoc name test_sizes in
  let expected = reference w ~size in
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun (sname, schedule) ->
          let got = run_once w ~size ~policy ~schedule in
          check_identical
            ~ctx:(Printf.sprintf "%s / %s / %s" name pname sname)
            expected got)
        schedules)
    policies

(* --- targeted protocol checks ------------------------------------------ *)

(* An always-failing accelerator set must complete via bytecode
   fallback and say so in the metrics: faults were observed, retries
   were spent, the re-substitution happened, and the quarantine list
   names the failed device. *)
let test_fallback_is_observable () =
  let w = Workloads.find "bitflip" in
  (* compute the reference first: [run_once] wipes the shared store's
     quarantine list, which this test asserts on afterwards *)
  let expected = reference w ~size:64 in
  let c = compiled_of w in
  Store.clear_quarantine c.Compiler.store;
  let engine = Compiler.engine ~policy:Substitute.Prefer_accelerators c in
  Fault.install (parse_exn "gpu:*:always,fpga:*:always,native:*:always");
  let result =
    Fun.protect
      ~finally:(fun () -> Fault.clear ())
      (fun () -> Exec.call engine w.entry (w.args ~size:64))
  in
  check_identical ~ctx:"bitflip full fallback" expected result;
  let m = Metrics.snapshot (Exec.metrics engine) in
  Alcotest.(check bool) "faults observed" true (m.device_faults > 0);
  Alcotest.(check bool) "retries spent" true (m.retries > 0);
  Alcotest.(check bool) "re-substituted" true (m.resubstitutions > 0);
  Alcotest.(check bool) "backoff accumulated" true (m.backoff_ns > 0.0);
  Alcotest.(check bool) "gpu quarantined" true
    (Store.is_quarantined c.Compiler.store ~device:Runtime.Artifact.Gpu);
  Store.clear_quarantine c.Compiler.store;
  Alcotest.(check bool) "quarantine cleared" false
    (Store.is_quarantined c.Compiler.store ~device:Runtime.Artifact.Gpu)

(* A transient fault must be absorbed by a retry: no re-substitution,
   no quarantine, and the device still does the work. *)
let test_transient_fault_retries () =
  let w = Workloads.find "saxpy" in
  let c = compiled_of w in
  Store.clear_quarantine c.Compiler.store;
  let engine = Compiler.engine ~policy:Substitute.Prefer_accelerators c in
  Fault.install (parse_exn "gpu:*:n=1");
  let result =
    Fun.protect
      ~finally:(fun () -> Fault.clear ())
      (fun () -> Exec.call engine w.entry (w.args ~size:128))
  in
  check_identical ~ctx:"saxpy transient" (reference w ~size:128) result;
  let m = Metrics.snapshot (Exec.metrics engine) in
  Alcotest.(check int) "one fault" 1 m.device_faults;
  Alcotest.(check int) "one retry" 1 m.retries;
  Alcotest.(check int) "no re-substitution" 0 m.resubstitutions;
  Alcotest.(check bool) "gpu still in service" false
    (Store.is_quarantined c.Compiler.store ~device:Runtime.Artifact.Gpu);
  Alcotest.(check bool) "gpu did the work" true (m.gpu_kernels > 0)

(* max_retries = 0 must skip straight to re-substitution. *)
let test_zero_retries_resubstitutes () =
  let w = Workloads.find "bitflip" in
  let c = compiled_of w in
  Store.clear_quarantine c.Compiler.store;
  let engine =
    Compiler.engine
      ~policy:(Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      ~max_retries:0 c
  in
  Fault.install (parse_exn "gpu:*:always");
  let result =
    Fun.protect
      ~finally:(fun () ->
        Fault.clear ();
        Store.clear_quarantine c.Compiler.store)
      (fun () -> Exec.call engine w.entry (w.args ~size:32))
  in
  check_identical ~ctx:"bitflip no retries" (reference w ~size:32) result;
  let m = Metrics.snapshot (Exec.metrics engine) in
  Alcotest.(check int) "one fault" 1 m.device_faults;
  Alcotest.(check int) "no retries" 0 m.retries;
  Alcotest.(check int) "one re-substitution" 1 m.resubstitutions

(* --- lowered map/reduce chunk faults ------------------------------------ *)

(* Killing one worker chunk mid-flight — the third of four GPU chunk
   launches of the lowered scatter/worker/gather graph — with no retry
   budget must quarantine the device, re-substitute the remaining
   chunks down the device ladder, and still reproduce the bytecode
   output bit for bit. *)
let test_chunk_fault_resubstitutes () =
  let w = Workloads.find "saxpy" in
  let expected = reference w ~size:512 in
  let c = compiled_of w in
  Store.clear_quarantine c.Compiler.store;
  let engine =
    Compiler.engine
      ~policy:(Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      ~max_retries:0 ~map_chunks:4 c
  in
  Fault.install (parse_exn "gpu:*:at=2");
  let result =
    Fun.protect
      ~finally:(fun () -> Fault.clear ())
      (fun () -> Exec.call engine w.entry (w.args ~size:512))
  in
  check_identical ~ctx:"saxpy chunk kill" expected result;
  let m = Metrics.snapshot (Exec.metrics engine) in
  Alcotest.(check int) "one fault" 1 m.device_faults;
  Alcotest.(check int) "one re-substitution" 1 m.resubstitutions;
  Alcotest.(check int) "one lowered run" 1 m.mr_runs;
  Alcotest.(check int) "four chunks" 4 m.mr_chunks;
  Alcotest.(check bool) "gpu quarantined" true
    (Store.is_quarantined c.Compiler.store ~device:Runtime.Artifact.Gpu);
  Store.clear_quarantine c.Compiler.store

(* A transient chunk fault is absorbed by a per-chunk retry: no
   re-substitution, the device stays in service and finishes every
   chunk. *)
let test_chunk_fault_retried () =
  let w = Workloads.find "saxpy" in
  let expected = reference w ~size:512 in
  let c = compiled_of w in
  Store.clear_quarantine c.Compiler.store;
  let engine =
    Compiler.engine
      ~policy:(Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      ~map_chunks:4 c
  in
  Fault.install (parse_exn "gpu:*:at=1");
  let result =
    Fun.protect
      ~finally:(fun () ->
        Fault.clear ();
        Store.clear_quarantine c.Compiler.store)
      (fun () -> Exec.call engine w.entry (w.args ~size:512))
  in
  check_identical ~ctx:"saxpy chunk retry" expected result;
  let m = Metrics.snapshot (Exec.metrics engine) in
  Alcotest.(check int) "one fault" 1 m.device_faults;
  Alcotest.(check int) "one retry" 1 m.retries;
  Alcotest.(check int) "no re-substitution" 0 m.resubstitutions;
  Alcotest.(check int) "four chunks" 4 m.mr_chunks;
  Alcotest.(check bool) "gpu did the chunks" true (m.gpu_kernels >= 4)

(* --- fault aliasing across fusion ---------------------------------------- *)

(* Fusion must not strand existing fault-injection campaigns: a spec
   written against a pre-fusion segment name (here the *middle* member
   of dsp_chain's fused run) keeps firing on the fused segment via the
   alias list in the fused launch prelude. A transient fault is
   absorbed by a retry of the fused launch; a permanent one exhausts
   the retries, unfuses the segment (observable in the metrics) and
   re-substitutes per-stage — and the output stays bit-identical
   either way. *)
let test_fused_segment_honors_prefusion_spec () =
  let w = Workloads.find "dsp_chain" in
  let expected = reference w ~size:64 in
  let member = "Dsp.offset@Dsp.run/1" in
  (* transient: one fault against the member name, absorbed in place *)
  let c = compiled_of w in
  Store.clear_quarantine c.Compiler.store;
  let engine =
    Compiler.engine
      ~policy:(Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      c
  in
  Fault.install (parse_exn (Printf.sprintf "gpu:%s:n=1" member));
  let result =
    Fun.protect
      ~finally:(fun () -> Fault.clear ())
      (fun () -> Exec.call engine w.entry (w.args ~size:64))
  in
  check_identical ~ctx:"fused transient via member spec" expected result;
  let m = Metrics.snapshot (Exec.metrics engine) in
  Alcotest.(check int) "member spec fired on fused segment" 1 m.device_faults;
  Alcotest.(check int) "retry absorbed it" 1 m.retries;
  Alcotest.(check int) "no unfuse" 0 m.unfuses;
  Alcotest.(check bool) "fused launch completed" true (m.fused_launches >= 1);
  (* permanent: retries exhaust, the segment unfuses and re-plans *)
  let c = compiled_of w in
  Store.clear_quarantine c.Compiler.store;
  let engine =
    Compiler.engine
      ~policy:(Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      c
  in
  Fault.install (parse_exn (Printf.sprintf "gpu:%s:always" member));
  let result =
    Fun.protect
      ~finally:(fun () ->
        Fault.clear ();
        Store.clear_quarantine c.Compiler.store)
      (fun () -> Exec.call engine w.entry (w.args ~size:64))
  in
  check_identical ~ctx:"fused permanent via member spec" expected result;
  let m = Metrics.snapshot (Exec.metrics engine) in
  Alcotest.(check bool) "faults observed" true (m.device_faults > 0);
  Alcotest.(check int) "segment unfused" 1 m.unfuses;
  Alcotest.(check bool) "re-substituted" true (m.resubstitutions > 0)

(* --- fault spec grammar ------------------------------------------------- *)

let test_spec_parsing () =
  let roundtrip spec =
    match Fault.parse_spec spec with
    | Error e -> Alcotest.failf "parse %S: %s" spec e
    | Ok s -> (
      match Fault.parse_spec (Fault.describe s) with
      | Ok s' ->
        Alcotest.(check string) ("canonical " ^ spec) (Fault.describe s)
          (Fault.describe s')
      | Error e -> Alcotest.failf "reparse %S: %s" (Fault.describe s) e)
  in
  List.iter roundtrip
    [
      "gpu:*:always"; "fpga:Dsp*:p=0.25,seed=42"; "wire:pcie:at=0/2";
      "*:*:p=1"; "native:X:n=3"; "gpu:a,fpga:b:at=1/2/3,seed=-1";
    ];
  let bad =
    [ ""; "gpu"; "gpu:"; "cpu:x"; "gpu:*:sometimes"; "gpu:*:p=1.5";
      "gpu:*:n=-2"; "seed=5"; "gpu:*:at=" ]
  in
  List.iter
    (fun spec ->
      match Fault.parse_spec spec with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" spec
      | Error _ -> ())
    bad;
  Alcotest.(check bool) "exact" true (Fault.segment_matches "abc" "abc");
  Alcotest.(check bool) "star" true (Fault.segment_matches "*" "anything");
  Alcotest.(check bool) "prefix" true (Fault.segment_matches "Dsp*" "Dsp.f@g/0");
  Alcotest.(check bool) "prefix miss" false (Fault.segment_matches "Dsp*" "Fir.f");
  Alcotest.(check bool) "no substring" false (Fault.segment_matches "p*" "Dsp")

(* Probabilistic decisions are a pure function of the seed: the same
   schedule injects the identical fault sequence every time, and a
   different seed gives a different sequence. *)
let test_probabilistic_determinism () =
  let w = Workloads.find "dsp_chain" in
  let counts spec =
    let c = compiled_of w in
    Store.clear_quarantine c.Compiler.store;
    let engine = Compiler.engine ~policy:Substitute.Prefer_accelerators c in
    Fault.install (parse_exn spec);
    ignore
      (Fun.protect
         ~finally:(fun () ->
           Fault.clear ();
           Store.clear_quarantine c.Compiler.store)
         (fun () -> Exec.call engine w.entry (w.args ~size:64)));
    (Metrics.snapshot (Exec.metrics engine)).Metrics.device_faults
  in
  let spec = "*:*:p=0.5,seed=1234" in
  Alcotest.(check int) "same seed, same faults" (counts spec) (counts spec);
  (* across many seeds, at least one must differ from seed=1234 — p=0.5
     decisions that never vary would mean the seed is ignored *)
  let base = counts spec in
  let varies =
    List.exists
      (fun seed -> counts (Printf.sprintf "*:*:p=0.5,seed=%d" seed) <> base)
      [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check bool) "different seeds vary" true varies

(* --- property: random schedules never break equivalence ---------------- *)

let qcheck_random_schedules =
  let open QCheck2 in
  let pool = [ "bitflip"; "dsp_chain"; "saxpy"; "prefix_sum"; "crc8" ] in
  let gen =
    Gen.tup4 (Gen.oneofl pool)
      (Gen.oneofl (List.map snd policies))
      (* clause pool crossed with a random seed *)
      (Gen.oneofl
         [
           "gpu:*:always"; "fpga:*:always"; "native:*:always"; "wire:*:at=0";
           "wire:*:at=1/3"; "gpu:*:n=1,fpga:*:n=2"; "*:*:p=0.3"; "*:*:p=0.7";
           "gpu:*:p=0.5,wire:*:at=2";
         ])
      (Gen.int_bound 1_000_000)
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:40 ~name:"random fault schedules preserve outputs" gen
       (fun (name, policy, clauses, seed) ->
         let w = Workloads.find name in
         let size = 48 in
         let schedule = Some (Printf.sprintf "%s,seed=%d" clauses seed) in
         let expected = reference w ~size in
         let got = run_once w ~size ~policy ~schedule in
         Stdlib.compare expected got = 0))

let suite =
  ( "differential",
    List.map
      (fun (name, _) ->
        Alcotest.test_case ("matrix: " ^ name) `Slow (test_workload_matrix name))
      test_sizes
    @ [
        Alcotest.test_case "full fallback is observable" `Quick
          test_fallback_is_observable;
        Alcotest.test_case "transient fault absorbed by retry" `Quick
          test_transient_fault_retries;
        Alcotest.test_case "zero retries re-substitutes at once" `Quick
          test_zero_retries_resubstitutes;
        Alcotest.test_case "lowered chunk fault re-substitutes mid-flight"
          `Quick test_chunk_fault_resubstitutes;
        Alcotest.test_case "lowered chunk fault absorbed by retry" `Quick
          test_chunk_fault_retried;
        Alcotest.test_case "pre-fusion fault specs alias onto fused segments"
          `Quick test_fused_segment_honors_prefusion_spec;
        Alcotest.test_case "fault spec grammar" `Quick test_spec_parsing;
        Alcotest.test_case "probabilistic schedules are seeded" `Quick
          test_probabilistic_determinism;
        qcheck_random_schedules;
      ] )
