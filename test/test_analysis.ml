(* Static-analysis tests: the fixpoint engine (termination, widening),
   the interval domain, value-range facts over real Lime functions,
   effect/purity inference with witness chains, the task-graph lint,
   and differential checks that the static verdicts agree with what the
   compiler and runtime actually do. *)

module Ir = Lime_ir.Ir
module Iv = Analysis.Interval
module Range = Analysis.Range
module Effects = Analysis.Effects
module Report = Analysis.Report

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile src =
  Lime_ir.Opt.optimize
    (Lime_ir.Lower.lower
       (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"t" src)))

(* --- fixpoint engine --------------------------------------------------- *)

(* A counting self-loop over the interval lattice: without widening the
   chain [0,0] ⊑ [0,1] ⊑ [0,2] ⊑ ... never stabilizes; the solver must
   widen at the loop head and terminate with an unbounded upper end. *)
let test_fixpoint_widening_terminates () =
  let module L = struct
    type t = Iv.t

    let bottom = Iv.of_bounds 1 0 (* empty interval = Bot *)
    let equal = Iv.equal
    let join = Iv.join
    let widen = Iv.widen
  end in
  let module S = Analysis.Fixpoint.Make (L) in
  let facts, stats =
    S.solve
      {
        S.size = 2;
        entries = [ 0, Iv.of_int 0 ];
        succs = (function 0 -> [ 1 ] | _ -> [ 1 ]);
        transfer = (fun n x -> if n = 1 then Iv.add x (Iv.of_int 1) else x);
        edge = (fun _ _ x -> x);
        widen_at = (fun n -> n = 1);
      }
  in
  check_bool "loop head reached" true (not (Iv.is_bot facts.(1)));
  check_bool "upper bound widened away" true (Iv.upper facts.(1) = None);
  check_bool "widening fired" true (stats.Analysis.Fixpoint.widenings >= 1);
  check_bool "terminated quickly" true (stats.Analysis.Fixpoint.iterations < 100)

(* Unreached nodes keep bottom: reachability falls out of the solve. *)
let test_fixpoint_unreachable_stays_bottom () =
  let module L = struct
    type t = Iv.t

    let bottom = Iv.of_bounds 1 0
    let equal = Iv.equal
    let join = Iv.join
    let widen = Iv.widen
  end in
  let module S = Analysis.Fixpoint.Make (L) in
  let facts, _ =
    S.solve
      {
        S.size = 3;
        entries = [ 0, Iv.of_int 7 ];
        succs = (function 0 -> [ 1 ] | _ -> []);
        transfer = (fun _ x -> x);
        edge = (fun _ _ x -> x);
        widen_at = (fun _ -> false);
      }
  in
  check_bool "node 1 reached" true (Iv.equal facts.(1) (Iv.of_int 7));
  check_bool "node 2 unreached" true (Iv.is_bot facts.(2))

(* --- interval domain --------------------------------------------------- *)

let test_interval_arithmetic () =
  let i = Iv.of_bounds in
  check_bool "add" true (Iv.equal (Iv.add (i 1 2) (i 10 20)) (i 11 22));
  check_bool "mul signs" true (Iv.equal (Iv.mul (i (-2) 3) (i 4 5)) (i (-10) 15));
  check_bool "mask" true (Iv.equal (Iv.band Iv.top (Iv.of_int 255)) (i 0 255));
  check_bool "div halves" true (Iv.equal (Iv.div (i 0 255) (Iv.of_int 2)) (i 0 127));
  check_bool "rem bound" true (Iv.equal (Iv.rem Iv.top (Iv.of_int 8)) (i (-7) 7));
  (* comparisons decide when the ranges are disjoint *)
  check_bool "lt decided" true (Iv.equal (Iv.cmp_lt (i 0 3) (i 5 9)) (Iv.of_int 1));
  check_bool "lt undecided" true (Iv.equal (Iv.cmp_lt (i 0 5) (i 3 9)) Iv.boolean);
  (* widths: unsigned when provably non-negative, else two's complement *)
  check_bool "width 255" true (Iv.width (i 0 255) = Some 8);
  check_bool "width signed" true (Iv.width (i (-4) 3) = Some 3);
  check_bool "width unbounded" true (Iv.width Iv.top = None)

(* --- value-range analysis over Lime functions -------------------------- *)

let range_src =
  {|
class R {
  local static int mask(int x) { return x & 255; }
  local static int clamp(int x) {
    if (x < 10) { return x; }
    return 0;
  }
  local static int inBounds(int n) {
    int[] a = new int[8];
    return a[n & 7];
  }
  local static int alwaysOut(int n) {
    int[] a = new int[4];
    return a[5];
  }
}
|}

let test_range_return_intervals () =
  let prog = compile range_src in
  let ret = Range.return_interval prog "R.mask" ~args:[ Iv.top ] in
  check_bool "mask lower" true (Iv.lower ret = Some 0);
  check_bool "mask upper" true (Iv.upper ret = Some 255);
  (* branch refinement: on the true edge of [x < 10], x <= 9 *)
  let ret = Range.return_interval prog "R.clamp" ~args:[ Iv.of_bounds 0 100 ] in
  check_bool "clamp lower" true (Iv.lower ret = Some 0);
  check_bool "clamp upper" true (Iv.upper ret = Some 9)

let test_range_array_bounds () =
  let prog = compile range_src in
  let facts fn = Range.analyze_fn prog (Ir.func_exn prog fn) in
  let all_proven f =
    f.Range.ff_accesses <> []
    && List.for_all (fun (_, v) -> v = Range.Proven) f.Range.ff_accesses
  in
  check_bool "a[n & 7] of new int[8] proven" true (all_proven (facts "R.inBounds"));
  check_bool "a[5] of new int[4] flagged" true
    (List.exists
       (fun (_, v) -> v = Range.Out_of_bounds)
       (facts "R.alwaysOut").Range.ff_accesses);
  (* the GPU path marks the proof in the emitted device function *)
  let text =
    Gpu.Opencl_gen.device_function_text prog (Ir.func_exn prog "R.inBounds")
  in
  check_bool "opencl bounds banner" true
    (Test_types.contains text "proven in bounds")

(* --- effect inference -------------------------------------------------- *)

let effects_src =
  {|
class E {
  global static int pure(int x) { return x * 3; }
  global static int alloc(int n) {
    int[] a = new int[n];
    return a.length;
  }
  global static int viaAlloc(int n) { return E.alloc(n); }
}
|}

let test_effect_inference () =
  let prog = compile effects_src in
  let effects = Effects.infer prog in
  check_bool "pure has no effects" true (Effects.summary effects "E.pure" = []);
  check_bool "alloc is impure" true (Effects.summary effects "E.alloc" <> []);
  (* effects propagate to callers, and the witness names the chain *)
  match Effects.summary effects "E.viaAlloc" with
  | [] -> Alcotest.fail "E.viaAlloc should inherit its callee's effect"
  | w :: _ ->
    let text = Effects.describe_witness w in
    check_bool "witness names the effect" true
      (Test_types.contains text "allocates an array");
    check_bool "witness names the chain" true
      (Test_types.contains text "via E.viaAlloc")

(* The promotion the purity analysis buys: a pure global map target is
   GPU-suitable and actually produces a kernel artifact in the
   manifest (it used to be rejected as a type error). *)
let test_pure_global_promoted_to_gpu () =
  let src =
    {|
class G {
  global static int scale(int x) { return x * 3; }
  static int[[]] run(int[[]] xs) { return G @ scale(xs); }
}
|}
  in
  let prog = compile src in
  (match Gpu.Suitability.check_fn prog "G.scale" with
  | Gpu.Suitability.Suitable -> ()
  | Gpu.Suitability.Excluded reason ->
    Alcotest.failf "pure global excluded: %s" reason);
  let compiled = Liquid_metal.Compiler.compile src in
  let manifest = Liquid_metal.Compiler.manifest compiled in
  check_bool "gpu kernel in manifest" true
    (List.exists
       (fun (e : Runtime.Artifact.manifest_entry) ->
         e.me_device = Runtime.Artifact.Gpu
         && Test_types.contains e.me_uid "G.scale")
       manifest.Runtime.Artifact.entries);
  check_bool "no exclusions" true (manifest.Runtime.Artifact.exclusions = [])

(* --- task-graph lint --------------------------------------------------- *)

let rate0_src =
  {|
class P {
  local static int id(int x) { return x; }
  static void go(int[[]] xs) {
    int[] out = new int[4];
    var g = xs.source(0) => ([ task id ]) => out.<int>sink();
    g.finish();
  }
}
|}

let test_graphlint_rate0_is_static_error () =
  let prog = compile rate0_src in
  let report = Report.analyze prog in
  check_bool "LMA002 reported" true
    (List.exists
       (fun (d : Report.diag) ->
         d.Report.d_code = "LMA002" && d.Report.d_sev = Report.Error)
       report.Report.diags);
  check_bool "counted as error" true (Report.error_count report.Report.diags > 0)

(* Differential: the wedge the lint predicts is the wedge the runtime
   hits — the same program raises [Scheduler.Deadlock] when run. *)
let test_graphlint_agrees_with_runtime () =
  let session = Liquid_metal.Lm.load rate0_src in
  match
    Liquid_metal.Lm.run session "P.go"
      [ Liquid_metal.Lm.int_array [| 1; 2; 3 |] ]
  with
  | _ -> Alcotest.fail "rate-0 graph should deadlock"
  | exception Runtime.Scheduler.Deadlock _ -> ()

(* Differential: every function the effect analysis calls pure must
   compute the same result as the (effect-blind) interpreter — being
   promoted to a device never changes observable behaviour. *)
let test_purity_differential () =
  let src =
    {|
class D {
  global static int f(int x) { return (x * 7 + 3) & 1023; }
  static int[[]] run(int[[]] xs) { return D @ f(xs); }
}
|}
  in
  let session = Liquid_metal.Lm.load src in
  let input = Array.init 32 (fun i -> i * 5) in
  let result =
    Liquid_metal.Lm.run session "D.run"
      [ Liquid_metal.Lm.int_array input ]
  in
  let expected = Array.map (fun x -> (x * 7 + 3) land 1023) input in
  (match result with
  | Lime_ir.Interp.Prim (Wire.Value.Int_array a) ->
    check_bool "promoted map agrees with scalar evaluation" true (a = expected)
  | _ -> Alcotest.fail "expected an int array")

(* --- relational symbolic domain ---------------------------------------- *)

module Symbolic = Analysis.Symbolic
module Algebra = Analysis.Algebra
module Fusability = Analysis.Fusability

let sym_src =
  {|
class S {
  local static int sum(int[[]] xs) {
    int acc = 0;
    for (int i = 0; i < xs.length; i++) {
      acc = acc + xs[i];
    }
    return acc;
  }
  local static int[[]] iota(int n) {
    int[] idx = new int[n * n];
    for (int i = 0; i < n * n; i++) {
      idx[i] = i;
    }
    return new int[[]](idx);
  }
  local static int offByOne(int[[]] xs) {
    int acc = 0;
    for (int i = 0; i <= xs.length; i++) {
      acc = acc + xs[i];
    }
    return acc;
  }
}
|}

(* The relational domain proves the canonical induction-variable loops
   (i < xs.length, i < n * n against new int[n * n]) that the concrete
   Range domain reports Unknown — and refuses the off-by-one loop. *)
let test_symbolic_length_loops_proven () =
  let prog = compile sym_src in
  let facts fn = Symbolic.analyze_fn prog (Ir.func_exn prog fn) in
  let f = facts "S.sum" in
  check_int "sum: one access" 1 f.Symbolic.sf_total;
  check_int "sum: proven" 1 f.Symbolic.sf_proven;
  check_bool "sum: proof is relational" true (f.Symbolic.sf_relational >= 1);
  let f = facts "S.iota" in
  check_int "iota: proven" 1 f.Symbolic.sf_proven;
  let f = facts "S.offByOne" in
  check_int "off-by-one: not proven" 0 f.Symbolic.sf_proven;
  (* the same loops are beyond the concrete domain alone *)
  let r = Range.analyze_fn prog (Ir.func_exn prog "S.sum") in
  check_bool "Range alone reports Unknown" true
    (List.exists (fun (_, v) -> v = Range.Unknown) r.Range.ff_accesses)

(* The OpenCL emitter consumes the proofs: banner plus per-access
   markers, and only the proven access is marked. *)
let test_symbolic_opencl_unguarded () =
  let prog = compile sym_src in
  let text =
    Gpu.Opencl_gen.device_function_text prog (Ir.func_exn prog "S.sum")
  in
  check_bool "banner present" true (Test_types.contains text "proven in bounds");
  check_bool "unguarded marker present" true
    (Test_types.contains text "/* unguarded */");
  let text =
    Gpu.Opencl_gen.device_function_text prog (Ir.func_exn prog "S.offByOne")
  in
  check_bool "no banner without proof" false
    (Test_types.contains text "proven in bounds");
  check_bool "no marker without proof" false
    (Test_types.contains text "/* unguarded */")

(* Derived indices: the shifted-bound rule proves xs[j + off] when the
   guard's bound shifts by the same offset (j < xs.length - 2), and
   xs[j - off] from the lower bound alone (j >= 3) — while the same
   access under an unshifted guard stays unproven. *)
let derived_src =
  {|
class D {
  local static int fwd(int[[]] xs) {
    int acc = 0;
    for (int j = 0; j < xs.length - 2; j++) {
      acc = acc + xs[j + 2];
    }
    return acc;
  }
  local static int bwd(int[[]] xs) {
    int acc = 0;
    for (int j = 3; j < xs.length; j++) {
      acc = acc + xs[j - 3];
    }
    return acc;
  }
  local static int unshifted(int[[]] xs) {
    int acc = 0;
    for (int j = 0; j < xs.length; j++) {
      acc = acc + xs[j + 2];
    }
    return acc;
  }
}
|}

let test_symbolic_derived_indices () =
  let prog = compile derived_src in
  let facts fn = Symbolic.analyze_fn prog (Ir.func_exn prog fn) in
  let f = facts "D.fwd" in
  check_int "xs[j+2] under j < xs.length-2: proven" f.Symbolic.sf_total
    f.Symbolic.sf_proven;
  check_bool "forward proof is relational" true (f.Symbolic.sf_relational >= 1);
  let f = facts "D.bwd" in
  check_int "xs[j-3] under j >= 3: proven" f.Symbolic.sf_total
    f.Symbolic.sf_proven;
  let f = facts "D.unshifted" in
  check_int "xs[j+2] under j < xs.length: refused" 0 f.Symbolic.sf_proven;
  (* the proof reaches the OpenCL emitter: fwd compiles unguarded *)
  let text =
    Gpu.Opencl_gen.device_function_text prog (Ir.func_exn prog "D.fwd")
  in
  check_bool "derived access unguarded on the device" true
    (Test_types.contains text "/* unguarded */")

(* The bytecode compiler consumes the proofs: proven accesses compile
   to aload.u/astore.u, unproven ones keep the checked opcodes — and
   the unchecked path computes the same value. *)
let test_symbolic_bytecode_unchecked () =
  let prog = compile sym_src in
  let facts = Symbolic.analyze_program prog in
  let unit_ =
    Bytecode.Compile.compile_program ~proven:(Symbolic.prover facts) prog
  in
  let disasm key =
    Bytecode.Compile.disassemble
      (Ir.String_map.find key unit_.Bytecode.Compile.u_funcs)
  in
  check_bool "sum uses aload.u" true (Test_types.contains (disasm "S.sum") "aload.u");
  check_bool "iota uses astore.u" true
    (Test_types.contains (disasm "S.iota") "astore.u");
  check_bool "off-by-one stays checked" false
    (Test_types.contains (disasm "S.offByOne") "aload.u");
  let xs = Lime_ir.Interp.Prim (Wire.Value.Int_array [| 3; 5; 7; 11 |]) in
  let checked = Bytecode.Vm.run (Bytecode.Compile.compile_program prog) "S.sum" [ xs ] in
  let unchecked = Bytecode.Vm.run unit_ "S.sum" [ xs ] in
  check_bool "unchecked value identical" true
    (checked.Bytecode.Vm.value = unchecked.Bytecode.Vm.value)

(* --- algebraic-property inference -------------------------------------- *)

let algebra_src =
  {|
class A {
  local static int add(int a, int b) { return a + b; }
  local static int mn(int a, int b) { return a < b ? a : b; }
  local static int mx(int a, int b) { return a > b ? a : b; }
  local static int bxor(int a, int b) { return a ^ b; }
  local static int sub(int a, int b) { return a - b; }
  local static float fadd(float a, float b) { return a + b; }
}
|}

let test_algebra_verdicts () =
  let prog = compile algebra_src in
  let is k = Algebra.is_assoc_comm prog k in
  check_bool "int + proven" true (is "A.add");
  check_bool "int min proven" true (is "A.mn");
  check_bool "int max proven" true (is "A.mx");
  check_bool "int xor proven" true (is "A.bxor");
  check_bool "int - refused" false (is "A.sub");
  (* float addition is associative over reals, not over f32 rounding *)
  check_bool "float + refused" false (is "A.fadd")

(* --- fusability lint ---------------------------------------------------- *)

let fusable_src =
  {|
class F {
  local static int inc(int x) { return x + 1; }
  local static int dbl(int x) { return x * 2; }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1) => ([ task inc ]) => ([ task dbl ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}

let stateful_pair_src =
  {|
class Acc2 {
  int t;
  local Acc2(int s) { t = s; }
  local int push(int x) { t += x; return t; }
}
class F2 {
  local static int inc(int x) { return x + 1; }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var a = new Acc2(0);
    var g = xs.source(1) => ([ task inc ]) => ([ task a.push ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}

let test_fusability_verdicts () =
  let prog = compile fusable_src in
  let effects = Effects.infer prog in
  (match Fusability.analyze prog effects with
  | [ p ] -> (
    match p.Fusability.fz_verdict with
    | Ok _ -> ()
    | Error why -> Alcotest.failf "pure adjacent pair should fuse: %s" why)
  | ps -> Alcotest.failf "expected 1 adjacent pair, got %d" (List.length ps));
  let prog = compile stateful_pair_src in
  let effects = Effects.infer prog in
  match Fusability.analyze prog effects with
  | [ p ] -> (
    match p.Fusability.fz_verdict with
    | Error why ->
      check_bool "names the aliased state" true
        (Test_types.contains why "state")
    | Ok why -> Alcotest.failf "stateful pair must not fuse (%s)" why)
  | ps -> Alcotest.failf "expected 1 adjacent pair, got %d" (List.length ps)

(* --- lattice laws (property-based) ------------------------------------- *)

let gen_interval =
  QCheck2.Gen.(
    let* a = int_range (-64) 64 in
    let* b = int_range (-64) 64 in
    let* k = int_range 0 4 in
    return
      (match k with
      | 0 -> Iv.top
      | 1 -> Iv.of_bounds 1 0 (* bottom *)
      | 2 -> Iv.of_int a
      | 3 -> Iv.nonneg
      | _ -> Iv.of_bounds (min a b) (max a b)))

let prop_interval_lattice_laws =
  QCheck2.Test.make ~name:"interval join/meet lattice laws" ~count:500
    QCheck2.Gen.(triple gen_interval gen_interval gen_interval)
    (fun (x, y, z) ->
      Iv.equal (Iv.join x y) (Iv.join y x)
      && Iv.equal (Iv.meet x y) (Iv.meet y x)
      && Iv.equal (Iv.join x (Iv.join y z)) (Iv.join (Iv.join x y) z)
      && Iv.equal (Iv.join x x) x
      && Iv.equal (Iv.meet x x) x
      (* widening covers the join *)
      &&
      let j = Iv.join x y in
      let w = Iv.widen x j in
      Iv.equal (Iv.join w j) w)

let prop_interval_widening_terminates =
  QCheck2.Test.make ~name:"interval widening chains stabilize" ~count:500
    QCheck2.Gen.(pair gen_interval (list_size (int_range 1 12) gen_interval))
    (fun (x0, ys) ->
      (* Iterate x <- widen x (join x y): the number of strict growth
         steps is bounded by the widening ladder, not the data. *)
      let x = ref x0 and changes = ref 0 in
      List.iter
        (fun y ->
          let next = Iv.widen !x (Iv.join !x y) in
          if not (Iv.equal next !x) then incr changes;
          x := next)
        ys;
      !changes <= 4)

(* Soundness of the symbolic bounds: whenever the relational domain
   proves every access of a generated loop, the concrete interpreter
   must not trap on it — for any array length. *)
let prop_symbolic_proofs_sound =
  let gen =
    QCheck2.Gen.(
      let* start = int_range 0 2 in
      let* slack = int_range 0 2 in
      let* step = int_range 1 3 in
      let* off = int_range 0 2 in
      let* incl = bool in
      let* n = int_range 0 24 in
      return (start, slack, step, off, incl, n))
  in
  QCheck2.Test.make ~name:"symbolic proofs sound vs concrete runs" ~count:150
    gen
    (fun (start, slack, step, off, incl, n) ->
      let src =
        Printf.sprintf
          {|
class P {
  local static int f(int[[]] xs) {
    int acc = 0;
    for (int i = %d; i %s xs.length - %d; i += %d) {
      acc = acc + xs[i + %d];
    }
    return acc;
  }
}
|}
          start
          (if incl then "<=" else "<")
          slack step off
      in
      let prog = compile src in
      let facts = Symbolic.analyze_fn prog (Ir.func_exn prog "P.f") in
      let all_proven =
        facts.Symbolic.sf_total > 0
        && facts.Symbolic.sf_proven = facts.Symbolic.sf_total
      in
      let xs = Lime_ir.Interp.Prim (Wire.Value.Int_array (Array.make n 1)) in
      let ran_ok =
        match Lime_ir.Interp.call prog "P.f" [ xs ] with
        | _ -> true
        | exception Lime_ir.Interp.Runtime_error _ -> false
      in
      (not all_proven) || ran_ok)

(* --- report rendering -------------------------------------------------- *)

let test_report_json_shape () =
  let prog = compile rate0_src in
  let report = Report.analyze prog in
  let json = Report.to_json report.Report.diags in
  List.iter
    (fun needle -> check_bool needle true (Test_types.contains json needle))
    [
      "\"diagnostics\":[";
      "\"LMA002\"";
      "\"LMA010\"";
      "\"errors\":2";
      "\"severity\":\"error\"";
    ]

let suite =
  ( "analysis",
    [
      Alcotest.test_case "fixpoint widening terminates" `Quick
        test_fixpoint_widening_terminates;
      Alcotest.test_case "fixpoint unreachable bottom" `Quick
        test_fixpoint_unreachable_stays_bottom;
      Alcotest.test_case "interval arithmetic" `Quick test_interval_arithmetic;
      Alcotest.test_case "range return intervals" `Quick
        test_range_return_intervals;
      Alcotest.test_case "range array bounds" `Quick test_range_array_bounds;
      Alcotest.test_case "effect inference" `Quick test_effect_inference;
      Alcotest.test_case "pure global promoted to gpu" `Quick
        test_pure_global_promoted_to_gpu;
      Alcotest.test_case "graph lint rate 0" `Quick
        test_graphlint_rate0_is_static_error;
      Alcotest.test_case "lint agrees with runtime" `Quick
        test_graphlint_agrees_with_runtime;
      Alcotest.test_case "purity differential" `Quick test_purity_differential;
      Alcotest.test_case "report json" `Quick test_report_json_shape;
      Alcotest.test_case "symbolic length loops proven" `Quick
        test_symbolic_length_loops_proven;
      Alcotest.test_case "symbolic opencl unguarded" `Quick
        test_symbolic_opencl_unguarded;
      Alcotest.test_case "symbolic derived indices proven" `Quick
        test_symbolic_derived_indices;
      Alcotest.test_case "symbolic bytecode unchecked" `Quick
        test_symbolic_bytecode_unchecked;
      Alcotest.test_case "algebra verdicts" `Quick test_algebra_verdicts;
      Alcotest.test_case "fusability verdicts" `Quick test_fusability_verdicts;
      QCheck_alcotest.to_alcotest prop_interval_lattice_laws;
      QCheck_alcotest.to_alcotest prop_interval_widening_terminates;
      QCheck_alcotest.to_alcotest prop_symbolic_proofs_sound;
    ] )
