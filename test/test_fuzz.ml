(* Whole-program fuzzing: generate random (but always terminating)
   Lime functions with locals, branches, bounded loops and array
   traffic, then require the reference interpreter, the bytecode VM and
   the optimized bytecode VM to agree exactly — same value, or the same
   trap. This is the broad-spectrum differential net over the three
   CPU-side execution paths. *)

module I = Lime_ir.Interp
module V = Wire.Value
open QCheck2.Gen

(* --- source generator -------------------------------------------------- *)

(* Environment: names of int variables in scope. The function signature
   is fixed: f(int a, int b). An int array xs of length 8 is always
   declared first; indices are masked with (e & 7) so access never
   traps, while a dedicated "risky" form exercises trap agreement. *)

let fresh_names = [ "x"; "y"; "z"; "w"; "t0"; "t1" ]

let gen_int_expr (env : string list) : string t =
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ map string_of_int (int_range (-20) 200); oneofl env ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map2 (fun x y -> Printf.sprintf "(%s + %s)" x y) sub sub;
            map2 (fun x y -> Printf.sprintf "(%s - %s)" x y) sub sub;
            map2 (fun x y -> Printf.sprintf "(%s * %s)" x y) sub sub;
            (* guarded division: never traps *)
            map2 (fun x y -> Printf.sprintf "(%s / (1 + (%s & 15)))" x y) sub sub;
            (* risky division: may trap; all engines must agree *)
            map2 (fun x y -> Printf.sprintf "(%s / (%s %% 5))" x y) sub sub;
            map2 (fun x y -> Printf.sprintf "(%s ^ %s)" x y) sub sub;
            map2 (fun x y -> Printf.sprintf "(%s << (%s & 7))" x y) sub sub;
            map (fun x -> Printf.sprintf "(~%s)" x) sub;
            map (fun x -> Printf.sprintf "xs[%s & 7]" x) sub;
            map3
              (fun c x y -> Printf.sprintf "(%s <= %s ? %s : (0 - 3))" c x y)
              sub sub sub;
          ])

let gen_cond env =
  let* a = gen_int_expr env in
  let* b = gen_int_expr env in
  let* op = oneofl [ "<"; "<="; "=="; "!="; ">" ] in
  return (Printf.sprintf "%s %s %s" a op b)

(* Statements consume a name budget so variable declarations stay
   unique; loops use fresh loop counters i<n> with literal bounds. *)
let gen_stmts env : string t =
  let rec go depth env names loops =
    if names = [] || depth > 3 then return (env, [])
    else
      let leaf_assign =
        let* target = oneofl env in
        let* e = gen_int_expr env in
        return (env, [ Printf.sprintf "%s = %s;" target e ])
      in
      let decl =
        match names with
        | [] -> leaf_assign
        | name :: _rest ->
          let* e = gen_int_expr env in
          return (name :: env, [ Printf.sprintf "int %s = %s;" name e ])
      in
      let astore =
        let* idx = gen_int_expr env in
        let* e = gen_int_expr env in
        return (env, [ Printf.sprintf "xs[%s & 7] = %s;" idx e ])
      in
      let branch =
        let* c = gen_cond env in
        let* _, then_ = go (depth + 1) env (List.tl names) loops in
        let* _, else_ = go (depth + 1) env (List.tl names) loops in
        return
          ( env,
            [ Printf.sprintf "if (%s) {" c ]
            @ then_
            @ [ "} else {" ]
            @ else_
            @ [ "}" ] )
      in
      let loop =
        let i = Printf.sprintf "i%d" loops in
        let* bound = int_range 0 6 in
        let* _, body = go (depth + 1) env (List.tl names) (loops + 1) in
        return
          ( env,
            [ Printf.sprintf "for (int %s = 0; %s < %d; %s++) {" i i bound i ]
            @ body
            @ [ "}" ] )
      in
      let* env, first =
        if depth = 0 then decl
        else oneof [ decl; leaf_assign; astore; branch; loop ]
      in
      let* more = bool in
      if more && depth <= 1 then
        let remaining = List.filter (fun n -> not (List.mem n env)) names in
        let* env, rest = go depth env remaining loops in
        return (env, first @ rest)
      else return (env, first)
  in
  let* env, stmts = go 0 env fresh_names 0 in
  let* ret = gen_int_expr env in
  return
    (String.concat "\n      " (stmts @ [ Printf.sprintf "return %s ^ xs[0];" ret ]))

let gen_program : string t =
  let env = [ "a"; "b" ] in
  let* body = gen_stmts env in
  return
    (Printf.sprintf
       {|
class Fuzz {
  local static int f(int a, int b) {
    int[] xs = new int[8];
    xs[0] = a;
    xs[7] = b;
    %s
  }
}
|}
       body)

(* --- differential harness ---------------------------------------------- *)

type outcome = Value of V.t | Trap

let show_outcome = function
  | Value v -> V.to_string v
  | Trap -> "<trap>"

let run_engines src (a, b) : (string * outcome) list =
  let prog =
    Lime_ir.Lower.lower
      (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"fuzz" src))
  in
  let opt = Lime_ir.Opt.optimize prog in
  let args = [ I.Prim (V.Int a); I.Prim (V.Int b) ] in
  let interp p =
    match I.call p "Fuzz.f" args with
    | I.Prim v -> Value v
    | _ -> Trap
    | exception I.Runtime_error _ -> Trap
  in
  let vm p =
    match (Bytecode.Vm.run (Bytecode.Compile.compile_program p) "Fuzz.f" args).value with
    | I.Prim v -> Value v
    | _ -> Trap
    | exception I.Runtime_error _ -> Trap
    | exception Bytecode.Vm.Vm_error _ -> Trap
  in
  [
    "interp", interp prog;
    "vm", vm prog;
    "interp-opt", interp opt;
    "vm-opt", vm opt;
  ]

let prop_engines_agree =
  QCheck2.Test.make ~name:"fuzz: interp = vm = optimized (values and traps)"
    ~count:250
    ~print:(fun (src, (a, b)) ->
      Printf.sprintf "a=%d b=%d\n%s\n%s" a b src
        (String.concat "\n"
           (List.map
              (fun (n, o) -> n ^ " = " ^ show_outcome o)
              (run_engines src (a, b)))))
    (pair gen_program (pair (int_range (-100) 100) (int_range (-100) 100)))
    (fun (src, inputs) ->
      match run_engines src inputs with
      | (_, first) :: rest -> List.for_all (fun (_, o) -> o = first) rest
      | [] -> false)

(* Generated programs must also always typecheck and parse. *)
let prop_generated_programs_compile =
  QCheck2.Test.make ~name:"fuzz: generated programs compile" ~count:250
    gen_program (fun src ->
      match
        Lime_ir.Lower.lower
          (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"fuzz" src))
      with
      | _ -> true
      | exception Support.Diag.Compile_error _ -> false)

(* And survive a pretty-print/reparse cycle with identical semantics. *)
let prop_fuzz_pretty_roundtrip =
  QCheck2.Test.make ~name:"fuzz: pretty roundtrip preserves semantics"
    ~count:100
    (pair gen_program (pair (int_range (-100) 100) (int_range (-100) 100)))
    (fun (src, inputs) ->
      let printed =
        Lime_syntax.Pretty.program_to_string
          (Lime_syntax.Parser.parse ~file:"fuzz" src)
      in
      run_engines src inputs = run_engines printed inputs)

(* --- fault-schedule fuzzing -------------------------------------------- *)

(* Random seeds x random fault points over the quickstart (Figure 1
   bitflip) and image-pipeline (conv2d) task graphs: whatever the
   schedule, a run must terminate (no deadlock — the scheduler only
   returns once every actor is done, so a normal return also means no
   actor leaked) and produce the bytecode reference output. *)

let gen_fault_clause : string t =
  let* device = oneofl [ "gpu"; "fpga"; "native"; "wire"; "*" ] in
  let* when_ =
    oneof
      [
        return "always";
        map (Printf.sprintf "n=%d") (int_range 0 4);
        map
          (fun xs ->
            "at=" ^ String.concat "/" (List.map string_of_int xs))
          (list_size (int_range 1 3) (int_range 0 5));
        map (Printf.sprintf "p=%.2f") (float_range 0.0 1.0);
      ]
  in
  return (Printf.sprintf "%s:*:%s" device when_)

let gen_fault_schedule : Support.Fault.schedule t =
  let* clauses = list_size (int_range 1 3) gen_fault_clause in
  let* seed = int_range 0 1_000_000 in
  let spec = Printf.sprintf "%s,seed=%d" (String.concat "," clauses) seed in
  match Support.Fault.parse_spec spec with
  | Ok s -> return s
  | Error e -> failwith ("generator produced a bad spec: " ^ e)

let fuzz_graphs =
  lazy
    (List.map
       (fun name ->
         let w = Workloads.find name in
         name, w, Liquid_metal.Compiler.compile w.Workloads.source)
       [ "bitflip"; "conv2d" ])

let fuzz_policies =
  [
    Runtime.Substitute.Prefer_accelerators;
    Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ];
    Runtime.Substitute.Smallest_substitution;
    Runtime.Substitute.Adaptive;
  ]

let run_graph_under ?schedule compiled (w : Workloads.t) policy =
  Runtime.Store.clear_quarantine compiled.Liquid_metal.Compiler.store;
  let engine =
    Liquid_metal.Compiler.engine ~policy ~max_retries:1 compiled
  in
  (match schedule with
  | None -> Support.Fault.clear ()
  | Some s -> Support.Fault.install s);
  Fun.protect
    ~finally:(fun () ->
      Support.Fault.clear ();
      Runtime.Store.clear_quarantine compiled.Liquid_metal.Compiler.store)
    (fun () -> Runtime.Exec.call engine w.Workloads.entry (w.args ~size:24))

let prop_fault_schedules_are_harmless =
  QCheck2.Test.make
    ~name:"fuzz: fault schedules never deadlock or diverge (bitflip, conv2d)"
    ~count:60
    ~print:(fun (i, schedule, j) ->
      Printf.sprintf "graph #%d policy #%d schedule %s" i j
        (Support.Fault.describe schedule))
    (triple (int_bound 1) gen_fault_schedule
       (int_bound (List.length fuzz_policies - 1)))
    (fun (i, schedule, j) ->
      let _, w, compiled = List.nth (Lazy.force fuzz_graphs) i in
      let policy = List.nth fuzz_policies j in
      let expected =
        run_graph_under compiled w Runtime.Substitute.Bytecode_only
      in
      let got = run_graph_under ~schedule compiled w policy in
      Stdlib.compare expected got = 0)

(* --- lowered map/reduce chunk-fault fuzzing ---------------------------- *)

(* Random scatter widths x random single-launch fault points on the
   lowered saxpy map: whichever chunk (or boundary crossing) dies, the
   per-chunk recovery protocol must land on the bytecode reference. *)
let fuzz_saxpy =
  lazy
    (let w = Workloads.find "saxpy" in
     w, Liquid_metal.Compiler.compile w.Workloads.source)

let run_saxpy_under ?schedule ~policy ~chunks () =
  let w, compiled = Lazy.force fuzz_saxpy in
  Runtime.Store.clear_quarantine compiled.Liquid_metal.Compiler.store;
  let engine =
    Liquid_metal.Compiler.engine ~policy ~max_retries:1 ~map_chunks:chunks
      compiled
  in
  (match schedule with
  | None -> Support.Fault.clear ()
  | Some s -> Support.Fault.install s);
  Fun.protect
    ~finally:(fun () ->
      Support.Fault.clear ();
      Runtime.Store.clear_quarantine compiled.Liquid_metal.Compiler.store)
    (fun () -> Runtime.Exec.call engine w.Workloads.entry (w.args ~size:96))

let prop_chunk_faults_recover =
  QCheck2.Test.make
    ~name:"fuzz: killing a lowered worker chunk mid-flight recovers to bytecode"
    ~count:60
    ~print:(fun (chunks, device, at) ->
      Printf.sprintf "chunks=%d %s:*:at=%d" chunks device at)
    (triple (int_range 1 8)
       (oneofl [ "gpu"; "native"; "wire"; "*" ])
       (int_range 0 8))
    (fun (chunks, device, at) ->
      let spec = Printf.sprintf "%s:*:at=%d" device at in
      let schedule =
        match Support.Fault.parse_spec spec with
        | Ok s -> s
        | Error e -> failwith e
      in
      let expected =
        run_saxpy_under ~policy:Runtime.Substitute.Bytecode_only ~chunks:1 ()
      in
      let got =
        run_saxpy_under ~schedule
          ~policy:Runtime.Substitute.Prefer_accelerators ~chunks ()
      in
      Stdlib.compare expected got = 0)

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest prop_generated_programs_compile;
      QCheck_alcotest.to_alcotest prop_engines_agree;
      QCheck_alcotest.to_alcotest prop_fuzz_pretty_roundtrip;
      QCheck_alcotest.to_alcotest prop_fault_schedules_are_harmless;
      QCheck_alcotest.to_alcotest prop_chunk_faults_recover;
    ] )
