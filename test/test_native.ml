(* Native C backend + adaptive policy tests (paper section 5 native
   binaries; section 7 adaptive placement). *)

module Lm = Liquid_metal.Lm
module V = Wire.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let dsp = Workloads.find "dsp_chain"

let test_native_artifacts_generated () =
  let s = Lm.load dsp.Workloads.source in
  let native_entries =
    List.filter
      (fun (e : Runtime.Artifact.manifest_entry) ->
        e.me_device = Runtime.Artifact.Native)
      (Lm.manifest s).entries
  in
  (* all 6 contiguous subchains of the 3-filter pipeline *)
  check_int "native chains" 6 (List.length native_entries)

let test_native_execution_agrees () =
  let size = 128 in
  let native =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Native ])
      dsp.Workloads.source
  in
  let r = Lm.run native dsp.entry (dsp.args ~size) in
  (match dsp.validate with
  | Some validate -> (
    match validate ~size r with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg)
  | None -> ());
  check_string "plan used native" "native(3)" (Option.get (Lm.last_plan native));
  let m = Lm.metrics native in
  check_bool "native instructions charged" true (m.native_instructions > 0);
  check_bool "JNI boundary crossed" true
    (m.marshal_native.crossings_to_device > 0);
  check_int "no PCIe crossings" 0 m.marshal.crossings_to_device

let test_native_handles_stateful_and_loops () =
  (* C has no device restrictions: stateful filters and loop-bearing
     filters both get native artifacts (unlike GPU and FPGA). *)
  let prefix = Workloads.find "prefix_sum" in
  let s =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Native ])
      prefix.Workloads.source
  in
  let size = 64 in
  let r = Lm.run s prefix.entry (prefix.args ~size) in
  (match prefix.validate with
  | Some validate -> (
    match validate ~size r with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg)
  | None -> ());
  check_string "stateful chain on native" "native(1)"
    (Option.get (Lm.last_plan s))

let test_c_artifact_text () =
  let s = Lm.load dsp.Workloads.source in
  let store = Runtime.Exec.store (Lm.engine s) in
  let texts =
    List.filter_map
      (fun (e : Runtime.Artifact.manifest_entry) ->
        if e.me_device = Runtime.Artifact.Native then
          match
            Runtime.Store.find_on store ~uid:e.me_uid ~device:e.me_device
          with
          | Some (Runtime.Artifact.Native_binary n) -> Some n.na_c
          | _ -> None
        else None)
      (Lm.manifest s).entries
  in
  check_bool "c sources exist" true (texts <> []);
  List.iter
    (fun text ->
      List.iter
        (fun needle ->
          check_bool needle true (Test_types.contains text needle))
        [ "#include <stdint.h>"; "void "; "for (int32_t i = 0; i < n; i++)" ])
    texts

let test_c_artifact_stateful_struct () =
  let prefix = Workloads.find "prefix_sum" in
  let s = Lm.load prefix.Workloads.source in
  let store = Runtime.Exec.store (Lm.engine s) in
  let text =
    List.find_map
      (fun (e : Runtime.Artifact.manifest_entry) ->
        if e.me_device = Runtime.Artifact.Native then
          match
            Runtime.Store.find_on store ~uid:e.me_uid ~device:e.me_device
          with
          | Some (Runtime.Artifact.Native_binary n) -> Some n.na_c
          | _ -> None
        else None)
      (Lm.manifest s).entries
  in
  match text with
  | Some text ->
    check_bool "state struct" true (Test_types.contains text "struct Acc_state");
    check_bool "field member" true (Test_types.contains text "field_0")
  | None -> Alcotest.fail "no native artifact for prefix_sum"

let test_adaptive_policy_switches () =
  let run size =
    let s = Lm.load ~policy:Runtime.Substitute.Adaptive dsp.Workloads.source in
    ignore (Lm.run s dsp.entry (dsp.args ~size));
    Option.get (Lm.last_plan s)
  in
  check_string "tiny stream stays on bytecode" "bytecode(1 fused)" (run 4);
  check_string "small stream goes native" "native(3)" (run 64);
  check_string "large stream goes gpu" "gpu(3 stages fused)" (run 4096)

let test_adaptive_results_correct () =
  List.iter
    (fun size ->
      let s = Lm.load ~policy:Runtime.Substitute.Adaptive dsp.Workloads.source in
      let r = Lm.run s dsp.entry (dsp.args ~size) in
      match dsp.validate with
      | Some validate -> (
        match validate ~size r with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg)
      | None -> ())
    [ 4; 64; 4096 ]

let test_accelerators_beat_native_in_preference () =
  (* Prefer_accelerators: GPU first, native only when nothing else
     exists. *)
  let s = Lm.load dsp.Workloads.source in
  ignore (Lm.run s dsp.entry (dsp.args ~size:64));
  check_string "gpu chosen over native" "gpu(3 stages fused)"
    (Option.get (Lm.last_plan s))

let test_chunked_engine_agrees () =
  (* chunked device launches must be invisible in the results *)
  let size = 200 in
  let whole =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      dsp.Workloads.source
  in
  let chunked =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      ~chunk_elements:16 dsp.Workloads.source
  in
  let r1 = Lm.run whole dsp.entry (dsp.args ~size) in
  let r2 = Lm.run chunked dsp.entry (dsp.args ~size) in
  Alcotest.(check (array int)) "same samples" (Lm.as_int_array r1)
    (Lm.as_int_array r2);
  check_int "one launch unchunked" 1 (Lm.metrics whole).gpu_kernels;
  check_int "13 launches at chunk 16" 13 (Lm.metrics chunked).gpu_kernels

let test_chunked_stateful_fpga () =
  (* chunking must preserve cross-chunk state in stateful filters *)
  let prefix = Workloads.find "prefix_sum" in
  let size = 100 in
  let s =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ])
      ~chunk_elements:8 prefix.Workloads.source
  in
  let r = Lm.run s prefix.entry (prefix.args ~size) in
  (match prefix.validate with
  | Some validate -> (
    match validate ~size r with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg)
  | None -> ());
  check_bool "multiple fpga launches" true ((Lm.metrics s).fpga_runs > 1)

let suite =
  ( "native",
    [
      Alcotest.test_case "artifacts generated" `Quick test_native_artifacts_generated;
      Alcotest.test_case "execution agrees" `Quick test_native_execution_agrees;
      Alcotest.test_case "stateful and loops accepted" `Quick
        test_native_handles_stateful_and_loops;
      Alcotest.test_case "c artifact text" `Quick test_c_artifact_text;
      Alcotest.test_case "stateful state struct" `Quick
        test_c_artifact_stateful_struct;
      Alcotest.test_case "adaptive switches placement" `Quick
        test_adaptive_policy_switches;
      Alcotest.test_case "adaptive results correct" `Quick
        test_adaptive_results_correct;
      Alcotest.test_case "accelerators preferred" `Quick
        test_accelerators_beat_native_in_preference;
      Alcotest.test_case "chunked launches agree" `Quick
        test_chunked_engine_agrees;
      Alcotest.test_case "chunked stateful fpga" `Quick
        test_chunked_stateful_fpga;
    ] )
