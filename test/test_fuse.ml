(* Cross-filter fusion differential suite (docs/FUSION.md).

   Fusion is a pure optimization: collapsing a fusible run into one
   kernel must never change a single output bit, under any policy,
   stream length, or fault schedule. This suite proves it three ways:
   the full workload matrix fused vs unfused, QCheck-generated random
   fusible chains, and chunk-kill fault campaigns that force the
   unfuse path mid-stream. *)

module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Store = Runtime.Store
module Substitute = Runtime.Substitute
module Metrics = Runtime.Metrics
module Artifact = Runtime.Artifact
module Fault = Support.Fault
module Lm = Liquid_metal.Lm
module I = Lime_ir.Interp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let parse_exn spec =
  match Fault.parse_spec spec with
  | Ok s -> s
  | Error e -> Alcotest.failf "bad fault spec %S: %s" spec e

(* One compile per (workload, fuse); engines are cheap, compiles are
   not. *)
let compiled_cache : (string * bool, Compiler.compiled) Hashtbl.t =
  Hashtbl.create 32

let compiled_of ~fuse (w : Workloads.t) =
  match Hashtbl.find_opt compiled_cache (w.name, fuse) with
  | Some c -> c
  | None ->
    let c = Compiler.compile ~fuse w.source in
    Hashtbl.add compiled_cache (w.name, fuse) c;
    c

let run_once ~fuse (w : Workloads.t) ~size ~policy : I.v =
  let c = compiled_of ~fuse w in
  Store.clear_quarantine c.Compiler.store;
  let engine = Compiler.engine ~policy ~fuse c in
  Fun.protect
    ~finally:(fun () -> Store.clear_quarantine c.Compiler.store)
    (fun () -> Exec.call engine w.entry (w.args ~size))

let check_identical ~ctx expected got =
  if Stdlib.compare expected got <> 0 then
    Alcotest.failf "%s: fused output diverged\n  unfused: %s\n  fused:   %s"
      ctx
      (Format.asprintf "%a" I.pp expected)
      (Format.asprintf "%a" I.pp got)

(* --- the fused-vs-unfused matrix ---------------------------------------- *)

let matrix_policies =
  [
    "bytecode", Substitute.Bytecode_only;
    "accel", Substitute.Prefer_accelerators;
    ( "devices(fpga,native)",
      Substitute.Prefer_devices [ Artifact.Fpga; Artifact.Native ] );
    "smallest", Substitute.Smallest_substitution;
    "adaptive", Substitute.Adaptive;
  ]

(* Per-workload base sizes (quadratic/cubic workloads stay small);
   each runs at a tiny, the base, and an odd off-by-one length so
   chunk boundaries and the adaptive thresholds are both straddled. *)
let matrix_sizes =
  [
    "saxpy", 96; "dotproduct", 96; "matmul", 8; "conv2d", 8; "nbody", 12;
    "mandelbrot", 10; "bitflip", 64; "dsp_chain", 96; "prefix_sum", 96;
    "blackscholes", 64; "fir4", 96; "crc8", 48;
  ]

let test_workload_matrix name () =
  let w = Workloads.find name in
  let base = List.assoc name matrix_sizes in
  List.iter
    (fun size ->
      List.iter
        (fun (pname, policy) ->
          let unfused = run_once ~fuse:false w ~size ~policy in
          let fused = run_once ~fuse:true w ~size ~policy in
          check_identical
            ~ctx:(Printf.sprintf "%s / %s / n=%d" name pname size)
            unfused fused)
        matrix_policies)
    [ 3; base; base + 1 ]

(* --- fusion mechanics ---------------------------------------------------- *)

(* dsp_chain's three pure stages fuse: the registry records the run,
   every accelerator gets a fused artifact, the plan says so, and a
   healthy launch counts as exactly one fused launch. *)
let test_fusion_is_observable () =
  let w = Workloads.find "dsp_chain" in
  let c = compiled_of ~fuse:true w in
  check_bool "fusion registered" true (Store.fusion_count c.Compiler.store > 0);
  let fused_devices =
    List.filter
      (fun (e : Artifact.manifest_entry) -> Artifact.is_fused_uid e.me_uid)
      (Compiler.manifest c).entries
  in
  check_bool "fused artifacts exist" true (List.length fused_devices >= 2);
  let engine =
    Compiler.engine ~policy:(Substitute.Prefer_devices [ Artifact.Gpu ]) c
  in
  check_bool "engine fusing" true (Exec.fusing engine);
  ignore (Exec.call engine w.entry (w.args ~size:64));
  check_string "fused plan" "gpu(3 stages fused)"
    (Option.get (Exec.last_plan engine));
  let m = Metrics.snapshot (Exec.metrics engine) in
  check_int "one fused launch" 1 m.fused_launches;
  check_int "no unfuse" 0 m.unfuses;
  (* fuse:false on the engine side alone must already plan per-stage *)
  let nofuse = Compiler.engine ~policy:Substitute.Prefer_accelerators ~fuse:false c in
  check_bool "engine not fusing" false (Exec.fusing nofuse);
  ignore (Exec.call nofuse w.entry (w.args ~size:64));
  check_string "per-stage plan" "gpu(3)" (Option.get (Exec.last_plan nofuse));
  check_int "no fused launches" 0
    (Metrics.snapshot (Exec.metrics nofuse)).Metrics.fused_launches

(* --- chunk-kill faults on fused segments --------------------------------- *)

(* Killing a fused chunked launch mid-stream with no retry budget must
   unfuse: quarantine the device, re-plan the segment per stage, and
   still reproduce the unfused output bit for bit. *)
let test_chunk_kill_unfuses () =
  let w = Workloads.find "dsp_chain" in
  let expected = run_once ~fuse:false w ~size:64 ~policy:Substitute.Bytecode_only in
  List.iter
    (fun (device, dev, spec) ->
      let c = compiled_of ~fuse:true w in
      Store.clear_quarantine c.Compiler.store;
      let engine =
        Compiler.engine
          ~policy:(Substitute.Prefer_devices [ dev ])
          ~max_retries:0 ~chunk_elements:16 c
      in
      Fault.install (parse_exn spec);
      let result =
        Fun.protect
          ~finally:(fun () ->
            Fault.clear ();
            Store.clear_quarantine c.Compiler.store)
          (fun () -> Exec.call engine w.entry (w.args ~size:64))
      in
      check_identical ~ctx:(device ^ " chunk kill") expected result;
      let m = Metrics.snapshot (Exec.metrics engine) in
      check_bool (device ^ " faulted") true (m.device_faults > 0);
      check_int (device ^ " unfused once") 1 m.unfuses;
      check_bool (device ^ " re-substituted") true (m.resubstitutions > 0))
    [
      "gpu", Artifact.Gpu, "gpu:*:at=1";
      "fpga", Artifact.Fpga, "fpga:*:at=1";
    ]

(* A transient fault on a fused chunk is absorbed in place: the
   segment stays fused and the device finishes the stream. *)
let test_chunk_fault_stays_fused () =
  let w = Workloads.find "dsp_chain" in
  let expected = run_once ~fuse:false w ~size:64 ~policy:Substitute.Bytecode_only in
  let c = compiled_of ~fuse:true w in
  Store.clear_quarantine c.Compiler.store;
  let engine =
    Compiler.engine
      ~policy:(Substitute.Prefer_devices [ Artifact.Gpu ])
      ~chunk_elements:16 c
  in
  Fault.install (parse_exn "gpu:*:n=1");
  let result =
    Fun.protect
      ~finally:(fun () ->
        Fault.clear ();
        Store.clear_quarantine c.Compiler.store)
      (fun () -> Exec.call engine w.entry (w.args ~size:64))
  in
  check_identical ~ctx:"fused transient chunk" expected result;
  let m = Metrics.snapshot (Exec.metrics engine) in
  check_int "one fault" 1 m.device_faults;
  check_int "one retry" 1 m.retries;
  check_int "no unfuse" 0 m.unfuses;
  check_bool "stayed fused" true (m.fused_launches >= 4)

(* --- property: random fusible chains ------------------------------------- *)

(* Random elementwise chains — each stage one of a pool of pure int
   ops — compiled twice and run fused vs unfused under an accelerator
   policy. Bit-identity must hold for every sample. *)
let qcheck_random_fusible_chains =
  let open QCheck2 in
  let ops =
    [|
      (fun k -> Printf.sprintf "return x + %d;" k);
      (fun k -> Printf.sprintf "return x - %d;" k);
      (fun k -> Printf.sprintf "return x * %d;" (1 + (k mod 7)));
      (fun k -> Printf.sprintf "return x ^ %d;" k);
      (fun k -> Printf.sprintf "return x & %d;" (k lor 0xff));
      (fun k -> Printf.sprintf "return (x << 1) | (%d & 1);" k);
    |]
  in
  let source_of stages =
    let buf = Buffer.create 256 in
    Buffer.add_string buf "class P {\n";
    List.iteri
      (fun i (op, k) ->
        Buffer.add_string buf
          (Printf.sprintf "  local static int f%d(int x) { %s }\n" i
             (ops.(op mod Array.length ops) k)))
      stages;
    Buffer.add_string buf
      "  static int[[]] run(int[[]] xs) {\n\
      \    int[] out = new int[xs.length];\n\
      \    var g = xs.source(1)";
    List.iteri
      (fun i _ -> Buffer.add_string buf (Printf.sprintf " => ([ task f%d ])" i))
      stages;
    Buffer.add_string buf
      " => out.<int>sink();\n\
      \    g.finish();\n\
      \    return new int[[]](out);\n\
      \  }\n\
       }\n";
    Buffer.contents buf
  in
  let gen =
    Gen.tup3
      (Gen.list_size (Gen.int_range 2 5)
         (Gen.tup2 (Gen.int_bound 100) (Gen.int_bound 100)))
      (Gen.oneofl
         [
           Substitute.Prefer_accelerators;
           Substitute.Prefer_devices [ Artifact.Fpga ];
           Substitute.Adaptive;
         ])
      (Gen.int_range 1 40)
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:20 ~name:"random fusible chains fused == unfused" gen
       (fun (stages, policy, size) ->
         let source = source_of stages in
         let input = Lm.int_array (Array.init size (fun i -> (i * 13) - 7)) in
         let fused = Lm.load ~policy ~fuse:true source in
         let unfused = Lm.load ~policy ~fuse:false source in
         let a = Lm.run fused "P.run" [ input ] in
         let b = Lm.run unfused "P.run" [ input ] in
         Stdlib.compare a b = 0))

let suite =
  ( "fuse",
    List.map
      (fun name ->
        Alcotest.test_case ("fused == unfused: " ^ name) `Slow
          (test_workload_matrix name))
      [
        "saxpy"; "dotproduct"; "matmul"; "conv2d"; "nbody"; "mandelbrot";
        "bitflip"; "dsp_chain"; "prefix_sum"; "blackscholes"; "fir4"; "crc8";
      ]
    @ [
        Alcotest.test_case "fusion is observable" `Quick
          test_fusion_is_observable;
        Alcotest.test_case "chunk kill unfuses mid-stream" `Quick
          test_chunk_kill_unfuses;
        Alcotest.test_case "transient chunk fault stays fused" `Quick
          test_chunk_fault_stays_fused;
        qcheck_random_fusible_chains;
      ] )
