(* Tests for the tracing subsystem: span nesting, ring-buffer overflow
   accounting, Chrome trace_event export (validated by an actual JSON
   round-trip through [Observe.Json]), and the disabled fast path. *)

module Trace = Support.Trace
module Json = Observe.Json

(* Every test installs its own sink; make sure the process-wide default
   is restored even on failure so later suites see tracing disabled. *)
let with_ring ?capacity f =
  let sink = Trace.ring ?capacity () in
  Trace.set_sink sink;
  Fun.protect ~finally:(fun () -> Trace.set_sink Trace.null) (fun () -> f sink)

let as_str = function
  | Some (Json.Str s) -> s
  | _ -> Alcotest.fail "not a string"

let as_num = function
  | Some (Json.Num f) -> f
  | _ -> Alcotest.fail "not a number"

let member = Json.member

(* --- span nesting ------------------------------------------------------ *)

let test_span_nesting () =
  with_ring (fun sink ->
      let r =
        Trace.with_span ~cat:"t" "outer" (fun () ->
            Trace.with_span ~cat:"t" "inner" (fun () -> 41) + 1)
      in
      Alcotest.(check int) "result" 42 r;
      match Trace.events sink with
      (* inner closes first: ring order is completion order *)
      | [ Trace.Span inner; Trace.Span outer ] ->
        Alcotest.(check string) "inner name" "inner" inner.name;
        Alcotest.(check string) "outer name" "outer" outer.name;
        Alcotest.(check bool) "inner starts after outer" true
          (inner.ts_us >= outer.ts_us);
        Alcotest.(check bool) "inner ends before outer" true
          (inner.ts_us +. inner.dur_us
          <= outer.ts_us +. outer.dur_us +. 1e-6)
      | evs ->
        Alcotest.failf "expected exactly 2 spans, got %d" (List.length evs))

let test_span_survives_exception () =
  with_ring (fun sink ->
      (try
         Trace.with_span ~cat:"t" "boom" (fun () -> failwith "expected")
       with Failure _ -> ());
      match Trace.events sink with
      | [ Trace.Span sp ] -> Alcotest.(check string) "recorded" "boom" sp.name
      | _ -> Alcotest.fail "span not recorded on exception")

(* --- ring overflow ----------------------------------------------------- *)

let test_ring_overflow () =
  with_ring ~capacity:4 (fun sink ->
      for i = 0 to 9 do
        Trace.instant ~cat:"t" (string_of_int i)
      done;
      Alcotest.(check int) "kept" 4 (Trace.event_count sink);
      Alcotest.(check int) "dropped" 6 (Trace.dropped sink);
      let names =
        List.map
          (function Trace.Instant { name; _ } -> name | _ -> "?")
          (Trace.events sink)
      in
      Alcotest.(check (list string)) "oldest dropped first"
        [ "6"; "7"; "8"; "9" ] names;
      Trace.clear sink;
      Alcotest.(check int) "cleared" 0 (Trace.event_count sink);
      Alcotest.(check int) "drop counter reset" 0 (Trace.dropped sink))

(* --- Chrome export ----------------------------------------------------- *)

let test_chrome_json_roundtrip () =
  with_ring (fun sink ->
      Trace.with_span ~cat:"compiler"
        ~args:[ "file", Trace.Str "a\"b\\c\nd" ]
        "parse"
        (fun () -> ());
      Trace.instant ~cat:"substitute"
        ~args:[ "device", Trace.Str "gpu"; "filters", Trace.Int 2 ]
        "C.f@g/0";
      Trace.counter "fifo:ch0" [ "occupancy", 3.0 ];
      let json = Json.parse (Trace.Chrome.to_json ~process_name:"test" sink) in
      let events =
        match member "traceEvents" json with
        | Some (Json.Arr evs) -> evs
        | _ -> Alcotest.fail "traceEvents missing"
      in
      (* metadata + 3 events *)
      Alcotest.(check int) "event count" 4 (List.length events);
      let find name =
        match
          List.find_opt (fun e -> as_str (member "name" e) = name) events
        with
        | Some e -> e
        | None -> Alcotest.failf "no event named %s" name
      in
      let meta = find "process_name" in
      Alcotest.(check string) "metadata phase" "M" (as_str (member "ph" meta));
      let span = find "parse" in
      Alcotest.(check string) "span phase" "X" (as_str (member "ph" span));
      Alcotest.(check bool) "span has dur" true
        (as_num (member "dur" span) >= 0.0);
      Alcotest.(check string) "escaped arg survives" "a\"b\\c\nd"
        (as_str (member "file" (Option.get (member "args" span))));
      let inst = find "C.f@g/0" in
      Alcotest.(check string) "instant phase" "i" (as_str (member "ph" inst));
      Alcotest.(check (float 0.0)) "int arg" 2.0
        (as_num (member "filters" (Option.get (member "args" inst))));
      let ctr = find "fifo:ch0" in
      Alcotest.(check string) "counter phase" "C" (as_str (member "ph" ctr));
      Alcotest.(check (float 0.0)) "counter value" 3.0
        (as_num (member "occupancy" (Option.get (member "args" ctr))));
      match member "otherData" json with
      | Some other ->
        Alcotest.(check (float 0.0)) "dropped recorded" 0.0
          (as_num (member "droppedEvents" other))
      | None -> Alcotest.fail "otherData missing")

let test_chrome_json_reports_drops () =
  with_ring ~capacity:2 (fun sink ->
      for _ = 1 to 5 do
        Trace.instant ~cat:"t" "x"
      done;
      let json = Json.parse (Trace.Chrome.to_json sink) in
      let other = Option.get (member "otherData" json) in
      Alcotest.(check (float 0.0)) "drop count exported" 3.0
        (as_num (member "droppedEvents" other)))

(* --- profile report ---------------------------------------------------- *)

let test_profile_report () =
  with_ring (fun sink ->
      Trace.with_span ~cat:"compiler" "parse" (fun () -> ());
      Trace.with_span ~cat:"compiler" "parse" (fun () -> ());
      Trace.counter "fifo:ch0" [ "occupancy", 1.0 ];
      Trace.counter "fifo:ch0" [ "occupancy", 5.0 ];
      let report = Trace.Profile.report sink in
      let has = Test_types.contains report in
      Alcotest.(check bool) "header" true (has "4 event(s) collected");
      Alcotest.(check bool) "span row" true (has "parse");
      Alcotest.(check bool) "percentile columns" true (has "p95");
      Alcotest.(check bool) "counter row" true (has "fifo:ch0");
      Alcotest.(check bool) "peak column" true (has "peak");
      Alcotest.(check bool) "no warning when nothing dropped" false
        (has "truncated"))

let test_profile_report_truncation_warning () =
  with_ring ~capacity:2 (fun _sink ->
      for _ = 1 to 5 do
        Trace.instant ~cat:"t" "x"
      done;
      let report = Trace.Profile.report (Trace.current ()) in
      let has = Test_types.contains report in
      Alcotest.(check bool) "warns" true (has "trace truncated");
      Alcotest.(check bool) "names the count" true (has "3 event(s)"))

(* --- the disabled fast path -------------------------------------------- *)

let test_noop_fast_path () =
  Trace.set_sink Trace.null;
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  let r = Trace.with_span ~cat:"t" "ignored" (fun () -> 7) in
  Alcotest.(check int) "value flows through" 7 r;
  Trace.instant ~cat:"t" "ignored";
  Trace.counter "ignored" [ "v", 1.0 ];
  let sp = Trace.begin_span ~cat:"t" "ignored" in
  Trace.end_span sp;
  (* the pre-closed handle for allocation-free disabled call sites *)
  Trace.end_span Trace.no_span;
  Alcotest.(check int) "null sink stays empty" 0
    (Trace.event_count Trace.null);
  Alcotest.(check int) "null sink drops nothing" 0 (Trace.dropped Trace.null)

let suite =
  ( "trace",
    [
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span survives exception" `Quick
        test_span_survives_exception;
      Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
      Alcotest.test_case "chrome json roundtrip" `Quick
        test_chrome_json_roundtrip;
      Alcotest.test_case "chrome json reports drops" `Quick
        test_chrome_json_reports_drops;
      Alcotest.test_case "profile report" `Quick test_profile_report;
      Alcotest.test_case "profile report truncation warning" `Quick
        test_profile_report_truncation_warning;
      Alcotest.test_case "no-op fast path" `Quick test_noop_fast_path;
    ] )
