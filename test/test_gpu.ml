module Ir = Lime_ir.Ir
(* GPU substrate tests: functional equivalence with the CPU paths,
   timing-model shape (parallel scaling, divergence, bandwidth), the
   suitability analysis, and the OpenCL artifact text. *)

module I = Lime_ir.Interp
module V = Wire.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile src =
  Lime_ir.Lower.lower
    (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"t" src))

let saxpy_src =
  {|
class M {
  local static float axpy(float a, float x, float y) { return a * x + y; }
  local static float addf(float a, float b) { return a + b; }
  static float[[]] saxpy(float a, float[[]] xs, float[[]] ys) {
    return M @ axpy(a, xs, ys);
  }
  static float sum(float[[]] xs) { return M @@ addf(xs); }
}
|}

let saxpy_prog = compile saxpy_src

let map_site prog =
  match Ir.kernel_sites prog with
  | `Map m :: _ -> m
  | _ -> Alcotest.fail "expected a map site"

let reduce_site prog =
  match
    List.find_opt (function `Reduce _ -> true | `Map _ -> false)
      (Ir.kernel_sites prog)
  with
  | Some (`Reduce r) -> r
  | _ -> Alcotest.fail "expected a reduce site"

let test_map_matches_interpreter () =
  let site = map_site saxpy_prog in
  let xs = V.Float_array (Array.init 100 (fun i -> V.f32 (float_of_int i))) in
  let ys = V.Float_array (Array.init 100 (fun i -> V.f32 (float_of_int (i * 2)))) in
  let a = V.Float 1.5 in
  let gpu, _ = Gpu.Simt.run_map saxpy_prog site [ a; xs; ys ] in
  let expected =
    V.Float_array
      (Array.init 100 (fun i ->
           V.add_f32 (V.mul_f32 1.5 (V.f32 (float_of_int i)))
             (V.f32 (float_of_int (i * 2)))))
  in
  check_bool "bitwise equal to CPU arithmetic" true (V.equal gpu expected)

let test_reduce_matches_left_fold () =
  let site = reduce_site saxpy_prog in
  let xs = V.Float_array (Array.init 33 (fun i -> V.f32 (float_of_int i /. 7.0))) in
  let gpu, timing = Gpu.Simt.run_reduce saxpy_prog site xs in
  (* The value semantics are the left fold, so every device agrees. *)
  let expected =
    Array.fold_left
      (fun acc x -> V.add_f32 acc x)
      (match xs with V.Float_array a -> a.(0) | _ -> assert false)
      (match xs with
      | V.Float_array a -> Array.sub a 1 (Array.length a - 1)
      | _ -> assert false)
  in
  check_bool "left fold" true (V.equal gpu (V.Float expected));
  check_bool "timing present" true (timing.Gpu.Simt.kernel_ns > 0.0)

let test_kernel_time_scales_linearly () =
  (* Beyond lane saturation the throughput model is linear in n: 32x
     the elements costs about 32x the kernel time (minus the fixed
     launch overhead), never catastrophically more. *)
  let site = map_site saxpy_prog in
  let mk n = V.Float_array (Array.init n (fun i -> V.f32 (float_of_int i))) in
  let time n =
    let _, t =
      Gpu.Simt.run_map saxpy_prog site [ V.Float 2.0; mk n; mk n ]
    in
    t.Gpu.Simt.kernel_ns -. Gpu.Device.gtx580.Gpu.Device.launch_overhead_ns
  in
  let t512 = time 512 in
  let t16384 = time 16384 in
  check_bool "roughly 32x" true
    (t16384 > 20.0 *. t512 && t16384 < 40.0 *. t512)

let divergent_src =
  {|
class D {
  local static int f(int x) {
    if (x % 2 == 0) {
      return x + 1;
    }
    int a = x / 3;
    int b = x / 5;
    int c = x / 7;
    int d = x / 11;
    return a + b + c + d;
  }
  static int[[]] run(int[[]] xs) { return D @ f(xs); }
}
|}

let test_divergence_penalty () =
  let prog = compile divergent_src in
  let site = map_site prog in
  let mixed = V.Int_array (Array.init 1024 (fun i -> i)) in
  let uniform = V.Int_array (Array.init 1024 (fun i -> 2 * i)) in
  let _, t_mixed = Gpu.Simt.run_map prog site [ mixed ] in
  let _, t_uniform = Gpu.Simt.run_map prog site [ uniform ] in
  check_bool "divergent warps split into groups" true
    (t_mixed.Gpu.Simt.avg_divergence_groups > 1.5);
  check_bool "uniform warps stay converged" true
    (t_uniform.Gpu.Simt.avg_divergence_groups < 1.01);
  check_bool "divergence costs cycles" true
    (t_mixed.Gpu.Simt.compute_cycles > t_uniform.Gpu.Simt.compute_cycles);
  (* Ablation A3: with the model off, the penalty disappears. *)
  let _, t_off = Gpu.Simt.run_map ~model_divergence:false prog site [ mixed ] in
  check_bool "model off removes the penalty" true
    (t_off.Gpu.Simt.compute_cycles < t_mixed.Gpu.Simt.compute_cycles)

let test_filter_chain_execution () =
  let prog =
    compile
      {|
class P {
  local static int dbl(int x) { return x * 2; }
  local static int inc(int x) { return x + 1; }
}
|}
  in
  let input = V.Int_array (Array.init 50 (fun i -> i)) in
  let out, timing =
    Gpu.Simt.run_filter_chain prog ~chain:[ "P.dbl"; "P.inc" ]
      ~output_ty:Ir.I32 input
  in
  let expected = V.Int_array (Array.init 50 (fun i -> (2 * i) + 1)) in
  check_bool "composed filters" true (V.equal out expected);
  check_int "items" 50 timing.Gpu.Simt.items

let test_suitability_verdicts () =
  let prog =
    compile
      {|
class S {
  local static int pure(int x) { return x * 3; }
  global static int effectful(int x) { return x; }
  local static int allocates(int n) {
    int[] a = new int[n];
    return a.length;
  }
  local static int looped(int x) {
    int acc = 0;
    for (int i = 0; i < x; i++) { acc += i; }
    return acc;
  }
  global static int chained(int x) { return S.allocates(x); }
}
class Obj {
  int v;
  local Obj(int v0) { v = v0; }
  local int get(int unused) { return v; }
}
|}
  in
  let check key expect_ok substr =
    match Gpu.Suitability.check_fn prog key with
    | Gpu.Suitability.Suitable ->
      check_bool (key ^ " suitable") true expect_ok
    | Gpu.Suitability.Excluded reason ->
      check_bool (key ^ " excluded") false expect_ok;
      if substr <> "" then
        check_bool (key ^ " reason") true (Test_types.contains reason substr)
  in
  check "S.pure" true "";
  (* global but provably pure: the effect inference promotes it *)
  check "S.effectful" true "";
  check "S.allocates" false "alloc";
  (* loops are fine on a GPU, unlike the FPGA backend *)
  check "S.looped" true "";
  check "Obj.get" false "stateful";
  (* the effect and its witness call chain travel to the caller *)
  check "S.chained" false "alloc";
  check "S.chained" false "via S.chained"

let test_opencl_map_text () =
  let text = Gpu.Opencl_gen.map_kernel_text saxpy_prog (map_site saxpy_prog) in
  List.iter
    (fun needle -> check_bool needle true (Test_types.contains text needle))
    [
      "__kernel void";
      "get_global_id(0)";
      "__global const float* a1";
      "const float a0";  (* the broadcast scalar *)
      "static float M_axpy(float";
    ]

let test_opencl_reduce_text () =
  let text =
    Gpu.Opencl_gen.reduce_kernel_text saxpy_prog (reduce_site saxpy_prog)
  in
  List.iter
    (fun needle -> check_bool needle true (Test_types.contains text needle))
    [ "__kernel void"; "barrier(CLK_LOCAL_MEM_FENCE)"; "__local float*" ]

let test_device_models () =
  check_int "gtx580 lanes" 512 (Gpu.Device.total_lanes Gpu.Device.gtx580);
  check_bool "mobile is slower" true
    (Gpu.Device.total_lanes Gpu.Device.mobile
     < Gpu.Device.total_lanes Gpu.Device.gtx580);
  Alcotest.(check (float 1e-6))
    "cycles to ns" 100.0
    (Gpu.Device.cycles_to_ns Gpu.Device.gtx580 154.4)

(* Property: GPU map result equals the interpreter's map on random input. *)
let prop_gpu_map_differential =
  let prog = compile divergent_src in
  let site = map_site prog in
  QCheck2.Test.make ~name:"gpu: map agrees with interpreter" ~count:100
    QCheck2.Gen.(list_size (int_range 1 80) (int_range (-1000) 1000))
    (fun xs ->
      let arr = V.Int_array (Array.of_list (List.map V.norm32 xs)) in
      let gpu, _ = Gpu.Simt.run_map prog site [ arr ] in
      let cpu =
        match
          I.call prog "D.run" [ I.Prim arr ]
        with
        | I.Prim v -> v
        | _ -> V.Unit
      in
      V.equal gpu cpu)

let suite =
  ( "gpu",
    [
      Alcotest.test_case "map matches interpreter" `Quick test_map_matches_interpreter;
      Alcotest.test_case "reduce is the left fold" `Quick test_reduce_matches_left_fold;
      Alcotest.test_case "parallel scaling" `Quick test_kernel_time_scales_linearly;
      Alcotest.test_case "divergence penalty" `Quick test_divergence_penalty;
      Alcotest.test_case "filter chain" `Quick test_filter_chain_execution;
      Alcotest.test_case "suitability verdicts" `Quick test_suitability_verdicts;
      Alcotest.test_case "opencl map text" `Quick test_opencl_map_text;
      Alcotest.test_case "opencl reduce text" `Quick test_opencl_reduce_text;
      Alcotest.test_case "device models" `Quick test_device_models;
      QCheck_alcotest.to_alcotest prop_gpu_map_differential;
    ] )
