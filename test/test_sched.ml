(* The rate algebra and steady-state scheduler.

   Three layers: unit tests of the balance-equation solver
   ([Analysis.Rates.solve]) over hand-built graphs covering every
   verdict; scheduler-level checks of the [Done] accounting fix and
   the budgeted steady sweep; and a differential harness proving that
   [~schedule:Steady_state] produces bitwise-identical outputs to
   round-robin on every workload while cutting blocked steps on deep
   pipelines. *)

module Rates = Analysis.Rates
module Iv = Analysis.Interval
module Actor = Runtime.Actor
module Scheduler = Runtime.Scheduler
module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Substitute = Runtime.Substitute
module Metrics = Runtime.Metrics
module I = Lime_ir.Interp
module V = Wire.Value

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let const n = Iv.of_int n

let edge ?(init = 0) src dst push pop =
  {
    Rates.e_src = src;
    e_dst = dst;
    e_push = const push;
    e_pop = const pop;
    e_init = init;
  }

let reps_of = function
  | Ok (s : Rates.schedule) -> s.Rates.s_reps
  | Error why -> Alcotest.failf "unsolvable: %s" (Rates.describe_unsolvable why)

(* --- solver ----------------------------------------------------------- *)

let test_solve_chain () =
  (* source pushes 4 per firing, everything downstream is 1:1 — the
     shape [Exec] builds for a rate-4 task graph. *)
  let g =
    {
      Rates.g_actors = [ "src"; "f"; "snk" ];
      g_edges = [ edge "src" "f" 4 1; edge "f" "snk" 1 1 ];
    }
  in
  check_bool "reps src=1 f=4 snk=4" true
    (reps_of (Rates.solve g) = [ "src", 1; "f", 4; "snk", 4 ])

let test_solve_multirate () =
  (* push 2 / pop 3 then 1:1 — classic SDF fractions. *)
  let g =
    {
      Rates.g_actors = [ "a"; "b"; "c" ];
      g_edges = [ edge "a" "b" 2 3; edge "b" "c" 1 1 ];
    }
  in
  match Rates.solve g with
  | Ok s ->
    check_bool "reps a=3 b=2 c=2" true
      (s.Rates.s_reps = [ "a", 3; "b", 2; "c", 2 ]);
    (* peak occupancy on a->b is the full 3*2 = 6 tokens *)
    let burst_ab =
      List.assoc "b"
        (List.map
           (fun ((e : Rates.edge), b) -> e.Rates.e_dst, b)
           s.Rates.s_bursts)
    in
    check_int "burst a->b" 6 burst_ab
  | Error why -> Alcotest.failf "unsolvable: %s" (Rates.describe_unsolvable why)

let test_solve_mismatch_diamond () =
  (* Two paths from a to d demanding different repetition ratios:
     balance equations have no solution. *)
  let g =
    {
      Rates.g_actors = [ "a"; "b"; "c"; "d" ];
      g_edges =
        [
          edge "a" "b" 1 1; edge "a" "c" 1 1; edge "b" "d" 1 1;
          edge "c" "d" 2 1;
        ];
    }
  in
  match Rates.solve g with
  | Error (Rates.Mismatch _) -> ()
  | Error why ->
    Alcotest.failf "wrong verdict: %s" (Rates.describe_unsolvable why)
  | Ok _ -> Alcotest.fail "diamond with conflicting rates solved"

let test_solve_tokenfree_cycle () =
  (* a <-> b with no initial tokens: the equations balance (reps 1,1)
     but neither actor can ever fire first. *)
  let g =
    {
      Rates.g_actors = [ "a"; "b" ];
      g_edges = [ edge "a" "b" 1 1; edge "b" "a" 1 1 ];
    }
  in
  (match Rates.solve g with
  | Error (Rates.Deadlocked _) -> ()
  | Error why ->
    Alcotest.failf "wrong verdict: %s" (Rates.describe_unsolvable why)
  | Ok _ -> Alcotest.fail "token-free cycle scheduled");
  (* one initial token breaks the tie and the cycle schedules *)
  let primed =
    { g with Rates.g_edges = [ edge "a" "b" 1 1; edge ~init:1 "b" "a" 1 1 ] }
  in
  check_bool "primed cycle solves" true
    (reps_of (Rates.solve primed) = [ "a", 1; "b", 1 ])

let test_solve_starved () =
  let g =
    {
      Rates.g_actors = [ "src"; "snk" ];
      g_edges = [ edge "src" "snk" 0 1 ];
    }
  in
  match Rates.solve g with
  | Error (Rates.Starved _) -> ()
  | Error why ->
    Alcotest.failf "wrong verdict: %s" (Rates.describe_unsolvable why)
  | Ok _ -> Alcotest.fail "zero-rate edge solved"

let test_solve_dynamic () =
  let g =
    {
      Rates.g_actors = [ "src"; "snk" ];
      g_edges =
        [
          {
            Rates.e_src = "src";
            e_dst = "snk";
            e_push = Iv.of_bounds 1 4;
            e_pop = const 1;
            e_init = 0;
          };
        ];
    }
  in
  match Rates.solve g with
  | Error (Rates.Dynamic _) -> ()
  | Error why ->
    Alcotest.failf "wrong verdict: %s" (Rates.describe_unsolvable why)
  | Ok _ -> Alcotest.fail "interval rate solved"

let test_min_edge_capacity () =
  check_int "burst lower bound" 7 (Rates.min_edge_capacity (edge "a" "b" 7 2));
  check_int "pop side dominates" 5 (Rates.min_edge_capacity (edge "a" "b" 1 5));
  check_int "unknown rates floor at 1" 1
    (Rates.min_edge_capacity
       {
         Rates.e_src = "a";
         e_dst = "b";
         e_push = Iv.top;
         e_pop = Iv.top;
         e_init = 0;
       })

(* --- scheduler accounting --------------------------------------------- *)

(* An actor that is Done on its very first step used to be charged one
   scheduling step (and one trace event). The final Done return is
   bookkeeping, not work. *)
let test_done_is_not_a_step () =
  let a = Actor.make ~name:"noop" (fun () -> Actor.Done) in
  let stats = Scheduler.run [ a ] in
  check_int "steps" 0 stats.Scheduler.steps;
  check_int "blocked" 0 stats.Scheduler.blocked_steps;
  check_int "rounds" 1 stats.Scheduler.rounds

let test_deadlock_message_has_stats () =
  let a = Actor.make ~name:"stuck" (fun () -> Actor.Blocked) in
  match Scheduler.run [ a ] with
  | exception Scheduler.Deadlock (msg, stats) ->
    check_bool "message embeds rounds" true
      (Test_types.contains msg "round(s)");
    check_bool "message names actor" true (Test_types.contains msg "stuck");
    check_int "blocked" 1 stats.Scheduler.blocked_steps
  | _ -> Alcotest.fail "expected Deadlock"

let test_steady_sweep_runs_pipeline () =
  (* A 3-stage pipeline with capacity >= n and per-actor budgets drains
     in one sweep with zero blocked steps. *)
  let n = 32 in
  let a = Actor.Channel.create ~capacity:n in
  let b = Actor.Channel.create ~capacity:n in
  let out = Array.make n 0 in
  let dest = V.Int_array out in
  let elements = List.init n (fun i -> V.Int i) in
  let actors =
    [
      Actor.source ~name:"src" ~rate:1 elements a;
      Actor.filter ~name:"dbl"
        ~f:(function V.Int x -> V.Int (2 * x) | v -> v)
        a b;
      Actor.sink ~name:"snk" dest b;
    ]
  in
  let budget = n + 4 in
  let stats =
    Scheduler.run_steady (List.map (fun a -> a, budget) actors)
  in
  check_int "one sweep" 1 stats.Scheduler.rounds;
  check_int "no blocked steps" 0 stats.Scheduler.blocked_steps;
  check_bool "pipeline output" true (out = Array.init n (fun i -> 2 * i))

let test_steady_deadlock_detected () =
  let a = Actor.make ~name:"wedged" (fun () -> Actor.Blocked) in
  match Scheduler.run_steady [ a, 8 ] with
  | exception Scheduler.Deadlock (msg, _) ->
    check_bool "names actor" true (Test_types.contains msg "wedged")
  | _ -> Alcotest.fail "expected Deadlock"

(* --- engine boundary --------------------------------------------------- *)

let test_fifo_capacity_validated () =
  let w = Workloads.find "bitflip" in
  let c = Compiler.compile w.Workloads.source in
  match Compiler.engine ~fifo_capacity:0 c with
  | exception Exec.Engine_error msg ->
    check_bool "mentions fifo_capacity" true
      (Test_types.contains msg "fifo_capacity")
  | _ -> Alcotest.fail "fifo_capacity 0 accepted"

(* --- steady vs round-robin differential -------------------------------- *)

let test_sizes =
  [
    "saxpy", 256; "dotproduct", 256; "matmul", 8; "conv2d", 8; "nbody", 16;
    "mandelbrot", 12; "bitflip", 64; "dsp_chain", 128; "prefix_sum", 128;
    "blackscholes", 128; "fir4", 128; "crc8", 64;
  ]

let run_with (w : Workloads.t) ~size ~policy ~schedule =
  let c = Compiler.compile w.Workloads.source in
  let engine = Compiler.engine ~policy ~schedule c in
  let result = Exec.call engine w.Workloads.entry (w.Workloads.args ~size) in
  result, Metrics.snapshot (Exec.metrics engine)

let test_steady_matches_roundrobin () =
  List.iter
    (fun ((name, size) : string * int) ->
      let w = Workloads.find name in
      List.iter
        (fun policy ->
          let expected, _ =
            run_with w ~size ~policy ~schedule:Scheduler.Round_robin
          in
          let got, m =
            run_with w ~size ~policy ~schedule:Scheduler.Steady_state
          in
          if Stdlib.compare expected got <> 0 then
            Alcotest.failf "%s: steady output diverged from round-robin" name;
          (* any graph the algebra solved must never have produced a
             worse blocked count than a solved steady run can: zero *)
          if m.Metrics.sched_steady > 0 && m.Metrics.sched_fallbacks = 0 then
            check_int (name ^ " steady blocked") 0 m.Metrics.sched_blocked_steps)
        [ Substitute.Bytecode_only; Substitute.Prefer_accelerators ])
    test_sizes

(* The headline regression: on a >= 4-stage pipeline the steady
   schedule must cut blocked steps by at least half (in practice to
   zero). Pins the ISSUE acceptance criterion. *)
let test_steady_cuts_blocked_steps () =
  let w = Workloads.find "dsp_chain" in
  let size = 512 in
  let policy = Substitute.Prefer_accelerators in
  let rr, m_rr = run_with w ~size ~policy ~schedule:Scheduler.Round_robin in
  let st, m_st = run_with w ~size ~policy ~schedule:Scheduler.Steady_state in
  check_bool "outputs identical" true (Stdlib.compare rr st = 0);
  check_int "steady actually ran" 1 m_st.Metrics.sched_steady;
  check_int "no fallback" 0 m_st.Metrics.sched_fallbacks;
  check_bool "round-robin blocks" true (m_rr.Metrics.sched_blocked_steps > 0);
  check_bool
    (Printf.sprintf "blocked halved (rr=%d steady=%d)"
       m_rr.Metrics.sched_blocked_steps m_st.Metrics.sched_blocked_steps)
    true
    (2 * m_st.Metrics.sched_blocked_steps <= m_rr.Metrics.sched_blocked_steps)

(* Fault-injection runs keep the dynamic scheduler: a steady engine
   under an installed fault schedule must fall back, not wedge. *)
let test_steady_falls_back_under_faults () =
  let w = Workloads.find "dsp_chain" in
  let size = 64 in
  (match Support.Fault.parse_spec "gpu:*:n=1" with
  | Ok s -> Support.Fault.install s
  | Error e -> Alcotest.failf "bad spec: %s" e);
  Fun.protect
    ~finally:(fun () -> Support.Fault.clear ())
    (fun () ->
      let got, m =
        run_with w ~size ~policy:Substitute.Prefer_accelerators
          ~schedule:Scheduler.Steady_state
      in
      Support.Fault.clear ();
      let expected, _ =
        run_with w ~size ~policy:Substitute.Bytecode_only
          ~schedule:Scheduler.Round_robin
      in
      check_bool "output still correct" true
        (Stdlib.compare expected got = 0);
      check_bool "fell back to round-robin" true
        (m.Metrics.sched_fallbacks > 0 && m.Metrics.sched_steady = 0))

let suite =
  ( "sched",
    [
      Alcotest.test_case "solve: linear chain" `Quick test_solve_chain;
      Alcotest.test_case "solve: multirate fractions" `Quick
        test_solve_multirate;
      Alcotest.test_case "solve: mismatch diamond" `Quick
        test_solve_mismatch_diamond;
      Alcotest.test_case "solve: token-free cycle" `Quick
        test_solve_tokenfree_cycle;
      Alcotest.test_case "solve: starved edge" `Quick test_solve_starved;
      Alcotest.test_case "solve: dynamic rates" `Quick test_solve_dynamic;
      Alcotest.test_case "min edge capacity" `Quick test_min_edge_capacity;
      Alcotest.test_case "done is not a step" `Quick test_done_is_not_a_step;
      Alcotest.test_case "deadlock message embeds stats" `Quick
        test_deadlock_message_has_stats;
      Alcotest.test_case "steady sweep drains pipeline" `Quick
        test_steady_sweep_runs_pipeline;
      Alcotest.test_case "steady deadlock detected" `Quick
        test_steady_deadlock_detected;
      Alcotest.test_case "fifo capacity validated" `Quick
        test_fifo_capacity_validated;
      Alcotest.test_case "steady matches round-robin (all workloads)" `Quick
        test_steady_matches_roundrobin;
      Alcotest.test_case "steady cuts blocked steps on dsp_chain" `Quick
        test_steady_cuts_blocked_steps;
      Alcotest.test_case "steady falls back under faults" `Quick
        test_steady_falls_back_under_faults;
    ] )
