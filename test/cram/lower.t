The map/reduce lowering (docs/LOWERING.md): every kernel site is
rewritten into a chunked scatter/worker/gather task graph and executed
on the ordinary substitution/scheduling/fault substrate, so lowered
runs record a plan, per-chunk device launches and mr metrics.

  $ cat > saxpy.lime <<'EOF'
  > public class Saxpy {
  >   local static float axpy(float a, float x, float y) {
  >     return a * x + y;
  >   }
  >   public static float[[]] run(float a, float[[]] xs, float[[]] ys) {
  >     return Saxpy @ axpy(a, xs, ys);
  >   }
  > }
  > EOF

A lowered run plans the worker like any other task segment and reports
the chosen placement (the legacy hook never did):

  $ ../../bin/lmc.exe run saxpy.lime Saxpy.run 2.0 float:1,2,3,4 float:10,20,30,40
  [12; 24; 36; 48]
  plan: gpu(1)

The policy applies to the worker exactly as it would to a filter
chain:

  $ ../../bin/lmc.exe run saxpy.lime Saxpy.run 2.0 float:1,2,3 float:10,20,30 --policy bytecode
  [12; 24; 36]
  plan: bytecode(1)

`--lower-mapreduce=false` restores the legacy whole-array dispatch —
same values, no plan, no chunking:

  $ ../../bin/lmc.exe run saxpy.lime Saxpy.run 2.0 float:1,2,3,4 float:10,20,30,40 --lower-mapreduce=false
  [12; 24; 36; 48]

At full size the stream scatters into four worker chunks (maps split
into up to 4 chunks of at least 1024 elements), visible in the
metrics:

  $ ../../bin/lmc.exe workloads saxpy --size 4096 --metrics-export text | grep mr
  # HELP mr_runs map/reduce sites executed via the lowered task graph
  # TYPE mr_runs counter
  mr_runs 1
  # HELP mr_chunks worker chunk launches in lowered runs
  # TYPE mr_chunks counter
  mr_chunks 4

`lmc report` attributes the chunk workers: the site's segment
aggregates its four per-chunk GPU launches,

  $ ../../bin/lmc.exe report saxpy --profile-store lower.profiles | sed -n '/^segments/,/^$/p' | grep Saxpy | awk '{print $1, $2, $3}'
  Saxpy.axpy.map@Saxpy.run/0 gpu 4

and the drift join prices those launches against the worker's profile
(modeled time on both sides, so the row is deterministic):

  $ rm -f lower.profiles
  $ ../../bin/lmc.exe report saxpy --profile-store lower.profiles | sed -n '/^prediction drift/,$p' | grep Saxpy | tr -s ' '
  Saxpy.axpy.map@Saxpy.run/0 gpu 4 16384 52.4 116.6 0.45 analytic drift(fast)
