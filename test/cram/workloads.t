The benchmark suite is available from the CLI.

  $ ../../bin/lmc.exe workloads
  saxpy          y' = a*x + y over float arrays (map, bandwidth-bound)
  dotproduct     map multiply + reduce add over float arrays
  matmul         n x n single-precision matrix multiply (map over cells)
  conv2d         3x3 sharpen convolution over a grayscale image (map)
  nbody          n-body force accumulation, softened 1/d^2 (map, O(n^2))
  blackscholes   European option pricing, Abramowitz-Stegun CND (map, transcendental)
  mandelbrot     escape-time fractal (map, branch-divergent, compute-bound)
  sumsq          sum of squares over int arrays (map + proven-assoc reduce)
  bitflip        Figure 1: bit-stream inverter task graph
  dsp_chain      scale -> offset -> clamp integer pipeline (FPGA-ready)
  prefix_sum     stateful running-sum filter (registers on the FPGA)
  fir4           4-tap FIR filter, delay line in registers (FPGA stream)
  crc8           rolling CRC-8 (poly 0x07), 8 unrolled steps (FPGA stream)

Running one validates against its reference (wall time varies, so keep
the stable lines):

  $ ../../bin/lmc.exe workloads dsp_chain --size 64 | grep -v wall
  result: validated (size 64)
  plan: gpu(3 stages fused)

  $ ../../bin/lmc.exe workloads dsp_chain --size 64 --policy fpga | grep -v wall
  result: validated (size 64)
  plan: fpga(3 stages fused)

  $ ../../bin/lmc.exe workloads nope
  unknown workload: nope
  [1]
