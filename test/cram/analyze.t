The `lmc analyze` subcommand: purity/effect notes, array-bounds facts
and the task-graph deadlock lint, in human and JSON form.

A clean program: a provably pure global function (LMA001, promoted to
the device backends) next to effectful ones (LMA008).

  $ cat > clean.lime <<'LIME'
  > public class G {
  >   global static int scale(int x) {
  >     return x * 3;
  >   }
  >   static int[[]] run(int[[]] xs) {
  >     return G @ scale(xs);
  >   }
  > }
  > LIME

  $ ../../bin/lmc.exe analyze clean.lime
  clean.lime:5:3: note: [LMA008] global function G.run: contains a nested map/reduce
  clean.lime:2:3: note: [LMA001] global function G.scale is provably pure (eligible for device compilation)
  0 error(s), 0 warning(s), 2 note(s)

And the promotion is visible in the manifest: the pure global becomes
a GPU map kernel rather than an exclusion.

  $ ../../bin/lmc.exe compile clean.lime | grep -E '^(artifacts|exclusions|  \[)'
  artifacts:
    [native] G.scale.map@G.run/0: shared library (1 stage(s))
    [gpu] G.scale.map@G.run/0: map kernel for G.scale

A task graph whose source rate is never positive can never push an
element: the lint reports the wedge statically (LMA002) instead of
leaving it to the runtime's Scheduler.Deadlock, and the exit code is
nonzero.

  $ cat > wedge.lime <<'LIME'
  > public class P {
  >   local static int id(int x) {
  >     return x;
  >   }
  >   static void go(int[[]] xs) {
  >     int[] out = new int[4];
  >     var g = xs.source(0) => ([ task id ]) => out.<int>sink();
  >     g.finish();
  >   }
  > }
  > LIME

  $ ../../bin/lmc.exe analyze wedge.lime
  wedge.lime:5:3: note: [LMA008] global function P.go: allocates an array; constructs a task graph; starts a task graph
  wedge.lime:7:32: error: [LMA002] task graph graph@0: source rate [0, 0] is never positive — the source can never push an element, every FIFO in the source-to-sink cycle stays empty, and the graph wedges (runtime Scheduler.Deadlock)
  wedge.lime:7:32: error: [LMA010] task graph graph@0: balance equations unsolvable (push rate [0, 0] on edge source -> P.id@P.go/0 is never positive) — no steady state exists at any FIFO capacity
  2 error(s), 0 warning(s), 1 note(s)
  [1]

The same diagnostics as JSON for tooling:

  $ ../../bin/lmc.exe analyze --json wedge.lime
  {"diagnostics":[{"severity":"note","file":"wedge.lime","line":5,"col":3,"uid":"P.go","code":"LMA008","message":"global function P.go: allocates an array; constructs a task graph; starts a task graph"},{"severity":"error","file":"wedge.lime","line":7,"col":32,"uid":"graph@0","code":"LMA002","message":"task graph graph@0: source rate [0, 0] is never positive — the source can never push an element, every FIFO in the source-to-sink cycle stays empty, and the graph wedges (runtime Scheduler.Deadlock)"},{"severity":"error","file":"wedge.lime","line":7,"col":32,"uid":"graph@0","code":"LMA010","message":"task graph graph@0: balance equations unsolvable (push rate [0, 0] on edge source -> P.id@P.go/0 is never positive) — no steady state exists at any FIFO capacity"}],"errors":2,"warnings":0,"notes":1}
  [1]

An out-of-bounds array access that always traps is an error too:

  $ cat > oob.lime <<'LIME'
  > public class B {
  >   local static int bad(int n) {
  >     int[] a = new int[4];
  >     return a[5];
  >   }
  > }
  > LIME

  $ ../../bin/lmc.exe analyze oob.lime
  oob.lime:2:3: error: [LMA006] B.bad: 1 array access(es) provably out of bounds (always traps)
  1 error(s), 0 warning(s), 0 note(s)
  [1]
