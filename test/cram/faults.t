Fault injection and the fault-tolerance protocol, end to end on the
paper's Figure 1 program. Fault schedules are deterministic, so the
counters below are exact — no normalization needed.

  $ cat > bitflip.lime <<'LIME'
  > public value enum bit {
  >   zero, one;
  >   public bit ~ this {
  >     return this == zero ? one : zero;
  >   }
  > }
  > public class Bitflip {
  >   local static bit flip(bit b) {
  >     return ~b;
  >   }
  >   static bit[[]] taskFlip(bit[[]] input) {
  >     bit[] result = new bit[input.length];
  >     var flipit = input.source(1)
  >       => ([ task flip ])
  >       => result.<bit>sink();
  >     flipit.finish();
  >     return new bit[[]](result);
  >   }
  > }
  > LIME

A permanently failing GPU: the planned gpu segment faults, is retried
twice (the default), then the runtime quarantines the GPU and
re-substitutes. The FPGA is next in line, so the run still completes
off the CPU path — and the output is bit-identical:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:*:always'
  010101010b
  plan: gpu(1)
  faults: 3 fault(s), 2 retry(s), 1 resubstitution(s)

With every device dead the protocol walks the substitution lattice all
the way down — gpu, then fpga, then native, each with its own retries —
and bottoms out at bytecode, which cannot fault:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:*:always,fpga:*:always,native:*:always'
  010101010b
  plan: gpu(1)
  faults: 9 fault(s), 6 retry(s), 3 resubstitution(s)

--max-retries 0 skips the backoff loop and re-substitutes on the first
fault:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:*:always' --max-retries 0
  010101010b
  plan: gpu(1)
  faults: 1 fault(s), 0 retry(s), 1 resubstitution(s)

A transient fault (first invocation only) is absorbed by a single
retry; the GPU stays in service and no re-substitution happens:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:*:n=1'
  010101010b
  plan: gpu(1)
  faults: 1 fault(s), 1 retry(s), 0 resubstitution(s)

A healthy run under an armed-but-never-firing schedule reports zeros:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:*:n=0'
  010101010b
  plan: gpu(1)
  faults: 0 fault(s), 0 retry(s), 0 resubstitution(s)

--profile surfaces the same counters in the metrics snapshot, with the
modeled exponential-backoff time (1 + 2 us per exhausted device, three
devices = 9.0 us):

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:*:always,fpga:*:always,native:*:always' --profile | tr -s ' ' | grep 'faults:'
  faults: 9 fault(s), 6 retry(s), 3 resubstitution(s)
  device_faults: 9

The trace records each injected fault, each retry and the final
re-substitution decision as instant events under cat "fault":

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:*:always' --trace out.json >/dev/null
  $ grep -o '"name":"inject:gpu"' out.json | sort | uniq -c | tr -s ' '
   3 "name":"inject:gpu"
  $ grep -o '"name":"retry:gpu"' out.json | sort | uniq -c | tr -s ' '
   2 "name":"retry:gpu"
  $ grep -o '"name":"resubstitute"' out.json | sort | uniq -c | tr -s ' '
   1 "name":"resubstitute"

A malformed spec is rejected up front with a usage error:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:'
  bad --inject-faults spec: empty segment pattern in clause "gpu:"
  [2]

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --inject-faults 'gpu:*:p=1.5'
  bad --inject-faults spec: bad fault probability "1.5"
  [2]
