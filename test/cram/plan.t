The profile-guided placement planner (lmc plan), cold and warm.

A cold run calibrates every (chain, device) profile and persists the
store. Cross-filter fusion collapses dsp_chain's three stages into
one segment that crosses the PCIe boundary once and streams its
result home, so the fused FPGA pipeline (initiation interval 1)
finally beats the native placement:

  $ ../../bin/lmc.exe plan dsp_chain --profile-store plan.profiles
  placement plan at n=512
  
  graph graph@0 (3 filter(s)):
    calibrated         fpga(3 stages fused)      12.6 us  <- planned
    fpga-only          fpga(3 stages fused)      12.6 us
    calibrated-nofuse  native(3)                 13.7 us
    native-only        native(3)                 13.7 us
    accelerators       gpu(3 stages fused)       15.5 us
    gpu-only           gpu(3 stages fused)       15.5 us
    bytecode           bytecode(1 fused)         80.6 us
    segment fpga:fuse:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2: 12.6 us [measured]
    predicted speedup over bytecode: 6.412x
    rationale: chose fpga(3 stages fused) over the default gpu(3 stages fused): predicted 12.6 us vs 15.5 us (1.24x) at n=512; the default is dominated by gpu:fuse:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2 (15.5 us)
  
  profile store plan.profiles: 7 entry(s), 0 hit(s), 7 calibrated

A second run on the unchanged program hits the store for every
profile — no recalibration — and, because the store keeps exact hex
floats, predicts the very same makespans:

  $ ../../bin/lmc.exe plan dsp_chain --profile-store plan.profiles
  placement plan at n=512
  
  graph graph@0 (3 filter(s)):
    calibrated         fpga(3 stages fused)      12.6 us  <- planned
    fpga-only          fpga(3 stages fused)      12.6 us
    calibrated-nofuse  native(3)                 13.7 us
    native-only        native(3)                 13.7 us
    accelerators       gpu(3 stages fused)       15.5 us
    gpu-only           gpu(3 stages fused)       15.5 us
    bytecode           bytecode(1 fused)         80.6 us
    segment fpga:fuse:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2: 12.6 us [measured]
    predicted speedup over bytecode: 6.412x
    rationale: chose fpga(3 stages fused) over the default gpu(3 stages fused): predicted 12.6 us vs 15.5 us (1.24x) at n=512; the default is dominated by gpu:fuse:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2 (15.5 us)
  
  profile store plan.profiles: 7 entry(s), 17 hit(s), 0 calibrated

The store itself is a flat text file, one content-hashed entry per
line, costs in hex floats:

  $ head -1 plan.profiles
  # liquid-metal placement profiles v1
  $ wc -l < plan.profiles
  8

Machine-readable output for tooling:

  $ ../../bin/lmc.exe plan dsp_chain --json --profile-store plan.profiles | grep -o '"planned":{"name":"[^"]*","plan":"[^"]*"'
  "planned":{"name":"calibrated","plan":"fpga(3 stages fused)"

Map/reduce kernel sites are placed too: the lowering
(docs/LOWERING.md) turns each site into a scatter/worker/gather graph
whose replicated worker is the placement unit, so the planner prices
every device against bytecode and predicts a real speedup instead of
dispatching by suitability alone:

  $ ../../bin/lmc.exe plan saxpy --profile-store plan.profiles
  placement plan at n=16384
  
  map site Saxpy.axpy.map@Saxpy.run/0 (1 filter(s)):
    calibrated    gpu(1)           41.6 us  <- planned
    accelerators  gpu(1)           41.6 us
    gpu-only      gpu(1)           41.6 us
    native-only   native(1)       117.7 us
    fpga-only     bytecode(1)     884.7 us
    bytecode      bytecode(1)     884.7 us
    segment gpu:Saxpy.axpy.map@Saxpy.run/0: 41.6 us [analytic]
    predicted speedup over bytecode: 21.283x
    rationale: the static default (gpu(1)) is already cost-optimal at n=16384: predicted 41.6 us
  
  profile store plan.profiles: 10 entry(s), 0 hit(s), 3 calibrated
