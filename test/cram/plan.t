The profile-guided placement planner (lmc plan), cold and warm.

A cold run calibrates every (chain, device) profile and persists the
store; dsp_chain's accelerator-first default is dominated by the PCIe
boundary, so the planner picks the native placement instead:

  $ ../../bin/lmc.exe plan dsp_chain --profile-store plan.profiles
  placement plan at n=512
  
  graph graph@0 (3 filter(s)):
    calibrated    native(3)        13.7 us  <- planned
    native-only   native(3)        13.7 us
    accelerators  gpu(3)           25.5 us
    gpu-only      gpu(3)           25.5 us
    fpga-only     fpga(3)          26.7 us
    bytecode      bytecode(3)      55.4 us
    segment native:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2: 13.7 us [measured]
    rationale: chose native(3) over the default gpu(3): predicted 13.7 us vs 25.5 us (1.87x) at n=512; the default is dominated by gpu:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2 (25.5 us)
  
  profile store plan.profiles: 7 entry(s), 0 hit(s), 7 calibrated

A second run on the unchanged program hits the store for every
profile — no recalibration — and, because the store keeps exact hex
floats, predicts the very same makespans:

  $ ../../bin/lmc.exe plan dsp_chain --profile-store plan.profiles
  placement plan at n=512
  
  graph graph@0 (3 filter(s)):
    calibrated    native(3)        13.7 us  <- planned
    native-only   native(3)        13.7 us
    accelerators  gpu(3)           25.5 us
    gpu-only      gpu(3)           25.5 us
    fpga-only     fpga(3)          26.7 us
    bytecode      bytecode(3)      55.4 us
    segment native:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2: 13.7 us [measured]
    rationale: chose native(3) over the default gpu(3): predicted 13.7 us vs 25.5 us (1.87x) at n=512; the default is dominated by gpu:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2 (25.5 us)
  
  profile store plan.profiles: 7 entry(s), 12 hit(s), 0 calibrated

The store itself is a flat text file, one content-hashed entry per
line, costs in hex floats:

  $ head -1 plan.profiles
  # liquid-metal placement profiles v1
  $ wc -l < plan.profiles
  8

Machine-readable output for tooling:

  $ ../../bin/lmc.exe plan dsp_chain --json --profile-store plan.profiles | grep -o '"planned":{"name":"[^"]*","plan":"[^"]*"'
  "planned":{"name":"calibrated","plan":"native(3)"

Map/reduce workloads have no task graphs to place:

  $ ../../bin/lmc.exe plan saxpy --profile-store plan.profiles | head -3
  placement plan at n=16384
  
  (no task graphs to place: map/reduce kernel sites are dispatched by suitability alone)
