Trace-driven introspection (lmc report) on dsp_chain, whose
accelerator-first default is dominated by the PCIe boundary.

Wall-clock timings vary run to run, so the checks below pin structure
and the deterministic modeled costs, normalizing digits and squeezing
the table padding.

  $ ../../bin/lmc.exe report dsp_chain --profile-store report.profiles > report.out

The header and the attribution table always carry the same buckets,
and the shares always sum to exactly 100% — attribution is a
partition of wall time, not a sampling estimate:

  $ sed -E 's/[0-9]+(\.[0-9]+)?/N/g' report.out | tr -s ' ' | sed -E 's/ +$//' | grep . | head -9
  report: wall N us over N run root(s), N event(s), N dropped
  attribution (wall time):
  bucket us share
  ------- ------ ------
  compute N N%
  marshal N N%
  sched N N%
  backoff N N%
  total N N%

  $ grep '^total' report.out | tr -s ' ' | cut -d' ' -f3
  100.0%

Both PCIe boundary crossings sit on the critical path — the marshaling
is not overlapped with anything, it gates the makespan:

  $ sed -n '/critical path/,/^$/p' report.out | grep -oE 'marshal:pcie:to-(device|host)'
  marshal:pcie:to-device
  marshal:pcie:to-host

The drift table joins the observed gpu launch against the profile
store (calibrated on this cold run). Observed and predicted are both
modeled nanoseconds, so the row is exact and the verdict is ok:

  $ grep 'measured' report.out | tr -s ' ' | sed -E 's/ +$//'
  fuse:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2 gpu 1 512 15.5 15.5 1.00 measured ok

A second run hits the warm store — same join, no recalibration:

  $ ../../bin/lmc.exe report dsp_chain --profile-store report.profiles | grep 'measured' | tr -s ' ' | sed -E 's/ +$//'
  fuse:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2 gpu 1 512 15.5 15.5 1.00 measured ok

The same analysis in JSON for tooling:

  $ ../../bin/lmc.exe report dsp_chain --json --profile-store report.profiles | grep -oE '"(truncated|verdict)":[^,}]*'
  "truncated":false
  "verdict":"ok"

Offline: save a Chrome trace with one command, analyze it with
another. Passing the workload alongside --from-trace re-joins the
saved launches against the (now warm) profile store:

  $ ../../bin/lmc.exe workloads dsp_chain --trace dsp.trace.json > /dev/null
  $ ../../bin/lmc.exe report dsp_chain --from-trace dsp.trace.json --profile-store report.profiles | grep 'measured' | tr -s ' ' | sed -E 's/ +$//'
  fuse:Dsp.scale@Dsp.run/0+Dsp.offset@Dsp.run/1+Dsp.clamp@Dsp.run/2 gpu 1 512 15.5 15.5 1.00 measured ok

Without the program, the offline report still attributes and extracts
the critical path, but says why it cannot predict:

  $ ../../bin/lmc.exe report --from-trace dsp.trace.json | grep -c 'no TARGET given'
  1

The report also runs plain Lime files, given an entry point:

  $ cat > dsp.lime <<'LIME'
  > public class Dsp {
  >   local static float scale(float x) { return x * 2.0f; }
  >   static float[[]] run(float[[]] input) {
  >     float[] result = new float[input.length];
  >     var t = input.source(1) => ([ task scale ]) => result.<float>sink();
  >     t.finish();
  >     return new float[[]](result);
  >   }
  > }
  > LIME
  $ ../../bin/lmc.exe report dsp.lime Dsp.run float:1,2,3,4 --profile-store report.profiles | sed -E 's/[0-9]+(\.[0-9]+)?/N/g' | head -1
  report: wall N us over N run root(s), N event(s), N dropped
