The lmc command-line tool, end to end on the paper's Figure 1 program.

  $ cat > bitflip.lime <<'LIME'
  > public value enum bit {
  >   zero, one;
  >   public bit ~ this {
  >     return this == zero ? one : zero;
  >   }
  > }
  > public class Bitflip {
  >   local static bit flip(bit b) {
  >     return ~b;
  >   }
  >   static bit[[]] taskFlip(bit[[]] input) {
  >     bit[] result = new bit[input.length];
  >     var flipit = input.source(1)
  >       => ([ task flip ])
  >       => result.<bit>sink();
  >     flipit.finish();
  >     return new bit[[]](result);
  >   }
  > }
  > LIME

Compiling shows the manifest (phase timings vary, so keep only the
artifact lines):

  $ ../../bin/lmc.exe compile bitflip.lime | grep -E '^(artifacts|  \[)'
  artifacts:
    [native] Bitflip.flip@Bitflip.taskFlip/0: shared library (1 stage(s))
    [gpu] Bitflip.flip@Bitflip.taskFlip/0: fused filter kernel (1 stage(s))
    [fpga] Bitflip.flip@Bitflip.taskFlip/0: pipeline (1 stage(s))

Running under the default policy substitutes the GPU kernel:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b
  010101010b
  plan: gpu(1)

Manual direction to the FPGA (paper section 4.2):

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --policy fpga
  010101010b
  plan: fpga(1)

Bytecode-only produces the identical bits:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --policy bytecode
  010101010b
  plan: bytecode(1)

The disassembler shows the stack code of the filter:

  $ ../../bin/lmc.exe disasm bitflip.lime Bitflip.flip
  Bitflip.flip: params=1 slots=2 ret=bit
      0: load 0
      1: call bit.~/1
      2: store 1
      3: load 1
      4: ret

Artifacts can be written out for inspection:

  $ ../../bin/lmc.exe compile bitflip.lime --emit out | grep wrote | sort
  wrote out/Bitflip.flip_Bitflip.taskFlip_0.c
  wrote out/Bitflip.flip_Bitflip.taskFlip_0.cl
  wrote out/Bitflip.flip_Bitflip.taskFlip_0.v
  $ head -1 out/Bitflip.flip_Bitflip.taskFlip_0.cl
  static uchar bit__(uchar v0_this) {

Compile errors carry a location and phase:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 42
  runtime error: '.length' on a non-array int
  [1]

--trace records the whole run — compiler phases, the substitution
decision, device launches, scheduler steps, channel occupancy and
boundary traffic — as Chrome trace_event JSON (event count is
control-flow determined; normalize it anyway to stay robust):

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --trace out.json | sed 's/([0-9]* event/(N event/'
  010101010b
  plan: gpu(1)
  trace: wrote out.json (N event(s), 0 dropped)

The file is one JSON object holding the event array plus drop metadata,
and carries every acceptance-relevant event kind:

  $ grep -c '"traceEvents"' out.json
  1
  $ grep -c '"droppedEvents":0' out.json
  1
  $ grep -o '"name":"parse"' out.json
  "name":"parse"
  $ grep -o '"name":"typecheck"' out.json
  "name":"typecheck"
  $ grep -o '"cat":"substitute"' out.json
  "cat":"substitute"
  $ grep -o '"cat":"launch"' out.json | sort -u
  "cat":"launch"
  $ grep -o '"name":"task-graph"' out.json
  "name":"task-graph"
  $ grep -o '"name":"boundary:pcie"' out.json | sort -u
  "name":"boundary:pcie"
  $ grep -o '"name":"fifo:ch0"' out.json | sort -u
  "name":"fifo:ch0"

--profile prints the span/counter breakdown with percentiles and the
metrics snapshot (timings vary run to run, so digits are normalized):

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --profile | tr -s ' ' | sed 's/[0-9][0-9.]*/N/g; s/--*/-/g; s/ *$//'
  Nb
  plan: gpu(N)
  profile: N event(s) collected, N dropped
  
  spans (wall time, us):
  cat span count total mean pN pN pN
  - - - - - - - -
  compiler parse N N N N N N
  compiler typecheck N N N N N N
  compiler lower N N N N N N
  compiler optimize N N N N N N
  compiler analyze N N N N N N
  compiler bytecode-backend N N N N N N
  compiler native-backend N N N N N N
  compiler gpu-backend N N N N N N
  compiler fpga-backend N N N N N N
  boundary marshal:pcie:to-device N N N N N N
  gpu Bitflip.flip@Bitflip.taskFlip/N N N N N N N
  boundary marshal:pcie:to-host N N N N N N
  launch gpu:Bitflip.flip@Bitflip.taskFlip/N N N N N N N
  runtime task-graph N N N N N N
  run run:Bitflip.taskFlip N N N N N N
  
  events:
  cat event count
  - - -
  substitute Bitflip.flip@Bitflip.taskFlip/N N
  sched source N
  sched gpu:Bitflip.flip@Bitflip.taskFlip/N N
  sched sink N
  
  counters:
  counter key samples mean peak last
  - - - - - -
  fifo:chN occupancy N N N N
  fifo:chN occupancy N N N N
  boundary:pcie bytes_to_device N N N N
  boundary:pcie bytes_to_host N N N N
  vm_instructions: N
  native_instructions: N
  native_ns: N
  gpu_kernels: N
  gpu_kernel_ns: N
  fpga_runs: N
  fpga_cycles: N
  fpga_ns: N
  marshal_crossings_to_device{boundary=pcie}: N
  marshal_crossings_to_host{boundary=pcie}: N
  marshal_bytes_to_device{boundary=pcie}: N
  marshal_bytes_to_host{boundary=pcie}: N
  marshal_transfer_ns{boundary=pcie}: N
  marshal_crossings_to_device{boundary=jni}: N
  marshal_crossings_to_host{boundary=jni}: N
  marshal_bytes_to_device{boundary=jni}: N
  marshal_bytes_to_host{boundary=jni}: N
  marshal_transfer_ns{boundary=jni}: N
  device_faults: N
  retries: N
  resubstitutions: N
  replans: N
  backoff_ns: N
  sched_runs: N
  sched_steady: N
  sched_fallbacks: N
  sched_rounds: N
  sched_steps: N
  sched_blocked_steps: N
  sched_cache_hits: N
  mr_runs: N
  mr_chunks: N
  fused_launches: N
  unfuses: N
  substitutions: Bitflip.flip@Bitflip.taskFlip/N -> gpu

The IR dump shows the discovered task graph and the lowered filter:

  $ ../../bin/lmc.exe dump-ir bitflip.lime Bitflip.flip
  func Bitflip.flip (%0:b bit local pure) : bit {  // static
    let %1:t = call bit.~(%0:b)
    ret %1:t
  }
  $ ../../bin/lmc.exe dump-ir bitflip.lime | head -4
  graph graph@0:
    source<bit>
    [reloc] filter Bitflip.flip [bit -> bit] uid=Bitflip.flip@Bitflip.taskFlip/0
    sink<bit>
