let () =
  Alcotest.run "liquid_metal"
    [ Test_support.suite; Test_trace.suite; Test_observe.suite; Test_bits.suite; Test_wire.suite; Test_syntax.suite; Test_types.suite; Test_ir.suite; Test_bytecode.suite; Test_gpu.suite; Test_rtl.suite; Test_runtime.suite; Test_liquid_metal.suite; Test_workloads.suite; Test_opt.suite; Test_native.suite; Test_pretty.suite; Test_fuzz.suite; Test_failures.suite; Test_intrinsics.suite; Test_edge.suite; Test_printer.suite; Test_analysis.suite; Test_sched.suite; Test_placement.suite; Test_differential.suite; Test_lower_mapreduce.suite; Test_fuse.suite ]
