(* Edge-case coverage across the stack: multiple graphs per method,
   source rates, long pipelines, value-class declarations, parser
   corner cases, and graph re-execution. *)

module Lm = Liquid_metal.Lm
module I = Lime_ir.Interp
module Ir = Lime_ir.Ir
module V = Wire.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_two_graphs_in_one_method () =
  let src =
    {|
class P {
  local static int dbl(int x) { return x * 2; }
  local static int neg(int x) { return 0 - x; }
  static int[[]] run(int[[]] xs) {
    int[] mid = new int[xs.length];
    var g1 = xs.source(1) => ([ task dbl ]) => mid.<int>sink();
    g1.finish();
    var frozen = new int[[]](mid);
    int[] out = new int[xs.length];
    var g2 = frozen.source(1) => ([ task neg ]) => out.<int>sink();
    g2.finish();
    return new int[[]](out);
  }
}
|}
  in
  let s = Lm.load src in
  let r = Lm.run s "P.run" [ Lm.int_array [| 1; 2; 3 |] ] in
  Alcotest.(check (array int)) "two graphs chained" [| -2; -4; -6 |]
    (Lm.as_int_array r);
  (* both graphs registered as templates with distinct UIDs *)
  check_int "two templates" 2
    (Ir.String_map.cardinal (Lm.program s).Ir.templates)

let test_graph_reexecution () =
  (* The same method (and so the same template) runs repeatedly with
     fresh dynamic operands. *)
  let s = Lm.load (Workloads.find "dsp_chain").Workloads.source in
  List.iter
    (fun n ->
      let r = Lm.run s "Dsp.run" [ Lm.int_array (Array.make n 10) ] in
      check_int (Printf.sprintf "size %d" n) n
        (Array.length (Lm.as_int_array r)))
    [ 1; 7; 31; 64 ]

let test_source_rates () =
  (* rate only changes chunking, never results *)
  let src rate =
    Printf.sprintf
      {|
class P {
  local static int inc(int x) { return x + 1; }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(%d) => ([ task inc ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
      rate
  in
  let input = Lm.int_array (Array.init 20 (fun i -> i)) in
  let expected = Array.init 20 (fun i -> i + 1) in
  List.iter
    (fun rate ->
      let s = Lm.load ~policy:Runtime.Substitute.Bytecode_only (src rate) in
      Alcotest.(check (array int))
        (Printf.sprintf "rate %d" rate)
        expected
        (Lm.as_int_array (Lm.run s "P.run" [ input ])))
    [ 1; 3; 16; 100 ]

let test_five_stage_pipeline () =
  let src =
    {|
class P {
  local static int a(int x) { return x + 1; }
  local static int b(int x) { return x * 2; }
  local static int c(int x) { return x - 3; }
  local static int d(int x) { return x ^ 5; }
  local static int e(int x) { return x & 1023; }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1)
      => ([ task a ]) => ([ task b ]) => ([ task c ]) => ([ task d ])
      => ([ task e ])
      => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  let model x = (((x + 1) * 2) - 3) lxor 5 land 1023 in
  let input = [| 0; 7; 100; 999 |] in
  List.iter
    (fun policy ->
      let s = Lm.load ~policy src in
      Alcotest.(check (array int))
        "five stages" (Array.map model input)
        (Lm.as_int_array (Lm.run s "P.run" [ Lm.int_array input ])))
    [
      Runtime.Substitute.Bytecode_only;
      Runtime.Substitute.Prefer_accelerators;
      Runtime.Substitute.Smallest_substitution;
    ];
  (* the compiler generated all 15 gpu subchains of the 5-filter run,
     plus the cross-filter fused kernel for the maximal run *)
  let s = Lm.load src in
  let gpu_chains =
    List.length
      (List.filter
         (fun (e : Runtime.Artifact.manifest_entry) ->
           e.me_device = Runtime.Artifact.Gpu)
         (Lm.manifest s).entries)
  in
  check_int "15 contiguous subchains + 1 fused" 16 gpu_chains

let test_empty_stream () =
  let s = Lm.load (Workloads.find "dsp_chain").Workloads.source in
  let r = Lm.run s "Dsp.run" [ Lm.int_array [||] ] in
  check_int "empty in, empty out" 0 (Array.length (Lm.as_int_array r))

let test_single_element_stream () =
  List.iter
    (fun policy ->
      let s = Lm.load ~policy (Workloads.find "dsp_chain").Workloads.source in
      let r = Lm.run s "Dsp.run" [ Lm.int_array [| 40 |] ] in
      Alcotest.(check (array int)) "one element" [| 248 |] (Lm.as_int_array r))
    [
      Runtime.Substitute.Bytecode_only;
      Runtime.Substitute.Prefer_accelerators;
      Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ];
    ]

let test_value_class_declaration () =
  (* value classes default their methods to local *)
  let p =
    Lime_types.Typecheck.check
      (Lime_syntax.Parser.parse ~file:"t"
         {|
value class Pairish {
  static int mix(int a, int b) { return a * 31 + b; }
}
|})
  in
  match
    Lime_types.Tast.find_method p { Lime_types.Tast.mclass = "Pairish"; mmethod = "mix" }
  with
  | Some m ->
    check_bool "value-class method defaults to local" true m.mi_local;
    check_bool "and is pure" true m.mi_pure
  | None -> Alcotest.fail "method not found"

let test_parser_corner_cases () =
  let parses src =
    match Lime_syntax.Parser.parse ~file:"t" src with
    | _ -> true
    | exception Support.Diag.Compile_error _ -> false
  in
  check_bool "comment at eof" true (parses "class C { } // trailing");
  check_bool "nested block comment text" true
    (parses "class C { /* a * b */ }");
  check_bool "empty class" true (parses "class C { }");
  check_bool "deeply nested parens" true
    (parses
       "class C { local static int f(int x) { return ((((x)))); } }");
  check_bool "block statement" true
    (parses "class C { static void f() { { int x = 1; } { int x = 2; } } }");
  check_bool "else-if chain" true
    (parses
       "class C { local static int f(int x) { if (x > 0) { return 1; } else \
        if (x < 0) { return 2; } else { return 3; } } }");
  check_bool "missing semicolon rejected" false
    (parses "class C { local static int f(int x) { return x } }");
  check_bool "unbalanced brace rejected" false (parses "class C { ")

let test_shadowing_in_blocks () =
  let s =
    Lm.load
      {|
class C {
  local static int f(int x) {
    int y = 1;
    if (x > 0) {
      int z = y + x;
      y = z;
    } else {
      int z = y - x;
      y = z;
    }
    return y;
  }
}
|}
  in
  check_int "positive branch" 6 (Lm.as_int (Lm.run s "C.f" [ Lm.int 5 ]));
  check_int "negative branch" 6 (Lm.as_int (Lm.run s "C.f" [ Lm.int (-5) ]))

let suite =
  ( "edge-cases",
    [
      Alcotest.test_case "two graphs in one method" `Quick
        test_two_graphs_in_one_method;
      Alcotest.test_case "graph re-execution" `Quick test_graph_reexecution;
      Alcotest.test_case "source rates" `Quick test_source_rates;
      Alcotest.test_case "five-stage pipeline" `Quick test_five_stage_pipeline;
      Alcotest.test_case "empty stream" `Quick test_empty_stream;
      Alcotest.test_case "single element" `Quick test_single_element_stream;
      Alcotest.test_case "value class" `Quick test_value_class_declaration;
      Alcotest.test_case "parser corners" `Quick test_parser_corner_cases;
      Alcotest.test_case "block shadowing" `Quick test_shadowing_in_blocks;
    ] )
