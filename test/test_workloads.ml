(* Workload-suite tests: every benchmark program compiles through all
   backends, validates against its OCaml reference, and produces
   identical results under every substitution policy. *)

module Lm = Liquid_metal.Lm
module V = Wire.Value
open Workloads

let check_bool = Alcotest.(check bool)

let small_size (w : Workloads.t) =
  match w.name with
  | "matmul" -> 8
  | "conv2d" -> 8
  | "nbody" -> 16
  | "mandelbrot" -> 12
  | "blackscholes" -> 64
  | _ -> 64

let value_equal (a : Lm.I.v) (b : Lm.I.v) =
  match a, b with
  | Lm.I.Prim x, Lm.I.Prim y -> V.equal x y
  | _ -> false

let test_workload (w : Workloads.t) () =
  let size = small_size w in
  let bytecode = Lm.load ~policy:Runtime.Substitute.Bytecode_only w.source in
  let accel = Lm.load ~policy:Runtime.Substitute.Prefer_accelerators w.source in
  let r_bc = Lm.run bytecode w.entry (w.args ~size) in
  let r_ac = Lm.run accel w.entry (w.args ~size) in
  check_bool
    (w.name ^ ": bytecode and accelerated results identical")
    true (value_equal r_bc r_ac);
  (match w.validate with
  | Some validate -> (
    match validate ~size r_ac with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg)
  | None -> ());
  (* the GPU-class workloads must actually reach the accelerator *)
  match w.category with
  | Gpu_map ->
    check_bool (w.name ^ ": gpu kernel launched") true
      ((Lm.metrics accel).gpu_kernels > 0)
  | Pipeline | Fpga_stream ->
    check_bool (w.name ^ ": substitution happened") true
      ((Lm.metrics accel).substitutions <> [])

let test_fpga_stream_on_fpga (w : Workloads.t) () =
  let size = small_size w in
  let s =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ])
      w.source
  in
  let r = Lm.run s w.entry (w.args ~size) in
  (match w.validate with
  | Some validate -> (
    match validate ~size r with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg)
  | None -> ());
  check_bool (w.name ^ ": ran on the rtl simulator") true
    ((Lm.metrics s).fpga_runs > 0)

let test_catalog () =
  Alcotest.(check int) "thirteen workloads" 13 (List.length Workloads.all);
  check_bool "find works" true (Workloads.find "saxpy" == Workloads.saxpy);
  (match Workloads.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "find of unknown should raise");
  List.iter
    (fun (w : Workloads.t) ->
      check_bool (w.name ^ " has description") true (w.description <> "");
      check_bool (w.name ^ " default size positive") true (w.default_size > 0))
    Workloads.all

let test_rng_determinism () =
  let a = Workloads.Rng.create () in
  let b = Workloads.Rng.create () in
  check_bool "same stream" true
    (List.init 20 (fun _ -> Workloads.Rng.int a 1000)
    = List.init 20 (fun _ -> Workloads.Rng.int b 1000));
  let arr = Workloads.Rng.float_array (Workloads.Rng.create ()) 100 ~lo:0.0 ~hi:1.0 in
  check_bool "floats in range" true
    (Array.for_all (fun f -> f >= 0.0 && f < 1.0) arr);
  check_bool "floats are f32" true
    (Array.for_all (fun f -> f = V.f32 f) arr)

let suite =
  ( "workloads",
    Alcotest.test_case "catalog" `Quick test_catalog
    :: Alcotest.test_case "rng determinism" `Quick test_rng_determinism
    :: List.map
         (fun (w : Workloads.t) ->
           Alcotest.test_case (w.name ^ " validates") `Quick (test_workload w))
         Workloads.all
    @ List.filter_map
        (fun (w : Workloads.t) ->
          match w.category with
          | Fpga_stream | Pipeline ->
            Some
              (Alcotest.test_case (w.name ^ " on fpga") `Quick
                 (test_fpga_stream_on_fpga w))
          | Gpu_map -> None)
        Workloads.all )
