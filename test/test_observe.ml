(* Tests for the trace-driven introspection layer: span-tree
   reconstruction, the deepest-owner partition, attribution, drift,
   offline Chrome-trace analysis — plus the differential invariant the
   report's design rests on: attribution sums to wall time, and the
   critical path never exceeds the makespan, on every workload in the
   suite. *)

module Trace = Support.Trace
module Spans = Observe.Spans
module Report = Observe.Report
module Json = Observe.Json
module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Substitute = Runtime.Substitute
module Metrics = Runtime.Metrics

let span ?(args = []) ~cat name ts dur =
  Trace.Span { name; cat; ts_us = ts; dur_us = dur; args }

(* A small synthetic run: a root, a scheduler region, one gpu launch
   with a marshal crossing inside it, a faulted launch, and a modeled
   backoff marker. *)
let synthetic_events =
  [
    span ~cat:"run" "run:Main" 0.0 100.0;
    span ~cat:"runtime" "task-graph" 10.0 80.0;
    span ~cat:"launch" "gpu:K" 20.0 30.0
      ~args:[ ("elements", Trace.Int 8); ("modeled_ns", Trace.Float 3000.0) ];
    span ~cat:"boundary" "marshal:pcie:to-device" 22.0 5.0
      ~args:[ ("bytes", Trace.Int 64); ("modeled_ns", Trace.Float 100.0) ];
    span ~cat:"launch" "gpu:K" 60.0 10.0
      ~args:[ ("elements", Trace.Int 8); ("faulted", Trace.Bool true) ];
    span ~cat:"backoff" "backoff:gpu" 71.0 0.0
      ~args:[ ("backoff_ns", Trace.Float 500.0); ("attempt", Trace.Int 1) ];
    Trace.Instant { name = "sched"; cat = "sched"; ts_us = 1.0; args = [] };
    Trace.Counter { name = "fifo:ch0"; ts_us = 2.0; values = [ ("occupancy", 1.0) ] };
  ]

(* --- span tree --------------------------------------------------------- *)

let test_span_tree () =
  match Spans.build synthetic_events with
  | [ root ] ->
    Alcotest.(check string) "root" "run:Main" root.Spans.name;
    let tg =
      match root.Spans.children with
      | [ tg ] -> tg
      | cs -> Alcotest.failf "expected 1 child of root, got %d" (List.length cs)
    in
    Alcotest.(check string) "task-graph nested" "task-graph" tg.Spans.name;
    (match tg.Spans.children with
    | [ l1; l2; bk ] ->
      Alcotest.(check string) "launch nested" "gpu:K" l1.Spans.name;
      Alcotest.(check (option int)) "elements arg" (Some 8)
        (Spans.arg_int l1 "elements");
      (match l1.Spans.children with
      | [ b ] ->
        Alcotest.(check string) "marshal under launch"
          "marshal:pcie:to-device" b.Spans.name;
        Alcotest.(check (option int)) "bytes" (Some 64) (Spans.arg_int b "bytes")
      | cs ->
        Alcotest.failf "expected 1 child of launch, got %d" (List.length cs));
      Alcotest.(check (option bool)) "faulted flag" (Some true)
        (Spans.arg_bool l2 "faulted");
      Alcotest.(check string) "zero-dur backoff marker" "backoff:gpu"
        bk.Spans.name
    | cs ->
      Alcotest.failf "expected 3 children of task-graph, got %d"
        (List.length cs))
  | roots -> Alcotest.failf "expected 1 root, got %d" (List.length roots)

let test_slices_partition () =
  let root = List.hd (Spans.build synthetic_events) in
  let slices = Spans.slices ~init:"" ~enter:(fun _ s -> s.Spans.name) root in
  let total =
    List.fold_left (fun acc (_, _, t0, t1) -> acc +. (t1 -. t0)) 0.0 slices
  in
  Alcotest.(check (float 1e-9)) "slices sum to root dur" root.Spans.dur total;
  (* the instant 24.0 lies inside the marshal span: deepest owner wins *)
  let owner_at t =
    List.find_map
      (fun (name, _, t0, t1) -> if t0 <= t && t < t1 then Some name else None)
      slices
  in
  Alcotest.(check (option string)) "deepest owner"
    (Some "marshal:pcie:to-device") (owner_at 24.0);
  Alcotest.(check (option string)) "launch owns around it" (Some "gpu:K")
    (owner_at 28.0);
  Alcotest.(check (option string)) "root owns the edges" (Some "run:Main")
    (owner_at 5.0)

(* --- analyze on the synthetic run -------------------------------------- *)

let test_analyze_synthetic () =
  let predict ~uid ~device ~n =
    if uid = "K" && device = "gpu" then Some (float_of_int n *. 400.0, "measured")
    else None
  in
  let r = Report.analyze ~predict synthetic_events in
  Alcotest.(check (float 1e-6)) "wall" 100.0 r.Report.rp_wall_us;
  Alcotest.(check (float 1e-6)) "attribution sums to wall" 100.0
    (Report.attribution_total r.Report.rp_attr);
  Alcotest.(check (float 1e-6)) "marshal bucket" 5.0
    r.Report.rp_attr.Report.at_marshal;
  Alcotest.(check (float 1e-6)) "critical = wall" r.Report.rp_wall_us
    r.Report.rp_critical_us;
  Alcotest.(check (float 1e-6)) "modeled backoff surfaced" 0.5
    r.Report.rp_backoff_modeled_us;
  (* the faulted launch is excluded from the drift join *)
  (match r.Report.rp_drift with
  | [ d ] ->
    Alcotest.(check string) "drift uid" "K" d.Report.dr_uid;
    Alcotest.(check string) "drift device" "gpu" d.Report.dr_device;
    Alcotest.(check int) "healthy launches only" 1 d.Report.dr_launches;
    Alcotest.(check (float 1e-6)) "observed ns" 3000.0 d.Report.dr_observed_ns;
    Alcotest.(check (option (float 1e-6))) "predicted ns" (Some 3200.0)
      d.Report.dr_predicted_ns;
    Alcotest.(check string) "within factor" "ok" (Report.drift_verdict d)
  | ds -> Alcotest.failf "expected 1 drift row, got %d" (List.length ds));
  (* verdicts at the extremes *)
  let slow = Report.analyze ~predict:(fun ~uid:_ ~device:_ ~n:_ -> Some (1000.0, "analytic")) synthetic_events in
  (match slow.Report.rp_drift with
  | [ d ] ->
    Alcotest.(check string) "observed 3x predicted" "drift(slow)"
      (Report.drift_verdict d)
  | _ -> Alcotest.fail "expected 1 drift row");
  let fast = Report.analyze ~predict:(fun ~uid:_ ~device:_ ~n:_ -> Some (10000.0, "analytic")) synthetic_events in
  match fast.Report.rp_drift with
  | [ d ] ->
    Alcotest.(check string) "observed well under predicted" "drift(fast)"
      (Report.drift_verdict d)
  | _ -> Alcotest.fail "expected 1 drift row"

let test_truncation_and_json () =
  let r = Report.analyze ~dropped:3 [ span ~cat:"run" "run:Main" 0.0 10.0 ] in
  Alcotest.(check int) "dropped recorded" 3 r.Report.rp_dropped;
  Alcotest.(check bool) "render warns" true
    (Test_types.contains (Report.render r) "trace truncated");
  let j = Json.parse (Report.render_json r) in
  Alcotest.(check (option (float 1e-9))) "json dropped" (Some 3.0)
    (Json.num_opt (Json.member "dropped" j));
  match Json.member "truncated" j with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.fail "expected \"truncated\": true"

(* --- the differential invariant over every workload --------------------- *)

let test_sizes =
  [
    "saxpy", 256; "dotproduct", 256; "matmul", 8; "conv2d", 8; "nbody", 16;
    "mandelbrot", 12; "sumsq", 2048; "bitflip", 64; "dsp_chain", 128;
    "prefix_sum", 128; "blackscholes", 128; "fir4", 128; "crc8", 64;
  ]

let traced_run (w : Workloads.t) ~size =
  let sink = Trace.ring () in
  Trace.set_sink sink;
  Fun.protect
    ~finally:(fun () -> Trace.set_sink Trace.null)
    (fun () ->
      let c = Compiler.compile w.source in
      let engine = Compiler.engine ~policy:Substitute.Prefer_accelerators c in
      ignore (Exec.call engine w.entry (w.args ~size));
      sink)

let test_attribution_invariant () =
  List.iter
    (fun (w : Workloads.t) ->
      let size = List.assoc w.name test_sizes in
      let sink = traced_run w ~size in
      let r = Report.of_sink sink in
      let wall = r.Report.rp_wall_us in
      let total = Report.attribution_total r.Report.rp_attr in
      if wall <= 0.0 then Alcotest.failf "%s: empty run window" w.name;
      if abs_float (total -. wall) > 1e-6 *. wall +. 1e-9 then
        Alcotest.failf "%s: attribution %.6f us != wall %.6f us" w.name total
          wall;
      if r.Report.rp_critical_us > wall +. 1e-9 then
        Alcotest.failf "%s: critical path %.6f us exceeds makespan %.6f us"
          w.name r.Report.rp_critical_us wall;
      if r.Report.rp_roots < 1 then Alcotest.failf "%s: no run roots" w.name)
    Workloads.all

(* --- offline: Chrome export round-trips through the analyzer ------------ *)

let test_chrome_roundtrip () =
  let w = Workloads.find "dsp_chain" in
  let sink = traced_run w ~size:128 in
  let live = Report.of_sink sink in
  let json = Trace.Chrome.to_json ~process_name:"test" sink in
  match Report.of_chrome_json json with
  | Error msg -> Alcotest.failf "offline parse failed: %s" msg
  | Ok offline ->
    (* %.3f formatting costs at most ~1ns per endpoint *)
    Alcotest.(check bool) "wall survives the round trip" true
      (abs_float (offline.Report.rp_wall_us -. live.Report.rp_wall_us) < 0.01);
    Alcotest.(check (float 1e-6)) "offline attribution still sums to wall"
      offline.Report.rp_wall_us
      (Report.attribution_total offline.Report.rp_attr);
    Alcotest.(check int) "segments survive"
      (List.length live.Report.rp_segments)
      (List.length offline.Report.rp_segments);
    Alcotest.(check bool) "pcie marshaling on the critical path" true
      (List.exists
         (fun (s : Report.path_step) -> s.Report.ps_cat = "boundary")
         offline.Report.rp_path)

(* --- metrics: JSON round-trips through the field list ------------------- *)

let test_metrics_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.add_vm_instructions m 12;
  Metrics.add_gpu_kernel m ~ns:5000.0;
  Metrics.add_retry m ~backoff_ns:750.0;
  Metrics.add_substitution m "C.f@g/0" Runtime.Artifact.Gpu;
  let s = Metrics.snapshot m in
  let j = Json.parse (Metrics.to_json s) in
  let metrics = Json.to_list (Option.get (Json.member "metrics" j)) in
  let sample_value name labels =
    List.find_map
      (fun mj ->
        if Json.str_opt (Json.member "name" mj) <> Some name then None
        else
          List.find_map
            (fun sj ->
              let got =
                match Json.member "labels" sj with
                | Some (Json.Obj kvs) ->
                  List.map (fun (k, v) ->
                      (k, match v with Json.Str s -> s | _ -> ""))
                    kvs
                | _ -> []
              in
              if got = labels then Json.num_opt (Json.member "value" sj)
              else None)
            (Json.to_list (Option.value ~default:(Json.Arr []) (Json.member "samples" mj))))
      metrics
  in
  (* every declared field survives the export with its exact value *)
  List.iter
    (fun (f : Metrics.field) ->
      match sample_value f.Metrics.fd_name f.Metrics.fd_labels with
      | None ->
        Alcotest.failf "field %s%s missing from JSON" f.Metrics.fd_name
          (String.concat ","
             (List.map (fun (k, v) -> k ^ "=" ^ v) f.Metrics.fd_labels))
      | Some v ->
        let expect = f.Metrics.fd_get s in
        if abs_float (v -. expect) > 1e-6 then
          Alcotest.failf "field %s: json %.3f != snapshot %.3f"
            f.Metrics.fd_name v expect)
    Metrics.fields;
  match Json.member "substitutions" j with
  | Some (Json.Arr [ sub ]) ->
    Alcotest.(check (option string)) "substitution uid" (Some "C.f@g/0")
      (Json.str_opt (Json.member "uid" sub));
    Alcotest.(check (option string)) "substitution device" (Some "gpu")
      (Json.str_opt (Json.member "device" sub))
  | _ -> Alcotest.fail "expected 1 substitution"

let suite =
  ( "observe",
    [
      Alcotest.test_case "span tree" `Quick test_span_tree;
      Alcotest.test_case "slices partition" `Quick test_slices_partition;
      Alcotest.test_case "analyze synthetic" `Quick test_analyze_synthetic;
      Alcotest.test_case "truncation + json" `Quick test_truncation_and_json;
      Alcotest.test_case "attribution invariant (all workloads)" `Quick
        test_attribution_invariant;
      Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip;
      Alcotest.test_case "metrics json round-trip" `Quick
        test_metrics_json_roundtrip;
    ] )
