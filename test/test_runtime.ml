module Ir = Lime_ir.Ir
(* Runtime-layer unit tests: channels, the cooperative scheduler, the
   artifact store, and the substitution planner (paper section 4.2). *)

module V = Wire.Value
open Runtime

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_channel_fifo_order () =
  let c = Actor.Channel.create ~capacity:4 in
  Actor.Channel.push c (V.Int 1);
  Actor.Channel.push c (V.Int 2);
  (match Actor.Channel.pop_opt c with
  | Some (V.Int 1) -> ()
  | _ -> Alcotest.fail "fifo order");
  Actor.Channel.push c (V.Int 3);
  (match Actor.Channel.pop_opt c, Actor.Channel.pop_opt c with
  | Some (V.Int 2), Some (V.Int 3) -> ()
  | _ -> Alcotest.fail "fifo order 2");
  Alcotest.(check bool) "empty" true (Actor.Channel.pop_opt c = None)

let test_channel_capacity () =
  let c = Actor.Channel.create ~capacity:2 in
  Actor.Channel.push c (V.Int 1);
  Actor.Channel.push c (V.Int 2);
  Alcotest.(check bool) "full" true (Actor.Channel.is_full c);
  Alcotest.check_raises "push full"
    (Invalid_argument "Channel.push: full") (fun () ->
      Actor.Channel.push c (V.Int 3))

let test_pipeline_of_actors () =
  (* source -> double -> sink over a bounded channel of capacity 1:
     forces fine-grained interleaving. *)
  let a = Actor.Channel.create ~capacity:1 in
  let b = Actor.Channel.create ~capacity:1 in
  let dest = V.Int_array (Array.make 5 0) in
  let actors =
    [
      Actor.source ~name:"src" ~rate:1
        (List.map (fun i -> V.Int i) [ 1; 2; 3; 4; 5 ])
        a;
      Actor.filter ~name:"dbl"
        ~f:(function V.Int i -> V.Int (2 * i) | v -> v)
        a b;
      Actor.sink ~name:"snk" dest b;
    ]
  in
  let stats = Scheduler.run actors in
  (match dest with
  | V.Int_array [| 2; 4; 6; 8; 10 |] -> ()
  | _ -> Alcotest.failf "bad sink contents %s" (V.to_string dest));
  Alcotest.(check bool) "took multiple rounds" true (stats.rounds > 3)

let test_device_segment_batches () =
  let a = Actor.Channel.create ~capacity:2 in
  let b = Actor.Channel.create ~capacity:2 in
  let dest = V.Int_array (Array.make 4 0) in
  let launches = ref 0 in
  let launch xs =
    incr launches;
    List.map (function V.Int i -> V.Int (i + 100) | v -> v) xs
  in
  let actors =
    [
      Actor.source ~name:"src" ~rate:1
        (List.map (fun i -> V.Int i) [ 1; 2; 3; 4 ])
        a;
      Actor.device_segment ~name:"dev" ~launch a b;
      Actor.sink ~name:"snk" dest b;
    ]
  in
  ignore (Scheduler.run actors);
  check_int "single batched launch" 1 !launches;
  match dest with
  | V.Int_array [| 101; 102; 103; 104 |] -> ()
  | _ -> Alcotest.failf "bad contents %s" (V.to_string dest)

let test_device_segment_chunked () =
  let a = Actor.Channel.create ~capacity:4 in
  let b = Actor.Channel.create ~capacity:4 in
  let dest = V.Int_array (Array.make 10 0) in
  let launches = ref [] in
  let launch xs =
    launches := List.length xs :: !launches;
    List.map (function V.Int i -> V.Int (i * 10) | v -> v) xs
  in
  let actors =
    [
      Actor.source ~name:"src" ~rate:1
        (List.init 10 (fun i -> V.Int i))
        a;
      Actor.device_segment ~chunk:4 ~name:"dev" ~launch a b;
      Actor.sink ~name:"snk" dest b;
    ]
  in
  ignore (Scheduler.run actors);
  Alcotest.(check (list int)) "chunk sizes (4,4, then the 2 leftover)"
    [ 4; 4; 2 ] (List.rev !launches);
  match dest with
  | V.Int_array got ->
    Alcotest.(check (array int)) "values in order"
      (Array.init 10 (fun i -> i * 10))
      got
  | _ -> Alcotest.fail "bad sink"

let test_scheduler_deadlock_detection () =
  let never_progresses = Actor.make ~name:"stuck" (fun () -> Actor.Blocked) in
  match Scheduler.run [ never_progresses ] with
  | exception Scheduler.Deadlock (msg, stats) ->
    Alcotest.(check bool) "names the actor" true
      (Test_types.contains msg "stuck");
    (* the exception carries the scheduler's partial stats *)
    Alcotest.(check int) "one wedged round" 1 stats.Scheduler.rounds;
    Alcotest.(check int) "one step taken" 1 stats.Scheduler.steps;
    Alcotest.(check int) "the step was blocked" 1 stats.Scheduler.blocked_steps
  | _ -> Alcotest.fail "expected deadlock"

(* A wedged graph's report carries each blocked actor's channel state
   (full/empty/occupancy) so the cycle is visible in the message. *)
let test_deadlock_reports_channel_states () =
  let full = Actor.Channel.create ~capacity:1 in
  Actor.Channel.push full (V.Int 1);
  let empty = Actor.Channel.create ~capacity:4 in
  let producer =
    Actor.make ~name:"producer"
      ~ports:[ "out", full ]
      (fun () -> Actor.Blocked)
  in
  let consumer =
    Actor.make ~name:"consumer"
      ~ports:[ "in", empty ]
      (fun () -> Actor.Blocked)
  in
  match Scheduler.run [ producer; consumer ] with
  | exception Scheduler.Deadlock (msg, _) ->
    let has = Test_types.contains msg in
    Alcotest.(check bool) "producer's full port" true (has "producer[out=full]");
    Alcotest.(check bool) "consumer's empty port" true
      (has "consumer[in=empty]")
  | _ -> Alcotest.fail "expected deadlock"

(* --- metrics presentation --------------------------------------------- *)

let test_metrics_pp_and_json () =
  let m = Metrics.create () in
  Metrics.add_vm_instructions m 12;
  Metrics.add_gpu_kernel m ~ns:5000.0;
  Metrics.add_substitution m "C.f@g/0" Artifact.Gpu;
  let s = Metrics.snapshot m in
  let rendered = Format.asprintf "%a" Metrics.pp s in
  let has = Test_types.contains rendered in
  Alcotest.(check bool) "vm field" true (has "vm_instructions:");
  Alcotest.(check bool) "gpu field" true (has "gpu_kernels:");
  Alcotest.(check bool) "substitution" true (has "C.f@g/0 -> gpu");
  (* pp, text and JSON all derive from Metrics.fields *)
  let text = Metrics.to_text s in
  let hast = Test_types.contains text in
  Alcotest.(check bool) "text vm count" true (hast "vm_instructions 12");
  Alcotest.(check bool) "text gpu ns" true (hast "gpu_kernel_ns 5000");
  let json = Metrics.to_json s in
  let hasj = Test_types.contains json in
  Alcotest.(check bool) "json vm" true (hasj "\"name\":\"vm_instructions\"");
  Alcotest.(check bool) "json substitution" true
    (hasj "{\"uid\":\"C.f@g/0\",\"device\":\"gpu\"}");
  (* no substitutions renders as an empty array, not a dangling comma *)
  let empty = Metrics.to_json (Metrics.snapshot (Metrics.create ())) in
  Alcotest.(check bool) "empty substitutions" true
    (Test_types.contains empty "\"substitutions\":[]")

(* --- substitution planning ------------------------------------------- *)

let dummy_filter ?(relocatable = true) uid =
  {
    Ir.uid;
    target = Ir.F_static ("C." ^ uid);
    relocatable;
    input = Ir.I32;
    output = Ir.I32;
    floc = Support.Srcloc.dummy;
  }

let gpu_artifact_for chain =
  Artifact.Gpu_kernel
    {
      ga_uid = Artifact.chain_uid chain;
      ga_kind = Artifact.G_filter_chain chain;
      ga_opencl = "// test";
    }

let fpga_artifact_for chain =
  Artifact.Fpga_module
    {
      fa_uid = Artifact.chain_uid chain;
      fa_filters = chain;
      fa_verilog = "// test";
    }

let test_substitution_prefers_larger () =
  let f1 = dummy_filter "a" and f2 = dummy_filter "b" in
  let store = Store.create () in
  Store.add store (gpu_artifact_for [ f1 ]);
  Store.add store (gpu_artifact_for [ f2 ]);
  Store.add store (gpu_artifact_for [ f1; f2 ]);
  let plan = Substitute.plan Substitute.Prefer_accelerators store [ f1; f2 ] in
  check_string "one fused segment" "gpu(2)" (Substitute.describe_plan plan)

let test_substitution_smallest_policy () =
  let f1 = dummy_filter "a" and f2 = dummy_filter "b" in
  let store = Store.create () in
  Store.add store (gpu_artifact_for [ f1 ]);
  Store.add store (gpu_artifact_for [ f2 ]);
  Store.add store (gpu_artifact_for [ f1; f2 ]);
  let plan = Substitute.plan Substitute.Smallest_substitution store [ f1; f2 ] in
  check_string "two single segments" "gpu(1) | gpu(1)"
    (Substitute.describe_plan plan)

let test_substitution_bytecode_only () =
  let f1 = dummy_filter "a" in
  let store = Store.create () in
  Store.add store (gpu_artifact_for [ f1 ]);
  let plan = Substitute.plan Substitute.Bytecode_only store [ f1 ] in
  check_string "bytecode" "bytecode(1)" (Substitute.describe_plan plan)

let test_substitution_device_preference () =
  let f1 = dummy_filter "a" in
  let store = Store.create () in
  Store.add store (gpu_artifact_for [ f1 ]);
  Store.add store (fpga_artifact_for [ f1 ]);
  let gpu_first =
    Substitute.plan Substitute.Prefer_accelerators store [ f1 ]
  in
  check_string "gpu preferred" "gpu(1)" (Substitute.describe_plan gpu_first);
  let fpga_first =
    Substitute.plan (Substitute.Prefer_devices [ Artifact.Fpga ]) store [ f1 ]
  in
  check_string "manual direction" "fpga(1)"
    (Substitute.describe_plan fpga_first)

let test_substitution_skips_nonrelocatable () =
  let f1 = dummy_filter ~relocatable:false "a" in
  let f2 = dummy_filter "b" in
  let store = Store.create () in
  Store.add store (gpu_artifact_for [ f1 ]);
  Store.add store (gpu_artifact_for [ f2 ]);
  let plan = Substitute.plan Substitute.Prefer_accelerators store [ f1; f2 ] in
  check_string "non-relocatable stays on bytecode" "bytecode(1) | gpu(1)"
    (Substitute.describe_plan plan)

let test_substitution_mixed_run () =
  (* a b c with artifacts for [a] and [b;c]: greedy left-to-right finds
     [a] then [b;c]. *)
  let fa = dummy_filter "a" and fb = dummy_filter "b" and fc = dummy_filter "c" in
  let store = Store.create () in
  Store.add store (gpu_artifact_for [ fa ]);
  Store.add store (gpu_artifact_for [ fb; fc ]);
  let plan = Substitute.plan Substitute.Prefer_accelerators store [ fa; fb; fc ] in
  check_string "a then bc" "gpu(1) | gpu(2)" (Substitute.describe_plan plan)

let test_store_manifest () =
  let f1 = dummy_filter "a" in
  let store = Store.create () in
  Store.add store (gpu_artifact_for [ f1 ]);
  Store.record_exclusion store ~uid:"x" ~device:Artifact.Fpga ~reason:"loops";
  let m = Store.manifest store in
  check_int "entries" 1 (List.length m.entries);
  check_int "exclusions" 1 (List.length m.exclusions);
  check_int "artifact count" 1 (Store.artifact_count store);
  Alcotest.(check bool) "find on gpu" true
    (Store.find_on store ~uid:"a" ~device:Artifact.Gpu <> None);
  Alcotest.(check bool) "absent on fpga" true
    (Store.find_on store ~uid:"a" ~device:Artifact.Fpga = None)

(* Quarantine pulls a whole device out of service: its artifacts
   vanish from lookups, so a re-plan can only pick healthy devices —
   and clearing the quarantine brings them back. *)
let test_store_quarantine () =
  let f1 = dummy_filter "a" in
  let store = Store.create () in
  Store.add store (gpu_artifact_for [ f1 ]);
  Store.add store (fpga_artifact_for [ f1 ]);
  Store.quarantine store ~device:Artifact.Gpu ~reason:"injected fault";
  Alcotest.(check bool) "gpu quarantined" true
    (Store.is_quarantined store ~device:Artifact.Gpu);
  Alcotest.(check bool) "gpu artifact hidden" true
    (Store.find_on store ~uid:"a" ~device:Artifact.Gpu = None);
  Alcotest.(check bool) "fpga still visible" true
    (Store.find_on store ~uid:"a" ~device:Artifact.Fpga <> None);
  let plan = Substitute.plan Substitute.Prefer_accelerators store [ f1 ] in
  check_string "re-plan avoids gpu" "fpga(1)" (Substitute.describe_plan plan);
  Store.quarantine store ~device:Artifact.Fpga ~reason:"injected fault";
  let plan = Substitute.plan Substitute.Prefer_accelerators store [ f1 ] in
  check_string "all quarantined -> bytecode" "bytecode(1)"
    (Substitute.describe_plan plan);
  check_int "quarantine list" 2 (List.length (Store.quarantined store));
  (* quarantining twice does not duplicate the entry *)
  Store.quarantine store ~device:Artifact.Gpu ~reason:"again";
  check_int "no duplicates" 2 (List.length (Store.quarantined store));
  Store.clear_quarantine store;
  Alcotest.(check bool) "back in service" true
    (Store.find_on store ~uid:"a" ~device:Artifact.Gpu <> None)

let test_metrics_fault_counters () =
  let m = Metrics.create () in
  Metrics.add_device_fault m;
  Metrics.add_device_fault m;
  Metrics.add_retry m ~backoff_ns:1000.0;
  Metrics.add_retry m ~backoff_ns:2000.0;
  Metrics.add_resubstitution m;
  let s = Metrics.snapshot m in
  check_int "faults" 2 s.Metrics.device_faults;
  check_int "retries" 2 s.Metrics.retries;
  check_int "resubstitutions" 1 s.Metrics.resubstitutions;
  Alcotest.(check (float 0.01)) "backoff" 3000.0 s.Metrics.backoff_ns;
  let rendered = Format.asprintf "%a" Metrics.pp s in
  Alcotest.(check bool) "pp faults" true
    (Test_types.contains rendered "device_faults:");
  let text = Metrics.to_text s in
  let hast = Test_types.contains text in
  Alcotest.(check bool) "text faults" true (hast "device_faults 2");
  Alcotest.(check bool) "text retries" true (hast "retries 2");
  Alcotest.(check bool) "text resubstitutions" true (hast "resubstitutions 1");
  Alcotest.(check bool) "text backoff" true (hast "backoff_ns 3000");
  Metrics.reset m;
  let s = Metrics.snapshot m in
  check_int "reset faults" 0 s.Metrics.device_faults;
  Alcotest.(check (float 0.01)) "reset backoff" 0.0 s.Metrics.backoff_ns

let suite =
  ( "runtime",
    [
      Alcotest.test_case "channel order" `Quick test_channel_fifo_order;
      Alcotest.test_case "channel capacity" `Quick test_channel_capacity;
      Alcotest.test_case "actor pipeline" `Quick test_pipeline_of_actors;
      Alcotest.test_case "device segment batches" `Quick test_device_segment_batches;
      Alcotest.test_case "device segment chunked" `Quick
        test_device_segment_chunked;
      Alcotest.test_case "deadlock detection" `Quick
        test_scheduler_deadlock_detection;
      Alcotest.test_case "deadlock channel states" `Quick
        test_deadlock_reports_channel_states;
      Alcotest.test_case "metrics pp/json" `Quick test_metrics_pp_and_json;
      Alcotest.test_case "substitution prefers larger" `Quick
        test_substitution_prefers_larger;
      Alcotest.test_case "smallest policy" `Quick test_substitution_smallest_policy;
      Alcotest.test_case "bytecode-only policy" `Quick
        test_substitution_bytecode_only;
      Alcotest.test_case "device preference" `Quick
        test_substitution_device_preference;
      Alcotest.test_case "non-relocatable kept local" `Quick
        test_substitution_skips_nonrelocatable;
      Alcotest.test_case "mixed runs" `Quick test_substitution_mixed_run;
      Alcotest.test_case "store and manifest" `Quick test_store_manifest;
      Alcotest.test_case "store quarantine" `Quick test_store_quarantine;
      Alcotest.test_case "metrics fault counters" `Quick
        test_metrics_fault_counters;
    ] )
