module Ir = Lime_ir.Ir
(* RTL substrate tests: the Figure-4 behaviours (FIFO next-rising-edge
   output, 3-cycle read/compute/publish latency, 9 inReady transitions
   for 9 input bits), netlist encodings, synthesis exclusions and the
   Verilog artifact text. *)

module I = Lime_ir.Interp
module V = Wire.Value

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile src =
  Lime_ir.Lower.lower
    (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"t" src))

let fig1 = compile Test_syntax.figure1_source

let flip_filter () =
  match Ir.filter_sites fig1 with
  | [ (_, f) ] -> f
  | _ -> Alcotest.fail "expected one filter"

let flip_pipeline () =
  Rtl.Synth.pipeline_of_chain fig1 ~name:"taskFlip" [ flip_filter (), None ]

(* --- encodings ------------------------------------------------------- *)

let test_value_encodings () =
  let roundtrip ty v =
    check_bool
      (Ir.ty_to_string ty)
      true
      (V.equal v (Rtl.Netlist.value_of_bits ty (Rtl.Netlist.bits_of_value ty v)))
  in
  roundtrip Ir.Bit (V.Bit true);
  roundtrip Ir.Bit (V.Bit false);
  roundtrip Ir.Bool (V.Bool true);
  roundtrip Ir.I32 (V.Int (-12345));
  roundtrip Ir.I32 (V.Int 2147483647);
  roundtrip Ir.F32 (V.Float (V.f32 3.14));
  roundtrip (Ir.Enum "dir") (V.Enum { enum = "dir"; tag = 3 });
  check_int "bit width" 1 (Rtl.Netlist.width_of_ty Ir.Bit);
  check_int "int width" 32 (Rtl.Netlist.width_of_ty Ir.I32)

let prop_i32_encoding =
  QCheck2.Test.make ~name:"netlist: i32 bits roundtrip" ~count:300
    QCheck2.Gen.int (fun i ->
      let v = V.Int (V.norm32 i) in
      V.equal v (Rtl.Netlist.value_of_bits Ir.I32 (Rtl.Netlist.bits_of_value Ir.I32 v)))

let prop_f32_encoding =
  QCheck2.Test.make ~name:"netlist: f32 bits roundtrip" ~count:300
    QCheck2.Gen.float (fun f ->
      let v = V.Float (V.f32 f) in
      V.equal v (Rtl.Netlist.value_of_bits Ir.F32 (Rtl.Netlist.bits_of_value Ir.F32 v)))

(* --- figure 4 behaviour ---------------------------------------------- *)

let bits9 = "101010101"

let run_flip_with_vcd () =
  let vcd = Rtl.Vcd.create () in
  let inputs =
    List.map (fun b -> V.Bit b)
      (Array.to_list (Bits.Bitvec.to_bool_array (Bits.Bitvec.of_literal bits9)))
  in
  let outputs, stats = Rtl.Sim.run ~vcd ~clock_ns:4 fig1 (flip_pipeline ()) inputs in
  outputs, stats, Rtl.Vcd.contents vcd

let test_flip_pipeline_results () =
  let outputs, stats, _ = run_flip_with_vcd () in
  check_int "9 outputs" 9 stats.Rtl.Sim.items;
  let expected =
    List.map (fun b -> V.Bit (not b))
      (Array.to_list (Bits.Bitvec.to_bool_array (Bits.Bitvec.of_literal bits9)))
  in
  check_bool "flipped stream" true (List.for_all2 V.equal expected outputs)

(* Extract (time, value) transitions of a named VCD signal. *)
let vcd_transitions vcd_text name =
  let lines = String.split_on_char '\n' vcd_text in
  let code = ref None in
  List.iter
    (fun line ->
      match String.split_on_char ' ' line with
      | [ "$var"; "wire"; _w; c; n; "$end" ] when n = name -> code := Some c
      | _ -> ())
    lines;
  let code = match !code with Some c -> c | None -> Alcotest.failf "no signal %s" name in
  let time = ref 0 in
  let out = ref [] in
  List.iter
    (fun line ->
      if String.length line > 1 && line.[0] = '#' then
        time := int_of_string (String.sub line 1 (String.length line - 1))
      else if
        String.length line = 1 + String.length code
        && String.sub line 1 (String.length code) = code
        && (line.[0] = '0' || line.[0] = '1')
      then out := (!time, Char.code line.[0] - Char.code '0') :: !out)
    lines;
  List.rev !out

let test_figure4_nine_inready_transitions () =
  (* "these are represented by the 9 transitions on the inReady
     signal" — 9 rising edges, one per input bit. *)
  let _, _, vcd = run_flip_with_vcd () in
  let rises =
    List.filter (fun (_, v) -> v = 1)
      (vcd_transitions vcd "Bitflip_flip_0_inReady")
  in
  check_int "nine inReady rises" 9 (List.length rises)

let test_figure4_three_cycle_latency () =
  (* "one cycle to read, one cycle to compute, and one cycle to
     publish": outReady rises two cycles (8ns at 4ns clock) after the
     corresponding inReady, making results available on the third
     cycle. *)
  let _, _, vcd = run_flip_with_vcd () in
  let in_rises =
    List.filter (fun (_, v) -> v = 1)
      (vcd_transitions vcd "Bitflip_flip_0_inReady")
  in
  let out_rises =
    List.filter (fun (_, v) -> v = 1)
      (vcd_transitions vcd "Bitflip_flip_0_outReady")
  in
  check_int "one publish per read" (List.length in_rises) (List.length out_rises);
  let first_in = fst (List.hd in_rises) in
  let first_out = fst (List.hd out_rises) in
  check_int "read->publish is 2 clocks later (3-cycle occupancy)" (4 * 2)
    (first_out - first_in)

let test_fifo_next_rising_edge () =
  (* The source enqueues at cycle 0; the FIFO's registered output makes
     the stage's first inReady appear at cycle 1, not 0. *)
  let _, _, vcd = run_flip_with_vcd () in
  let in_rises =
    List.filter (fun (_, v) -> v = 1)
      (vcd_transitions vcd "Bitflip_flip_0_inReady")
  in
  check_int "first pop on the edge after the write" 4 (fst (List.hd in_rises))

let test_unpipelined_throughput () =
  (* An unpipelined stage accepts one element every 3 cycles, so 9
     elements need at least 27 cycles. *)
  let _, stats, _ = run_flip_with_vcd () in
  check_bool "at least 3 cycles per element" true (stats.Rtl.Sim.cycles >= 27);
  check_bool "but not wildly more" true (stats.Rtl.Sim.cycles < 45)

let test_vcd_well_formed () =
  let _, _, vcd = run_flip_with_vcd () in
  check_bool "timescale" true (Test_types.contains vcd "$timescale 1ns $end");
  check_bool "clk declared" true (Test_types.contains vcd "$var wire 1 ! clk $end");
  check_bool "enddefinitions" true (Test_types.contains vcd "$enddefinitions");
  check_bool "has time marks" true (Test_types.contains vcd "#0")

(* --- multi-stage and stateful pipelines ------------------------------- *)

let test_two_stage_pipeline () =
  let prog =
    compile
      {|
class P {
  local static int dbl(int x) { return x * 2; }
  local static int inc(int x) { return x + 1; }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1) => ([ task dbl ]) => ([ task inc ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  let filters = List.map snd (Ir.filter_sites prog) in
  let pl =
    Rtl.Synth.pipeline_of_chain prog ~name:"p"
      (List.map (fun f -> f, None) filters)
  in
  let inputs = List.map (fun i -> V.Int i) [ 1; 2; 3; 4; 5 ] in
  let outputs, stats = Rtl.Sim.run prog pl inputs in
  check_bool "values" true
    (List.for_all2 V.equal
       (List.map (fun i -> V.Int ((2 * i) + 1)) [ 1; 2; 3; 4; 5 ])
       outputs);
  (* Two stages overlap: the pipeline beats 2x the single-stage time. *)
  check_bool "pipeline parallelism" true (stats.Rtl.Sim.cycles < 2 * 3 * 5 + 10)

let test_stateful_stage_registers () =
  let prog =
    compile
      {|
class Acc {
  int total;
  local Acc(int start) { total = start; }
  local int push(int x) { total += x; return total; }
}
class Main {
  static int[[]] prefixSums(int[[]] xs) {
    int[] out = new int[xs.length];
    var acc = new Acc(0);
    var g = xs.source(1) => ([ task acc.push ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  let filters = List.map snd (Ir.filter_sites prog) in
  let receiver =
    I.Obj { I.obj_class = "Acc"; obj_fields = [| I.Prim (V.Int 0) |] }
  in
  let pl =
    Rtl.Synth.pipeline_of_chain prog ~name:"acc"
      (List.map (fun f -> f, Some receiver) filters)
  in
  let outputs, _ = Rtl.Sim.run prog pl (List.map (fun i -> V.Int i) [ 1; 2; 3 ]) in
  check_bool "prefix sums through registers" true
    (List.for_all2 V.equal [ V.Int 1; V.Int 3; V.Int 6 ] outputs)

(* --- synthesis exclusions and latency -------------------------------- *)

let test_synth_excludes_loops () =
  let prog =
    compile
      {|
class C {
  local static int f(int x) {
    int acc = 0;
    while (acc < x) { acc = acc + 3; }
    return acc;
  }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1) => ([ task f ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  match Ir.filter_sites prog with
  | [ (_, f) ] -> (
    match Rtl.Synth.check_filter prog f with
    | Rtl.Synth.Excluded reason ->
      check_bool "mentions FSM" true (Test_types.contains reason "FSM")
    | Rtl.Synth.Suitable -> Alcotest.fail "loops must be excluded")
  | _ -> Alcotest.fail "expected one filter"

let test_synth_latency_scales_with_ops () =
  let prog =
    compile
      {|
class C {
  local static int cheap(int x) { return x + 1; }
  local static int costly(int x) {
    int a = x / 3;
    int b = x / 5;
    int c = x / 7;
    return a + b + c;
  }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1) => ([ task cheap ]) => ([ task costly ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  match List.map snd (Ir.filter_sites prog) with
  | [ cheap; costly ] ->
    let lc = Rtl.Synth.latency_of prog cheap in
    let le = Rtl.Synth.latency_of prog costly in
    check_int "cheap is single-cycle" 1 lc;
    check_bool "dividers cost cycles" true (le > lc)
  | _ -> Alcotest.fail "expected two filters"

let test_verilog_text_shape () =
  let text = Rtl.Verilog_gen.pipeline_text fig1 (flip_pipeline ()) in
  List.iter
    (fun needle ->
      check_bool needle true (Test_types.contains text needle))
    [
      "module lm_fifo";
      "visible at the output at cycle t+1";
      "module Bitflip_flip_0";
      "IDLE"; "COMPUTE"; "PUBLISH";
      "module taskFlip_top";
      "one cycle to read";
    ]

let test_verilog_stateful_has_registers () =
  let prog =
    compile
      {|
class Acc {
  int total;
  local Acc(int start) { total = start; }
  local int push(int x) { total += x; return total; }
}
class Main {
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var acc = new Acc(0);
    var g = xs.source(1) => ([ task acc.push ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  let filters = List.map snd (Ir.filter_sites prog) in
  let pl =
    Rtl.Synth.pipeline_of_chain prog ~name:"acc"
      (List.map (fun f -> f, None) filters)
  in
  let text = Rtl.Verilog_gen.pipeline_text prog pl in
  check_bool "field register" true (Test_types.contains text "reg [31:0] field_0");
  check_bool "register commit" true (Test_types.contains text "field_0 <=")

(* The range analysis narrows the data ports of a masking filter:
   [x & 255] provably fits 8 unsigned bits, so the output register,
   the inter-stage wire, and the downstream stage's input all shrink
   from the 32 bits the int type would dictate. *)
let test_verilog_range_narrowing () =
  let prog =
    compile
      {|
class N {
  local static int mask(int x) { return x & 255; }
  local static int half(int x) { return x / 2; }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1) => ([ task mask ]) => ([ task half ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  let filters = List.map snd (Ir.filter_sites prog) in
  let pl =
    Rtl.Synth.pipeline_of_chain prog ~name:"narrow"
      (List.map (fun f -> f, None) filters)
  in
  (match pl.Rtl.Netlist.pl_stages with
  | [ mask; half ] ->
    check_int "mask in 32" 32 mask.Rtl.Netlist.st_in_width;
    check_int "mask out 8" 8 mask.Rtl.Netlist.st_out_width;
    (* the interval chains: half sees [0,255], returns [0,127] *)
    check_int "half in 8" 8 half.Rtl.Netlist.st_in_width;
    check_int "half out 7" 7 half.Rtl.Netlist.st_out_width
  | _ -> Alcotest.fail "expected two stages");
  let text = Rtl.Verilog_gen.pipeline_text prog pl in
  check_bool "narrowed output reg" true
    (Test_types.contains text "output reg  [7:0] out_data");
  check_bool "top output narrowed" true
    (Test_types.contains text "output wire [6:0] out_data");
  check_bool "full-width input survives" true
    (Test_types.contains text "input  wire [31:0] in_data")


(* --- VCD reader -------------------------------------------------------- *)

let test_vcd_reader_roundtrip () =
  let _, _, vcd_text = run_flip_with_vcd () in
  let wave = Rtl.Vcd_reader.parse vcd_text in
  check_bool "has clk" true
    (List.exists (fun (s : Rtl.Vcd_reader.signal) -> s.name = "clk")
       (Rtl.Vcd_reader.signals wave));
  let in_ready = Rtl.Vcd_reader.signal wave "Bitflip_flip_0_inReady" in
  check_int "nine rises via reader" 9
    (List.length (Rtl.Vcd_reader.rises in_ready));
  (* agrees with the hand parser used elsewhere in this file *)
  let hand = List.filter (fun (_, v) -> v = 1)
      (vcd_transitions vcd_text "Bitflip_flip_0_inReady") in
  Alcotest.(check (list int)) "same times" (List.map fst hand)
    (Rtl.Vcd_reader.rises in_ready)

let test_vcd_reader_value_at () =
  let _, _, vcd_text = run_flip_with_vcd () in
  let wave = Rtl.Vcd_reader.parse vcd_text in
  let in_ready = Rtl.Vcd_reader.signal wave "Bitflip_flip_0_inReady" in
  let first = List.hd (Rtl.Vcd_reader.rises in_ready) in
  check_int "high at rise" 1 (Rtl.Vcd_reader.value_at in_ready first);
  check_int "low before dump" 0 (Rtl.Vcd_reader.value_at in_ready (first - 1));
  match Rtl.Vcd_reader.signal wave "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown signal should raise"

let test_vcd_ascii_render () =
  let _, _, vcd_text = run_flip_with_vcd () in
  let wave = Rtl.Vcd_reader.parse vcd_text in
  let text =
    Rtl.Vcd_reader.render_ascii ~signals:[ "clk"; "Bitflip_flip_0_inReady" ]
      ~until_ns:40 ~step_ns:2 wave
  in
  check_bool "clk row" true (Test_types.contains text "clk");
  check_bool "levels drawn" true
    (Test_types.contains text "#" && Test_types.contains text "_");
  check_int "three lines (ruler + 2 signals)" 3
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' text)))

let suite =
  ( "rtl",
    [
      Alcotest.test_case "value encodings" `Quick test_value_encodings;
      QCheck_alcotest.to_alcotest prop_i32_encoding;
      QCheck_alcotest.to_alcotest prop_f32_encoding;
      Alcotest.test_case "flip pipeline results" `Quick test_flip_pipeline_results;
      Alcotest.test_case "figure 4: nine inReady transitions" `Quick
        test_figure4_nine_inready_transitions;
      Alcotest.test_case "figure 4: 3-cycle latency" `Quick
        test_figure4_three_cycle_latency;
      Alcotest.test_case "figure 4: FIFO next rising edge" `Quick
        test_fifo_next_rising_edge;
      Alcotest.test_case "unpipelined throughput" `Quick test_unpipelined_throughput;
      Alcotest.test_case "vcd well-formed" `Quick test_vcd_well_formed;
      Alcotest.test_case "two-stage pipeline" `Quick test_two_stage_pipeline;
      Alcotest.test_case "stateful stage registers" `Quick
        test_stateful_stage_registers;
      Alcotest.test_case "loops excluded" `Quick test_synth_excludes_loops;
      Alcotest.test_case "latency scales with ops" `Quick
        test_synth_latency_scales_with_ops;
      Alcotest.test_case "verilog text shape" `Quick test_verilog_text_shape;
      Alcotest.test_case "verilog stateful registers" `Quick
        test_verilog_stateful_has_registers;
      Alcotest.test_case "verilog range narrowing" `Quick
        test_verilog_range_narrowing;
      Alcotest.test_case "vcd reader roundtrip" `Quick test_vcd_reader_roundtrip;
      Alcotest.test_case "vcd reader value_at" `Quick test_vcd_reader_value_at;
      Alcotest.test_case "vcd ascii render" `Quick test_vcd_ascii_render;
    ] )
