(* Typechecker tests: Figure 1 acceptance plus the isolation rules of
   paper section 2.1 (value immutability, local-calls-local, value-only
   task ports, isolating constructors). *)

open Lime_types

let check_bool = Alcotest.(check bool)

let compile src = Typecheck.check (Lime_syntax.Parser.parse ~file:"t" src)

(* A tiny substring check (no extra deps). *)
let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let rejects ?(substring = "") src =
  match compile src with
  | exception Support.Diag.Compile_error d ->
    if substring <> "" && not (contains d.message substring) then
      Alcotest.failf "error %S does not mention %S" d.message substring
  | _ -> Alcotest.fail "expected a compile error"

let test_figure1_accepts () =
  let p = compile Test_syntax.figure1_source in
  check_bool "has Bitflip" true (Option.is_some (Tast.find_class p "Bitflip"));
  let flip = Tast.find_method p { Tast.mclass = "Bitflip"; mmethod = "flip" } in
  (match flip with
  | Some m ->
    check_bool "flip pure" true m.mi_pure;
    check_bool "flip local" true m.mi_local
  | None -> Alcotest.fail "flip not found");
  let task_flip =
    Tast.find_method p { Tast.mclass = "Bitflip"; mmethod = "taskFlip" }
  in
  match task_flip with
  | Some m ->
    check_bool "taskFlip global" true (not m.mi_local);
    check_bool "taskFlip not pure" true (not m.mi_pure)
  | None -> Alcotest.fail "taskFlip not found"

let test_builtin_bit () =
  let p = compile "class Empty { }" in
  match Tast.find_enum p "bit" with
  | Some e ->
    Alcotest.(check (array string)) "cases" [| "zero"; "one" |] e.ei_cases;
    check_bool "has ~" true
      (List.exists (fun m -> m.Tast.mi_key.mmethod = "~") e.ei_methods)
  | None -> Alcotest.fail "builtin bit missing"

let test_value_array_immutable () =
  rejects ~substring:"immutable"
    {|
class C {
  local static int f(int[[]] xs) {
    xs[0] = 1;
    return 0;
  }
}
|}

let test_local_calls_local () =
  rejects ~substring:"global"
    {|
class C {
  global static int g(int x) { return x; }
  local static int f(int x) { return g(x); }
}
|}

let test_global_may_call_local () =
  ignore
    (compile
       {|
class C {
  local static int f(int x) { return x; }
  global static int g(int x) { return f(x); }
}
|})

(* Locality is no longer a type-level requirement for map targets: a
   global target is admitted and judged by the effect inference
   (Analysis.Effects) instead. Non-static targets are still rejected. *)
let test_map_target_may_be_global () =
  let p =
    compile
      {|
class C {
  global static int f(int x) { return x; }
  static int[[]] m(int[[]] xs) { return C @ f(xs); }
}
|}
  in
  check_bool "global map target accepted" true
    (Option.is_some (Tast.find_class p "C"));
  rejects ~substring:"static"
    {|
class C {
  int g;
  local int f(int x) { return x + g; }
  static int[[]] m(int[[]] xs) { return C @ f(xs); }
}
|}

let test_task_port_must_be_value () =
  rejects ~substring:"value"
    {|
class C {
  local static int[] f(int[] xs) { return xs; }
  static void m(int[[]] xs) {
    int[] out = new int[1];
    var g = xs.source(1) => ([ task f ]) => out.<int>sink();
    g.finish();
  }
}
|}

let test_connect_type_mismatch () =
  rejects ~substring:"flows into"
    {|
class C {
  local static float f(int x) { return 1.0; }
  local static int g(int x) { return x; }
  static void m(int[[]] xs) {
    int[] out = new int[1];
    var gg = xs.source(1) => (task f) => (task g) => out.<int>sink();
    gg.finish();
  }
}
|}

let test_finish_requires_complete_graph () =
  rejects ~substring:"complete"
    {|
class C {
  local static int f(int x) { return x; }
  static void m(int[[]] xs) {
    var g = xs.source(1) => (task f);
    g.finish();
  }
}
|}

let test_sink_needs_mutable_array () =
  rejects ~substring:"mutable"
    {|
class C {
  local static int f(int x) { return x; }
  static void m(int[[]] xs, int[[]] out) {
    var g = xs.source(1) => (task f) => out.<int>sink();
    g.finish();
  }
}
|}

let test_int_float_promotion () =
  ignore
    (compile
       {|
class C {
  local static float f(int x, float y) { return x + y; }
  local static float g(float y) { return 1 + y * 2; }
}
|})

let test_arith_type_error () =
  rejects ~substring:"arithmetic"
    {|
class C {
  local static int f(boolean b) { return b + 1; }
}
|}

let test_condition_must_be_bool () =
  rejects
    {|
class C {
  local static int f(int x) {
    if (x) { return 1; }
    return 0;
  }
}
|}

let test_stateful_task_requires_isolating_ctor () =
  rejects ~substring:"constructor"
    {|
class Avg {
  float total;
  Avg(int[] w) { total = 0.0; }
  local float push(float x) { total += x; return total; }
}
class Main {
  static void m(float[[]] xs) {
    float[] out = new float[xs.length];
    var a = new Avg(new int[3]);
    var g = xs.source(1) => ([ task a.push ]) => out.<float>sink();
    g.finish();
  }
}
|}

let test_stateful_task_accepted () =
  ignore
    (compile
       {|
class Avg {
  float total;
  local Avg(float init) { total = init; }
  local float push(float x) { total += x; return total; }
}
class Main {
  static void m(float[[]] xs) {
    float[] out = new float[xs.length];
    var a = new Avg(0.0);
    var g = xs.source(1) => ([ task a.push ]) => out.<float>sink();
    g.finish();
  }
}
|})

let test_reduce_signature () =
  ignore
    (compile
       {|
class C {
  local static int add(int a, int b) { return a + b; }
  static int sum(int[[]] xs) { return C @@ add(xs); }
}
|});
  rejects ~substring:"binary"
    {|
class C {
  local static int inc(int a) { return a + 1; }
  static int sum(int[[]] xs) { return C @@ inc(xs); }
}
|}

let test_duplicate_var () =
  rejects ~substring:"already declared"
    {|
class C {
  local static int f(int x) {
    int y = 1;
    int y = 2;
    return y;
  }
}
|}

let test_unknown_name () =
  rejects ~substring:"unknown"
    {|
class C {
  local static int f(int x) { return nope; }
}
|}

let test_this_in_static () =
  rejects ~substring:"static"
    {|
class C {
  static int f(int x) { return this.g(x); }
  local int g(int x) { return x; }
}
|}

let test_bare_enum_case_resolution () =
  ignore
    (compile
       {|
value enum color { red, green, blue;
  public color next(color c) {
    return c == red ? green : blue;
  }
}
class C {
  local static boolean isRed(color c) { return c == red; }
}
|})

let suite =
  ( "lime-types",
    [
      Alcotest.test_case "figure 1 typechecks" `Quick test_figure1_accepts;
      Alcotest.test_case "builtin bit enum" `Quick test_builtin_bit;
      Alcotest.test_case "value arrays immutable" `Quick test_value_array_immutable;
      Alcotest.test_case "local calls local" `Quick test_local_calls_local;
      Alcotest.test_case "global may call local" `Quick test_global_may_call_local;
      Alcotest.test_case "map target may be global" `Quick
        test_map_target_may_be_global;
      Alcotest.test_case "task ports are values" `Quick test_task_port_must_be_value;
      Alcotest.test_case "connect type mismatch" `Quick test_connect_type_mismatch;
      Alcotest.test_case "finish needs complete graph" `Quick
        test_finish_requires_complete_graph;
      Alcotest.test_case "sink needs mutable array" `Quick
        test_sink_needs_mutable_array;
      Alcotest.test_case "int to float widening" `Quick test_int_float_promotion;
      Alcotest.test_case "arithmetic type error" `Quick test_arith_type_error;
      Alcotest.test_case "boolean conditions" `Quick test_condition_must_be_bool;
      Alcotest.test_case "isolating ctor required" `Quick
        test_stateful_task_requires_isolating_ctor;
      Alcotest.test_case "stateful task accepted" `Quick test_stateful_task_accepted;
      Alcotest.test_case "reduce signature" `Quick test_reduce_signature;
      Alcotest.test_case "duplicate variable" `Quick test_duplicate_var;
      Alcotest.test_case "unknown name" `Quick test_unknown_name;
      Alcotest.test_case "this in static" `Quick test_this_in_static;
      Alcotest.test_case "bare enum cases" `Quick test_bare_enum_case_resolution;
    ] )
