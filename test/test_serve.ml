(* The multi-tenant job engine (lib/serve, `lmc serve`).

   Five layers: the job-file parser and the deterministic synthetic
   generator; a fairness differential (a contended burst's WDRR device
   shares must track the tenant weights within 15%); a QCheck property
   that admission never exceeds a tenant's quota and scheduling never
   exceeds a device's slots; fault injection under concurrency (one
   tenant's faulted chunk retries without perturbing any tenant's
   results — every job stays bit-identical to its solo run); and the
   batching and metrics-attribution mechanics. *)

module Job = Serve.Job
module Engine = Serve.Engine
module Metrics = Runtime.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Never calibrate into the developer's working-directory store. *)
let test_config ?slots ?(batch_max = 4) ?(batch_window = 10_000.0) () =
  {
    Engine.default_config with
    Engine.c_profile_path = Filename.temp_file "lm_serve_profiles" ".tmp";
    c_batch_max = batch_max;
    c_batch_window_ns = batch_window;
    c_slots =
      Option.value slots ~default:Engine.default_config.Engine.c_slots;
  }

(* --- job files --------------------------------------------------------- *)

let test_parse_job_file () =
  let load =
    Job.parse
      "# a comment\n\
       tenant gold weight=3 quota=4\n\
       tenant bronze weight=1\n\
       \n\
       job gold saxpy size=128 at=100\n\
       job bronze dsp_chain count=3 every=50 # trailing comment\n\
       job gold sumsq\n"
  in
  check_int "two tenants" 2 (List.length load.Job.l_tenants);
  let gold = List.hd load.Job.l_tenants in
  check_string "first tenant" "gold" gold.Job.t_name;
  check_int "weight parsed" 3 gold.Job.t_weight;
  check_int "quota parsed" 4 gold.Job.t_quota;
  check_int "count= expands" 5 (List.length load.Job.l_jobs);
  (* jobs are sorted by arrival; count/every spaces the expansion *)
  let arrivals = List.map (fun j -> j.Job.j_arrival_ns) load.Job.l_jobs in
  check_bool "arrivals ascending" true
    (List.sort compare arrivals = arrivals);
  let bronze_jobs =
    List.filter (fun j -> j.Job.j_tenant = "bronze") load.Job.l_jobs
  in
  check_bool "every= spaces the series" true
    (List.map (fun j -> j.Job.j_arrival_ns) bronze_jobs = [ 0.0; 50.0; 100.0 ]);
  let sumsq = List.find (fun j -> j.Job.j_workload = "sumsq") load.Job.l_jobs in
  check_int "size defaults to the workload's"
    (Workloads.find "sumsq").Workloads.default_size sumsq.Job.j_size;
  check_bool "ids are dense in schedule order" true
    (List.mapi (fun i _ -> i) load.Job.l_jobs
    = List.map (fun j -> j.Job.j_id) load.Job.l_jobs);
  check_bool "validates" true (Result.is_ok (Job.validate load))

let test_parse_errors () =
  let bad text =
    match Job.parse text with
    | exception Job.Parse_error _ -> true
    | _ -> false
  in
  check_bool "unknown directive" true (bad "frob gold saxpy\n");
  check_bool "bad key=value" true (bad "tenant gold weight\n");
  check_bool "unknown workload" true (bad "job gold nosuch\n");
  check_bool "bad class" true (bad "job g saxpy class=sometimes\n");
  let unknown_tenant = Job.parse "tenant gold weight=1\njob ghost saxpy\n" in
  check_bool "unknown tenant rejected by validate" true
    (Result.is_error (Job.validate unknown_tenant))

let test_synthetic_deterministic () =
  let mk seed =
    Job.synthetic ~quota:4 ~workloads:[ "saxpy"; "sumsq" ] ~size:64
      ~jobs_per_tenant:5 ~interarrival_ns:1000.0 ~seed
      [ ("a", 2); ("b", 1) ]
  in
  check_bool "same seed, same load" true (mk 7 = mk 7);
  check_bool "different seed, different arrivals" true (mk 7 <> mk 8);
  let load = mk 7 in
  check_int "jobs per tenant honored" 10 (List.length load.Job.l_jobs);
  check_bool "workloads cycle" true
    (List.exists (fun j -> j.Job.j_workload = "sumsq") load.Job.l_jobs);
  check_bool "render re-parses" true
    (Result.is_ok (Job.validate (Job.parse (Job.render load))))

(* --- fairness ---------------------------------------------------------- *)

(* A contended burst: every job arrives at t=0 and exactly one device
   slot exists, so WDRR alone decides the timeline order. Each
   tenant's share of device time over the contended window (until the
   first tenant runs out of work) must track its weight within 15%. *)
let test_fairness_tracks_weights () =
  let jobs_each = 12 in
  let text =
    "tenant gold weight=2\ntenant silver weight=1\ntenant bronze weight=1\n"
    ^ String.concat ""
        (List.map
           (fun t -> Printf.sprintf "job %s saxpy size=256 count=%d\n" t jobs_each)
           [ "gold"; "silver"; "bronze" ])
  in
  let load = Job.parse text in
  let config = test_config ~slots:[ ("gpu", 1) ] ~batch_max:1 () in
  let r = Engine.run ~config load in
  let total =
    List.fold_left
      (fun acc t -> acc +. t.Engine.tr_contended_service_ns)
      0.0 r.Engine.sr_tenants
  in
  check_bool "contended window is nonempty" true (total > 0.0);
  let weight_sum =
    List.fold_left
      (fun acc t -> acc + t.Engine.tr_tenant.Job.t_weight)
      0 r.Engine.sr_tenants
  in
  List.iter
    (fun t ->
      let share = t.Engine.tr_contended_service_ns /. total in
      let fair =
        float_of_int t.Engine.tr_tenant.Job.t_weight
        /. float_of_int weight_sum
      in
      let err = Float.abs (share -. fair) /. fair in
      check_bool
        (Printf.sprintf "%s: share %.3f within 15%% of fair %.3f (err %.1f%%)"
           t.Engine.tr_tenant.Job.t_name share fair (100.0 *. err))
        true (err <= 0.15);
      check_int
        (Printf.sprintf "%s: everything completed" t.Engine.tr_tenant.Job.t_name)
        jobs_each t.Engine.tr_completed)
    r.Engine.sr_tenants

(* --- quotas ------------------------------------------------------------ *)

let test_quota_rejects () =
  (* a burst of 6 against quota 2: at most 2 in the system at once *)
  let load =
    Job.parse
      "tenant a weight=1 quota=2\n\
       job a saxpy size=64 count=6\n"
  in
  let r = Engine.run ~config:(test_config ()) load in
  let t = List.hd r.Engine.sr_tenants in
  check_int "submitted" 6 t.Engine.tr_submitted;
  check_bool "some rejected" true (t.Engine.tr_rejected > 0);
  check_int "admitted + rejected = submitted" 6
    (t.Engine.tr_admitted + t.Engine.tr_rejected);
  check_int "everything admitted completed" t.Engine.tr_admitted
    t.Engine.tr_completed;
  check_bool "peak outstanding within quota" true
    (t.Engine.tr_peak_outstanding <= 2)

let prop_admission_respects_quota_and_slots =
  let open QCheck2 in
  let gen =
    Gen.(
      let* n_tenants = 1 -- 3 in
      let* weights = list_repeat n_tenants (1 -- 3) in
      let* quota = 1 -- 3 in
      let* jobs_per_tenant = 1 -- 4 in
      let* interarrival = oneofl [ 0.0; 5_000.0; 50_000.0 ] in
      let* seed = 1 -- 1000 in
      let* gpu = 0 -- 2 in
      let* native = 0 -- 1 in
      let* vm = if gpu = 0 && native = 0 then return 1 else 0 -- 1 in
      let tenants =
        List.mapi (fun i w -> (Printf.sprintf "t%d" i, w)) weights
      in
      return
        ( Job.synthetic ~quota ~workloads:[ "saxpy" ] ~size:64
            ~jobs_per_tenant ~interarrival_ns:interarrival ~seed tenants,
          [ ("gpu", gpu); ("native", native); ("vm", vm) ] ))
  in
  Test.make ~count:8
    ~name:"serve: admission respects quotas, scheduling respects slots" gen
    (fun (load, slots) ->
      let config = test_config ~slots () in
      let r = Engine.run ~config load in
      List.for_all
        (fun t ->
          t.Engine.tr_peak_outstanding <= t.Engine.tr_tenant.Job.t_quota
          && t.Engine.tr_admitted + t.Engine.tr_rejected
             = t.Engine.tr_submitted
          && t.Engine.tr_completed = t.Engine.tr_admitted
          && Array.for_all (fun l -> l >= 0.0) t.Engine.tr_latencies_ns)
        r.Engine.sr_tenants
      && List.for_all
           (fun d -> d.Engine.dr_peak_occupancy <= d.Engine.dr_slots)
           r.Engine.sr_devices
      && List.length r.Engine.sr_jobs
         = List.fold_left
             (fun acc t -> acc + t.Engine.tr_admitted)
             0 r.Engine.sr_tenants)

(* --- fault injection under concurrency --------------------------------- *)

(* One tenant's DSP job takes an injected chunk-kill on the FPGA; the
   failure protocol retries it there, and no tenant's result moves:
   every job — faulted tenant included — stays bit-identical to a solo
   fault-free `lmc run` of the same workload. *)
let test_fault_isolated_to_tenant () =
  let load =
    Job.parse
      "tenant dsp weight=1\n\
       tenant a weight=1\n\
       tenant b weight=1\n\
       job dsp dsp_chain size=512\n\
       job a saxpy size=128 count=2\n\
       job b sumsq size=128 count=2\n"
  in
  let config = test_config ~slots:[ ("fpga", 1); ("native", 1) ] () in
  (match Support.Fault.parse_spec "fpga:Dsp*:n=1" with
  | Ok schedule -> Support.Fault.install schedule
  | Error m -> Alcotest.fail m);
  let r =
    Fun.protect ~finally:Support.Fault.clear (fun () ->
        Engine.run ~config load)
  in
  let faults, retries =
    List.fold_left
      (fun (f, rt) j ->
        ( f + j.Engine.jr_metrics.Metrics.device_faults,
          rt + j.Engine.jr_metrics.Metrics.retries ))
      (0, 0) r.Engine.sr_jobs
  in
  check_bool "the injected fault fired" true (faults >= 1);
  check_bool "the failure protocol retried" true (retries >= 1);
  (* faults are attributed to the dsp tenant's job only *)
  List.iter
    (fun j ->
      if j.Engine.jr_spec.Job.j_tenant <> "dsp" then
        check_int
          (Printf.sprintf "job %d: no faults leak to other tenants"
             j.Engine.jr_spec.Job.j_id)
          0 j.Engine.jr_metrics.Metrics.device_faults)
    r.Engine.sr_jobs;
  (* and nobody's output moved *)
  List.iter
    (fun j ->
      check_string
        (Printf.sprintf "job %d (%s): bit-identical to solo"
           j.Engine.jr_spec.Job.j_id j.Engine.jr_spec.Job.j_workload)
        (Engine.solo_output j.Engine.jr_spec)
        j.Engine.jr_output)
    r.Engine.sr_jobs

(* --- bit-identity of a mixed shared-engine load ------------------------ *)

let test_outputs_bit_identical_to_solo () =
  let load =
    Job.synthetic ~workloads:[ "saxpy"; "sumsq"; "dsp_chain" ] ~size:128
      ~jobs_per_tenant:3 ~interarrival_ns:10_000.0
      [ ("gold", 2); ("silver", 1) ]
  in
  let r = Engine.run ~config:(test_config ()) load in
  check_int "all jobs ran" (List.length load.Job.l_jobs)
    (List.length r.Engine.sr_jobs);
  List.iter
    (fun j ->
      check_string
        (Printf.sprintf "job %d (%s on %s): solo = served"
           j.Engine.jr_spec.Job.j_id j.Engine.jr_spec.Job.j_workload
           j.Engine.jr_device)
        (Engine.solo_output j.Engine.jr_spec)
        j.Engine.jr_output)
    r.Engine.sr_jobs

(* --- batching ---------------------------------------------------------- *)

let test_batching_coalesces () =
  let load = Job.parse "tenant a weight=1\njob a saxpy size=64 count=6\n" in
  let config =
    test_config ~slots:[ ("native", 1) ] ~batch_max:4
      ~batch_window:1_000_000.0 ()
  in
  let r = Engine.run ~config load in
  let d = List.hd r.Engine.sr_devices in
  check_bool "windows were shared" true (d.Engine.dr_batched_jobs > 0);
  check_bool "fewer windows than jobs" true
    (d.Engine.dr_windows < d.Engine.dr_jobs);
  check_bool "a batched job is marked" true
    (List.exists (fun j -> j.Engine.jr_batched) r.Engine.sr_jobs);
  (* batching must not blur per-job accounting *)
  List.iter
    (fun j ->
      check_bool
        (Printf.sprintf "job %d: positive measured service"
           j.Engine.jr_spec.Job.j_id)
        true
        (j.Engine.jr_service_ns > 0.0))
    r.Engine.sr_jobs;
  (* and batch-max=1 disables coalescing *)
  let r1 =
    Engine.run ~config:(test_config ~slots:[ ("native", 1) ] ~batch_max:1 ())
      load
  in
  let d1 = List.hd r1.Engine.sr_devices in
  check_int "batch-max=1: no shared windows" 0 d1.Engine.dr_batched_jobs

(* --- per-job metrics attribution --------------------------------------- *)

let test_metrics_attribution () =
  let load =
    Job.parse
      "tenant a weight=1\n\
       job a saxpy size=64 count=2\n\
       job a dsp_chain size=256\n"
  in
  let r = Engine.run ~config:(test_config ()) load in
  (* Metrics.diff against the shared accumulators: every job carries
     only its own activity, so the per-job snapshots stay plausible
     (non-negative counters, some work recorded somewhere). *)
  List.iter
    (fun j ->
      let m = j.Engine.jr_metrics in
      check_bool
        (Printf.sprintf "job %d: non-negative counters" j.Engine.jr_spec.Job.j_id)
        true
        (m.Metrics.vm_instructions >= 0
        && m.Metrics.gpu_kernels >= 0
        && m.Metrics.fpga_runs >= 0
        && m.Metrics.retries >= 0);
      check_bool
        (Printf.sprintf "job %d: did some work" j.Engine.jr_spec.Job.j_id)
        true
        (m.Metrics.vm_instructions > 0
        || m.Metrics.gpu_kernels > 0
        || m.Metrics.fpga_runs > 0
        || m.Metrics.native_instructions > 0))
    r.Engine.sr_jobs;
  check_bool "wall covers every window" true
    (List.for_all
       (fun j -> j.Engine.jr_finish_ns <= r.Engine.sr_wall_ns +. 1e-6)
       r.Engine.sr_jobs)

let test_empty_load_drains () =
  let load = Job.parse "tenant a weight=1\n" in
  let r = Engine.run ~config:(test_config ()) load in
  check_int "no jobs" 0 (List.length r.Engine.sr_jobs);
  check_bool "zero wall" true (r.Engine.sr_wall_ns = 0.0)

let suite =
  ( "serve",
    [
      Alcotest.test_case "job file: grammar, expansion, ordering" `Quick
        test_parse_job_file;
      Alcotest.test_case "job file: errors carry line numbers" `Quick
        test_parse_errors;
      Alcotest.test_case "synthetic loads are deterministic" `Quick
        test_synthetic_deterministic;
      Alcotest.test_case "fairness: contended shares track weights" `Slow
        test_fairness_tracks_weights;
      Alcotest.test_case "quota: burst beyond quota is rejected" `Quick
        test_quota_rejects;
      QCheck_alcotest.to_alcotest prop_admission_respects_quota_and_slots;
      Alcotest.test_case "fault under concurrency stays tenant-local" `Slow
        test_fault_isolated_to_tenant;
      Alcotest.test_case "every job bit-identical to its solo run" `Slow
        test_outputs_bit_identical_to_solo;
      Alcotest.test_case "batching coalesces same-shape jobs" `Quick
        test_batching_coalesces;
      Alcotest.test_case "per-job metrics diff attribution" `Quick
        test_metrics_attribution;
      Alcotest.test_case "an empty load drains immediately" `Quick
        test_empty_load_drains;
    ] )
