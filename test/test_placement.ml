(* The profile-guided placement planner.

   Four layers: a differential harness proving the calibrated Adaptive
   placement is bitwise-identical to pure bytecode on every workload;
   a QCheck property that no plan ever selects a quarantined device
   (the store filters them, the planner must respect it); profile
   store round-trip and warm-hit checks (hex floats make warm
   predictions bit-identical to the cold calibration); and runtime
   checks of the steady-schedule session cache and the online
   re-planner trigger. *)

module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Substitute = Runtime.Substitute
module Metrics = Runtime.Metrics
module Scheduler = Runtime.Scheduler
module Artifact = Runtime.Artifact
module Store = Runtime.Store
module Profile = Placement.Profile
module Calibrate = Placement.Calibrate
module Planner = Placement.Planner

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_store () =
  Profile.load (Filename.temp_file "lm_test_profiles" ".tmp")

let planned_engine ?policy c =
  let ctx = Calibrate.create ~profile_store:(fresh_store ()) c in
  Compiler.engine
    ~policy:(Option.value policy ~default:Substitute.Adaptive)
    ~cost_model:(Planner.cost_fn ctx) c

(* --- differential: planned vs bytecode -------------------------------- *)

(* The planner may only move work, never change it: under the
   calibrated Adaptive policy every workload must produce bitwise the
   same result as the never-substitute baseline. *)
let test_differential_all_workloads () =
  List.iter
    (fun (w : Workloads.t) ->
      let size = w.Workloads.default_size in
      let c = Compiler.compile w.Workloads.source in
      let baseline =
        Exec.call
          (Compiler.engine ~policy:Substitute.Bytecode_only c)
          w.Workloads.entry (w.Workloads.args ~size)
      in
      let planned =
        Exec.call (planned_engine c) w.Workloads.entry (w.Workloads.args ~size)
      in
      check_bool
        (Printf.sprintf "%s: planned = bytecode" w.Workloads.name)
        true
        (Stdlib.compare baseline planned = 0))
    Workloads.all

(* --- property: plans respect quarantine ------------------------------- *)

let devices_of_plan segs =
  List.filter_map
    (function
      | Substitute.S_bytecode _ -> None
      | Substitute.S_device (a, _) -> Some (Artifact.device a))
    segs

let test_plan_never_uses_quarantined () =
  (* dsp_chain has gpu, fpga and native artifacts for its chain, so
     every quarantine subset changes the candidate set. *)
  let w = Workloads.find "dsp_chain" in
  let c = Compiler.compile w.Workloads.source in
  let arb =
    QCheck.triple QCheck.bool QCheck.bool QCheck.bool
  in
  let prop (q_gpu, q_fpga, q_native) =
    Store.clear_quarantine c.Compiler.store;
    let quarantined =
      List.filter_map
        (fun (q, d) -> if q then Some d else None)
        [ q_gpu, Artifact.Gpu; q_fpga, Artifact.Fpga; q_native, Artifact.Native ]
    in
    List.iter
      (fun d -> Store.quarantine c.Compiler.store ~device:d ~reason:"test")
      quarantined;
    let ctx = Calibrate.create ~profile_store:(fresh_store ()) c in
    let report = Planner.plan ctx ~n:64 in
    Store.clear_quarantine c.Compiler.store;
    List.for_all
      (fun (gp : Planner.graph_plan) ->
        List.for_all
          (fun d -> not (List.mem d quarantined))
          (devices_of_plan gp.Planner.gp_planned.Planner.cd_plan))
      report.Planner.rp_graphs
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:50 ~name:"plan avoids quarantined devices" arb
       prop)

(* --- profile store ----------------------------------------------------- *)

let test_profile_roundtrip () =
  let path = Filename.temp_file "lm_test_profiles" ".tmp" in
  Sys.remove path;
  let store = Profile.load path in
  (* Deliberately awkward floats: only an exact (hex) serialization
     round-trips them bit-for-bit. *)
  let e =
    {
      Profile.pr_key = Profile.key ~device:"gpu" ~chain:"F1+F2" ~content:"k" ~params:"p";
      pr_device = "gpu";
      pr_per_elem_ns = 1.0 /. 3.0;
      pr_overhead_ns = 10240.7;
      pr_bytes_per_elem = 4.0;
      pr_source = Profile.Measured;
      pr_label = "F1+F2";
    }
  in
  Profile.add store e;
  Profile.save store;
  let reloaded = Profile.load path in
  check_int "one entry" 1 (Profile.size reloaded);
  (match Profile.find reloaded e.Profile.pr_key with
  | None -> Alcotest.fail "entry lost on reload"
  | Some e' ->
    check_string "device" "gpu" e'.Profile.pr_device;
    check_string "label" "F1+F2" e'.Profile.pr_label;
    check_bool "source" true (e'.Profile.pr_source = Profile.Measured);
    check_bool "per_elem bit-identical" true
      (Int64.bits_of_float e'.Profile.pr_per_elem_ns
      = Int64.bits_of_float e.Profile.pr_per_elem_ns);
    check_bool "overhead bit-identical" true
      (Int64.bits_of_float e'.Profile.pr_overhead_ns
      = Int64.bits_of_float e.Profile.pr_overhead_ns);
    check_bool "same prediction" true
      (Profile.predict e ~n:512 = Profile.predict e' ~n:512));
  Sys.remove path

let test_warm_run_hits_store () =
  let w = Workloads.find "dsp_chain" in
  let c = Compiler.compile w.Workloads.source in
  let path = Filename.temp_file "lm_test_profiles" ".tmp" in
  Sys.remove path;
  let cold = Planner.run ~profile_path:path ~n:512 c in
  check_int "cold run: no hits" 0 cold.Planner.rp_hits;
  check_bool "cold run calibrates" true (cold.Planner.rp_calibrated > 0);
  let warm = Planner.run ~profile_path:path ~n:512 c in
  check_bool "warm run hits" true (warm.Planner.rp_hits > 0);
  check_int "warm run: no recalibration" 0 warm.Planner.rp_calibrated;
  (* hex-float persistence: warm predictions are bit-identical *)
  List.iter2
    (fun (g1 : Planner.graph_plan) (g2 : Planner.graph_plan) ->
      check_bool
        (Printf.sprintf "%s: same makespan" g1.Planner.gp_uid)
        true
        (g1.Planner.gp_planned.Planner.cd_makespan_ns
        = g2.Planner.gp_planned.Planner.cd_makespan_ns);
      check_string "same plan" g1.Planner.gp_planned.Planner.cd_plan_text
        g2.Planner.gp_planned.Planner.cd_plan_text)
    cold.Planner.rp_graphs warm.Planner.rp_graphs;
  Sys.remove path

(* --- steady-schedule session cache ------------------------------------- *)

let test_steady_schedule_cached () =
  let w = Workloads.find "dsp_chain" in
  let c = Compiler.compile w.Workloads.source in
  let engine = Compiler.engine ~schedule:Scheduler.Steady_state c in
  let size = 256 in
  let r1 = Exec.call engine w.Workloads.entry (w.Workloads.args ~size) in
  let m1 = Metrics.snapshot (Exec.metrics engine) in
  check_int "first run solves, no cache hit" 0 m1.Metrics.sched_cache_hits;
  let r2 = Exec.call engine w.Workloads.entry (w.Workloads.args ~size) in
  let m2 = Metrics.snapshot (Exec.metrics engine) in
  check_bool "second run served from cache" true
    (m2.Metrics.sched_cache_hits > 0);
  check_bool "cached schedule same result" true (Stdlib.compare r1 r2 = 0)

(* --- online re-planning ------------------------------------------------- *)

let test_replan_triggers_on_underperforming_model () =
  let w = Workloads.find "dsp_chain" in
  let c = Compiler.compile w.Workloads.source in
  (* A delusional model that predicts near-zero cost for every device
     launch: the first real launch exceeds factor * prediction, the
     artifact is demoted and the segment re-planned mid-run. *)
  let delusional ~n:_ artifact _chain =
    match artifact with None -> 1.0 | Some _ -> 0.001
  in
  let engine =
    Compiler.engine ~policy:Substitute.Prefer_accelerators
      ~cost_model:delusional ~replan_factor:1.5 c
  in
  let size = 512 in
  let planned = Exec.call engine w.Workloads.entry (w.Workloads.args ~size) in
  let m = Metrics.snapshot (Exec.metrics engine) in
  check_bool "replan counted" true (m.Metrics.replans > 0);
  check_bool "demotion recorded" true (Exec.observed_costs engine <> []);
  let baseline =
    Exec.call
      (Compiler.engine ~policy:Substitute.Bytecode_only c)
      w.Workloads.entry (w.Workloads.args ~size)
  in
  check_bool "re-planned run still correct" true
    (Stdlib.compare baseline planned = 0)

let test_no_replan_without_factor () =
  let w = Workloads.find "dsp_chain" in
  let c = Compiler.compile w.Workloads.source in
  let engine = Compiler.engine c in
  ignore (Exec.call engine w.Workloads.entry (w.Workloads.args ~size:512));
  let m = Metrics.snapshot (Exec.metrics engine) in
  check_int "re-planning disarmed by default" 0 m.Metrics.replans

(* --- planner report shape ----------------------------------------------- *)

let test_plan_dsp_chain_beats_default () =
  (* The acceptance example: dsp_chain's accelerator-first default is
     dominated by the PCIe boundary, and the calibrated planner must
     notice and pick a strictly faster placement. *)
  let w = Workloads.find "dsp_chain" in
  let c = Compiler.compile w.Workloads.source in
  let ctx = Calibrate.create ~profile_store:(fresh_store ()) c in
  let report = Planner.plan ctx ~n:512 in
  check_bool "one task graph" true (List.length report.Planner.rp_graphs = 1);
  let gp = List.hd report.Planner.rp_graphs in
  let planned = gp.Planner.gp_planned and default = gp.Planner.gp_default in
  check_bool "planner beats accelerator-first default" true
    (planned.Planner.cd_makespan_ns < default.Planner.cd_makespan_ns);
  check_bool "candidates sorted by makespan" true
    (let ms =
       List.map (fun cd -> cd.Planner.cd_makespan_ns) gp.Planner.gp_candidates
     in
     List.sort compare ms = ms);
  check_bool "rationale names the decision" true
    (String.length gp.Planner.gp_rationale > 0)

(* --- multi-length crossover sweep -------------------------------- *)

let test_crossover_sweep () =
  (* dsp_chain is the canonical length-sensitive program: the winner
     at 64 elements (boundary-dominated) need not be the winner at
     64k (bandwidth-dominated). The sweep must be internally
     consistent regardless of where the flips land. *)
  let w = Workloads.find "dsp_chain" in
  let c = Compiler.compile w.Workloads.source in
  let ctx = Calibrate.create ~profile_store:(fresh_store ()) c in
  let ns = Planner.sweep_lengths ~lo:64 ~hi:4096 () in
  check_bool "powers of two, ascending" true
    (ns = [ 64; 128; 256; 512; 1024; 2048; 4096 ]);
  let tables = Planner.crossover ctx ~ns in
  check_bool "at least one swept graph" true (tables <> []);
  List.iter
    (fun xo ->
      let rows = xo.Planner.xo_rows in
      check_int "one row per length" (List.length ns) (List.length rows);
      check_bool "rows ascend in n" true
        (let lens = List.map (fun r -> r.Planner.xr_n) rows in
         List.sort compare lens = lens);
      List.iter
        (fun r ->
          (* the recorded winner really is the argmin of its row *)
          let best_ns =
            List.fold_left
              (fun acc (_, m) -> Float.min acc m)
              infinity r.Planner.xr_makespans
          in
          check_bool
            (Printf.sprintf "%s n=%d: winner is the row minimum"
               xo.Planner.xo_uid r.Planner.xr_n)
            true
            (r.Planner.xr_best.Planner.cd_makespan_ns <= best_ns +. 1e-6))
        rows)
    tables;
  check_bool "render mentions a winner column" true
    (Test_types.contains (Planner.render_crossover tables) "best")

let suite =
  ( "placement",
    [
      Alcotest.test_case "differential: planned = bytecode (all workloads)"
        `Slow test_differential_all_workloads;
      Alcotest.test_case "property: plan avoids quarantined devices" `Quick
        test_plan_never_uses_quarantined;
      Alcotest.test_case "profile store round-trips hex floats" `Quick
        test_profile_roundtrip;
      Alcotest.test_case "warm run hits the store, no recalibration" `Quick
        test_warm_run_hits_store;
      Alcotest.test_case "steady schedule served from session cache" `Quick
        test_steady_schedule_cached;
      Alcotest.test_case "online re-plan triggers on model miss" `Quick
        test_replan_triggers_on_underperforming_model;
      Alcotest.test_case "no re-planning unless armed" `Quick
        test_no_replan_without_factor;
      Alcotest.test_case "dsp_chain: planner beats accelerator-first" `Quick
        test_plan_dsp_chain_beats_default;
      Alcotest.test_case "crossover sweep is consistent at every length" `Quick
        test_crossover_sweep;
    ] )
