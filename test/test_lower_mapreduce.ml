(* The cross-path differential harness for the map/reduce lowering.

   [Lime_ir.Lower_mapreduce] rewrites every kernel site into a
   scatter/worker/gather task graph and [Runtime.Exec] executes it
   through the ordinary plan/actor/steady-state machinery. That
   rewrite is only admissible if it is *unobservable*: for every
   program, every policy and every stream length the lowered path must
   produce bit-for-bit the value (or the trap) of the legacy
   whole-array dispatch it replaces. This suite proves it by brute
   force over the workload suite, over edge-shaped streams (empty,
   singleton, length-not-divisible-by-K), and over randomly generated
   map/reduce bodies with random scatter widths. *)

module Compiler = Liquid_metal.Compiler
module Lm = Liquid_metal.Lm
module Exec = Runtime.Exec
module Store = Runtime.Store
module Substitute = Runtime.Substitute
module Metrics = Runtime.Metrics
module Lmr = Lime_ir.Lower_mapreduce
module Rates = Analysis.Rates
module Ir = Lime_ir.Ir
module I = Lime_ir.Interp

(* One compile per distinct source; engines are cheap, compiles are
   not. Keyed by the source text itself so the generated programs of
   the properties below share the cache with the workloads. *)
let compiled_cache : (string, Compiler.compiled) Hashtbl.t = Hashtbl.create 64

let compile_cached source =
  match Hashtbl.find_opt compiled_cache source with
  | Some c -> c
  | None ->
    let c = Compiler.compile source in
    Hashtbl.add compiled_cache source c;
    c

(* Both paths must agree on traps too (empty reduce, mismatched map
   arrays), so a run's outcome is a value or a runtime error. *)
type outcome = Value of I.v | Trap of string

let show_outcome = function
  | Value v -> Format.asprintf "%a" I.pp v
  | Trap m -> "trap: " ^ m

let run_path ?map_chunks ?reduce_chunks ~policy ~lower source entry args :
    outcome * Metrics.snapshot =
  let c = compile_cached source in
  Store.clear_quarantine c.Compiler.store;
  let engine =
    Compiler.engine ~policy ~lower_mapreduce:lower ?map_chunks ?reduce_chunks c
  in
  let out =
    match Exec.call engine entry args with
    | v -> Value v
    | exception I.Runtime_error m -> Trap m
    | exception Bytecode.Vm.Vm_error m -> Trap m
    (* the legacy whole-array GPU hook surfaces validation failures as
       device errors; the messages are the canonical ones, so traps
       compare by message across paths *)
    | exception Gpu.Simt.Device_error m -> Trap m
  in
  Store.clear_quarantine c.Compiler.store;
  (out, Metrics.snapshot (Exec.metrics engine))

let check_same ~ctx (expected : outcome) (got : outcome) =
  if Stdlib.compare expected got <> 0 then
    Alcotest.failf "%s: lowered path diverged from legacy\n  legacy:  %s\n  lowered: %s"
      ctx (show_outcome expected) (show_outcome got)

(* --- the workload matrix ------------------------------------------------ *)

(* Two stream lengths per workload: a round size and one that no small
   chunk count divides evenly, so gather must reassemble unequal
   chunks. *)
let test_sizes =
  [
    "saxpy", (256, 193); "dotproduct", (256, 97); "matmul", (8, 7);
    "conv2d", (8, 5); "nbody", (16, 13); "mandelbrot", (12, 9);
    "sumsq", (4096, 2049); "bitflip", (64, 33); "dsp_chain", (128, 65);
    "prefix_sum", (128, 77);
    "blackscholes", (128, 51); "fir4", (128, 49); "crc8", (64, 21);
  ]

let matrix_policies =
  [
    "bytecode", Substitute.Bytecode_only;
    "gpu", Substitute.Prefer_devices [ Runtime.Artifact.Gpu ];
  ]

let test_workload_differential name () =
  let w = Workloads.find name in
  let round, odd = List.assoc name test_sizes in
  List.iter
    (fun size ->
      let args = w.Workloads.args ~size in
      List.iter
        (fun (pname, policy) ->
          let ctx what =
            Printf.sprintf "%s / n=%d / %s / %s" name size pname what
          in
          let legacy, _ =
            run_path ~policy ~lower:false w.Workloads.source
              w.Workloads.entry args
          in
          let lowered, m =
            run_path ~policy ~lower:true w.Workloads.source w.Workloads.entry
              args
          in
          check_same ~ctx:(ctx "lowered") legacy lowered;
          (* Forced map scatter width that does not divide the stream.
             Reduces keep their default K=1: a wider reduce
             reassociates the fold, which floating-point combines can
             observe — the exact-arithmetic reassociation cases live in
             [test_edge_lengths_reduce]. *)
          let forced, _ =
            run_path ~policy ~lower:true ~map_chunks:3 w.Workloads.source
              w.Workloads.entry args
          in
          check_same ~ctx:(ctx "map_chunks=3") legacy forced;
          if w.Workloads.category = Workloads.Gpu_map && m.Metrics.mr_runs = 0
          then
            Alcotest.failf
              "%s: map/reduce workload ran without a lowered mr run"
              (ctx "metrics"))
        matrix_policies)
    [ round; odd ]

(* --- edge-shaped streams ------------------------------------------------ *)

let edge_source =
  {|
public class Edge {
  local static float fma(float a, float x, float y) {
    return a * x + y;
  }
  local static float add(float a, float b) { return a + b; }
  public static float[[]] runMap(float a, float[[]] xs, float[[]] ys) {
    return Edge @ fma(a, xs, ys);
  }
  public static float runSum(float[[]] xs) {
    return Edge @@ add(xs);
  }
}
|}

let farr n f = Lm.float_array (Array.init n f)

(* Empty, singleton, tiny and around-the-chunk-boundary lengths, under
   scatter widths that do not divide them. *)
let test_edge_lengths_map () =
  List.iter
    (fun n ->
      let args =
        [ Lm.float 2.0; farr n float_of_int; farr n (fun i -> float_of_int (2 * i) -. 1.0) ]
      in
      List.iter
        (fun (pname, policy) ->
          let legacy, _ =
            run_path ~policy ~lower:false edge_source "Edge.runMap" args
          in
          List.iter
            (fun chunks ->
              let lowered, _ =
                run_path ~policy ~lower:true ?map_chunks:chunks edge_source
                  "Edge.runMap" args
              in
              check_same
                ~ctx:
                  (Printf.sprintf "edge map n=%d / %s / K=%s" n pname
                     (match chunks with
                     | None -> "auto"
                     | Some k -> string_of_int k))
                legacy lowered)
            [ None; Some 3; Some 7 ])
        matrix_policies)
    [ 0; 1; 2; 3; 5; 7; 1023; 1025 ]

(* Integer-valued floats keep f32 addition exact, so even a chunked
   (reassociated) combine must reproduce the sequential fold bit for
   bit. *)
let test_edge_lengths_reduce () =
  List.iter
    (fun n ->
      let args = [ farr n float_of_int ] in
      List.iter
        (fun (pname, policy) ->
          let legacy, _ =
            run_path ~policy ~lower:false edge_source "Edge.runSum" args
          in
          List.iter
            (fun chunks ->
              let lowered, _ =
                run_path ~policy ~lower:true ?reduce_chunks:chunks edge_source
                  "Edge.runSum" args
              in
              check_same
                ~ctx:
                  (Printf.sprintf "edge reduce n=%d / %s / K=%s" n pname
                     (match chunks with
                     | None -> "auto"
                     | Some k -> string_of_int k))
                legacy lowered)
            [ None; Some 3; Some 4 ])
        matrix_policies)
    [ 1; 2; 3; 5; 100; 1025 ]

(* The validation traps must be path-independent: an empty reduce and
   mismatched map arrays raise the identical error on both paths. *)
let test_edge_traps () =
  List.iter
    (fun (what, entry, args) ->
      List.iter
        (fun (pname, policy) ->
          let legacy, _ = run_path ~policy ~lower:false edge_source entry args in
          let lowered, _ = run_path ~policy ~lower:true edge_source entry args in
          (match legacy with
          | Trap _ -> ()
          | Value v ->
            Alcotest.failf "%s (%s): expected a trap, got %s" what pname
              (Format.asprintf "%a" I.pp v));
          check_same ~ctx:(Printf.sprintf "%s / %s" what pname) legacy lowered)
        matrix_policies)
    [
      ("empty reduce", "Edge.runSum", [ farr 0 float_of_int ]);
      ( "mismatched map arrays",
        "Edge.runMap",
        [ Lm.float 1.0; farr 3 float_of_int; farr 5 float_of_int ] );
    ]

(* A lowered run is visible in the metrics: one mr run per site
   execution and exactly the scatter width's worth of chunks. *)
let test_metrics_account_chunks () =
  let n = 4096 in
  let args = [ Lm.float 2.0; farr n float_of_int; farr n float_of_int ] in
  let _, m =
    run_path
      ~policy:(Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      ~lower:true ~map_chunks:4 edge_source "Edge.runMap" args
  in
  Alcotest.(check int) "one lowered run" 1 m.Metrics.mr_runs;
  Alcotest.(check int) "four chunks" 4 m.Metrics.mr_chunks;
  let _, legacy_m =
    run_path
      ~policy:(Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      ~lower:false edge_source "Edge.runMap" args
  in
  Alcotest.(check int) "legacy records no lowered runs" 0
    legacy_m.Metrics.mr_runs

(* --- properties --------------------------------------------------------- *)

(* Random map bodies: arbitrary int arithmetic over (a, x, y) —
   including non-commutative and non-associative operators — must
   survive an arbitrary scatter width on both policies. *)
let gen_body =
  let open QCheck2.Gen in
  sized @@ QCheck2.Gen.fix (fun self n ->
      if n <= 0 then
        oneof [ map string_of_int (int_range (-9) 99); oneofl [ "a"; "x"; "y" ] ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map2 (fun l r -> Printf.sprintf "(%s + %s)" l r) sub sub;
            map2 (fun l r -> Printf.sprintf "(%s - %s)" l r) sub sub;
            map2 (fun l r -> Printf.sprintf "(%s * %s)" l r) sub sub;
            map2 (fun l r -> Printf.sprintf "(%s & %s)" l r) sub sub;
            map2 (fun l r -> Printf.sprintf "(%s ^ %s)" l r) sub sub;
            map2 (fun l r -> Printf.sprintf "(%s / (1 + (%s & 7)))" l r) sub sub;
          ])

let map_source_of body =
  Printf.sprintf
    {|
public class R {
  local static int f(int a, int x, int y) { return %s; }
  public static int[[]] run(int a, int[[]] xs, int[[]] ys) {
    return R @ f(a, xs, ys);
  }
}
|}
    body

let qcheck_random_bodies =
  let open QCheck2 in
  let gen =
    Gen.tup4 gen_body (Gen.int_range 1 8) (Gen.int_range 0 200)
      (Gen.oneofl (List.map snd matrix_policies))
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:40
       ~name:"random map bodies x random K == legacy dispatch" gen
       (fun (body, k, n, policy) ->
         let source = map_source_of body in
         let args =
           [
             Lm.int 3;
             Lm.int_array (Array.init n (fun i -> (i * 7) - 11));
             Lm.int_array (Array.init n (fun i -> 5 - (i * 3)));
           ]
         in
         let legacy, _ = run_path ~policy ~lower:false source "R.run" args in
         let lowered, _ =
           run_path ~policy ~lower:true ~map_chunks:k source "R.run" args
         in
         Stdlib.compare legacy lowered = 0))

(* Random reduces against ground truth: the lowered path at any
   scatter width equals the sequential left fold computed here in
   OCaml (int addition — exact, so reassociation is harmless). *)
let reduce_source =
  {|
public class S {
  local static int add(int a, int b) { return a + b; }
  public static int run(int[[]] xs) { return S @@ add(xs); }
}
|}

let qcheck_random_reduces =
  let open QCheck2 in
  let gen =
    Gen.tup3
      (Gen.array_size (Gen.int_range 1 400) (Gen.int_range (-1000) 1000))
      (Gen.int_range 1 8)
      (Gen.oneofl (List.map snd matrix_policies))
  in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:40 ~name:"random reduce x random K == sequential fold"
       gen
       (fun (xs, k, policy) ->
         let expected = Array.fold_left ( + ) xs.(0) (Array.sub xs 1 (Array.length xs - 1)) in
         match
           run_path ~policy ~lower:true ~reduce_chunks:k reduce_source "S.run"
             [ Lm.int_array xs ]
         with
         | Value v, _ -> Lm.as_int v = expected
         | Trap _, _ -> false))

(* Every lowered graph hands the steady-state scheduler a solvable
   rate graph: scatter/K-workers/gather balances with the all-ones
   repetition vector for any K. *)
let qcheck_rates_solvable =
  let open QCheck2 in
  QCheck_alcotest.to_alcotest
    (Test.make ~count:60 ~name:"scatter/gather rate graph solvable for any K"
       (Gen.int_range 1 64) (fun k ->
         match Rates.solve (Rates.scatter_gather ~workers:k) with
         | Error _ -> false
         | Ok sched ->
           List.length sched.Rates.s_reps = k + 2
           && List.for_all (fun (_, r) -> r = 1) sched.Rates.s_reps))

(* --- lowering shape ----------------------------------------------------- *)

(* The lowering itself: every kernel site yields a worker whose UID is
   the site UID (so per-site artifacts substitute directly) and whose
   chunk bounds tile the stream exactly. *)
let test_lowering_shape () =
  let c = compile_cached (Workloads.find "dotproduct").Workloads.source in
  Alcotest.(check int) "two kernel sites" 2
    (Ir.String_map.cardinal c.Compiler.lowered);
  Ir.String_map.iter
    (fun uid (lw : Lmr.lowered) ->
      Alcotest.(check string) "worker uid = site uid" uid
        lw.Lmr.lw_worker.Ir.uid;
      Alcotest.(check bool) "worker is relocatable" true
        lw.Lmr.lw_worker.Ir.relocatable)
    c.Compiler.lowered;
  List.iter
    (fun (n, chunks) ->
      let bounds = Lmr.split_bounds ~n ~chunks in
      Alcotest.(check int) "chunk count" chunks (List.length bounds);
      let total = List.fold_left (fun acc (_, len) -> acc + len) 0 bounds in
      Alcotest.(check int) "bounds tile the stream" n total;
      let rec contiguous pos = function
        | [] -> ()
        | (off, len) :: rest ->
          Alcotest.(check int) "contiguous" pos off;
          if len < 0 then Alcotest.fail "negative chunk";
          contiguous (pos + len) rest
      in
      contiguous 0 bounds)
    [ (0, 1); (1, 1); (7, 3); (1024, 4); (1025, 4); (5, 5) ]

(* Reduce scatter widths obey the reassociation contract: a reduce
   stays K=1 unless its combiner is proven associative+commutative, in
   which case it shares the map policy; an explicit override always
   wins. *)
let test_chunks_for_assoc () =
  let c = compile_cached (Workloads.find "sumsq").Workloads.source in
  let kind_of pick =
    let found =
      Ir.String_map.fold
        (fun _ (lw : Lmr.lowered) acc ->
          match lw.Lmr.lw_kind with
          | Lmr.K_reduce _ when pick = `Reduce -> Some lw.Lmr.lw_kind
          | Lmr.K_map _ when pick = `Map -> Some lw.Lmr.lw_kind
          | _ -> acc)
        c.Compiler.lowered None
    in
    match found with
    | Some k -> k
    | None -> Alcotest.fail "sumsq should lower both a map and a reduce site"
  in
  let reduce = kind_of `Reduce in
  let map = kind_of `Map in
  Alcotest.(check int) "unproven reduce stays sequential" 1
    (Lmr.chunks_for ~n:4096 reduce);
  Alcotest.(check int) "proven reduce uses the map policy" 4
    (Lmr.chunks_for ~assoc:true ~n:4096 reduce);
  Alcotest.(check int) "proven reduce on a small stream stays narrow" 1
    (Lmr.chunks_for ~assoc:true ~n:100 reduce);
  Alcotest.(check int) "override beats the proof gate" 6
    (Lmr.chunks_for ~override:6 ~n:4096 reduce);
  Alcotest.(check int) "assoc flag does not perturb maps" 4
    (Lmr.chunks_for ~assoc:true ~n:4096 map)

let suite =
  ( "lower_mapreduce",
    List.map
      (fun (name, _) ->
        Alcotest.test_case ("differential: " ^ name) `Slow
          (test_workload_differential name))
      test_sizes
    @ [
        Alcotest.test_case "edge lengths: map" `Slow test_edge_lengths_map;
        Alcotest.test_case "edge lengths: reduce" `Slow
          test_edge_lengths_reduce;
        Alcotest.test_case "traps are path-independent" `Quick test_edge_traps;
        Alcotest.test_case "metrics account lowered chunks" `Quick
          test_metrics_account_chunks;
        Alcotest.test_case "lowering shape" `Quick test_lowering_shape;
        Alcotest.test_case "reduce chunks gated on proven assoc" `Quick
          test_chunks_for_assoc;
        qcheck_random_bodies;
        qcheck_random_reduces;
        qcheck_rates_solvable;
      ] )
