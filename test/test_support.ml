(* Tests for the support substrate: growable vectors, statistics,
   unique identifiers, source locations, diagnostics. *)

open Support

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- Vec -------------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  check_bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get 0" 0 (Vec.get v 0);
  check_int "get 99" 9801 (Vec.get v 99);
  Vec.set v 10 (-1);
  check_int "set" (-1) (Vec.get v 10)

let test_vec_stack_ops () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check_int "top" 3 (Vec.top v);
  check_int "pop" 3 (Vec.pop v);
  check_int "length after pop" 2 (Vec.length v);
  Vec.truncate v 1;
  check_int "after truncate" 1 (Vec.length v);
  Vec.clear v;
  check_bool "cleared" true (Vec.is_empty v)

let test_vec_iteration () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check_int "iteri count" 4 (List.length !seen);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v);
  check_int "to_array" 4 (Array.length (Vec.to_array v))

let test_vec_errors () =
  let v = Vec.of_list [ 1 ] in
  Alcotest.check_raises "bad get" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () ->
      ignore (Vec.pop v);
      ignore (Vec.pop v))

let prop_vec_roundtrip =
  QCheck2.Test.make ~name:"vec: of_list/to_list roundtrip" ~count:200
    QCheck2.Gen.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

(* --- Stats ------------------------------------------------------------ *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  check_int "count" 4 s.count;
  Alcotest.(check (float 1e-9)) "mean" 2.5 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.max;
  Alcotest.(check (float 1e-6)) "stddev" 1.118034 s.stddev;
  (* linear interpolation between closest ranks, h = q(n-1) *)
  Alcotest.(check (float 1e-9)) "p50" 2.5 s.p50;
  Alcotest.(check (float 1e-9)) "p95" 3.85 s.p95;
  Alcotest.(check (float 1e-9)) "p99" 3.97 s.p99;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize []))

let test_stats_percentile () =
  let xs = [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.percentile xs 1.0);
  Alcotest.(check (float 1e-9)) "interpolated" 1.4 (Stats.percentile xs 0.1);
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Stats.percentile [ 7.0 ] 0.95);
  (* order-insensitive: the input need not be sorted *)
  Alcotest.(check (float 1e-9)) "unsorted = sorted"
    (Stats.percentile [ 1.0; 2.0; 3.0 ] 0.75)
    (Stats.percentile [ 3.0; 1.0; 2.0 ] 0.75);
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile [] 0.5));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: q outside [0,1]") (fun () ->
      ignore (Stats.percentile [ 1.0 ] 1.5))

let test_stats_edge () =
  (* single sample: every percentile is that sample, stddev 0 *)
  let s = Stats.summarize [ 42.0 ] in
  check_int "single count" 1 s.count;
  Alcotest.(check (float 1e-9)) "single p50" 42.0 s.p50;
  Alcotest.(check (float 1e-9)) "single p99" 42.0 s.p99;
  Alcotest.(check (float 1e-9)) "single stddev" 0.0 s.stddev;
  (* NaN anywhere is rejected loudly, not silently mis-sorted *)
  Alcotest.check_raises "nan sample"
    (Invalid_argument "Stats.percentile: NaN sample") (fun () ->
      ignore (Stats.percentile [ 1.0; Float.nan; 2.0 ] 0.5));
  Alcotest.check_raises "nan summarize"
    (Invalid_argument "Stats.summarize: NaN sample") (fun () ->
      ignore (Stats.summarize [ Float.nan ]));
  (* a NaN quantile is out of range, not propagated *)
  Alcotest.check_raises "nan q"
    (Invalid_argument "Stats.percentile: q outside [0,1]") (fun () ->
      ignore (Stats.percentile [ 1.0; 2.0 ] Float.nan));
  (* infinities are legitimate samples and sort to the extremes *)
  Alcotest.(check (float 1e-9)) "inf max" Float.infinity
    (Stats.percentile [ 1.0; Float.infinity ] 1.0)

(* --- Registry --------------------------------------------------------- *)

let test_registry_basics () =
  let r = Registry.create () in
  let got ?labels m =
    Option.value ~default:Float.nan (Registry.value ?labels m)
  in
  let c = Registry.counter r ~help:"widgets made" "widgets_total" in
  Registry.inc c 1.0;
  Registry.inc c ~labels:[ ("kind", "round") ] 2.0;
  Registry.inc c ~labels:[ ("kind", "round") ] 3.0;
  Alcotest.(check (float 1e-9)) "unlabeled" 1.0 (got c);
  Alcotest.(check (float 1e-9)) "labeled" 5.0
    (got ~labels:[ ("kind", "round") ] c);
  (* label order is canonicalized *)
  let g = Registry.gauge r "depth" in
  Registry.set g ~labels:[ ("b", "2"); ("a", "1") ] 7.0;
  Alcotest.(check (float 1e-9)) "sorted labels" 7.0
    (got ~labels:[ ("a", "1"); ("b", "2") ] g);
  (* re-registration is idempotent; a kind conflict is not *)
  let c' = Registry.counter r "widgets_total" in
  Registry.inc c' 1.0;
  Alcotest.(check (float 1e-9)) "same metric" 2.0 (got c);
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Registry: widgets_total already registered as a counter")
    (fun () -> ignore (Registry.gauge r "widgets_total"));
  Alcotest.check_raises "bad name"
    (Invalid_argument "Registry: invalid metric name \"9lives\"") (fun () ->
      ignore (Registry.counter r "9lives"));
  Alcotest.check_raises "negative counter inc"
    (Invalid_argument "Registry.inc: negative increment on counter") (fun () ->
      Registry.inc c (-1.0))

let test_registry_export () =
  let r = Registry.create () in
  let c = Registry.counter r ~help:"launches" "launches_total" in
  Registry.inc c ~labels:[ ("device", "gpu") ] 3.0;
  let h = Registry.histogram r ~buckets:[ 1.0; 10.0 ] "latency_ns" in
  Registry.observe h 0.5;
  Registry.observe h 5.0;
  Registry.observe h 50.0;
  let text = Registry.to_text r in
  let has = Test_types.contains text in
  Alcotest.(check bool) "help line" true (has "# HELP launches_total launches");
  Alcotest.(check bool) "type line" true (has "# TYPE launches_total counter");
  Alcotest.(check bool) "labeled sample" true
    (has "launches_total{device=\"gpu\"} 3");
  (* histogram buckets are cumulative and end with +Inf *)
  Alcotest.(check bool) "bucket le=1" true (has "latency_ns_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "bucket le=10" true
    (has "latency_ns_bucket{le=\"10\"} 2");
  Alcotest.(check bool) "bucket inf" true
    (has "latency_ns_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "count" true (has "latency_ns_count 3");
  Alcotest.(check bool) "sum" true (has "latency_ns_sum 55.5");
  let json = Registry.to_json r in
  Alcotest.(check bool) "json name" true
    (Test_types.contains json "\"name\":\"launches_total\"");
  Alcotest.(check bool) "json labels" true
    (Test_types.contains json "\"device\":\"gpu\"")

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive entry") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_table () =
  let t = Stats.Table.create ~columns:[ "name"; "value" ] in
  Stats.Table.add_row t [ "alpha"; "1" ];
  Stats.Table.add_row t [ "b"; "22" ];
  let rendered = Stats.Table.render t in
  check_bool "header" true (Test_types.contains rendered "name");
  check_bool "rule" true (Test_types.contains rendered "-----");
  check_bool "row order" true
    (String.index rendered 'a' < String.index rendered 'b');
  Alcotest.check_raises "bad row"
    (Invalid_argument "Stats.Table.add_row: column count mismatch") (fun () ->
      Stats.Table.add_row t [ "only-one" ])

(* --- Ident ------------------------------------------------------------ *)

let test_ident_uniqueness () =
  let a = Ident.fresh "x" in
  let b = Ident.fresh "x" in
  check_bool "distinct stamps" false (Ident.equal a b);
  check_bool "same base" true (Ident.base a = Ident.base b);
  check_bool "name embeds base" true (Test_types.contains (Ident.name a) "x");
  check_bool "ordered" true (Ident.compare a b <> 0)

let test_ident_containers () =
  let a = Ident.fresh "m" and b = Ident.fresh "m" in
  let m = Ident.Map.(empty |> add a 1 |> add b 2) in
  check_int "map size" 2 (Ident.Map.cardinal m);
  check_int "lookup" 1 (Ident.Map.find a m);
  let s = Ident.Set.of_list [ a; b; a ] in
  check_int "set size" 2 (Ident.Set.cardinal s);
  let t = Ident.Tbl.create 4 in
  Ident.Tbl.add t a "first";
  check_string "tbl" "first" (Ident.Tbl.find t a)

(* --- Srcloc / Diag ------------------------------------------------------ *)

let test_srcloc () =
  let a = Srcloc.make ~file:"f.lime" ~line:3 ~col:7 ~start:20 ~stop:25 in
  let b = Srcloc.make ~file:"f.lime" ~line:4 ~col:1 ~start:30 ~stop:42 in
  check_string "pp" "f.lime:3:7" (Srcloc.to_string a);
  let m = Srcloc.merge a b in
  check_int "merge keeps start" 20 m.start;
  check_int "merge extends stop" 42 m.stop;
  check_int "merge keeps line" 3 m.line

let test_diag () =
  (match Diag.error ~phase:"test" "bad thing %d" 42 with
  | exception Diag.Compile_error d ->
    check_string "message" "bad thing 42" d.message;
    check_string "phase" "test" d.phase;
    check_bool "formats" true (Test_types.contains (Diag.to_string d) "[test]")
  | _ -> Alcotest.fail "expected Compile_error");
  let w = Diag.warning ~phase:"test" "heads up" in
  check_bool "warning severity" true (w.severity = Diag.Warning)

let suite =
  ( "support",
    [
      Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
      Alcotest.test_case "vec stack ops" `Quick test_vec_stack_ops;
      Alcotest.test_case "vec iteration" `Quick test_vec_iteration;
      Alcotest.test_case "vec errors" `Quick test_vec_errors;
      QCheck_alcotest.to_alcotest prop_vec_roundtrip;
      Alcotest.test_case "stats summary" `Quick test_stats_summary;
      Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
      Alcotest.test_case "stats edge cases" `Quick test_stats_edge;
      Alcotest.test_case "stats geomean" `Quick test_stats_geomean;
      Alcotest.test_case "registry basics" `Quick test_registry_basics;
      Alcotest.test_case "registry export" `Quick test_registry_export;
      Alcotest.test_case "stats table" `Quick test_stats_table;
      Alcotest.test_case "ident uniqueness" `Quick test_ident_uniqueness;
      Alcotest.test_case "ident containers" `Quick test_ident_containers;
      Alcotest.test_case "srcloc" `Quick test_srcloc;
      Alcotest.test_case "diag" `Quick test_diag;
    ] )
