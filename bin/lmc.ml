(* lmc: the Liquid Metal command-line compiler and runner.

     lmc compile FILE [--emit DIR]    compile all backends, print manifest
     lmc run FILE ENTRY [ARGS...]     compile and co-execute an entry point
     lmc disasm FILE [FUNCTION]       print bytecode disassembly
     lmc workloads [NAME]             list the benchmark suite / run one
     lmc dump-ir FILE [FUNCTION]      print the intermediate representation
     lmc analyze FILE [--json]        static analysis: purity, ranges, graph lint
     lmc plan TARGET [--n N]          profile-guided placement planning
     lmc report TARGET|--from-trace   trace-driven introspection report
     lmc serve [--jobs FILE]          multi-tenant job scheduling to drain

   Argument syntax for `run`:
     42            int
     3.5           float
     true/false    boolean
     101b          bit array literal
     int:1,2,3     int array
     float:1,2.5   float array *)

module Lm = Liquid_metal.Lm
module Ir = Lime_ir.Ir
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let handle_compile_errors f =
  try f () with
  | Support.Diag.Compile_error d ->
    prerr_endline (Support.Diag.to_string d);
    exit 1
  | Lime_ir.Interp.Runtime_error msg | Bytecode.Vm.Vm_error msg ->
    prerr_endline ("runtime error: " ^ msg);
    exit 1
  | Runtime.Scheduler.Deadlock (msg, _stats) ->
    (* the message already embeds the final round/step/blocked counts *)
    prerr_endline ("deadlock: " ^ msg);
    exit 1
  | Runtime.Exec.Engine_error msg ->
    prerr_endline ("engine error: " ^ msg);
    exit 1

(* --- argument parsing for `run` -------------------------------------- *)

let parse_value (s : string) : Lm.I.v =
  let parse_list conv s =
    List.map conv (String.split_on_char ',' s)
  in
  match String.index_opt s ':' with
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "int" -> Lm.int_array (Array.of_list (parse_list int_of_string rest))
    | "float" ->
      Lm.float_array (Array.of_list (parse_list float_of_string rest))
    | _ -> failwith ("unknown array kind: " ^ kind))
  | None -> (
    if s = "true" then Lm.bool true
    else if s = "false" then Lm.bool false
    else if
      String.length s > 1
      && s.[String.length s - 1] = 'b'
      && String.for_all
           (fun c -> c = '0' || c = '1')
           (String.sub s 0 (String.length s - 1))
    then Lm.bits (String.sub s 0 (String.length s - 1))
    else
      match int_of_string_opt s with
      | Some i -> Lm.int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Lm.float f
        | None -> failwith ("cannot parse argument: " ^ s)))

let policy_conv =
  let parse = function
    | "bytecode" -> Ok Runtime.Substitute.Bytecode_only
    | "accel" -> Ok Runtime.Substitute.Prefer_accelerators
    | "gpu" -> Ok (Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
    | "fpga" -> Ok (Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ])
    | "native" ->
      Ok (Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Native ])
    | "smallest" -> Ok Runtime.Substitute.Smallest_substitution
    | "adaptive" -> Ok Runtime.Substitute.Adaptive
    | s -> Error (`Msg ("unknown policy: " ^ s))
  in
  let print ppf p =
    Format.fprintf ppf "%s"
      (match p with
      | Runtime.Substitute.Bytecode_only -> "bytecode"
      | Runtime.Substitute.Prefer_accelerators -> "accel"
      | Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Gpu ] -> "gpu"
      | Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ] -> "fpga"
      | Runtime.Substitute.Prefer_devices _ -> "devices"
      | Runtime.Substitute.Smallest_substitution -> "smallest"
      | Runtime.Substitute.Adaptive -> "adaptive")
  in
  Arg.conv (parse, print)

let schedule_conv =
  let parse = function
    | "steady" -> Ok Runtime.Scheduler.Steady_state
    | "roundrobin" | "rr" -> Ok Runtime.Scheduler.Round_robin
    | s -> Error (`Msg ("unknown schedule: " ^ s ^ " (steady|roundrobin)"))
  in
  let print ppf m =
    Format.fprintf ppf "%s" (Runtime.Scheduler.mode_name m)
  in
  Arg.conv (parse, print)

let schedule_arg =
  Arg.(
    value
    & opt schedule_conv Runtime.Scheduler.Round_robin
    & info [ "schedule" ] ~docv:"MODE"
        ~doc:
          "task-graph scheduling mode: $(b,roundrobin) (default) or \
           $(b,steady) — solve the SDF balance equations and fire actors \
           in steady-state batches (falls back to round-robin when the \
           rates are dynamic or unsolvable)")

let positive_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "must be at least 1 (got %d)" n))
    | None -> Error (`Msg ("not an integer: " ^ s))
  in
  Arg.conv (parse, Format.pp_print_int)

let fifo_capacity_arg =
  Arg.(
    value
    & opt (some positive_int_conv) None
    & info [ "fifo-capacity" ] ~docv:"N"
        ~doc:"task-graph FIFO capacity, at least 1 (default 16)")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Lime source file")

(* --- fault injection --------------------------------------------------- *)

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inject-faults" ] ~docv:"SPEC"
        ~doc:
          "inject deterministic device faults, e.g. $(b,gpu:*:always), \
           $(b,fpga:Dsp*:p=0.25,seed=42), $(b,wire:pcie:at=0/2); the \
           runtime retries with backoff and re-substitutes down to \
           bytecode (see docs/FAULT_TOLERANCE.md)")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-retries" ] ~docv:"N"
        ~doc:"device-launch retries before re-substitution (default 2)")

let lower_arg =
  Arg.(
    value
    & opt bool true
    & info [ "lower-mapreduce" ] ~docv:"BOOL"
        ~doc:
          "execute map/reduce kernel sites as lowered \
           scatter/worker/gather task graphs under the full \
           placement/scheduling/fault machinery (default $(b,true); \
           $(b,false) restores the legacy whole-array dispatch; see \
           docs/LOWERING.md)")

let fuse_arg =
  Arg.(
    value
    & opt bool true
    & info [ "fuse" ] ~docv:"BOOL"
        ~doc:
          "collapse maximal fusible filter runs into single cross-filter \
           kernels, so a fused segment crosses the wire boundary once and \
           streams its result home (default $(b,true); $(b,false) compiles \
           and plans per-stage segments only; see docs/FUSION.md)")

let replan_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "replan" ] ~docv:"FACTOR"
        ~doc:
          "arm online re-planning: a device launch whose measured modeled \
           service time exceeds the cost model's prediction by more than \
           $(docv) demotes the device and re-substitutes the segment \
           mid-run (see docs/PLACEMENT.md)")

let setup_faults = function
  | None -> ()
  | Some spec -> (
    match Support.Fault.parse_spec spec with
    | Ok schedule -> Support.Fault.install schedule
    | Error msg ->
      prerr_endline ("bad --inject-faults spec: " ^ msg);
      exit 2)

(* --- tracing / profiling ---------------------------------------------- *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:
           "record an execution trace and write Chrome trace_event JSON \
            to $(docv) (open in Perfetto or about:tracing)")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:
           "print a profile report: span timings with p50/p95/p99, channel \
            occupancy and boundary traffic, plus the metrics snapshot")

(* Install the ring sink before anything compiles so the compiler-phase
   spans land in the trace too. *)
let setup_tracing ~trace ~profile =
  if trace <> None || profile then
    Support.Trace.set_sink (Support.Trace.ring ())

let finish_tracing ~trace ~profile metrics_snapshot =
  let sink = Support.Trace.current () in
  (match trace with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Support.Trace.Chrome.to_json ~process_name:"lmc" sink);
    close_out oc;
    Printf.printf "trace: wrote %s (%d event(s), %d dropped)\n" path
      (Support.Trace.event_count sink)
      (Support.Trace.dropped sink));
  if profile then begin
    print_string (Support.Trace.Profile.report sink);
    Option.iter
      (fun m -> Format.printf "%a@." Runtime.Metrics.pp m)
      metrics_snapshot
  end

(* --- observe report ---------------------------------------------------- *)

let report_flag =
  Arg.(value & flag & info [ "report" ]
         ~doc:
           "after the run, print the trace-driven introspection report: \
            wall-time attribution, per-device utilization, the critical \
            path and predicted-vs-observed drift (same analysis as \
            $(b,lmc report))")

let store_path_arg =
  Arg.(value & opt string "lm.profiles"
       & info [ "profile-store" ] ~docv:"FILE"
           ~doc:
             "persistent cost-profile store; content-hashed entries let a \
              warm run skip recalibration")

let metrics_export_arg =
  Arg.(
    value
    & opt (some (enum [ ("json", `Json); ("text", `Text) ])) None
    & info [ "metrics-export" ] ~docv:"FMT"
        ~doc:
          "print the final metrics snapshot as $(b,json) (registry samples \
           plus the substitution list) or $(b,text) (OpenMetrics \
           exposition)")

let export_metrics fmt (m : Runtime.Metrics.snapshot) =
  match fmt with
  | None -> ()
  | Some `Json -> print_endline (Runtime.Metrics.to_json m)
  | Some `Text -> print_string (Runtime.Metrics.to_text m)

(* The drift-prediction closure for one compiled program: launches
   observed in the trace join against the persistent profile store,
   calibrating on miss, so a warm store answers without re-measuring. *)
let drift_predict ~store_path compiled =
  let store = Placement.Profile.load store_path in
  let ctx = Placement.Calibrate.create ~profile_store:store compiled in
  let predict ~uid ~device ~n =
    Placement.Calibrate.predictor ctx ~uid ~device ~n
  in
  (predict, fun () -> Placement.Profile.save store)

(* Analyze the current ring sink. The sink is nulled first so the drift
   join's own calibration runs cannot pollute the trace under
   analysis. *)
let inline_report ~json ~store_path session =
  let sink = Support.Trace.current () in
  let events = Support.Trace.events sink in
  let dropped = Support.Trace.dropped sink in
  Support.Trace.set_sink Support.Trace.null;
  let predict, save_store = drift_predict ~store_path (Lm.compiled session) in
  let report = Observe.Report.analyze ~predict ~dropped events in
  save_store ();
  if json then print_endline (Observe.Report.render_json report)
  else print_string (Observe.Report.render report)

(* --- compile ---------------------------------------------------------- *)

let emit_artifacts dir (store : Runtime.Store.t)
    (manifest : Runtime.Artifact.manifest) =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> c
        | _ -> '_')
      s
  in
  List.iter
    (fun (e : Runtime.Artifact.manifest_entry) ->
      match Runtime.Store.find_on store ~uid:e.me_uid ~device:e.me_device with
      | Some (Runtime.Artifact.Gpu_kernel g) ->
        let path = Filename.concat dir (sanitize e.me_uid ^ ".cl") in
        let oc = open_out path in
        output_string oc g.ga_opencl;
        close_out oc;
        Printf.printf "wrote %s\n" path
      | Some (Runtime.Artifact.Fpga_module f) ->
        let path = Filename.concat dir (sanitize e.me_uid ^ ".v") in
        let oc = open_out path in
        output_string oc f.fa_verilog;
        close_out oc;
        Printf.printf "wrote %s\n" path
      | Some (Runtime.Artifact.Native_binary n) ->
        let path = Filename.concat dir (sanitize e.me_uid ^ ".c") in
        let oc = open_out path in
        output_string oc n.na_c;
        close_out oc;
        Printf.printf "wrote %s\n" path
      | None -> ())
    manifest.entries

let compile_cmd =
  let emit =
    Arg.(value & opt (some string) None & info [ "emit" ] ~docv:"DIR"
           ~doc:"write the OpenCL and Verilog artifacts into $(docv)")
  in
  let action file emit =
    handle_compile_errors (fun () ->
        let compiled = Liquid_metal.Compiler.compile ~file (read_file file) in
        let manifest = Liquid_metal.Compiler.manifest compiled in
        Format.printf "%a" Runtime.Artifact.pp_manifest manifest;
        Printf.printf "compiled functions (bytecode): %d\n"
          (Ir.String_map.cardinal compiled.unit_.u_funcs);
        List.iter
          (fun (phase, s) -> Printf.printf "  %-18s %8.2f ms\n" phase (1000.0 *. s))
          compiled.phase_seconds;
        Option.iter
          (fun dir -> emit_artifacts dir compiled.store manifest)
          emit)
  in
  Cmd.v (Cmd.info "compile" ~doc:"compile a Lime file with every backend")
    Term.(const action $ file_arg $ emit)

(* --- run -------------------------------------------------------------- *)

let run_cmd =
  let entry =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"ENTRY"
           ~doc:"entry point, e.g. Bitflip.taskFlip")
  in
  let args =
    Arg.(value & pos_right 1 string [] & info [] ~docv:"ARGS"
           ~doc:"arguments (42, 3.5, true, 101b, int:1,2,3, float:1,2.5)")
  in
  let policy =
    Arg.(value & opt policy_conv Runtime.Substitute.Prefer_accelerators
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:
               "substitution policy: bytecode, accel, gpu, fpga, native, \
                smallest, adaptive")
  in
  let verbose =
    Arg.(value & flag & info [ "metrics" ] ~doc:"print execution metrics")
  in
  let action file entry args policy schedule fifo_capacity verbose faults
      max_retries replan_factor lower_mapreduce fuse trace profile report
      metrics_export =
    handle_compile_errors (fun () ->
        setup_tracing ~trace ~profile:(profile || report);
        let session =
          Lm.load ~policy ~schedule ?fifo_capacity ?max_retries ?replan_factor
            ~lower_mapreduce ~fuse (read_file file)
        in
        setup_faults faults;
        let values = List.map parse_value args in
        let result = Lm.run session entry values in
        Printf.printf "%s\n" (Lm.show result);
        (match Lm.last_plan session with
        | Some plan -> Printf.printf "plan: %s\n" plan
        | None -> ());
        let m = Lm.metrics session in
        if verbose then
          Printf.printf
            "metrics: %d VM instructions, %d GPU kernel(s) (%.1f us), %d FPGA \
             run(s) (%.1f us), %d+%d crossings (%d+%d bytes)\n"
            m.vm_instructions m.gpu_kernels
            (m.gpu_kernel_ns /. 1000.0)
            m.fpga_runs (m.fpga_ns /. 1000.0) m.marshal.crossings_to_device
            m.marshal.crossings_to_host m.marshal.bytes_to_device
            m.marshal.bytes_to_host;
        if faults <> None then
          Printf.printf
            "faults: %d fault(s), %d retry(s), %d resubstitution(s)\n"
            m.device_faults m.retries m.resubstitutions;
        if replan_factor <> None then
          Printf.printf "replans: %d online re-plan(s)\n" m.replans;
        if schedule = Runtime.Scheduler.Steady_state then
          Printf.printf
            "sched: %d run(s) (%d steady, %d fallback(s)), %d step(s), %d \
             blocked\n"
            m.sched_runs m.sched_steady m.sched_fallbacks m.sched_steps
            m.sched_blocked_steps;
        export_metrics metrics_export m;
        finish_tracing ~trace ~profile (Some m);
        if report then
          inline_report ~json:false ~store_path:"lm.profiles" session;
        Support.Fault.clear ())
  in
  Cmd.v
    (Cmd.info "run" ~doc:"compile and co-execute an entry point")
    Term.(
      const action $ file_arg $ entry $ args $ policy $ schedule_arg
      $ fifo_capacity_arg $ verbose $ faults_arg $ retries_arg $ replan_arg
      $ lower_arg $ fuse_arg $ trace_arg $ profile_arg $ report_flag
      $ metrics_export_arg)

(* --- disasm ----------------------------------------------------------- *)

let disasm_cmd =
  let fn =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FUNCTION"
           ~doc:"function key (default: all), e.g. Bitflip.flip")
  in
  let action file fn =
    handle_compile_errors (fun () ->
        let compiled = Liquid_metal.Compiler.compile ~file (read_file file) in
        let funcs = compiled.unit_.u_funcs in
        match fn with
        | Some key -> (
          match Ir.String_map.find_opt key funcs with
          | Some code -> print_string (Bytecode.Compile.disassemble code)
          | None ->
            prerr_endline ("no function named " ^ key);
            exit 1)
        | None ->
          Ir.String_map.iter
            (fun _ code -> print_string (Bytecode.Compile.disassemble code))
            funcs)
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"print bytecode disassembly")
    Term.(const action $ file_arg $ fn)

(* --- workloads --------------------------------------------------------- *)

let workloads_cmd =
  let workload_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"workload to run (omit to list the suite)")
  in
  let size =
    Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N"
           ~doc:"problem size (defaults to the workload's own)")
  in
  let policy =
    Arg.(value & opt policy_conv Runtime.Substitute.Prefer_accelerators
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"substitution policy (as for run)")
  in
  let action name size policy schedule fifo_capacity faults max_retries
      replan_factor lower_mapreduce fuse trace profile report metrics_export =
    match (name : string option) with
    | None ->
      List.iter
        (fun (w : Workloads.t) ->
          Printf.printf "%-14s %s\n" w.name w.description)
        Workloads.all
    | Some name ->
      handle_compile_errors (fun () ->
          let w =
            try Workloads.find name
            with Not_found ->
              prerr_endline ("unknown workload: " ^ name);
              exit 1
          in
          setup_tracing ~trace ~profile:(profile || report);
          let size = Option.value size ~default:w.default_size in
          let session =
            Lm.load ~policy ~schedule ?fifo_capacity ?max_retries
              ?replan_factor ~lower_mapreduce ~fuse w.source
          in
          setup_faults faults;
          let t0 = Unix.gettimeofday () in
          let result = Lm.run session w.entry (w.args ~size) in
          let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
          (match w.validate with
          | Some validate -> (
            match validate ~size result with
            | Ok () -> Printf.printf "result: validated (size %d)\n" size
            | Error msg -> failwith msg)
          | None -> Printf.printf "result: computed (size %d)\n" size);
          (match Lm.last_plan session with
          | Some plan -> Printf.printf "plan: %s\n" plan
          | None -> ());
          let m = Lm.metrics session in
          Printf.printf
            "metrics: %d VM insns, %d native insns, %d gpu kernel(s), %d \
             fpga run(s); wall %.1f ms\n"
            m.vm_instructions m.native_instructions m.gpu_kernels m.fpga_runs
            wall_ms;
          if faults <> None then
            Printf.printf
              "faults: %d fault(s), %d retry(s), %d resubstitution(s)\n"
              m.device_faults m.retries m.resubstitutions;
          if replan_factor <> None then
            Printf.printf "replans: %d online re-plan(s)\n" m.replans;
          if schedule = Runtime.Scheduler.Steady_state then
            Printf.printf
              "sched: %d run(s) (%d steady, %d fallback(s)), %d step(s), %d \
               blocked\n"
              m.sched_runs m.sched_steady m.sched_fallbacks m.sched_steps
              m.sched_blocked_steps;
          export_metrics metrics_export m;
          finish_tracing ~trace ~profile (Some m);
          if report then
            inline_report ~json:false ~store_path:"lm.profiles" session;
          Support.Fault.clear ())
  in
  Cmd.v
    (Cmd.info "workloads" ~doc:"list or run the benchmark workloads")
    Term.(
      const action $ workload_name $ size $ policy $ schedule_arg
      $ fifo_capacity_arg $ faults_arg $ retries_arg $ replan_arg $ lower_arg
      $ fuse_arg $ trace_arg $ profile_arg $ report_flag
      $ metrics_export_arg)

(* --- plan -------------------------------------------------------------- *)

let plan_cmd =
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET"
           ~doc:"workload name (see $(b,lmc workloads)) or Lime source file")
  in
  let n =
    Arg.(value & opt (some positive_int_conv) None & info [ "n" ] ~docv:"N"
           ~doc:
             "stream length to plan for (default: the workload's size, or \
              256 for files)")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"print the plan report as a JSON object")
  in
  let sweep =
    Arg.(
      value
      & opt ~vopt:(Some "64..65536") (some string) None
      & info [ "sweep" ] ~docv:"LO..HI"
          ~doc:
            "print the multi-stream-length crossover table instead of a \
             single-length plan: the predicted best placement per stream \
             length over a powers-of-two sweep (default $(b,64..65536)), \
             with the lengths where the winner flips called out")
  in
  let parse_sweep spec =
    let fail () =
      prerr_endline
        ("bad --sweep range: " ^ spec ^ " (expected LO..HI, e.g. 64..65536)");
      exit 2
    in
    match String.index_opt spec '.' with
    | Some i
      when i + 1 < String.length spec && spec.[i + 1] = '.' ->
      let lo = String.sub spec 0 i in
      let hi = String.sub spec (i + 2) (String.length spec - i - 2) in
      (match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo >= 1 && hi >= lo ->
        Placement.Planner.sweep_lengths ~lo ~hi ()
      | _ -> fail ())
    | _ -> fail ()
  in
  let action target n json store_path fuse sweep =
    handle_compile_errors (fun () ->
        let source, default_n =
          match Workloads.find target with
          | w -> (w.Workloads.source, w.Workloads.default_size)
          | exception Not_found ->
            if Sys.file_exists target then (read_file target, 256)
            else begin
              prerr_endline ("unknown workload or file: " ^ target);
              exit 1
            end
        in
        let compiled =
          Liquid_metal.Compiler.compile ~file:target ~fuse source
        in
        match sweep with
        | Some spec ->
          let ns = parse_sweep spec in
          let store = Placement.Profile.load store_path in
          let ctx = Placement.Calibrate.create ~profile_store:store compiled in
          let tables = Placement.Planner.crossover ctx ~ns in
          Placement.Profile.save store;
          if json then
            print_endline (Placement.Planner.render_crossover_json tables)
          else print_string (Placement.Planner.render_crossover tables)
        | None ->
          let n = Option.value n ~default:default_n in
          let report =
            Placement.Planner.run ~profile_path:store_path ~n compiled
          in
          if json then print_endline (Placement.Planner.render_json report)
          else print_string (Placement.Planner.render report))
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "profile-guided placement planning: calibrate device cost models, \
          predict per-candidate makespans and report the argmin placement \
          with a rationale (see docs/PLACEMENT.md); with $(b,--sweep), the \
          stream-length crossover table instead")
    Term.(
      const action $ target $ n $ json $ store_path_arg $ fuse_arg $ sweep)

(* --- report ------------------------------------------------------------ *)

let report_cmd =
  let target =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TARGET"
           ~doc:
             "workload name (see $(b,lmc workloads)) or Lime source file; \
              optional with $(b,--from-trace) (without it the offline \
              report has no drift predictions)")
  in
  let entry =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"ENTRY"
           ~doc:"entry point when TARGET is a source file")
  in
  let args =
    Arg.(value & pos_right 1 string [] & info [] ~docv:"ARGS"
           ~doc:"entry arguments (as for $(b,lmc run))")
  in
  let size =
    Arg.(value & opt (some int) None & info [ "size" ] ~docv:"N"
           ~doc:"workload problem size (defaults to the workload's own)")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"print the report as a JSON object")
  in
  let from_trace =
    Arg.(value & opt (some file) None & info [ "from-trace" ] ~docv:"FILE"
           ~doc:
             "analyze a saved Chrome trace (as written by $(b,lmc run \
              --trace)) instead of running anything; give TARGET too to \
              join drift predictions from its compiled program")
  in
  let policy =
    Arg.(value & opt policy_conv Runtime.Substitute.Prefer_accelerators
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"substitution policy (as for run)")
  in
  let action target entry args size json from_trace store_path policy
      schedule fifo_capacity faults max_retries replan_factor =
    handle_compile_errors (fun () ->
        match from_trace with
        | Some path -> (
          let predict, save_store, drift_note =
            match target with
            | None ->
              ( None,
                (fun () -> ()),
                Some
                  "no TARGET given — pass the workload or source file \
                   alongside --from-trace to join predictions from its \
                   profile store" )
            | Some tgt ->
              let source =
                match Workloads.find tgt with
                | w -> w.Workloads.source
                | exception Not_found ->
                  if Sys.file_exists tgt then read_file tgt
                  else begin
                    prerr_endline ("unknown workload or file: " ^ tgt);
                    exit 1
                  end
              in
              let compiled =
                Liquid_metal.Compiler.compile ~file:tgt source
              in
              let p, save = drift_predict ~store_path compiled in
              (Some p, save, None)
          in
          match
            Observe.Report.of_chrome_json ?predict ?drift_note
              (read_file path)
          with
          | Ok report ->
            save_store ();
            if json then print_endline (Observe.Report.render_json report)
            else print_string (Observe.Report.render report)
          | Error msg ->
            prerr_endline ("bad trace file " ^ path ^ ": " ^ msg);
            exit 1)
        | None -> (
          match target with
          | None ->
            prerr_endline "report: TARGET or --from-trace required";
            exit 2
          | Some tgt ->
            let source, entry, values =
              match Workloads.find tgt with
              | w ->
                let size = Option.value size ~default:w.Workloads.default_size in
                (w.Workloads.source, w.Workloads.entry, w.Workloads.args ~size)
              | exception Not_found ->
                if not (Sys.file_exists tgt) then begin
                  prerr_endline ("unknown workload or file: " ^ tgt);
                  exit 1
                end;
                (match entry with
                | Some e -> (read_file tgt, e, List.map parse_value args)
                | None ->
                  prerr_endline "report: source files need an ENTRY point";
                  exit 2)
            in
            (* Ring sink first so the compiler phases land in the trace. *)
            Support.Trace.set_sink (Support.Trace.ring ());
            let session =
              Lm.load ~policy ~schedule ?fifo_capacity ?max_retries
                ?replan_factor source
            in
            setup_faults faults;
            let _result = Lm.run session entry values in
            Support.Fault.clear ();
            inline_report ~json ~store_path session))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "trace-driven introspection: run a workload (or read a saved \
          trace) and report wall-time attribution by bucket, per-device \
          utilization and idle gaps, the critical path with its top \
          gates, and predicted-vs-observed drift per (chain, device) \
          against the placement profile store (see docs/OBSERVABILITY.md)")
    Term.(
      const action $ target $ entry $ args $ size $ json $ from_trace
      $ store_path_arg $ policy $ schedule_arg $ fifo_capacity_arg
      $ faults_arg $ retries_arg $ replan_arg)

(* --- dump-ir ----------------------------------------------------------- *)

let dump_ir_cmd =
  let fn =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FUNCTION"
           ~doc:"function key (default: whole program incl. task graphs)")
  in
  let action file fn =
    handle_compile_errors (fun () ->
        let prog =
          Lime_ir.Opt.optimize
            (Lime_ir.Lower.lower
               (Lime_types.Typecheck.check
                  (Lime_syntax.Parser.parse ~file (read_file file))))
        in
        match fn with
        | Some key -> (
          match Ir.find_func prog key with
          | Some f -> print_string (Lime_ir.Printer.func_to_string f)
          | None ->
            prerr_endline ("no function named " ^ key);
            exit 1)
        | None -> print_string (Lime_ir.Printer.program_to_string prog))
  in
  Cmd.v
    (Cmd.info "dump-ir" ~doc:"print the optimized IR")
    Term.(const action $ file_arg $ fn)

(* --- analyze ----------------------------------------------------------- *)

let analyze_cmd =
  let target =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET"
           ~doc:"workload name or Lime source file")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"print the diagnostics as a JSON object")
  in
  let fifo_capacity =
    Arg.(value & opt positive_int_conv 16 & info [ "fifo-capacity" ] ~docv:"N"
           ~doc:
             "FIFO capacity assumed by the task-graph lint (matches the \
              runtime's default; per-firing bursts above it warn)")
  in
  let action tgt json fifo_capacity fuse =
    handle_compile_errors (fun () ->
        let source =
          match Workloads.find tgt with
          | w -> w.Workloads.source
          | exception Not_found ->
            if Sys.file_exists tgt then read_file tgt
            else begin
              prerr_endline ("unknown workload or file: " ^ tgt);
              exit 1
            end
        in
        let prog =
          Lime_ir.Opt.optimize
            (Lime_ir.Lower.lower
               (Lime_types.Typecheck.check
                  (Lime_syntax.Parser.parse ~file:tgt source)))
        in
        let report = Analysis.Report.analyze ~fifo_capacity ~fuse prog in
        let diags = report.Analysis.Report.diags in
        if json then print_endline (Analysis.Report.to_json diags)
        else begin
          Analysis.Report.render Format.std_formatter diags;
          print_endline (Analysis.Report.summary_line diags)
        end;
        if Analysis.Report.error_count diags > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "run the static analyses (purity/effects, relational value \
          ranges and array bounds, algebraic combiner properties, \
          fusability, task-graph deadlock lint) on a workload or source \
          file and print diagnostics")
    Term.(const action $ target $ json $ fifo_capacity $ fuse_arg)

(* --- serve ------------------------------------------------------------- *)

let parse_kv_list ~what spec =
  List.filter_map
    (fun part ->
      if part = "" then None
      else
        match String.index_opt part '=' with
        | Some i ->
          Some
            ( String.sub part 0 i,
              String.sub part (i + 1) (String.length part - i - 1) )
        | None ->
          prerr_endline (what ^ ": expected NAME=VALUE, got " ^ part);
          exit 2)
    (String.split_on_char ',' spec)

let serve_cmd =
  let jobs_file =
    Arg.(value & opt (some file) None & info [ "jobs" ] ~docv:"FILE"
           ~doc:
             "scripted job file ($(b,tenant NAME weight=W [quota=Q]) and \
              $(b,job TENANT WORKLOAD [size=N] [at=NS] [count=K] \
              [every=NS]) directives, see docs/SERVE.md); replaces the \
              synthetic load")
  in
  let tenants =
    Arg.(value & opt string "gold=3,silver=2,bronze=1"
         & info [ "tenants" ] ~docv:"SPEC"
             ~doc:"synthetic tenant table as NAME=WEIGHT,...")
  in
  let jobs_per_tenant =
    Arg.(value & opt positive_int_conv 8 & info [ "jobs-per-tenant" ] ~docv:"N"
           ~doc:"synthetic jobs submitted by each tenant")
  in
  let workloads =
    Arg.(value & opt string "saxpy" & info [ "workloads" ] ~docv:"NAMES"
           ~doc:
             "comma-separated workload names each synthetic tenant cycles \
              through (see $(b,lmc workloads))")
  in
  let size =
    Arg.(value & opt positive_int_conv 256 & info [ "size" ] ~docv:"N"
           ~doc:"synthetic workload problem size")
  in
  let interarrival =
    Arg.(value & opt float 50_000.0 & info [ "interarrival" ] ~docv:"NS"
           ~doc:
             "mean open-loop interarrival gap per synthetic tenant, in \
              modeled nanoseconds (jittered deterministically per tenant)")
  in
  let quota =
    Arg.(value & opt (some positive_int_conv) None & info [ "quota" ] ~docv:"N"
           ~doc:
             "per-tenant admission quota for the synthetic load: arrivals \
              beyond $(docv) outstanding jobs are rejected (default \
              unlimited)")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ]
           ~doc:"synthetic arrival-jitter seed")
  in
  let slots =
    Arg.(value & opt (some string) None & info [ "slots" ] ~docv:"SPEC"
           ~doc:
             "concurrent occupancy windows per device as DEV=N,... over \
              gpu/fpga/native/vm (default one each); a device at 0 takes \
              no jobs")
  in
  let quantum =
    Arg.(value & opt float 1_000.0 & info [ "quantum" ] ~docv:"NS"
           ~doc:"WDRR quantum per unit of tenant weight (modeled ns)")
  in
  let batch_window =
    Arg.(value & opt float 10_000.0 & info [ "batch-window" ] ~docv:"NS"
           ~doc:
             "dispatches of the same (workload, size, device) within \
              $(docv) coalesce into one occupancy window")
  in
  let batch_max =
    Arg.(value & opt positive_int_conv 4 & info [ "batch-max" ] ~docv:"N"
           ~doc:"max jobs per coalesced occupancy window")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"print the serve report as a JSON object")
  in
  let action jobs_file tenants jobs_per_tenant workloads size interarrival
      quota seed slots quantum batch_window batch_max json trace report
      faults store_path =
    handle_compile_errors (fun () ->
        setup_tracing ~trace ~profile:report;
        let load =
          match jobs_file with
          | Some path -> (
            try Serve.Job.parse_file path
            with Serve.Job.Parse_error m ->
              prerr_endline ("bad job file " ^ path ^ ": " ^ m);
              exit 2)
          | None ->
            let tenants =
              List.map
                (fun (name, v) ->
                  match int_of_string_opt v with
                  | Some w when w >= 1 -> (name, w)
                  | _ ->
                    prerr_endline
                      ("--tenants: weight must be a positive integer: " ^ v);
                    exit 2)
                (parse_kv_list ~what:"--tenants" tenants)
            in
            let workloads =
              List.filter (fun w -> w <> "")
                (String.split_on_char ',' workloads)
            in
            Serve.Job.synthetic ?quota ~workloads ~size ~jobs_per_tenant
              ~interarrival_ns:interarrival ~seed tenants
        in
        let config =
          {
            Serve.Engine.default_config with
            Serve.Engine.c_quantum_ns = quantum;
            c_batch_window_ns = batch_window;
            c_batch_max = batch_max;
            c_profile_path = store_path;
          }
        in
        let config =
          match slots with
          | None -> config
          | Some spec ->
            let slots =
              List.map
                (fun (name, v) ->
                  match int_of_string_opt v with
                  | Some n when n >= 0 -> (name, n)
                  | _ ->
                    prerr_endline ("--slots: bad count for " ^ name);
                    exit 2)
                (parse_kv_list ~what:"--slots" spec)
            in
            { config with Serve.Engine.c_slots = slots }
        in
        setup_faults faults;
        let result =
          try Serve.Engine.run ~config load
          with Serve.Engine.Serve_error m ->
            prerr_endline ("serve: " ^ m);
            exit 1
        in
        Support.Fault.clear ();
        if json then print_endline (Serve.Engine.render_json result)
        else print_string (Serve.Engine.render result);
        (match trace with
        | None -> ()
        | Some path ->
          let sink = Support.Trace.current () in
          let oc = open_out path in
          output_string oc
            (Support.Trace.Chrome.to_json ~process_name:"lmc serve" sink);
          close_out oc;
          Printf.printf "trace: wrote %s (%d event(s), %d dropped)\n" path
            (Support.Trace.event_count sink)
            (Support.Trace.dropped sink));
        if report then begin
          let sink = Support.Trace.current () in
          let events = Support.Trace.events sink in
          let dropped = Support.Trace.dropped sink in
          Support.Trace.set_sink Support.Trace.null;
          let obs = Observe.Report.analyze ~dropped events in
          if json then print_endline (Observe.Report.render_json obs)
          else print_string (Observe.Report.render obs)
        end)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "multi-tenant job scheduling: admit a scripted or synthetic \
          open-loop load of concurrent jobs over the shared device pool, \
          schedule with per-tenant weighted fairness, quotas, data-aware \
          placement and batching, run to drain, and print per-tenant \
          throughput and latency percentiles (see docs/SERVE.md)")
    Term.(
      const action $ jobs_file $ tenants $ jobs_per_tenant $ workloads $ size
      $ interarrival $ quota $ seed $ slots $ quantum $ batch_window
      $ batch_max $ json $ trace_arg $ report_flag $ faults_arg
      $ store_path_arg)

let () =
  let doc = "the Liquid Metal compiler and runtime (DAC 2012 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "lmc" ~version:"1.0.0" ~doc)
          [
            compile_cmd; run_cmd; disasm_cmd; dump_ir_cmd; workloads_cmd;
            analyze_cmd; plan_cmd; report_cmd; serve_cmd;
          ]))
