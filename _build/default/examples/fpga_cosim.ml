(* FPGA co-simulation: the design flow of paper section 5 / Figure 4.

   Directs the taskFlip graph to the FPGA backend, co-executes the
   Liquid Metal runtime against the RTL simulator, and writes the two
   artifacts a developer would inspect: the generated Verilog and the
   VCD waveform showing the FIFO next-rising-edge behaviour and the
   3-cycle read/compute/publish latency.

   Run with: dune exec examples/fpga_cosim.exe
   Outputs:  _artifacts/taskflip.v, _artifacts/taskflip.vcd *)

module Lm = Liquid_metal.Lm
module Ir = Lime_ir.Ir
module V = Wire.Value

let () =
  let w = Workloads.find "bitflip" in
  print_endline "=== CPU+FPGA co-simulation: taskFlip (Figure 4) ===";
  let session =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ])
      w.Workloads.source
  in
  (* Drive the graph with the 9 input bits of Figure 4. *)
  let input = "101010101" in
  let r = Lm.run session "Bitflip.taskFlip" [ Lm.bits input ] in
  Printf.printf "taskFlip(%sb) = %sb  (plan: %s)\n" input
    (Lm.as_bits_literal r)
    (Option.value (Lm.last_plan session) ~default:"?");
  let m = Lm.metrics session in
  Printf.printf "RTL simulation: %d cycles at 250 MHz = %.0f ns\n" m.fpga_cycles
    m.fpga_ns;
  (* Regenerate the artifacts standalone so they can be written out
     with a waveform: the same netlist the engine just ran. *)
  let prog = Lm.program session in
  let filters = List.map snd (Ir.filter_sites prog) in
  let pipeline =
    Rtl.Synth.pipeline_of_chain prog ~name:"taskFlip"
      (List.map (fun f -> f, None) filters)
  in
  let vcd = Rtl.Vcd.create () in
  let bits =
    Array.to_list
      (Array.map (fun b -> V.Bit b)
         (Bits.Bitvec.to_bool_array (Bits.Bitvec.of_literal input)))
  in
  let outputs, stats = Rtl.Sim.run ~vcd ~clock_ns:4 prog pipeline bits in
  ignore outputs;
  (try Unix.mkdir "_artifacts" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "wrote %s\n" path
  in
  write "_artifacts/taskflip.v" (Rtl.Verilog_gen.pipeline_text prog pipeline);
  write "_artifacts/taskflip.vcd" (Rtl.Vcd.contents vcd);
  (* Render the waveform right here, the terminal version of the
     paper's Figure 4 viewer screenshot. *)
  let wave = Rtl.Vcd_reader.parse (Rtl.Vcd.contents vcd) in
  print_newline ();
  print_endline "Waveform (1 column = 2 ns, # = high):";
  print_string
    (Rtl.Vcd_reader.render_ascii
       ~signals:
         [ "clk"; "Bitflip_flip_0_inReady"; "Bitflip_flip_0_inData";
           "Bitflip_flip_0_outReady"; "Bitflip_flip_0_outData" ]
       ~step_ns:2 wave);
  Printf.printf
    "\nWaveform summary (open the VCD in any viewer, e.g. GTKWave):\n";
  Printf.printf "  %d clock cycles for %d elements (unpipelined: ~3/element)\n"
    stats.Rtl.Sim.cycles stats.Rtl.Sim.items;
  print_endline "  - inReady pulses once per input bit (9 transitions)";
  print_endline "  - the FIFO output appears on the next rising edge";
  print_endline "  - outReady follows inReady by 2 clocks: read, compute, publish"
