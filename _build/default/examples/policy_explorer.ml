(* Policy explorer: experimenting with partitions (paper section 2.3).

   The relocation brackets let a programmer try many partitions
   "without perturbing the rest of their code"; the runtime side of
   that freedom is the substitution policy. This example runs the
   3-stage DSP pipeline under every policy and shows the chosen plan,
   where time was spent, and that results never change.

   Run with: dune exec examples/policy_explorer.exe *)

module Lm = Liquid_metal.Lm

let policies =
  [
    "bytecode-only", Runtime.Substitute.Bytecode_only;
    "prefer-accelerators", Runtime.Substitute.Prefer_accelerators;
    "fpga-first", Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ];
    "gpu-first", Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Gpu ];
    "native-first", Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Native ];
    "smallest-substitution", Runtime.Substitute.Smallest_substitution;
    "adaptive (section 7)", Runtime.Substitute.Adaptive;
  ]

let () =
  let w = Workloads.find "dsp_chain" in
  let size = 256 in
  print_endline "=== Policy explorer: scale => offset => clamp pipeline ===";
  Printf.printf "%-22s  %-22s  %10s %8s %8s %8s\n" "policy" "plan" "vm insns"
    "gpu" "fpga" "native";
  let reference = ref None in
  List.iter
    (fun (name, policy) ->
      let s = Lm.load ~policy w.Workloads.source in
      let r = Lm.run s w.entry (w.args ~size) in
      let arr = Lm.as_int_array r in
      (match !reference with
      | None -> reference := Some arr
      | Some expected -> assert (arr = expected));
      let m = Lm.metrics s in
      Printf.printf "%-22s  %-22s  %10d %8d %8d %8d\n" name
        (Option.value (Lm.last_plan s) ~default:"-")
        m.vm_instructions m.gpu_kernels m.fpga_runs m.native_instructions)
    policies;
  print_newline ();
  print_endline
    "Every policy computes the same samples; only the placement changes —";
  print_endline
    "the runtime's functionally-equivalent configurations (paper section 1)."
