(* N-body co-execution: the compute-bound end of the GPU story.

   Runs one force-accumulation step (softened 1/d^2 kernel, O(n^2))
   for growing body counts under the bytecode-only and accelerated
   configurations, reporting the modeled end-to-end speedup — the
   shape behind the paper's 12x-431x claim.

   Run with: dune exec examples/nbody_coexec.exe *)

module Lm = Liquid_metal.Lm

let modeled_total (m : Runtime.Metrics.snapshot) =
  (float_of_int m.vm_instructions *. 6.0)
  +. m.native_ns +. m.gpu_kernel_ns +. m.fpga_ns
  +. m.marshal.modeled_transfer_ns
  +. m.marshal_native.modeled_transfer_ns

let () =
  let w = Workloads.find "nbody" in
  print_endline "=== N-body: CPU-only vs CPU+GPU co-execution ===";
  Printf.printf "%8s  %14s  %14s  %9s\n" "bodies" "bytecode (us)" "co-exec (us)"
    "speedup";
  List.iter
    (fun size ->
      let bytecode =
        Lm.load ~policy:Runtime.Substitute.Bytecode_only w.Workloads.source
      in
      let accel = Lm.load w.Workloads.source in
      let r_bc = Lm.run bytecode w.entry (w.args ~size) in
      let r_ac = Lm.run accel w.entry (w.args ~size) in
      (* identical float32 results on both configurations *)
      assert (Lm.as_float_array r_bc = Lm.as_float_array r_ac);
      let t_bc = modeled_total (Lm.metrics bytecode) in
      let t_ac = modeled_total (Lm.metrics accel) in
      Printf.printf "%8d  %14.1f  %14.1f  %8.1fx\n" size (t_bc /. 1000.0)
        (t_ac /. 1000.0) (t_bc /. t_ac))
    [ 32; 64; 128; 256 ];
  print_newline ();
  print_endline
    "The speedup grows with n^2 compute amortizing the fixed launch and";
  print_endline "transfer costs, the mechanism behind the paper's upper range."
