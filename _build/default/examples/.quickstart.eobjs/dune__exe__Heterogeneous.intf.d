examples/heterogeneous.mli:
