examples/fpga_cosim.ml: Array Bits Lime_ir Liquid_metal List Option Printf Rtl Runtime Unix Wire Workloads
