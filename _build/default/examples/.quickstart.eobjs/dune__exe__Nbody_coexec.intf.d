examples/nbody_coexec.mli:
