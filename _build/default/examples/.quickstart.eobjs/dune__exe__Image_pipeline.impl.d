examples/image_pipeline.ml: Liquid_metal List Printf Runtime String Workloads
