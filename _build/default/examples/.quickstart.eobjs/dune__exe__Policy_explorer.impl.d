examples/policy_explorer.ml: Liquid_metal List Option Printf Runtime Workloads
