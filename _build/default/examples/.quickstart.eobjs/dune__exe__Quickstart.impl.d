examples/quickstart.ml: Liquid_metal Option Printf Runtime Workloads
