examples/nbody_coexec.ml: Liquid_metal List Printf Runtime Workloads
