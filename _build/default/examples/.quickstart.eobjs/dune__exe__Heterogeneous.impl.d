examples/heterogeneous.ml: Array Liquid_metal Option Printf Runtime String Workloads
