examples/fpga_cosim.mli:
