examples/quickstart.mli:
