(* Quickstart: the paper's Figure 1 program, end to end.

   Compiles the Bitflip program with every backend, shows the artifact
   manifest, runs both the map form and the task-graph form under the
   default substitution policy, and prints what the runtime chose.

   Run with: dune exec examples/quickstart.exe *)

module Lm = Liquid_metal.Lm

let bitflip_source = (Workloads.find "bitflip").Workloads.source

let () =
  print_endline "=== Liquid Metal quickstart: Figure 1 (Bitflip) ===";
  print_newline ();
  (* 1. Compile. The CPU backend compiles everything; the GPU and FPGA
     backends produce artifacts for the relocatable flip task and the
     map site. *)
  let session = Lm.load bitflip_source in
  print_endline "Artifact manifest (paper section 3):";
  print_string (Lm.manifest_text session);
  print_newline ();
  (* 2. The map form: mapFlip(100b). The paper prints 001b for this
     example; elementwise flip of 100b is 011b under the paper's own
     literal convention (see EXPERIMENTS.md, erratum note). *)
  let r = Lm.run session "Bitflip.mapFlip" [ Lm.bits "100" ] in
  Printf.printf "mapFlip(100b)  = %sb\n" (Lm.as_bits_literal r);
  (* 3. The task-graph form over the 9 input bits of Figure 4. *)
  let input = "101010101" in
  let r = Lm.run session "Bitflip.taskFlip" [ Lm.bits input ] in
  Printf.printf "taskFlip(%sb) = %sb\n" input (Lm.as_bits_literal r);
  (match Lm.last_plan session with
  | Some plan -> Printf.printf "substitution plan: %s\n" plan
  | None -> ());
  print_newline ();
  (* 4. The same program, manually directed to stay on bytecode —
     results are identical because artifacts are semantic equivalents. *)
  Lm.set_policy session Runtime.Substitute.Bytecode_only;
  let r2 = Lm.run session "Bitflip.taskFlip" [ Lm.bits input ] in
  Printf.printf "bytecode-only  = %sb (plan: %s)\n"
    (Lm.as_bits_literal r2)
    (Option.value (Lm.last_plan session) ~default:"?");
  assert (Lm.as_bits_literal r = Lm.as_bits_literal r2);
  print_newline ();
  let m = Lm.metrics session in
  Printf.printf "metrics: %d VM instructions, %d GPU kernel(s), %d FPGA run(s)\n"
    m.vm_instructions m.gpu_kernels m.fpga_runs;
  Printf.printf
    "marshaling: %d bytes to device / %d bytes to host across %d+%d crossings\n"
    m.marshal.bytes_to_device m.marshal.bytes_to_host
    m.marshal.crossings_to_device m.marshal.crossings_to_host
