(* Simultaneous CPU + GPU + FPGA co-execution.

   The paper closes with "we are exploring applications that can
   benefit simultaneously from CPU+GPU+FPGA co-execution" (section 7).
   This example builds one task graph whose stages land on three
   different computational elements in a single run:

     sensor samples
       => [ gain ]      pure arithmetic         \  fused into one
       => [ smooth ]    stateful IIR filter     /  FPGA pipeline
       => [ tag ]       loop-bearing bucketizer -> GPU kernel
     (host bytecode drives the source, the sink and the scheduler)

   The GPU backend rejects `smooth` (stateful) and the FPGA backend
   rejects `tag` (loops), so the largest-substitution planner fuses
   gain+smooth into a 2-stage FPGA pipeline and hands tag to the GPU —
   CPU, GPU and FPGA all active in one graph run.

   Run with: dune exec examples/heterogeneous.exe *)

module Lm = Liquid_metal.Lm

let source =
  {|
public class Iir {
  int state;
  local Iir(int start) { state = start; }
  local int smooth(int x) {
    state = (3 * state + x) / 4;
    return state;
  }
}
public class Sensor {
  local static int gain(int x) { return x * 5 + 2; }
  local static int tag(int x) {
    int bucket = 0;
    while (bucket * 64 < x) {
      bucket++;
    }
    return bucket;
  }
  public static int[[]] process(int[[]] samples) {
    int[] out = new int[samples.length];
    var iir = new Iir(0);
    var g = samples.source(1)
      => ([ task gain ]) => ([ task iir.smooth ]) => ([ task tag ])
      => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}

let () =
  print_endline "=== Simultaneous CPU+GPU+FPGA co-execution (paper section 7) ===";
  let session =
    Lm.load
      ~policy:(Runtime.Substitute.Prefer_devices
                 [ Runtime.Artifact.Gpu; Runtime.Artifact.Fpga ])
      source
  in
  print_endline "Manifest (note the per-device exclusions):";
  print_string (Lm.manifest_text session);
  print_newline ();
  let rng = Workloads.Rng.create () in
  let samples = Workloads.Rng.int_array rng 256 ~bound:100 in
  let r = Lm.run session "Sensor.process" [ Lm.int_array samples ] in
  Printf.printf "plan: %s\n" (Option.value (Lm.last_plan session) ~default:"?");
  let m = Lm.metrics session in
  Printf.printf
    "one graph run used: %d GPU kernel(s), %d FPGA run(s), %d VM \
     instructions of bytecode filtering\n"
    m.gpu_kernels m.fpga_runs m.vm_instructions;
  assert (m.gpu_kernels > 0 && m.fpga_runs > 0);
  (* verify against bytecode-only *)
  let bc = Lm.load ~policy:Runtime.Substitute.Bytecode_only source in
  let r2 = Lm.run bc "Sensor.process" [ Lm.int_array samples ] in
  assert (Lm.as_int_array r = Lm.as_int_array r2);
  Printf.printf "first 10 outputs: %s\n"
    (String.concat " "
       (Array.to_list (Array.map string_of_int (Array.sub (Lm.as_int_array r) 0 10))));
  print_endline "results identical to the all-bytecode configuration."
