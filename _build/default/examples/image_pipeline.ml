(* Image pipeline: 3x3 sharpen convolution co-executed CPU + GPU.

   The host (bytecode VM) prepares the image and index arrays; the map
   site is substituted with the generated OpenCL kernel running on the
   SIMT simulator; results are marshaled back through the Figure-3
   byte-stream path. Shows the generated OpenCL artifact and the
   modeled cost split between host, device and transfer.

   Run with: dune exec examples/image_pipeline.exe *)

module Lm = Liquid_metal.Lm

let () =
  let w = Workloads.find "conv2d" in
  let size = 48 in
  print_endline "=== Image pipeline: conv2d co-execution (CPU + GPU) ===";
  Printf.printf "image: %dx%d grayscale, 3x3 sharpen kernel\n\n" size size;
  let session = Lm.load w.Workloads.source in
  (* Show a slice of the OpenCL artifact the GPU backend generated. *)
  let store = Runtime.Exec.store (Lm.engine session) in
  (Lm.manifest session).entries
  |> List.iter (fun (e : Runtime.Artifact.manifest_entry) ->
         if e.me_device = Runtime.Artifact.Gpu then
           match
             Runtime.Store.find_on store ~uid:e.me_uid ~device:e.me_device
           with
           | Some (Runtime.Artifact.Gpu_kernel g) ->
             print_endline "Generated OpenCL artifact (first lines):";
             String.split_on_char '\n' g.ga_opencl
             |> List.filteri (fun i _ -> i < 12)
             |> List.iter (fun l -> print_endline ("  " ^ l))
           | _ -> ());
  print_newline ();
  (* Co-execute and validate against the OCaml reference. *)
  let r = Lm.run session w.entry (w.args ~size) in
  (match w.validate with
  | Some validate -> (
    match validate ~size r with
    | Ok () -> print_endline "result: validated against the OCaml reference"
    | Error msg -> failwith msg)
  | None -> ());
  let m = Lm.metrics session in
  let cpu_ns = float_of_int m.vm_instructions *. 6.0 in
  Printf.printf "\nModeled cost split for the co-executed run:\n";
  Printf.printf "  host bytecode : %10.1f us (%d instructions)\n"
    (cpu_ns /. 1000.0) m.vm_instructions;
  Printf.printf "  GPU kernel    : %10.1f us (%d launch(es))\n"
    (m.gpu_kernel_ns /. 1000.0) m.gpu_kernels;
  Printf.printf "  transfers     : %10.1f us (%d bytes each way)\n"
    (m.marshal.modeled_transfer_ns /. 1000.0)
    m.marshal.bytes_to_device;
  (* Compare against the CPU-only configuration. *)
  let bytecode =
    Lm.load ~policy:Runtime.Substitute.Bytecode_only w.Workloads.source
  in
  let r_bc = Lm.run bytecode w.entry (w.args ~size) in
  let m_bc = Lm.metrics bytecode in
  assert (Lm.as_float_array r = Lm.as_float_array r_bc);
  let bc_ns = float_of_int m_bc.vm_instructions *. 6.0 in
  let co_ns = cpu_ns +. m.gpu_kernel_ns +. m.marshal.modeled_transfer_ns in
  Printf.printf "\nEnd-to-end (modeled): bytecode-only %.1f us, co-executed %.1f us\n"
    (bc_ns /. 1000.0) (co_ns /. 1000.0);
  Printf.printf "speedup: %.1fx\n" (bc_ns /. co_ns)
