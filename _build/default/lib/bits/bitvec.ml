type t = { len : int; data : Bytes.t }
(* Bit [i] lives at byte [i / 8], position [i mod 8]. Unused bits of
   the final byte are kept at zero so structural equality works. *)

let length t = t.len

let bytes_for len = (len + 7) / 8

let create len b =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  let fill = if b then '\xff' else '\x00' in
  let data = Bytes.make (bytes_for len) fill in
  let t = { len; data } in
  (* Clear padding bits so equality on equal vectors holds. *)
  if b && len mod 8 <> 0 then begin
    let last = bytes_for len - 1 in
    let keep = len mod 8 in
    let mask = (1 lsl keep) - 1 in
    Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land mask))
  end;
  t

let check_index t i =
  if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check_index t i;
  Char.code (Bytes.get t.data (i / 8)) land (1 lsl (i mod 8)) <> 0

let set t i b =
  check_index t i;
  let data = Bytes.copy t.data in
  let byte = Char.code (Bytes.get data (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set data (i / 8) (Char.chr (byte land 0xff));
  { t with data }

let of_bool_array a =
  let len = Array.length a in
  let data = Bytes.make (bytes_for len) '\x00' in
  Array.iteri
    (fun i b ->
      if b then
        Bytes.set data (i / 8)
          (Char.chr (Char.code (Bytes.get data (i / 8)) lor (1 lsl (i mod 8)))))
    a;
  { len; data }

let to_bool_array t = Array.init t.len (fun i -> get t i)

let of_literal s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bitvec.of_literal: empty literal";
  of_bool_array
    (Array.init n (fun i ->
         (* Bit [i] is character [n - 1 - i]: leftmost char is MSB. *)
         match s.[n - 1 - i] with
         | '0' -> false
         | '1' -> true
         | c -> invalid_arg (Printf.sprintf "Bitvec.of_literal: bad char %C" c)))

let to_literal t =
  String.init t.len (fun i -> if get t (t.len - 1 - i) then '1' else '0')

let of_int ~width v =
  if width < 0 then invalid_arg "Bitvec.of_int: negative width";
  of_bool_array (Array.init width (fun i -> (v lsr i) land 1 = 1))

let to_int t =
  if t.len > Sys.int_size - 1 then invalid_arg "Bitvec.to_int: too wide";
  let v = ref 0 in
  for i = t.len - 1 downto 0 do
    v := (!v lsl 1) lor (if get t i then 1 else 0)
  done;
  !v

let pointwise name f a b =
  if a.len <> b.len then invalid_arg (Printf.sprintf "Bitvec.%s: width mismatch" name);
  of_bool_array (Array.init a.len (fun i -> f (get a i) (get b i)))

let lognot a = of_bool_array (Array.init a.len (fun i -> not (get a i)))
let logand a b = pointwise "logand" ( && ) a b
let logor a b = pointwise "logor" ( || ) a b
let logxor a b = pointwise "logxor" ( <> ) a b

let concat lo hi =
  of_bool_array
    (Array.init (lo.len + hi.len) (fun i ->
         if i < lo.len then get lo i else get hi (i - lo.len)))

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Bitvec.sub";
  of_bool_array (Array.init len (fun i -> get t (pos + i)))

let popcount t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if get t i then incr n
  done;
  !n

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  let c = Int.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.data b.data

let pp ppf t = Format.fprintf ppf "%sb" (to_literal t)

let to_packed_bytes t = Bytes.copy t.data

let of_packed_bytes ~length:len data =
  if Bytes.length data <> bytes_for len then
    invalid_arg "Bitvec.of_packed_bytes: size mismatch";
  (* Normalize padding bits to zero. *)
  let data = Bytes.copy data in
  if len mod 8 <> 0 && Bytes.length data > 0 then begin
    let last = Bytes.length data - 1 in
    let mask = (1 lsl (len mod 8)) - 1 in
    Bytes.set data last (Char.chr (Char.code (Bytes.get data last) land mask))
  end;
  { len; data }
