lib/bits/bitvec.mli: Bytes Format
