lib/bits/bitvec.ml: Array Bytes Char Format Int Printf String Sys
