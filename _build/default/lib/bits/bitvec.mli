(** Immutable packed bit vectors.

    Lime makes [bit] a first-class type precisely because of its
    prevalence in FPGA designs (paper sections 2.2 and 6), and provides
    bit literals as syntactic sugar for bit arrays: the literal [100b]
    is a 3-bit array with [bit[0] = 0] and [bit[2] = 1] — i.e. the
    textual literal reads most-significant-bit first while indexing is
    least-significant-bit first.

    Values are immutable (they are Lime [value] arrays) and packed 8
    bits per byte, which is also the dense wire representation used
    when marshaling across the host/device boundary. *)

type t

val length : t -> int

val create : int -> bool -> t
(** [create n b] is an [n]-bit vector with every bit equal to [b]. *)

val get : t -> int -> bool
(** @raise Invalid_argument if the index is out of bounds. *)

val set : t -> int -> bool -> t
(** Functional update; the input vector is unchanged. *)

val of_literal : string -> t
(** Parses a Lime bit literal body, e.g. [of_literal "100"] (the
    trailing [b] is stripped by the lexer). The leftmost character is
    the highest-indexed bit.
    @raise Invalid_argument on characters other than '0'/'1' or on an
    empty string. *)

val to_literal : t -> string
(** Inverse of {!of_literal}: [to_literal (of_literal "100") = "100"]. *)

val of_bool_array : bool array -> t
(** [of_bool_array a] has bit [i] equal to [a.(i)]. *)

val to_bool_array : t -> bool array

val of_int : width:int -> int -> t
(** Two's-complement truncation of the integer to [width] bits,
    bit 0 = least significant. *)

val to_int : t -> int
(** Unsigned interpretation; @raise Invalid_argument when the width
    exceeds [Sys.int_size - 1]. *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
(** Pointwise operations; @raise Invalid_argument on width mismatch. *)

val concat : t -> t -> t
(** [concat lo hi]: bits of [lo] occupy the low indices. *)

val sub : t -> pos:int -> len:int -> t
(** @raise Invalid_argument when the range is out of bounds. *)

val popcount : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val to_packed_bytes : t -> Bytes.t
(** Dense little-endian packing, 8 bits per byte; the final byte is
    zero-padded. This is the wire format for bit arrays. *)

val of_packed_bytes : length:int -> Bytes.t -> t
(** Inverse of {!to_packed_bytes} for a known bit length.
    @raise Invalid_argument if the byte count does not match. *)
