lib/bytecode/vm.mli: Compile Insn Lime_ir
