lib/bytecode/insn.ml: Lime_ir List Printf
