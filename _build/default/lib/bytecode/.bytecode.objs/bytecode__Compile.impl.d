lib/bytecode/compile.ml: Array Buffer Insn Lime_ir List Printf Support Vec
