lib/bytecode/compile.mli: Insn Lime_ir
