lib/bytecode/vm.ml: Array Compile Format Insn Lime_ir List Wire
