module Ir = Lime_ir.Ir

(** The bytecode virtual machine (the reproduction's "JVM").

    An interpreting stack machine: per-instruction dispatch is the
    realistic CPU cost profile of the paper's bytecode execution path,
    and {!result} therefore reports the executed-instruction count,
    which the benchmark harness converts into modeled CPU time.

    Task graphs, map sites and reduce sites trap to {!hooks}; the
    Liquid Metal runtime installs hooks that perform artifact
    substitution and co-execution. With {!no_hooks} everything runs
    inline on the VM itself (pure CPU execution). *)

type v = Lime_ir.Interp.v

exception Vm_error of string

type hooks = {
  on_map : Insn.map_desc -> v list -> v option;
  on_reduce : Insn.reduce_desc -> v -> v option;
  on_run_graph : (Ir.graph_template -> v list -> blocking:bool -> bool) option;
}

val no_hooks : hooks

type result = {
  value : v;
  executed : int;  (** dynamic instruction count, including callees *)
}

val run : ?hooks:hooks -> Compile.unit_ -> string -> v list -> result
(** [run unit "Class.method" args].
    @raise Vm_error on stack underflow, missing functions, type
    confusion, or any semantic trap (bounds, division by zero). *)
