lib/workloads/workloads.mli: Liquid_metal
