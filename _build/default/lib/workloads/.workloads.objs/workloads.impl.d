lib/workloads/workloads.ml: Array Bits Float Liquid_metal List Printf Rng String Wire
