lib/liquid_metal/lm.mli: Compiler Gpu Lime_ir Runtime
