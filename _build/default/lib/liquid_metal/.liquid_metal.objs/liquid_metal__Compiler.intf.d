lib/liquid_metal/compiler.mli: Bytecode Gpu Lime_ir Runtime Wire
