lib/liquid_metal/compiler.ml: Array Bytecode Gpu Lime_ir Lime_syntax Lime_types List Native_cpu Rtl Runtime Unix
