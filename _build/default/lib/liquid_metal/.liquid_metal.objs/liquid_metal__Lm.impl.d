lib/liquid_metal/lm.ml: Array Bits Compiler Format Lime_ir Printf Runtime Wire
