lib/native_cpu/c_gen.ml: Hashtbl Lime_ir List Option Printf String
