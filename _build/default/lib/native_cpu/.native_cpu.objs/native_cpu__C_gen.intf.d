lib/native_cpu/c_gen.mli: Lime_ir
