module Ir = Lime_ir.Ir

(* C code generation for native CPU artifacts.

   "In the case of native binaries, the compiler generates C code and
   builds shared libraries that are dynamically loaded by the Liquid
   Metal runtime to co-execute with the remaining Lime bytecodes"
   (paper section 5). The generated C is the artifact text; in this
   environment execution is performed by the bytecode VM under the
   native cost model (no C toolchain in the sealed container — see
   DESIGN.md section 2).

   Unlike the OpenCL backend, C supports the full IR: loops, dynamic
   allocation, and stateful filters (fields become a state struct). *)

let sanitize key =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    key

let cty = function
  | Ir.I32 -> "int32_t"
  | Ir.F32 -> "float"
  | Ir.Bool -> "int32_t"
  | Ir.Bit -> "uint8_t"
  | Ir.Enum _ -> "int32_t"
  | Ir.Arr Ir.F32 -> "float*"
  | Ir.Arr Ir.Bit -> "uint8_t*"
  | Ir.Arr _ -> "int32_t*"
  | Ir.Obj cls -> "struct " ^ sanitize cls ^ "_state*"
  | Ir.Graph -> "void*"
  | Ir.Unit -> "void"

let var_name (v : Ir.var) = Printf.sprintf "v%d_%s" v.v_id (sanitize v.v_name)

let const_text (c : Ir.const) =
  match c with
  | Ir.C_unit -> "0"
  | Ir.C_bool b | Ir.C_bit b -> if b then "1" else "0"
  | Ir.C_i32 i -> Printf.sprintf "INT32_C(%d)" i
  | Ir.C_f32 f -> Printf.sprintf "%.9gf" f
  | Ir.C_enum (_, tag) -> string_of_int tag
  | Ir.C_bits _ -> "/* bit literal: host-side value */ 0"

let operand_text = function
  | Ir.O_var v -> var_name v
  | Ir.O_const c -> const_text c

let unop_text (u : Ir.unop) a =
  match u with
  | Ir.Neg_i | Ir.Neg_f -> Printf.sprintf "(-%s)" a
  | Ir.Not_b -> Printf.sprintf "(!%s)" a
  | Ir.Bnot_i -> Printf.sprintf "(~%s)" a
  | Ir.I2f -> Printf.sprintf "((float)%s)" a

let binop_text (b : Ir.binop) x y =
  let infix op = Printf.sprintf "(%s %s %s)" x op y in
  match b with
  | Ir.Add_i | Ir.Add_f -> infix "+"
  | Ir.Sub_i | Ir.Sub_f -> infix "-"
  | Ir.Mul_i | Ir.Mul_f -> infix "*"
  | Ir.Div_i | Ir.Div_f -> infix "/"
  | Ir.Rem_i -> infix "%"
  | Ir.Rem_f -> Printf.sprintf "fmodf(%s, %s)" x y
  | Ir.Shl_i -> infix "<<"
  | Ir.Shr_i -> infix ">>"
  | Ir.And_i -> infix "&"
  | Ir.Or_i -> infix "|"
  | Ir.Xor_i -> infix "^"
  | Ir.And_b | Ir.And_bit -> infix "&&"
  | Ir.Or_b | Ir.Or_bit -> infix "||"
  | Ir.Xor_b | Ir.Xor_bit -> infix "^"
  | Ir.Eq -> infix "=="
  | Ir.Neq -> infix "!="
  | Ir.Lt_i | Ir.Lt_f -> infix "<"
  | Ir.Leq_i | Ir.Leq_f -> infix "<="
  | Ir.Gt_i | Ir.Gt_f -> infix ">"
  | Ir.Geq_i | Ir.Geq_f -> infix ">="

(* Field accesses compile against the state struct of the enclosing
   instance method ([this] is always parameter 0 when present). *)
let rhs_text (fn : Ir.func) (r : Ir.rhs) =
  let this_text () =
    match fn.fn_params with
    | this :: _ -> var_name this
    | [] -> "state"
  in
  match r with
  | Ir.R_op o -> operand_text o
  | Ir.R_unop (u, a) -> unop_text u (operand_text a)
  | Ir.R_binop (b, x, y) -> binop_text b (operand_text x) (operand_text y)
  | Ir.R_alen a -> Printf.sprintf "%s_len" (operand_text a)
  | Ir.R_aload (a, i) ->
    Printf.sprintf "%s[%s]" (operand_text a) (operand_text i)
  | Ir.R_call (key, args) ->
    let callee =
      if Lime_ir.Intrinsics.is_intrinsic key then
        Lime_ir.Intrinsics.c_name key
      else sanitize key
    in
    Printf.sprintf "%s(%s)" callee
      (String.concat ", " (List.map operand_text args))
  | Ir.R_newarr (ty, n) ->
    Printf.sprintf "(%s)calloc(%s, sizeof(*(%s)0))" (cty (Ir.Arr ty))
      (operand_text n) (cty (Ir.Arr ty))
  | Ir.R_freeze a -> operand_text a
  | Ir.R_newobj (cls, _) ->
    Printf.sprintf "calloc(1, sizeof(struct %s_state))" (sanitize cls)
  | Ir.R_field (_, slot) -> Printf.sprintf "%s->field_%d" (this_text ()) slot
  | Ir.R_map _ -> "/* nested map lowered by the host */ 0"
  | Ir.R_reduce _ -> "/* nested reduce lowered by the host */ 0"
  | Ir.R_mkgraph _ -> "/* task graphs stay on the host */ 0"

let rec block_text fn indent (b : Ir.block) =
  String.concat "" (List.map (instr_text fn indent) b)

and instr_text fn indent (i : Ir.instr) =
  let pad = String.make indent ' ' in
  match i with
  | Ir.I_let (v, r) | Ir.I_set (v, r) ->
    Printf.sprintf "%s%s = %s;\n" pad (var_name v) (rhs_text fn r)
  | Ir.I_astore (a, idx, x) ->
    Printf.sprintf "%s%s[%s] = %s;\n" pad (operand_text a) (operand_text idx)
      (operand_text x)
  | Ir.I_setfield (o, slot, x) ->
    Printf.sprintf "%s%s->field_%d = %s;\n" pad (operand_text o) slot
      (operand_text x)
  | Ir.I_if (c, a, b) ->
    Printf.sprintf "%sif (%s) {\n%s%s} else {\n%s%s}\n" pad (operand_text c)
      (block_text fn (indent + 2) a)
      pad
      (block_text fn (indent + 2) b)
      pad
  | Ir.I_while (cond_block, cond_op, body) ->
    Printf.sprintf "%sfor (;;) {\n%s%sif (!%s) break;\n%s%s}\n" pad
      (block_text fn (indent + 2) cond_block)
      (String.make (indent + 2) ' ')
      (operand_text cond_op)
      (block_text fn (indent + 2) body)
      pad
  | Ir.I_return (Some o) -> Printf.sprintf "%sreturn %s;\n" pad (operand_text o)
  | Ir.I_return None -> pad ^ "return;\n"
  | Ir.I_run_graph _ -> pad ^ "/* task graphs stay on the host */\n"
  | Ir.I_do r -> Printf.sprintf "%s(void)(%s);\n" pad (rhs_text fn r)

let local_decls (fn : Ir.func) =
  let params = List.map (fun (v : Ir.var) -> v.v_id) fn.fn_params in
  let decls = Hashtbl.create 16 in
  let rec scan_block b = List.iter scan_instr b
  and scan_instr = function
    | Ir.I_let (v, _) | Ir.I_set (v, _) ->
      if not (List.mem v.Ir.v_id params) then Hashtbl.replace decls v.Ir.v_id v
    | Ir.I_if (_, a, b) ->
      scan_block a;
      scan_block b
    | Ir.I_while (c, _, body) ->
      scan_block c;
      scan_block body
    | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_return _ | Ir.I_run_graph _
    | Ir.I_do _ ->
      ()
  in
  scan_block fn.fn_body;
  Hashtbl.fold (fun _ v acc -> v :: acc) decls []
  |> List.sort (fun (a : Ir.var) b -> compare a.v_id b.v_id)

let state_struct_text (prog : Ir.program) cls =
  match Ir.String_map.find_opt cls prog.Ir.classes with
  | None -> ""
  | Some meta ->
    Printf.sprintf "struct %s_state {\n%s};\n" (sanitize cls)
      (String.concat ""
         (List.mapi
            (fun slot (name, ty) ->
              Printf.sprintf "  %s field_%d; /* %s */\n" (cty ty) slot name)
            meta.cm_fields))

let function_text (fn : Ir.func) =
  let params =
    match fn.fn_params with
    | [] -> "void"
    | ps ->
      String.concat ", "
        (List.map
           (fun (v : Ir.var) -> Printf.sprintf "%s %s" (cty v.v_ty) (var_name v))
           ps)
  in
  let decls =
    String.concat ""
      (List.map
         (fun (v : Ir.var) ->
           Printf.sprintf "  %s %s;\n" (cty v.Ir.v_ty) (var_name v))
         (local_decls fn))
  in
  Printf.sprintf "static %s %s(%s) {\n%s%s}\n" (cty fn.fn_ret)
    (sanitize fn.fn_key) params decls
    (block_text fn 2 fn.fn_body)

(* Transitive callees, callees first. *)
let callees (prog : Ir.program) (keys : string list) : string list =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit key =
    if
      (not (Lime_ir.Intrinsics.is_intrinsic key))
      && not (Hashtbl.mem seen key)
    then begin
      Hashtbl.add seen key ();
      (match Ir.find_func prog key with
      | None -> ()
      | Some fn -> visit_block fn.fn_body);
      order := key :: !order
    end
  and visit_block b = List.iter visit_instr b
  and visit_instr = function
    | Ir.I_let (_, r) | Ir.I_set (_, r) | Ir.I_do r -> visit_rhs r
    | Ir.I_if (_, a, b) ->
      visit_block a;
      visit_block b
    | Ir.I_while (c, _, body) ->
      visit_block c;
      visit_block body
    | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_return _ | Ir.I_run_graph _ -> ()
  and visit_rhs = function
    | Ir.R_call (callee, _) | Ir.R_newobj (callee, _) -> visit callee
    | Ir.R_op _ | Ir.R_unop _ | Ir.R_binop _ | Ir.R_alen _ | Ir.R_aload _
    | Ir.R_newarr _ | Ir.R_freeze _ | Ir.R_field _ | Ir.R_map _
    | Ir.R_reduce _ | Ir.R_mkgraph _ ->
      ()
  in
  List.iter visit keys;
  List.rev !order

(* The shared-library source for a chain of filters: state structs,
   device functions, and one exported entry that streams the chain. *)
let chain_source_text (prog : Ir.program) ~uid
    (chain : Ir.filter_info list) : string =
  let keys =
    List.map
      (fun (f : Ir.filter_info) ->
        match f.target with
        | Ir.F_static key -> key
        | Ir.F_instance (cls, m) -> cls ^ "." ^ m)
      chain
  in
  let structs =
    List.filter_map
      (fun (f : Ir.filter_info) ->
        match f.target with
        | Ir.F_instance (cls, _) -> Some (state_struct_text prog cls)
        | Ir.F_static _ -> None)
      chain
    |> List.sort_uniq compare |> String.concat "\n"
  in
  let fns =
    String.concat "\n"
      (List.filter_map
         (fun key -> Option.map function_text (Ir.find_func prog key))
         (callees prog keys))
  in
  let first = List.hd chain in
  let last = List.nth chain (List.length chain - 1) in
  let composed =
    List.fold_left
      (fun (acc, idx) ((f : Ir.filter_info), key) ->
        match f.target with
        | Ir.F_static _ -> Printf.sprintf "%s(%s)" (sanitize key) acc, idx
        | Ir.F_instance _ ->
          Printf.sprintf "%s(state%d, %s)" (sanitize key) idx acc, idx + 1)
      ("in[i]", 0)
      (List.combine chain keys)
    |> fst
  in
  let state_params =
    List.filteri (fun _ (f : Ir.filter_info) ->
        match f.target with Ir.F_instance _ -> true | Ir.F_static _ -> false)
      chain
    |> List.mapi (fun i (f : Ir.filter_info) ->
           match f.target with
           | Ir.F_instance (cls, _) ->
             Printf.sprintf ", struct %s_state* state%d" (sanitize cls) i
           | Ir.F_static _ -> "")
    |> String.concat ""
  in
  Printf.sprintf
    "/* Task %s: native CPU artifact generated by the Liquid Metal\n\
    \   compiler (paper section 5). Loaded by the runtime via JNI. */\n\
     #include <stdint.h>\n\
     #include <stdlib.h>\n\
     #include <math.h>\n\n\
     %s\n\
     %s\n\
     void %s(const %s in[], %s out[], int32_t n%s) {\n\
    \  for (int32_t i = 0; i < n; i++) {\n\
    \    out[i] = %s;\n\
    \  }\n\
     }\n"
    uid structs fns (sanitize uid)
    (cty first.Ir.input) (cty last.Ir.output) state_params composed
