(** C code generation for native CPU artifacts (paper section 5).

    "In the case of native binaries, the compiler generates C code and
    builds shared libraries that are dynamically loaded by the Liquid
    Metal runtime to co-execute with the remaining Lime bytecodes."
    The generated C is the artifact text; execution in this sealed
    environment is performed by the bytecode VM under the native cost
    model (DESIGN.md section 2). Unlike OpenCL, C covers the full IR:
    loops, allocation, and stateful filters (fields become a state
    struct). *)

module Ir = Lime_ir.Ir

val chain_source_text : Ir.program -> uid:string -> Ir.filter_info list -> string
(** The complete shared-library source for a filter chain: state
    structs, static functions for every reachable callee, and one
    exported entry point streaming the chain over an array. *)

val function_text : Ir.func -> string
(** A single function definition (used by tests and tooling). *)

val state_struct_text : Ir.program -> string -> string
(** The state struct declaration for a class, e.g.
    [struct Acc_state { int32_t field_0; }]. *)
