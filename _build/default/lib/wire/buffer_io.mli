(** Little-endian byte-stream writer and reader.

    The runtime "adopts a universal wire format that relies only on
    sending a byte stream" (paper section 4.3); this module is that
    byte stream. All multi-byte quantities are little-endian. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val i32 : t -> int -> unit
  (** Writes the low 32 bits. *)

  val i64 : t -> int64 -> unit
  val f32 : t -> float -> unit
  (** IEEE single precision; precision beyond 32 bits is dropped,
      matching a Java [float] on the wire. *)

  val f64 : t -> float -> unit
  val bytes : t -> Bytes.t -> unit
  (** Raw bytes, no length prefix. *)

  val contents : t -> Bytes.t
end

module Reader : sig
  type t

  exception Underflow
  (** Raised when a read runs past the end of the stream. *)

  val of_bytes : Bytes.t -> t
  val remaining : t -> int
  val pos : t -> int
  val u8 : t -> int
  val i32 : t -> int
  (** Sign-extended to a 32-bit value. *)

  val i64 : t -> int64
  val f32 : t -> float
  val f64 : t -> float
  val bytes : t -> int -> Bytes.t
end
