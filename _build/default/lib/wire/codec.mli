(** Serializers from Lime values to the universal wire format.

    During task substitution "the runtime will find a custom serializer
    based on the task I/O data type" (paper section 4.3); a {!ty} is
    that data type and {!encode}/{!decode} are the serializer pair.

    Wire layout (all little-endian):
    - [boolean], [bit]: 1 byte (0 or 1)
    - [int]: 4 bytes two's complement
    - [float]: 4 bytes IEEE single
    - enum: 4 bytes declaration-index tag
    - [bit\[\]]: 4-byte bit count, then densely packed bytes (8 bits per
      byte) — the packing ablated in experiment A4
    - other arrays: 4-byte element count, then elements
    - tuples: fields in declaration order, no header *)

type ty =
  | W_unit
  | W_bool
  | W_int
  | W_float
  | W_bit
  | W_enum of string
  | W_bits  (** bit array, dense packing *)
  | W_bits_boxed  (** bit array, one byte per bit (ablation A4) *)
  | W_array of ty
  | W_tuple of ty list

exception Type_mismatch of { expected : ty; got : Value.t }

val encode : ty -> Buffer_io.Writer.t -> Value.t -> unit
val decode : ty -> Buffer_io.Reader.t -> Value.t

val encode_bytes : ty -> Value.t -> Bytes.t
(** One-shot serialize to a fresh byte array. *)

val decode_bytes : ty -> Bytes.t -> Value.t
(** One-shot deserialize; @raise Buffer_io.Reader.Underflow or
    [Failure] if trailing bytes remain. *)

val byte_size : ty -> Value.t -> int
(** Number of bytes {!encode} will produce, without encoding. *)

val pp_ty : Format.formatter -> ty -> unit
val ty_to_string : ty -> string
