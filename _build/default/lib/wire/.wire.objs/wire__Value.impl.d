lib/wire/value.ml: Array Bits Float Format Int32 List String
