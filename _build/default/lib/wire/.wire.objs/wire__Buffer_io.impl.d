lib/wire/buffer_io.ml: Buffer Bytes Char Int32 Int64 Value
