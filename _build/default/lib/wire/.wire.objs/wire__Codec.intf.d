lib/wire/codec.mli: Buffer_io Bytes Format Value
