lib/wire/codec.ml: Array Bits Buffer_io Format List Value
