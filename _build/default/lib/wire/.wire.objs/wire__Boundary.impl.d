lib/wire/boundary.ml: Bytes Codec
