lib/wire/boundary.mli: Bytes Codec Value
