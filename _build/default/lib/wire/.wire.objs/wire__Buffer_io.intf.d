lib/wire/buffer_io.mli: Bytes
