lib/wire/value.mli: Bits Format
