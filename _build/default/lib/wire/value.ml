type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Bit of bool
  | Enum of { enum : string; tag : int }
  | Bits of Bits.Bitvec.t
  | Int_array of int array
  | Float_array of float array
  | Bool_array of bool array
  | Array of t array
  | Tuple of t list

let norm32 v =
  let v = v land 0xffffffff in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let add_f32 a b = f32 (a +. b)
let sub_f32 a b = f32 (a -. b)
let mul_f32 a b = f32 (a *. b)
let div_f32 a b = f32 (a /. b)

let add32 a b = norm32 (a + b)
let sub32 a b = norm32 (a - b)
let mul32 a b = norm32 (a * b)

let div32 a b =
  if b = 0 then raise Division_by_zero;
  (* OCaml's (/) already truncates toward zero, matching Java. *)
  norm32 (a / b)

let rem32 a b =
  if b = 0 then raise Division_by_zero;
  norm32 (a mod b)

let shl32 a b = norm32 (a lsl (b land 31))

let shr32 a b = norm32 (norm32 a asr (b land 31))

let ushr32 a b = norm32 ((norm32 a land 0xffffffff) lsr (b land 31))

let rec equal a b =
  match a, b with
  | Unit, Unit -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Bit x, Bit y -> x = y
  | Enum a, Enum b -> String.equal a.enum b.enum && a.tag = b.tag
  | Bits x, Bits y -> Bits.Bitvec.equal x y
  | Int_array x, Int_array y -> x = y
  | Float_array x, Float_array y ->
    Array.length x = Array.length y
    && Array.for_all2 (fun u v -> equal (Float u) (Float v)) x y
  | Bool_array x, Bool_array y -> x = y
  | Array x, Array y ->
    Array.length x = Array.length y && Array.for_all2 equal x y
  | Tuple x, Tuple y -> List.length x = List.length y && List.for_all2 equal x y
  | ( ( Unit | Bool _ | Int _ | Float _ | Bit _ | Enum _ | Bits _
      | Int_array _ | Float_array _ | Bool_array _ | Array _ | Tuple _ ),
      _ ) ->
    false

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Bit b -> Format.fprintf ppf "%s" (if b then "one" else "zero")
  | Enum { enum; tag } -> Format.fprintf ppf "%s.%d" enum tag
  | Bits bv -> Bits.Bitvec.pp ppf bv
  | Int_array a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Format.pp_print_int)
      a
  | Float_array a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf f -> Format.fprintf ppf "%g" f))
      a
  | Bool_array a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         Format.pp_print_bool)
      a
  | Array a ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      a
  | Tuple xs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp)
      xs

let to_string v = Format.asprintf "%a" pp v

let type_name = function
  | Unit -> "void"
  | Bool _ -> "boolean"
  | Int _ -> "int"
  | Float _ -> "float"
  | Bit _ -> "bit"
  | Enum { enum; _ } -> enum
  | Bits _ -> "bit[]"
  | Int_array _ -> "int[]"
  | Float_array _ -> "float[]"
  | Bool_array _ -> "boolean[]"
  | Array _ -> "array"
  | Tuple _ -> "tuple"
