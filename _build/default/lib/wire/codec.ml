type ty =
  | W_unit
  | W_bool
  | W_int
  | W_float
  | W_bit
  | W_enum of string
  | W_bits
  | W_bits_boxed
  | W_array of ty
  | W_tuple of ty list

exception Type_mismatch of { expected : ty; got : Value.t }

let mismatch expected got = raise (Type_mismatch { expected; got })

let rec pp_ty ppf = function
  | W_unit -> Format.fprintf ppf "void"
  | W_bool -> Format.fprintf ppf "boolean"
  | W_int -> Format.fprintf ppf "int"
  | W_float -> Format.fprintf ppf "float"
  | W_bit -> Format.fprintf ppf "bit"
  | W_enum name -> Format.fprintf ppf "%s" name
  | W_bits -> Format.fprintf ppf "bit[]"
  | W_bits_boxed -> Format.fprintf ppf "bit[](boxed)"
  | W_array t -> Format.fprintf ppf "%a[]" pp_ty t
  | W_tuple ts ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_ty)
      ts

let ty_to_string t = Format.asprintf "%a" pp_ty t

let rec encode ty w (v : Value.t) =
  let module W = Buffer_io.Writer in
  match ty, v with
  | W_unit, Unit -> ()
  | W_bool, Bool b | W_bit, Bit b -> W.u8 w (if b then 1 else 0)
  | W_int, Int i -> W.i32 w i
  | W_float, Float f -> W.f32 w f
  | W_enum _, Enum { tag; _ } -> W.i32 w tag
  | W_bits, Bits bv ->
    W.i32 w (Bits.Bitvec.length bv);
    W.bytes w (Bits.Bitvec.to_packed_bytes bv)
  | W_bits_boxed, Bits bv ->
    let n = Bits.Bitvec.length bv in
    W.i32 w n;
    for i = 0 to n - 1 do
      W.u8 w (if Bits.Bitvec.get bv i then 1 else 0)
    done
  | W_array W_int, Int_array a ->
    W.i32 w (Array.length a);
    Array.iter (W.i32 w) a
  | W_array W_float, Float_array a ->
    W.i32 w (Array.length a);
    Array.iter (W.f32 w) a
  | W_array W_bool, Bool_array a ->
    W.i32 w (Array.length a);
    Array.iter (fun b -> W.u8 w (if b then 1 else 0)) a
  | W_array elt, Array a ->
    W.i32 w (Array.length a);
    Array.iter (encode elt w) a
  | W_array W_bit, Bits bv -> encode W_bits_boxed w (Bits bv)
  | W_tuple tys, Tuple vs when List.length tys = List.length vs ->
    List.iter2 (fun ty v -> encode ty w v) tys vs
  | ( ( W_unit | W_bool | W_int | W_float | W_bit | W_enum _ | W_bits
      | W_bits_boxed | W_array _ | W_tuple _ ),
      _ ) ->
    mismatch ty v

let rec decode ty r : Value.t =
  let module R = Buffer_io.Reader in
  match ty with
  | W_unit -> Unit
  | W_bool -> Bool (R.u8 r <> 0)
  | W_bit -> Bit (R.u8 r <> 0)
  | W_int -> Int (R.i32 r)
  | W_float -> Float (R.f32 r)
  | W_enum enum -> Enum { enum; tag = R.i32 r }
  | W_bits ->
    let len = R.i32 r in
    let data = R.bytes r ((len + 7) / 8) in
    Bits (Bits.Bitvec.of_packed_bytes ~length:len data)
  | W_bits_boxed ->
    let len = R.i32 r in
    Bits (Bits.Bitvec.of_bool_array (Array.init len (fun _ -> R.u8 r <> 0)))
  | W_array W_int ->
    let n = R.i32 r in
    Int_array (Array.init n (fun _ -> R.i32 r))
  | W_array W_float ->
    let n = R.i32 r in
    Float_array (Array.init n (fun _ -> R.f32 r))
  | W_array W_bool ->
    let n = R.i32 r in
    Bool_array (Array.init n (fun _ -> R.u8 r <> 0))
  | W_array W_bit -> decode W_bits_boxed r
  | W_array elt ->
    let n = R.i32 r in
    Array (Array.init n (fun _ -> decode elt r))
  | W_tuple tys -> Tuple (List.map (fun ty -> decode ty r) tys)

let encode_bytes ty v =
  let w = Buffer_io.Writer.create () in
  encode ty w v;
  Buffer_io.Writer.contents w

let decode_bytes ty data =
  let r = Buffer_io.Reader.of_bytes data in
  let v = decode ty r in
  if Buffer_io.Reader.remaining r <> 0 then
    failwith "Codec.decode_bytes: trailing bytes";
  v

let rec byte_size ty (v : Value.t) =
  match ty, v with
  | W_unit, Unit -> 0
  | (W_bool | W_bit), (Bool _ | Bit _) -> 1
  | (W_int | W_float | W_enum _), (Int _ | Float _ | Enum _) -> 4
  | W_bits, Bits bv -> 4 + ((Bits.Bitvec.length bv + 7) / 8)
  | (W_bits_boxed | W_array W_bit), Bits bv -> 4 + Bits.Bitvec.length bv
  | W_array W_int, Int_array a -> 4 + (4 * Array.length a)
  | W_array W_float, Float_array a -> 4 + (4 * Array.length a)
  | W_array W_bool, Bool_array a -> 4 + Array.length a
  | W_array elt, Array a ->
    Array.fold_left (fun acc x -> acc + byte_size elt x) 4 a
  | W_tuple tys, Tuple vs ->
    List.fold_left2 (fun acc ty x -> acc + byte_size ty x) 0 tys vs
  | ( ( W_unit | W_bool | W_int | W_float | W_bit | W_enum _ | W_bits
      | W_bits_boxed | W_array _ | W_tuple _ ),
      _ ) ->
    mismatch ty v
