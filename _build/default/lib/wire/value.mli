(** Lime runtime values.

    Only [value] types flow between tasks (enforced by the Lime type
    system, paper section 2.2), so the representation here is
    immutable-by-convention: the typechecker guarantees programs never
    mutate a value that crossed a task connection, and the marshaling
    layer can serialize without concern for data races.

    Lime [int] has Java 32-bit two's-complement semantics; {!norm32}
    normalizes an OCaml int to that range and every arithmetic helper
    applies it. *)

type t =
  | Unit
  | Bool of bool
  | Int of int  (** 32-bit two's complement, kept normalized *)
  | Float of float
  | Bit of bool
  | Enum of { enum : string; tag : int }
      (** instance of a [value enum]; [tag] is the declaration index *)
  | Bits of Bits.Bitvec.t  (** bit array, packed *)
  | Int_array of int array
  | Float_array of float array
  | Bool_array of bool array
  | Array of t array
      (** arrays of non-primitive element type (e.g. enums, tuples) *)
  | Tuple of t list

val norm32 : int -> int
(** Truncate to 32 bits and sign-extend. *)

val f32 : float -> float
(** Round to IEEE single precision. Lime [float] is Java's 32-bit
    float; every device keeps float results in this set, so values
    marshal across the wire (4 bytes) without loss and co-executing
    backends produce bit-identical answers. *)

val add_f32 : float -> float -> float
val sub_f32 : float -> float -> float
val mul_f32 : float -> float -> float
val div_f32 : float -> float -> float

val add32 : int -> int -> int
val sub32 : int -> int -> int
val mul32 : int -> int -> int

val div32 : int -> int -> int
(** Java semantics: truncation toward zero; [Division_by_zero] on 0. *)

val rem32 : int -> int -> int
val shl32 : int -> int -> int
val shr32 : int -> int -> int
(** Arithmetic shift right; shift counts are masked to 5 bits as in Java. *)

val ushr32 : int -> int -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val type_name : t -> string
(** Short description used in runtime error messages ("int[]", "bit"). *)
