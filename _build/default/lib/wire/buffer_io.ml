module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let i32 t v =
    u8 t v;
    u8 t (v asr 8);
    u8 t (v asr 16);
    u8 t (v asr 24)

  let i64 t v = Buffer.add_int64_le t v
  let f32 t v = i32 t (Int32.to_int (Int32.bits_of_float v))
  let f64 t v = i64 t (Int64.bits_of_float v)
  let bytes t b = Buffer.add_bytes t b
  let contents t = Buffer.to_bytes t
end

module Reader = struct
  type t = { data : Bytes.t; mutable pos : int }

  exception Underflow

  let of_bytes data = { data; pos = 0 }
  let remaining t = Bytes.length t.data - t.pos
  let pos t = t.pos

  let u8 t =
    if remaining t < 1 then raise Underflow;
    let v = Char.code (Bytes.get t.data t.pos) in
    t.pos <- t.pos + 1;
    v

  let i32 t =
    let b0 = u8 t in
    let b1 = u8 t in
    let b2 = u8 t in
    let b3 = u8 t in
    Value.norm32 (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))

  let i64 t =
    if remaining t < 8 then raise Underflow;
    let v = Bytes.get_int64_le t.data t.pos in
    t.pos <- t.pos + 8;
    v

  let f32 t = Int32.float_of_bits (Int32.of_int (i32 t))
  let f64 t = Int64.float_of_bits (i64 t)

  let bytes t n =
    if n < 0 || remaining t < n then raise Underflow;
    let b = Bytes.sub t.data t.pos n in
    t.pos <- t.pos + n;
    b
end
