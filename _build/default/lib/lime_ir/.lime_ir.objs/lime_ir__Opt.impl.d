lib/lime_ir/opt.ml: Int Interp Ir List Map Option Wire
