lib/lime_ir/printer.mli: Ir
