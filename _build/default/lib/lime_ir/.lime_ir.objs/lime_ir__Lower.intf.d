lib/lime_ir/lower.mli: Ir Lime_types
