lib/lime_ir/opt.mli: Ir
