lib/lime_ir/printer.ml: Buffer Ir List Printf String
