lib/lime_ir/lower.ml: Diag Intrinsics Ir Lime_syntax Lime_types List Option Printf Srcloc Support Wire
