lib/lime_ir/ir.ml: Format List Map Printf String
