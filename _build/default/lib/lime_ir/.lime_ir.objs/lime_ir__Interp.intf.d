lib/lime_ir/interp.mli: Format Ir Wire
