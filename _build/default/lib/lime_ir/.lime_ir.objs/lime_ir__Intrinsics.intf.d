lib/lime_ir/intrinsics.mli: Wire
