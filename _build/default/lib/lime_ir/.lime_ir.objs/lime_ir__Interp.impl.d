lib/lime_ir/interp.ml: Array Bits Float Format Intrinsics Ir List Wire
