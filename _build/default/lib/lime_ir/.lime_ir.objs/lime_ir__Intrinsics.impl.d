lib/lime_ir/intrinsics.ml: Float Format List String Wire
