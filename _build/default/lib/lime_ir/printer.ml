let const_text (c : Ir.const) =
  match c with
  | Ir.C_unit -> "()"
  | Ir.C_bool b -> string_of_bool b
  | Ir.C_i32 i -> string_of_int i
  | Ir.C_f32 f -> Printf.sprintf "%gf" f
  | Ir.C_bit b -> if b then "one" else "zero"
  | Ir.C_enum (e, tag) -> Printf.sprintf "%s#%d" e tag
  | Ir.C_bits s -> s ^ "b"

let operand_text (o : Ir.operand) =
  match o with
  | Ir.O_var v -> Printf.sprintf "%%%d:%s" v.v_id v.v_name
  | Ir.O_const c -> const_text c

let unop_name (u : Ir.unop) =
  match u with
  | Ir.Neg_i -> "neg.i"
  | Ir.Neg_f -> "neg.f"
  | Ir.Not_b -> "not"
  | Ir.Bnot_i -> "bnot.i"
  | Ir.I2f -> "i2f"

let binop_name (b : Ir.binop) =
  match b with
  | Ir.Add_i -> "add.i" | Ir.Sub_i -> "sub.i" | Ir.Mul_i -> "mul.i"
  | Ir.Div_i -> "div.i" | Ir.Rem_i -> "rem.i"
  | Ir.Add_f -> "add.f" | Ir.Sub_f -> "sub.f" | Ir.Mul_f -> "mul.f"
  | Ir.Div_f -> "div.f" | Ir.Rem_f -> "rem.f"
  | Ir.Shl_i -> "shl" | Ir.Shr_i -> "shr"
  | Ir.And_i -> "and.i" | Ir.Or_i -> "or.i" | Ir.Xor_i -> "xor.i"
  | Ir.And_b -> "and.b" | Ir.Or_b -> "or.b" | Ir.Xor_b -> "xor.b"
  | Ir.And_bit -> "and.bit" | Ir.Or_bit -> "or.bit" | Ir.Xor_bit -> "xor.bit"
  | Ir.Eq -> "eq" | Ir.Neq -> "neq"
  | Ir.Lt_i -> "lt.i" | Ir.Leq_i -> "leq.i" | Ir.Gt_i -> "gt.i"
  | Ir.Geq_i -> "geq.i"
  | Ir.Lt_f -> "lt.f" | Ir.Leq_f -> "leq.f" | Ir.Gt_f -> "gt.f"
  | Ir.Geq_f -> "geq.f"

let rhs_text (r : Ir.rhs) =
  match r with
  | Ir.R_op o -> operand_text o
  | Ir.R_unop (u, a) -> Printf.sprintf "%s %s" (unop_name u) (operand_text a)
  | Ir.R_binop (b, x, y) ->
    Printf.sprintf "%s %s, %s" (binop_name b) (operand_text x) (operand_text y)
  | Ir.R_alen a -> Printf.sprintf "alen %s" (operand_text a)
  | Ir.R_aload (a, i) ->
    Printf.sprintf "aload %s[%s]" (operand_text a) (operand_text i)
  | Ir.R_call (key, args) ->
    Printf.sprintf "call %s(%s)" key
      (String.concat ", " (List.map operand_text args))
  | Ir.R_newarr (ty, n) ->
    Printf.sprintf "newarr %s[%s]" (Ir.ty_to_string ty) (operand_text n)
  | Ir.R_freeze a -> Printf.sprintf "freeze %s" (operand_text a)
  | Ir.R_newobj (cls, args) ->
    Printf.sprintf "new %s(%s)" cls
      (String.concat ", " (List.map operand_text args))
  | Ir.R_field (o, slot) -> Printf.sprintf "field %s.%d" (operand_text o) slot
  | Ir.R_map m ->
    Printf.sprintf "map[%s] %s(%s)" m.map_uid m.map_fn
      (String.concat ", "
         (List.map
            (fun (o, mapped) -> operand_text o ^ if mapped then "[]" else "")
            m.map_args))
  | Ir.R_reduce r ->
    Printf.sprintf "reduce[%s] %s(%s)" r.red_uid r.red_fn
      (operand_text r.red_arg)
  | Ir.R_mkgraph (uid, ops) ->
    Printf.sprintf "mkgraph %s(%s)" uid
      (String.concat ", " (List.map operand_text ops))

let rec block_text indent (b : Ir.block) =
  String.concat "" (List.map (instr_text indent) b)

and instr_text indent (i : Ir.instr) =
  let pad = String.make indent ' ' in
  match i with
  | Ir.I_let (v, r) ->
    Printf.sprintf "%slet %%%d:%s = %s\n" pad v.v_id v.v_name (rhs_text r)
  | Ir.I_set (v, r) ->
    Printf.sprintf "%sset %%%d:%s = %s\n" pad v.v_id v.v_name (rhs_text r)
  | Ir.I_astore (a, idx, x) ->
    Printf.sprintf "%sastore %s[%s] = %s\n" pad (operand_text a)
      (operand_text idx) (operand_text x)
  | Ir.I_setfield (o, slot, x) ->
    Printf.sprintf "%ssetfield %s.%d = %s\n" pad (operand_text o) slot
      (operand_text x)
  | Ir.I_if (c, a, b) ->
    Printf.sprintf "%sif %s {\n%s%s} else {\n%s%s}\n" pad (operand_text c)
      (block_text (indent + 2) a)
      pad
      (block_text (indent + 2) b)
      pad
  | Ir.I_while (cond_block, cond_op, body) ->
    Printf.sprintf "%swhile {\n%s%s  test %s\n%s} do {\n%s%s}\n" pad
      (block_text (indent + 2) cond_block)
      pad (operand_text cond_op) pad
      (block_text (indent + 2) body)
      pad
  | Ir.I_return None -> pad ^ "ret\n"
  | Ir.I_return (Some o) -> Printf.sprintf "%sret %s\n" pad (operand_text o)
  | Ir.I_run_graph (g, blocking) ->
    Printf.sprintf "%srun_graph %s %s\n" pad (operand_text g)
      (if blocking then "finish" else "start")
  | Ir.I_do r -> Printf.sprintf "%sdo %s\n" pad (rhs_text r)

let func_to_string (f : Ir.func) =
  let kind =
    match f.fn_kind with
    | Ir.K_static -> "static"
    | Ir.K_instance cls -> "instance of " ^ cls
    | Ir.K_ctor cls -> "constructor of " ^ cls
  in
  Printf.sprintf "func %s (%s%s%s) : %s {  // %s\n%s}\n" f.fn_key
    (String.concat ", "
       (List.map
          (fun (v : Ir.var) ->
            Printf.sprintf "%%%d:%s %s" v.v_id v.v_name (Ir.ty_to_string v.v_ty))
          f.fn_params))
    (if f.fn_local then " local" else "")
    (if f.fn_pure then " pure" else "")
    (Ir.ty_to_string f.fn_ret)
    kind
    (block_text 2 f.fn_body)

let template_to_string (gt : Ir.graph_template) =
  let node_text (n : Ir.tnode) =
    match n with
    | Ir.N_source { elt } -> Printf.sprintf "source<%s>" (Ir.ty_to_string elt)
    | Ir.N_filter f ->
      Printf.sprintf "%sfilter %s [%s -> %s] uid=%s"
        (if f.relocatable then "[reloc] " else "")
        (match f.target with
        | Ir.F_static key -> key
        | Ir.F_instance (cls, m) -> cls ^ "." ^ m ^ " (stateful)")
        (Ir.ty_to_string f.input) (Ir.ty_to_string f.output) f.uid
    | Ir.N_sink { elt } -> Printf.sprintf "sink<%s>" (Ir.ty_to_string elt)
  in
  Printf.sprintf "graph %s:\n%s" gt.gt_uid
    (String.concat ""
       (List.map (fun n -> "  " ^ node_text n ^ "\n") gt.gt_nodes))

let program_to_string (p : Ir.program) =
  let buf = Buffer.create 1024 in
  Ir.String_map.iter
    (fun _ gt -> Buffer.add_string buf (template_to_string gt ^ "\n"))
    p.templates;
  Ir.String_map.iter
    (fun _ f -> Buffer.add_string buf (func_to_string f ^ "\n"))
    p.funcs;
  Buffer.contents buf
