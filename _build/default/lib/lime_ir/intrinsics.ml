module V = Wire.Value

let signatures =
  [
    "sqrt", 1; "exp", 1; "log", 1; "sin", 1; "cos", 1; "abs", 1;
    "floor", 1; "pow", 2; "min", 2; "max", 2;
  ]

let is_intrinsic key =
  match String.index_opt key '.' with
  | Some 4 when String.sub key 0 4 = "Math" ->
    List.mem_assoc (String.sub key 5 (String.length key - 5)) signatures
  | _ -> false

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let float1 name f args =
  match args with
  | [ V.Float x ] -> V.Float (V.f32 (f x))
  | _ -> fail "Math.%s expects one float argument" name

let float2 name f args =
  match args with
  | [ V.Float x; V.Float y ] -> V.Float (V.f32 (f x y))
  | _ -> fail "Math.%s expects two float arguments" name

let apply key (args : V.t list) : V.t =
  let name =
    match String.index_opt key '.' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  match name with
  | "sqrt" -> float1 name sqrt args
  | "exp" -> float1 name exp args
  | "log" -> float1 name log args
  | "sin" -> float1 name sin args
  | "cos" -> float1 name cos args
  | "abs" -> float1 name Float.abs args
  | "floor" -> float1 name Float.floor args
  | "pow" -> float2 name ( ** ) args
  | "min" -> float2 name Float.min args
  | "max" -> float2 name Float.max args
  | _ -> fail "unknown intrinsic Math.%s" name

(* Special-function-unit throughput costs, in cycles. *)
let device_cycles key =
  match String.index_opt key '.' with
  | Some i -> (
    match String.sub key (i + 1) (String.length key - i - 1) with
    | "abs" | "min" | "max" | "floor" -> 1.0
    | "sqrt" -> 8.0
    | "exp" | "log" | "sin" | "cos" -> 16.0
    | "pow" -> 32.0
    | _ -> 16.0)
  | None -> 16.0

let short key =
  match String.index_opt key '.' with
  | Some i -> String.sub key (i + 1) (String.length key - i - 1)
  | None -> key

let opencl_name key =
  match short key with
  | "abs" -> "fabs"
  | "min" -> "fmin"
  | "max" -> "fmax"
  | s -> s

let c_name key =
  match short key with
  | "abs" -> "fabsf"
  | "min" -> "fminf"
  | "max" -> "fmaxf"
  | s -> s ^ "f"
