(** Lowering from the typed AST to the IR.

    Besides the usual flattening to virtual registers, this pass
    performs the paper's static task-graph shape discovery (section 3):
    task expressions are evaluated symbolically at compile time into
    linear pipeline fragments; fragments may flow through local
    variables but not through control flow or method boundaries. When a
    graph's shape cannot be determined, lowering fails with a compile
    error, exactly as the paper prescribes ("the programmer is informed
    at compile time with an appropriate error message").

    Every filter creation site and every map/reduce site receives a
    unique task identifier; the backends label artifacts with these
    UIDs and the generated host code passes the same UIDs to the
    runtime (sections 3 and 4.1). *)

val lower : Lime_types.Tast.program -> Ir.program
(** @raise Support.Diag.Compile_error on undiscoverable graph shapes. *)
