(** Human-readable IR dumps, for compiler debugging and the
    [lmc dump-ir] command. *)

val func_to_string : Ir.func -> string
val template_to_string : Ir.graph_template -> string
val program_to_string : Ir.program -> string
