(** Shallow IR optimizations.

    The frontend "performs shallow optimizations" before generating
    bytecode (paper section 3); these are they:

    - constant folding of unary/binary operators on constants (with
      the exact Java 32-bit / IEEE-single semantics of the VM);
    - copy propagation of [let x = y];
    - branch folding of [if true/false] and [while false];
    - dead-code elimination of unused pure bindings.

    Passes run to a fixed point. They never change observable
    behaviour: folding uses the interpreter's own operator evaluators,
    and anything that can trap (division, array access, calls) is kept. *)

val optimize_function : Ir.func -> Ir.func
val optimize : Ir.program -> Ir.program

val stats : Ir.func -> int
(** Instruction count of a function body (for before/after reporting). *)
