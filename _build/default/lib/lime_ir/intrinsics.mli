(** The builtin [Math] class.

    Lime programs call [Math.sqrt(x)], [Math.exp(x)] ... as ordinary
    static local methods; there is no Lime body behind them — every
    execution engine maps them to its native operation (OCaml float
    primitives here, [sqrt]/[exp] in OpenCL C, [sqrtf]/[expf] in
    generated C), always rounding results to single precision so all
    engines agree bit-for-bit. The FPGA backend excludes them
    (transcendental FP cores are beyond its work-in-progress feature
    set, matching the paper's own FPGA-backend caveats). *)

val is_intrinsic : string -> bool
(** [is_intrinsic "Math.sqrt"] — recognizes intrinsic function keys. *)

val signatures : (string * int) list
(** Method name and arity for every [Math] intrinsic (all parameters
    and results are [float]). *)

exception Error of string

val apply : string -> Wire.Value.t list -> Wire.Value.t
(** Evaluate an intrinsic by key, e.g.
    [apply "Math.pow" [Float 2.; Float 10.]].
    @raise Error on unknown keys or wrong arguments. *)

val device_cycles : string -> float
(** GPU special-function-unit cost of one application. *)

val opencl_name : string -> string
(** The OpenCL C spelling, e.g. ["Math.sqrt"] -> ["sqrt"]. *)

val c_name : string -> string
(** The C spelling (single precision), e.g. ["Math.sqrt"] -> ["sqrtf"]. *)
