module V = Wire.Value

(* Constant environment: virtual registers known to hold a constant or
   to be a copy of another register. Conservative: any register
   assigned in a branch or loop is invalidated. *)

type binding = K_const of Ir.const | K_copy of Ir.var

let const_of_value (v : V.t) : Ir.const option =
  match v with
  | V.Unit -> Some Ir.C_unit
  | V.Bool b -> Some (Ir.C_bool b)
  | V.Int i -> Some (Ir.C_i32 i)
  | V.Float f -> Some (Ir.C_f32 f)
  | V.Bit b -> Some (Ir.C_bit b)
  | V.Enum { enum; tag } -> Some (Ir.C_enum (enum, tag))
  | V.Bits _ | V.Int_array _ | V.Float_array _ | V.Bool_array _ | V.Array _
  | V.Tuple _ ->
    None

(* Division and remainder can trap; fold only when safe. *)
let foldable_binop (op : Ir.binop) (b : Ir.const) =
  match op, b with
  | (Ir.Div_i | Ir.Rem_i), Ir.C_i32 0 -> false
  | _ -> true

module Int_map = Map.Make (Int)

type env = binding Int_map.t

let rec resolve_operand (env : env) (o : Ir.operand) : Ir.operand =
  match o with
  | Ir.O_const _ -> o
  | Ir.O_var v -> (
    match Int_map.find_opt v.Ir.v_id env with
    | Some (K_const c) -> Ir.O_const c
    | Some (K_copy v') -> resolve_operand (Int_map.remove v.Ir.v_id env) (Ir.O_var v')
    | None -> o)

let fold_rhs (env : env) (rhs : Ir.rhs) : Ir.rhs =
  let r = resolve_operand env in
  match rhs with
  | Ir.R_op o -> Ir.R_op (r o)
  | Ir.R_unop (op, a) -> (
    match r a with
    | Ir.O_const c as a' -> (
      match const_of_value (Interp.eval_unop op (Interp.const_value c)) with
      | Some folded -> Ir.R_op (Ir.O_const folded)
      | None -> Ir.R_unop (op, a')
      | exception Interp.Runtime_error _ -> Ir.R_unop (op, a'))
    | a' -> Ir.R_unop (op, a'))
  | Ir.R_binop (op, a, b) -> (
    match r a, r b with
    | (Ir.O_const ca as a'), (Ir.O_const cb as b') when foldable_binop op cb
      -> (
      match
        const_of_value
          (Interp.eval_binop op (Interp.const_value ca) (Interp.const_value cb))
      with
      | Some folded -> Ir.R_op (Ir.O_const folded)
      | None -> Ir.R_binop (op, a', b')
      | exception Interp.Runtime_error _ -> Ir.R_binop (op, a', b'))
    | a', b' -> Ir.R_binop (op, a', b'))
  | Ir.R_alen a -> Ir.R_alen (r a)
  | Ir.R_aload (a, i) -> Ir.R_aload (r a, r i)
  | Ir.R_call (key, args) -> Ir.R_call (key, List.map r args)
  | Ir.R_newarr (ty, n) -> Ir.R_newarr (ty, r n)
  | Ir.R_freeze a -> Ir.R_freeze (r a)
  | Ir.R_newobj (cls, args) -> Ir.R_newobj (cls, List.map r args)
  | Ir.R_field (o, slot) -> Ir.R_field (r o, slot)
  | Ir.R_map m -> Ir.R_map { m with map_args = List.map (fun (o, f) -> r o, f) m.map_args }
  | Ir.R_reduce red -> Ir.R_reduce { red with red_arg = r red.red_arg }
  | Ir.R_mkgraph (uid, ops) -> Ir.R_mkgraph (uid, List.map r ops)

(* Registers assigned anywhere in a block (to invalidate across
   branches and loop bodies). *)
let rec assigned_in (b : Ir.block) : Int_map.key list =
  List.concat_map
    (function
      | Ir.I_let (v, _) | Ir.I_set (v, _) -> [ v.Ir.v_id ]
      | Ir.I_if (_, a, b) -> assigned_in a @ assigned_in b
      | Ir.I_while (c, _, body) -> assigned_in c @ assigned_in body
      | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_return _ | Ir.I_run_graph _
      | Ir.I_do _ ->
        [])
    b

let invalidate env ids = List.fold_left (fun e k -> Int_map.remove k e) env ids

(* Constant folding + copy propagation + branch folding, threading the
   environment linearly through the block. *)
let rec fold_block (env : env) (b : Ir.block) : Ir.block * env =
  match b with
  | [] -> [], env
  | i :: rest ->
    let folded, env = fold_instr env i in
    let rest', env = fold_block env rest in
    folded @ rest', env

and fold_instr (env : env) (i : Ir.instr) : Ir.block * env =
  match i with
  | Ir.I_let (v, rhs) | Ir.I_set (v, rhs) -> (
    let rhs = fold_rhs env rhs in
    let env = Int_map.remove v.Ir.v_id env in
    match rhs with
    | Ir.R_op (Ir.O_const c) ->
      [ Ir.I_let (v, rhs) ], Int_map.add v.Ir.v_id (K_const c) env
    | Ir.R_op (Ir.O_var src) when src.Ir.v_id <> v.Ir.v_id ->
      [ Ir.I_let (v, rhs) ], Int_map.add v.Ir.v_id (K_copy src) env
    | _ -> [ Ir.I_let (v, rhs) ], env)
  | Ir.I_astore (a, idx, x) ->
    let r = resolve_operand env in
    [ Ir.I_astore (r a, r idx, r x) ], env
  | Ir.I_setfield (o, slot, x) ->
    let r = resolve_operand env in
    [ Ir.I_setfield (r o, slot, r x) ], env
  | Ir.I_if (c, a, b) -> (
    match resolve_operand env c with
    | Ir.O_const (Ir.C_bool true) -> fold_block env a
    | Ir.O_const (Ir.C_bool false) -> fold_block env b
    | c' ->
      (* Each branch folds with the entry environment; afterwards any
         register either branch assigned is unknown. *)
      let a', _ = fold_block env a in
      let b', _ = fold_block env b in
      let env = invalidate env (assigned_in a @ assigned_in b) in
      [ Ir.I_if (c', a', b') ], env)
  | Ir.I_while (cond_block, cond_op, body) -> (
    (* Loop-carried registers are unknown inside and after the loop. *)
    let carried = assigned_in cond_block @ assigned_in body in
    let env_in = invalidate env carried in
    let cond_block', env_cond = fold_block env_in cond_block in
    match resolve_operand env_cond cond_op with
    | Ir.O_const (Ir.C_bool false) ->
      (* The condition is false on entry and the condition block's
         effects are pure register writes: drop the loop but keep the
         condition computation's bindings. *)
      cond_block', env_cond
    | cond_op' ->
      let body', _ = fold_block env_in body in
      [ Ir.I_while (cond_block', cond_op', body') ], env_in)
  | Ir.I_return o ->
    [ Ir.I_return (Option.map (resolve_operand env) o) ], env
  | Ir.I_run_graph (g, blocking) ->
    [ Ir.I_run_graph (resolve_operand env g, blocking) ], env
  | Ir.I_do rhs -> [ Ir.I_do (fold_rhs env rhs) ], env

(* --- dead code elimination ------------------------------------------- *)

(* An rhs whose evaluation has no side effects and cannot trap. *)
let pure_rhs = function
  | Ir.R_op _ | Ir.R_unop _ | Ir.R_freeze _ | Ir.R_field _ -> true
  | Ir.R_binop ((Ir.Div_i | Ir.Rem_i | Ir.Div_f | Ir.Rem_f), _, Ir.O_const (Ir.C_i32 n))
    ->
    n <> 0
  | Ir.R_binop ((Ir.Div_i | Ir.Rem_i), _, _) -> false
  | Ir.R_binop _ -> true
  | Ir.R_alen _ | Ir.R_aload _ -> false  (* may trap *)
  | Ir.R_newarr _ -> false  (* negative length traps *)
  | Ir.R_call _ | Ir.R_newobj _ | Ir.R_map _ | Ir.R_reduce _ | Ir.R_mkgraph _
    ->
    false

let rec used_vars_block (b : Ir.block) acc =
  List.fold_left (fun acc i -> used_vars_instr i acc) acc b

and used_vars_instr (i : Ir.instr) acc =
  let op acc = function
    | Ir.O_var v -> Int_map.add v.Ir.v_id () acc
    | Ir.O_const _ -> acc
  in
  let rhs acc = function
    | Ir.R_op o | Ir.R_unop (_, o) | Ir.R_alen o | Ir.R_freeze o
    | Ir.R_field (o, _) ->
      op acc o
    | Ir.R_binop (_, a, b) | Ir.R_aload (a, b) -> op (op acc a) b
    | Ir.R_call (_, os) | Ir.R_newobj (_, os) | Ir.R_mkgraph (_, os) ->
      List.fold_left op acc os
    | Ir.R_newarr (_, o) -> op acc o
    | Ir.R_map m -> List.fold_left (fun acc (o, _) -> op acc o) acc m.map_args
    | Ir.R_reduce r -> op acc r.red_arg
  in
  match i with
  | Ir.I_let (_, r) | Ir.I_set (_, r) | Ir.I_do r -> rhs acc r
  | Ir.I_astore (a, b, c) -> op (op (op acc a) b) c
  | Ir.I_setfield (a, _, b) -> op (op acc a) b
  | Ir.I_if (c, x, y) -> used_vars_block y (used_vars_block x (op acc c))
  | Ir.I_while (c, o, body) ->
    used_vars_block body (op (used_vars_block c acc) o)
  | Ir.I_return (Some o) | Ir.I_run_graph (o, _) -> op acc o
  | Ir.I_return None -> acc

let rec dce_block (used : unit Int_map.t) (b : Ir.block) : Ir.block =
  List.filter_map
    (fun i ->
      match i with
      | Ir.I_let (v, rhs) | Ir.I_set (v, rhs) ->
        if (not (Int_map.mem v.Ir.v_id used)) && pure_rhs rhs then None
        else Some i
      | Ir.I_if (c, a, b) ->
        Some (Ir.I_if (c, dce_block used a, dce_block used b))
      | Ir.I_while (c, o, body) ->
        Some (Ir.I_while (dce_block used c, o, dce_block used body))
      | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_return _ | Ir.I_run_graph _
      | Ir.I_do _ ->
        Some i)
    b

let dce (f : Ir.func) : Ir.func =
  (* The while-condition operand must stay live even if it is only
     written in the condition block itself; used_vars covers it. *)
  let used = used_vars_block f.fn_body Int_map.empty in
  { f with fn_body = dce_block used f.fn_body }

(* --- driver ------------------------------------------------------------ *)

let rec instr_count_block (b : Ir.block) =
  List.fold_left
    (fun acc i ->
      acc
      +
      match i with
      | Ir.I_if (_, a, b) -> 1 + instr_count_block a + instr_count_block b
      | Ir.I_while (c, _, body) ->
        1 + instr_count_block c + instr_count_block body
      | Ir.I_let _ | Ir.I_set _ | Ir.I_astore _ | Ir.I_setfield _
      | Ir.I_return _ | Ir.I_run_graph _ | Ir.I_do _ ->
        1)
    0 b

let stats (f : Ir.func) = instr_count_block f.fn_body

let optimize_function (f : Ir.func) : Ir.func =
  let rec fixpoint f n =
    if n = 0 then f
    else begin
      let body, _ = fold_block Int_map.empty f.Ir.fn_body in
      let f' = dce { f with fn_body = body } in
      if stats f' = stats f && f'.fn_body = f.fn_body then f'
      else fixpoint f' (n - 1)
    end
  in
  fixpoint f 8

let optimize (p : Ir.program) : Ir.program =
  { p with funcs = Ir.String_map.map optimize_function p.funcs }
