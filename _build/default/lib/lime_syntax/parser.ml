open Support

type state = { tokens : Lexer.spanned array; mutable pos : int }

let cur st = st.tokens.(st.pos).Lexer.token
let cur_loc st = st.tokens.(st.pos).Lexer.loc

let peek st n =
  let i = min (st.pos + n) (Array.length st.tokens - 1) in
  st.tokens.(i).Lexer.token

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let error st fmt = Diag.error ~loc:(cur_loc st) ~phase:"parse" fmt

let expect st (t : Token.t) =
  if cur st = t then advance st
  else error st "expected '%s' but found '%s'" (Token.to_string t)
      (Token.to_string (cur st))

let expect_ident st =
  match cur st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> error st "expected identifier but found '%s'" (Token.to_string t)

let is_upper_name s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

let base_ty st : Ast.ty option =
  match cur st with
  | Token.KW_INT ->
    advance st;
    Some Ast.T_int
  | Token.KW_FLOAT ->
    advance st;
    Some Ast.T_float
  | Token.KW_BOOLEAN ->
    advance st;
    Some Ast.T_bool
  | Token.KW_BIT ->
    advance st;
    Some Ast.T_bit
  | Token.KW_VOID ->
    advance st;
    Some Ast.T_void
  | Token.IDENT s ->
    (* Class and enum names; enum names may be lowercase (e.g. the
       paper's [bit]), so any identifier can denote a type here and
       statement parsing backtracks when it does not. *)
    advance st;
    Some (Ast.T_named s)
  | _ -> None

let rec array_suffix st ty =
  match cur st with
  | Token.LBRACKET when peek st 1 = Token.RBRACKET ->
    advance st;
    advance st;
    array_suffix st (Ast.T_array (ty, Ast.Mut))
  | Token.LVALUEBRACKET when peek st 1 = Token.RVALUEBRACKET ->
    advance st;
    advance st;
    array_suffix st (Ast.T_array (ty, Ast.Immut))
  | _ -> ty

let parse_ty st : Ast.ty =
  match base_ty st with
  | Some ty -> array_suffix st ty
  | None -> error st "expected a type but found '%s'" (Token.to_string (cur st))

(* Attempt [ty IDENT]: the start of a declaration. Restores the cursor
   and returns [None] when the tokens do not form one, so statements
   can fall back to expression parsing. *)
let try_decl_prefix st : (Ast.ty * string) option =
  let saved = st.pos in
  match base_ty st with
  | None -> None
  | Some ty -> (
    let ty = array_suffix st ty in
    match cur st with
    | Token.IDENT name when not (is_upper_name name) ->
      advance st;
      if cur st = Token.ASSIGN || cur st = Token.SEMI then Some (ty, name)
      else begin
        st.pos <- saved;
        None
      end
    | _ ->
      st.pos <- saved;
      None)

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let mk loc desc : Ast.expr = { desc; loc }

let rec parse_expr st : Ast.expr = parse_connect st

(* a => b => c, left-associative, lowest precedence. *)
and parse_connect st =
  let lhs = parse_cond st in
  let rec loop lhs =
    if cur st = Token.CONNECT then begin
      let loc = cur_loc st in
      advance st;
      let rhs = parse_cond st in
      loop (mk loc (Ast.Connect (lhs, rhs)))
    end
    else lhs
  in
  loop lhs

and parse_cond st =
  let c = parse_or st in
  if cur st = Token.QUESTION then begin
    let loc = cur_loc st in
    advance st;
    let a = parse_expr st in
    expect st Token.COLON;
    let b = parse_cond st in
    mk loc (Ast.Cond (c, a, b))
  end
  else c

and binop_level st next (table : (Token.t * Ast.binop) list) =
  let lhs = next st in
  let rec loop lhs =
    match List.assoc_opt (cur st) table with
    | Some op ->
      let loc = cur_loc st in
      advance st;
      let rhs = next st in
      loop (mk loc (Ast.Binop (op, lhs, rhs)))
    | None -> lhs
  in
  loop lhs

and parse_or st = binop_level st parse_and [ Token.BARBAR, Ast.Or ]
and parse_and st = binop_level st parse_bor [ Token.AMPAMP, Ast.And ]
and parse_bor st = binop_level st parse_bxor [ Token.BAR, Ast.Bor ]
and parse_bxor st = binop_level st parse_band [ Token.CARET, Ast.Bxor ]
and parse_band st = binop_level st parse_equality [ Token.AMP, Ast.Band ]

and parse_equality st =
  binop_level st parse_relational [ Token.EQ, Ast.Eq; Token.NEQ, Ast.Neq ]

and parse_relational st =
  binop_level st parse_shift
    [ Token.LT, Ast.Lt; Token.LEQ, Ast.Leq; Token.GT, Ast.Gt; Token.GEQ, Ast.Geq ]

and parse_shift st =
  binop_level st parse_additive [ Token.SHL, Ast.Shl; Token.SHR, Ast.Shr ]

and parse_additive st =
  binop_level st parse_multiplicative [ Token.PLUS, Ast.Add; Token.MINUS, Ast.Sub ]

and parse_multiplicative st =
  binop_level st parse_unary
    [ Token.STAR, Ast.Mul; Token.SLASH, Ast.Div; Token.PERCENT, Ast.Rem ]

and parse_unary st =
  let loc = cur_loc st in
  match cur st with
  | Token.MINUS ->
    advance st;
    mk loc (Ast.Unop (Ast.Neg, parse_unary st))
  | Token.BANG ->
    advance st;
    mk loc (Ast.Unop (Ast.Not, parse_unary st))
  | Token.TILDE ->
    advance st;
    mk loc (Ast.Unop (Ast.Bit_not, parse_unary st))
  | _ -> parse_postfix st

and parse_args st =
  expect st Token.LPAREN;
  if cur st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if cur st = Token.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    loop []
  end

and parse_postfix st =
  let e = parse_primary st in
  postfix_loop st e

and postfix_loop st (e : Ast.expr) =
  match cur st with
  | Token.DOT -> (
    let loc = cur_loc st in
    advance st;
    match cur st with
    | Token.LT ->
      (* [dest.<t>sink()] *)
      advance st;
      let ty = parse_ty st in
      expect st Token.GT;
      let m = expect_ident st in
      if m <> "sink" then error st "expected 'sink' after type argument";
      let args = parse_args st in
      if args <> [] then error st "sink() takes no arguments";
      postfix_loop st (mk loc (Ast.Sink (ty, e)))
    | Token.IDENT "length" when peek st 1 <> Token.LPAREN ->
      advance st;
      postfix_loop st (mk loc (Ast.Length e))
    | Token.IDENT m -> (
      advance st;
      if cur st = Token.LPAREN then begin
        let args = parse_args st in
        match m, args, e.desc with
        | "source", [ rate ], _ -> postfix_loop st (mk loc (Ast.Source (e, rate)))
        | _, _, Ast.Name s when is_upper_name s ->
          postfix_loop st (mk loc (Ast.Call (Ast.Qualified_call (s, m), args)))
        | _ -> postfix_loop st (mk loc (Ast.Call (Ast.Method_call (e, m), args)))
      end
      else
        match e.desc with
        | Ast.Name s -> postfix_loop st (mk loc (Ast.Qualified (s, m)))
        | _ -> error st "expected a call after '.%s'" m)
    | t -> error st "expected member name after '.' but found '%s'" (Token.to_string t))
  | Token.LBRACKET ->
    let loc = cur_loc st in
    advance st;
    let i = parse_expr st in
    expect st Token.RBRACKET;
    postfix_loop st (mk loc (Ast.Index (e, i)))
  | Token.AT | Token.ATAT -> (
    let is_map = cur st = Token.AT in
    let loc = cur_loc st in
    advance st;
    let m = expect_ident st in
    let args = parse_args st in
    let cls =
      match e.desc with
      | Ast.Name s -> Some s
      | _ -> error st "the receiver of '@' must be a class name"
    in
    if is_map then postfix_loop st (mk loc (Ast.Map (cls, m, args)))
    else postfix_loop st (mk loc (Ast.Reduce (cls, m, args))))
  | _ -> e

and parse_primary st =
  let loc = cur_loc st in
  match cur st with
  | Token.INT_LIT i ->
    advance st;
    mk loc (Ast.Int_lit i)
  | Token.FLOAT_LIT f ->
    advance st;
    mk loc (Ast.Float_lit f)
  | Token.BIT_LIT s ->
    advance st;
    mk loc (Ast.Bit_lit s)
  | Token.TRUE ->
    advance st;
    mk loc (Ast.Bool_lit true)
  | Token.FALSE ->
    advance st;
    mk loc (Ast.Bool_lit false)
  | Token.THIS ->
    advance st;
    mk loc Ast.This
  | Token.KW_BIT when peek st 1 = Token.DOT ->
    (* [bit.zero] / [bit.one]: the builtin enum used as a qualifier. *)
    advance st;
    advance st;
    let case = expect_ident st in
    mk loc (Ast.Qualified ("bit", case))
  | Token.IDENT s -> (
    advance st;
    if cur st = Token.LPAREN then
      let args = parse_args st in
      mk loc (Ast.Call (Ast.Unresolved_call s, args))
    else mk loc (Ast.Name s))
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.LBRACKET ->
    (* relocation brackets around a task expression *)
    advance st;
    let e = parse_expr st in
    expect st Token.RBRACKET;
    mk loc (Ast.Relocate e)
  | Token.TASK -> (
    advance st;
    let first =
      match cur st with
      | Token.IDENT s ->
        advance st;
        s
      | t -> error st "expected method name after 'task' but found '%s'" (Token.to_string t)
    in
    if cur st = Token.DOT then begin
      advance st;
      let m = expect_ident st in
      mk loc (Ast.Task (Some first, m))
    end
    else mk loc (Ast.Task (None, first)))
  | Token.NEW when
      (match peek st 1, peek st 2 with
      | Token.IDENT s, Token.LPAREN -> is_upper_name s
      | _ -> false) ->
    advance st;
    let cls =
      match cur st with
      | Token.IDENT s ->
        advance st;
        s
      | _ -> assert false
    in
    let args = parse_args st in
    mk loc (Ast.New_instance (cls, args))
  | Token.NEW -> (
    advance st;
    let base =
      match base_ty st with
      | Some t -> t
      | None -> error st "expected element type after 'new'"
    in
    match cur st with
    | Token.LBRACKET ->
      advance st;
      let n = parse_expr st in
      expect st Token.RBRACKET;
      mk loc (Ast.New_array (base, n))
    | Token.LVALUEBRACKET ->
      advance st;
      expect st Token.RVALUEBRACKET;
      let args = parse_args st in
      (match args with
      | [ e ] -> mk loc (Ast.New_value_array (base, e))
      | _ -> error st "new t[[]](e) takes exactly one argument")
    | t -> error st "expected '[' or '[[]]' after 'new %s' but found '%s'"
             (Ast.ty_to_string base) (Token.to_string t))
  | t -> error st "expected an expression but found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let lvalue_of_expr st (e : Ast.expr) : Ast.lvalue =
  match e.desc with
  | Ast.Name s -> Ast.Lv_name s
  | Ast.Index (a, i) -> Ast.Lv_index (a, i)
  | _ -> error st "this expression is not assignable"

let rec parse_stmt st : Ast.stmt =
  let sloc = cur_loc st in
  let s d : Ast.stmt = { sdesc = d; sloc } in
  match cur st with
  | Token.LBRACE -> s (Ast.Block (parse_block st))
  | Token.RETURN ->
    advance st;
    if cur st = Token.SEMI then begin
      advance st;
      s (Ast.Return None)
    end
    else begin
      let e = parse_expr st in
      expect st Token.SEMI;
      s (Ast.Return (Some e))
    end
  | Token.IF ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    let then_ = parse_block_or_stmt st in
    let else_ =
      if cur st = Token.ELSE then begin
        advance st;
        Some (parse_block_or_stmt st)
      end
      else None
    in
    s (Ast.If (c, then_, else_))
  | Token.WHILE ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    s (Ast.While (c, parse_block_or_stmt st))
  | Token.FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if cur st = Token.SEMI then None else Some (parse_simple_stmt st)
    in
    expect st Token.SEMI;
    let cond = if cur st = Token.SEMI then None else Some (parse_expr st) in
    expect st Token.SEMI;
    let update =
      if cur st = Token.RPAREN then None else Some (parse_simple_stmt st)
    in
    expect st Token.RPAREN;
    s (Ast.For (init, cond, update, parse_block_or_stmt st))
  | Token.VAR ->
    advance st;
    let name = expect_ident st in
    expect st Token.ASSIGN;
    let e = parse_expr st in
    expect st Token.SEMI;
    s (Ast.Var_decl (None, name, Some e))
  | _ -> (
    match try_decl_prefix st with
    | Some (ty, name) ->
      if cur st = Token.SEMI then begin
        advance st;
        s (Ast.Var_decl (Some ty, name, None))
      end
      else begin
        expect st Token.ASSIGN;
        let e = parse_expr st in
        expect st Token.SEMI;
        s (Ast.Var_decl (Some ty, name, Some e))
      end
    | None ->
      let stmt = parse_simple_stmt st in
      expect st Token.SEMI;
      stmt)

(* Assignment / increment / expression statement, without the
   trailing semicolon (shared with for-loop headers). *)
and parse_simple_stmt st : Ast.stmt =
  let sloc = cur_loc st in
  let s d : Ast.stmt = { sdesc = d; sloc } in
  match cur st with
  | Token.VAR ->
    advance st;
    let name = expect_ident st in
    expect st Token.ASSIGN;
    s (Ast.Var_decl (None, name, Some (parse_expr st)))
  | _ -> (
    match try_decl_prefix st with
    | Some (ty, name) ->
      expect st Token.ASSIGN;
      s (Ast.Var_decl (Some ty, name, Some (parse_expr st)))
    | None -> (
      let e = parse_expr st in
      match cur st with
      | Token.ASSIGN ->
        advance st;
        s (Ast.Assign (lvalue_of_expr st e, parse_expr st))
      | Token.PLUSASSIGN ->
        advance st;
        s (Ast.Op_assign (Ast.Add, lvalue_of_expr st e, parse_expr st))
      | Token.MINUSASSIGN ->
        advance st;
        s (Ast.Op_assign (Ast.Sub, lvalue_of_expr st e, parse_expr st))
      | Token.STARASSIGN ->
        advance st;
        s (Ast.Op_assign (Ast.Mul, lvalue_of_expr st e, parse_expr st))
      | Token.PLUSPLUS ->
        advance st;
        s (Ast.Incr (lvalue_of_expr st e))
      | Token.MINUSMINUS ->
        advance st;
        s (Ast.Decr (lvalue_of_expr st e))
      | _ -> s (Ast.Expr_stmt e)))

and parse_block st : Ast.block =
  expect st Token.LBRACE;
  let rec loop acc =
    if cur st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_block_or_stmt st : Ast.block =
  if cur st = Token.LBRACE then parse_block st else [ parse_stmt st ]

(* ------------------------------------------------------------------ *)
(* Declarations                                                       *)
(* ------------------------------------------------------------------ *)

type modifiers = {
  mod_static : bool;
  mod_locality : Ast.locality;
}

let parse_modifiers st =
  let rec loop acc =
    match cur st with
    | Token.PUBLIC | Token.FINAL ->
      advance st;
      loop acc
    | Token.STATIC ->
      advance st;
      loop { acc with mod_static = true }
    | Token.LOCAL ->
      advance st;
      loop { acc with mod_locality = Ast.L_local }
    | Token.GLOBAL ->
      advance st;
      loop { acc with mod_locality = Ast.L_global }
    | _ -> acc
  in
  loop { mod_static = false; mod_locality = Ast.L_default }

let parse_params st : (string * Ast.ty) list =
  expect st Token.LPAREN;
  if cur st = Token.RPAREN then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let ty = parse_ty st in
      let name = expect_ident st in
      let acc = (name, ty) :: acc in
      if cur st = Token.COMMA then begin
        advance st;
        loop acc
      end
      else begin
        expect st Token.RPAREN;
        List.rev acc
      end
    in
    loop []
  end

(* [public bit ~ this { ... }]: a value enum's unary operator method. *)
let parse_operator_method st mods ret loc : Ast.method_decl =
  expect st Token.TILDE;
  expect st Token.THIS;
  let body = parse_block st in
  {
    Ast.m_name = "~";
    m_static = mods.mod_static;
    m_locality = mods.mod_locality;
    m_ret = ret;
    m_params = [];
    m_body = body;
    m_loc = loc;
  }

let parse_enum_decl st : Ast.enum_decl =
  let e_loc = cur_loc st in
  expect st Token.VALUE;
  expect st Token.ENUM;
  let e_name =
    match cur st with
    | Token.IDENT s ->
      advance st;
      s
    | Token.KW_BIT ->
      (* [value enum bit] as in Figure 1: declares the builtin. *)
      advance st;
      "bit"
    | t -> error st "expected enum name but found '%s'" (Token.to_string t)
  in
  expect st Token.LBRACE;
  let rec cases acc =
    let c = expect_ident st in
    if cur st = Token.COMMA then begin
      advance st;
      cases (c :: acc)
    end
    else begin
      expect st Token.SEMI;
      List.rev (c :: acc)
    end
  in
  let e_cases = cases [] in
  let rec methods acc =
    if cur st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      let m_loc = cur_loc st in
      let mods = parse_modifiers st in
      let ret = parse_ty st in
      if cur st = Token.TILDE then
        methods (parse_operator_method st mods ret m_loc :: acc)
      else begin
        let name = expect_ident st in
        let params = parse_params st in
        let body = parse_block st in
        methods
          ({
             Ast.m_name = name;
             m_static = mods.mod_static;
             m_locality = mods.mod_locality;
             m_ret = ret;
             m_params = params;
             m_body = body;
             m_loc;
           }
          :: acc)
      end
    end
  in
  { e_name; e_cases; e_methods = methods []; e_loc }

let parse_class_decl st : Ast.class_decl =
  let k_loc = cur_loc st in
  let k_is_value =
    if cur st = Token.VALUE then begin
      advance st;
      true
    end
    else false
  in
  expect st Token.CLASS;
  let k_name = expect_ident st in
  expect st Token.LBRACE;
  let fields = ref [] in
  let ctors = ref [] in
  let methods = ref [] in
  let rec members () =
    if cur st = Token.RBRACE then advance st
    else begin
      let m_loc = cur_loc st in
      let mods = parse_modifiers st in
      (* Constructor: the class name followed directly by '('. *)
      (match cur st with
      | Token.IDENT s when s = k_name && peek st 1 = Token.LPAREN ->
        advance st;
        let params = parse_params st in
        let body = parse_block st in
        ctors :=
          {
            Ast.c_locality = mods.mod_locality;
            c_params = params;
            c_body = body;
            c_loc = m_loc;
          }
          :: !ctors
      | _ -> (
        let ty = parse_ty st in
        let name = expect_ident st in
        match cur st with
        | Token.LPAREN ->
          let params = parse_params st in
          let body = parse_block st in
          methods :=
            {
              Ast.m_name = name;
              m_static = mods.mod_static;
              m_locality = mods.mod_locality;
              m_ret = ty;
              m_params = params;
              m_body = body;
              m_loc;
            }
            :: !methods
        | Token.ASSIGN ->
          advance st;
          let init = parse_expr st in
          expect st Token.SEMI;
          fields :=
            { Ast.f_name = name; f_ty = ty; f_init = Some init; f_loc = m_loc }
            :: !fields
        | Token.SEMI ->
          advance st;
          fields :=
            { Ast.f_name = name; f_ty = ty; f_init = None; f_loc = m_loc }
            :: !fields
        | t ->
          error st "expected '(', '=' or ';' after member name but found '%s'"
            (Token.to_string t)));
      members ()
    end
  in
  members ();
  {
    k_name;
    k_is_value;
    k_fields = List.rev !fields;
    k_ctors = List.rev !ctors;
    k_methods = List.rev !methods;
    k_loc;
  }

let parse_program st : Ast.program =
  let rec loop acc =
    match cur st with
    | Token.EOF -> { Ast.decls = List.rev acc }
    | Token.PUBLIC ->
      advance st;
      loop acc
    | Token.VALUE when peek st 1 = Token.ENUM ->
      loop (Ast.D_enum (parse_enum_decl st) :: acc)
    | Token.VALUE | Token.CLASS ->
      loop (Ast.D_class (parse_class_decl st) :: acc)
    | t -> error st "expected a declaration but found '%s'" (Token.to_string t)
  in
  loop []

let parse ~file src =
  let tokens = Array.of_list (Lexer.tokenize ~file src) in
  parse_program { tokens; pos = 0 }

let parse_expr_string src =
  let tokens = Array.of_list (Lexer.tokenize ~file:"<expr>" src) in
  let st = { tokens; pos = 0 } in
  let e = parse_expr st in
  expect st Token.EOF;
  e
