lib/lime_syntax/parser.mli: Ast
