lib/lime_syntax/token.ml: Format
