lib/lime_syntax/lexer.mli: Support Token
