lib/lime_syntax/ast.ml: Format Srcloc Support
