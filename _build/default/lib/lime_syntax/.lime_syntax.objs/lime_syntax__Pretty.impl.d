lib/lime_syntax/pretty.ml: Ast List Option Printf Srcloc String Support
