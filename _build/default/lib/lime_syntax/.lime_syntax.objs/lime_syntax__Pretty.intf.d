lib/lime_syntax/pretty.mli: Ast
