lib/lime_syntax/token.mli: Format
