lib/lime_syntax/parser.ml: Array Ast Diag Lexer List String Support Token
