lib/lime_syntax/lexer.ml: Diag List Srcloc String Support Token
