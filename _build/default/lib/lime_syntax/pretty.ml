open Support

(* Printing uses full parenthesization inside binary expressions, so
   no precedence table is needed and reparsing is trivially faithful. *)

let unop_text (u : Ast.unop) =
  match u with Ast.Neg -> "-" | Ast.Not -> "!" | Ast.Bit_not -> "~"

let binop_text (b : Ast.binop) =
  match b with
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Rem -> "%" | Ast.Shl -> "<<" | Ast.Shr -> ">>"
  | Ast.Band -> "&" | Ast.Bor -> "|" | Ast.Bxor -> "^"
  | Ast.And -> "&&" | Ast.Or -> "||"
  | Ast.Eq -> "==" | Ast.Neq -> "!="
  | Ast.Lt -> "<" | Ast.Leq -> "<=" | Ast.Gt -> ">" | Ast.Geq -> ">="

let float_text f =
  (* Always include a decimal point or exponent so the literal reparses
     as a float. *)
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
  else s ^ ".0"

let rec expr_text (e : Ast.expr) : string =
  match e.desc with
  | Ast.Int_lit i -> string_of_int i
  | Ast.Float_lit f -> float_text f
  | Ast.Bool_lit b -> string_of_bool b
  | Ast.Bit_lit s -> s ^ "b"
  | Ast.Name s -> s
  | Ast.Qualified (q, m) -> q ^ "." ^ m
  | Ast.This -> "this"
  | Ast.Unop (u, a) -> Printf.sprintf "%s%s" (unop_text u) (atom a)
  | Ast.Binop (b, x, y) ->
    Printf.sprintf "(%s %s %s)" (expr_text x) (binop_text b) (expr_text y)
  | Ast.Cond (c, a, b) ->
    Printf.sprintf "(%s ? %s : %s)" (expr_text c) (expr_text a) (expr_text b)
  | Ast.Index (a, i) -> Printf.sprintf "%s[%s]" (atom a) (expr_text i)
  | Ast.Length a -> Printf.sprintf "%s.length" (atom a)
  | Ast.Call (target, args) ->
    let args = String.concat ", " (List.map expr_text args) in
    (match target with
    | Ast.Unresolved_call m -> Printf.sprintf "%s(%s)" m args
    | Ast.Qualified_call (c, m) -> Printf.sprintf "%s.%s(%s)" c m args
    | Ast.Method_call (recv, m) ->
      Printf.sprintf "%s.%s(%s)" (atom recv) m args)
  | Ast.New_array (ty, n) ->
    Printf.sprintf "new %s[%s]" (Ast.ty_to_string ty) (expr_text n)
  | Ast.New_value_array (ty, src) ->
    Printf.sprintf "new %s[[]](%s)" (Ast.ty_to_string ty) (expr_text src)
  | Ast.New_instance (cls, args) ->
    Printf.sprintf "new %s(%s)" cls (String.concat ", " (List.map expr_text args))
  | Ast.Map (cls, m, args) ->
    Printf.sprintf "%s @ %s(%s)"
      (Option.value cls ~default:"")
      m
      (String.concat ", " (List.map expr_text args))
  | Ast.Reduce (cls, m, args) ->
    Printf.sprintf "%s @@ %s(%s)"
      (Option.value cls ~default:"")
      m
      (String.concat ", " (List.map expr_text args))
  | Ast.Task (None, m) -> Printf.sprintf "(task %s)" m
  | Ast.Task (Some r, m) -> Printf.sprintf "(task %s.%s)" r m
  | Ast.Relocate inner -> Printf.sprintf "[ %s ]" (expr_text inner)
  | Ast.Connect (a, b) -> Printf.sprintf "%s => %s" (expr_text a) (expr_text b)
  | Ast.Source (arr, rate) ->
    Printf.sprintf "%s.source(%s)" (atom arr) (expr_text rate)
  | Ast.Sink (ty, dest) ->
    Printf.sprintf "%s.<%s>sink()" (atom dest) (Ast.ty_to_string ty)

(* Receivers and indexing bases need parentheses unless atomic. *)
and atom (e : Ast.expr) : string =
  match e.desc with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Bit_lit _
  | Ast.Name _ | Ast.Qualified _ | Ast.This | Ast.Call _ | Ast.Index _
  | Ast.Length _ | Ast.Source _ | Ast.Sink _ ->
    expr_text e
  | _ -> "(" ^ expr_text e ^ ")"

let expr_to_string = expr_text

let lvalue_text (lv : Ast.lvalue) =
  match lv with
  | Ast.Lv_name s -> s
  | Ast.Lv_index (a, i) -> Printf.sprintf "%s[%s]" (atom a) (expr_text i)

let rec stmt_text indent (s : Ast.stmt) : string =
  let pad = String.make indent ' ' in
  match s.sdesc with
  | Ast.Var_decl (Some ty, name, Some e) ->
    Printf.sprintf "%s%s %s = %s;\n" pad (Ast.ty_to_string ty) name (expr_text e)
  | Ast.Var_decl (Some ty, name, None) ->
    Printf.sprintf "%s%s %s;\n" pad (Ast.ty_to_string ty) name
  | Ast.Var_decl (None, name, Some e) ->
    Printf.sprintf "%svar %s = %s;\n" pad name (expr_text e)
  | Ast.Var_decl (None, name, None) ->
    Printf.sprintf "%svar %s;\n" pad name (* unreachable from the parser *)
  | Ast.Assign (lv, e) ->
    Printf.sprintf "%s%s = %s;\n" pad (lvalue_text lv) (expr_text e)
  | Ast.Op_assign (op, lv, e) ->
    Printf.sprintf "%s%s %s= %s;\n" pad (lvalue_text lv) (binop_text op)
      (expr_text e)
  | Ast.Incr lv -> Printf.sprintf "%s%s++;\n" pad (lvalue_text lv)
  | Ast.Decr lv -> Printf.sprintf "%s%s--;\n" pad (lvalue_text lv)
  | Ast.If (c, then_, else_) ->
    let else_text =
      match else_ with
      | None | Some [] -> ""
      | Some b -> Printf.sprintf "%selse {\n%s%s}\n" pad (block_text (indent + 2) b) pad
    in
    Printf.sprintf "%sif (%s) {\n%s%s}\n%s" pad (expr_text c)
      (block_text (indent + 2) then_)
      pad else_text
  | Ast.While (c, body) ->
    Printf.sprintf "%swhile (%s) {\n%s%s}\n" pad (expr_text c)
      (block_text (indent + 2) body)
      pad
  | Ast.For (init, cond, update, body) ->
    let simple s =
      (* statement text without its newline/indent/semicolon *)
      let text = stmt_text 0 s in
      let text = String.trim text in
      if String.length text > 0 && text.[String.length text - 1] = ';' then
        String.sub text 0 (String.length text - 1)
      else text
    in
    Printf.sprintf "%sfor (%s; %s; %s) {\n%s%s}\n" pad
      (match init with Some s -> simple s | None -> "")
      (match cond with Some e -> expr_text e | None -> "")
      (match update with Some s -> simple s | None -> "")
      (block_text (indent + 2) body)
      pad
  | Ast.Return None -> pad ^ "return;\n"
  | Ast.Return (Some e) -> Printf.sprintf "%sreturn %s;\n" pad (expr_text e)
  | Ast.Expr_stmt e -> Printf.sprintf "%s%s;\n" pad (expr_text e)
  | Ast.Block b ->
    Printf.sprintf "%s{\n%s%s}\n" pad (block_text (indent + 2) b) pad

and block_text indent (b : Ast.block) =
  String.concat "" (List.map (stmt_text indent) b)

let stmt_to_string ?(indent = 0) s = stmt_text indent s

let locality_text (l : Ast.locality) =
  match l with
  | Ast.L_local -> "local "
  | Ast.L_global -> "global "
  | Ast.L_default -> ""

let params_text params =
  String.concat ", "
    (List.map (fun (n, ty) -> Ast.ty_to_string ty ^ " " ^ n) params)

let method_text indent (m : Ast.method_decl) =
  let pad = String.make indent ' ' in
  if m.m_name = "~" then
    Printf.sprintf "%spublic %s ~ this {\n%s%s}\n" pad
      (Ast.ty_to_string m.m_ret)
      (block_text (indent + 2) m.m_body)
      pad
  else
    Printf.sprintf "%s%s%s%s %s(%s) {\n%s%s}\n" pad
      (locality_text m.m_locality)
      (if m.m_static then "static " else "")
      (Ast.ty_to_string m.m_ret)
      m.m_name (params_text m.m_params)
      (block_text (indent + 2) m.m_body)
      pad

let method_to_string ?(indent = 0) m = method_text indent m

let decl_text (d : Ast.decl) =
  match d with
  | Ast.D_enum e ->
    Printf.sprintf "public value enum %s {\n  %s;\n%s}\n" e.e_name
      (String.concat ", " e.e_cases)
      (String.concat "" (List.map (method_text 2) e.e_methods))
  | Ast.D_class k ->
    let fields =
      String.concat ""
        (List.map
           (fun (f : Ast.field_decl) ->
             match f.f_init with
             | Some e ->
               Printf.sprintf "  %s %s = %s;\n" (Ast.ty_to_string f.f_ty)
                 f.f_name (expr_text e)
             | None ->
               Printf.sprintf "  %s %s;\n" (Ast.ty_to_string f.f_ty) f.f_name)
           k.k_fields)
    in
    let ctors =
      String.concat ""
        (List.map
           (fun (c : Ast.ctor_decl) ->
             Printf.sprintf "  %s%s(%s) {\n%s  }\n"
               (locality_text c.c_locality)
               k.k_name (params_text c.c_params)
               (block_text 4 c.c_body))
           k.k_ctors)
    in
    Printf.sprintf "%sclass %s {\n%s%s%s}\n"
      (if k.k_is_value then "value " else "")
      k.k_name fields ctors
      (String.concat "" (List.map (method_text 2) k.k_methods))

let program_to_string (p : Ast.program) =
  String.concat "\n" (List.map decl_text p.decls)

(* --- location stripping (for structural comparison) ------------------ *)

let rec strip_expr (e : Ast.expr) : Ast.expr =
  let desc =
    match e.desc with
    | ( Ast.Int_lit _ | Ast.Float_lit _ | Ast.Bool_lit _ | Ast.Bit_lit _
      | Ast.Name _ | Ast.Qualified _ | Ast.This ) as d ->
      d
    | Ast.Unop (u, a) -> Ast.Unop (u, strip_expr a)
    | Ast.Binop (b, x, y) -> Ast.Binop (b, strip_expr x, strip_expr y)
    | Ast.Cond (c, a, b) -> Ast.Cond (strip_expr c, strip_expr a, strip_expr b)
    | Ast.Index (a, i) -> Ast.Index (strip_expr a, strip_expr i)
    | Ast.Length a -> Ast.Length (strip_expr a)
    | Ast.Call (t, args) ->
      let t =
        match t with
        | Ast.Method_call (recv, m) -> Ast.Method_call (strip_expr recv, m)
        | (Ast.Unresolved_call _ | Ast.Qualified_call _) as t -> t
      in
      Ast.Call (t, List.map strip_expr args)
    | Ast.New_array (ty, n) -> Ast.New_array (ty, strip_expr n)
    | Ast.New_value_array (ty, src) -> Ast.New_value_array (ty, strip_expr src)
    | Ast.New_instance (cls, args) ->
      Ast.New_instance (cls, List.map strip_expr args)
    | Ast.Map (c, m, args) -> Ast.Map (c, m, List.map strip_expr args)
    | Ast.Reduce (c, m, args) -> Ast.Reduce (c, m, List.map strip_expr args)
    | Ast.Task _ as d -> d
    | Ast.Relocate inner -> Ast.Relocate (strip_expr inner)
    | Ast.Connect (a, b) -> Ast.Connect (strip_expr a, strip_expr b)
    | Ast.Source (arr, rate) -> Ast.Source (strip_expr arr, strip_expr rate)
    | Ast.Sink (ty, dest) -> Ast.Sink (ty, strip_expr dest)
  in
  { desc; loc = Srcloc.dummy }

let strip_lvalue (lv : Ast.lvalue) =
  match lv with
  | Ast.Lv_name _ as l -> l
  | Ast.Lv_index (a, i) -> Ast.Lv_index (strip_expr a, strip_expr i)

let rec strip_stmt (s : Ast.stmt) : Ast.stmt =
  let sdesc =
    match s.sdesc with
    | Ast.Var_decl (ty, n, e) -> Ast.Var_decl (ty, n, Option.map strip_expr e)
    | Ast.Assign (lv, e) -> Ast.Assign (strip_lvalue lv, strip_expr e)
    | Ast.Op_assign (op, lv, e) ->
      Ast.Op_assign (op, strip_lvalue lv, strip_expr e)
    | Ast.Incr lv -> Ast.Incr (strip_lvalue lv)
    | Ast.Decr lv -> Ast.Decr (strip_lvalue lv)
    | Ast.If (c, a, b) ->
      Ast.If
        ( strip_expr c,
          List.map strip_stmt a,
          Option.map (List.map strip_stmt) b )
    | Ast.While (c, b) -> Ast.While (strip_expr c, List.map strip_stmt b)
    | Ast.For (i, c, u, b) ->
      Ast.For
        ( Option.map strip_stmt i,
          Option.map strip_expr c,
          Option.map strip_stmt u,
          List.map strip_stmt b )
    | Ast.Return e -> Ast.Return (Option.map strip_expr e)
    | Ast.Expr_stmt e -> Ast.Expr_stmt (strip_expr e)
    | Ast.Block b -> Ast.Block (List.map strip_stmt b)
  in
  { sdesc; sloc = Srcloc.dummy }

let strip_method (m : Ast.method_decl) =
  { m with m_body = List.map strip_stmt m.m_body; m_loc = Srcloc.dummy }

let strip_locations (p : Ast.program) : Ast.program =
  {
    Ast.decls =
      List.map
        (function
          | Ast.D_enum e ->
            Ast.D_enum
              {
                e with
                e_methods = List.map strip_method e.e_methods;
                e_loc = Srcloc.dummy;
              }
          | Ast.D_class k ->
            Ast.D_class
              {
                k with
                k_fields =
                  List.map
                    (fun (f : Ast.field_decl) ->
                      {
                        f with
                        f_init = Option.map strip_expr f.f_init;
                        f_loc = Srcloc.dummy;
                      })
                    k.k_fields;
                k_ctors =
                  List.map
                    (fun (c : Ast.ctor_decl) ->
                      {
                        c with
                        c_body = List.map strip_stmt c.c_body;
                        c_loc = Srcloc.dummy;
                      })
                    k.k_ctors;
                k_methods = List.map strip_method k.k_methods;
                k_loc = Srcloc.dummy;
              })
        p.decls;
  }
