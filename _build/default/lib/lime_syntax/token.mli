(** Lexical tokens of the Lime subset. *)

type t =
  (* literals *)
  | INT_LIT of int
  | FLOAT_LIT of float
  | BIT_LIT of string  (** body of a bit literal, e.g. "100" for [100b] *)
  | TRUE
  | FALSE
  (* identifiers and keywords *)
  | IDENT of string
  | PUBLIC
  | STATIC
  | LOCAL
  | GLOBAL
  | VALUE
  | ENUM
  | CLASS
  | VAR
  | NEW
  | RETURN
  | IF
  | ELSE
  | FOR
  | WHILE
  | TASK
  | THIS
  | KW_INT
  | KW_FLOAT
  | KW_BOOLEAN
  | KW_BIT
  | KW_VOID
  | FINAL
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LVALUEBRACKET  (** [[ *)
  | RVALUEBRACKET  (** ]] *)
  | SEMI
  | COMMA
  | DOT
  | QUESTION
  | COLON
  (* operators *)
  | ASSIGN  (** = *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | TILDE
  | BANG
  | AMP
  | BAR
  | CARET
  | AMPAMP
  | BARBAR
  | EQ  (** == *)
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | SHL
  | SHR
  | AT  (** @, the map operator *)
  | ATAT  (** @@, the reduce operator *)
  | CONNECT  (** => *)
  | PLUSPLUS
  | MINUSMINUS
  | PLUSASSIGN
  | MINUSASSIGN
  | STARASSIGN
  | EOF

val pp : Format.formatter -> t -> unit
val to_string : t -> string
