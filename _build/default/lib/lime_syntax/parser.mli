(** Recursive-descent parser for the Lime subset.

    Dialect rules (documented deviations from full Lime are listed in
    DESIGN.md section 5):
    - class names start with an uppercase letter; variables and method
      names start lowercase (the Java convention), which disambiguates
      [C.m(args)] static calls from [x.m(args)] instance calls;
    - [bit] is the builtin value enum; a user declaration
      [value enum bit { zero, one; ... }] (as in the paper's Figure 1)
      is accepted and must agree with the builtin;
    - reduce is spelled [C @@ m(e)] (the paper leaves reduce syntax
      unshown). *)

val parse : file:string -> string -> Ast.program
(** Parses a compilation unit.
    @raise Support.Diag.Compile_error on syntax errors. *)

val parse_expr_string : string -> Ast.expr
(** Parses a single expression; used by tests. *)
