open Support

type spanned = { token : Token.t; loc : Srcloc.t }

type state = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the beginning of the current line *)
}

let keyword_table : (string * Token.t) list =
  [
    "true", TRUE;
    "false", FALSE;
    "public", PUBLIC;
    "static", STATIC;
    "local", LOCAL;
    "global", GLOBAL;
    "value", VALUE;
    "enum", ENUM;
    "class", CLASS;
    "var", VAR;
    "new", NEW;
    "return", RETURN;
    "if", IF;
    "else", ELSE;
    "for", FOR;
    "while", WHILE;
    "task", TASK;
    "this", THIS;
    "int", KW_INT;
    "float", KW_FLOAT;
    "boolean", KW_BOOLEAN;
    "bit", KW_BIT;
    "void", KW_VOID;
    "final", FINAL;
  ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let peek st offset =
  let i = st.pos + offset in
  if i < String.length st.src then Some st.src.[i] else None

let cur st = peek st 0

let advance st =
  (match cur st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let loc_here st start =
  Srcloc.make ~file:st.file ~line:st.line ~col:(start - st.bol + 1) ~start
    ~stop:st.pos

let error st start fmt =
  Diag.error ~loc:(loc_here st start) ~phase:"lex" fmt

let rec skip_trivia st =
  match cur st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '/' -> (
    match peek st 1 with
    | Some '/' ->
      while cur st <> None && cur st <> Some '\n' do
        advance st
      done;
      skip_trivia st
    | Some '*' ->
      let start = st.pos in
      advance st;
      advance st;
      let rec close () =
        match cur st, peek st 1 with
        | Some '*', Some '/' ->
          advance st;
          advance st
        | Some _, _ ->
          advance st;
          close ()
        | None, _ -> error st start "unterminated block comment"
      in
      close ();
      skip_trivia st
    | Some _ | None -> ())
  | Some _ | None -> ()

(* A run of digits followed by [b] is a bit literal when every digit is
   binary; [100b] is bit[2]=1, bit[0]=0. Otherwise digit runs lex as
   int or float literals (with optional fraction, exponent, and an
   ignored Java-style [f]/[d] suffix). *)
let lex_number st =
  let start = st.pos in
  while (match cur st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let digits = String.sub st.src start (st.pos - start) in
  match cur st with
  | Some 'b' when String.for_all (fun c -> c = '0' || c = '1') digits ->
    advance st;
    Token.BIT_LIT digits
  | Some 'b' -> error st start "bit literal %sb contains non-binary digits" digits
  | Some ('.' | 'e' | 'E' | 'f' | 'F' | 'd' | 'D') ->
    let is_float = ref false in
    (if cur st = Some '.' then begin
       is_float := true;
       advance st;
       while (match cur st with Some c -> is_digit c | None -> false) do
         advance st
       done
     end);
    (match cur st with
    | Some ('e' | 'E') ->
      is_float := true;
      advance st;
      (match cur st with
      | Some ('+' | '-') -> advance st
      | Some _ | None -> ());
      while (match cur st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | Some _ | None -> ());
    let text = String.sub st.src start (st.pos - start) in
    (match cur st with
    | Some ('f' | 'F' | 'd' | 'D') ->
      is_float := true;
      advance st
    | Some _ | None -> ());
    if !is_float then
      Token.FLOAT_LIT (float_of_string text)
    else
      Token.INT_LIT (int_of_string text)
  | Some _ | None -> Token.INT_LIT (int_of_string digits)

let lex_ident st =
  let start = st.pos in
  while (match cur st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match List.assoc_opt text keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT text

let two st (second : char) (yes : Token.t) (no : Token.t) =
  if peek st 1 = Some second then begin
    advance st;
    advance st;
    yes
  end
  else begin
    advance st;
    no
  end

let next_token st : Token.t =
  match cur st with
  | None -> EOF
  | Some c when is_digit c -> lex_number st
  | Some c when is_ident_start c -> lex_ident st
  | Some '(' ->
    advance st;
    LPAREN
  | Some ')' ->
    advance st;
    RPAREN
  | Some '{' ->
    advance st;
    LBRACE
  | Some '}' ->
    advance st;
    RBRACE
  | Some '[' -> two st '[' LVALUEBRACKET LBRACKET
  | Some ']' -> two st ']' RVALUEBRACKET RBRACKET
  | Some ';' ->
    advance st;
    SEMI
  | Some ',' ->
    advance st;
    COMMA
  | Some '.' ->
    advance st;
    DOT
  | Some '?' ->
    advance st;
    QUESTION
  | Some ':' ->
    advance st;
    COLON
  | Some '~' ->
    advance st;
    TILDE
  | Some '^' ->
    advance st;
    CARET
  | Some '%' ->
    advance st;
    PERCENT
  | Some '*' -> two st '=' STARASSIGN STAR
  | Some '/' ->
    advance st;
    SLASH
  | Some '+' -> (
    match peek st 1 with
    | Some '+' ->
      advance st;
      advance st;
      PLUSPLUS
    | Some '=' ->
      advance st;
      advance st;
      PLUSASSIGN
    | Some _ | None ->
      advance st;
      PLUS)
  | Some '-' -> (
    match peek st 1 with
    | Some '-' ->
      advance st;
      advance st;
      MINUSMINUS
    | Some '=' ->
      advance st;
      advance st;
      MINUSASSIGN
    | Some _ | None ->
      advance st;
      MINUS)
  | Some '&' -> two st '&' AMPAMP AMP
  | Some '|' -> two st '|' BARBAR BAR
  | Some '!' -> two st '=' NEQ BANG
  | Some '<' -> (
    match peek st 1 with
    | Some '=' ->
      advance st;
      advance st;
      LEQ
    | Some '<' ->
      advance st;
      advance st;
      SHL
    | Some _ | None ->
      advance st;
      LT)
  | Some '>' -> (
    match peek st 1 with
    | Some '=' ->
      advance st;
      advance st;
      GEQ
    | Some '>' ->
      advance st;
      advance st;
      SHR
    | Some _ | None ->
      advance st;
      GT)
  | Some '=' -> (
    match peek st 1 with
    | Some '=' ->
      advance st;
      advance st;
      EQ
    | Some '>' ->
      advance st;
      advance st;
      CONNECT
    | Some _ | None ->
      advance st;
      ASSIGN)
  | Some '@' -> two st '@' ATAT AT
  | Some c -> error st st.pos "unexpected character %C" c

let tokenize ~file src =
  let st = { file; src; pos = 0; line = 1; bol = 0 } in
  let rec loop acc =
    skip_trivia st;
    let start = st.pos in
    let line = st.line in
    let col = start - st.bol + 1 in
    let token = next_token st in
    let loc = Srcloc.make ~file ~line ~col ~start ~stop:st.pos in
    let acc = { token; loc } :: acc in
    match token with Token.EOF -> List.rev acc | _ -> loop acc
  in
  loop []
