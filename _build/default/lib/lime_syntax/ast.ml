(* Abstract syntax of the Lime subset (paper section 2).

   The subset covers everything Figure 1 exercises plus the features
   the backends need: value enums with operator methods, classes with
   static and instance methods, value arrays [[]], bit literals, the
   map (@) and reduce (@@) operators, task-graph construction
   (source / task / sink / =>), relocation brackets, and
   start()/finish(). *)

open Support

type mutability =
  | Mut  (** ordinary array type [t\[\]] *)
  | Immut  (** value array type [t\[\[\]\]] *)

type ty =
  | T_int
  | T_float
  | T_bool
  | T_bit
  | T_void
  | T_named of string  (** a value enum or class name *)
  | T_array of ty * mutability

type unop =
  | Neg  (** arithmetic negation *)
  | Not  (** boolean ! *)
  | Bit_not  (** [~]; on a value enum this resolves to its [~] method *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | And  (** && , short-circuit *)
  | Or  (** || , short-circuit *)
  | Eq
  | Neq
  | Lt
  | Leq
  | Gt
  | Geq

type expr = { desc : expr_desc; loc : Srcloc.t }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Bit_lit of string  (** literal body, e.g. "100" *)
  | Name of string  (** variable, enum case, or class (resolved later) *)
  | Qualified of string * string  (** [Enum.case] or [Class.member] *)
  | This
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr  (** [c ? a : b] *)
  | Index of expr * expr
  | Length of expr  (** [e.length] *)
  | Call of call_target * expr list
  | New_array of ty * expr  (** [new t\[n\]] *)
  | New_instance of string * expr list
      (** [new C(args)]: construct an object; a [local] constructor
          with value arguments is an isolating constructor and makes
          the instance usable as a stateful task (paper section 2.1) *)
  | New_value_array of ty * expr
      (** [new t\[\[\]\](e)]: freeze a mutable array into a value array *)
  | Map of string option * string * expr list
      (** [C @ m(args)]: apply method [m] (of class [C], or the
          enclosing class when [None]) elementwise *)
  | Reduce of string option * string * expr list
      (** [C @@ m(e)]: fold the array with associative binary [m] *)
  | Task of string option * string
      (** [task m] / [task C.m]: a dataflow actor repeatedly applying
          the named method *)
  | Relocate of expr
      (** relocation brackets [\[ e \]] around a task expression *)
  | Connect of expr * expr  (** [a => b] *)
  | Source of expr * expr  (** [arr.source(rate)] *)
  | Sink of ty * expr  (** [dest.<t>sink()] *)

and call_target =
  | Unresolved_call of string  (** [m(args)] within the current class *)
  | Qualified_call of string * string  (** [C.m(args)] *)
  | Method_call of expr * string
      (** [e.m(args)] — graph methods like [finish], or enum instance
          methods *)

type lvalue =
  | Lv_name of string
  | Lv_index of expr * expr  (** [a\[i\] = ...] *)

type stmt = { sdesc : stmt_desc; sloc : Srcloc.t }

and stmt_desc =
  | Var_decl of ty option * string * expr option
      (** [ty x = e;], [var x = e;] (type inferred), or [ty x;]
          (default-initialized) *)
  | Assign of lvalue * expr
  | Op_assign of binop * lvalue * expr  (** [+=], [-=], [*=] *)
  | Incr of lvalue  (** [x++] *)
  | Decr of lvalue  (** [x--] *)
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Expr_stmt of expr
  | Block of block

and block = stmt list

type locality =
  | L_local  (** declared [local], or defaulted local in a value type *)
  | L_global  (** may perform side effects including I/O *)
  | L_default  (** unannotated; resolved by the typechecker *)

type method_decl = {
  m_name : string;  (** ["~"] names the unary operator method *)
  m_static : bool;
  m_locality : locality;
  m_ret : ty;
  m_params : (string * ty) list;
  m_body : block;
  m_loc : Srcloc.t;
}

type field_decl = {
  f_name : string;
  f_ty : ty;
  f_init : expr option;
  f_loc : Srcloc.t;
}

type ctor_decl = {
  c_locality : locality;
  c_params : (string * ty) list;
  c_body : block;
  c_loc : Srcloc.t;
}

type enum_decl = {
  e_name : string;
  e_cases : string list;
  e_methods : method_decl list;
  e_loc : Srcloc.t;
}

type class_decl = {
  k_name : string;
  k_is_value : bool;
  k_fields : field_decl list;
  k_ctors : ctor_decl list;
  k_methods : method_decl list;
  k_loc : Srcloc.t;
}

type decl = D_enum of enum_decl | D_class of class_decl

type program = { decls : decl list }

let rec ty_to_string = function
  | T_int -> "int"
  | T_float -> "float"
  | T_bool -> "boolean"
  | T_bit -> "bit"
  | T_void -> "void"
  | T_named n -> n
  | T_array (t, Mut) -> ty_to_string t ^ "[]"
  | T_array (t, Immut) -> ty_to_string t ^ "[[]]"

let pp_ty ppf t = Format.fprintf ppf "%s" (ty_to_string t)

let ty_equal (a : ty) (b : ty) = a = b
