(** Pretty-printer for the Lime AST.

    Produces valid Lime source: for every program [p],
    [Parser.parse (print p)] succeeds and yields a structurally equal
    AST (locations aside) — a property the test suite checks. Used by
    tooling and error reporting. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : ?indent:int -> Ast.stmt -> string
val method_to_string : ?indent:int -> Ast.method_decl -> string
val program_to_string : Ast.program -> string

val strip_locations : Ast.program -> Ast.program
(** Normalize every location to [Srcloc.dummy] so parsed and reparsed
    programs compare structurally. *)
