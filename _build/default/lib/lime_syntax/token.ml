type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | BIT_LIT of string
  | TRUE
  | FALSE
  | IDENT of string
  | PUBLIC
  | STATIC
  | LOCAL
  | GLOBAL
  | VALUE
  | ENUM
  | CLASS
  | VAR
  | NEW
  | RETURN
  | IF
  | ELSE
  | FOR
  | WHILE
  | TASK
  | THIS
  | KW_INT
  | KW_FLOAT
  | KW_BOOLEAN
  | KW_BIT
  | KW_VOID
  | FINAL
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | LVALUEBRACKET
  | RVALUEBRACKET
  | SEMI
  | COMMA
  | DOT
  | QUESTION
  | COLON
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | TILDE
  | BANG
  | AMP
  | BAR
  | CARET
  | AMPAMP
  | BARBAR
  | EQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | SHL
  | SHR
  | AT
  | ATAT
  | CONNECT
  | PLUSPLUS
  | MINUSMINUS
  | PLUSASSIGN
  | MINUSASSIGN
  | STARASSIGN
  | EOF

let to_string = function
  | INT_LIT i -> string_of_int i
  | FLOAT_LIT f -> string_of_float f
  | BIT_LIT s -> s ^ "b"
  | TRUE -> "true"
  | FALSE -> "false"
  | IDENT s -> s
  | PUBLIC -> "public"
  | STATIC -> "static"
  | LOCAL -> "local"
  | GLOBAL -> "global"
  | VALUE -> "value"
  | ENUM -> "enum"
  | CLASS -> "class"
  | VAR -> "var"
  | NEW -> "new"
  | RETURN -> "return"
  | IF -> "if"
  | ELSE -> "else"
  | FOR -> "for"
  | WHILE -> "while"
  | TASK -> "task"
  | THIS -> "this"
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_BOOLEAN -> "boolean"
  | KW_BIT -> "bit"
  | KW_VOID -> "void"
  | FINAL -> "final"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LVALUEBRACKET -> "[["
  | RVALUEBRACKET -> "]]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | QUESTION -> "?"
  | COLON -> ":"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | TILDE -> "~"
  | BANG -> "!"
  | AMP -> "&"
  | BAR -> "|"
  | CARET -> "^"
  | AMPAMP -> "&&"
  | BARBAR -> "||"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LEQ -> "<="
  | GT -> ">"
  | GEQ -> ">="
  | SHL -> "<<"
  | SHR -> ">>"
  | AT -> "@"
  | ATAT -> "@@"
  | CONNECT -> "=>"
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | PLUSASSIGN -> "+="
  | MINUSASSIGN -> "-="
  | STARASSIGN -> "*="
  | EOF -> "<eof>"

let pp ppf t = Format.fprintf ppf "%s" (to_string t)
