(** Hand-written lexer for the Lime subset.

    Notable lexical features from the paper:
    - bit literals: a run of [0]/[1] digits immediately followed by
      [b], e.g. [100b] (section 2.2);
    - the two-character value-array brackets [[[] and []]] used in
      types such as [bit[[]]];
    - the operators [@] (map), [@@] (reduce) and [=>] (connect). *)

type spanned = { token : Token.t; loc : Support.Srcloc.t }

val tokenize : file:string -> string -> spanned list
(** Tokenizes a whole compilation unit, ending with an [EOF] token.
    @raise Support.Diag.Compile_error on lexical errors. *)
