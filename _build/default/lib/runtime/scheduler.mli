(** The cooperative task scheduler.

    Steps every live actor round-robin until all have finished. A full
    round in which nothing progresses is a wedged graph (a cycle of
    full/empty queues) and raises {!Deadlock} instead of spinning. *)

exception Deadlock of string

type stats = {
  rounds : int;  (** scheduling rounds until quiescence *)
  steps : int;  (** total actor steps taken *)
  blocked_steps : int;  (** steps that found the actor blocked *)
}

val run : Actor.t list -> stats
