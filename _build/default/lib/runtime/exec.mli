module Ir = Lime_ir.Ir
module I = Lime_ir.Interp

(** The co-execution engine: the externally visible face of the
    Liquid Metal runtime.

    [call] runs a host method on the bytecode VM with hooks installed
    so that task graphs, map sites and reduce sites consult the
    artifact store, perform task substitution under the current
    {!Substitute.policy}, marshal values across the host/device
    boundary (Figure 3), and dispatch to the GPU and FPGA substrates.
    Everything is accounted in {!Metrics}. *)

type t

val create :
  ?policy:Substitute.policy ->
  ?gpu_device:Gpu.Device.t ->
  ?fpga_clock_ns:int ->
  ?fifo_capacity:int ->
  ?boundary:Wire.Boundary.t ->
  ?model_divergence:bool ->
  ?chunk_elements:int ->
  Bytecode.Compile.unit_ ->
  Store.t ->
  t
(** Defaults: [Prefer_accelerators], GTX580-class GPU, 4ns FPGA clock
    (250 MHz), FIFO capacity 16, divergence modeling on,
    whole-stream device batching ([chunk_elements] bounds the staging
    buffer and launches the device every that-many elements). *)

val call : t -> string -> I.v list -> I.v
(** Run a host method end to end under the engine's policy. *)

val set_policy : t -> Substitute.policy -> unit
val policy : t -> Substitute.policy
val metrics : t -> Metrics.t
val store : t -> Store.t
val program : t -> Ir.program

val last_plan : t -> string option
(** Human-readable description of the substitution plan chosen for the
    most recently executed task graph. *)

(** {2 Wire-format helpers} (exposed for the benches and tests) *)

val wire_ty_of_value : Wire.Value.t -> Wire.Codec.ty
val pack_stream : Ir.ty -> Wire.Value.t list -> Wire.Value.t
val unpack_stream : Wire.Value.t -> Wire.Value.t list
