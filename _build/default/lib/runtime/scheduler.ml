(* The cooperative task scheduler.

   Steps every live actor in round-robin order; a round in which no
   actor progresses and none finished means the graph is wedged
   (a cycle of full/empty queues), which is reported rather than
   spinning forever. *)

exception Deadlock of string

type stats = {
  rounds : int;  (** scheduling rounds until quiescence *)
  steps : int;  (** total actor steps taken *)
  blocked_steps : int;  (** steps that found the actor blocked *)
}

let run (actors : Actor.t list) : stats =
  let live = ref actors in
  let rounds = ref 0 in
  let steps = ref 0 in
  let blocked = ref 0 in
  while !live <> [] do
    incr rounds;
    let progressed = ref false in
    let still_live =
      List.filter
        (fun (a : Actor.t) ->
          incr steps;
          match a.step () with
          | Actor.Progress ->
            progressed := true;
            true
          | Actor.Blocked ->
            incr blocked;
            true
          | Actor.Done ->
            progressed := true;
            false)
        !live
    in
    live := still_live;
    if (not !progressed) && !live <> [] then
      raise
        (Deadlock
           (Printf.sprintf "task graph wedged; blocked actors: %s"
              (String.concat ", "
                 (List.map (fun (a : Actor.t) -> a.name) !live))))
  done;
  { rounds = !rounds; steps = !steps; blocked_steps = !blocked }
