(* Execution metrics.

   The runtime accounts for everything the evaluation needs: VM
   instruction counts (CPU model), device kernel times (GPU/FPGA
   models), marshaling traffic (Figure 3) and the substitutions that
   were performed. *)

type snapshot = {
  vm_instructions : int;
  native_instructions : int;
      (** instructions executed inside native (compiled C) segments *)
  native_ns : float;
  gpu_kernels : int;
  gpu_kernel_ns : float;
  fpga_runs : int;
  fpga_cycles : int;
  fpga_ns : float;
  marshal : Wire.Boundary.stats;
      (** the accelerator (PCIe-class) boundary *)
  marshal_native : Wire.Boundary.stats;
      (** the JNI-only boundary used by native shared libraries *)
  substitutions : (string * Artifact.device) list;
      (** chain uid, chosen device — in execution order *)
}

type t = {
  mutable vm_instructions : int;
  mutable native_instructions : int;
  mutable gpu_kernels : int;
  mutable gpu_kernel_ns : float;
  mutable fpga_runs : int;
  mutable fpga_cycles : int;
  mutable fpga_ns : float;
  boundary : Wire.Boundary.t;
  native_boundary : Wire.Boundary.t;
  mutable substitutions : (string * Artifact.device) list;
}

(* Crossing into a dynamically loaded shared library is a JNI call:
   sub-microsecond latency and memcpy-class bandwidth, no PCIe. *)
let native_boundary_model () =
  Wire.Boundary.create ~latency_ns:800.0 ~bandwidth_bytes_per_ns:24.0 ()

let create ?boundary () =
  {
    vm_instructions = 0;
    native_instructions = 0;
    gpu_kernels = 0;
    gpu_kernel_ns = 0.0;
    fpga_runs = 0;
    fpga_cycles = 0;
    fpga_ns = 0.0;
    boundary =
      (match boundary with Some b -> b | None -> Wire.Boundary.create ());
    native_boundary = native_boundary_model ();
    substitutions = [];
  }

let add_vm_instructions t n = t.vm_instructions <- t.vm_instructions + n

let add_native_instructions t n =
  t.native_instructions <- t.native_instructions + n

let add_gpu_kernel t ~ns =
  t.gpu_kernels <- t.gpu_kernels + 1;
  t.gpu_kernel_ns <- t.gpu_kernel_ns +. ns

let add_fpga_run t ~cycles ~ns =
  t.fpga_runs <- t.fpga_runs + 1;
  t.fpga_cycles <- t.fpga_cycles + cycles;
  t.fpga_ns <- t.fpga_ns +. ns

let add_substitution t uid device =
  t.substitutions <- (uid, device) :: t.substitutions

let boundary t = t.boundary
let native_boundary t = t.native_boundary

(* The CPU cost models. Interpreted bytecode dispatch costs ~6ns per
   instruction on a ~2GHz core; the same operation compiled to native
   code retires in under a nanosecond — the classic interpreter/JIT
   gap the paper's native configuration exploits. *)
let cpu_ns_per_instruction = 6.0
let native_ns_per_instruction = 0.75

let snapshot t : snapshot =
  {
    vm_instructions = t.vm_instructions;
    native_instructions = t.native_instructions;
    native_ns =
      float_of_int t.native_instructions *. native_ns_per_instruction;
    gpu_kernels = t.gpu_kernels;
    gpu_kernel_ns = t.gpu_kernel_ns;
    fpga_runs = t.fpga_runs;
    fpga_cycles = t.fpga_cycles;
    fpga_ns = t.fpga_ns;
    marshal = Wire.Boundary.stats t.boundary;
    marshal_native = Wire.Boundary.stats t.native_boundary;
    substitutions = List.rev t.substitutions;
  }

let reset t =
  t.vm_instructions <- 0;
  t.native_instructions <- 0;
  t.gpu_kernels <- 0;
  t.gpu_kernel_ns <- 0.0;
  t.fpga_runs <- 0;
  t.fpga_cycles <- 0;
  t.fpga_ns <- 0.0;
  Wire.Boundary.reset_stats t.boundary;
  Wire.Boundary.reset_stats t.native_boundary;
  t.substitutions <- []

let modeled_cpu_ns t = float_of_int t.vm_instructions *. cpu_ns_per_instruction

let modeled_accelerator_ns t =
  t.gpu_kernel_ns +. t.fpga_ns
  +. (float_of_int t.native_instructions *. native_ns_per_instruction)
  +. (Wire.Boundary.stats t.boundary).modeled_transfer_ns
  +. (Wire.Boundary.stats t.native_boundary).modeled_transfer_ns
