lib/runtime/artifact.mli: Format Lime_ir
