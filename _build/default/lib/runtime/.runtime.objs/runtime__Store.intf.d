lib/runtime/store.mli: Artifact
