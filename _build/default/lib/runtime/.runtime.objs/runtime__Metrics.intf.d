lib/runtime/metrics.mli: Artifact Wire
