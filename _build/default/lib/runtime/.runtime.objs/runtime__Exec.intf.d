lib/runtime/exec.mli: Bytecode Gpu Lime_ir Metrics Store Substitute Wire
