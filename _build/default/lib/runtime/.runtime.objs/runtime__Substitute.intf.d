lib/runtime/substitute.mli: Artifact Lime_ir Store
