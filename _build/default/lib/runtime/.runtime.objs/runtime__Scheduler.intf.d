lib/runtime/scheduler.mli: Actor
