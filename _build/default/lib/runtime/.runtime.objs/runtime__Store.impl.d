lib/runtime/store.ml: Artifact Hashtbl List Option
