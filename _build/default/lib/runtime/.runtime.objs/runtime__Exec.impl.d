lib/runtime/exec.ml: Actor Array Artifact Bytecode Format Gpu Lime_ir List Metrics Option Rtl Scheduler Store Substitute Wire
