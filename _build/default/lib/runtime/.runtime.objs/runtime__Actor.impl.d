lib/runtime/actor.ml: Lime_ir List Queue Wire
