lib/runtime/substitute.ml: Array Artifact Lime_ir List Printf Store String
