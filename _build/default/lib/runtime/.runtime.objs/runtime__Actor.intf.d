lib/runtime/actor.mli: Queue Wire
