lib/runtime/artifact.ml: Format Lime_ir List Printf String
