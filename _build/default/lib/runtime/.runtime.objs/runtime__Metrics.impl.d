lib/runtime/metrics.ml: Artifact List Wire
