lib/runtime/scheduler.ml: Actor List Printf String
