(** The artifact store (paper section 4.2).

    Task UIDs "can be looked up efficiently in the artifact store
    populated by the backends"; the store also accumulates the
    manifest, including per-backend exclusions. *)

type t

val create : unit -> t

val add : t -> Artifact.t -> unit
(** Register an artifact and append it to the manifest. *)

val record_exclusion :
  t -> uid:string -> device:Artifact.device -> reason:string -> unit

val find : t -> uid:string -> Artifact.t list
(** Every implementation of a task UID, newest first. *)

val find_on : t -> uid:string -> device:Artifact.device -> Artifact.t option

val manifest : t -> Artifact.manifest
val artifact_count : t -> int
