(** GPU device models.

    The paper's 12x-431x speedups were measured against an NVidia
    GTX580 (Fermi); {!gtx580} is that card's architectural envelope.
    Only aggregate parameters matter to the simulator — SIMT width, SM
    count, clock and memory bandwidth — because those determine the
    shape of data-parallel speedups. *)

type t = {
  name : string;
  sms : int;  (** streaming multiprocessors *)
  lanes_per_warp : int;  (** SIMT width *)
  clock_ghz : float;
  mem_bandwidth_gbps : float;  (** device-memory bandwidth, GB/s *)
  launch_overhead_ns : float;  (** fixed kernel-launch cost *)
}

val gtx580 : t
(** The paper's evaluation card (16 SMs x 32 lanes, 1.544 GHz,
    192 GB/s). *)

val mobile : t
(** A small laptop-class part for ablations. *)

val total_lanes : t -> int
val cycles_to_ns : t -> float -> float
val pp : Format.formatter -> t -> unit
