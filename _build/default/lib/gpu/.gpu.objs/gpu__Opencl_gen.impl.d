lib/gpu/opencl_gen.ml: Hashtbl Lime_ir List Printf String Suitability
