lib/gpu/opencl_gen.mli: Lime_ir
