lib/gpu/simt.mli: Device Lime_ir Wire
