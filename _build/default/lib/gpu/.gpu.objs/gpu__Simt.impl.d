lib/gpu/simt.ml: Array Device Float Format Hashtbl Lime_ir List Wire
