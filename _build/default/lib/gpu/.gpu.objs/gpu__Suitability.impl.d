lib/gpu/suitability.ml: Format Hashtbl Lime_ir List
