lib/gpu/suitability.mli: Lime_ir
