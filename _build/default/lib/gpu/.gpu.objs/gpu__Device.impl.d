lib/gpu/device.ml: Format
