(** GPU backend exclusion analysis (paper section 3).

    "A task containing language constructs that are not suitable for
    the device is excluded from further compilation by that backend."
    The GPU accepts pure data-parallel code — local functions over
    scalars and arrays of scalars (loops included), calling only other
    suitable functions or [Math] intrinsics. It excludes global
    methods, object state, dynamic allocation, and nested
    task/map/reduce constructs. *)

module Ir = Lime_ir.Ir

type verdict = Suitable | Excluded of string

val check_fn : Ir.program -> string -> verdict
(** Check a function (by key) and everything it transitively calls. *)

val callees : Ir.program -> string -> string list
(** Transitive callees of a suitable function in dependency order
    (callees first, the entry last); intrinsics are omitted. Used by
    the OpenCL generator to emit device functions. *)
