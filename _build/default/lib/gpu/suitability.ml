module Ir = Lime_ir.Ir

(* Backend exclusion analysis.

   "Each of the device compilers ... examines the tasks that make up
   each task graph and decides whether the code that comprises the
   tasks is suitable for the device. A task containing language
   constructs that are not suitable for the device is excluded from
   further compilation by that backend." (paper section 3)

   The GPU backend accepts pure data-parallel code: local functions
   over scalars and arrays of scalars, calling only other suitable
   functions. It excludes state (objects, fields), nested task graphs
   and nested map/reduce, mirroring the OpenCL restrictions of the
   era. *)

type verdict = Suitable | Excluded of string

let rec scalar_ty = function
  | Ir.I32 | Ir.F32 | Ir.Bool | Ir.Bit | Ir.Enum _ -> true
  | Ir.Arr _ | Ir.Obj _ | Ir.Graph | Ir.Unit -> false

and data_ty = function
  | t when scalar_ty t -> true
  | Ir.Arr t -> scalar_ty t
  | _ -> false

exception Unsuitable of string

let reject fmt = Format.kasprintf (fun s -> raise (Unsuitable s)) fmt

let check_fn (prog : Ir.program) (key : string) : verdict =
  let seen = Hashtbl.create 8 in
  let rec check key =
    if Lime_ir.Intrinsics.is_intrinsic key then ()
    else if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      match Ir.find_func prog key with
      | None -> reject "calls unknown function %s" key
      | Some fn ->
        if not fn.fn_local then
          reject "%s is global (may perform side effects or I/O)" key;
        (match fn.fn_kind with
        | Ir.K_static -> ()
        | Ir.K_instance owner when not (Ir.String_map.mem owner prog.classes)
          ->
          (* value-enum methods are pure: the receiver is a scalar *)
          ()
        | Ir.K_instance _ | Ir.K_ctor _ ->
          reject "%s is stateful (instance method or constructor)" key);
        List.iter
          (fun (p : Ir.var) ->
            if not (data_ty p.v_ty) then
              reject "%s: parameter %s has device-unsupported type %s" key
                p.v_name (Ir.ty_to_string p.v_ty))
          fn.fn_params;
        if not (data_ty fn.fn_ret || fn.fn_ret = Ir.Unit) then
          reject "%s: return type %s not supported on the device" key
            (Ir.ty_to_string fn.fn_ret);
        check_block key fn.fn_body
    end
  and check_block key b = List.iter (check_instr key) b
  and check_instr key = function
    | Ir.I_let (_, r) | Ir.I_set (_, r) | Ir.I_do r -> check_rhs key r
    | Ir.I_astore _ -> ()
    | Ir.I_setfield _ -> reject "%s writes object fields" key
    | Ir.I_if (_, a, b) ->
      check_block key a;
      check_block key b
    | Ir.I_while (c, _, body) ->
      check_block key c;
      check_block key body
    | Ir.I_return _ -> ()
    | Ir.I_run_graph _ -> reject "%s starts a nested task graph" key
  and check_rhs key = function
    | Ir.R_op _ | Ir.R_unop _ | Ir.R_binop _ | Ir.R_alen _ | Ir.R_aload _ ->
      ()
    | Ir.R_call (callee, _) -> check callee
    | Ir.R_newarr _ ->
      reject "%s allocates an array (no dynamic allocation on the device)" key
    | Ir.R_freeze _ ->
      reject "%s freezes an array (host-side value conversion)" key
    | Ir.R_newobj _ -> reject "%s allocates objects" key
    | Ir.R_field _ -> reject "%s reads object fields" key
    | Ir.R_map _ -> reject "%s contains a nested map" key
    | Ir.R_reduce _ -> reject "%s contains a nested reduce" key
    | Ir.R_mkgraph _ -> reject "%s constructs a nested task graph" key
  in
  match check key with
  | () -> Suitable
  | exception Unsuitable reason -> Excluded reason

(* Transitive callees of a suitable function, in dependency order
   (callees first); the OpenCL generator emits them as device
   functions. *)
let callees (prog : Ir.program) (key : string) : string list =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit key =
    if
      (not (Lime_ir.Intrinsics.is_intrinsic key))
      && not (Hashtbl.mem seen key)
    then begin
      Hashtbl.add seen key ();
      (match Ir.find_func prog key with
      | None -> ()
      | Some fn -> visit_block fn.fn_body);
      order := key :: !order
    end
  and visit_block b = List.iter visit_instr b
  and visit_instr = function
    | Ir.I_let (_, r) | Ir.I_set (_, r) | Ir.I_do r -> visit_rhs r
    | Ir.I_if (_, a, b) ->
      visit_block a;
      visit_block b
    | Ir.I_while (c, _, body) ->
      visit_block c;
      visit_block body
    | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_return _ | Ir.I_run_graph _ -> ()
  and visit_rhs = function
    | Ir.R_call (callee, _) -> visit callee
    | Ir.R_op _ | Ir.R_unop _ | Ir.R_binop _ | Ir.R_alen _ | Ir.R_aload _
    | Ir.R_newarr _ | Ir.R_freeze _ | Ir.R_newobj _ | Ir.R_field _
    | Ir.R_map _ | Ir.R_reduce _ | Ir.R_mkgraph _ ->
      ()
  in
  visit key;
  (* Keys are pushed post-order, so the entry is at the head; reversing
     yields callees first with the entry last. *)
  List.rev !order
