(* GPU device models.

   The paper reports end-to-end speedups of 12x-431x against an NVidia
   GTX580 (Fermi) [section 2.2, ref 3]; [gtx580] is that card's
   architectural envelope. The simulator uses only these aggregate
   parameters — SIMT width, streaming-multiprocessor count, clock and
   memory bandwidth — which are the quantities that determine the
   *shape* of data-parallel speedups. *)

type t = {
  name : string;
  sms : int;  (** streaming multiprocessors *)
  lanes_per_warp : int;  (** SIMT width *)
  clock_ghz : float;
  mem_bandwidth_gbps : float;  (** device-memory bandwidth, GB/s *)
  launch_overhead_ns : float;  (** fixed kernel-launch cost *)
}

let gtx580 =
  {
    name = "GTX580-class (Fermi)";
    sms = 16;
    lanes_per_warp = 32;
    clock_ghz = 1.544;
    mem_bandwidth_gbps = 192.0;
    launch_overhead_ns = 5_000.0;
  }

(* A smaller laptop-class part, used by ablations. *)
let mobile =
  {
    name = "mobile-class";
    sms = 2;
    lanes_per_warp = 32;
    clock_ghz = 0.9;
    mem_bandwidth_gbps = 25.0;
    launch_overhead_ns = 8_000.0;
  }

let total_lanes d = d.sms * d.lanes_per_warp

let cycles_to_ns d cycles = cycles /. d.clock_ghz

let pp ppf d = Format.fprintf ppf "%s" d.name
