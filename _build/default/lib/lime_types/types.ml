type mut = Mut | Immut

type ty =
  | Int
  | Float
  | Bool
  | Bit
  | Void
  | Enum of string
  | Array of ty * mut
  | Instance of string
  | Task of ty option * ty option

let rec is_value = function
  | Int | Float | Bool | Bit | Enum _ -> true
  | Array (t, Immut) -> is_value t
  | Array (_, Mut) | Instance _ | Task _ | Void -> false

let rec equal a b =
  match a, b with
  | Int, Int | Float, Float | Bool, Bool | Bit, Bit | Void, Void -> true
  | Enum x, Enum y -> String.equal x y
  | Array (x, mx), Array (y, my) -> mx = my && equal x y
  | Instance x, Instance y -> String.equal x y
  | Task (i1, o1), Task (i2, o2) ->
    Option.equal equal i1 i2 && Option.equal equal o1 o2
  | ( ( Int | Float | Bool | Bit | Void | Enum _ | Array _ | Instance _
      | Task _ ),
      _ ) ->
    false

let widens_to a b =
  equal a b || match a, b with Int, Float -> true | _ -> false

let freeze = function Array (t, Mut) -> Array (t, Immut) | t -> t

let rec pp ppf = function
  | Int -> Format.fprintf ppf "int"
  | Float -> Format.fprintf ppf "float"
  | Bool -> Format.fprintf ppf "boolean"
  | Bit -> Format.fprintf ppf "bit"
  | Void -> Format.fprintf ppf "void"
  | Enum n -> Format.fprintf ppf "%s" n
  | Array (t, Mut) -> Format.fprintf ppf "%a[]" pp t
  | Array (t, Immut) -> Format.fprintf ppf "%a[[]]" pp t
  | Instance n -> Format.fprintf ppf "%s" n
  | Task (i, o) ->
    let port ppf = function
      | None -> Format.fprintf ppf "-"
      | Some t -> pp ppf t
    in
    Format.fprintf ppf "task(%a -> %a)" port i port o

let to_string t = Format.asprintf "%a" pp t
