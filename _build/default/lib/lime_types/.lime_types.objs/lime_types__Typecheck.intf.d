lib/lime_types/typecheck.mli: Lime_syntax Tast
