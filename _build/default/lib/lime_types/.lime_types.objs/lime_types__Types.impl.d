lib/lime_types/types.ml: Format Option String
