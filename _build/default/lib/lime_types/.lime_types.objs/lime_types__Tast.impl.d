lib/lime_types/tast.ml: Lime_syntax List Map Srcloc String Support Types
