lib/lime_types/typecheck.ml: Array Diag Lime_syntax List Option Printf Srcloc String Support Tast Types Wire
