lib/lime_types/types.mli: Format
