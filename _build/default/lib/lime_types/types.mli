(** Semantic types of the Lime subset.

    The central predicate is {!is_value}: [value] types are recursively
    immutable (paper section 2.1), and only values may flow between
    tasks, so this predicate gates task-graph construction, map/reduce
    operands, and marshaling. *)

type mut = Mut | Immut

type ty =
  | Int
  | Float
  | Bool
  | Bit  (** the builtin value enum [bit { zero, one }] *)
  | Void
  | Enum of string
  | Array of ty * mut
  | Instance of string  (** a class instance *)
  | Task of ty option * ty option
      (** a task or task graph with optional input and output port
          element types; [Task (None, None)] is a complete graph that
          can be started *)

val is_value : ty -> bool
(** Recursively immutable: primitives, enums, and [Immut] arrays of
    value types. *)

val equal : ty -> ty -> bool

val widens_to : ty -> ty -> bool
(** [widens_to a b] when [a] implicitly converts to [b] (identity, or
    the Java [int] to [float] widening). *)

val freeze : ty -> ty
(** Shallow conversion of the outermost array to [Immut], used for
    [new t\[\[\]\](e)]. *)

val pp : Format.formatter -> ty -> unit
val to_string : ty -> string
