(* Typed abstract syntax: names resolved, every expression annotated
   with its semantic type. This is what lowering to IR consumes. *)

open Support

(* A static method is identified by class and method name; the same
   key labels artifacts in the backend manifests. *)
type method_key = { mclass : string; mmethod : string }

let method_key_to_string k = k.mclass ^ "." ^ k.mmethod

type expr = { ty : Types.ty; desc : expr_desc; loc : Srcloc.t }

and expr_desc =
  | T_int_lit of int
  | T_float_lit of float
  | T_bool_lit of bool
  | T_bit_lit of string  (** literal body; type is [bit\[\[\]\]] *)
  | T_enum_lit of string * int  (** enum name, case tag *)
  | T_var of string
  | T_field_get of string * int  (** field name and slot, on [this] *)
  | T_this
  | T_int_to_float of expr  (** implicit Java widening conversion *)
  | T_unop of Lime_syntax.Ast.unop * expr
  | T_binop of Lime_syntax.Ast.binop * expr * expr
  | T_cond of expr * expr * expr
  | T_index of expr * expr
  | T_length of expr
  | T_call of method_key * expr list  (** static method call *)
  | T_instance_call of string * string * expr * expr list
      (** class, method, receiver, args — includes enum methods such
          as the builtin [bit.~] *)
  | T_new_array of Types.ty * expr  (** element type, length *)
  | T_freeze of expr  (** [new t\[\[\]\](e)] *)
  | T_new_instance of string * expr list
  | T_map of method_key * expr list
  | T_reduce of method_key * expr list
  | T_task_static of method_key
  | T_task_instance of string * string * expr  (** class, method, receiver *)
  | T_relocate of expr
  | T_connect of expr * expr
  | T_source of expr * expr  (** array, rate *)
  | T_sink of Types.ty * expr  (** element type, destination array *)
  | T_graph_run of expr * bool  (** graph, [true] = finish (blocking) *)

type lvalue =
  | TLv_var of string * Types.ty
  | TLv_index of expr * expr
  | TLv_field of string * int * Types.ty  (** field name, slot, type *)

type stmt = { sdesc : stmt_desc; sloc : Srcloc.t }

and stmt_desc =
  | TS_decl of string * Types.ty * expr
  | TS_assign of lvalue * expr
  | TS_if of expr * stmt list * stmt list
  | TS_while of expr * stmt list
  | TS_for of stmt option * expr option * stmt option * stmt list
  | TS_return of expr option
  | TS_expr of expr
  | TS_block of stmt list

type method_info = {
  mi_key : method_key;
  mi_static : bool;
  mi_local : bool;  (** resolved locality *)
  mi_pure : bool;
      (** static, local, value parameters and return: freely relocatable *)
  mi_params : (string * Types.ty) list;
  mi_ret : Types.ty;
  mi_body : stmt list;
  mi_loc : Srcloc.t;
}

type field_info = {
  fi_name : string;
  fi_ty : Types.ty;
  fi_slot : int;
  fi_init : expr option;
}

type ctor_info = {
  ci_local : bool;
  ci_isolating : bool;  (** local constructor with value arguments *)
  ci_params : (string * Types.ty) list;
  ci_body : stmt list;
}

type enum_info = {
  ei_name : string;
  ei_cases : string array;
  ei_methods : method_info list;
}

type class_info = {
  ki_name : string;
  ki_is_value : bool;
  ki_fields : field_info list;
  ki_ctors : ctor_info list;
  ki_methods : method_info list;
}

module String_map = Map.Make (String)

type program = {
  enums : enum_info String_map.t;
  classes : class_info String_map.t;
}

let find_enum p name = String_map.find_opt name p.enums
let find_class p name = String_map.find_opt name p.classes

let find_method p (key : method_key) =
  match String_map.find_opt key.mclass p.classes with
  | Some k -> List.find_opt (fun m -> m.mi_key.mmethod = key.mmethod) k.ki_methods
  | None -> (
    match String_map.find_opt key.mclass p.enums with
    | Some e ->
      List.find_opt (fun m -> m.mi_key.mmethod = key.mmethod) e.ei_methods
    | None -> None)

let iter_methods p f =
  String_map.iter (fun _ e -> List.iter f e.ei_methods) p.enums;
  String_map.iter (fun _ k -> List.iter f k.ki_methods) p.classes
