(** The Lime typechecker.

    Beyond conventional Java-style typing (32-bit ints, int-to-float
    widening, boolean conditions), this enforces the paper's isolation
    rules (section 2.1):

    - [value] types are recursively immutable: elements of value
      arrays ([t\[\[\]\]]) cannot be assigned;
    - [local] methods may only call other [local] methods; methods of
      value enums are local by default, class methods global by default;
    - map ([@]), reduce ([@@]) and static [task] targets must be local
      static methods whose parameters and results are value types
      (hence pure and freely relocatable);
    - instance [task] targets must be local methods of classes whose
      constructors are all isolating (local constructors with value
      arguments);
    - only values flow between tasks: source elements, filter ports
      and sink elements must be value types;
    - connected ports must agree: [a => b] requires the output element
      type of [a] to equal the input element type of [b].

    The builtin value enum [bit { zero, one }] with its [~] operator is
    predeclared; a user declaration of [bit] (as in the paper's
    Figure 1) must agree with the builtin and may override the [~]
    method body with an equivalent one. *)

val check : Lime_syntax.Ast.program -> Tast.program
(** @raise Support.Diag.Compile_error on any type or isolation error. *)
