(** Reading VCD documents back.

    The simulator writes standard VCD; this module parses it into
    per-signal event series and renders ASCII waveforms, so the
    Figure-4 inspection workflow (paper section 5) works without an
    external viewer. Only the subset the writer produces is supported
    (one scope, wire variables, [#time] marks, scalar and vector
    changes). *)

type event = { time : int; value : int }

type signal = {
  name : string;
  width : int;
  events : event list;  (** chronological; first event at the dump start *)
}

type t

val parse : string -> t
(** @raise Failure on malformed documents. *)

val signals : t -> signal list

val signal : t -> string -> signal
(** @raise Not_found for unknown names. *)

val value_at : signal -> int -> int
(** The signal's value at a time (last change at or before it; 0
    before the first event). *)

val rises : signal -> int list
(** Times at which a 1-bit signal transitions to 1. *)

val render_ascii :
  ?signals:string list -> ?from_ns:int -> ?until_ns:int -> ?step_ns:int ->
  t -> string
(** A textual waveform, one row per signal: 1-bit signals draw
    [_]/[#] level traces, vector signals print hex values on change.
    Defaults: all signals, full time range, 1ns resolution. *)
