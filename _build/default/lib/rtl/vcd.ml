type var = { code : string; width : int; mutable last : int }

type t = {
  buf : Buffer.t;
  mutable vars : var list;
  mutable header_done : bool;
  mutable current_time : int;
  mutable time_written : bool;
}

let create ?(timescale_ns = 1) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "$timescale %dns $end\n" timescale_ns);
  Buffer.add_string buf "$scope module top $end\n";
  {
    buf;
    vars = [];
    header_done = false;
    current_time = -1;
    time_written = false;
  }

(* VCD identifier codes: printable ASCII starting at '!'. *)
let code_of_index i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let add_var t ~name ~width =
  if t.header_done then invalid_arg "Vcd.add_var: header already finalized";
  let var = { code = code_of_index (List.length t.vars); width; last = -1 } in
  Buffer.add_string t.buf
    (Printf.sprintf "$var wire %d %s %s $end\n" width var.code name);
  t.vars <- var :: t.vars;
  var

let write_value buf (v : var) value =
  if v.width = 1 then
    Buffer.add_string buf (Printf.sprintf "%d%s\n" (value land 1) v.code)
  else begin
    let bits =
      String.init v.width (fun i ->
          if (value lsr (v.width - 1 - i)) land 1 = 1 then '1' else '0')
    in
    Buffer.add_string buf (Printf.sprintf "b%s %s\n" bits v.code)
  end

let finalize_header t =
  if not t.header_done then begin
    Buffer.add_string t.buf "$upscope $end\n$enddefinitions $end\n";
    Buffer.add_string t.buf "#0\n";
    List.iter
      (fun v ->
        v.last <- 0;
        write_value t.buf v 0)
      (List.rev t.vars);
    t.header_done <- true;
    t.current_time <- 0;
    t.time_written <- true
  end

let set t ~time_ns var value =
  if not t.header_done then finalize_header t;
  if var.last <> value then begin
    if time_ns <> t.current_time then begin
      Buffer.add_string t.buf (Printf.sprintf "#%d\n" time_ns);
      t.current_time <- time_ns
    end;
    var.last <- value;
    write_value t.buf var value
  end

let contents t =
  if not t.header_done then finalize_header t;
  Buffer.contents t.buf
