type event = { time : int; value : int }

type signal = { name : string; width : int; events : event list }

type t = { signals_ : signal list; end_time : int }

let parse (text : string) : t =
  let lines = String.split_on_char '\n' text in
  let vars = Hashtbl.create 16 in (* code -> name, width *)
  let order = ref [] in
  let events = Hashtbl.create 16 in (* code -> event list (reversed) *)
  let time = ref 0 in
  let end_time = ref 0 in
  let record code value =
    let existing = Option.value (Hashtbl.find_opt events code) ~default:[] in
    Hashtbl.replace events code ({ time = !time; value } :: existing)
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" then ()
      else if String.length line >= 4 && String.sub line 0 4 = "$var" then begin
        match String.split_on_char ' ' line with
        | [ "$var"; "wire"; w; code; name; "$end" ] ->
          Hashtbl.replace vars code (name, int_of_string w);
          order := code :: !order
        | _ -> failwith ("Vcd_reader: bad $var line: " ^ line)
      end
      else if line.[0] = '$' then ()  (* other directives *)
      else if line.[0] = '#' then begin
        time := int_of_string (String.sub line 1 (String.length line - 1));
        end_time := max !end_time !time
      end
      else if line.[0] = 'b' then begin
        match String.index_opt line ' ' with
        | Some i ->
          let bits = String.sub line 1 (i - 1) in
          let code = String.sub line (i + 1) (String.length line - i - 1) in
          let value =
            String.fold_left
              (fun acc c -> (acc lsl 1) lor (if c = '1' then 1 else 0))
              0 bits
          in
          record code value
        | None -> failwith ("Vcd_reader: bad vector change: " ^ line)
      end
      else if line.[0] = '0' || line.[0] = '1' then
        record
          (String.sub line 1 (String.length line - 1))
          (Char.code line.[0] - Char.code '0')
      else failwith ("Vcd_reader: unsupported line: " ^ line))
    lines;
  let signals_ =
    List.rev_map
      (fun code ->
        let name, width = Hashtbl.find vars code in
        let evs =
          List.rev (Option.value (Hashtbl.find_opt events code) ~default:[])
        in
        { name; width; events = evs })
      !order
  in
  { signals_; end_time = !end_time }

let signals t = t.signals_

let signal t name =
  match List.find_opt (fun s -> s.name = name) t.signals_ with
  | Some s -> s
  | None -> raise Not_found

let value_at (s : signal) (at : int) =
  List.fold_left
    (fun acc (e : event) -> if e.time <= at then e.value else acc)
    0 s.events

let rises (s : signal) =
  let _, out =
    List.fold_left
      (fun (prev, acc) (e : event) ->
        if prev = 0 && e.value = 1 then e.value, e.time :: acc
        else e.value, acc)
      (0, []) s.events
  in
  List.rev out

let render_ascii ?signals:(wanted = []) ?(from_ns = 0) ?until_ns
    ?(step_ns = 1) t : string =
  let until_ns = Option.value until_ns ~default:t.end_time in
  let chosen =
    if wanted = [] then t.signals_
    else
      List.filter_map
        (fun n -> List.find_opt (fun s -> s.name = n) t.signals_)
        wanted
  in
  let name_w =
    List.fold_left (fun w s -> max w (String.length s.name)) 0 chosen
  in
  let buf = Buffer.create 1024 in
  let steps = ((until_ns - from_ns) / step_ns) + 1 in
  (* time ruler *)
  Buffer.add_string buf (String.make name_w ' ');
  Buffer.add_string buf "  ";
  for i = 0 to steps - 1 do
    let tns = from_ns + (i * step_ns) in
    Buffer.add_char buf (if tns mod (10 * step_ns) = 0 then '|' else ' ')
  done;
  Buffer.add_string buf "\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (s.name ^ String.make (name_w - String.length s.name) ' ' ^ "  ");
      if s.width = 1 then
        for i = 0 to steps - 1 do
          let v = value_at s (from_ns + (i * step_ns)) in
          Buffer.add_char buf (if v = 1 then '#' else '_')
        done
      else begin
        (* vector: print the value in hex at each change, dots between *)
        let last = ref min_int in
        for i = 0 to steps - 1 do
          let v = value_at s (from_ns + (i * step_ns)) in
          if v <> !last then begin
            last := v;
            Buffer.add_string buf (Printf.sprintf "%x" (v land 0xf))
          end
          else Buffer.add_char buf '.'
        done
      end;
      Buffer.add_string buf "\n")
    chosen;
  Buffer.contents buf
