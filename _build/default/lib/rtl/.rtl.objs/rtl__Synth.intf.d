lib/rtl/synth.mli: Lime_ir Netlist
