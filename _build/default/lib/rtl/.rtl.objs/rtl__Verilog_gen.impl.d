lib/rtl/verilog_gen.ml: Buffer Format Int32 Lime_ir List Netlist Option Printf String
