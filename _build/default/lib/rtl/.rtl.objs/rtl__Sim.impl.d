lib/rtl/sim.ml: Format Lime_ir List Netlist Option Queue Vcd Wire
