lib/rtl/netlist.ml: Format Int32 Lime_ir Wire
