lib/rtl/vcd_reader.mli:
