lib/rtl/verilog_gen.mli: Lime_ir Netlist
