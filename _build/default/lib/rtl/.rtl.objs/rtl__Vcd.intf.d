lib/rtl/vcd.mli:
