lib/rtl/synth.ml: Float Format Lime_ir List Netlist Printf String
