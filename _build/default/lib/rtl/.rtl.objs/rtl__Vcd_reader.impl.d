lib/rtl/vcd_reader.ml: Buffer Char Hashtbl List Option Printf String
