lib/rtl/netlist.mli: Format Lime_ir Wire
