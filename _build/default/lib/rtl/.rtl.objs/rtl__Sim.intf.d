lib/rtl/sim.mli: Lime_ir Netlist Vcd Wire
