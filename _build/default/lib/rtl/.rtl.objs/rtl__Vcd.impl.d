lib/rtl/vcd.ml: Buffer Char List Printf String
