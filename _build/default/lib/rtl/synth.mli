(** Behavioral synthesis feasibility, latency estimation, and pipeline
    assembly for the FPGA backend.

    The paper is explicit that its FPGA device compiler is "a work in
    progress" with a narrower feature set (sections 5 and 7); the
    exclusion rules mirror that: scalar port types only, no arrays, no
    loops (no FSM inference), no dynamic allocation, no transcendental
    intrinsics (no FP IP cores). Stateful filters with scalar fields
    are supported — fields become registers. *)

module Ir = Lime_ir.Ir
module I = Lime_ir.Interp

type verdict = Suitable | Excluded of string

val check_filter : Ir.program -> Ir.filter_info -> verdict

val latency_of : Ir.program -> Ir.filter_info -> int
(** Compute cycles of the unpipelined stage: the maximum operation
    count along any path, at {!ops_per_cycle} datapath operations per
    clock, minimum 1. *)

val ops_per_cycle : float

val pipeline_of_chain :
  Ir.program ->
  name:string ->
  ?fifo_depth:int ->
  (Ir.filter_info * I.v option) list ->
  Netlist.pipeline
(** Assemble a pipeline netlist for a chain of suitable filters; the
    optional receiver objects become the stages' register state.
    @raise Netlist.Synthesis_error if a filter is excluded. *)
