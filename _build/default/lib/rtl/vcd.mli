(** Value Change Dump (VCD) waveform writer.

    The design flow of the paper's section 5 inspects co-simulation
    results in a waveform viewer (Figure 4); the simulator emits
    standard VCD so any viewer (GTKWave et al.) can display our runs
    the same way. *)

type t
type var

val create : ?timescale_ns:int -> unit -> t

val add_var : t -> name:string -> width:int -> var
(** Declare a wire before {!finalize_header}. *)

val finalize_header : t -> unit
(** Close the declarations section; all variables dump an initial 0. *)

val set : t -> time_ns:int -> var -> int -> unit
(** Record a value change; writes nothing if the value is unchanged. *)

val contents : t -> string
(** The complete VCD document so far. *)
