(** Source locations for Lime programs.

    A location identifies a half-open character span [(start, stop)]
    within a named compilation unit, together with line/column of the
    start for human-readable messages. *)

type t = {
  file : string;  (** compilation-unit name, e.g. ["Bitflip.lime"] *)
  line : int;     (** 1-based line of the span start *)
  col : int;      (** 1-based column of the span start *)
  start : int;    (** 0-based character offset of the span start *)
  stop : int;     (** 0-based character offset just past the span end *)
}

val dummy : t
(** Placeholder location for synthesized nodes. *)

val make : file:string -> line:int -> col:int -> start:int -> stop:int -> t

val merge : t -> t -> t
(** [merge a b] spans from the start of [a] to the end of [b];
    the file and line/column are taken from [a]. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["file:line:col"]. *)

val to_string : t -> string
