(** Unique identifiers.

    Task identifiers are the glue between the backends and the runtime:
    the manifest labels every artifact with the UID of the task it
    implements, and the generated "bytecode" passes the same UIDs to the
    runtime at task-graph construction (paper section 3). *)

type t

val fresh : string -> t
(** [fresh base] returns a new identifier whose name starts with
    [base]. Successive calls never return equal identifiers. *)

val name : t -> string
(** The full unique name, e.g. ["flip#12"]. *)

val base : t -> string
(** The base supplied to {!fresh}. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
