(** Growable arrays.

    Used by the assembler (instruction emission), the RTL simulator
    (signal tables) and the VM (operand stacks) where amortized O(1)
    append plus O(1) random access matters. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument if the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument if the index is out of bounds. *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element.
    @raise Invalid_argument if empty. *)

val top : 'a t -> 'a
(** Returns the last element without removing it.
    @raise Invalid_argument if empty. *)

val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** [truncate v n] drops elements so that [length v = n].
    @raise Invalid_argument if [n] exceeds the current length. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
