type t = { file : string; line : int; col : int; start : int; stop : int }

let dummy = { file = "<none>"; line = 0; col = 0; start = 0; stop = 0 }

let make ~file ~line ~col ~start ~stop = { file; line; col; start; stop }

let merge a b = { a with stop = max a.stop b.stop }

let pp ppf t = Format.fprintf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Format.asprintf "%a" pp t
