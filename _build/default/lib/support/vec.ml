type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 8) () = { data = [||]; len = -capacity }
(* A vector starts with no storage; [len < 0] encodes the requested
   initial capacity so we can allocate lazily on first push without a
   dummy element. *)

let length t = max t.len 0

let is_empty t = length t = 0

let check_bounds t i =
  if i < 0 || i >= length t then invalid_arg "Vec: index out of bounds"

let get t i =
  check_bounds t i;
  t.data.(i)

let set t i x =
  check_bounds t i;
  t.data.(i) <- x

let grow t x =
  let cap = if t.len < 0 then max 1 (-t.len) else max 1 (2 * Array.length t.data) in
  let data = Array.make cap x in
  Array.blit t.data 0 data 0 (length t);
  t.data <- data

let push t x =
  let n = length t in
  if n >= Array.length t.data then grow t x;
  t.data.(n) <- x;
  t.len <- n + 1

let pop t =
  if is_empty t then invalid_arg "Vec.pop: empty";
  let n = t.len - 1 in
  let x = t.data.(n) in
  t.len <- n;
  x

let top t =
  if is_empty t then invalid_arg "Vec.top: empty";
  t.data.(t.len - 1)

let clear t = t.len <- 0

let truncate t n =
  if n < 0 || n > length t then invalid_arg "Vec.truncate";
  t.len <- n

let iter f t =
  for i = 0 to length t - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to length t - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to length t - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 (length t)

let to_list t = Array.to_list (to_array t)

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t
