type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Srcloc.t;
  phase : string;
  message : string;
}

exception Compile_error of t

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp ppf t =
  Format.fprintf ppf "%a: %s: [%s] %s" Srcloc.pp t.loc
    (severity_label t.severity)
    t.phase t.message

let to_string t = Format.asprintf "%a" pp t

let errorf ?(loc = Srcloc.dummy) ~phase message =
  raise (Compile_error { severity = Error; loc; phase; message })

let error ?(loc = Srcloc.dummy) ~phase fmt =
  Format.kasprintf (fun message -> errorf ~loc ~phase message) fmt

let warning ?(loc = Srcloc.dummy) ~phase message =
  { severity = Warning; loc; phase; message }

let () =
  Printexc.register_printer (function
    | Compile_error t -> Some (to_string t)
    | _ -> None)
