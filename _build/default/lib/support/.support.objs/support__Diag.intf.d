lib/support/diag.mli: Format Srcloc
