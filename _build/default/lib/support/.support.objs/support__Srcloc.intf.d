lib/support/srcloc.mli: Format
