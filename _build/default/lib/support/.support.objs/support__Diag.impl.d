lib/support/diag.ml: Format Printexc Srcloc
