lib/support/srcloc.ml: Format
