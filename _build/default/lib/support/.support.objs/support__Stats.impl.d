lib/support/stats.ml: Buffer List String
