lib/support/vec.mli:
