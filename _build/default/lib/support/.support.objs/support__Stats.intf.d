lib/support/stats.mli:
