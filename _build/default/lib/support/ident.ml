type t = { base : string; stamp : int }

let counter = ref 0

let fresh base =
  incr counter;
  { base; stamp = !counter }

let name t = Printf.sprintf "%s#%d" t.base t.stamp

let base t = t.base

let compare a b =
  let c = Int.compare a.stamp b.stamp in
  if c <> 0 then c else String.compare a.base b.base

let equal a b = a.stamp = b.stamp && String.equal a.base b.base

let hash t = Hashtbl.hash (t.base, t.stamp)

let pp ppf t = Format.fprintf ppf "%s" (name t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hash = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Tbl = Hashtbl.Make (Hash)
