(** Compiler diagnostics.

    Every frontend and backend phase reports problems through this
    module so that messages carry a location, a severity and a phase
    tag, matching the paper's requirement that e.g. an undiscoverable
    task-graph shape inside relocation brackets is reported "at compile
    time with an appropriate error message". *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  loc : Srcloc.t;
  phase : string;   (** e.g. "parse", "typecheck", "gpu-backend" *)
  message : string;
}

exception Compile_error of t
(** Raised by phases that cannot continue. *)

val error : ?loc:Srcloc.t -> phase:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error ~loc ~phase fmt ...] raises {!Compile_error}. *)

val errorf : ?loc:Srcloc.t -> phase:string -> string -> 'a
(** Non-format variant of {!error}. *)

val warning : ?loc:Srcloc.t -> phase:string -> string -> t
(** Builds a warning value (callers collect them). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
