(* End-to-end tests through the public Lm facade: compile Lime source
   with all backends, co-execute under different substitution policies,
   and require every configuration to produce identical results — the
   paper's core property that artifacts are semantic equivalents. *)

open Liquid_metal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_fig1_end_to_end () =
  let s = Lm.load Test_syntax.figure1_source in
  let input = Lm.bits "101010101" in
  let r = Lm.run s "Bitflip.taskFlip" [ input ] in
  check_string "taskFlip co-executed" "010101010" (Lm.as_bits_literal r);
  let r2 = Lm.run s "Bitflip.mapFlip" [ input ] in
  check_string "mapFlip" "010101010" (Lm.as_bits_literal r2)

let test_fig1_artifacts_generated () =
  let s = Lm.load Test_syntax.figure1_source in
  let m = Lm.manifest s in
  (* flip is pure, scalar, straight-line: both backends accept it, and
     the map site gets a GPU kernel too. *)
  let devices =
    List.map (fun e -> e.Runtime.Artifact.me_device) m.entries
  in
  check_bool "has gpu artifact" true (List.mem Runtime.Artifact.Gpu devices);
  check_bool "has fpga artifact" true (List.mem Runtime.Artifact.Fpga devices);
  check_int "no exclusions for figure 1" 0 (List.length m.exclusions)

let test_policies_agree () =
  let input = Lm.bits "110010111010110" in
  let run policy =
    let s = Lm.load ~policy Test_syntax.figure1_source in
    Lm.as_bits_literal (Lm.run s "Bitflip.taskFlip" [ input ])
  in
  let bytecode = run Runtime.Substitute.Bytecode_only in
  let accel = run Runtime.Substitute.Prefer_accelerators in
  let fpga = run (Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ]) in
  let small = run Runtime.Substitute.Smallest_substitution in
  check_string "accelerator = bytecode" bytecode accel;
  check_string "fpga = bytecode" bytecode fpga;
  check_string "smallest = bytecode" bytecode small

let test_plan_reflects_policy () =
  let input = Lm.bits "1010" in
  let s = Lm.load ~policy:Runtime.Substitute.Bytecode_only Test_syntax.figure1_source in
  ignore (Lm.run s "Bitflip.taskFlip" [ input ]);
  check_string "bytecode plan" "bytecode(1)" (Option.get (Lm.last_plan s));
  Lm.set_policy s Runtime.Substitute.Prefer_accelerators;
  ignore (Lm.run s "Bitflip.taskFlip" [ input ]);
  check_string "accelerated plan" "gpu(1)" (Option.get (Lm.last_plan s))

let test_metrics_account_devices () =
  let s = Lm.load Test_syntax.figure1_source in
  Lm.reset_metrics s;
  ignore (Lm.run s "Bitflip.taskFlip" [ Lm.bits "10101010" ]);
  let m = Lm.metrics s in
  check_bool "vm ran host code" true (m.vm_instructions > 0);
  check_int "one gpu kernel" 1 m.gpu_kernels;
  check_bool "kernel time modeled" true (m.gpu_kernel_ns > 0.0);
  check_bool "marshaling crossed the boundary" true
    (m.marshal.crossings_to_device > 0 && m.marshal.crossings_to_host > 0);
  check_bool "substitution recorded" true (m.substitutions <> [])

let test_fpga_direction_uses_rtl () =
  let s =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ])
      Test_syntax.figure1_source
  in
  Lm.reset_metrics s;
  ignore (Lm.run s "Bitflip.taskFlip" [ Lm.bits "101010101" ]);
  let m = Lm.metrics s in
  check_int "one fpga run" 1 m.fpga_runs;
  check_bool "cycles counted" true (m.fpga_cycles > 0);
  check_int "no gpu kernels" 0 m.gpu_kernels

(* A multi-stage pipeline mixing suitable and unsuitable filters. *)
let mixed_src =
  {|
class P {
  local static int dbl(int x) { return x * 2; }
  local static int inc(int x) { return x + 1; }
  local static int weird(int x) {
    int acc = 0;
    while (acc < x) {
      acc = acc + 3;
    }
    return acc;
  }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1)
      => ([ task dbl ]) => ([ task weird ]) => ([ task inc ])
      => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}

let test_mixed_pipeline () =
  let s = Lm.load mixed_src in
  let xs = Lm.int_array [| 1; 5; 10 |] in
  let r = Lm.run s "P.run" [ xs ] in
  (* dbl: 2,10,20; weird: ceil to multiple of 3: 3,12,21; inc: 4,13,22 *)
  Alcotest.(check (array int)) "values" [| 4; 13; 22 |] (Lm.as_int_array r);
  (* weird has a loop: excluded by the FPGA backend, accepted by GPU. *)
  let m = Lm.manifest s in
  check_bool "fpga excluded the loop filter" true
    (List.exists
       (fun (x : Runtime.Artifact.exclusion) ->
         x.ex_device = Runtime.Artifact.Fpga
         && Test_types.contains x.ex_reason "FSM")
       m.exclusions)

let test_stateful_pipeline_fpga () =
  (* A stateful accumulator filter: FPGA-suitable (fields become
     registers), GPU-excluded. *)
  let src =
    {|
class Acc {
  int total;
  local Acc(int start) { total = start; }
  local int push(int x) { total += x; return total; }
}
class Main {
  static int[[]] prefixSums(int[[]] xs) {
    int[] out = new int[xs.length];
    var acc = new Acc(0);
    var g = xs.source(1) => ([ task acc.push ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  let s =
    Lm.load ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ])
      src
  in
  let r = Lm.run s "Main.prefixSums" [ Lm.int_array [| 1; 2; 3; 4 |] ] in
  Alcotest.(check (array int)) "prefix sums on fpga" [| 1; 3; 6; 10 |]
    (Lm.as_int_array r);
  let m = Lm.metrics s in
  check_int "ran on the rtl simulator" 1 m.fpga_runs

let test_map_offload_to_gpu () =
  let src =
    {|
class M {
  local static float axpy(float a, float x, float y) { return a * x + y; }
  static float[[]] saxpy(float a, float[[]] xs, float[[]] ys) {
    return M @ axpy(a, xs, ys);
  }
}
|}
  in
  let s = Lm.load src in
  Lm.reset_metrics s;
  let xs = Lm.float_array [| 1.0; 2.0; 3.0 |] in
  let ys = Lm.float_array [| 10.0; 20.0; 30.0 |] in
  let r = Lm.run s "M.saxpy" [ Lm.float 2.0; xs; ys ] in
  Alcotest.(check (array (float 0.0)))
    "saxpy" [| 12.0; 24.0; 36.0 |] (Lm.as_float_array r);
  let m = Lm.metrics s in
  check_int "map ran as a gpu kernel" 1 m.gpu_kernels;
  (* identical result without the GPU *)
  Lm.set_policy s Runtime.Substitute.Bytecode_only;
  let r2 = Lm.run s "M.saxpy" [ Lm.float 2.0; xs; ys ] in
  Alcotest.(check (array (float 0.0)))
    "bytecode agrees" (Lm.as_float_array r) (Lm.as_float_array r2)

let test_reduce_offload_to_gpu () =
  let src =
    {|
class R {
  local static int add(int a, int b) { return a + b; }
  static int sum(int[[]] xs) { return R @@ add(xs); }
}
|}
  in
  let s = Lm.load src in
  Lm.reset_metrics s;
  let r = Lm.run s "R.sum" [ Lm.int_array (Array.init 100 (fun i -> i)) ] in
  check_int "sum" 4950 (Lm.as_int r);
  check_int "reduce kernel" 1 (Lm.metrics s).gpu_kernels

let test_opencl_artifact_text () =
  let s = Lm.load Test_syntax.figure1_source in
  let store = Runtime.Exec.store (Lm.engine s) in
  let gpu_texts =
    List.filter_map
      (fun (e : Runtime.Artifact.manifest_entry) ->
        if e.me_device = Runtime.Artifact.Gpu then
          match Runtime.Store.find_on store ~uid:e.me_uid ~device:e.me_device with
          | Some (Runtime.Artifact.Gpu_kernel g) -> Some g.ga_opencl
          | _ -> None
        else None)
      (Lm.manifest s).entries
  in
  check_bool "opencl sources exist" true (gpu_texts <> []);
  List.iter
    (fun text ->
      check_bool "has __kernel" true (Test_types.contains text "__kernel");
      check_bool "has get_global_id" true
        (Test_types.contains text "get_global_id"))
    gpu_texts

let test_verilog_artifact_text () =
  let s = Lm.load Test_syntax.figure1_source in
  let store = Runtime.Exec.store (Lm.engine s) in
  let texts =
    List.filter_map
      (fun (e : Runtime.Artifact.manifest_entry) ->
        if e.me_device = Runtime.Artifact.Fpga then
          match Runtime.Store.find_on store ~uid:e.me_uid ~device:e.me_device with
          | Some (Runtime.Artifact.Fpga_module f) -> Some f.fa_verilog
          | _ -> None
        else None)
      (Lm.manifest s).entries
  in
  check_bool "verilog sources exist" true (texts <> []);
  List.iter
    (fun text ->
      check_bool "has module" true (Test_types.contains text "module");
      check_bool "has fifo" true (Test_types.contains text "lm_fifo");
      check_bool "read/compute/publish FSM" true
        (Test_types.contains text "PUBLISH"))
    texts

let test_compile_phases_reported () =
  let c = Compiler.compile Test_syntax.figure1_source in
  let names = List.map fst c.phase_seconds in
  List.iter
    (fun phase ->
      check_bool (phase ^ " present") true (List.mem phase names))
    [ "parse"; "typecheck"; "lower"; "bytecode-backend"; "gpu-backend";
      "fpga-backend" ]

let suite =
  ( "liquid-metal",
    [
      Alcotest.test_case "figure 1 end to end" `Quick test_fig1_end_to_end;
      Alcotest.test_case "figure 1 artifacts" `Quick test_fig1_artifacts_generated;
      Alcotest.test_case "all policies agree" `Quick test_policies_agree;
      Alcotest.test_case "plan reflects policy" `Quick test_plan_reflects_policy;
      Alcotest.test_case "metrics account devices" `Quick
        test_metrics_account_devices;
      Alcotest.test_case "fpga direction uses rtl" `Quick
        test_fpga_direction_uses_rtl;
      Alcotest.test_case "mixed pipeline" `Quick test_mixed_pipeline;
      Alcotest.test_case "stateful pipeline on fpga" `Quick
        test_stateful_pipeline_fpga;
      Alcotest.test_case "map offload" `Quick test_map_offload_to_gpu;
      Alcotest.test_case "reduce offload" `Quick test_reduce_offload_to_gpu;
      Alcotest.test_case "opencl artifact text" `Quick test_opencl_artifact_text;
      Alcotest.test_case "verilog artifact text" `Quick test_verilog_artifact_text;
      Alcotest.test_case "compile phases" `Quick test_compile_phases_reported;
    ] )
