(* Lowering + reference-interpreter tests: these pin down the semantic
   oracle all backends are compared against, using Figure 1 and other
   small programs. *)

open Lime_ir
module V = Wire.Value

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let compile src =
  Lower.lower (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"t" src))

let prim v = Interp.Prim v

let bits_of_literal s = V.Bits (Bits.Bitvec.of_literal s)

let as_bits = function
  | Interp.Prim (V.Bits b) -> b
  | v -> Alcotest.failf "expected a bit array, got %a" Interp.pp v

let fig1 = compile Test_syntax.figure1_source

let test_fig1_mapflip () =
  (* The paper states mapFlip(100b) = 001b, but under its own literal
     convention (100b has bit[0]=0, bit[2]=1, i.e. [0;0;1]) an
     elementwise flip yields [1;1;0], which prints as 011b; 001b is
     unreachable under any consistent convention, so we treat it as an
     erratum (see EXPERIMENTS.md) and check the consistent result. *)
  let r = Interp.call fig1 "Bitflip.mapFlip" [ prim (bits_of_literal "100") ] in
  check_string "mapFlip(100b)" "011" (Bits.Bitvec.to_literal (as_bits r))

let test_fig1_taskflip () =
  (* The task-graph version computes the same function (section 2.2),
     driven with the 9 input bits of Figure 4. *)
  let input = "101010101" in
  let r = Interp.call fig1 "Bitflip.taskFlip" [ prim (bits_of_literal input) ] in
  check_string "taskFlip" "010101010" (Bits.Bitvec.to_literal (as_bits r));
  let r2 = Interp.call fig1 "Bitflip.mapFlip" [ prim (bits_of_literal input) ] in
  Alcotest.(check bool)
    "agrees with mapFlip" true
    (Bits.Bitvec.equal (as_bits r) (as_bits r2))

let test_fig1_flip_scalar () =
  match Interp.call fig1 "Bitflip.flip" [ prim (V.Bit false) ] with
  | Interp.Prim (V.Bit true) -> ()
  | v -> Alcotest.failf "flip(zero) = %a" Interp.pp v

let test_templates_registered () =
  check_int "one task graph template" 1 (Ir.String_map.cardinal fig1.templates);
  let sites = Ir.filter_sites fig1 in
  check_int "one filter site" 1 (List.length sites);
  match sites with
  | [ (_, f) ] ->
    Alcotest.(check bool) "relocatable" true f.Ir.relocatable;
    (match f.Ir.target with
    | Ir.F_static "Bitflip.flip" -> ()
    | _ -> Alcotest.fail "wrong filter target");
    Alcotest.(check string) "ports" "bit"
      (Ir.ty_to_string f.Ir.input)
  | _ -> Alcotest.fail "unreachable"

let test_map_sites_registered () =
  match Ir.kernel_sites fig1 with
  | [ `Map m ] ->
    Alcotest.(check string) "map fn" "Bitflip.flip" m.Ir.map_fn
  | _ -> Alcotest.fail "expected exactly one map site"

let sum_src =
  {|
class Sum {
  local static int add(int a, int b) { return a + b; }
  local static int sq(int x) { return x * x; }
  static int sumOfSquares(int[[]] xs) {
    var squared = Sum @ sq(xs);
    return Sum @@ add(squared);
  }
  static int loopSum(int[[]] xs) {
    int acc = 0;
    for (int i = 0; i < xs.length; i++) {
      acc += xs[i];
    }
    return acc;
  }
}
|}

let test_map_reduce_ints () =
  let p = compile sum_src in
  let xs = prim (V.Int_array [| 1; 2; 3; 4 |]) in
  (match Interp.call p "Sum.sumOfSquares" [ xs ] with
  | Interp.Prim (V.Int 30) -> ()
  | v -> Alcotest.failf "sumOfSquares = %a" Interp.pp v);
  match Interp.call p "Sum.loopSum" [ xs ] with
  | Interp.Prim (V.Int 10) -> ()
  | v -> Alcotest.failf "loopSum = %a" Interp.pp v

let test_int_overflow_wraps () =
  let p =
    compile
      {|
class C {
  local static int f(int x) { return x * 2; }
}
|}
  in
  match Interp.call p "C.f" [ prim (V.Int 2000000000) ] with
  | Interp.Prim (V.Int n) -> check_int "wraps like Java" (-294967296) n
  | v -> Alcotest.failf "got %a" Interp.pp v

let test_float_is_f32 () =
  let p =
    compile
      {|
class C {
  local static float f(float x) { return x + 0.1; }
}
|}
  in
  match Interp.call p "C.f" [ prim (V.Float 0.0) ] with
  | Interp.Prim (V.Float f) ->
    Alcotest.(check (float 0.0)) "single precision" (V.f32 0.1) f
  | v -> Alcotest.failf "got %a" Interp.pp v

let test_stateful_instance () =
  let p =
    compile
      {|
class Counter {
  int count;
  local Counter(int start) { count = start; }
  local int tick(int by) { count += by; return count; }
}
class Main {
  static int run() {
    var c = new Counter(10);
    c.tick(1);
    c.tick(2);
    return c.tick(3);
  }
}
|}
  in
  match Interp.call p "Main.run" [] with
  | Interp.Prim (V.Int 16) -> ()
  | v -> Alcotest.failf "got %a" Interp.pp v

let test_stateful_task_graph () =
  (* A running-sum filter: pipeline state must persist across
     elements (pipeline parallelism, paper section 2.1). *)
  let p =
    compile
      {|
class Acc {
  int total;
  local Acc(int start) { total = start; }
  local int push(int x) { total += x; return total; }
}
class Main {
  static int[[]] prefixSums(int[[]] xs) {
    int[] out = new int[xs.length];
    var acc = new Acc(0);
    var g = xs.source(1) => ([ task acc.push ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  match Interp.call p "Main.prefixSums" [ prim (V.Int_array [| 1; 2; 3; 4 |]) ] with
  | Interp.Prim (V.Int_array [| 1; 3; 6; 10 |]) -> ()
  | v -> Alcotest.failf "got %a" Interp.pp v

let test_multi_filter_pipeline () =
  let p =
    compile
      {|
class P {
  local static int dbl(int x) { return x * 2; }
  local static int inc(int x) { return x + 1; }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1) => ([ task dbl ]) => ([ task inc ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  match Interp.call p "P.run" [ prim (V.Int_array [| 1; 2; 3 |]) ] with
  | Interp.Prim (V.Int_array [| 3; 5; 7 |]) -> ()
  | v -> Alcotest.failf "got %a" Interp.pp v

let test_runtime_errors () =
  let p =
    compile
      {|
class C {
  local static int get(int[[]] xs, int i) { return xs[i]; }
  local static int div(int a, int b) { return a / b; }
}
|}
  in
  (match Interp.call p "C.get" [ prim (V.Int_array [| 1 |]); prim (V.Int 5) ] with
  | exception Interp.Runtime_error _ -> ()
  | v -> Alcotest.failf "expected bounds error, got %a" Interp.pp v);
  match Interp.call p "C.div" [ prim (V.Int 1); prim (V.Int 0) ] with
  | exception Interp.Runtime_error _ -> ()
  | v -> Alcotest.failf "expected division by zero, got %a" Interp.pp v

let test_undiscoverable_shape_rejected () =
  (* A graph whose shape depends on control flow cannot be discovered
     statically; the paper requires a compile-time error. *)
  let src =
    {|
class C {
  local static int f(int x) { return x; }
  local static int g(int x) { return x + 1; }
  static void run(int[[]] xs, boolean which) {
    int[] out = new int[xs.length];
    var t = (task f);
    if (which) {
      t = (task g);
    }
    var gg = xs.source(1) => t => out.<int>sink();
    gg.finish();
  }
}
|}
  in
  match compile src with
  | exception Support.Diag.Compile_error _ -> ()
  | _ -> Alcotest.fail "expected a shape-discovery error"

let test_enum_user_methods () =
  let p =
    compile
      {|
value enum dir { north, east, south, west;
  public dir clockwise() {
    return this == north ? east
         : this == east ? south
         : this == south ? west : north;
  }
}
class C {
  local static dir turnTwice(dir d) {
    return d.clockwise().clockwise();
  }
}
|}
  in
  match
    Interp.call p "C.turnTwice" [ prim (V.Enum { enum = "dir"; tag = 0 }) ]
  with
  | Interp.Prim (V.Enum { tag = 2; _ }) -> ()
  | v -> Alcotest.failf "got %a" Interp.pp v

let suite =
  ( "lime-ir",
    [
      Alcotest.test_case "figure 1 mapFlip" `Quick test_fig1_mapflip;
      Alcotest.test_case "figure 1 taskFlip" `Quick test_fig1_taskflip;
      Alcotest.test_case "figure 1 flip scalar" `Quick test_fig1_flip_scalar;
      Alcotest.test_case "graph templates registered" `Quick
        test_templates_registered;
      Alcotest.test_case "map sites registered" `Quick test_map_sites_registered;
      Alcotest.test_case "map and reduce over ints" `Quick test_map_reduce_ints;
      Alcotest.test_case "int overflow wraps" `Quick test_int_overflow_wraps;
      Alcotest.test_case "floats are single precision" `Quick test_float_is_f32;
      Alcotest.test_case "stateful instances" `Quick test_stateful_instance;
      Alcotest.test_case "stateful task graph" `Quick test_stateful_task_graph;
      Alcotest.test_case "multi-filter pipeline" `Quick test_multi_filter_pipeline;
      Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
      Alcotest.test_case "undiscoverable shape rejected" `Quick
        test_undiscoverable_shape_rejected;
      Alcotest.test_case "user enum methods" `Quick test_enum_user_methods;
    ] )
