(* Math intrinsic tests: semantics, cross-engine agreement, backend
   treatment (OpenCL/C spellings, FPGA exclusion). *)

module Lm = Liquid_metal.Lm
module I = Lime_ir.Interp
module In = Lime_ir.Intrinsics
module V = Wire.Value

let check_bool = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let test_recognition () =
  check_bool "sqrt" true (In.is_intrinsic "Math.sqrt");
  check_bool "pow" true (In.is_intrinsic "Math.pow");
  check_bool "not a method" false (In.is_intrinsic "Math.nope");
  check_bool "not Math" false (In.is_intrinsic "Maths.sqrt");
  check_bool "plain fn" false (In.is_intrinsic "C.f")

let test_apply_semantics () =
  (match In.apply "Math.sqrt" [ V.Float 9.0 ] with
  | V.Float f -> checkf "sqrt 9" 3.0 f
  | _ -> Alcotest.fail "sqrt");
  (match In.apply "Math.pow" [ V.Float 2.0; V.Float 10.0 ] with
  | V.Float f -> checkf "pow" 1024.0 f
  | _ -> Alcotest.fail "pow");
  (* results are f32-rounded *)
  (match In.apply "Math.log" [ V.Float 10.0 ] with
  | V.Float f -> check_bool "f32" true (f = V.f32 f)
  | _ -> Alcotest.fail "log");
  match In.apply "Math.sqrt" [ V.Int 9 ] with
  | exception In.Error _ -> ()
  | _ -> Alcotest.fail "expected arity/type error"

let hypot_src =
  {|
class G {
  local static float hypot(float x, float y) {
    return Math.sqrt(x * x + y * y);
  }
  static float[[]] run(float[[]] xs, float[[]] ys) {
    return G @ hypot(xs, ys);
  }
}
|}

let test_engines_agree_on_intrinsics () =
  let xs = Lm.float_array [| 3.0; 5.0; 8.0 |] in
  let ys = Lm.float_array [| 4.0; 12.0; 15.0 |] in
  let run policy =
    let s = Lm.load ~policy hypot_src in
    Lm.as_float_array (Lm.run s "G.run" [ xs; ys ])
  in
  let bc = run Runtime.Substitute.Bytecode_only in
  Alcotest.(check (array (float 1e-4))) "values" [| 5.0; 13.0; 17.0 |] bc;
  Alcotest.(check (array (float 0.0))) "gpu identical" bc
    (run Runtime.Substitute.Prefer_accelerators);
  Alcotest.(check (array (float 0.0))) "native identical" bc
    (run (Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Native ]))

let test_opencl_spelling () =
  let s = Lm.load hypot_src in
  let store = Runtime.Exec.store (Lm.engine s) in
  let text =
    List.find_map
      (fun (e : Runtime.Artifact.manifest_entry) ->
        match Runtime.Store.find_on store ~uid:e.me_uid ~device:e.me_device with
        | Some (Runtime.Artifact.Gpu_kernel g) -> Some g.ga_opencl
        | _ -> None)
      (Lm.manifest s).entries
    |> Option.get
  in
  check_bool "plain sqrt in OpenCL" true (Test_types.contains text "sqrt(")

let fpga_excl_src =
  {|
class G {
  local static float soften(float x) {
    return Math.sqrt(x + 1.0);
  }
  static float[[]] run(float[[]] xs) {
    float[] out = new float[xs.length];
    var g = xs.source(1) => ([ task soften ]) => out.<float>sink();
    g.finish();
    return new float[[]](out);
  }
}
|}

let test_fpga_excludes_intrinsics () =
  let s = Lm.load fpga_excl_src in
  let m = Lm.manifest s in
  check_bool "fpga exclusion recorded" true
    (List.exists
       (fun (x : Runtime.Artifact.exclusion) ->
         x.ex_device = Runtime.Artifact.Fpga
         && Test_types.contains x.ex_reason "IP core")
       m.exclusions);
  (* and the pipeline still runs (on the GPU or bytecode) *)
  let r = Lm.run s "G.run" [ Lm.float_array [| 3.0; 8.0 |] ] in
  Alcotest.(check (array (float 1e-4))) "values" [| 2.0; 3.0 |]
    (Lm.as_float_array r)

let test_intrinsic_as_map_target () =
  let s =
    Lm.load
      {|
class M {
  static float[[]] roots(float[[]] xs) { return Math @ sqrt(xs); }
}
|}
  in
  let r = Lm.run s "M.roots" [ Lm.float_array [| 1.0; 4.0; 9.0 |] ] in
  Alcotest.(check (array (float 1e-5))) "roots" [| 1.0; 2.0; 3.0 |]
    (Lm.as_float_array r)

let test_blackscholes_smoke () =
  (* deep sanity: an at-the-money option with known ballpark price *)
  let w = Workloads.find "blackscholes" in
  let s = Lm.load w.Workloads.source in
  let r =
    Lm.run s "Bs.callPrice"
      [ Lm.float 100.0; Lm.float 100.0; Lm.float 1.0; Lm.float 0.02;
        Lm.float 0.30 ]
  in
  let price = Lm.as_float r in
  check_bool "plausible ATM price" true (price > 12.0 && price < 14.0)

let suite =
  ( "intrinsics",
    [
      Alcotest.test_case "recognition" `Quick test_recognition;
      Alcotest.test_case "apply semantics" `Quick test_apply_semantics;
      Alcotest.test_case "engines agree" `Quick test_engines_agree_on_intrinsics;
      Alcotest.test_case "opencl spelling" `Quick test_opencl_spelling;
      Alcotest.test_case "fpga excludes intrinsics" `Quick
        test_fpga_excludes_intrinsics;
      Alcotest.test_case "Math as map target" `Quick test_intrinsic_as_map_target;
      Alcotest.test_case "blackscholes sanity" `Quick test_blackscholes_smoke;
    ] )
