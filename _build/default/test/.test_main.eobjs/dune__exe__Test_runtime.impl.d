test/test_runtime.ml: Actor Alcotest Array Artifact Lime_ir List Runtime Scheduler Store Substitute Wire
