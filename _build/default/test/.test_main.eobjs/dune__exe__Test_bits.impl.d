test/test_bits.ml: Alcotest Array Bits Bitvec Bytes List QCheck2 QCheck_alcotest String
