test/test_wire.ml: Alcotest Array Bits Boundary Buffer_io Bytes Codec List QCheck2 QCheck_alcotest Value Wire
