test/test_pretty.ml: Alcotest Lime_ir Lime_syntax Lime_types List Parser Pretty Printf QCheck2 QCheck_alcotest Support Test_bytecode Test_ir Test_syntax Wire Workloads
