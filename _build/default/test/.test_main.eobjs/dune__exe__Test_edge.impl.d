test/test_edge.ml: Alcotest Array Lime_ir Lime_syntax Lime_types Liquid_metal List Printf Runtime Support Wire Workloads
