test/test_types.ml: Alcotest Lime_syntax Lime_types List Option String Support Tast Test_syntax Typecheck
