test/test_intrinsics.ml: Alcotest Lime_ir Liquid_metal List Option Runtime Test_types Wire Workloads
