test/test_support.ml: Alcotest Array Diag Ident List QCheck2 QCheck_alcotest Srcloc Stats String Support Test_types Vec
