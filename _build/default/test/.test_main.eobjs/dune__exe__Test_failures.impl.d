test/test_failures.ml: Alcotest Bytecode Gpu Lime_ir Lime_syntax Lime_types Liquid_metal List Rtl Runtime Support Test_syntax Test_types Wire
