test/test_native.ml: Alcotest Liquid_metal List Option Runtime Test_types Wire Workloads
