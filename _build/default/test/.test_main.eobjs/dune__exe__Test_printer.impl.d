test/test_printer.ml: Alcotest Lime_ir Lime_syntax Lime_types List Test_syntax Test_types
