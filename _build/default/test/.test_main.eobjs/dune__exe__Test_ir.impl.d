test/test_ir.ml: Alcotest Bits Interp Ir Lime_ir Lime_syntax Lime_types List Lower Support Test_syntax Wire
