test/test_rtl.ml: Alcotest Array Bits Char Lime_ir Lime_syntax Lime_types List QCheck2 QCheck_alcotest Rtl String Test_syntax Test_types Wire
