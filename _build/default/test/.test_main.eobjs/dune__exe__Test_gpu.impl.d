test/test_gpu.ml: Alcotest Array Gpu Lime_ir Lime_syntax Lime_types List QCheck2 QCheck_alcotest Test_types Wire
