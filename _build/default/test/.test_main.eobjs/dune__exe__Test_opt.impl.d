test/test_opt.ml: Alcotest Bits Bytecode Lime_ir Lime_syntax Lime_types Lower Opt QCheck2 QCheck_alcotest Test_bytecode Test_syntax Wire
