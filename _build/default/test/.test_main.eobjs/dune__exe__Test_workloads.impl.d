test/test_workloads.ml: Alcotest Array Liquid_metal List Runtime Wire Workloads
