test/test_fuzz.ml: Bytecode Lime_ir Lime_syntax Lime_types List Printf QCheck2 QCheck_alcotest String Support Wire
