test/test_syntax.ml: Alcotest Ast Lexer Lime_syntax List Parser Printf Support Token
