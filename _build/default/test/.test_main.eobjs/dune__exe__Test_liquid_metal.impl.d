test/test_liquid_metal.ml: Alcotest Array Compiler Liquid_metal List Lm Option Runtime Test_syntax Test_types
