test/test_bytecode.ml: Alcotest Bits Bytecode Lime_ir Lime_syntax Lime_types QCheck2 QCheck_alcotest Test_ir Test_syntax Test_types Wire
