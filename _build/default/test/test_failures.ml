(* Failure injection: dynamic errors must surface as errors (never
   wrong answers or hangs) on every execution path, and malformed API
   use must be rejected. *)

module Lm = Liquid_metal.Lm
module I = Lime_ir.Interp
module V = Wire.Value

let check_bool = Alcotest.(check bool)

(* A pipeline whose filter traps on a specific element. *)
let trapping_src =
  {|
class P {
  local static int risky(int x) {
    return 100 / (x - 5);
  }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1) => ([ task risky ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}

let traps f =
  match f () with
  | exception I.Runtime_error _ -> true
  | exception Bytecode.Vm.Vm_error _ -> true
  | exception Gpu.Simt.Device_error _ -> true
  | exception Rtl.Sim.Simulation_error _ -> true
  | _ -> false

let test_filter_trap_propagates_per_policy () =
  let bad = Lm.int_array [| 1; 2; 5; 9 |] in
  let good = Lm.int_array [| 1; 2; 6; 9 |] in
  List.iter
    (fun policy ->
      let s = Lm.load ~policy trapping_src in
      check_bool "trap surfaces" true (traps (fun () -> Lm.run s "P.run" [ bad ]));
      (* and the engine still works afterwards *)
      match Lm.run s "P.run" [ good ] with
      | I.Prim (V.Int_array [| -25; -33; 100; 25 |]) -> ()
      | v -> Alcotest.failf "bad recovery result %s" (Lm.show v))
    [
      Runtime.Substitute.Bytecode_only;
      Runtime.Substitute.Prefer_accelerators;
      Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ];
      Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Native ];
    ]

let test_map_trap_propagates () =
  let src =
    {|
class M {
  local static int inv(int x) { return 1000 / x; }
  static int[[]] run(int[[]] xs) { return M @ inv(xs); }
}
|}
  in
  List.iter
    (fun policy ->
      let s = Lm.load ~policy src in
      check_bool "map trap surfaces" true
        (traps (fun () -> Lm.run s "M.run" [ Lm.int_array [| 4; 0; 2 |] ])))
    [ Runtime.Substitute.Bytecode_only; Runtime.Substitute.Prefer_accelerators ]

let test_sink_too_small () =
  let src =
    {|
class S {
  local static int id(int x) { return x; }
  static void run(int[[]] xs) {
    int[] out = new int[2];
    var g = xs.source(1) => ([ task id ]) => out.<int>sink();
    g.finish();
  }
}
|}
  in
  let s = Lm.load ~policy:Runtime.Substitute.Bytecode_only src in
  check_bool "overflowing sink traps" true
    (traps (fun () -> Lm.run s "S.run" [ Lm.int_array [| 1; 2; 3 |] ]))

let test_unknown_entry_point () =
  let s = Lm.load "class C { local static int f(int x) { return x; } }" in
  check_bool "unknown entry" true (traps (fun () -> Lm.run s "C.nope" []))

let test_wrong_arity () =
  let s = Lm.load "class C { local static int f(int x) { return x; } }" in
  check_bool "wrong arity" true (traps (fun () -> Lm.run s "C.f" []))

let test_negative_array_length () =
  let s =
    Lm.load
      "class C { local static int f(int n) { int[] a = new int[n]; return \
       a.length; } }"
  in
  check_bool "negative length traps" true
    (traps (fun () -> Lm.run s "C.f" [ Lm.int (-3) ]));
  match Lm.run s "C.f" [ Lm.int 4 ] with
  | I.Prim (V.Int 4) -> ()
  | v -> Alcotest.failf "got %s" (Lm.show v)

let test_infinite_rtl_guard () =
  (* A wedged netlist must hit the cycle guard, not hang. *)
  let prog =
    Lime_ir.Lower.lower
      (Lime_types.Typecheck.check
         (Lime_syntax.Parser.parse ~file:"t" Test_syntax.figure1_source))
  in
  let filters = List.map snd (Lime_ir.Ir.filter_sites prog) in
  let pl =
    Rtl.Synth.pipeline_of_chain prog ~name:"guard"
      (List.map (fun f -> f, None) filters)
  in
  match
    Rtl.Sim.run ~max_cycles:5 prog pl
      (List.init 50 (fun _ -> V.Bit true))
  with
  | exception Rtl.Sim.Simulation_error _ -> ()
  | _ -> Alcotest.fail "expected the max-cycles guard to fire"

let test_stale_source_text_error_quality () =
  (* Frontend errors carry location and phase. *)
  match Lm.load "class C { local static int f(int x) { return y; } }" with
  | exception Support.Diag.Compile_error d ->
    check_bool "has phase" true (d.phase = "typecheck");
    check_bool "mentions name" true (Test_types.contains d.message "y");
    check_bool "has location" true (d.loc.line > 0)
  | _ -> Alcotest.fail "expected a compile error"

let suite =
  ( "failures",
    [
      Alcotest.test_case "filter trap propagates (all policies)" `Quick
        test_filter_trap_propagates_per_policy;
      Alcotest.test_case "map trap propagates" `Quick test_map_trap_propagates;
      Alcotest.test_case "sink too small" `Quick test_sink_too_small;
      Alcotest.test_case "unknown entry" `Quick test_unknown_entry_point;
      Alcotest.test_case "wrong arity" `Quick test_wrong_arity;
      Alcotest.test_case "negative array length" `Quick test_negative_array_length;
      Alcotest.test_case "rtl cycle guard" `Quick test_infinite_rtl_guard;
      Alcotest.test_case "frontend error quality" `Quick
        test_stale_source_text_error_quality;
    ] )
