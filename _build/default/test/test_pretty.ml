(* Pretty-printer tests: print/reparse roundtrips on every program in
   the repository plus randomly generated expressions, and a semantic
   fuzz comparing the original and reprinted programs end to end. *)

module I = Lime_ir.Interp
module V = Wire.Value
open Lime_syntax

let check_bool = Alcotest.(check bool)

let parse src = Parser.parse ~file:"pp" src

let roundtrip_program src =
  let p1 = parse src in
  let printed = Pretty.program_to_string p1 in
  let p2 =
    try parse printed
    with Support.Diag.Compile_error d ->
      Alcotest.failf "reparse failed: %s\n--- printed ---\n%s"
        (Support.Diag.to_string d) printed
  in
  if Pretty.strip_locations p1 <> Pretty.strip_locations p2 then
    Alcotest.failf "roundtrip changed the AST\n--- printed ---\n%s" printed

let test_roundtrip_figure1 () = roundtrip_program Test_syntax.figure1_source

let test_roundtrip_workloads () =
  List.iter
    (fun (w : Workloads.t) -> roundtrip_program w.source)
    Workloads.all

let test_roundtrip_misc () =
  List.iter roundtrip_program
    [
      Test_ir.sum_src;
      Test_bytecode.mix_src;
      {|
class Edge {
  local static float mixed(int i, float f) {
    return i + f * 2 - 0.5;
  }
  local static int shifty(int x) {
    return (x << 3 >> 1 & 255 | 16) ^ 42;
  }
  local static boolean logic(int a, int b) {
    return a < b && (a != 0 || b >= 10);
  }
  static void uninit() {
    int x;
    float y;
    x++;
    y += 1.5;
  }
}
|};
    ]

let test_expr_printing () =
  let cases =
    [
      "1 + 2 * 3", "(1 + (2 * 3))";
      "a[i]", "a[i]";
      "x.length", "x.length";
      "~b", "~b";
      "bit.zero", "bit.zero";
      "new bit[n]", "new bit[n]";
      "new bit[[]](r)", "new bit[[]](r)";
    ]
  in
  List.iter
    (fun (src, expected) ->
      Alcotest.(check string)
        src expected
        (Pretty.expr_to_string (Parser.parse_expr_string src)))
    cases

(* Random expression generator over a fixed environment: int variables
   a, b and float variable f. Returns (source text, is_int). *)
let gen_int_expr =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              map string_of_int (int_range 0 1000);
              oneofl [ "a"; "b" ];
            ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map2 (fun x y -> Printf.sprintf "(%s + %s)" x y) sub sub;
              map2 (fun x y -> Printf.sprintf "(%s - %s)" x y) sub sub;
              map2 (fun x y -> Printf.sprintf "(%s * %s)" x y) sub sub;
              map2
                (fun x y -> Printf.sprintf "(%s / (1 + (%s & 7)))" x y)
                sub sub;
              map2 (fun x y -> Printf.sprintf "(%s ^ %s)" x y) sub sub;
              map (fun x -> Printf.sprintf "(~%s)" x) sub;
              map (fun x -> Printf.sprintf "(-%s)" x) sub;
              map3
                (fun c x y -> Printf.sprintf "(%s < %s ? %s : 7)" c x y)
                sub sub sub;
            ]))

(* For each random expression: the printed form of the parsed tree
   must reparse to the same tree, and the wrapped function must give
   identical results before and after printing. *)
let prop_random_expr_roundtrip =
  QCheck2.Test.make ~name:"pretty: random expression roundtrip" ~count:200
    gen_int_expr (fun src ->
      let e1 = Parser.parse_expr_string src in
      let printed = Pretty.expr_to_string e1 in
      let e2 = Parser.parse_expr_string printed in
      Pretty.expr_to_string e2 = printed)

let prop_random_expr_semantics =
  QCheck2.Test.make ~name:"pretty: reprinted programs compute the same"
    ~count:100
    QCheck2.Gen.(pair gen_int_expr (pair (int_range (-50) 50) (int_range (-50) 50)))
    (fun (body, (a, b)) ->
      let wrap body =
        Printf.sprintf
          "class F { local static int f(int a, int b) { return %s; } }" body
      in
      let compile src =
        Lime_ir.Lower.lower
          (Lime_types.Typecheck.check (Parser.parse ~file:"fuzz" src))
      in
      let p1 = compile (wrap body) in
      let printed =
        Pretty.program_to_string (Parser.parse ~file:"fuzz" (wrap body))
      in
      let p2 = compile printed in
      let args = [ I.Prim (V.Int a); I.Prim (V.Int b) ] in
      let run p = try Ok (I.call p "F.f" args) with I.Runtime_error m -> Error m in
      match run p1, run p2 with
      | Ok (I.Prim x), Ok (I.Prim y) -> V.equal x y
      | Error _, Error _ -> true
      | _ -> false)

let suite =
  ( "pretty",
    [
      Alcotest.test_case "figure 1 roundtrip" `Quick test_roundtrip_figure1;
      Alcotest.test_case "workload roundtrips" `Quick test_roundtrip_workloads;
      Alcotest.test_case "misc roundtrips" `Quick test_roundtrip_misc;
      Alcotest.test_case "expression printing" `Quick test_expr_printing;
      QCheck_alcotest.to_alcotest prop_random_expr_roundtrip;
      QCheck_alcotest.to_alcotest prop_random_expr_semantics;
    ] )
