(* Tests for the wire format: byte-stream IO, codecs, and the
   host/device boundary model (paper Figure 3). *)

open Wire

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let value_testable = Alcotest.testable Value.pp Value.equal

let test_writer_reader_scalars () =
  let w = Buffer_io.Writer.create () in
  Buffer_io.Writer.u8 w 0xab;
  Buffer_io.Writer.i32 w (-123456);
  Buffer_io.Writer.i64 w 0x1122334455667788L;
  Buffer_io.Writer.f64 w 3.25;
  Buffer_io.Writer.f32 w 1.5;
  let r = Buffer_io.Reader.of_bytes (Buffer_io.Writer.contents w) in
  check_int "u8" 0xab (Buffer_io.Reader.u8 r);
  check_int "i32" (-123456) (Buffer_io.Reader.i32 r);
  Alcotest.(check int64) "i64" 0x1122334455667788L (Buffer_io.Reader.i64 r);
  Alcotest.(check (float 0.0)) "f64" 3.25 (Buffer_io.Reader.f64 r);
  Alcotest.(check (float 0.0)) "f32" 1.5 (Buffer_io.Reader.f32 r);
  check_int "exhausted" 0 (Buffer_io.Reader.remaining r)

let test_reader_underflow () =
  let r = Buffer_io.Reader.of_bytes (Bytes.make 2 '\x00') in
  Alcotest.check_raises "underflow" Buffer_io.Reader.Underflow (fun () ->
      ignore (Buffer_io.Reader.i32 r))

let test_norm32 () =
  check_int "identity" 42 (Value.norm32 42);
  check_int "wrap max" (-2147483648) (Value.norm32 2147483648);
  check_int "wrap add" (-2147483648) (Value.add32 2147483647 1);
  check_int "mul wrap" 0 (Value.mul32 65536 65536);
  check_int "div toward zero" (-2) (Value.div32 (-7) 3);
  check_int "rem sign" (-1) (Value.rem32 (-7) 3);
  check_int "shl" 16 (Value.shl32 1 4);
  check_int "shl masks count" 2 (Value.shl32 1 33);
  check_int "shr arithmetic" (-1) (Value.shr32 (-2) 1);
  check_int "ushr" 0x7fffffff (Value.ushr32 (-1) 1)

let test_f32_idempotent () =
  let x = Value.f32 0.1 in
  Alcotest.(check (float 0.0)) "idempotent" x (Value.f32 x);
  check_bool "lossy vs double" true (x <> 0.1)

let roundtrip ty v =
  Alcotest.check value_testable
    (Codec.ty_to_string ty)
    v
    (Codec.decode_bytes ty (Codec.encode_bytes ty v))

let test_codec_roundtrips () =
  roundtrip Codec.W_unit Value.Unit;
  roundtrip Codec.W_bool (Value.Bool true);
  roundtrip Codec.W_int (Value.Int (-2147483648));
  roundtrip Codec.W_float (Value.Float (Value.f32 3.14159));
  roundtrip Codec.W_bit (Value.Bit true);
  roundtrip (Codec.W_enum "bit") (Value.Enum { enum = "bit"; tag = 1 });
  roundtrip Codec.W_bits (Value.Bits (Bits.Bitvec.of_literal "101010101"));
  roundtrip Codec.W_bits_boxed (Value.Bits (Bits.Bitvec.of_literal "110"));
  roundtrip (Codec.W_array Codec.W_int) (Value.Int_array [| 1; -2; 3 |]);
  roundtrip
    (Codec.W_array Codec.W_float)
    (Value.Float_array [| 0.5; -1.25; 1e10 |]);
  roundtrip (Codec.W_array Codec.W_bool) (Value.Bool_array [| true; false |]);
  roundtrip
    (Codec.W_array (Codec.W_enum "bit"))
    (Value.Array [| Value.Enum { enum = "bit"; tag = 0 } |]);
  roundtrip
    (Codec.W_tuple [ Codec.W_int; Codec.W_float ])
    (Value.Tuple [ Value.Int 7; Value.Float 2.0 ])

let test_codec_byte_size_matches () =
  let cases =
    [
      Codec.W_int, Value.Int 5;
      Codec.W_bits, Value.Bits (Bits.Bitvec.of_literal "101010101");
      Codec.W_bits_boxed, Value.Bits (Bits.Bitvec.of_literal "101010101");
      Codec.W_array Codec.W_float, Value.Float_array (Array.make 17 1.0);
    ]
  in
  List.iter
    (fun (ty, v) ->
      check_int (Codec.ty_to_string ty)
        (Bytes.length (Codec.encode_bytes ty v))
        (Codec.byte_size ty v))
    cases

let test_codec_dense_packing_wins () =
  (* Ablation A4 precondition: dense bit packing is ~8x smaller. *)
  let v = Value.Bits (Bits.Bitvec.create 1024 true) in
  let dense = Codec.byte_size Codec.W_bits v in
  let boxed = Codec.byte_size Codec.W_bits_boxed v in
  check_int "dense" (4 + 128) dense;
  check_int "boxed" (4 + 1024) boxed

let test_codec_mismatch () =
  match Codec.encode_bytes Codec.W_int (Value.Bool true) with
  | exception Codec.Type_mismatch _ -> ()
  | _ -> Alcotest.fail "expected Type_mismatch"

let test_boundary_fig3_path () =
  (* Figure 3: float array in, int array out. *)
  let b = Boundary.create () in
  let input = Value.Float_array [| 1.0; 2.5; -3.0 |] in
  let native = Boundary.to_device b (Codec.W_array Codec.W_float) input in
  check_int "native bytes" (4 + 12) (Boundary.Native.byte_length native);
  Alcotest.check value_testable "device sees the same value" input
    (Boundary.Native.to_value native);
  let output = Value.Int_array [| 1; 2; -3 |] in
  let native_out = Boundary.to_device b (Codec.W_array Codec.W_int) output in
  let back = Boundary.to_host b native_out in
  Alcotest.check value_testable "mirror path" output back;
  let stats = Boundary.stats b in
  check_int "crossings to device" 2 stats.crossings_to_device;
  check_int "crossings to host" 1 stats.crossings_to_host;
  check_int "bytes to device" (16 + 16) stats.bytes_to_device;
  check_int "bytes to host" 16 stats.bytes_to_host;
  check_bool "transfer cost accumulated" true (stats.modeled_transfer_ns > 0.0)

let test_boundary_transfer_model () =
  let b = Boundary.create ~latency_ns:100.0 ~bandwidth_bytes_per_ns:2.0 () in
  Alcotest.(check (float 1e-9)) "latency+bytes" 150.0 (Boundary.transfer_ns b 100)

let test_boundary_reset () =
  let b = Boundary.create () in
  ignore (Boundary.to_device b Codec.W_int (Value.Int 1));
  Boundary.reset_stats b;
  let stats = Boundary.stats b in
  check_int "reset crossings" 0 stats.crossings_to_device;
  check_int "reset bytes" 0 stats.bytes_to_device

(* Property tests *)

let gen_value_and_ty =
  QCheck2.Gen.(
    let scalar =
      oneof
        [
          map (fun b -> Codec.W_bool, Value.Bool b) bool;
          map (fun i -> Codec.W_int, Value.Int (Value.norm32 i)) int;
          map (fun f -> Codec.W_float, Value.Float (Value.f32 f)) float;
          map (fun b -> Codec.W_bit, Value.Bit b) bool;
        ]
    in
    let int_array =
      map
        (fun xs ->
          ( Codec.W_array Codec.W_int,
            Value.Int_array (Array.of_list (List.map Value.norm32 xs)) ))
        (list_size (int_range 0 50) int)
    in
    let float_array =
      map
        (fun xs ->
          ( Codec.W_array Codec.W_float,
            Value.Float_array (Array.of_list (List.map Value.f32 xs)) ))
        (list_size (int_range 0 50) float)
    in
    let bits =
      map
        (fun bools ->
          Codec.W_bits, Value.Bits (Bits.Bitvec.of_bool_array (Array.of_list bools)))
        (list_size (int_range 0 100) bool)
    in
    let* ty_v = oneof [ scalar; int_array; float_array; bits ] in
    let a, b = ty_v in
    (* tuples of two generated values *)
    oneof
      [
        return ty_v;
        return (Codec.W_tuple [ a; a ], Value.Tuple [ b; b ]);
      ])

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec: encode/decode roundtrip" ~count:500
    gen_value_and_ty (fun (ty, v) ->
      Value.equal v (Codec.decode_bytes ty (Codec.encode_bytes ty v)))

let prop_codec_size =
  QCheck2.Test.make ~name:"codec: byte_size = encoded length" ~count:500
    gen_value_and_ty (fun (ty, v) ->
      Codec.byte_size ty v = Bytes.length (Codec.encode_bytes ty v))

let prop_boundary_roundtrip =
  QCheck2.Test.make ~name:"boundary: to_device/to_host identity" ~count:200
    gen_value_and_ty (fun (ty, v) ->
      let b = Boundary.create () in
      Value.equal v (Boundary.to_host b (Boundary.to_device b ty v)))

let suite =
  ( "wire",
    [
      Alcotest.test_case "writer/reader scalars" `Quick test_writer_reader_scalars;
      Alcotest.test_case "reader underflow" `Quick test_reader_underflow;
      Alcotest.test_case "32-bit int semantics" `Quick test_norm32;
      Alcotest.test_case "float32 rounding" `Quick test_f32_idempotent;
      Alcotest.test_case "codec roundtrips" `Quick test_codec_roundtrips;
      Alcotest.test_case "codec byte sizes" `Quick test_codec_byte_size_matches;
      Alcotest.test_case "dense vs boxed packing" `Quick test_codec_dense_packing_wins;
      Alcotest.test_case "codec type mismatch" `Quick test_codec_mismatch;
      Alcotest.test_case "figure-3 transfer path" `Quick test_boundary_fig3_path;
      Alcotest.test_case "transfer cost model" `Quick test_boundary_transfer_model;
      Alcotest.test_case "stats reset" `Quick test_boundary_reset;
      QCheck_alcotest.to_alcotest prop_codec_roundtrip;
      QCheck_alcotest.to_alcotest prop_codec_size;
      QCheck_alcotest.to_alcotest prop_boundary_roundtrip;
    ] )
