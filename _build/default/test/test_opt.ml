module Ir = Lime_ir.Ir
(* Optimizer tests: constant folding, copy propagation, branch folding
   and DCE must shrink code without ever changing results. *)

module I = Lime_ir.Interp
module V = Wire.Value
open Lime_ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile src =
  Lower.lower (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"t" src))

let fn prog key = Ir.func_exn prog key

let test_constant_folding () =
  let p =
    compile
      {|
class C {
  local static int f(int x) {
    int a = 2 + 3;
    int b = a * 4;
    return x + b;
  }
}
|}
  in
  let before = fn p "C.f" in
  let after = Opt.optimize_function before in
  check_bool "fewer instructions" true (Opt.stats after < Opt.stats before);
  (* semantics preserved *)
  let p' = Opt.optimize p in
  (match I.call p' "C.f" [ I.Prim (V.Int 1) ] with
  | I.Prim (V.Int 21) -> ()
  | v -> Alcotest.failf "got %a" I.pp v);
  (* the folded body should reduce to a single add plus return *)
  check_bool "folded to few instructions" true (Opt.stats after <= 4)

let test_branch_folding () =
  let p =
    compile
      {|
class C {
  local static int f(int x) {
    if (1 < 2) {
      return x + 1;
    }
    return x - 1;
  }
}
|}
  in
  let after = Opt.optimize_function (fn p "C.f") in
  (* the branch is static: no I_if remains *)
  let rec has_if = function
    | [] -> false
    | Ir.I_if _ :: _ -> true
    | Ir.I_while (c, _, b) :: rest -> has_if c || has_if b || has_if rest
    | _ :: rest -> has_if rest
  in
  check_bool "if folded away" false (has_if after.fn_body);
  match I.call (Opt.optimize p) "C.f" [ I.Prim (V.Int 5) ] with
  | I.Prim (V.Int 6) -> ()
  | v -> Alcotest.failf "got %a" I.pp v

let test_dead_code_removed () =
  let p =
    compile
      {|
class C {
  local static int f(int x) {
    int unused = x * 17 + 4;
    int unused2 = unused + 1;
    return x;
  }
}
|}
  in
  let after = Opt.optimize_function (fn p "C.f") in
  check_int "only the return remains" 1 (Opt.stats after)

let test_division_not_folded_away () =
  (* x/0 traps; DCE must not delete it, folding must not evaluate it. *)
  let p =
    compile
      {|
class C {
  local static int f(int x) {
    int trap = x / 0;
    return 7;
  }
}
|}
  in
  let p' = Opt.optimize p in
  match I.call p' "C.f" [ I.Prim (V.Int 1) ] with
  | exception I.Runtime_error _ -> ()
  | v -> Alcotest.failf "expected a trap, got %a" I.pp v

let test_while_false_dropped () =
  let p =
    compile
      {|
class C {
  local static int f(int x) {
    while (false) {
      x = x + 1;
    }
    return x;
  }
}
|}
  in
  let after = Opt.optimize_function (fn p "C.f") in
  let rec has_while = function
    | [] -> false
    | Ir.I_while _ :: _ -> true
    | Ir.I_if (_, a, b) :: rest -> has_while a || has_while b || has_while rest
    | _ :: rest -> has_while rest
  in
  check_bool "while(false) removed" false (has_while after.fn_body)

let test_loops_still_work () =
  let p =
    Opt.optimize
      (compile
         {|
class C {
  local static int sumTo(int n) {
    int acc = 0;
    for (int i = 1; i <= n; i++) {
      acc += i;
    }
    return acc;
  }
}
|})
  in
  match I.call p "C.sumTo" [ I.Prim (V.Int 100) ] with
  | I.Prim (V.Int 5050) -> ()
  | v -> Alcotest.failf "got %a" I.pp v

let test_instruction_count_drops_on_vm () =
  let src =
    {|
class C {
  local static int f(int x) {
    int a = 10 * 10;
    int b = a + 5;
    int dead = b * 3;
    return x + b;
  }
}
|}
  in
  let raw = Bytecode.Compile.compile_program (compile src) in
  let opt = Bytecode.Compile.compile_program (Opt.optimize (compile src)) in
  let run u = (Bytecode.Vm.run u "C.f" [ I.Prim (V.Int 1) ]).Bytecode.Vm.executed in
  check_bool "optimized executes fewer instructions" true (run opt < run raw);
  check_bool "same result" true
    ((Bytecode.Vm.run raw "C.f" [ I.Prim (V.Int 1) ]).value
    = (Bytecode.Vm.run opt "C.f" [ I.Prim (V.Int 1) ]).value)

(* Property: optimization never changes the result of the Mix kernel. *)
let prop_opt_preserves_semantics =
  let p = compile Test_bytecode.mix_src in
  let p' = Opt.optimize p in
  QCheck2.Test.make ~name:"opt: semantics preserved on Mix.mix" ~count:300
    QCheck2.Gen.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (a, b) ->
      let args = [ I.Prim (V.Int a); I.Prim (V.Int b) ] in
      match I.call p "Mix.mix" args, I.call p' "Mix.mix" args with
      | I.Prim x, I.Prim y -> V.equal x y
      | _ -> false)

let test_whole_program_figure1 () =
  let p = Opt.optimize (compile Test_syntax.figure1_source) in
  match
    I.call p "Bitflip.taskFlip" [ I.Prim (V.Bits (Bits.Bitvec.of_literal "1010")) ]
  with
  | I.Prim (V.Bits b) ->
    Alcotest.(check string) "still flips" "0101" (Bits.Bitvec.to_literal b)
  | v -> Alcotest.failf "got %a" I.pp v

let suite =
  ( "optimizer",
    [
      Alcotest.test_case "constant folding" `Quick test_constant_folding;
      Alcotest.test_case "branch folding" `Quick test_branch_folding;
      Alcotest.test_case "dead code removed" `Quick test_dead_code_removed;
      Alcotest.test_case "trapping code kept" `Quick test_division_not_folded_away;
      Alcotest.test_case "while(false) dropped" `Quick test_while_false_dropped;
      Alcotest.test_case "loops still work" `Quick test_loops_still_work;
      Alcotest.test_case "VM instruction count drops" `Quick
        test_instruction_count_drops_on_vm;
      Alcotest.test_case "figure 1 after optimization" `Quick
        test_whole_program_figure1;
      QCheck_alcotest.to_alcotest prop_opt_preserves_semantics;
    ] )
