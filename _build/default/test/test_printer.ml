(* IR printer tests: dumps are stable, complete, and name every
   construct (used by `lmc dump-ir`). *)

module Ir = Lime_ir.Ir
module P = Lime_ir.Printer

let check_bool = Alcotest.(check bool)

let compile src =
  Lime_ir.Lower.lower
    (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"t" src))

let fig1 = compile Test_syntax.figure1_source

let test_func_dump () =
  let text = P.func_to_string (Ir.func_exn fig1 "Bitflip.flip") in
  List.iter
    (fun needle -> check_bool needle true (Test_types.contains text needle))
    [ "func Bitflip.flip"; "call bit.~"; "ret"; "pure" ]

let test_template_dump () =
  let gt = Ir.template_exn fig1 "graph@0" in
  let text = P.template_to_string gt in
  List.iter
    (fun needle -> check_bool needle true (Test_types.contains text needle))
    [ "graph graph@0"; "source<bit>"; "[reloc] filter Bitflip.flip";
      "sink<bit>" ]

let test_program_dump_covers_everything () =
  let text = P.program_to_string fig1 in
  List.iter
    (fun needle -> check_bool needle true (Test_types.contains text needle))
    [ "Bitflip.flip"; "Bitflip.mapFlip"; "Bitflip.taskFlip"; "bit.~";
      "mkgraph"; "run_graph"; "map[" ]

let test_control_flow_dump () =
  let p =
    compile
      {|
class C {
  local static int f(int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
      if (i % 2 == 0) { acc += i; } else { acc -= 1; }
    }
    return acc;
  }
}
|}
  in
  let text = P.func_to_string (Ir.func_exn p "C.f") in
  List.iter
    (fun needle -> check_bool needle true (Test_types.contains text needle))
    [ "while {"; "test "; "} do {"; "if "; "} else {"; "rem.i"; "add.i" ]

let test_stateful_dump () =
  let p =
    compile
      {|
class Acc {
  int total;
  local Acc(int s) { total = s; }
  local int push(int x) { total += x; return total; }
}
|}
  in
  let text = P.func_to_string (Ir.func_exn p "Acc.push") in
  check_bool "field read" true (Test_types.contains text "field ");
  check_bool "field write" true (Test_types.contains text "setfield ");
  let ctor = P.func_to_string (Ir.func_exn p "Acc.<init>") in
  check_bool "ctor kind" true (Test_types.contains ctor "constructor of Acc")

let suite =
  ( "ir-printer",
    [
      Alcotest.test_case "function dump" `Quick test_func_dump;
      Alcotest.test_case "template dump" `Quick test_template_dump;
      Alcotest.test_case "program dump" `Quick test_program_dump_covers_everything;
      Alcotest.test_case "control flow dump" `Quick test_control_flow_dump;
      Alcotest.test_case "stateful dump" `Quick test_stateful_dump;
    ] )
