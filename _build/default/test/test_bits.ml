(* Unit and property tests for the packed bit-vector substrate. *)

open Bits

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_literal_fig1 () =
  (* Paper section 2.2: "the bit literal 100b is a 3-bit array where
     bit[0]=0 and bit[2]=1". *)
  let v = Bitvec.of_literal "100" in
  check_int "length" 3 (Bitvec.length v);
  check_bool "bit[0]" false (Bitvec.get v 0);
  check_bool "bit[1]" false (Bitvec.get v 1);
  check_bool "bit[2]" true (Bitvec.get v 2)

let test_literal_roundtrip () =
  List.iter
    (fun s -> check_string s s (Bitvec.to_literal (Bitvec.of_literal s)))
    [ "0"; "1"; "100"; "001"; "10101010"; "111111111"; "0000000000000001" ]

let test_mapflip_result () =
  (* Elementwise flip of 100b = 011b (the paper prints 001b, an
     erratum; see EXPERIMENTS.md). *)
  let v = Bitvec.of_literal "100" in
  check_string "flip" "011" (Bitvec.to_literal (Bitvec.lognot v))

let test_create () =
  let z = Bitvec.create 10 false in
  let o = Bitvec.create 10 true in
  check_int "popcount zeros" 0 (Bitvec.popcount z);
  check_int "popcount ones" 10 (Bitvec.popcount o);
  check_bool "distinct" false (Bitvec.equal z o)

let test_set_functional () =
  let v = Bitvec.create 8 false in
  let w = Bitvec.set v 3 true in
  check_bool "original unchanged" false (Bitvec.get v 3);
  check_bool "copy updated" true (Bitvec.get w 3)

let test_int_roundtrip () =
  List.iter
    (fun n -> check_int (string_of_int n) n (Bitvec.to_int (Bitvec.of_int ~width:16 n)))
    [ 0; 1; 2; 255; 256; 65535 ]

let test_of_int_truncates () =
  check_int "truncated" 0xcd (Bitvec.to_int (Bitvec.of_int ~width:8 0xabcd))

let test_concat_sub () =
  let lo = Bitvec.of_literal "01" (* bit0=1 *) in
  let hi = Bitvec.of_literal "10" (* bit1=1 *) in
  let c = Bitvec.concat lo hi in
  check_int "concat length" 4 (Bitvec.length c);
  check_bool "bit0" true (Bitvec.get c 0);
  check_bool "bit3" true (Bitvec.get c 3);
  let s = Bitvec.sub c ~pos:1 ~len:2 in
  check_int "sub length" 2 (Bitvec.length s);
  check_bool "sub bit0 = c bit1" (Bitvec.get c 1) (Bitvec.get s 0)

let test_logic_ops () =
  let a = Bitvec.of_literal "1100" in
  let b = Bitvec.of_literal "1010" in
  check_string "and" "1000" (Bitvec.to_literal (Bitvec.logand a b));
  check_string "or" "1110" (Bitvec.to_literal (Bitvec.logor a b));
  check_string "xor" "0110" (Bitvec.to_literal (Bitvec.logxor a b))

let test_packed_roundtrip_unaligned () =
  (* 9 bits exercises the padding byte; Figure 4 drives 9 input bits. *)
  let v = Bitvec.of_literal "101010101" in
  let packed = Bitvec.to_packed_bytes v in
  check_int "bytes" 2 (Bytes.length packed);
  let w = Bitvec.of_packed_bytes ~length:9 packed in
  check_bool "roundtrip equal" true (Bitvec.equal v w)

let test_errors () =
  Alcotest.check_raises "empty literal"
    (Invalid_argument "Bitvec.of_literal: empty literal") (fun () ->
      ignore (Bitvec.of_literal ""));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Bitvec: index out of bounds") (fun () ->
      ignore (Bitvec.get (Bitvec.create 3 false) 3));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bitvec.logand: width mismatch") (fun () ->
      ignore (Bitvec.logand (Bitvec.create 3 false) (Bitvec.create 4 false)))

(* Property tests *)

let gen_bits =
  QCheck2.Gen.(
    let* len = int_range 0 200 in
    let* bools = list_size (return len) bool in
    return (Bitvec.of_bool_array (Array.of_list bools)))

let prop_pack_roundtrip =
  QCheck2.Test.make ~name:"bitvec: packed-bytes roundtrip" ~count:300 gen_bits
    (fun v ->
      Bitvec.equal v
        (Bitvec.of_packed_bytes ~length:(Bitvec.length v)
           (Bitvec.to_packed_bytes v)))

let prop_lognot_involution =
  QCheck2.Test.make ~name:"bitvec: lognot involution" ~count:300 gen_bits
    (fun v -> Bitvec.equal v (Bitvec.lognot (Bitvec.lognot v)))

let prop_literal_roundtrip =
  QCheck2.Test.make ~name:"bitvec: literal roundtrip" ~count:300
    QCheck2.Gen.(string_size ~gen:(oneofl [ '0'; '1' ]) (int_range 1 64))
    (fun s -> String.equal s (Bitvec.to_literal (Bitvec.of_literal s)))

let prop_popcount_xor_self =
  QCheck2.Test.make ~name:"bitvec: v xor v = 0" ~count:300 gen_bits (fun v ->
      Bitvec.popcount (Bitvec.logxor v v) = 0)

let prop_concat_length =
  QCheck2.Test.make ~name:"bitvec: concat length adds" ~count:300
    QCheck2.Gen.(pair gen_bits gen_bits)
    (fun (a, b) ->
      Bitvec.length (Bitvec.concat a b) = Bitvec.length a + Bitvec.length b)

let suite =
  ( "bits",
    [
      Alcotest.test_case "figure-1 literal indexing" `Quick test_literal_fig1;
      Alcotest.test_case "literal roundtrip" `Quick test_literal_roundtrip;
      Alcotest.test_case "mapFlip(100b) bits" `Quick test_mapflip_result;
      Alcotest.test_case "create" `Quick test_create;
      Alcotest.test_case "functional set" `Quick test_set_functional;
      Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
      Alcotest.test_case "of_int truncates" `Quick test_of_int_truncates;
      Alcotest.test_case "concat and sub" `Quick test_concat_sub;
      Alcotest.test_case "logic ops" `Quick test_logic_ops;
      Alcotest.test_case "unaligned packing" `Quick test_packed_roundtrip_unaligned;
      Alcotest.test_case "error cases" `Quick test_errors;
      QCheck_alcotest.to_alcotest prop_pack_roundtrip;
      QCheck_alcotest.to_alcotest prop_lognot_involution;
      QCheck_alcotest.to_alcotest prop_literal_roundtrip;
      QCheck_alcotest.to_alcotest prop_popcount_xor_self;
      QCheck_alcotest.to_alcotest prop_concat_length;
    ] )
