(* Lexer and parser tests, centred on the paper's Figure 1. *)

open Lime_syntax

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The Bitflip program from Figure 1, verbatim modulo the paper's
   truncated for-loop increment (line 16 of the figure elides "++"). *)
let figure1_source =
  {|
public value enum bit {
  zero, one;
  public bit ~ this {
    return this == zero ? one : zero;
  }
}

public class Bitflip {
  local static bit flip(bit b) {
    return ~b;
  }
  local static bit[[]] mapFlip(bit[[]] input) {
    var flipped = Bitflip @ flip(input);
    return flipped;
  }
  static bit[[]] taskFlip(bit[[]] input) {
    bit[] result = new bit[input.length];
    var flipit = input.source(1)
      => ([ task flip ])
      => result.<bit>sink();
    flipit.finish();
    return new bit[[]](result);
  }
}
|}

let tokens_of s = List.map (fun t -> t.Lexer.token) (Lexer.tokenize ~file:"t" s)

let test_lex_bit_literals () =
  (match tokens_of "100b" with
  | [ Token.BIT_LIT "100"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "100b should lex as a bit literal");
  match tokens_of "123" with
  | [ Token.INT_LIT 123; Token.EOF ] -> ()
  | _ -> Alcotest.fail "123 should lex as an int"

let test_lex_bad_bit_literal () =
  match tokens_of "123b" with
  | exception Support.Diag.Compile_error _ -> ()
  | _ -> Alcotest.fail "123b must be a lexical error"

let test_lex_operators () =
  let expected =
    [
      Token.AT; Token.ATAT; Token.CONNECT; Token.EQ; Token.ASSIGN; Token.SHL;
      Token.SHR; Token.LEQ; Token.GEQ; Token.NEQ; Token.AMPAMP; Token.BARBAR;
      Token.LVALUEBRACKET; Token.RVALUEBRACKET; Token.LBRACKET; Token.RBRACKET;
      Token.EOF;
    ]
  in
  Alcotest.(check int)
    "operator token count" (List.length expected)
    (List.length (tokens_of "@ @@ => == = << >> <= >= != && || [[ ]] [ ]"));
  List.iteri
    (fun i t ->
      check_bool (Printf.sprintf "token %d" i) true
        (t = List.nth (tokens_of "@ @@ => == = << >> <= >= != && || [[ ]] [ ]") i))
    expected

let test_lex_comments_and_floats () =
  (match tokens_of "// line\n1.5 /* block */ 2e3 7f" with
  | [ Token.FLOAT_LIT a; Token.FLOAT_LIT b; Token.FLOAT_LIT c; Token.EOF ] ->
    Alcotest.(check (float 0.0)) "1.5" 1.5 a;
    Alcotest.(check (float 0.0)) "2e3" 2000.0 b;
    Alcotest.(check (float 0.0)) "7f" 7.0 c
  | _ -> Alcotest.fail "floats and comments");
  match tokens_of "/* unterminated" with
  | exception Support.Diag.Compile_error _ -> ()
  | _ -> Alcotest.fail "unterminated comment must error"

let test_lex_locations () =
  match Lexer.tokenize ~file:"f" "ab\n  cd" with
  | [ a; b; _eof ] ->
    check_int "a line" 1 a.Lexer.loc.line;
    check_int "a col" 1 a.Lexer.loc.col;
    check_int "b line" 2 b.Lexer.loc.line;
    check_int "b col" 3 b.Lexer.loc.col
  | _ -> Alcotest.fail "expected two tokens"

let parse_fig1 () = Parser.parse ~file:"Bitflip.lime" figure1_source

let test_parse_figure1_shape () =
  let prog = parse_fig1 () in
  match prog.Ast.decls with
  | [ Ast.D_enum e; Ast.D_class k ] ->
    Alcotest.(check string) "enum name" "bit" e.e_name;
    Alcotest.(check (list string)) "cases" [ "zero"; "one" ] e.e_cases;
    check_int "enum methods" 1 (List.length e.e_methods);
    Alcotest.(check string) "operator method" "~"
      (List.hd e.e_methods).m_name;
    Alcotest.(check string) "class name" "Bitflip" k.k_name;
    check_int "class methods" 3 (List.length k.k_methods)
  | _ -> Alcotest.fail "expected one enum and one class"

let find_method prog name =
  match prog.Ast.decls with
  | [ _; Ast.D_class k ] -> List.find (fun m -> m.Ast.m_name = name) k.k_methods
  | _ -> Alcotest.fail "unexpected program shape"

let test_parse_figure1_modifiers () =
  let prog = parse_fig1 () in
  let flip = find_method prog "flip" in
  check_bool "flip static" true flip.m_static;
  check_bool "flip local" true (flip.m_locality = Ast.L_local);
  let task_flip = find_method prog "taskFlip" in
  check_bool "taskFlip default locality" true
    (task_flip.m_locality = Ast.L_default)

let test_parse_figure1_map () =
  let prog = parse_fig1 () in
  let map_flip = find_method prog "mapFlip" in
  match map_flip.m_body with
  | [ { sdesc = Ast.Var_decl (None, "flipped", Some e); _ }; _ ] -> (
    match e.desc with
    | Ast.Map (Some "Bitflip", "flip", [ _ ]) -> ()
    | _ -> Alcotest.fail "expected a map expression")
  | _ -> Alcotest.fail "unexpected mapFlip body"

let test_parse_figure1_taskgraph () =
  let prog = parse_fig1 () in
  let task_flip = find_method prog "taskFlip" in
  match task_flip.m_body with
  | [ _decl; { sdesc = Ast.Var_decl (None, "flipit", Some g); _ }; _; _ ] -> (
    (* input.source(1) => ([task flip]) => result.<bit>sink() *)
    match g.desc with
    | Ast.Connect ({ desc = Ast.Connect (src, mid); _ }, snk) ->
      (match src.Ast.desc with
      | Ast.Source (_, { desc = Ast.Int_lit 1; _ }) -> ()
      | _ -> Alcotest.fail "expected source(1)");
      (match mid.Ast.desc with
      | Ast.Relocate { desc = Ast.Task (None, "flip"); _ } -> ()
      | _ -> Alcotest.fail "expected relocated task flip");
      (match snk.Ast.desc with
      | Ast.Sink (Ast.T_bit, _) -> ()
      | _ -> Alcotest.fail "expected .<bit>sink()")
    | _ -> Alcotest.fail "expected a two-connect chain")
  | _ -> Alcotest.fail "unexpected taskFlip body"

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  (match (Parser.parse_expr_string "1 + 2 * 3").desc with
  | Ast.Binop (Ast.Add, _, { desc = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  (* a < b && c parses as (a < b) && c *)
  (match (Parser.parse_expr_string "a < b && c").desc with
  | Ast.Binop (Ast.And, { desc = Ast.Binop (Ast.Lt, _, _); _ }, _) -> ()
  | _ -> Alcotest.fail "comparison binds tighter than &&");
  (* ternary *)
  match (Parser.parse_expr_string "a == b ? c : d").desc with
  | Ast.Cond ({ desc = Ast.Binop (Ast.Eq, _, _); _ }, _, _) -> ()
  | _ -> Alcotest.fail "ternary over equality"

let test_parse_reduce () =
  match (Parser.parse_expr_string "Acc @@ add(xs)").desc with
  | Ast.Reduce (Some "Acc", "add", [ _ ]) -> ()
  | _ -> Alcotest.fail "reduce syntax"

let test_parse_new_forms () =
  (match (Parser.parse_expr_string "new bit[n]").desc with
  | Ast.New_array (Ast.T_bit, _) -> ()
  | _ -> Alcotest.fail "new array");
  match (Parser.parse_expr_string "new bit[[]](result)").desc with
  | Ast.New_value_array (Ast.T_bit, _) -> ()
  | _ -> Alcotest.fail "new value array"

let test_parse_qualified_enum () =
  match (Parser.parse_expr_string "bit.zero").desc with
  | Ast.Qualified ("bit", "zero") -> ()
  | _ -> Alcotest.fail "bit.zero"

let test_parse_for_loop () =
  let src =
    {|
class Sum {
  local static int sum(int[[]] values) {
    int acc = 0;
    for (int i = 0; i < values.length; i++) {
      acc += values[i];
    }
    return acc;
  }
}
|}
  in
  let prog = Parser.parse ~file:"Sum.lime" src in
  match prog.Ast.decls with
  | [ Ast.D_class k ] -> (
    match (List.hd k.k_methods).m_body with
    | [ _; { sdesc = Ast.For (Some _, Some _, Some _, body); _ }; _ ] ->
      check_int "loop body" 1 (List.length body)
    | _ -> Alcotest.fail "expected for loop")
  | _ -> Alcotest.fail "expected class"

let test_parse_fields_and_ctor () =
  let src =
    {|
class Avg {
  int window = 4;
  float total;
  local Avg(int w) { window = w; }
  local float push(float x) { total += x; return total / window; }
}
|}
  in
  let prog = Parser.parse ~file:"Avg.lime" src in
  match prog.Ast.decls with
  | [ Ast.D_class k ] ->
    check_int "fields" 2 (List.length k.k_fields);
    check_int "ctors" 1 (List.length k.k_ctors);
    check_int "methods" 1 (List.length k.k_methods)
  | _ -> Alcotest.fail "expected class"

let test_parse_errors () =
  let bad = [ "class X {"; "class X { int f( }"; "class 3 {}" ] in
  List.iter
    (fun src ->
      match Parser.parse ~file:"bad" src with
      | exception Support.Diag.Compile_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ src))
    bad

let suite =
  ( "lime-syntax",
    [
      Alcotest.test_case "bit literals lex" `Quick test_lex_bit_literals;
      Alcotest.test_case "bad bit literal" `Quick test_lex_bad_bit_literal;
      Alcotest.test_case "operators lex" `Quick test_lex_operators;
      Alcotest.test_case "comments and floats" `Quick test_lex_comments_and_floats;
      Alcotest.test_case "source locations" `Quick test_lex_locations;
      Alcotest.test_case "figure 1 parses" `Quick test_parse_figure1_shape;
      Alcotest.test_case "figure 1 modifiers" `Quick test_parse_figure1_modifiers;
      Alcotest.test_case "figure 1 map operator" `Quick test_parse_figure1_map;
      Alcotest.test_case "figure 1 task graph" `Quick test_parse_figure1_taskgraph;
      Alcotest.test_case "precedence" `Quick test_parse_precedence;
      Alcotest.test_case "reduce operator" `Quick test_parse_reduce;
      Alcotest.test_case "new forms" `Quick test_parse_new_forms;
      Alcotest.test_case "qualified enum case" `Quick test_parse_qualified_enum;
      Alcotest.test_case "for loop" `Quick test_parse_for_loop;
      Alcotest.test_case "fields and constructor" `Quick test_parse_fields_and_ctor;
      Alcotest.test_case "syntax errors" `Quick test_parse_errors;
    ] )
