module Ir = Lime_ir.Ir
(* Bytecode compiler + VM tests, including differential tests against
   the reference interpreter: the two execution engines must agree
   bit-for-bit on every program (the "functionally-equivalent
   configurations" property of paper section 1). *)

module I = Lime_ir.Interp
module V = Wire.Value

let check_int = Alcotest.(check int)

let compile src =
  Bytecode.Compile.compile_program
    (Lime_ir.Lower.lower
       (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"t" src)))

let prim v = I.Prim v

let interp_value = Alcotest.testable I.pp (fun a b ->
    match a, b with
    | I.Prim x, I.Prim y -> V.equal x y
    | _ -> a == b)

(* Run the same entry point on the VM and the interpreter and require
   identical results. *)
let differential unit_ key args =
  let vm = (Bytecode.Vm.run unit_ key args).value in
  let ref_ = I.call unit_.Bytecode.Compile.u_program key args in
  Alcotest.check interp_value (key ^ " (vm = interp)") ref_ vm;
  vm

let fig1 = compile Test_syntax.figure1_source

let test_fig1_on_vm () =
  let input = prim (V.Bits (Bits.Bitvec.of_literal "101010101")) in
  (match differential fig1 "Bitflip.mapFlip" [ input ] with
  | I.Prim (V.Bits b) ->
    Alcotest.(check string) "mapFlip" "010101010" (Bits.Bitvec.to_literal b)
  | v -> Alcotest.failf "got %a" I.pp v);
  match differential fig1 "Bitflip.taskFlip" [ input ] with
  | I.Prim (V.Bits b) ->
    Alcotest.(check string) "taskFlip" "010101010" (Bits.Bitvec.to_literal b)
  | v -> Alcotest.failf "got %a" I.pp v

let test_sum_program () =
  let u = compile Test_ir.sum_src in
  let xs = prim (V.Int_array [| 5; 6; 7 |]) in
  (match differential u "Sum.sumOfSquares" [ xs ] with
  | I.Prim (V.Int 110) -> ()
  | v -> Alcotest.failf "sumOfSquares: %a" I.pp v);
  match differential u "Sum.loopSum" [ xs ] with
  | I.Prim (V.Int 18) -> ()
  | v -> Alcotest.failf "loopSum: %a" I.pp v

let test_control_flow () =
  let u =
    compile
      {|
class C {
  local static int collatzSteps(int n) {
    int steps = 0;
    while (n != 1) {
      if (n % 2 == 0) {
        n = n / 2;
      } else {
        n = 3 * n + 1;
      }
      steps++;
    }
    return steps;
  }
  local static int gcd(int a, int b) {
    while (b != 0) {
      int t = b;
      b = a % b;
      a = t;
    }
    return a;
  }
}
|}
  in
  (match differential u "C.collatzSteps" [ prim (V.Int 27) ] with
  | I.Prim (V.Int 111) -> ()
  | v -> Alcotest.failf "collatz: %a" I.pp v);
  match differential u "C.gcd" [ prim (V.Int 1071); prim (V.Int 462) ] with
  | I.Prim (V.Int 21) -> ()
  | v -> Alcotest.failf "gcd: %a" I.pp v

let test_stateful_pipeline_on_vm () =
  let u =
    compile
      {|
class Acc {
  int total;
  local Acc(int start) { total = start; }
  local int push(int x) { total += x; return total; }
}
class Main {
  static int[[]] prefixSums(int[[]] xs) {
    int[] out = new int[xs.length];
    var acc = new Acc(0);
    var g = xs.source(1) => ([ task acc.push ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}
  in
  match differential u "Main.prefixSums" [ prim (V.Int_array [| 2; 4; 8 |]) ] with
  | I.Prim (V.Int_array [| 2; 6; 14 |]) -> ()
  | v -> Alcotest.failf "prefixSums: %a" I.pp v

let test_instruction_counting () =
  let u =
    compile
      {|
class C {
  local static int sumTo(int n) {
    int acc = 0;
    for (int i = 1; i <= n; i++) {
      acc += i;
    }
    return acc;
  }
}
|}
  in
  let r10 = Bytecode.Vm.run u "C.sumTo" [ prim (V.Int 10) ] in
  let r100 = Bytecode.Vm.run u "C.sumTo" [ prim (V.Int 100) ] in
  (match r100.value with
  | I.Prim (V.Int 5050) -> ()
  | v -> Alcotest.failf "sumTo(100): %a" I.pp v);
  Alcotest.(check bool)
    "instruction count scales with work" true
    (r100.executed > 5 * r10.executed);
  check_int "deterministic count" r10.executed
    (Bytecode.Vm.run u "C.sumTo" [ prim (V.Int 10) ]).executed

let test_disassembler () =
  let code =
    Ir.String_map.find "Bitflip.flip" fig1.Bytecode.Compile.u_funcs
  in
  let text = Bytecode.Compile.disassemble code in
  Alcotest.(check bool) "mentions call" true
    (Test_types.contains text "call bit");
  Alcotest.(check bool) "one-instruction body has load" true
    (Test_types.contains text "load 0")

let test_vm_errors () =
  let u =
    compile
      {|
class C {
  local static int div(int a, int b) { return a / b; }
}
|}
  in
  (match Bytecode.Vm.run u "C.div" [ prim (V.Int 1); prim (V.Int 0) ] with
  | exception I.Runtime_error _ -> ()
  | exception Bytecode.Vm.Vm_error _ -> ()
  | _ -> Alcotest.fail "expected a trap");
  match Bytecode.Vm.run u "C.nothere" [] with
  | exception Bytecode.Vm.Vm_error _ -> ()
  | _ -> Alcotest.fail "expected missing-function error"

(* Property: for random inputs, VM and interpreter agree on a small
   arithmetic-heavy kernel. *)
let mix_src =
  {|
class Mix {
  local static int mix(int a, int b) {
    int x = a ^ (b << 3);
    x = x + (a * 7) - (b / (1 + (a & 15)));
    if (x > 1000) {
      x = x % 1001;
    } else {
      x = -x;
    }
    return x ^ (x >> 2);
  }
}
|}

let prop_vm_matches_interp =
  let u = compile mix_src in
  QCheck2.Test.make ~name:"vm: agrees with interpreter on Mix.mix" ~count:300
    QCheck2.Gen.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (a, b) ->
      let args = [ prim (V.Int a); prim (V.Int b) ] in
      let vm = (Bytecode.Vm.run u "Mix.mix" args).value in
      let ref_ = I.call u.Bytecode.Compile.u_program "Mix.mix" args in
      match vm, ref_ with
      | I.Prim x, I.Prim y -> V.equal x y
      | _ -> false)

let suite =
  ( "bytecode",
    [
      Alcotest.test_case "figure 1 on the VM" `Quick test_fig1_on_vm;
      Alcotest.test_case "map/reduce program" `Quick test_sum_program;
      Alcotest.test_case "control flow" `Quick test_control_flow;
      Alcotest.test_case "stateful pipeline" `Quick test_stateful_pipeline_on_vm;
      Alcotest.test_case "instruction counting" `Quick test_instruction_counting;
      Alcotest.test_case "disassembler" `Quick test_disassembler;
      Alcotest.test_case "vm traps" `Quick test_vm_errors;
      QCheck_alcotest.to_alcotest prop_vm_matches_interp;
    ] )
