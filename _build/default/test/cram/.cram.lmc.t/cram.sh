  $ cat > bitflip.lime <<'LIME'
  > public value enum bit {
  >   zero, one;
  >   public bit ~ this {
  >     return this == zero ? one : zero;
  >   }
  > }
  > public class Bitflip {
  >   local static bit flip(bit b) {
  >     return ~b;
  >   }
  >   static bit[[]] taskFlip(bit[[]] input) {
  >     bit[] result = new bit[input.length];
  >     var flipit = input.source(1)
  >       => ([ task flip ])
  >       => result.<bit>sink();
  >     flipit.finish();
  >     return new bit[[]](result);
  >   }
  > }
  > LIME
  $ ../../bin/lmc.exe compile bitflip.lime | grep -E '^(artifacts|  \[)'
  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b
  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --policy fpga
  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --policy bytecode
  $ ../../bin/lmc.exe disasm bitflip.lime Bitflip.flip
  $ ../../bin/lmc.exe compile bitflip.lime --emit out | grep wrote | sort
  $ head -1 out/Bitflip.flip_Bitflip.taskFlip_0.cl
  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 42
  $ ../../bin/lmc.exe dump-ir bitflip.lime Bitflip.flip
  $ ../../bin/lmc.exe dump-ir bitflip.lime | head -4
