  $ ../../bin/lmc.exe workloads
  $ ../../bin/lmc.exe workloads dsp_chain --size 64 | grep -v wall
  $ ../../bin/lmc.exe workloads dsp_chain --size 64 --policy fpga | grep -v wall
  $ ../../bin/lmc.exe workloads nope
