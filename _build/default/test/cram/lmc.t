The lmc command-line tool, end to end on the paper's Figure 1 program.

  $ cat > bitflip.lime <<'LIME'
  > public value enum bit {
  >   zero, one;
  >   public bit ~ this {
  >     return this == zero ? one : zero;
  >   }
  > }
  > public class Bitflip {
  >   local static bit flip(bit b) {
  >     return ~b;
  >   }
  >   static bit[[]] taskFlip(bit[[]] input) {
  >     bit[] result = new bit[input.length];
  >     var flipit = input.source(1)
  >       => ([ task flip ])
  >       => result.<bit>sink();
  >     flipit.finish();
  >     return new bit[[]](result);
  >   }
  > }
  > LIME

Compiling shows the manifest (phase timings vary, so keep only the
artifact lines):

  $ ../../bin/lmc.exe compile bitflip.lime | grep -E '^(artifacts|  \[)'
  artifacts:
    [native] Bitflip.flip@Bitflip.taskFlip/0: shared library (1 stage(s))
    [gpu] Bitflip.flip@Bitflip.taskFlip/0: fused filter kernel (1 stage(s))
    [fpga] Bitflip.flip@Bitflip.taskFlip/0: pipeline (1 stage(s))

Running under the default policy substitutes the GPU kernel:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b
  010101010b
  plan: gpu(1)

Manual direction to the FPGA (paper section 4.2):

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --policy fpga
  010101010b
  plan: fpga(1)

Bytecode-only produces the identical bits:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 101010101b --policy bytecode
  010101010b
  plan: bytecode(1)

The disassembler shows the stack code of the filter:

  $ ../../bin/lmc.exe disasm bitflip.lime Bitflip.flip
  Bitflip.flip: params=1 slots=2 ret=bit
      0: load 0
      1: call bit.~/1
      2: store 1
      3: load 1
      4: ret

Artifacts can be written out for inspection:

  $ ../../bin/lmc.exe compile bitflip.lime --emit out | grep wrote | sort
  wrote out/Bitflip.flip_Bitflip.taskFlip_0.c
  wrote out/Bitflip.flip_Bitflip.taskFlip_0.cl
  wrote out/Bitflip.flip_Bitflip.taskFlip_0.v
  $ head -1 out/Bitflip.flip_Bitflip.taskFlip_0.cl
  static uchar bit__(uchar v0_this) {

Compile errors carry a location and phase:

  $ ../../bin/lmc.exe run bitflip.lime Bitflip.taskFlip 42
  runtime error: '.length' on a non-array int
  [1]

The IR dump shows the discovered task graph and the lowered filter:

  $ ../../bin/lmc.exe dump-ir bitflip.lime Bitflip.flip
  func Bitflip.flip (%0:b bit local pure) : bit {  // static
    let %1:t = call bit.~(%0:b)
    ret %1:t
  }
  $ ../../bin/lmc.exe dump-ir bitflip.lime | head -4
  graph graph@0:
    source<bit>
    [reloc] filter Bitflip.flip [bit -> bit] uid=Bitflip.flip@Bitflip.taskFlip/0
    sink<bit>
