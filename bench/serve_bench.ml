(* Multi-tenant serving regression gate.

   Two runs of the same deterministic 3-tenant load through the serve
   engine (`lmc serve`'s Serve.Engine):

   - a contended run — every job at t=0, one gpu slot, no batching —
     where WDRR alone decides the order, gating the fairness claim:
     each tenant's share of contended device time must stay within
     15% of its weight's fair share;

   - a shared run — all devices, open-loop arrivals, batching on —
     gating the sharing claim: draining the load across the shared
     device pool must beat the single-device serialization by at
     least 1.1x, and every job's output must stay bit-identical to a
     solo `lmc run` of the same workload.

   Per-tenant throughput and p50/p95/p99 latency land in
   BENCH_serve.json (path overridable as argv 1). `make check` uses
   this as the serving regression gate. *)

module Job = Serve.Job
module Engine = Serve.Engine
module Stats = Support.Stats

let fairness_tolerance = 0.15
let sharing_speedup = 1.1
let jobs_each = 12

let tenants = [ ("gold", 2); ("silver", 1); ("bronze", 1) ]

let config ~slots ~batch_max =
  {
    Engine.default_config with
    Engine.c_slots = slots;
    c_batch_max = batch_max;
    c_profile_path = "BENCH_serve.profiles";
  }

let contended_load =
  Job.parse
    (String.concat ""
       (List.map (fun (t, w) -> Printf.sprintf "tenant %s weight=%d\n" t w) tenants
       @ List.map
           (fun (t, _) ->
             Printf.sprintf "job %s saxpy size=256 count=%d\n" t jobs_each)
           tenants))

let shared_load =
  Job.synthetic ~workloads:[ "saxpy"; "sumsq"; "dsp_chain" ] ~size:256
    ~jobs_per_tenant:jobs_each ~interarrival_ns:20_000.0 ~seed:1 tenants

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_serve.json"
  in
  let failures = ref 0 in

  (* --- gate 1: weighted fairness under contention ------------------- *)
  let fair =
    Engine.run
      ~config:(config ~slots:[ ("gpu", 1) ] ~batch_max:1)
      contended_load
  in
  let total_contended =
    List.fold_left
      (fun acc t -> acc +. t.Engine.tr_contended_service_ns)
      0.0 fair.Engine.sr_tenants
  in
  let weight_sum = List.fold_left (fun a (_, w) -> a + w) 0 tenants in
  Printf.printf "%-8s %6s %8s %8s %8s\n" "tenant" "weight" "share" "fair"
    "err";
  let fairness_rows =
    List.map
      (fun t ->
        let name = t.Engine.tr_tenant.Job.t_name in
        let weight = t.Engine.tr_tenant.Job.t_weight in
        let share = t.Engine.tr_contended_service_ns /. total_contended in
        let fairv = float_of_int weight /. float_of_int weight_sum in
        let err = Float.abs (share -. fairv) /. fairv in
        Printf.printf "%-8s %6d %8.3f %8.3f %7.1f%%\n" name weight share fairv
          (100.0 *. err);
        if err > fairness_tolerance then begin
          Printf.eprintf "FAIL %s: share %.3f off fair %.3f by %.1f%% (> %.0f%%)\n"
            name share fairv (100.0 *. err) (100.0 *. fairness_tolerance);
          incr failures
        end;
        if t.Engine.tr_completed <> jobs_each then begin
          Printf.eprintf "FAIL %s: %d of %d jobs drained\n" name
            t.Engine.tr_completed jobs_each;
          incr failures
        end;
        Printf.sprintf
          "{\"tenant\":%S,\"weight\":%d,\"share\":%.4f,\"fair\":%.4f,\"err\":%.4f}"
          name weight share fairv err)
      fair.Engine.sr_tenants
  in

  (* --- gate 2: device sharing beats serialization ------------------- *)
  let serialized =
    Engine.run
      ~config:(config ~slots:[ ("gpu", 1) ] ~batch_max:1)
      shared_load
  in
  let shared =
    Engine.run
      ~config:(config ~slots:Engine.default_config.Engine.c_slots ~batch_max:4)
      shared_load
  in
  let speedup = serialized.Engine.sr_wall_ns /. shared.Engine.sr_wall_ns in
  Printf.printf
    "\nshared pool: %.1f us to drain vs %.1f us single-device (%.2fx)\n"
    (shared.Engine.sr_wall_ns /. 1000.0)
    (serialized.Engine.sr_wall_ns /. 1000.0)
    speedup;
  if speedup < sharing_speedup then begin
    Printf.eprintf "FAIL sharing: %.2fx < required %.2fx\n" speedup
      sharing_speedup;
    incr failures
  end;

  (* --- gate 3: every served job bit-identical to its solo run ------- *)
  let divergent =
    List.filter
      (fun j -> Engine.solo_output j.Engine.jr_spec <> j.Engine.jr_output)
      shared.Engine.sr_jobs
  in
  List.iter
    (fun j ->
      Printf.eprintf "FAIL job %d (%s): served output diverged from solo\n"
        j.Engine.jr_spec.Job.j_id j.Engine.jr_spec.Job.j_workload;
      incr failures)
    divergent;
  Printf.printf "bit-identity: %d/%d served jobs match their solo runs\n"
    (List.length shared.Engine.sr_jobs - List.length divergent)
    (List.length shared.Engine.sr_jobs);

  (* --- per-tenant service report ------------------------------------ *)
  Printf.printf "\n%-8s %6s %10s %10s %10s %10s\n" "tenant" "jobs" "jobs/s"
    "p50 us" "p95 us" "p99 us";
  let tenant_rows =
    List.map
      (fun t ->
        let name = t.Engine.tr_tenant.Job.t_name in
        let lat = Array.to_list t.Engine.tr_latencies_ns in
        let s = Stats.summarize lat in
        Printf.printf "%-8s %6d %10.1f %10.1f %10.1f %10.1f\n" name
          t.Engine.tr_completed t.Engine.tr_throughput_jps
          (s.Stats.p50 /. 1000.0) (s.Stats.p95 /. 1000.0)
          (s.Stats.p99 /. 1000.0);
        if s.Stats.p99 <= 0.0 then begin
          Printf.eprintf "FAIL %s: p99 latency not positive\n" name;
          incr failures
        end;
        Printf.sprintf
          "{\"tenant\":%S,\"completed\":%d,\"throughput_jps\":%.2f,\"p50_ns\":%.1f,\"p95_ns\":%.1f,\"p99_ns\":%.1f}"
          name t.Engine.tr_completed t.Engine.tr_throughput_jps s.Stats.p50
          s.Stats.p95 s.Stats.p99)
      shared.Engine.sr_tenants
  in
  let batched =
    List.fold_left
      (fun acc d -> acc + d.Engine.dr_batched_jobs)
      0 shared.Engine.sr_devices
  in
  Printf.printf "batching: %d jobs shared an occupancy window\n" batched;

  let oc = open_out out_path in
  Printf.fprintf oc
    "{\"fairness\":[\n%s\n],\n\"tenants\":[\n%s\n],\n\"shared_wall_ns\":%.1f,\"serialized_wall_ns\":%.1f,\"sharing_speedup\":%.3f,\"batched_jobs\":%d,\"jobs\":%d,\"divergent\":%d}\n"
    (String.concat ",\n" fairness_rows)
    (String.concat ",\n" tenant_rows)
    shared.Engine.sr_wall_ns serialized.Engine.sr_wall_ns speedup batched
    (List.length shared.Engine.sr_jobs)
    (List.length divergent);
  close_out oc;
  Printf.printf "wrote %s\n" out_path;
  if !failures > 0 then begin
    Printf.eprintf "%d serving regression(s)\n" !failures;
    exit 1
  end
