(* Lowered map/reduce vs the legacy whole-array dispatch.

   For every workload this compiles the program once and runs it twice
   under Prefer_accelerators: once with the map/reduce lowering on
   (kernel sites execute as scatter/worker/gather task graphs) and
   once with the legacy whole-array hooks. Outputs must be bitwise
   identical and the lowered path must cost no more than 5% extra
   modeled time — chunked execution ships arguments once, slices on
   the device and amortizes launch overhead, so the substrate change
   is not allowed to tax the workloads it generalizes.

   The planner must also have something to say now that sites are
   placeable: the calibrated plan for each Gpu_map workload carries a
   predicted speedup over bytecode, and at least three of them must
   both choose the GPU and predict a strict speedup.

   Results go to BENCH_lower.json (path overridable as argv 1);
   `make check` uses this as the lowering regression gate. *)

module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Substitute = Runtime.Substitute
module Metrics = Runtime.Metrics

let tolerance = 1.05

let run_once (w : Workloads.t) c ~size ~lower =
  let engine =
    Compiler.engine ~policy:Substitute.Prefer_accelerators
      ~lower_mapreduce:lower c
  in
  let result = Exec.call engine w.Workloads.entry (w.Workloads.args ~size) in
  (result, Exec.modeled_ns engine, Metrics.snapshot (Exec.metrics engine))

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_lower.json"
  in
  let rows = ref [] in
  let failures = ref 0 in
  let gpu_winners = ref 0 in
  Printf.printf "%-12s %6s  %14s %14s  %6s  %7s  %9s  %s\n" "workload" "size"
    "legacy ns" "lowered ns" "ratio" "chunks" "predicted" "planned";
  List.iter
    (fun (w : Workloads.t) ->
      let size = w.Workloads.default_size in
      let c = Compiler.compile w.Workloads.source in
      let legacy_r, legacy_ns, _ = run_once w c ~size ~lower:false in
      let lowered_r, lowered_ns, m = run_once w c ~size ~lower:true in
      if Stdlib.compare legacy_r lowered_r <> 0 then begin
        Printf.eprintf "FAIL %s: lowered output diverged from legacy\n"
          w.Workloads.name;
        incr failures
      end;
      if lowered_ns > legacy_ns *. tolerance then begin
        Printf.eprintf
          "FAIL %s: lowered path modeled %.0fns > legacy %.0fns x %.2f\n"
          w.Workloads.name lowered_ns legacy_ns tolerance;
        incr failures
      end;
      (* The algebraic proof must be load-bearing: sumsq's integer
         combiner is proven associative+commutative, so at the default
         4096-element size its reduce site splits into the map
         policy's 4 chunks (on top of the map site's 4) instead of
         staying pinned at K=1 — while the bitwise comparison above
         keeps the tree combine honest. *)
      if w.Workloads.name = "sumsq" && m.Metrics.mr_chunks < 8 then begin
        Printf.eprintf
          "FAIL sumsq: proven-assoc reduce stayed pinned at K=1 \
           (mr_chunks=%d, expected 8 across map+reduce sites)\n"
          m.Metrics.mr_chunks;
        incr failures
      end;
      (* A private, unsaved store: the bench always calibrates from
         scratch so its numbers cannot depend on a stale lm.profiles
         left in the working directory. *)
      let store = Placement.Profile.load "BENCH_lower.profiles" in
      let ctx = Placement.Calibrate.create ~profile_store:store c in
      let report = Placement.Planner.plan ctx ~n:size in
      let site_plans =
        List.filter
          (fun (gp : Placement.Planner.graph_plan) -> gp.gp_kind <> "graph")
          report.Placement.Planner.rp_graphs
      in
      let predicted, planned_text =
        match site_plans with
        | [] -> (1.0, "(no kernel sites)")
        | gps ->
          let best =
            List.fold_left
              (fun acc (gp : Placement.Planner.graph_plan) ->
                if gp.gp_speedup > acc.Placement.Planner.gp_speedup then gp
                else acc)
              (List.hd gps) gps
          in
          ( best.Placement.Planner.gp_speedup,
            best.Placement.Planner.gp_planned.Placement.Planner.cd_plan_text )
      in
      if
        w.Workloads.category = Workloads.Gpu_map
        && predicted > 1.0
        && String.length planned_text >= 3
        && String.sub planned_text 0 3 = "gpu"
      then incr gpu_winners;
      let ratio = if legacy_ns > 0.0 then lowered_ns /. legacy_ns else 1.0 in
      Printf.printf "%-12s %6d  %14.0f %14.0f  %5.2fx  %7d  %8.2fx  %s\n"
        w.Workloads.name size legacy_ns lowered_ns ratio m.Metrics.mr_chunks
        predicted planned_text;
      rows :=
        Printf.sprintf
          "{\"workload\":%S,\"size\":%d,\"legacy_modeled_ns\":%.1f,\"lowered_modeled_ns\":%.1f,\"ratio\":%.3f,\"mr_runs\":%d,\"mr_chunks\":%d,\"predicted_speedup\":%.3f,\"plan\":%S}"
          w.Workloads.name size legacy_ns lowered_ns ratio m.Metrics.mr_runs
          m.Metrics.mr_chunks predicted planned_text
        :: !rows)
    Workloads.all;
  if !gpu_winners < 3 then begin
    Printf.eprintf
      "FAIL: only %d Gpu_map workload(s) plan the GPU with a predicted \
       speedup > 1.0 (need at least 3)\n"
      !gpu_winners;
    incr failures
  end;
  let oc = open_out out_path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !rows));
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d gpu-winning site plan(s))\n" out_path
    !gpu_winners;
  if !failures > 0 then begin
    Printf.eprintf "%d lowering regression(s)\n" !failures;
    exit 1
  end
