(* The benchmark harness: regenerates every figure of the paper and the
   headline claim, plus the ablations called out in DESIGN.md.

   Experiments (see DESIGN.md section 4 for the full index):
     F1  Figure 1  - the Lime examples, all execution paths
     F2  Figure 2  - the toolchain: artifacts, exclusions, phase times
     F3  Figure 3  - marshaling across the host/device boundary
     F4  Figure 4  - CPU+FPGA co-simulation waveform behaviour
     S1  section 2.2 claim - end-to-end GPU speedups (12x-431x span)
     A1  substitution-policy ablation
     A2  FIFO-depth ablation
     A3  warp-divergence ablation
     A4  bit-packing ablation

   Absolute numbers come from models (the substrates are simulators,
   not the authors' testbed); the shapes are the reproduction target.

   Each experiment also registers one Bechamel micro-benchmark; the
   suite runs at the end and reports measured wall time per operation. *)

module Lm = Liquid_metal.Lm
module Ir = Lime_ir.Ir
module V = Wire.Value
module Table = Support.Stats.Table

let section title =
  Printf.printf "\n======================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "======================================================\n"

let modeled_total (m : Runtime.Metrics.snapshot) =
  (float_of_int m.vm_instructions *. 6.0)
  +. m.native_ns +. m.gpu_kernel_ns +. m.fpga_ns
  +. m.marshal.modeled_transfer_ns
  +. m.marshal_native.modeled_transfer_ns

let us ns = Printf.sprintf "%.1f" (ns /. 1000.0)

(* Bechamel micro-benchmarks accumulated by the experiments. *)
let micro_tests : Bechamel.Test.t list ref = ref []

let register_micro name f =
  micro_tests :=
    Bechamel.Test.make ~name (Bechamel.Staged.stage f) :: !micro_tests

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 - the Lime examples                                    *)
(* ------------------------------------------------------------------ *)

let fig1_lime_examples () =
  section "F1 (Figure 1): Lime examples on every execution path";
  let w = Workloads.find "bitflip" in
  let session = Lm.load w.Workloads.source in
  let map_result = Lm.run session "Bitflip.mapFlip" [ Lm.bits "100" ] in
  Printf.printf "mapFlip(100b) = %sb  (paper prints 001b; see EXPERIMENTS.md \
                 erratum)\n"
    (Lm.as_bits_literal map_result);
  let input = "101010101" in
  let t = Table.create ~columns:[ "configuration"; "taskFlip result"; "plan" ] in
  let reference = ref "" in
  List.iter
    (fun (name, policy) ->
      Lm.set_policy session policy;
      let r = Lm.run session "Bitflip.taskFlip" [ Lm.bits input ] in
      let lit = Lm.as_bits_literal r in
      if !reference = "" then reference := lit
      else assert (String.equal !reference lit);
      Table.add_row t
        [ name; lit ^ "b"; Option.value (Lm.last_plan session) ~default:"-" ])
    [
      "bytecode (JVM path)", Runtime.Substitute.Bytecode_only;
      "GPU substitution", Runtime.Substitute.Prefer_accelerators;
      ( "FPGA substitution",
        Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ] );
    ];
  print_string (Table.render t);
  Printf.printf "all configurations agree: functionally-equivalent artifacts\n";
  let session' = Lm.load w.Workloads.source in
  register_micro "F1: taskFlip co-execution (9 bits)" (fun () ->
      ignore (Lm.run session' "Bitflip.taskFlip" [ Lm.bits input ]))

(* ------------------------------------------------------------------ *)
(* F2: Figure 2 - the compiler toolchain                               *)
(* ------------------------------------------------------------------ *)

let fig2_toolchain () =
  section "F2 (Figure 2): toolchain - artifacts per backend, exclusions";
  let t =
    Table.create
      ~columns:
        [ "workload"; "bytecode"; "gpu artifacts"; "fpga artifacts";
          "exclusions"; "compile ms" ]
  in
  List.iter
    (fun (w : Workloads.t) ->
      let c = Liquid_metal.Compiler.compile w.source in
      let m = Liquid_metal.Compiler.manifest c in
      let count d =
        List.length
          (List.filter
             (fun (e : Runtime.Artifact.manifest_entry) -> e.me_device = d)
             m.entries)
      in
      let total_ms =
        1000.0 *. List.fold_left (fun acc (_, s) -> acc +. s) 0.0 c.phase_seconds
      in
      Table.add_row t
        [
          w.name;
          Printf.sprintf "%d fn(s)" (Ir.String_map.cardinal c.unit_.u_funcs);
          string_of_int (count Runtime.Artifact.Gpu);
          string_of_int (count Runtime.Artifact.Fpga);
          string_of_int (List.length m.exclusions);
          Printf.sprintf "%.2f" total_ms;
        ])
    Workloads.all;
  print_string (Table.render t);
  (* Show the exclusion reasons the backends recorded (paper: "the
     programmer is informed"). *)
  Printf.printf "\nrecorded exclusions (device: reason):\n";
  List.iter
    (fun (w : Workloads.t) ->
      let m = Liquid_metal.Compiler.manifest (Liquid_metal.Compiler.compile w.source) in
      List.iter
        (fun (x : Runtime.Artifact.exclusion) ->
          Printf.printf "  %-12s %s: %s\n" w.name
            (Runtime.Artifact.device_name x.ex_device)
            x.ex_reason)
        m.exclusions)
    Workloads.all;
  let src = (Workloads.find "bitflip").source in
  register_micro "F2: full compile of Figure 1 (all backends)" (fun () ->
      ignore (Liquid_metal.Compiler.compile src))

(* ------------------------------------------------------------------ *)
(* F3: Figure 3 - marshaling                                           *)
(* ------------------------------------------------------------------ *)

let wall_ns f =
  (* median of 5 wall-clock measurements *)
  let samples =
    List.init 5 (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        (Unix.gettimeofday () -. t0) *. 1e9)
  in
  List.nth (List.sort compare samples) 2

let fig3_marshaling () =
  section "F3 (Figure 3): JVM <-> native device transfer path";
  Printf.printf
    "float array in / int array out; serialize and deserialize measured,\n\
     the boundary crossing modeled (PCIe-class: 10us + bytes/8GBps).\n\n";
  let t =
    Table.create
      ~columns:
        [ "elements"; "bytes"; "serialize us"; "cross us (model)";
          "deserialize us"; "total us" ]
  in
  List.iter
    (fun n ->
      let rng = Workloads.Rng.create () in
      let xs = Workloads.Rng.float_array rng n ~lo:(-100.0) ~hi:100.0 in
      let v = V.Float_array xs in
      let ty = Wire.Codec.W_array Wire.Codec.W_float in
      let serialize_ns = wall_ns (fun () -> ignore (Wire.Codec.encode_bytes ty v)) in
      let encoded = Wire.Codec.encode_bytes ty v in
      let deserialize_ns =
        wall_ns (fun () -> ignore (Wire.Codec.decode_bytes ty encoded))
      in
      let b = Wire.Boundary.create () in
      let cross_ns = Wire.Boundary.transfer_ns b (Bytes.length encoded) in
      Table.add_row t
        [
          string_of_int n;
          string_of_int (Bytes.length encoded);
          us serialize_ns;
          us cross_ns;
          us deserialize_ns;
          us (serialize_ns +. cross_ns +. deserialize_ns);
        ])
    [ 1_024; 16_384; 262_144; 1_048_576 ];
  print_string (Table.render t);
  Printf.printf
    "\nshape check: costs grow linearly in bytes; serialize/deserialize\n\
     dominate the small end, bandwidth the large end (as in the paper's\n\
     discussion of avoiding copies by pinning memory).\n";
  let rng = Workloads.Rng.create () in
  let xs = V.Float_array (Workloads.Rng.float_array rng 65_536 ~lo:0.0 ~hi:1.0) in
  let ty = Wire.Codec.W_array Wire.Codec.W_float in
  register_micro "F3: serialize 64K floats" (fun () ->
      ignore (Wire.Codec.encode_bytes ty xs));
  let encoded = Wire.Codec.encode_bytes ty xs in
  register_micro "F3: deserialize 64K floats" (fun () ->
      ignore (Wire.Codec.decode_bytes ty encoded))

(* ------------------------------------------------------------------ *)
(* F4: Figure 4 - co-simulation waveform                               *)
(* ------------------------------------------------------------------ *)

let fig4_cosim_waveform () =
  section "F4 (Figure 4): CPU+FPGA co-simulation of taskFlip";
  let w = Workloads.find "bitflip" in
  let prog =
    Lime_ir.Lower.lower
      (Lime_types.Typecheck.check
         (Lime_syntax.Parser.parse ~file:"Bitflip.lime" w.source))
  in
  let filters = List.map snd (Ir.filter_sites prog) in
  let pipeline =
    Rtl.Synth.pipeline_of_chain prog ~name:"taskFlip"
      (List.map (fun f -> f, None) filters)
  in
  let vcd = Rtl.Vcd.create () in
  let input = "101010101" in
  let bits =
    Array.to_list
      (Array.map (fun b -> V.Bit b)
         (Bits.Bitvec.to_bool_array (Bits.Bitvec.of_literal input)))
  in
  let outputs, stats = Rtl.Sim.run ~vcd ~clock_ns:4 prog pipeline bits in
  Printf.printf "input: %sb (9 bits, as in the paper)\n" input;
  Printf.printf "output: %sb\n"
    (Bits.Bitvec.to_literal
       (Bits.Bitvec.of_bool_array
          (Array.of_list
             (List.map (function V.Bit b -> b | _ -> false) outputs))));
  Printf.printf "cycles: %d for %d elements (unpipelined, ~3 per element)\n"
    stats.Rtl.Sim.cycles stats.Rtl.Sim.items;
  (* Read the event series back from the VCD, the same signals the
     paper's waveform viewer shows. *)
  let wave = Rtl.Vcd_reader.parse (Rtl.Vcd.contents vcd) in
  let in_rises = Rtl.Vcd_reader.rises (Rtl.Vcd_reader.signal wave "Bitflip_flip_0_inReady") in
  let out_rises = Rtl.Vcd_reader.rises (Rtl.Vcd_reader.signal wave "Bitflip_flip_0_outReady") in
  Printf.printf "inReady transitions: %d (paper: 9)\n" (List.length in_rises);
  let t = Table.create ~columns:[ "element"; "inReady ns"; "outReady ns"; "delta clocks" ] in
  List.iteri
    (fun i (tin, tout) ->
      Table.add_row t
        [
          string_of_int i;
          string_of_int tin;
          string_of_int tout;
          string_of_int ((tout - tin) / 4);
        ])
    (List.combine in_rises out_rises);
  print_string (Table.render t);
  Printf.printf "\nwaveform (first 60 ns, 1 column = 2 ns, # = high):\n";
  print_string
    (Rtl.Vcd_reader.render_ascii
       ~signals:
         [ "clk"; "Bitflip_flip_0_inReady"; "Bitflip_flip_0_inData";
           "Bitflip_flip_0_outReady"; "Bitflip_flip_0_outData" ]
       ~until_ns:60 ~step_ns:2 wave);
  Printf.printf
    "\nevery element: read -> compute -> publish in 3 cycles; the FIFO\n\
     presents data on the rising edge after the write (paper section 5).\n";
  register_micro "F4: RTL co-simulation of taskFlip (9 bits)" (fun () ->
      ignore (Rtl.Sim.run prog pipeline bits))

(* ------------------------------------------------------------------ *)
(* S1: the 12x-431x end-to-end GPU speedups                            *)
(* ------------------------------------------------------------------ *)

let s1_gpu_speedups () =
  section "S1 (section 2.2): end-to-end CPU vs CPU+GPU speedups";
  Printf.printf
    "modeled end-to-end time: VM instructions x 6ns (interpreted JVM\n\
     class CPU) vs host + GPU kernel + Figure-3 transfers.\n\n";
  let t =
    Table.create
      ~columns:
        [ "workload"; "size"; "bytecode us"; "co-exec us"; "speedup";
          "transfer %" ]
  in
  let speedups = ref [] in
  List.iter
    (fun (name, size) ->
      let w = Workloads.find name in
      let bytecode = Lm.load ~policy:Runtime.Substitute.Bytecode_only w.source in
      let accel = Lm.load w.source in
      let r_bc = Lm.run bytecode w.entry (w.args ~size) in
      let r_ac = Lm.run accel w.entry (w.args ~size) in
      assert (Lm.show r_bc = Lm.show r_ac);
      let m_bc = Lm.metrics bytecode in
      let m_ac = Lm.metrics accel in
      let t_bc = modeled_total m_bc in
      let t_ac = modeled_total m_ac in
      let speedup = t_bc /. t_ac in
      speedups := (name, speedup) :: !speedups;
      Table.add_row t
        [
          name;
          string_of_int size;
          us t_bc;
          us t_ac;
          Printf.sprintf "%.1fx" speedup;
          Printf.sprintf "%.0f%%"
            (100.0 *. m_ac.marshal.modeled_transfer_ns /. t_ac);
        ])
    [
      "saxpy", 1 lsl 14;
      "dotproduct", 1 lsl 14;
      "conv2d", 64;
      "matmul", 48;
      "nbody", 256;
      "blackscholes", 4096;
      "mandelbrot", 96;
    ];
  print_string (Table.render t);
  let values = List.map snd !speedups in
  let lo = List.fold_left min infinity values in
  let hi = List.fold_left max neg_infinity values in
  Printf.printf
    "\nspan: %.1fx - %.1fx (paper: 12x - 431x on a GTX580). Shape check:\n\
     bandwidth-bound saxpy at the bottom, compute-bound O(n^2)/iterative\n\
     kernels at the top, transfer share collapsing as intensity grows.\n"
    lo hi;
  let w = Workloads.find "saxpy" in
  let accel = Lm.load w.source in
  let args = w.args ~size:4096 in
  register_micro "S1: saxpy 4K co-execution (wall)" (fun () ->
      ignore (Lm.run accel w.entry args))

(* ------------------------------------------------------------------ *)
(* A1: substitution policy ablation                                    *)
(* ------------------------------------------------------------------ *)

let a1_substitution_policy () =
  section "A1 (ablation): substitution policy on the 3-stage DSP pipeline";
  let w = Workloads.find "dsp_chain" in
  let size = 512 in
  let t =
    Table.create
      ~columns:[ "policy"; "plan"; "modeled us"; "crossings"; "kernels/runs" ]
  in
  List.iter
    (fun (name, policy) ->
      let s = Lm.load ~policy w.Workloads.source in
      ignore (Lm.run s w.entry (w.args ~size));
      let m = Lm.metrics s in
      Table.add_row t
        [
          name;
          Option.value (Lm.last_plan s) ~default:"-";
          us (modeled_total m);
          string_of_int
            (m.marshal.crossings_to_device + m.marshal.crossings_to_host);
          Printf.sprintf "%d/%d" m.gpu_kernels m.fpga_runs;
        ])
    [
      "bytecode-only", Runtime.Substitute.Bytecode_only;
      "largest (paper default)", Runtime.Substitute.Prefer_accelerators;
      "smallest", Runtime.Substitute.Smallest_substitution;
      "fpga-first", Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Fpga ];
      ( "native-first",
        Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Native ] );
    ];
  print_string (Table.render t);
  Printf.printf
    "\nshape check: the paper's larger-is-better heuristic wins because one\n\
     fused substitution crosses the boundary once; smallest pays per stage.\n"

(* ------------------------------------------------------------------ *)
(* A2: FIFO depth ablation                                             *)
(* ------------------------------------------------------------------ *)

let a2_fifo_depth () =
  section "A2 (ablation): connection FIFO capacity vs pipeline throughput";
  (* Actor level: a 3-stage bytecode pipeline; deeper queues decouple
     the stages and cut scheduling rounds (the threads block less). *)
  let elements = 512 in
  let t =
    Table.create
      ~columns:
        [ "fifo capacity"; "scheduler rounds"; "blocked steps";
          "rtl cycles (uneven stages)"; "rtl stalls" ]
  in
  let prog =
    Lime_ir.Lower.lower
      (Lime_types.Typecheck.check
         (Lime_syntax.Parser.parse ~file:"t"
            {|
class P {
  local static int fast(int x) { return x + 1; }
  local static int slow(int x) {
    int a = x / 3;
    int b = x / 5;
    int c = x / 7;
    int d = x / 11;
    return a + b + c + d;
  }
  static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var g = xs.source(1) => ([ task fast ]) => ([ task slow ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}))
  in
  let filters = List.map snd (Ir.filter_sites prog) in
  List.iter
    (fun capacity ->
      (* actor pipeline against a bursty consumer that services 8
         elements every 8th step: queues shallower than a burst starve
         it and multiply scheduling rounds *)
      let open Runtime in
      let batch = 8 in
      let c1 = Actor.Channel.create ~capacity in
      let c2 = Actor.Channel.create ~capacity in
      let dest = V.Int_array (Array.make elements 0) in
      let bursty_sink =
        let index = ref 0 in
        let phase = ref 0 in
        Actor.make ~name:"bursty-sink" (fun () ->
            incr phase;
            if !phase mod batch <> 0 && not (Actor.Channel.drained c2) then
              Actor.Progress (* waiting for its service slot, still alive *)
            else begin
              let moved = ref 0 in
              let continue = ref true in
              while !continue && !moved < batch do
                match Actor.Channel.pop_opt c2 with
                | Some x ->
                  Lime_ir.Interp.array_set dest !index x;
                  incr index;
                  incr moved
                | None -> continue := false
              done;
              if !moved > 0 then Actor.Progress
              else if Actor.Channel.drained c2 then Actor.Done
              else Actor.Blocked
            end)
      in
      let actors =
        [
          Actor.source ~name:"src" ~rate:1
            (List.init elements (fun i -> V.Int i))
            c1;
          Actor.filter ~name:"f1" ~f:(fun x -> x) c1 c2;
          bursty_sink;
        ]
      in
      let stats = Scheduler.run actors in
      (* RTL pipeline with unequal stage latencies *)
      let pl =
        Rtl.Synth.pipeline_of_chain prog ~name:"p" ~fifo_depth:capacity
          (List.map (fun f -> f, None) filters)
      in
      let _, rtl_stats =
        Rtl.Sim.run prog pl (List.init 64 (fun i -> V.Int i))
      in
      Table.add_row t
        [
          string_of_int capacity;
          string_of_int stats.Scheduler.rounds;
          string_of_int stats.Scheduler.blocked_steps;
          string_of_int rtl_stats.Rtl.Sim.cycles;
          string_of_int rtl_stats.Rtl.Sim.stalls;
        ])
    [ 1; 2; 4; 16; 64; 256 ];
  print_string (Table.render t);
  Printf.printf
    "\nshape check: the pipeline rate is set by its slowest stage (constant\n\
     cycles), but shallow FIFOs waste work on backpressure (blocked steps,\n\
     RTL stalls); a few entries of slack absorb bursts - why the generated\n\
     hardware uses small FIFOs between modules (Figure 4).\n"

(* ------------------------------------------------------------------ *)
(* A3: warp divergence ablation                                        *)
(* ------------------------------------------------------------------ *)

let a3_divergence () =
  section "A3 (ablation): warp-divergence modeling";
  let t =
    Table.create
      ~columns:
        [ "kernel"; "divergence model"; "avg groups/warp"; "kernel us" ]
  in
  let run name source entry args =
    let prog =
      Lime_ir.Lower.lower
        (Lime_types.Typecheck.check (Lime_syntax.Parser.parse ~file:"t" source))
    in
    let site =
      match Ir.kernel_sites prog with
      | `Map m :: _ -> m
      | _ -> failwith "no map site"
    in
    ignore entry;
    List.iter
      (fun model ->
        let _, timing = Gpu.Simt.run_map ~model_divergence:model prog site args in
        Table.add_row t
          [
            name;
            (if model then "on" else "off");
            Printf.sprintf "%.2f" timing.Gpu.Simt.avg_divergence_groups;
            us timing.Gpu.Simt.kernel_ns;
          ])
      [ true; false ]
  in
  (* saxpy: uniform control flow -> no divergence penalty *)
  let rng = Workloads.Rng.create () in
  let n = 8192 in
  let xs = V.Float_array (Workloads.Rng.float_array rng n ~lo:0.0 ~hi:1.0) in
  let ys = V.Float_array (Workloads.Rng.float_array rng n ~lo:0.0 ~hi:1.0) in
  run "saxpy (uniform)"
    {|
class S {
  local static float axpy(float a, float x, float y) { return a * x + y; }
  static float[[]] run(float a, float[[]] xs, float[[]] ys) {
    return S @ axpy(a, xs, ys);
  }
}
|}
    "S.run"
    [ V.Float 2.0; xs; ys ];
  (* mandelbrot: data-dependent trip counts -> heavy divergence *)
  let idx = V.Int_array (Array.init 4096 (fun i -> i)) in
  run "mandelbrot (divergent)"
    {|
class M {
  local static int escape(int xy, int w, int h, int maxIter) {
    float cx = 3.5 * (xy % w) / w - 2.5;
    float cy = 2.0 * (xy / w) / h - 1.0;
    float zx = 0.0;
    float zy = 0.0;
    int iter = 0;
    while (iter < maxIter && zx * zx + zy * zy <= 4.0) {
      float t = zx * zx - zy * zy + cx;
      zy = 2.0 * zx * zy + cy;
      zx = t;
      iter++;
    }
    return iter;
  }
  static int[[]] run(int[[]] idx, int w, int h, int maxIter) {
    return M @ escape(idx, w, h, maxIter);
  }
}
|}
    "M.run"
    [ idx; V.Int 64; V.Int 64; V.Int 64 ];
  print_string (Table.render t);
  Printf.printf
    "\nshape check: uniform kernels are insensitive to the model; divergent\n\
     kernels pay a serialization penalty when modeling is on.\n"

(* ------------------------------------------------------------------ *)
(* A4: bit packing ablation                                            *)
(* ------------------------------------------------------------------ *)

let a4_bit_packing () =
  section "A4 (ablation): dense vs boxed bit-array marshaling";
  let t =
    Table.create
      ~columns:
        [ "bits"; "dense bytes"; "boxed bytes"; "dense transfer us";
          "boxed transfer us"; "ratio" ]
  in
  List.iter
    (fun n ->
      let rng = Workloads.Rng.create () in
      let v = V.Bits (Bits.Bitvec.of_bool_array (Workloads.Rng.bool_array rng n)) in
      let dense = Wire.Codec.byte_size Wire.Codec.W_bits v in
      let boxed = Wire.Codec.byte_size Wire.Codec.W_bits_boxed v in
      let b = Wire.Boundary.create () in
      let dense_ns = Wire.Boundary.transfer_ns b dense in
      let boxed_ns = Wire.Boundary.transfer_ns b boxed in
      Table.add_row t
        [
          string_of_int n;
          string_of_int dense;
          string_of_int boxed;
          us dense_ns;
          us boxed_ns;
          Printf.sprintf "%.2fx" (boxed_ns /. dense_ns);
        ])
    [ 1_024; 65_536; 1_048_576; 8_388_608 ];
  print_string (Table.render t);
  Printf.printf
    "\nshape check: packing wins once payload beats the fixed crossing\n\
     latency, approaching 8x - why Lime marshals values 'using custom\n\
     strategies tailored to the physical wire-format' (section 2.2).\n"

(* ------------------------------------------------------------------ *)
(* A5: adaptive placement (paper section 7, future work)               *)
(* ------------------------------------------------------------------ *)

let a5_adaptive_placement () =
  section "A5 (extension): adaptive placement across stream lengths";
  Printf.printf
    "the paper's future work: 'runtime introspection and adaptation of\n\
     the task-graph partitioning so that tasks run where they are best\n\
     suited'. The adaptive policy estimates per-placement cost from the\n\
     observed stream length and picks the cheapest device.\n\n";
  let w = Workloads.find "dsp_chain" in
  let t =
    Table.create
      ~columns:
        [ "elements"; "adaptive plan"; "adaptive us"; "fixed-gpu us";
          "bytecode us" ]
  in
  List.iter
    (fun size ->
      let run policy =
        let s = Lm.load ~policy w.Workloads.source in
        ignore (Lm.run s w.entry (w.args ~size));
        modeled_total (Lm.metrics s), Option.value (Lm.last_plan s) ~default:"-"
      in
      let t_ad, plan = run Runtime.Substitute.Adaptive in
      let t_gpu, _ =
        run (Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
      in
      let t_bc, _ = run Runtime.Substitute.Bytecode_only in
      Table.add_row t
        [ string_of_int size; plan; us t_ad; us t_gpu; us t_bc ])
    [ 4; 64; 1024; 16384 ];
  print_string (Table.render t);
  Printf.printf
    "\nshape check: tiny streams stay on the CPU (crossing costs dominate),\n\
     mid sizes prefer the cheap JNI hop into native code, large streams\n\
     amortize the PCIe launch and move to the GPU.\n"

(* ------------------------------------------------------------------ *)
(* A6: communication granularity (device-launch chunking)              *)
(* ------------------------------------------------------------------ *)

let a6_chunking () =
  section "A6 (extension): device-launch granularity (chunked streaming)";
  Printf.printf
    "the engine can launch the substituted device every k elements\n\
     instead of batching the whole stream: smaller chunks bound the\n\
     staging buffer and surface results earlier, at the price of\n\
     per-launch overhead and extra crossings (Figure 3 costs).\n\n";
  let w = Workloads.find "dsp_chain" in
  let size = 8192 in
  let t =
    Table.create
      ~columns:
        [ "chunk"; "gpu launches"; "crossings"; "bytes moved"; "modeled us" ]
  in
  List.iter
    (fun chunk ->
      let s =
        Lm.load
          ~policy:(Runtime.Substitute.Prefer_devices [ Runtime.Artifact.Gpu ])
          ?chunk_elements:chunk w.Workloads.source
      in
      ignore (Lm.run s w.entry (w.args ~size));
      let m = Lm.metrics s in
      Table.add_row t
        [
          (match chunk with Some k -> string_of_int k | None -> "whole stream");
          string_of_int m.gpu_kernels;
          string_of_int
            (m.marshal.crossings_to_device + m.marshal.crossings_to_host);
          string_of_int (m.marshal.bytes_to_device + m.marshal.bytes_to_host);
          us (modeled_total m);
        ])
    [ Some 64; Some 512; Some 2048; None ];
  print_string (Table.render t);
  Printf.printf
    "\nshape check: total bytes are constant; per-launch overhead and\n\
     per-crossing latency make fine chunks expensive, with the cost\n\
     flattening once a chunk amortizes the fixed costs.\n"

(* ------------------------------------------------------------------ *)
(* A7: GPU device models                                               *)
(* ------------------------------------------------------------------ *)

let a7_device_models () =
  section "A7 (extension): speedups across GPU device models";
  Printf.printf
    "the paper demonstrates gains 'on AMD and NVidia GPUs' (section 7);\n\
     the device model is a parameter, so the same artifacts run against\n\
     a GTX580-class part and a small mobile-class part.\n\n";
  let t =
    Table.create
      ~columns:[ "workload"; "device"; "co-exec us"; "speedup vs bytecode" ]
  in
  List.iter
    (fun (name, size) ->
      let w = Workloads.find name in
      let bytecode = Lm.load ~policy:Runtime.Substitute.Bytecode_only w.source in
      ignore (Lm.run bytecode w.entry (w.args ~size));
      let t_bc = modeled_total (Lm.metrics bytecode) in
      List.iter
        (fun device ->
          let s = Lm.load ~gpu_device:device w.Workloads.source in
          ignore (Lm.run s w.entry (w.args ~size));
          let t_ac = modeled_total (Lm.metrics s) in
          Table.add_row t
            [
              name;
              device.Gpu.Device.name;
              us t_ac;
              Printf.sprintf "%.1fx" (t_bc /. t_ac);
            ])
        [ Gpu.Device.gtx580; Gpu.Device.mobile ])
    [ "nbody", 256; "saxpy", 1 lsl 14 ];
  print_string (Table.render t);
  Printf.printf
    "\nshape check: compute-bound kernels scale with the device's lane\n\
     count and clock; bandwidth-bound kernels barely notice the bigger\n\
     part because transfers dominate either way.\n"

(* ------------------------------------------------------------------ *)
(* A8: fault tolerance (degraded-mode overhead)                        *)
(* ------------------------------------------------------------------ *)

(* `bench --inject-faults SPEC [--max-retries N]` overrides the fault
   schedule this experiment uses for its "custom" row; the built-in
   rows always run, so BENCH_faults.json tracks a fixed trajectory. *)
let faults_flag =
  let rec scan = function
    | "--inject-faults" :: spec :: _ -> Some spec
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let retries_flag =
  let rec scan = function
    | "--max-retries" :: n :: _ -> int_of_string_opt n
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let a8_fault_tolerance () =
  section "A8 (extension): fault tolerance - degraded-mode overhead";
  Printf.printf
    "the runtime's safety story: device artifacts are optimizations,\n\
     never requirements. Under an injected fault schedule a device\n\
     launch is retried with exponential backoff, then the device is\n\
     quarantined and the segment re-substituted — bottoming out at\n\
     bytecode, which always exists. The overhead of that degradation\n\
     is the price of the paper's 'every task always has a CPU\n\
     implementation' guarantee.\n\n";
  let scenarios =
    [
      "healthy", None;
      "transient gpu (1 fault)", Some "gpu:*:n=1";
      "gpu dead", Some "gpu:*:always";
      "all devices dead", Some "gpu:*:always,fpga:*:always,native:*:always";
    ]
    @
    match faults_flag with
    | Some spec -> [ "custom (--inject-faults)", Some spec ]
    | None -> []
  in
  let t =
    Table.create
      ~columns:
        [ "workload"; "scenario"; "faults"; "retries"; "resubs";
          "modeled us"; "overhead" ]
  in
  let json_rows = ref [] in
  List.iter
    (fun (name, size) ->
      let w = Workloads.find name in
      let healthy_ns = ref 0.0 in
      List.iter
        (fun (scenario, spec) ->
          (match spec with
          | Some s -> (
            match Support.Fault.parse_spec s with
            | Ok schedule -> Support.Fault.install schedule
            | Error e -> failwith ("bad fault spec: " ^ e))
          | None -> Support.Fault.clear ());
          let s = Lm.load ?max_retries:retries_flag w.Workloads.source in
          ignore (Lm.run s w.entry (w.args ~size));
          Support.Fault.clear ();
          let m = Lm.metrics s in
          let ns = modeled_total m +. m.backoff_ns in
          if spec = None then healthy_ns := ns;
          let overhead =
            if spec = None then "-"
            else Printf.sprintf "%.2fx" (ns /. !healthy_ns)
          in
          Table.add_row t
            [
              name; scenario;
              string_of_int m.device_faults;
              string_of_int m.retries;
              string_of_int m.resubstitutions;
              us ns; overhead;
            ];
          json_rows :=
            Printf.sprintf
              "{\"workload\":\"%s\",\"scenario\":\"%s\",\"faults\":%d,\"retries\":%d,\"resubstitutions\":%d,\"backoff_ns\":%.1f,\"modeled_ns\":%.1f}"
              name scenario m.device_faults m.retries m.resubstitutions
              m.backoff_ns ns
            :: !json_rows)
        scenarios)
    [ "bitflip", 256; "dsp_chain", 2048; "conv2d", 32 ];
  print_string (Table.render t);
  let oc = open_out "BENCH_faults.json" in
  output_string oc
    ("[\n  " ^ String.concat ",\n  " (List.rev !json_rows) ^ "\n]\n");
  close_out oc;
  Printf.printf "\nwrote BENCH_faults.json\n";
  Printf.printf
    "\nshape check: transient faults cost one retry (backoff only);\n\
     a dead device costs its retries once, then quarantine makes every\n\
     later launch re-plan straight to the next device; with every\n\
     device dead the run degrades to bytecode-only plus the one-time\n\
     retry/quarantine tax.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmark suite                                      *)
(* ------------------------------------------------------------------ *)

let run_micro_suite () =
  section "Bechamel micro-benchmarks (measured wall time per operation)";
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let t = Table.create ~columns:[ "micro-benchmark"; "ns/op"; "r^2" ] in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          let est =
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> Printf.sprintf "%.0f" e
            | _ -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square result with
            | Some r -> Printf.sprintf "%.3f" r
            | None -> "-"
          in
          Table.add_row t [ name; est; r2 ])
        results)
    (List.rev !micro_tests);
  print_string (Table.render t)

(* `bench --trace FILE` records every experiment into one Chrome trace
   (a large ring: the full suite emits far more than the default
   capacity). Tracing stays off otherwise, so the published numbers are
   unaffected. *)
let trace_file =
  let rec scan = function
    | "--trace" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let () =
  (match trace_file with
  | Some _ ->
    Support.Trace.set_sink (Support.Trace.ring ~capacity:1_048_576 ())
  | None -> ());
  Printf.printf "Liquid Metal reproduction benchmark harness\n";
  Printf.printf "(paper: A Compiler and Runtime for Heterogeneous Computing, \
                 DAC 2012)\n";
  fig1_lime_examples ();
  fig2_toolchain ();
  fig3_marshaling ();
  fig4_cosim_waveform ();
  s1_gpu_speedups ();
  a1_substitution_policy ();
  a2_fifo_depth ();
  a3_divergence ();
  a4_bit_packing ();
  a5_adaptive_placement ();
  a6_chunking ();
  a7_device_models ();
  a8_fault_tolerance ();
  run_micro_suite ();
  (match trace_file with
  | Some path ->
    let sink = Support.Trace.current () in
    let oc = open_out path in
    output_string oc
      (Support.Trace.Chrome.to_json ~process_name:"bench" sink);
    close_out oc;
    Printf.printf "\ntrace: wrote %s (%d event(s), %d dropped)\n" path
      (Support.Trace.event_count sink)
      (Support.Trace.dropped sink)
  | None -> ());
  Printf.printf "\nAll experiments completed.\n"
