(* Steady-state vs round-robin scheduling bench.

   For each pinned (workload, policy) entry this runs the task-graph
   workload once under the round-robin scheduler and once under the
   steady-state schedule, checks the outputs are bitwise identical,
   and records scheduler steps, blocked steps and wall time in
   BENCH_sched.json (path overridable as argv 1).

   Exits nonzero if any entry's steady run blocks more than its
   round-robin run — `make check` uses this as the scheduling
   regression gate. *)

module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Substitute = Runtime.Substitute
module Metrics = Runtime.Metrics
module Scheduler = Runtime.Scheduler
module I = Lime_ir.Interp

(* Task-graph workloads only: map/reduce-style workloads never invoke
   the scheduler and would contribute empty rows. *)
let entries =
  [
    "bitflip", 256, "bytecode", Substitute.Bytecode_only;
    "bitflip", 256, "accel", Substitute.Prefer_accelerators;
    "dsp_chain", 512, "bytecode", Substitute.Bytecode_only;
    "dsp_chain", 512, "accel", Substitute.Prefer_accelerators;
    "fir4", 512, "bytecode", Substitute.Bytecode_only;
    "fir4", 512, "accel", Substitute.Prefer_accelerators;
    "crc8", 256, "bytecode", Substitute.Bytecode_only;
    "crc8", 256, "accel", Substitute.Prefer_accelerators;
  ]

let run_once (w : Workloads.t) ~size ~policy ~schedule =
  let c = Compiler.compile w.Workloads.source in
  let engine = Compiler.engine ~policy ~schedule c in
  let t0 = Unix.gettimeofday () in
  let result = Exec.call engine w.Workloads.entry (w.Workloads.args ~size) in
  let wall_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  result, Metrics.snapshot (Exec.metrics engine), wall_ms

let () =
  let out_path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_sched.json" in
  let rows = ref [] in
  let failures = ref 0 in
  Printf.printf "%-10s %-9s %6s  %14s %14s  %9s\n" "workload" "policy" "size"
    "rr blocked" "steady blocked" "reduction";
  List.iter
    (fun (name, size, pname, policy) ->
      let w = Workloads.find name in
      let rr, m_rr, rr_ms =
        run_once w ~size ~policy ~schedule:Scheduler.Round_robin
      in
      let st, m_st, st_ms =
        run_once w ~size ~policy ~schedule:Scheduler.Steady_state
      in
      if Stdlib.compare rr st <> 0 then begin
        Printf.eprintf "FAIL %s/%s: steady output diverged from round-robin\n"
          name pname;
        incr failures
      end;
      if m_st.Metrics.sched_blocked_steps > m_rr.Metrics.sched_blocked_steps
      then begin
        Printf.eprintf
          "FAIL %s/%s: steady blocked %d > round-robin blocked %d\n" name
          pname m_st.Metrics.sched_blocked_steps
          m_rr.Metrics.sched_blocked_steps;
        incr failures
      end;
      let reduction =
        if m_rr.Metrics.sched_blocked_steps = 0 then "n/a"
        else
          Printf.sprintf "%.0f%%"
            (100.0
            *. (1.0
               -. float_of_int m_st.Metrics.sched_blocked_steps
                  /. float_of_int m_rr.Metrics.sched_blocked_steps))
      in
      Printf.printf "%-10s %-9s %6d  %14d %14d  %9s\n" name pname size
        m_rr.Metrics.sched_blocked_steps m_st.Metrics.sched_blocked_steps
        reduction;
      rows :=
        Printf.sprintf
          "{\"workload\":%S,\"policy\":%S,\"size\":%d,\"roundrobin\":{\"steps\":%d,\"blocked_steps\":%d,\"rounds\":%d,\"wall_ms\":%.1f},\"steady\":{\"steps\":%d,\"blocked_steps\":%d,\"rounds\":%d,\"fallbacks\":%d,\"wall_ms\":%.1f}}"
          name pname size m_rr.Metrics.sched_steps
          m_rr.Metrics.sched_blocked_steps m_rr.Metrics.sched_rounds rr_ms
          m_st.Metrics.sched_steps m_st.Metrics.sched_blocked_steps
          m_st.Metrics.sched_rounds m_st.Metrics.sched_fallbacks st_ms
        :: !rows)
    entries;
  let oc = open_out out_path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !rows));
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out_path;
  if !failures > 0 then begin
    Printf.eprintf "%d scheduling regression(s)\n" !failures;
    exit 1
  end
