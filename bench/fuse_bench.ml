(* Cross-filter fusion regression gate.

   For every workload this compiles the program twice — fusion on and
   off — runs both under the accelerator-first policy, checks the
   outputs are bitwise identical, and records both measured modeled
   costs in BENCH_fuse.json (path overridable as argv 1). Costs are
   the engine's modeled_ns after the real run, not static estimates.

   Exits nonzero if any fused run produces different bits, if fusion
   ever models slower than per-stage placement (beyond a 0.1%
   tolerance), or if the headline result regresses: the calibrated
   planner must place dsp_chain's fused run on an accelerator and
   model it strictly faster than the best per-stage native placement.
   `make check` uses this as the fusion regression gate. *)

module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Substitute = Runtime.Substitute

let tolerance = 1.001

let run_once (w : Workloads.t) ~fuse ~size =
  let c = Compiler.compile ~fuse w.Workloads.source in
  let engine = Compiler.engine ~policy:Substitute.Prefer_accelerators ~fuse c in
  let result = Exec.call engine w.Workloads.entry (w.Workloads.args ~size) in
  let m = Runtime.Metrics.snapshot (Exec.metrics engine) in
  (result, Exec.modeled_ns engine, Exec.last_plan engine, m)

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_fuse.json"
  in
  let rows = ref [] in
  let failures = ref 0 in
  Printf.printf "%-12s %6s  %14s %14s  %8s  %s\n" "workload" "size"
    "unfused ns" "fused ns" "speedup" "fused plan";
  List.iter
    (fun (w : Workloads.t) ->
      let size = w.Workloads.default_size in
      let unfused_r, unfused_ns, _, _ = run_once w ~fuse:false ~size in
      let fused_r, fused_ns, plan, m = run_once w ~fuse:true ~size in
      if Stdlib.compare unfused_r fused_r <> 0 then begin
        Printf.eprintf "FAIL %s: fused output diverged from unfused\n"
          w.Workloads.name;
        incr failures
      end;
      if fused_ns > unfused_ns *. tolerance then begin
        Printf.eprintf "FAIL %s: fused run modeled %.0fns > unfused %.0fns\n"
          w.Workloads.name fused_ns unfused_ns;
        incr failures
      end;
      let speedup = if fused_ns > 0.0 then unfused_ns /. fused_ns else 1.0 in
      let plan_text = Option.value plan ~default:"(no task graphs)" in
      Printf.printf "%-12s %6d  %14.0f %14.0f  %7.2fx  %s\n" w.Workloads.name
        size unfused_ns fused_ns speedup plan_text;
      rows :=
        Printf.sprintf
          "{\"workload\":%S,\"size\":%d,\"unfused_modeled_ns\":%.1f,\"fused_modeled_ns\":%.1f,\"speedup\":%.3f,\"plan\":%S,\"fused_launches\":%d}"
          w.Workloads.name size unfused_ns fused_ns speedup plan_text
          m.Runtime.Metrics.fused_launches
        :: !rows)
    Workloads.all;
  (* The headline: fusion must flip dsp_chain's calibrated plan onto
     an accelerator, strictly beating the best per-stage (native)
     placement that wins without it. *)
  let dsp = Workloads.find "dsp_chain" in
  let c = Compiler.compile dsp.Workloads.source in
  let report =
    Placement.Planner.run ~profile_path:"BENCH_fuse.profiles"
      ~n:dsp.Workloads.default_size c
  in
  let headline =
    match report.Placement.Planner.rp_graphs with
    | gp :: _ ->
      let planned = gp.Placement.Planner.gp_planned in
      let find name =
        List.find
          (fun (cand : Placement.Planner.candidate) ->
            cand.Placement.Planner.cd_name = name)
          gp.Placement.Planner.gp_candidates
      in
      let native = find "native-only" in
      let contains s sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
        in
        go 0
      in
      if not (contains planned.Placement.Planner.cd_plan_text "fused") then begin
        Printf.eprintf "FAIL dsp_chain: planned %S is not a fused placement\n"
          planned.Placement.Planner.cd_plan_text;
        incr failures
      end;
      if
        planned.Placement.Planner.cd_makespan_ns
        >= native.Placement.Planner.cd_makespan_ns
      then begin
        Printf.eprintf
          "FAIL dsp_chain: fused plan %.0fns must beat native %.0fns\n"
          planned.Placement.Planner.cd_makespan_ns
          native.Placement.Planner.cd_makespan_ns;
        incr failures
      end;
      Printf.printf
        "\nheadline: dsp_chain planned %s (%.1f us) vs native-only %s (%.1f \
         us)\n"
        planned.Placement.Planner.cd_plan_text
        (planned.Placement.Planner.cd_makespan_ns /. 1000.0)
        native.Placement.Planner.cd_plan_text
        (native.Placement.Planner.cd_makespan_ns /. 1000.0);
      Printf.sprintf
        "{\"planned\":%S,\"planned_ns\":%.1f,\"native\":%S,\"native_ns\":%.1f}"
        planned.Placement.Planner.cd_plan_text
        planned.Placement.Planner.cd_makespan_ns
        native.Placement.Planner.cd_plan_text
        native.Placement.Planner.cd_makespan_ns
    | [] ->
      Printf.eprintf "FAIL dsp_chain: planner produced no graphs\n";
      incr failures;
      "{}"
  in
  let oc = open_out out_path in
  output_string oc "{\"workloads\":[\n";
  output_string oc (String.concat ",\n" (List.rev !rows));
  output_string oc ("\n],\"headline\":" ^ headline ^ "}\n");
  close_out oc;
  Printf.printf "wrote %s\n" out_path;
  if !failures > 0 then begin
    Printf.eprintf "%d fusion regression(s)\n" !failures;
    exit 1
  end
