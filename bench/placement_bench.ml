(* Profile-guided placement vs the static default.

   For every workload this compiles the program once, runs it under
   the static Prefer_accelerators policy and again under the Adaptive
   policy driven by the calibrated placement cost model
   (Placement.Planner.cost_fn), checks the outputs are bitwise
   identical, and records both modeled costs in BENCH_placement.json
   (path overridable as argv 1).

   Exits nonzero if any planned run models slower than its static
   counterpart (beyond a 2% tolerance for calibration noise), or if
   dsp_chain — the workload whose accelerator-first default is known
   to be dominated by the PCIe boundary — fails to improve strictly.
   `make check` uses this as the placement regression gate. *)

module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Substitute = Runtime.Substitute

let tolerance = 1.02

let run_once (w : Workloads.t) c ~size ~policy ~cost_model =
  let engine =
    match cost_model with
    | None -> Compiler.engine ~policy c
    | Some cm -> Compiler.engine ~policy ~cost_model:cm c
  in
  let result = Exec.call engine w.Workloads.entry (w.Workloads.args ~size) in
  (result, Exec.modeled_ns engine, Exec.last_plan engine)

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_placement.json"
  in
  let rows = ref [] in
  let failures = ref 0 in
  Printf.printf "%-12s %6s  %14s %14s  %8s  %s\n" "workload" "size"
    "static ns" "planned ns" "speedup" "planned placement";
  List.iter
    (fun (w : Workloads.t) ->
      let size = w.Workloads.default_size in
      let c = Compiler.compile w.Workloads.source in
      let static_r, static_ns, _ =
        run_once w c ~size ~policy:Substitute.Prefer_accelerators
          ~cost_model:None
      in
      (* A private, unsaved store: the bench always calibrates from
         scratch so its numbers cannot depend on a stale lm.profiles
         left in the working directory. *)
      let store = Placement.Profile.load "BENCH_placement.profiles" in
      let ctx = Placement.Calibrate.create ~profile_store:store c in
      let planned_r, planned_ns, plan =
        run_once w c ~size ~policy:Substitute.Adaptive
          ~cost_model:(Some (Placement.Planner.cost_fn ctx))
      in
      if Stdlib.compare static_r planned_r <> 0 then begin
        Printf.eprintf "FAIL %s: planned output diverged from static\n"
          w.Workloads.name;
        incr failures
      end;
      if planned_ns > static_ns *. tolerance then begin
        Printf.eprintf
          "FAIL %s: planned placement modeled %.0fns > static %.0fns\n"
          w.Workloads.name planned_ns static_ns;
        incr failures
      end;
      if w.Workloads.name = "dsp_chain" && planned_ns >= static_ns then begin
        Printf.eprintf
          "FAIL dsp_chain: planned %.0fns must beat the accelerator-first \
           default %.0fns\n"
          planned_ns static_ns;
        incr failures
      end;
      let speedup =
        if planned_ns > 0.0 then static_ns /. planned_ns else 1.0
      in
      let plan_text = Option.value plan ~default:"(no task graphs)" in
      Printf.printf "%-12s %6d  %14.0f %14.0f  %7.2fx  %s\n" w.Workloads.name
        size static_ns planned_ns speedup plan_text;
      rows :=
        Printf.sprintf
          "{\"workload\":%S,\"size\":%d,\"static_modeled_ns\":%.1f,\"planned_modeled_ns\":%.1f,\"speedup\":%.3f,\"plan\":%S,\"calibrated\":%d}"
          w.Workloads.name size static_ns planned_ns speedup plan_text
          (Placement.Calibrate.calibrated ctx)
        :: !rows)
    Workloads.all;
  let oc = open_out out_path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev !rows));
  output_string oc "\n]\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out_path;
  if !failures > 0 then begin
    Printf.eprintf "%d placement regression(s)\n" !failures;
    exit 1
  end
