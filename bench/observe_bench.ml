(* Observability regression gate.

   Two claims keep the introspection layer honest, both checked here
   and recorded in BENCH_obs.json (path overridable as argv 1):

   1. Tracing off costs (almost) nothing. Every emission point is one
      [Trace.enabled ()] branch; this measures that disabled cost
      directly, multiplies it by the number of events a fully traced
      dsp_chain run emits, and fails if the implied overhead exceeds
      5% of the untraced run's wall time.

   2. Attribution covers the run. On dsp_chain the deepest-owner
      partition must classify at least 99% of wall time into the named
      buckets (compute / marshal / sched / backoff) — an "other"
      share above 1% means spans have drifted out of the taxonomy.

   `make check` runs this as the observability gate. *)

module Trace = Support.Trace
module Compiler = Liquid_metal.Compiler
module Exec = Runtime.Exec
module Substitute = Runtime.Substitute
module Report = Observe.Report

let max_overhead_pct = 5.0
let min_coverage = 0.99

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_obs.json"
  in
  let w = Workloads.find "dsp_chain" in
  let size = w.Workloads.default_size in
  let c = Compiler.compile w.Workloads.source in
  let run_once () =
    let engine = Compiler.engine ~policy:Substitute.Prefer_accelerators c in
    ignore (Exec.call engine w.Workloads.entry (w.Workloads.args ~size))
  in

  (* untraced wall: warm up once, then take the fastest of 5 *)
  Trace.set_sink Trace.null;
  run_once ();
  let untraced_wall_ns = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    run_once ();
    let ns = 1e9 *. (Unix.gettimeofday () -. t0) in
    if ns < !untraced_wall_ns then untraced_wall_ns := ns
  done;

  (* the disabled emission path, measured directly *)
  let iters = 1_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (Trace.with_span ~cat:"launch" "bench" (fun () -> 0)))
  done;
  let disabled_site_ns =
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int iters
  in

  (* one traced run: how many emission points fire, and where the
     wall time goes *)
  let sink = Trace.ring () in
  Trace.set_sink sink;
  run_once ();
  Trace.set_sink Trace.null;
  let events = Trace.event_count sink + Trace.dropped sink in
  let r = Report.of_sink sink in
  let wall = r.Report.rp_wall_us in
  let a = r.Report.rp_attr in
  let covered =
    a.Report.at_compute +. a.Report.at_marshal +. a.Report.at_sched
    +. a.Report.at_backoff
  in
  let coverage = if wall > 0.0 then covered /. wall else 0.0 in
  let overhead_pct =
    100.0 *. disabled_site_ns *. float_of_int events /. !untraced_wall_ns
  in

  Printf.printf "disabled emission: %.2f ns/site x %d event(s) = %.1f us\n"
    disabled_site_ns events
    (disabled_site_ns *. float_of_int events /. 1000.0);
  Printf.printf "untraced wall:     %.1f us (best of 5)\n"
    (!untraced_wall_ns /. 1000.0);
  Printf.printf "implied overhead:  %.3f%% (gate < %.1f%%)\n" overhead_pct
    max_overhead_pct;
  Printf.printf
    "attribution:       %.2f%% covered (compute %.1f + marshal %.1f + sched \
     %.1f + backoff %.1f of %.1f us; gate >= %.0f%%)\n"
    (100.0 *. coverage) a.Report.at_compute a.Report.at_marshal
    a.Report.at_sched a.Report.at_backoff wall (100.0 *. min_coverage);

  let oc = open_out out_path in
  Printf.fprintf oc
    "{\"workload\":\"dsp_chain\",\"size\":%d,\"disabled_site_ns\":%.3f,\"events\":%d,\"untraced_wall_ns\":%.0f,\"overhead_pct\":%.4f,\"coverage\":%.5f,\"attribution_us\":{\"compute\":%.3f,\"marshal\":%.3f,\"sched\":%.3f,\"backoff\":%.3f,\"other\":%.3f},\"wall_us\":%.3f,\"gates\":{\"max_overhead_pct\":%.1f,\"min_coverage\":%.2f}}\n"
    size disabled_site_ns events !untraced_wall_ns overhead_pct coverage
    a.Report.at_compute a.Report.at_marshal a.Report.at_sched
    a.Report.at_backoff a.Report.at_other wall max_overhead_pct min_coverage;
  close_out oc;
  Printf.printf "wrote %s\n" out_path;

  let failed = ref false in
  if overhead_pct >= max_overhead_pct then begin
    Printf.eprintf "FAIL: disabled-tracing overhead %.3f%% >= %.1f%%\n"
      overhead_pct max_overhead_pct;
    failed := true
  end;
  if coverage < min_coverage then begin
    Printf.eprintf "FAIL: attribution coverage %.2f%% < %.0f%%\n"
      (100.0 *. coverage) (100.0 *. min_coverage);
    failed := true
  end;
  if !failed then exit 1
