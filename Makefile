# Convenience entry points; dune is the real build system.

QCHECK_SEED ?= 20260805

.PHONY: all build test check bench clean

all: build

build:
	dune build @all

test:
	dune runtest

# The full gate: build everything, run the whole suite (unit, property,
# cram), then re-run the differential fault-tolerance suite — including
# its `Slow` workload x policy x schedule matrix — under a fixed QCheck
# seed so the randomized schedules are reproducible.
check: build test
	QCHECK_SEED=$(QCHECK_SEED) dune exec test/test_main.exe -- test differential -e

bench:
	dune exec bench/main.exe

clean:
	dune clean
