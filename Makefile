# Convenience entry points; dune is the real build system.

QCHECK_SEED ?= 20260805

.PHONY: all build test lint baseline lint-baseline check bench bench-sched bench-placement bench-obs bench-lower bench-fuse bench-serve clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static analysis over the example programs: `lmc analyze` exits
# nonzero on any error-severity finding (deadlocking graphs, provably
# out-of-bounds accesses), so a bad example fails the build.
lint: build
	@for f in examples/lime/*.lime; do \
	  echo "== lmc analyze $$f"; \
	  dune exec bin/lmc.exe -- analyze $$f || exit 1; \
	done

# One `lmc analyze --json` block per analyzable target — every example
# program and every workload in the catalog — each under a `== target`
# header. Shared by `baseline` (regenerate the checked-in snapshot)
# and `lint-baseline` (diff against it).
define regen_baseline
for f in examples/lime/*.lime; do \
  echo "== $$f"; \
  dune exec bin/lmc.exe -- analyze --json $$f || exit 1; \
done; \
for w in $$(dune exec bin/lmc.exe -- workloads | awk '{print $$1}'); do \
  echo "== $$w"; \
  dune exec bin/lmc.exe -- analyze --json $$w || exit 1; \
done
endef

# Regenerate the checked-in analysis baseline. Run this (and commit
# the result) whenever a diagnostic legitimately changes.
baseline: build
	@{ $(regen_baseline); } > test/analyze.baseline
	@echo "wrote test/analyze.baseline"

# Fail if the analyses drift from the checked-in baseline: a proof
# that regresses to Unknown, a new error, or any diagnostic churn
# shows up as a diff here before it shows up in a kernel.
lint-baseline: build
	@tmp=$$(mktemp) && \
	{ $(regen_baseline); } > $$tmp && \
	if diff -u test/analyze.baseline $$tmp; then rm -f $$tmp; else \
	  rm -f $$tmp; \
	  echo "analysis diagnostics drifted from test/analyze.baseline;"; \
	  echo "if intentional, regenerate with 'make baseline' and commit."; \
	  exit 1; \
	fi

# The full gate: build everything, run the whole suite (unit, property,
# cram), lint the examples, diff the analysis baseline, then re-run
# the differential fault-tolerance suite — including its `Slow`
# workload x policy x schedule matrix — under a fixed QCheck seed so
# the randomized schedules are reproducible.
check: build test lint lint-baseline bench-sched bench-placement bench-obs bench-lower bench-fuse bench-serve
	QCHECK_SEED=$(QCHECK_SEED) dune exec test/test_main.exe -- test differential -e

bench:
	dune exec bench/main.exe

# Steady-state vs round-robin scheduling regression gate: writes
# BENCH_sched.json and fails if any steady run blocks more than its
# round-robin counterpart (or the outputs diverge).
bench-sched: build
	dune exec bench/sched.exe -- BENCH_sched.json

# Profile-guided placement regression gate: writes
# BENCH_placement.json and fails if the calibrated planner ever models
# slower than the static Prefer_accelerators default (or the outputs
# diverge, or dsp_chain fails to improve strictly).
bench-placement: build
	dune exec bench/placement_bench.exe -- BENCH_placement.json

# Observability regression gate: writes BENCH_obs.json and fails if
# the disabled-tracing emission cost implies more than 5% overhead on
# an untraced dsp_chain run, or if trace attribution classifies less
# than 99% of wall time into the named buckets.
bench-obs: build
	dune exec bench/observe_bench.exe -- BENCH_obs.json

# Map/reduce lowering regression gate: writes BENCH_lower.json and
# fails if any lowered run diverges from the legacy whole-array
# dispatch, models more than 5% slower than it, or if fewer than three
# Gpu_map workloads plan the GPU with a predicted speedup over
# bytecode.
bench-lower: build
	dune exec bench/lower_bench.exe -- BENCH_lower.json

# Cross-filter fusion regression gate: writes BENCH_fuse.json and
# fails if any fused run's output diverges from the per-stage run, if
# fusion ever models slower than per-stage placement, or if the
# calibrated planner stops placing dsp_chain's fused segment on an
# accelerator strictly faster than the best native placement.
bench-fuse: build
	dune exec bench/fuse_bench.exe -- BENCH_fuse.json

# Multi-tenant serving regression gate: writes BENCH_serve.json and
# fails if a contended 3-tenant load's WDRR device shares drift more
# than 15% from the tenant weights, if draining over the shared
# device pool stops beating single-device serialization by 1.1x, or
# if any served job's output diverges from a solo `lmc run`.
bench-serve: build
	dune exec bench/serve_bench.exe -- BENCH_serve.json

clean:
	dune clean
