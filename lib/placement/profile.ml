(* The persistent cost-profile store.

   One entry per (device, filter chain, generated code, device
   parameters) — identified by a content hash, so a profile survives
   exactly as long as the code and the device model it measured.
   Recompiling an unchanged program hashes to the same keys and every
   lookup hits; touching a filter's body changes the generated
   artifact text, changes the hash, and forces recalibration of just
   the chains that contain it.

   The store is a flat text file (one line per entry) so cram tests
   and humans can read it; floats are written in OCaml's hex-float
   notation for exact round-tripping — a warm run must predict
   bit-identical makespans to the cold run that calibrated it. *)

type source = Measured | Analytic

let source_name = function Measured -> "measured" | Analytic -> "analytic"

let source_of_name = function
  | "measured" -> Some Measured
  | "analytic" -> Some Analytic
  | _ -> None

type entry = {
  pr_key : string;  (** content hash (hex) *)
  pr_device : string;  (** "vm", "gpu", "fpga" or "native" *)
  pr_per_elem_ns : float;  (** marginal modeled cost per stream element *)
  pr_overhead_ns : float;
      (** fixed per-launch cost: kernel launch plus both boundary
          crossings' latency *)
  pr_bytes_per_elem : float;  (** marshaled width, informational *)
  pr_source : source;
  pr_label : string;  (** chain uid, for humans reading the file *)
}

let predict (e : entry) ~n =
  e.pr_overhead_ns +. (e.pr_per_elem_ns *. float_of_int n)

(* Content-hashed key. [content] is the generated artifact text (or
   the bytecode shape for the VM); [params] the device-model constants
   the measurement depended on. *)
let key ~device ~chain ~content ~params =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ device; chain; content; params ]))

type store = {
  st_path : string;
  st_entries : (string, entry) Hashtbl.t;
  mutable st_dirty : bool;
}

let magic = "# liquid-metal placement profiles v1"

let parse_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ key; device; per_elem; overhead; bytes; src; label ] -> (
    match
      ( float_of_string_opt per_elem,
        float_of_string_opt overhead,
        float_of_string_opt bytes,
        source_of_name src )
    with
    | Some pe, Some oh, Some b, Some s ->
      Some
        {
          pr_key = key;
          pr_device = device;
          pr_per_elem_ns = pe;
          pr_overhead_ns = oh;
          pr_bytes_per_elem = b;
          pr_source = s;
          pr_label = label;
        }
    | _ -> None)
  | _ -> None

let load path =
  let entries = Hashtbl.create 32 in
  (match open_in path with
  | exception Sys_error _ -> ()
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if line <> "" && line.[0] <> '#' then
              match parse_line line with
              | Some e -> Hashtbl.replace entries e.pr_key e
              | None -> ()
          done
        with End_of_file -> ()));
  { st_path = path; st_entries = entries; st_dirty = false }

let save t =
  if t.st_dirty then begin
    let oc = open_out t.st_path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (magic ^ "\n");
        Hashtbl.fold (fun _ e acc -> e :: acc) t.st_entries []
        |> List.sort (fun a b -> compare (a.pr_label, a.pr_key) (b.pr_label, b.pr_key))
        |> List.iter (fun e ->
               Printf.fprintf oc "%s %s %h %h %h %s %s\n" e.pr_key e.pr_device
                 e.pr_per_elem_ns e.pr_overhead_ns e.pr_bytes_per_elem
                 (source_name e.pr_source) e.pr_label));
    t.st_dirty <- false
  end

let find t key = Hashtbl.find_opt t.st_entries key

let add t e =
  Hashtbl.replace t.st_entries e.pr_key e;
  t.st_dirty <- true

let size t = Hashtbl.length t.st_entries
let path t = t.st_path
