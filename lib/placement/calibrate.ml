module Ir = Lime_ir.Ir
module I = Lime_ir.Interp
module V = Wire.Value
module Artifact = Runtime.Artifact
module Metrics = Runtime.Metrics
module Exec = Runtime.Exec
module Boundary = Wire.Boundary

(* Device cost calibration.

   A profile records the modeled cost of launching one (chain, device)
   pair as [overhead + per_elem * n]. Where the chain's element type
   has a synthetic generator the numbers are *measured*: the chain is
   microbenchmarked through the real execution path — VM dispatch for
   bytecode, [Exec.calibrate_batch] (full boundary marshaling + device
   model) for artifacts — at two stream sizes, and the two points give
   the linear fit. Stateful chains are measured too: the calibrator
   fabricates receiver objects from the IR class metadata (default
   fields, then the constructor over synthetic arguments), fresh for
   every benchmark run. Only chains whose element or constructor types
   have no generator fall back to an *analytic* profile derived from
   bytecode instruction counts and the device constants; the entry is
   marked accordingly.

   All costs are deterministic modeled nanoseconds (never wall time),
   so profiles are stable across machines and runs — which is what
   lets the on-disk store be reused warm. *)

type ctx = {
  cx_compiled : Liquid_metal.Compiler.compiled;
  cx_store : Profile.store;
  cx_engine : Exec.t;
      (** scratch engine for microbenchmarks: default device models,
          private metrics *)
  cx_fresh : (string, unit) Hashtbl.t;
      (** keys this context calibrated itself: re-looking one up is
          neither a store hit nor a recalibration *)
  mutable cx_hits : int;
  mutable cx_calibrated : int;
}

(* The scratch engine is created with the default device models; the
   analytic fallback must quote the same constants. *)
let fpga_clock_ns = 4.0
let gpu_device = Gpu.Device.gtx580

let create ?profile_store (compiled : Liquid_metal.Compiler.compiled) =
  let store =
    match profile_store with Some s -> s | None -> Profile.load "lm.profiles"
  in
  {
    cx_compiled = compiled;
    cx_store = store;
    cx_engine = Liquid_metal.Compiler.engine compiled;
    cx_fresh = Hashtbl.create 32;
    cx_hits = 0;
    cx_calibrated = 0;
  }

let store ctx = ctx.cx_store
let compiled ctx = ctx.cx_compiled
let hits ctx = ctx.cx_hits
let calibrated ctx = ctx.cx_calibrated

let fn_key (f : Ir.filter_info) =
  match f.Ir.target with
  | Ir.F_static key -> key
  | Ir.F_instance (cls, m) -> cls ^ "." ^ m

(* Deterministic synthetic elements for a scalar port type; [None]
   when the type has no obvious generator (the chain then gets an
   analytic profile). Values stay small so clamp/offset-style filters
   exercise their arithmetic without overflow traps. *)
let synth_value (ty : Ir.ty) i : V.t option =
  match ty with
  | Ir.I32 -> Some (V.Int (V.norm32 ((i * 7) + 3)))
  | Ir.F32 -> Some (V.Float (V.f32 ((float_of_int i *. 0.5) +. 1.0)))
  | Ir.Bool -> Some (V.Bool (i mod 2 = 0))
  | Ir.Bit -> Some (V.Bit (i mod 2 = 1))
  | Ir.Enum _ | Ir.Arr _ | Ir.Obj _ | Ir.Graph | Ir.Unit -> None

let bytes_per_elem (ty : Ir.ty) =
  match ty with
  | Ir.I32 | Ir.F32 -> 4.0
  | Ir.Bool | Ir.Bit -> 1.0
  | _ -> 4.0

(* A single-filter chain whose UID names a lowered kernel site is a
   map/reduce *worker*: its per-element work is one application of the
   site's function. *)
let worker_site ctx (chain : Ir.filter_info list) =
  match chain with
  | [ f ] ->
    Ir.String_map.find_opt f.Ir.uid
      ctx.cx_compiled.Liquid_metal.Compiler.lowered
  | _ -> None

let chain_insns ctx (chain : Ir.filter_info list) =
  match worker_site ctx chain with
  | Some lw ->
    (* Kernel-site bodies frequently *are* loops (matmul's dot product,
       nbody's force accumulation); a flat instruction count would
       underestimate their per-element cost by the trip count and
       invert the device ordering, so workers use the loop- and
       call-aware estimate. *)
    Lime_ir.Lower_mapreduce.weighted_insns
      ctx.cx_compiled.Liquid_metal.Compiler.ir
      lw.Lime_ir.Lower_mapreduce.lw_fn
  | None ->
    List.fold_left
      (fun acc f ->
        match
          Ir.String_map.find_opt (fn_key f)
            ctx.cx_compiled.Liquid_metal.Compiler.unit_.Bytecode.Compile.u_funcs
        with
        | Some code -> acc + Array.length code.Bytecode.Compile.c_insns
        | None -> acc + 16)
      0 chain

(* --- content-hashed keys ---------------------------------------------- *)

let device_name = function
  | None -> "vm"
  | Some a -> Artifact.device_name (Artifact.device a)

(* The generated code the profile is valid for: the artifact's source
   text, or the bytecode shape (per-filter instruction counts) for the
   VM — any edit to a filter body changes both. *)
let content_of ctx (artifact : Artifact.t option) chain =
  match artifact with
  | Some (Artifact.Gpu_kernel g) -> g.Artifact.ga_opencl
  | Some (Artifact.Fpga_module f) -> f.Artifact.fa_verilog
  | Some (Artifact.Native_binary nb) -> nb.Artifact.na_c
  | None ->
    String.concat ";"
      (List.map
         (fun f ->
           Printf.sprintf "%s=%d" (fn_key f) (chain_insns ctx [ f ]))
         chain)

(* The device-model constants a measurement depends on: boundary
   latency/bandwidth samples plus the GPU and FPGA parameters. Bump
   any of these and the old profiles go stale automatically. *)
let params_of ctx (artifact : Artifact.t option) =
  let m = Exec.metrics ctx.cx_engine in
  let sample b = Printf.sprintf "%h/%h" (Boundary.transfer_ns b 0) (Boundary.transfer_ns b 4096) in
  match artifact with
  | None -> Printf.sprintf "vm=%h" Metrics.cpu_ns_per_instruction
  | Some (Artifact.Native_binary _) ->
    Printf.sprintf "native=%h jni=%s" Metrics.native_ns_per_instruction
      (sample (Metrics.native_boundary m))
  | Some (Artifact.Gpu_kernel _) ->
    Printf.sprintf "gpu=%s lanes=%d launch=%h pcie=%s" gpu_device.Gpu.Device.name
      (Gpu.Device.total_lanes gpu_device)
      gpu_device.Gpu.Device.launch_overhead_ns
      (sample (Metrics.boundary m))
  | Some (Artifact.Fpga_module _) ->
    Printf.sprintf "clock=%h pcie=%s" fpga_clock_ns (sample (Metrics.boundary m))

let key_of ctx artifact chain =
  Profile.key ~device:(device_name artifact)
    ~chain:(Artifact.chain_uid chain)
    ~content:(content_of ctx artifact chain)
    ~params:(params_of ctx artifact)

(* --- receiver fabrication --------------------------------------------- *)

(* Fabricate a receiver object for an instance filter so stateful
   chains can be *measured* rather than estimated: allocate the class
   with default field values, then run its constructor with synthetic
   scalar arguments (mirroring [Interp]'s [R_newobj] semantics).
   [None] when the class is unknown, a constructor argument type has
   no generator, or the constructor traps — the chain then falls back
   to the analytic profile. *)
let fabricate_receiver ctx (cls : string) : I.v option =
  let prog = ctx.cx_compiled.Liquid_metal.Compiler.ir in
  match Ir.String_map.find_opt cls prog.Ir.classes with
  | None -> None
  | Some meta ->
    let fields =
      Array.of_list
        (List.map (fun (_, ty) -> I.default_value ty) meta.Ir.cm_fields)
    in
    let obj = I.Obj { I.obj_class = cls; obj_fields = fields } in
    (match meta.Ir.cm_ctor with
    | None -> Some obj
    | Some ctor -> (
      match Ir.find_func prog ctor with
      | None -> None
      | Some fn -> (
        let ctor_args =
          List.fold_right
            (fun (p : Ir.var) acc ->
              match acc with
              | None -> None
              | Some args -> (
                match synth_value p.Ir.v_ty p.Ir.v_id with
                | Some v -> Some (I.Prim v :: args)
                | None -> None))
            (List.tl fn.Ir.fn_params)
            (Some [])
        in
        match ctor_args with
        | None -> None
        | Some args -> (
          try
            ignore (I.call prog ctor (obj :: args));
            Some obj
          with I.Runtime_error _ -> None))))

(* One fabricated receiver slot per filter ([None] for static
   filters); [None] overall when any instance filter cannot be
   fabricated. *)
let fabricate_receivers ctx (chain : Ir.filter_info list) :
    I.v option list option =
  List.fold_right
    (fun (f : Ir.filter_info) acc ->
      match acc with
      | None -> None
      | Some rs -> (
        match f.Ir.target with
        | Ir.F_static _ -> Some (None :: rs)
        | Ir.F_instance (cls, _) -> (
          match fabricate_receiver ctx cls with
          | Some r -> Some (Some r :: rs)
          | None -> None)))
    chain (Some [])

(* --- measurement ------------------------------------------------------- *)

let calibration_sizes = (32, 96)

(* Linear fit through two measured points. *)
let fit (n1, c1) (n2, c2) =
  let per_elem = Float.max 0.0 ((c2 -. c1) /. float_of_int (n2 - n1)) in
  let overhead = Float.max 0.0 (c1 -. (per_elem *. float_of_int n1)) in
  (per_elem, overhead)

let measure_artifact ctx (artifact : Artifact.t) chain ~input_ty =
  let bench n =
    let xs =
      List.init n (fun i -> Option.get (synth_value input_ty i))
    in
    (* Fresh receivers per bench call: a stateful launch mutates its
       receivers, and the two-point fit needs both runs to start from
       the same state. Receivers are only passed when some filter is
       stateful — [Exec.calibrate_batch] aligns the list with the
       *artifact's* chain, which for fused artifacts is the single
       fused (all-static) filter. *)
    let receivers =
      match fabricate_receivers ctx chain with
      | Some rs when List.exists Option.is_some rs -> Some rs
      | _ -> None
    in
    let before = Exec.modeled_ns ctx.cx_engine in
    ignore (Exec.calibrate_batch ?receivers ctx.cx_engine artifact xs);
    Exec.modeled_ns ctx.cx_engine -. before
  in
  let n1, n2 = calibration_sizes in
  fit (n1, bench n1) (n2, bench n2)

(* The VM microbenchmark: run synthetic elements through the chain's
   filter functions on the bytecode VM and charge the executed
   instructions to the CPU model. Per-element cost only — the
   interpreter has no launch overhead and no boundary. Instance
   filters run against fabricated receivers, matching the engine's
   [receiver; element] calling convention. *)
let measure_vm ctx chain ~receivers ~input_ty =
  let unit_ = ctx.cx_compiled.Liquid_metal.Compiler.unit_ in
  let samples = 8 in
  let executed = ref 0 in
  for i = 0 to samples - 1 do
    let x = ref (Option.get (synth_value input_ty i)) in
    List.iter2
      (fun f receiver ->
        let args =
          match receiver with
          | Some r -> [ r; I.Prim !x ]
          | None -> [ I.Prim !x ]
        in
        let r = Bytecode.Vm.run unit_ (fn_key f) args in
        executed := !executed + r.Bytecode.Vm.executed;
        x := I.prim_exn r.Bytecode.Vm.value)
      chain receivers
  done;
  let per_elem =
    float_of_int !executed /. float_of_int samples
    *. Metrics.cpu_ns_per_instruction
  in
  (per_elem, 0.0)

(* --- the analytic fallback --------------------------------------------- *)

(* Mirrors the engine's static estimate: instruction counts under the
   per-device ns/insn constants, plus launch overhead and boundary
   latency as the fixed cost and boundary bandwidth as a per-element
   cost. Used when a chain cannot be microbenchmarked (stateful
   receivers, non-scalar ports). *)
let analytic ctx (artifact : Artifact.t option) chain ~input_ty =
  let m = Exec.metrics ctx.cx_engine in
  let insns = float_of_int (chain_insns ctx chain) in
  let eb = bytes_per_elem input_ty in
  let latency b = Boundary.transfer_ns b 0 in
  let per_byte b = (Boundary.transfer_ns b 4096 -. latency b) /. 4096.0 in
  (* Fused kernels stream their result back (no return-trip latency);
     the fused FPGA pipeline additionally runs at initiation interval
     1, paying the chain depth once as fill latency. Mirrors the
     engine's [estimate_cost]. *)
  let fused =
    match artifact with
    | Some (Artifact.Gpu_kernel g) -> Artifact.is_fused_uid g.Artifact.ga_uid
    | Some (Artifact.Fpga_module f) -> Artifact.is_fused_uid f.Artifact.fa_uid
    | _ -> false
  in
  match artifact with
  | None -> (insns *. Metrics.cpu_ns_per_instruction, 0.0)
  | Some (Artifact.Native_binary _) ->
    let b = Metrics.native_boundary m in
    ( (insns *. Metrics.native_ns_per_instruction) +. (2.0 *. per_byte b *. eb),
      2.0 *. latency b )
  | Some (Artifact.Gpu_kernel _) ->
    let b = Metrics.boundary m in
    let lanes = float_of_int (Gpu.Device.total_lanes gpu_device) in
    ( Gpu.Device.cycles_to_ns gpu_device (insns /. lanes)
      +. (2.0 *. per_byte b *. eb),
      ((if fused then 1.0 else 2.0) *. latency b)
      +. gpu_device.Gpu.Device.launch_overhead_ns )
  | Some (Artifact.Fpga_module _) ->
    let b = Metrics.boundary m in
    if fused then
      let fill = Float.max 1.0 (insns /. 4.0) in
      ( fpga_clock_ns +. (2.0 *. per_byte b *. eb),
        latency b +. ((fill +. 4.0) *. fpga_clock_ns) )
    else
      ( (3.0 *. fpga_clock_ns) +. (2.0 *. per_byte b *. eb),
        (2.0 *. latency b)
        +. (3.0 *. float_of_int (List.length chain) *. fpga_clock_ns) )

(* --- the profile entry ------------------------------------------------- *)

let profile ctx (artifact : Artifact.t option) (chain : Ir.filter_info list) :
    Profile.entry =
  let key = key_of ctx artifact chain in
  match Profile.find ctx.cx_store key with
  | Some e ->
    if not (Hashtbl.mem ctx.cx_fresh key) then ctx.cx_hits <- ctx.cx_hits + 1;
    e
  | None ->
    let input_ty =
      match chain with f :: _ -> f.Ir.input | [] -> Ir.Unit
    in
    let receivers = fabricate_receivers ctx chain in
    let measurable =
      chain <> [] && receivers <> None && synth_value input_ty 0 <> None
    in
    (* Measurement probes are runtime infrastructure, not application
       launches: run them with fault injection suspended so an
       installed schedule neither kills calibration (the probes bypass
       the failure protocol) nor silently spends its budget here. *)
    let (per_elem, overhead), source =
      Support.Fault.without (fun () ->
          if not measurable then
            (analytic ctx artifact chain ~input_ty, Profile.Analytic)
          else
            match artifact with
            | None ->
              ( measure_vm ctx chain ~receivers:(Option.get receivers)
                  ~input_ty,
                Profile.Measured )
            | Some a -> (measure_artifact ctx a chain ~input_ty, Profile.Measured))
    in
    let e =
      {
        Profile.pr_key = key;
        pr_device = device_name artifact;
        pr_per_elem_ns = per_elem;
        pr_overhead_ns = overhead;
        pr_bytes_per_elem = bytes_per_elem input_ty;
        pr_source = source;
        pr_label = Artifact.chain_uid chain;
      }
    in
    Profile.add ctx.cx_store e;
    Hashtbl.replace ctx.cx_fresh key ();
    ctx.cx_calibrated <- ctx.cx_calibrated + 1;
    e

(* --- launch prediction (the drift report's join key) ------------------- *)

let artifact_chain (a : Artifact.t) =
  match a with
  | Artifact.Gpu_kernel { ga_kind = Artifact.G_filter_chain fs; _ } -> Some fs
  | Artifact.Gpu_kernel { ga_kind = Artifact.G_map m; _ } ->
    (* map/reduce kernels calibrate as their lowered worker chain *)
    Some [ Lime_ir.Lower_mapreduce.(worker_filter (K_map m)) ]
  | Artifact.Gpu_kernel { ga_kind = Artifact.G_reduce r; _ } ->
    Some [ Lime_ir.Lower_mapreduce.(worker_filter (K_reduce r)) ]
  | Artifact.Fpga_module f -> Some f.Artifact.fa_filters
  | Artifact.Native_binary n -> Some n.Artifact.na_filters

let device_of_name = function
  | "gpu" -> Some Artifact.Gpu
  | "fpga" -> Some Artifact.Fpga
  | "native" -> Some Artifact.Native
  | _ -> None

(* Predicted modeled ns for one launch of [n] elements of chain [uid]
   on [device] (names as they appear in `launch` trace spans), plus the
   profile source. [None] when the artifact does not exist or is
   quarantined; map/reduce kernels calibrate as their lowered worker
   chain. Misses calibrate through the store, so offline analysis
   against a warm store never re-measures. *)
let predictor ctx ~uid ~device ~n =
  match device_of_name device with
  | None -> None
  | Some dev -> (
    match
      Runtime.Store.find_on ctx.cx_compiled.Liquid_metal.Compiler.store ~uid
        ~device:dev
    with
    | None -> None
    | Some a -> (
      match artifact_chain a with
      | None -> None
      | Some chain ->
        let e = profile ctx (Some a) chain in
        Some (Profile.predict e ~n, Profile.source_name e.Profile.pr_source)))
