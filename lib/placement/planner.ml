module Ir = Lime_ir.Ir
module Artifact = Runtime.Artifact
module Substitute = Runtime.Substitute
module Exec = Runtime.Exec

(* The profile-guided placement planner.

   For every task graph in a compiled program it enumerates placement
   candidates — the static policies plus the calibrated argmin that
   [Substitute.plan_adaptive] computes over the cost profiles — and
   predicts each candidate's makespan by combining the per-segment
   profiles with the graph's SDF repetition vector ([Analysis.Rates]):
   the same rate graph the steady-state scheduler solves, weighted by
   firing costs. The planner's choice is the calibrated candidate; the
   report shows where every alternative lands and why. *)

type seg_cost = {
  sg_desc : string;  (** e.g. ["gpu:F1+F2"] or ["bytecode:F1"] *)
  sg_device : string;
  sg_source : Profile.source;
  sg_firing_ns : float;  (** cost of one firing of the actor *)
  sg_burst : int;  (** elements moved per firing *)
  sg_total_ns : float;  (** predicted cost over the whole stream *)
}

type candidate = {
  cd_name : string;
  cd_plan : Substitute.segment list;
  cd_plan_text : string;
  cd_makespan_ns : float;
  cd_segments : seg_cost list;
}

type graph_plan = {
  gp_uid : string;
  gp_kind : string;  (** ["graph"], ["map site"] or ["reduce site"] *)
  gp_filters : int;
  gp_planned : candidate;  (** the calibrated argmin — the planner's choice *)
  gp_default : candidate;  (** the static [Prefer_accelerators] baseline *)
  gp_candidates : candidate list;  (** all, sorted by predicted makespan *)
  gp_speedup : float;
      (** predicted speedup of the planned candidate over all-bytecode *)
  gp_rationale : string;
}

type report = {
  rp_n : int;
  rp_graphs : graph_plan list;
  rp_store_path : string;
  rp_store_size : int;
  rp_hits : int;
  rp_calibrated : int;
}

(* The cost model handed to the engine ([Exec.create ?cost_model] or
   [Exec.set_cost_model]): predictions straight from the calibrated
   profiles, so the Adaptive policy and the online re-planner agree
   with the plan the report printed. *)
let cost_fn (ctx : Calibrate.ctx) : Exec.cost_model =
 fun ~n artifact chain -> Profile.predict (Calibrate.profile ctx artifact chain) ~n

(* --- makespan prediction ----------------------------------------------- *)

(* Mirror of the rate graph [Runtime.Exec] runs: source and sink move
   one element per firing, bytecode filters are 1/1 actors, a device
   segment pops and pushes its whole batch per firing. Solving the
   balance equations gives the repetition vector; the makespan is the
   bottleneck actor's total work plus one pipeline fill (each other
   actor's single-firing latency). Unsolvable graphs (cannot happen
   for these chain shapes, but belt and braces) fall back to the
   sequential sum. *)
let makespan_of ~n (stages : (float * int) list) : float =
  let module R = Analysis.Rates in
  let stage = Array.of_list stages in
  let name i = "s" ^ string_of_int i in
  let sequential () =
    Array.fold_left
      (fun acc (firing, burst) ->
        acc +. (firing *. Float.of_int ((n + burst - 1) / max burst 1)))
      0.0 stage
  in
  if n <= 0 then 0.0
  else
    let edges =
      List.init
        (Array.length stage - 1)
        (fun i ->
          {
            R.e_src = name i;
            e_dst = name (i + 1);
            e_push = Analysis.Interval.of_int (snd stage.(i));
            e_pop = Analysis.Interval.of_int (snd stage.(i + 1));
            e_init = 0;
          })
    in
    let g =
      {
        R.g_actors = List.init (Array.length stage) name;
        g_edges = edges;
      }
    in
    match R.solve g with
    | Error _ -> sequential ()
    | Ok sched ->
      let reps = Array.of_list (List.map snd sched.R.s_reps) in
      let per_iter = reps.(0) * max (snd stage.(0)) 1 in
      let iterations = (n + per_iter - 1) / per_iter in
      let totals =
        Array.mapi
          (fun i (firing, _) -> Float.of_int (iterations * reps.(i)) *. firing)
          stage
      in
      let bottleneck = ref 0 in
      Array.iteri
        (fun i t -> if t > totals.(!bottleneck) then bottleneck := i)
        totals;
      let fill =
        Array.fold_left (fun acc (firing, _) -> acc +. firing) 0.0 stage
      in
      totals.(!bottleneck) +. fill -. fst stage.(!bottleneck)

let seg_costs ctx ~n (segs : Substitute.segment list) : seg_cost list =
  List.concat_map
    (function
      | Substitute.S_bytecode fs ->
        List.map
          (fun (f : Ir.filter_info) ->
            let e = Calibrate.profile ctx None [ f ] in
            {
              sg_desc = "bytecode:" ^ f.Ir.uid;
              sg_device = "vm";
              sg_source = e.Profile.pr_source;
              sg_firing_ns = e.Profile.pr_per_elem_ns;
              sg_burst = 1;
              sg_total_ns = Float.of_int n *. e.Profile.pr_per_elem_ns;
            })
          fs
      | Substitute.S_device (a, fs) ->
        let e = Calibrate.profile ctx (Some a) fs in
        let total = Profile.predict e ~n in
        [
          {
            sg_desc =
              Artifact.device_name (Artifact.device a) ^ ":" ^ Artifact.uid a;
            sg_device = Artifact.device_name (Artifact.device a);
            sg_source = e.Profile.pr_source;
            sg_firing_ns = total;
            sg_burst = n;
            sg_total_ns = total;
          };
        ])
    segs

let candidate_of ctx ~n name (segs : Substitute.segment list) : candidate =
  let costs = seg_costs ctx ~n segs in
  let stages =
    ((0.0, 1) :: List.map (fun s -> (s.sg_firing_ns, s.sg_burst)) costs)
    @ [ (0.0, 1) ]
  in
  {
    cd_name = name;
    cd_plan = segs;
    cd_plan_text = Substitute.describe_plan segs;
    cd_makespan_ns = makespan_of ~n stages;
    cd_segments = costs;
  }

(* --- candidate enumeration --------------------------------------------- *)

let static_policies =
  [
    ("accelerators", Substitute.Prefer_accelerators);
    ("gpu-only", Substitute.Prefer_devices [ Artifact.Gpu ]);
    ("fpga-only", Substitute.Prefer_devices [ Artifact.Fpga ]);
    ("native-only", Substitute.Prefer_devices [ Artifact.Native ]);
    ("bytecode", Substitute.Bytecode_only);
  ]

let us ns = ns /. 1000.0

let rationale ~n (planned : candidate) (default : candidate) =
  if planned.cd_plan_text = default.cd_plan_text then
    Printf.sprintf
      "the static default (%s) is already cost-optimal at n=%d: predicted %.1f us"
      default.cd_plan_text n (us planned.cd_makespan_ns)
  else
    let bottleneck =
      List.fold_left
        (fun acc s -> if s.sg_total_ns > acc.sg_total_ns then s else acc)
        (List.hd default.cd_segments)
        default.cd_segments
    in
    Printf.sprintf
      "chose %s over the default %s: predicted %.1f us vs %.1f us (%.2fx) at \
       n=%d; the default is dominated by %s (%.1f us)"
      planned.cd_plan_text default.cd_plan_text (us planned.cd_makespan_ns)
      (us default.cd_makespan_ns)
      (default.cd_makespan_ns /. Float.max planned.cd_makespan_ns 1e-9)
      n bottleneck.sg_desc (us bottleneck.sg_total_ns)

let plan_filters ctx ~n store ~kind ~uid (filters : Ir.filter_info list) :
    graph_plan =
  let calibrated ~fuse name =
    candidate_of ctx ~n name
      (Substitute.plan_adaptive ~fuse
         ~cost:(fun artifact chain ->
           Profile.predict (Calibrate.profile ctx artifact chain) ~n)
         store filters)
  in
  (* Fusion is a placement decision, not a foregone conclusion: the
     planner prices fuse-then-offload against the best per-stage
     substitution and keeps whichever wins. The nofuse candidate is
     dropped when no fusible run exists (identical plans). *)
  let fused_cand = calibrated ~fuse:true "calibrated" in
  let nofuse_cand = calibrated ~fuse:false "calibrated-nofuse" in
  let calibrated_cands =
    if nofuse_cand.cd_plan_text = fused_cand.cd_plan_text then [ fused_cand ]
    else [ fused_cand; nofuse_cand ]
  in
  let planned =
    List.fold_left
      (fun acc c -> if c.cd_makespan_ns < acc.cd_makespan_ns then c else acc)
      (List.hd calibrated_cands)
      (List.tl calibrated_cands)
  in
  let statics =
    List.map
      (fun (name, policy) ->
        candidate_of ctx ~n name (Substitute.plan policy store filters))
      static_policies
  in
  let default = List.hd statics in
  let bytecode =
    List.find (fun c -> c.cd_name = "bytecode") statics
  in
  let candidates =
    List.stable_sort
      (fun a b -> compare a.cd_makespan_ns b.cd_makespan_ns)
      (calibrated_cands @ statics)
  in
  {
    gp_uid = uid;
    gp_kind = kind;
    gp_filters = List.length filters;
    gp_planned = planned;
    gp_default = default;
    gp_candidates = candidates;
    gp_speedup =
      bytecode.cd_makespan_ns /. Float.max planned.cd_makespan_ns 1e-9;
    gp_rationale = rationale ~n planned default;
  }

let plan_graph ctx ~n store (gt : Ir.graph_template) : graph_plan option =
  let filters =
    List.filter_map
      (function Ir.N_filter f -> Some f | Ir.N_source _ | Ir.N_sink _ -> None)
      gt.Ir.gt_nodes
  in
  if filters = [] then None
  else Some (plan_filters ctx ~n store ~kind:"graph" ~uid:gt.Ir.gt_uid filters)

(* A lowered kernel site plans as its 1-filter worker chain: the
   scatter/gather endpoints are free (host-side staging), so the
   worker's candidate set *is* the site's placement space. *)
let plan_site ctx ~n store (lw : Lime_ir.Lower_mapreduce.lowered) : graph_plan
    =
  let module Lmr = Lime_ir.Lower_mapreduce in
  plan_filters ctx ~n store
    ~kind:(Lmr.kind_name lw.Lmr.lw_kind ^ " site")
    ~uid:lw.Lmr.lw_uid
    [ lw.Lmr.lw_worker ]

let plan (ctx : Calibrate.ctx) ~n : report =
  let compiled = Calibrate.compiled ctx in
  let store = compiled.Liquid_metal.Compiler.store in
  let graphs =
    Ir.String_map.fold
      (fun _ gt acc ->
        match plan_graph ctx ~n store gt with
        | Some gp -> gp :: acc
        | None -> acc)
      compiled.Liquid_metal.Compiler.ir.Ir.templates []
    |> List.rev
  in
  let sites =
    Ir.String_map.fold
      (fun _ lw acc -> plan_site ctx ~n store lw :: acc)
      compiled.Liquid_metal.Compiler.lowered []
    |> List.rev
  in
  let graphs = graphs @ sites in
  {
    rp_n = n;
    rp_graphs = graphs;
    rp_store_path = Profile.path (Calibrate.store ctx);
    rp_store_size = Profile.size (Calibrate.store ctx);
    rp_hits = Calibrate.hits ctx;
    rp_calibrated = Calibrate.calibrated ctx;
  }

let run ?(profile_path = "lm.profiles") ~n compiled : report =
  let store = Profile.load profile_path in
  let ctx = Calibrate.create ~profile_store:store compiled in
  let report = plan ctx ~n in
  Profile.save store;
  report

(* --- multi-stream-length crossover ------------------------------------- *)

(* The paper's section 7 observation, made inspectable: which device
   wins depends on the stream length, because launch overhead and
   boundary latency amortize. One row per swept n, per graph: every
   candidate's makespan and the argmin. The whole sweep reuses one
   calibration context, so the profiles are measured once and the
   sweep is pure prediction. *)

type crossover_row = {
  xr_n : int;
  xr_best : candidate;
  xr_makespans : (string * float) list;  (** candidate name -> ns *)
}

type crossover = {
  xo_uid : string;
  xo_kind : string;
  xo_rows : crossover_row list;  (** ascending n *)
}

let sweep_lengths ?(lo = 64) ?(hi = 65536) () =
  let rec go n acc = if n > hi then List.rev acc else go (n * 2) (n :: acc) in
  go (max lo 1) []

let crossover (ctx : Calibrate.ctx) ~ns : crossover list =
  let reports = List.map (fun n -> n, plan ctx ~n) ns in
  match reports with
  | [] -> []
  | (_, first) :: _ ->
    List.map
      (fun (gp0 : graph_plan) ->
        let rows =
          List.map
            (fun (n, (r : report)) ->
              let gp =
                List.find (fun g -> g.gp_uid = gp0.gp_uid) r.rp_graphs
              in
              {
                xr_n = n;
                xr_best = gp.gp_planned;
                xr_makespans =
                  List.map
                    (fun c -> c.cd_name, c.cd_makespan_ns)
                    gp.gp_candidates;
              })
            reports
        in
        { xo_uid = gp0.gp_uid; xo_kind = gp0.gp_kind; xo_rows = rows })
      first.rp_graphs

let render_crossover (xs : crossover list) : string =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if xs = [] then
    p "(nothing to sweep: the program has no task graphs or kernel sites)\n";
  List.iter
    (fun x ->
      p "crossover for %s %s (best candidate per stream length):\n" x.xo_kind
        x.xo_uid;
      let tbl =
        Support.Stats.Table.create
          ~columns:[ "n"; "best"; "plan"; "makespan_us"; "vs bytecode" ]
      in
      List.iter
        (fun row ->
          let bytecode_ns =
            Option.value
              (List.assoc_opt "bytecode" row.xr_makespans)
              ~default:row.xr_best.cd_makespan_ns
          in
          Support.Stats.Table.add_row tbl
            [
              string_of_int row.xr_n;
              row.xr_best.cd_name;
              row.xr_best.cd_plan_text;
              Printf.sprintf "%.1f" (us row.xr_best.cd_makespan_ns);
              Printf.sprintf "%.2fx"
                (bytecode_ns /. Float.max row.xr_best.cd_makespan_ns 1e-9);
            ])
        x.xo_rows;
      Buffer.add_string buf (Support.Stats.Table.render tbl);
      (* flag the flip points: where growing the stream changes the
         winning placement — the lengths a length-aware scheduler
         must treat differently *)
      let rec flips_of = function
        | (a : crossover_row) :: (b :: _ as rest) ->
          (if a.xr_best.cd_plan_text <> b.xr_best.cd_plan_text then
             [ b.xr_n, a.xr_best.cd_plan_text, b.xr_best.cd_plan_text ]
           else [])
          @ flips_of rest
        | _ -> []
      in
      let flips = flips_of x.xo_rows in
      (match flips with
      | [] -> p "  no crossover: one placement wins at every swept length\n"
      | fs ->
        List.iter
          (fun (n, from_, to_) ->
            p "  crossover at n=%d: %s -> %s\n" n from_ to_)
          fs);
      p "\n")
    xs;
  Buffer.contents buf

(* --- rendering --------------------------------------------------------- *)

let render (r : report) : string =
  let buf = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  p "placement plan at n=%d\n" r.rp_n;
  if r.rp_graphs = [] then
    p "\n(nothing to place: the program has no task graphs or kernel sites)\n";
  List.iter
    (fun gp ->
      p "\n%s %s (%d filter(s)):\n" gp.gp_kind gp.gp_uid gp.gp_filters;
      let name_w =
        List.fold_left
          (fun acc c -> max acc (String.length c.cd_name))
          0 gp.gp_candidates
      in
      let plan_w =
        List.fold_left
          (fun acc c -> max acc (String.length c.cd_plan_text))
          0 gp.gp_candidates
      in
      List.iter
        (fun c ->
          p "  %-*s  %-*s  %8.1f us%s\n" name_w c.cd_name plan_w c.cd_plan_text
            (us c.cd_makespan_ns)
            (if c.cd_name = gp.gp_planned.cd_name then "  <- planned" else ""))
        gp.gp_candidates;
      List.iter
        (fun s ->
          p "  segment %s: %.1f us [%s]\n" s.sg_desc (us s.sg_total_ns)
            (Profile.source_name s.sg_source))
        gp.gp_planned.cd_segments;
      p "  predicted speedup over bytecode: %.3fx\n" gp.gp_speedup;
      p "  rationale: %s\n" gp.gp_rationale)
    r.rp_graphs;
  p "\nprofile store %s: %d entry(s), %d hit(s), %d calibrated\n"
    r.rp_store_path r.rp_store_size r.rp_hits r.rp_calibrated;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json (r : report) : string =
  let seg s =
    Printf.sprintf
      "{\"desc\":\"%s\",\"device\":\"%s\",\"source\":\"%s\",\"total_ns\":%.1f}"
      (json_escape s.sg_desc) s.sg_device
      (Profile.source_name s.sg_source)
      s.sg_total_ns
  in
  let cand c =
    Printf.sprintf
      "{\"name\":\"%s\",\"plan\":\"%s\",\"makespan_ns\":%.1f,\"segments\":[%s]}"
      c.cd_name (json_escape c.cd_plan_text) c.cd_makespan_ns
      (String.concat "," (List.map seg c.cd_segments))
  in
  let graph gp =
    Printf.sprintf
      "{\"uid\":\"%s\",\"kind\":\"%s\",\"filters\":%d,\"planned\":%s,\"default\":%s,\"candidates\":[%s],\"speedup\":%.3f,\"rationale\":\"%s\"}"
      (json_escape gp.gp_uid) (json_escape gp.gp_kind) gp.gp_filters
      (cand gp.gp_planned) (cand gp.gp_default)
      (String.concat "," (List.map cand gp.gp_candidates))
      gp.gp_speedup
      (json_escape gp.gp_rationale)
  in
  Printf.sprintf
    "{\"n\":%d,\"store\":{\"path\":\"%s\",\"entries\":%d,\"hits\":%d,\"calibrated\":%d},\"graphs\":[%s]}"
    r.rp_n (json_escape r.rp_store_path) r.rp_store_size r.rp_hits
    r.rp_calibrated
    (String.concat "," (List.map graph r.rp_graphs))

let render_crossover_json (xs : crossover list) : string =
  let row (r : crossover_row) =
    Printf.sprintf
      "{\"n\":%d,\"best\":\"%s\",\"plan\":\"%s\",\"makespan_ns\":%.1f,\"candidates\":{%s}}"
      r.xr_n r.xr_best.cd_name
      (json_escape r.xr_best.cd_plan_text)
      r.xr_best.cd_makespan_ns
      (String.concat ","
         (List.map
            (fun (name, ns) -> Printf.sprintf "\"%s\":%.1f" name ns)
            r.xr_makespans))
  in
  Printf.sprintf "{\"crossover\":[%s]}"
    (String.concat ","
       (List.map
          (fun x ->
            Printf.sprintf "{\"uid\":\"%s\",\"kind\":\"%s\",\"rows\":[%s]}"
              (json_escape x.xo_uid) (json_escape x.xo_kind)
              (String.concat "," (List.map row x.xo_rows)))
          xs))
