(** The persistent cost-profile store (see [docs/PLACEMENT.md]).

    One entry per (device, filter chain, generated code, device
    parameters), identified by a content hash: recompiling an
    unchanged program hits every profile; changing a filter's body
    invalidates exactly the chains containing it. The on-disk form is
    a flat text file with hex floats, so warm runs predict
    bit-identical makespans to the cold run that calibrated them. *)

type source =
  | Measured  (** microbenchmarked on the device model *)
  | Analytic  (** derived from instruction counts and device constants *)

val source_name : source -> string

type entry = {
  pr_key : string;  (** content hash (hex) *)
  pr_device : string;  (** "vm", "gpu", "fpga" or "native" *)
  pr_per_elem_ns : float;  (** marginal modeled cost per stream element *)
  pr_overhead_ns : float;
      (** fixed per-launch cost: kernel launch plus boundary latency *)
  pr_bytes_per_elem : float;  (** marshaled width, informational *)
  pr_source : source;
  pr_label : string;  (** chain uid, for humans reading the file *)
}

val predict : entry -> n:int -> float
(** [overhead + per_elem * n]: the modeled cost of one launch moving
    [n] elements. *)

val key : device:string -> chain:string -> content:string -> params:string -> string
(** The content hash: device name, chain uid, generated artifact text
    (or bytecode shape) and the device-model constants the
    measurement depends on. *)

type store

val load : string -> store
(** Load a profile store from disk; a missing file is an empty store. *)

val save : store -> unit
(** Persist back to the load path (no-op when nothing changed). *)

val find : store -> string -> entry option
val add : store -> entry -> unit
val size : store -> int
val path : store -> string
