(** Device cost calibration (see [docs/PLACEMENT.md]).

    Produces one {!Profile.entry} per (chain, device) pair, consulting
    the persistent store first. Receiverless chains (all-static
    filters over a scalar element type) are *measured*: run through
    the real execution path — VM dispatch for bytecode,
    {!Runtime.Exec.calibrate_batch} (full boundary marshaling + device
    model) for artifacts — at two stream sizes, linear-fitted into
    per-element and per-launch costs. Stateful chains fall back to an
    *analytic* profile from bytecode instruction counts and the device
    constants. All costs are deterministic modeled nanoseconds, so the
    on-disk store is valid across runs and machines. *)

module Ir = Lime_ir.Ir

type ctx

val create : ?profile_store:Profile.store -> Liquid_metal.Compiler.compiled -> ctx
(** A calibration context over one compiled program: a scratch engine
    (default device models, private metrics) plus the profile store
    (default: [lm.profiles] in the working directory). *)

val profile : ctx -> Runtime.Artifact.t option -> Ir.filter_info list -> Profile.entry
(** The cost profile for running [chain] on [artifact]'s device
    ([None] = interpreted bytecode): served from the store when the
    content hash matches, calibrated and recorded otherwise. *)

val store : ctx -> Profile.store
val compiled : ctx -> Liquid_metal.Compiler.compiled

val hits : ctx -> int
(** Lookups served from the store by this context. *)

val calibrated : ctx -> int
(** Profiles calibrated (measured or analytic) by this context. *)

val calibration_sizes : int * int
(** The two stream sizes of the measured linear fit. *)

val predictor :
  ctx -> uid:string -> device:string -> n:int -> (float * string) option
(** Predicted modeled ns for one launch of [n] elements of chain [uid]
    on [device] ("gpu"/"fpga"/"native", as `launch` trace spans name
    them), plus the profile source name — the join the drift report in
    [lib/observe] performs against observed launches. [None] when the
    artifact is absent, quarantined, or not a filter chain. Misses
    calibrate through the store. *)

val fn_key : Ir.filter_info -> string
(** The function key a filter dispatches to (shared helper). *)
