(** The profile-guided placement planner (see [docs/PLACEMENT.md]).

    For every task graph in a compiled program, enumerate placement
    candidates — the static substitution policies plus the calibrated
    argmin [Runtime.Substitute.plan_adaptive] computes over the cost
    profiles — and predict each candidate's makespan by weighting the
    graph's SDF repetition vector ([Analysis.Rates]) with the
    per-segment profiles. The planner's choice is the calibrated
    candidate; the report records every alternative and a
    human-readable rationale. *)

module Ir = Lime_ir.Ir

type seg_cost = {
  sg_desc : string;  (** e.g. ["gpu:F1+F2"] or ["bytecode:F1"] *)
  sg_device : string;
  sg_source : Profile.source;
  sg_firing_ns : float;  (** cost of one firing of the actor *)
  sg_burst : int;  (** elements moved per firing *)
  sg_total_ns : float;  (** predicted cost over the whole stream *)
}

type candidate = {
  cd_name : string;
  cd_plan : Runtime.Substitute.segment list;
  cd_plan_text : string;
  cd_makespan_ns : float;
  cd_segments : seg_cost list;
}

type graph_plan = {
  gp_uid : string;
  gp_kind : string;  (** ["graph"], ["map site"] or ["reduce site"] *)
  gp_filters : int;
  gp_planned : candidate;  (** the calibrated argmin — the planner's choice *)
  gp_default : candidate;  (** the static [Prefer_accelerators] baseline *)
  gp_candidates : candidate list;  (** all, sorted by predicted makespan *)
  gp_speedup : float;
      (** predicted speedup of the planned candidate over all-bytecode *)
  gp_rationale : string;
}

type report = {
  rp_n : int;
  rp_graphs : graph_plan list;
  rp_store_path : string;
  rp_store_size : int;
  rp_hits : int;
  rp_calibrated : int;
}

val cost_fn : Calibrate.ctx -> Runtime.Exec.cost_model
(** The calibrated cost model for [Exec.create ?cost_model] /
    [Exec.set_cost_model]: the engine's Adaptive policy and online
    re-planner then agree with the plan the report printed. *)

val makespan_of : n:int -> (float * int) list -> float
(** [makespan_of ~n stages] predicts a pipeline's makespan from
    per-actor (firing cost, burst) pairs, source through sink: solve
    the SDF balance equations, charge the bottleneck actor's total
    work plus one pipeline fill. Falls back to the sequential sum if
    the rate algebra cannot solve the graph. *)

val plan : Calibrate.ctx -> n:int -> report
(** Plan every task graph and every lowered map/reduce kernel site
    ([Lime_ir.Lower_mapreduce]) of the context's program for stream
    length [n]. Does not persist the profile store — callers owning the
    store decide when to {!Profile.save}. *)

val run : ?profile_path:string -> n:int -> Liquid_metal.Compiler.compiled -> report
(** Load the profile store (default [lm.profiles]), plan, and persist
    the store back — the [lmc plan] entry point. *)

val render : report -> string
val render_json : report -> string

(** {2 Multi-stream-length crossover (paper section 7)}

    Which device wins depends on the stream length: launch overhead
    and boundary latency amortize as [n] grows. The crossover sweep
    plans one program at many lengths through a single calibration
    context (profiles are measured once; the sweep itself is pure
    prediction) and reports, per graph, the winning candidate at each
    length and where the winner flips — the decisions a length-aware
    scheduler ([lib/serve]) makes, made inspectable. *)

type crossover_row = {
  xr_n : int;
  xr_best : candidate;
  xr_makespans : (string * float) list;  (** candidate name -> ns *)
}

type crossover = {
  xo_uid : string;
  xo_kind : string;
  xo_rows : crossover_row list;  (** ascending n *)
}

val sweep_lengths : ?lo:int -> ?hi:int -> unit -> int list
(** Powers of two from [lo] (default 64) through [hi] (default
    65536). *)

val crossover : Calibrate.ctx -> ns:int list -> crossover list
(** One crossover table per task graph / kernel site, swept over
    [ns]. *)

val render_crossover : crossover list -> string
(** Text table per graph with the flip points called out. *)

val render_crossover_json : crossover list -> string
