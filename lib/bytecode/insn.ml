module Ir = Lime_ir.Ir

(* The bytecode instruction set.

   The frontend "generates Java bytecode for executing the entire
   program in a JVM" (paper section 3); this stack-machine ISA plays
   that role. Every Lime construct compiles here, so the CPU always has
   an implementation of every task — the property the runtime's
   substitution algorithm relies on.

   Branch targets are absolute instruction indices within the code
   array of one compiled function. *)

type map_desc = {
  bm_uid : string;  (** artifact label of this map site *)
  bm_fn : string;
  bm_flags : bool list;  (** per-argument: [true] = mapped array *)
  bm_elem_ty : Ir.ty;
}

type reduce_desc = { br_uid : string; br_fn : string; br_elem_ty : Ir.ty }

type t =
  | CONST of Ir.const
  | LOAD of int  (** push local slot *)
  | STORE of int  (** pop into local slot *)
  | DUP
  | POP
  | UNOP of Ir.unop
  | BINOP of Ir.binop
  | ALOAD  (** arr, idx -> elem *)
  | ASTORE  (** arr, idx, value -> *)
  | ALOAD_U  (** [ALOAD] with the bounds trap statically discharged *)
  | ASTORE_U  (** [ASTORE] with the bounds trap statically discharged *)
  | ALEN
  | NEWARR of Ir.ty  (** length -> arr *)
  | FREEZE
  | GETFIELD of int  (** obj -> value *)
  | PUTFIELD of int  (** obj, value -> *)
  | NEW of string  (** -> obj with default fields; ctor call follows *)
  | CALL of string * int  (** function key, argument count *)
  | RET  (** return top of stack *)
  | RETVOID
  | JMP of int
  | JMPF of int  (** pop a boolean, branch when false *)
  | MAP of map_desc  (** args on stack in order -> result array *)
  | REDUCE of reduce_desc  (** array -> scalar *)
  | MKGRAPH of string * int  (** template uid, operand count -> handle *)
  | RUNGRAPH of bool  (** handle -> ; [true] = blocking finish *)

let const_to_string (c : Ir.const) =
  match c with
  | Ir.C_unit -> "unit"
  | Ir.C_bool b -> string_of_bool b
  | Ir.C_i32 i -> string_of_int i
  | Ir.C_f32 f -> Printf.sprintf "%gf" f
  | Ir.C_bit b -> if b then "one" else "zero"
  | Ir.C_enum (e, t) -> Printf.sprintf "%s#%d" e t
  | Ir.C_bits s -> s ^ "b"

let unop_name (u : Ir.unop) =
  match u with
  | Ir.Neg_i -> "ineg"
  | Ir.Neg_f -> "fneg"
  | Ir.Not_b -> "not"
  | Ir.Bnot_i -> "inot"
  | Ir.I2f -> "i2f"

let binop_name (b : Ir.binop) =
  match b with
  | Ir.Add_i -> "iadd" | Ir.Sub_i -> "isub" | Ir.Mul_i -> "imul"
  | Ir.Div_i -> "idiv" | Ir.Rem_i -> "irem"
  | Ir.Add_f -> "fadd" | Ir.Sub_f -> "fsub" | Ir.Mul_f -> "fmul"
  | Ir.Div_f -> "fdiv" | Ir.Rem_f -> "frem"
  | Ir.Shl_i -> "ishl" | Ir.Shr_i -> "ishr"
  | Ir.And_i -> "iand" | Ir.Or_i -> "ior" | Ir.Xor_i -> "ixor"
  | Ir.And_b -> "band" | Ir.Or_b -> "bor" | Ir.Xor_b -> "bxor"
  | Ir.And_bit -> "bitand" | Ir.Or_bit -> "bitor" | Ir.Xor_bit -> "bitxor"
  | Ir.Eq -> "eq" | Ir.Neq -> "neq"
  | Ir.Lt_i -> "ilt" | Ir.Leq_i -> "ileq" | Ir.Gt_i -> "igt" | Ir.Geq_i -> "igeq"
  | Ir.Lt_f -> "flt" | Ir.Leq_f -> "fleq" | Ir.Gt_f -> "fgt" | Ir.Geq_f -> "fgeq"

let to_string = function
  | CONST c -> "const " ^ const_to_string c
  | LOAD n -> Printf.sprintf "load %d" n
  | STORE n -> Printf.sprintf "store %d" n
  | DUP -> "dup"
  | POP -> "pop"
  | UNOP u -> unop_name u
  | BINOP b -> binop_name b
  | ALOAD -> "aload"
  | ASTORE -> "astore"
  | ALOAD_U -> "aload.u"
  | ASTORE_U -> "astore.u"
  | ALEN -> "alen"
  | NEWARR t -> "newarr " ^ Ir.ty_to_string t
  | FREEZE -> "freeze"
  | GETFIELD n -> Printf.sprintf "getfield %d" n
  | PUTFIELD n -> Printf.sprintf "putfield %d" n
  | NEW c -> "new " ^ c
  | CALL (f, n) -> Printf.sprintf "call %s/%d" f n
  | RET -> "ret"
  | RETVOID -> "retvoid"
  | JMP t -> Printf.sprintf "jmp %d" t
  | JMPF t -> Printf.sprintf "jmpf %d" t
  | MAP m -> Printf.sprintf "map %s/%d" m.bm_fn (List.length m.bm_flags)
  | REDUCE r -> Printf.sprintf "reduce %s" r.br_fn
  | MKGRAPH (uid, n) -> Printf.sprintf "mkgraph %s/%d" uid n
  | RUNGRAPH b -> if b then "rungraph.finish" else "rungraph.start"
