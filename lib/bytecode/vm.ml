module Ir = Lime_ir.Ir

module I = Lime_ir.Interp
module V = Wire.Value

type v = I.v

exception Vm_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Vm_error s)) fmt

type hooks = {
  on_map : Insn.map_desc -> v list -> v option;
  on_reduce : Insn.reduce_desc -> v -> v option;
  on_run_graph : (Ir.graph_template -> v list -> blocking:bool -> bool) option;
}

let no_hooks =
  { on_map = (fun _ _ -> None); on_reduce = (fun _ _ -> None); on_run_graph = None }

type result = { value : v; executed : int }

type state = {
  unit_ : Compile.unit_;
  hooks : hooks;
  mutable executed : int;
  mutable graph_counter : int;
  mutable pending : (int * (Ir.graph_template * v list)) list;
}

let prim = I.prim_exn

let as_int (x : v) =
  match x with
  | I.Prim (V.Int i) -> i
  | _ -> fail "expected an int on the operand stack"

let as_bool (x : v) =
  match x with
  | I.Prim (V.Bool b) -> b
  | _ -> fail "expected a boolean on the operand stack"

(* Execute one function activation. The operand stack is a plain list;
   locals are a dense array indexed by slot. *)
let rec exec st (code : Compile.code) (args : v list) : v =
  if List.length args <> code.c_params then
    fail "%s expects %d argument(s), got %d" code.c_key code.c_params
      (List.length args);
  let locals = Array.make (max code.c_slots code.c_params) (I.Prim V.Unit) in
  List.iteri (fun i a -> locals.(i) <- a) args;
  let insns = code.c_insns in
  let n = Array.length insns in
  let rec step pc stack =
    if pc >= n then
      fail "%s fell off the end without returning a value" code.c_key;
    st.executed <- st.executed + 1;
    let continue = step (pc + 1) in
    match insns.(pc), stack with
    | Insn.CONST c, _ -> continue (I.Prim (I.const_value c) :: stack)
    | Insn.LOAD slot, _ -> continue (locals.(slot) :: stack)
    | Insn.STORE slot, x :: rest ->
      locals.(slot) <- x;
      continue rest
    | Insn.DUP, x :: _ -> continue (x :: stack)
    | Insn.POP, _ :: rest -> continue rest
    | Insn.UNOP op, x :: rest ->
      continue (I.Prim (I.eval_unop op (prim x)) :: rest)
    | Insn.BINOP op, b :: a :: rest ->
      continue (I.Prim (I.eval_binop op (prim a) (prim b)) :: rest)
    | Insn.ALOAD, i :: a :: rest ->
      continue (I.Prim (I.array_get (prim a) (as_int i)) :: rest)
    | Insn.ASTORE, x :: i :: a :: rest ->
      I.array_set (prim a) (as_int i) (prim x);
      continue rest
    | Insn.ALOAD_U, i :: a :: rest ->
      continue (I.Prim (I.array_get_unchecked (prim a) (as_int i)) :: rest)
    | Insn.ASTORE_U, x :: i :: a :: rest ->
      I.array_set_unchecked (prim a) (as_int i) (prim x);
      continue rest
    | Insn.ALEN, a :: rest ->
      continue (I.Prim (V.Int (I.array_length (prim a))) :: rest)
    | Insn.NEWARR ty, len :: rest ->
      continue (I.Prim (I.new_array ty (as_int len)) :: rest)
    | Insn.FREEZE, a :: rest -> continue (I.Prim (I.freeze (prim a)) :: rest)
    | Insn.GETFIELD slot, o :: rest -> (
      match o with
      | I.Obj obj -> continue (obj.I.obj_fields.(slot) :: rest)
      | _ -> fail "getfield on a non-object")
    | Insn.PUTFIELD slot, x :: o :: rest -> (
      match o with
      | I.Obj obj ->
        obj.I.obj_fields.(slot) <- x;
        continue rest
      | _ -> fail "putfield on a non-object")
    | Insn.NEW cls, _ -> (
      match Ir.String_map.find_opt cls st.unit_.u_program.Ir.classes with
      | None -> fail "no class named %s" cls
      | Some meta ->
        let fields =
          Array.of_list
            (List.map (fun (_, ty) -> I.default_value ty) meta.Ir.cm_fields)
        in
        continue (I.Obj { I.obj_class = cls; obj_fields = fields } :: stack))
    | Insn.CALL (key, argc), _ ->
      let rec take k acc rest =
        if k = 0 then acc, rest
        else
          match rest with
          | x :: rest -> take (k - 1) (x :: acc) rest
          | [] -> fail "operand stack underflow calling %s" key
      in
      let args, rest = take argc [] stack in
      continue (call st key args :: rest)
    | Insn.RET, x :: _ -> x
    | Insn.RETVOID, _ -> I.Prim V.Unit
    | Insn.JMP t, _ -> step t stack
    | Insn.JMPF t, c :: rest ->
      if as_bool c then step (pc + 1) rest else step t rest
    | Insn.MAP desc, _ ->
      let argc = List.length desc.Insn.bm_flags in
      let rec take k acc rest =
        if k = 0 then acc, rest
        else
          match rest with
          | x :: rest -> take (k - 1) (x :: acc) rest
          | [] -> fail "operand stack underflow at map"
      in
      let args, rest = take argc [] stack in
      let result =
        match st.hooks.on_map desc args with
        | Some r -> r
        | None -> eval_map st desc args
      in
      step (pc + 1) (result :: rest)
    | Insn.REDUCE desc, a :: rest ->
      let result =
        match st.hooks.on_reduce desc a with
        | Some r -> r
        | None -> eval_reduce st desc a
      in
      continue (result :: rest)
    | Insn.MKGRAPH (uid, argc), _ ->
      let template =
        match Ir.String_map.find_opt uid st.unit_.u_program.Ir.templates with
        | Some t -> t
        | None -> fail "no task-graph template %s" uid
      in
      let rec take k acc rest =
        if k = 0 then acc, rest
        else
          match rest with
          | x :: rest -> take (k - 1) (x :: acc) rest
          | [] -> fail "operand stack underflow at mkgraph"
      in
      let ops, rest = take argc [] stack in
      st.graph_counter <- st.graph_counter + 1;
      st.pending <- (st.graph_counter, (template, ops)) :: st.pending;
      step (pc + 1) (I.Graph_handle st.graph_counter :: rest)
    | Insn.RUNGRAPH blocking, g :: rest ->
      (match g with
      | I.Graph_handle h -> run_graph st h ~blocking
      | _ -> fail "rungraph on a non-graph");
      continue rest
    | ( ( Insn.STORE _ | Insn.DUP | Insn.POP | Insn.UNOP _ | Insn.BINOP _
        | Insn.ALOAD | Insn.ASTORE | Insn.ALOAD_U | Insn.ASTORE_U
        | Insn.ALEN | Insn.NEWARR _ | Insn.FREEZE
        | Insn.GETFIELD _ | Insn.PUTFIELD _ | Insn.RET | Insn.JMPF _
        | Insn.REDUCE _ | Insn.RUNGRAPH _ ),
        _ ) ->
      fail "operand stack underflow in %s at %d" code.c_key pc
  in
  step 0 []

and call st key args =
  if Lime_ir.Intrinsics.is_intrinsic key then begin
    (* one dispatch charge for the intrinsic call *)
    st.executed <- st.executed + 1;
    match Lime_ir.Intrinsics.apply key (List.map prim args) with
    | v -> I.Prim v
    | exception Lime_ir.Intrinsics.Error m -> fail "%s" m
  end
  else
    match Ir.String_map.find_opt key st.unit_.Compile.u_funcs with
    | Some code -> exec st code args
    | None -> fail "no function named %s" key

(* Inline map: a bytecode loop in spirit; each element application is
   a real VM call so the instruction count reflects interpretation. *)
and eval_map st (desc : Insn.map_desc) (args : v list) : v =
  let pairs = List.combine args desc.bm_flags in
  let lengths =
    List.filter_map
      (fun (a, mapped) ->
        if mapped then Some (I.array_length (prim a)) else None)
      pairs
  in
  let n =
    match lengths with
    | [] -> fail "map needs at least one array argument"
    | n :: rest ->
      if List.exists (fun m -> m <> n) rest then
        fail "mapped arrays have different lengths";
      n
  in
  let result = I.new_array desc.bm_elem_ty n in
  for i = 0 to n - 1 do
    let call_args =
      List.map
        (fun (a, mapped) ->
          if mapped then I.Prim (I.array_get (prim a) i) else a)
        pairs
    in
    I.array_set result i (prim (call st desc.bm_fn call_args))
  done;
  I.Prim (I.freeze result)

and eval_reduce st (desc : Insn.reduce_desc) (arg : v) : v =
  let p = prim arg in
  let n = I.array_length p in
  if n = 0 then fail "reduce of an empty array";
  let acc = ref (I.Prim (I.array_get p 0)) in
  for i = 1 to n - 1 do
    acc := call st desc.br_fn [ !acc; I.Prim (I.array_get p i) ]
  done;
  !acc

and run_graph st h ~blocking =
  match List.assoc_opt h st.pending with
  | None -> fail "stale task-graph handle"
  | Some (template, ops) ->
    st.pending <- List.remove_assoc h st.pending;
    let handled =
      match st.hooks.on_run_graph with
      | Some hook -> hook template ops ~blocking
      | None -> false
    in
    if not handled then run_graph_seq st template ops

(* Default graph execution on the VM: every filter application is a
   bytecode call (the all-bytecode configuration of section 4.1). *)
and run_graph_seq st (template : Ir.graph_template) (ops : v list) : unit =
  let take k ops =
    let rec go k acc = function
      | rest when k = 0 -> List.rev acc, rest
      | x :: rest -> go (k - 1) (x :: acc) rest
      | [] -> fail "graph template operand underflow"
    in
    go k [] ops
  in
  let nodes, rest =
    List.fold_left
      (fun (acc, ops) node ->
        let mine, ops = take (Ir.tnode_operand_count node) ops in
        (node, mine) :: acc, ops)
      ([], ops) template.Ir.gt_nodes
  in
  if rest <> [] then fail "graph template operand overflow";
  let nodes = List.rev nodes in
  let source, filters, sink =
    match nodes with
    | (Ir.N_source _, [ arr; _rate ]) :: rest -> (
      let rec split fs = function
        | [ (Ir.N_sink _, [ dest ]) ] -> List.rev fs, dest
        | (Ir.N_filter f, fops) :: rest -> split ((f, fops) :: fs) rest
        | _ -> fail "malformed graph template"
      in
      let fs, dest = split [] rest in
      prim arr, fs, prim dest)
    | _ -> fail "malformed graph template"
  in
  let apply (f : Ir.filter_info) fops x =
    match f.Ir.target, fops with
    | Ir.F_static key, [] -> call st key [ x ]
    | Ir.F_instance (cls, m), [ recv ] -> call st (cls ^ "." ^ m) [ recv; x ]
    | _ -> fail "malformed filter operands"
  in
  for i = 0 to I.array_length source - 1 do
    let x = ref (I.Prim (I.array_get source i)) in
    List.iter (fun (f, fops) -> x := apply f fops !x) filters;
    I.array_set sink i (prim !x)
  done

let run ?(hooks = no_hooks) (unit_ : Compile.unit_) key args =
  let st = { unit_; hooks; executed = 0; graph_counter = 0; pending = [] } in
  let value = call st key args in
  { value; executed = st.executed }
