module Ir = Lime_ir.Ir

(** The bytecode compiler: IR functions to stack-machine code.

    Structured control flow (if / while) is linearized with forward
    labels and backpatching; virtual registers become local slots
    (parameters occupy their declared slots, matching the VM's calling
    convention). *)

type code = {
  c_key : string;  (** function key, e.g. ["Bitflip.flip"] *)
  c_insns : Insn.t array;
  c_slots : int;  (** local-variable slot count *)
  c_params : int;  (** parameter count (receiver included) *)
  c_ret : Ir.ty;
}

type unit_ = {
  u_funcs : code Ir.String_map.t;
  u_program : Ir.program;  (** class/enum/template metadata *)
}

val compile_function : ?proven:(Ir.instr -> bool) -> Ir.func -> code
(** [proven] marks array accesses (by physical instruction identity)
    that were statically proven in bounds; they compile to the
    unchecked [ALOAD_U]/[ASTORE_U] opcodes. Default: none. *)

val compile_program :
  ?proven:(string -> Ir.instr -> bool) -> Ir.program -> unit_
(** [compile_program ?proven p] compiles every function; [proven key]
    is the bounds-proof predicate for function [key] (see
    [Analysis.Symbolic.prover]). *)

val disassemble : code -> string
