module Ir = Lime_ir.Ir

open Support

type code = {
  c_key : string;
  c_insns : Insn.t array;
  c_slots : int;
  c_params : int;
  c_ret : Ir.ty;
}

type unit_ = {
  u_funcs : code Ir.String_map.t;
  u_program : Ir.program;
}

type emitter = { buf : Insn.t Vec.t; proven : Ir.instr -> bool }

let emit e i = Vec.push e.buf i
let here e = Vec.length e.buf

(* Emit a placeholder jump and return its index for backpatching. *)
let emit_jump e mk =
  let at = here e in
  Vec.push e.buf (mk 0);
  at

let patch e at target =
  let insn =
    match Vec.get e.buf at with
    | Insn.JMP _ -> Insn.JMP target
    | Insn.JMPF _ -> Insn.JMPF target
    | i ->
      invalid_arg
        (Printf.sprintf "Compile.patch: not a jump: %s" (Insn.to_string i))
  in
  Vec.set e.buf at insn

let push_operand e (o : Ir.operand) =
  match o with
  | Ir.O_const c -> emit e (Insn.CONST c)
  | Ir.O_var v -> emit e (Insn.LOAD v.Ir.v_id)

let compile_rhs e (rhs : Ir.rhs) =
  match rhs with
  | Ir.R_op o -> push_operand e o
  | Ir.R_unop (op, a) ->
    push_operand e a;
    emit e (Insn.UNOP op)
  | Ir.R_binop (op, a, b) ->
    push_operand e a;
    push_operand e b;
    emit e (Insn.BINOP op)
  | Ir.R_alen a ->
    push_operand e a;
    emit e Insn.ALEN
  | Ir.R_aload (a, i) ->
    push_operand e a;
    push_operand e i;
    emit e Insn.ALOAD
  | Ir.R_call (key, args) ->
    List.iter (push_operand e) args;
    emit e (Insn.CALL (key, List.length args))
  | Ir.R_newarr (ty, n) ->
    push_operand e n;
    emit e (Insn.NEWARR ty)
  | Ir.R_freeze a ->
    push_operand e a;
    emit e Insn.FREEZE
  | Ir.R_newobj (cls, args) ->
    emit e (Insn.NEW cls);
    emit e Insn.DUP;
    List.iter (push_operand e) args;
    emit e (Insn.CALL (cls ^ ".<init>", List.length args + 1));
    emit e Insn.POP
  | Ir.R_field (o, slot) ->
    push_operand e o;
    emit e (Insn.GETFIELD slot)
  | Ir.R_map m ->
    List.iter (fun (o, _) -> push_operand e o) m.Ir.map_args;
    emit e
      (Insn.MAP
         {
           Insn.bm_uid = m.Ir.map_uid;
           bm_fn = m.Ir.map_fn;
           bm_flags = List.map snd m.Ir.map_args;
           bm_elem_ty = m.Ir.map_elem_ty;
         })
  | Ir.R_reduce r ->
    push_operand e r.Ir.red_arg;
    emit e
      (Insn.REDUCE
         {
           Insn.br_uid = r.Ir.red_uid;
           br_fn = r.Ir.red_fn;
           br_elem_ty = r.Ir.red_elem_ty;
         })
  | Ir.R_mkgraph (uid, ops) ->
    List.iter (push_operand e) ops;
    emit e (Insn.MKGRAPH (uid, List.length ops))

let rec compile_block e (b : Ir.block) = List.iter (compile_instr e) b

and compile_instr e (i : Ir.instr) =
  match i with
  (* Accesses the relational analysis proved in bounds compile to the
     unchecked opcodes (the proof is keyed by physical instruction). *)
  | Ir.I_let (v, Ir.R_aload (a, idx)) | Ir.I_set (v, Ir.R_aload (a, idx))
    when e.proven i ->
    push_operand e a;
    push_operand e idx;
    emit e Insn.ALOAD_U;
    emit e (Insn.STORE v.Ir.v_id)
  | Ir.I_do (Ir.R_aload (a, idx)) when e.proven i ->
    push_operand e a;
    push_operand e idx;
    emit e Insn.ALOAD_U;
    emit e Insn.POP
  | Ir.I_astore (a, idx, x) when e.proven i ->
    push_operand e a;
    push_operand e idx;
    push_operand e x;
    emit e Insn.ASTORE_U
  | Ir.I_let (v, rhs) | Ir.I_set (v, rhs) ->
    compile_rhs e rhs;
    emit e (Insn.STORE v.Ir.v_id)
  | Ir.I_astore (a, idx, x) ->
    push_operand e a;
    push_operand e idx;
    push_operand e x;
    emit e Insn.ASTORE
  | Ir.I_setfield (o, slot, x) ->
    push_operand e o;
    push_operand e x;
    emit e (Insn.PUTFIELD slot)
  | Ir.I_if (c, then_, else_) ->
    push_operand e c;
    let jelse = emit_jump e (fun t -> Insn.JMPF t) in
    compile_block e then_;
    let jend = emit_jump e (fun t -> Insn.JMP t) in
    patch e jelse (here e);
    compile_block e else_;
    patch e jend (here e)
  | Ir.I_while (cond_block, cond_op, body) ->
    let top = here e in
    compile_block e cond_block;
    push_operand e cond_op;
    let jend = emit_jump e (fun t -> Insn.JMPF t) in
    compile_block e body;
    emit e (Insn.JMP top);
    patch e jend (here e)
  | Ir.I_return (Some o) ->
    push_operand e o;
    emit e Insn.RET
  | Ir.I_return None -> emit e Insn.RETVOID
  | Ir.I_run_graph (g, blocking) ->
    push_operand e g;
    emit e (Insn.RUNGRAPH blocking)
  | Ir.I_do rhs ->
    compile_rhs e rhs;
    emit e Insn.POP

let no_proofs : Ir.instr -> bool = fun _ -> false

let compile_function ?(proven = no_proofs) (f : Ir.func) : code =
  let e = { buf = Vec.create (); proven } in
  compile_block e f.Ir.fn_body;
  (* Implicit return for void functions that fall off the end; other
     functions trap in the VM, matching the reference interpreter. *)
  (match f.Ir.fn_ret with
  | Ir.Unit -> emit e Insn.RETVOID
  | _ -> ());
  {
    c_key = f.Ir.fn_key;
    c_insns = Vec.to_array e.buf;
    c_slots = Ir.var_slot_count f;
    c_params = List.length f.Ir.fn_params;
    c_ret = f.Ir.fn_ret;
  }

let compile_program ?proven (p : Ir.program) : unit_ =
  let prover_for key =
    match proven with None -> no_proofs | Some p -> p key
  in
  {
    u_funcs =
      Ir.String_map.mapi
        (fun key fn -> compile_function ~proven:(prover_for key) fn)
        p.Ir.funcs;
    u_program = p;
  }

let disassemble (c : code) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s: params=%d slots=%d ret=%s\n" c.c_key c.c_params
       c.c_slots (Ir.ty_to_string c.c_ret));
  Array.iteri
    (fun i insn ->
      Buffer.add_string buf (Printf.sprintf "  %3d: %s\n" i (Insn.to_string insn)))
    c.c_insns;
  Buffer.contents buf
