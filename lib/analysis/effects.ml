(* Interprocedural effect and purity inference.

   Each function gets a summary: the set of side effects it may
   perform, directly or through any callee, with a witness call chain
   for each effect so a backend exclusion can name the concrete
   offender ("writes field Acc.total, via S.run -> Acc.add") instead
   of a blanket "is global". Summaries are computed by a fixpoint over
   the call graph: a function's summary is its direct effects joined
   with the lifted summaries of its callees. The effect alphabet is
   finite, so plain set union terminates without widening. *)

module Ir = Lime_ir.Ir

type effect_ =
  | Reads_field of string  (** "Class.field" *)
  | Writes_field of string
  | Writes_array
  | Allocates_array
  | Freezes_array  (** host-side value conversion *)
  | Allocates of string  (** class name *)
  | Nested_parallel  (** contains a map or reduce site *)
  | Builds_graph
  | Runs_graph
  | Calls_unknown of string

type witness = {
  w_effect : effect_;
  w_chain : string list;
      (** call path, entry first; the last element performs the effect *)
  w_loc : Support.Srcloc.t;  (** declaration of the performing function *)
}

type summary = witness list  (* at most one witness per distinct effect *)
type t = (string, summary) Hashtbl.t

let describe = function
  | Reads_field f -> Printf.sprintf "reads field %s" f
  | Writes_field f -> Printf.sprintf "writes field %s" f
  | Writes_array -> "writes array elements"
  | Allocates_array -> "allocates an array"
  | Freezes_array -> "freezes an array (host-side value conversion)"
  | Allocates c -> Printf.sprintf "allocates %s objects" c
  | Nested_parallel -> "contains a nested map/reduce"
  | Builds_graph -> "constructs a task graph"
  | Runs_graph -> "starts a task graph"
  | Calls_unknown f -> Printf.sprintf "calls unknown function %s" f

let describe_witness (w : witness) =
  let chain =
    match w.w_chain with
    | [] | [ _ ] -> ""
    | chain -> Printf.sprintf " (via %s)" (String.concat " -> " chain)
  in
  let loc =
    if w.w_loc = Support.Srcloc.dummy then ""
    else
      Printf.sprintf " at %s:%d" w.w_loc.Support.Srcloc.file
        w.w_loc.Support.Srcloc.line
  in
  describe w.w_effect ^ loc ^ chain

(* Name of field [slot] of the class behind [obj], for messages. *)
let field_name (prog : Ir.program) (obj : Ir.operand) slot =
  match Ir.operand_ty obj with
  | Ir.Obj cls -> (
    match Ir.String_map.find_opt cls prog.classes with
    | Some cm -> (
      match List.nth_opt cm.cm_fields slot with
      | Some (name, _) -> cls ^ "." ^ name
      | None -> Printf.sprintf "%s.<slot %d>" cls slot)
    | None -> Printf.sprintf "%s.<slot %d>" cls slot)
  | _ -> Printf.sprintf "<slot %d>" slot

(* Direct effects and callees of one function body. *)
let direct (prog : Ir.program) (fn : Ir.func) : effect_ list * string list =
  let effects = ref [] and callees = ref [] in
  let eff e = if not (List.mem e !effects) then effects := e :: !effects in
  let callee k = if not (List.mem k !callees) then callees := k :: !callees in
  let rec block b = List.iter instr b
  and instr = function
    | Ir.I_let (_, r) | Ir.I_set (_, r) | Ir.I_do r -> rhs r
    | Ir.I_astore _ -> eff Writes_array
    | Ir.I_setfield (obj, slot, _) -> eff (Writes_field (field_name prog obj slot))
    | Ir.I_if (_, a, b) ->
      block a;
      block b
    | Ir.I_while (c, _, body) ->
      block c;
      block body
    | Ir.I_return _ -> ()
    | Ir.I_run_graph _ -> eff Runs_graph
  and rhs = function
    | Ir.R_op _ | Ir.R_unop _ | Ir.R_binop _ | Ir.R_alen _ | Ir.R_aload _ -> ()
    | Ir.R_call (k, _) ->
      if Lime_ir.Intrinsics.is_intrinsic k then ()
      else if Ir.find_func prog k = None then eff (Calls_unknown k)
      else callee k
    | Ir.R_newarr _ -> eff Allocates_array
    | Ir.R_freeze _ -> eff Freezes_array
    | Ir.R_newobj (cls, _) -> eff (Allocates cls)
    | Ir.R_field (obj, slot) -> eff (Reads_field (field_name prog obj slot))
    | Ir.R_map m ->
      eff Nested_parallel;
      if Ir.find_func prog m.map_fn <> None then callee m.map_fn
    | Ir.R_reduce r ->
      eff Nested_parallel;
      if Ir.find_func prog r.red_fn <> None then callee r.red_fn
    | Ir.R_mkgraph _ -> eff Builds_graph
  in
  block fn.fn_body;
  List.rev !effects, List.rev !callees

let infer (prog : Ir.program) : t =
  let summaries : t = Hashtbl.create 32 in
  let directs = Hashtbl.create 32 in
  let callers = Hashtbl.create 32 in
  Ir.String_map.iter
    (fun key fn ->
      let effs, callees = direct prog fn in
      Hashtbl.replace directs key (fn, effs, callees);
      List.iter
        (fun callee ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt callers callee) in
          if not (List.mem key cur) then Hashtbl.replace callers callee (key :: cur))
        callees;
      Hashtbl.replace summaries key [])
    prog.funcs;
  let queue = Queue.create () in
  Ir.String_map.iter (fun key _ -> Queue.push key queue) prog.funcs;
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    let fn, effs, callees = Hashtbl.find directs key in
    let own =
      List.map
        (fun e -> { w_effect = e; w_chain = [ key ]; w_loc = fn.Ir.fn_loc })
        effs
    in
    let inherited =
      List.concat_map
        (fun callee ->
          List.map
            (fun w -> { w with w_chain = key :: w.w_chain })
            (Option.value ~default:[] (Hashtbl.find_opt summaries callee)))
        callees
    in
    (* keep the first witness per effect kind; order is stable, so the
       fixpoint terminates once the kind set stops growing *)
    let merged =
      List.fold_left
        (fun acc w ->
          if List.exists (fun w' -> w'.w_effect = w.w_effect) acc then acc
          else w :: acc)
        [] (own @ inherited)
      |> List.rev
    in
    let current = Hashtbl.find summaries key in
    if
      List.map (fun w -> w.w_effect) merged
      <> List.map (fun w -> w.w_effect) current
    then begin
      Hashtbl.replace summaries key merged;
      List.iter
        (fun caller -> Queue.push caller queue)
        (Option.value ~default:[] (Hashtbl.find_opt callers key))
    end
  done;
  summaries

let summary (t : t) key : summary =
  Option.value ~default:[] (Hashtbl.find_opt t key)

(* A function is pure if it performs no effect at all (reading its
   arguments and returning a value). *)
let is_pure (t : t) key = summary t key = []
