(* Static checks over task-graph templates.

   The scheduler detects a wedged graph at run time ([Scheduler.Deadlock]
   fires when a whole round makes no progress while actors still hold
   or await data). Several of those wedges are statically decidable
   from the template shape plus the intervals of the [R_mkgraph]
   operands the range analysis computed. The rate checks all route
   through the SDF balance equations ([Rates.solve]):

   - a source whose rate is never positive can never push an element,
     so every FIFO in the source-to-sink cycle stays empty forever;
   - balance equations with no solution (starvation, a rate mismatch,
     or a token-free cycle) mean no steady state exists at any FIFO
     capacity;
   - an edge whose per-firing burst provably exceeds the FIFO capacity
     can never complete a firing in one scheduling step (throughput
     hazard) — on *any* edge, not just the source's;
   - a template constructed only in unreachable code means its filters
     are dead weight for every backend. *)

module Ir = Lime_ir.Ir
module Iv = Interval

type severity = [ `Error | `Warning | `Note ]

type finding = {
  g_sev : severity;
  g_loc : Support.Srcloc.t;
  g_uid : string;  (** the template the finding is about *)
  g_code : string;
  g_msg : string;
}

let template_loc (gt : Ir.graph_template) =
  let rec first = function
    | Ir.N_filter f :: _ -> f.Ir.floc
    | _ :: rest -> first rest
    | [] -> Support.Srcloc.dummy
  in
  first gt.gt_nodes

(* The interval of the source rate operand: walk the node list
   consuming dynamic operands the same way the VM does. *)
let source_rate (gt : Ir.graph_template) (ops : Iv.t list) : Iv.t option =
  let rec walk idx = function
    | [] -> None
    | Ir.N_source _ :: _ -> List.nth_opt ops (idx + 1)
    | n :: rest -> walk (idx + Ir.tnode_operand_count n) rest
  in
  walk 0 gt.gt_nodes

let check (prog : Ir.program) ~fifo_capacity
    ~(graph_args : (string * Iv.t list) list) : finding list =
  let findings = ref [] in
  Ir.String_map.iter
    (fun uid (gt : Ir.graph_template) ->
      let add sev loc code fmt =
        Printf.ksprintf
          (fun msg ->
            findings :=
              { g_sev = sev; g_loc = loc; g_uid = uid; g_code = code;
                g_msg = msg }
              :: !findings)
          fmt
      in
      let loc = template_loc gt in
      match List.assoc_opt uid graph_args with
      | None ->
        add `Warning loc "LMA004"
          "task graph %s is constructed only in unreachable code; its \
           filters are dead"
          uid
      | Some ops -> (
        match source_rate gt ops with
        | None -> ()
        | Some rate -> (
          let g = Rates.of_template ~source_rate:rate gt in
          match Rates.solve g with
          | Error (Rates.Starved why) ->
            (* The decisive wedge keeps its historical code alongside
               the balance-equation verdict. *)
            add `Error loc "LMA002"
              "task graph %s: source rate %s is never positive — the \
               source can never push an element, every FIFO in the \
               source-to-sink cycle stays empty, and the graph wedges \
               (runtime Scheduler.Deadlock)"
              uid (Iv.to_string rate);
            add `Error loc "LMA010"
              "task graph %s: balance equations unsolvable (%s) — no \
               steady state exists at any FIFO capacity"
              uid why
          | Error (Rates.Mismatch why) | Error (Rates.Deadlocked why) ->
            add `Error loc "LMA010"
              "task graph %s: balance equations unsolvable (%s) — no \
               steady state exists at any FIFO capacity"
              uid why
          | Error (Rates.Dynamic _) ->
            (* Interval rates: keep the historical may-wedge and
               capacity warnings on the provable bounds, and note the
               scheduling consequence. *)
            (match Iv.lower rate with
            | Some lo when lo <= 0 ->
              add `Warning loc "LMA005"
                "task graph %s: source rate %s may be non-positive; a \
                 non-positive rate wedges the graph" uid (Iv.to_string rate)
            | Some lo when lo > fifo_capacity ->
              add `Warning loc "LMA003"
                "task graph %s: source rate %s exceeds the FIFO capacity \
                 %d; the source can never complete a full burst per \
                 scheduling step"
                uid (Iv.to_string rate) fifo_capacity
            | _ -> ());
            add `Note loc "LMA011"
              "task graph %s: rates are not static constants, so no \
               steady-state schedule exists; the runtime falls back to \
               round-robin scheduling"
              uid
          | Ok sched ->
            List.iter
              (fun (e : Rates.edge) ->
                let need = Rates.min_edge_capacity e in
                if need > fifo_capacity then
                  add `Warning loc "LMA003"
                    "task graph %s: edge %s -> %s moves %d element(s) per \
                     firing but the FIFO capacity is %d; a full burst can \
                     never complete in one scheduling step"
                    uid e.Rates.e_src e.Rates.e_dst need fifo_capacity)
              g.Rates.g_edges;
            add `Note loc "LMA012"
              "task graph %s: balance equations solved; repetition vector \
               [%s] (steady-state schedulable)"
              uid
              (Rates.describe_reps sched))))
    prog.templates;
  List.rev !findings
