(* Static checks over task-graph templates.

   The scheduler detects a wedged graph at run time ([Scheduler.Deadlock]
   fires when a whole round makes no progress while actors still hold
   or await data). Several of those wedges are statically decidable
   from the template shape plus the intervals of the [R_mkgraph]
   operands the range analysis computed:

   - a source whose rate is never positive can never push an element,
     so every FIFO in the source-to-sink cycle stays empty forever;
   - a rate provably larger than the FIFO capacity can never complete
     a full burst in one scheduling step (throughput hazard);
   - a template constructed only in unreachable code means its filters
     are dead weight for every backend. *)

module Ir = Lime_ir.Ir
module Iv = Interval

type severity = [ `Error | `Warning | `Note ]

type finding = {
  g_sev : severity;
  g_loc : Support.Srcloc.t;
  g_code : string;
  g_msg : string;
}

let template_loc (gt : Ir.graph_template) =
  let rec first = function
    | Ir.N_filter f :: _ -> f.Ir.floc
    | _ :: rest -> first rest
    | [] -> Support.Srcloc.dummy
  in
  first gt.gt_nodes

(* The interval of the source rate operand: walk the node list
   consuming dynamic operands the same way the VM does. *)
let source_rate (gt : Ir.graph_template) (ops : Iv.t list) : Iv.t option =
  let rec walk idx = function
    | [] -> None
    | Ir.N_source _ :: _ -> List.nth_opt ops (idx + 1)
    | n :: rest -> walk (idx + Ir.tnode_operand_count n) rest
  in
  walk 0 gt.gt_nodes

let check (prog : Ir.program) ~fifo_capacity
    ~(graph_args : (string * Iv.t list) list) : finding list =
  let findings = ref [] in
  let add sev loc code fmt =
    Printf.ksprintf
      (fun msg ->
        findings := { g_sev = sev; g_loc = loc; g_code = code; g_msg = msg } :: !findings)
      fmt
  in
  Ir.String_map.iter
    (fun uid (gt : Ir.graph_template) ->
      let loc = template_loc gt in
      match List.assoc_opt uid graph_args with
      | None ->
        add `Warning loc "LMA004"
          "task graph %s is constructed only in unreachable code; its \
           filters are dead"
          uid
      | Some ops -> (
        match source_rate gt ops with
        | None -> ()
        | Some rate -> (
          match Iv.upper rate, Iv.lower rate with
          | Some hi, _ when hi <= 0 ->
            add `Error loc "LMA002"
              "task graph %s: source rate %s is never positive — the \
               source can never push an element, every FIFO in the \
               source-to-sink cycle stays empty, and the graph wedges \
               (runtime Scheduler.Deadlock)"
              uid (Iv.to_string rate)
          | _, Some lo when lo <= 0 ->
            add `Warning loc "LMA005"
              "task graph %s: source rate %s may be non-positive; a \
               non-positive rate wedges the graph" uid (Iv.to_string rate)
          | _, Some lo when lo > fifo_capacity ->
            add `Warning loc "LMA003"
              "task graph %s: source rate %s exceeds the FIFO capacity \
               %d; the source can never complete a full burst per \
               scheduling step"
              uid (Iv.to_string rate) fifo_capacity
          | _ -> ())))
    prog.templates;
  List.rev !findings
