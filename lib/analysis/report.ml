(* Aggregated analysis report: runs every client analysis over a
   lowered program and collects diagnostics for `lmc analyze` and the
   compiler driver.

   Diagnostic codes:
   - LMA001  note     global function is provably pure
   - LMA002  error    source rate never positive (graph wedges)
   - LMA003  warning  an edge's per-firing burst exceeds the FIFO capacity
   - LMA004  warning  task graph constructed only in unreachable code
   - LMA005  warning  source rate may be non-positive
   - LMA006  error    array access provably out of bounds
   - LMA007  note     all array accesses provably in bounds
   - LMA008  note     effects of a global function
   - LMA009  warning  branch decided at compile time (dead code)
   - LMA010  error    balance equations unsolvable (no steady state exists)
   - LMA011  note     dynamic rates: no static schedule, round-robin fallback
   - LMA012  note     balance equations solved (repetition vector reported)
   - LMA013  note     some (not all) array accesses proven in bounds
   - LMA014  note     proven accesses compile to unguarded loads/stores
   - LMA015  note     reduce combiner proven associative (K>1 tree eligible)
   - LMA016  note     reduce combiner not proven associative (pinned K=1)
   - LMA017  note     maximal filter run is fusible (one note per run)
   - LMA018  note     adjacent filter pair is not fusible (reason given) *)

module Ir = Lime_ir.Ir

type severity = Error | Warning | Note

type diag = {
  d_sev : severity;
  d_loc : Support.Srcloc.t;
  d_uid : string;
      (** stable subject identifier: function key, template uid or
          kernel-site uid; the primary sort key *)
  d_code : string;
  d_msg : string;
}

type t = {
  diags : diag list;
  effects : Effects.t;  (** reusable by the device backends *)
  ranges : Range.program_facts;
  symbolic : Symbolic.program_facts;
      (** per-access bounds proofs; consumed by the backends *)
}

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp_diag ppf d =
  Format.fprintf ppf "%a: %s: [%s] %s" Support.Srcloc.pp d.d_loc
    (severity_label d.d_sev) d.d_code d.d_msg

let count sev diags = List.length (List.filter (fun d -> d.d_sev = sev) diags)
let error_count = count Error

let summary_line diags =
  Printf.sprintf "%d error(s), %d warning(s), %d note(s)" (count Error diags)
    (count Warning diags) (count Note diags)

let render ppf (diags : diag list) =
  List.iter (fun d -> Format.fprintf ppf "%a@." pp_diag d) diags

(* --- JSON ---------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (diags : diag list) =
  let item d =
    Printf.sprintf
      "{\"severity\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"uid\":\"%s\",\"code\":\"%s\",\"message\":\"%s\"}"
      (severity_label d.d_sev)
      (json_escape d.d_loc.Support.Srcloc.file)
      d.d_loc.Support.Srcloc.line d.d_loc.Support.Srcloc.col
      (json_escape d.d_uid) (json_escape d.d_code) (json_escape d.d_msg)
  in
  Printf.sprintf
    "{\"diagnostics\":[%s],\"errors\":%d,\"warnings\":%d,\"notes\":%d}"
    (String.concat "," (List.map item diags))
    (count Error diags) (count Warning diags) (count Note diags)

(* --- analysis ------------------------------------------------------ *)

let analyze ?(fifo_capacity = 16) ?(fuse = true) (prog : Ir.program) : t =
  let effects = Effects.infer prog in
  let ranges = Range.analyze_program prog in
  let symbolic = Symbolic.analyze_program prog in
  let diags = ref [] in
  let add sev loc uid code msg =
    diags :=
      { d_sev = sev; d_loc = loc; d_uid = uid; d_code = code; d_msg = msg }
      :: !diags
  in
  (* Purity and effects of global functions: these drive device
     eligibility, so surface them. *)
  Ir.String_map.iter
    (fun key (fn : Ir.func) ->
      if not fn.Ir.fn_local then
        match Effects.summary effects key with
        | [] ->
          add Note fn.Ir.fn_loc key "LMA001"
            (Printf.sprintf
               "global function %s is provably pure (eligible for device \
                compilation)"
               key)
        | witnesses ->
          add Note fn.Ir.fn_loc key "LMA008"
            (Printf.sprintf "global function %s: %s" key
               (String.concat "; "
                  (List.map Effects.describe
                     (List.map (fun (w : Effects.witness) -> w.Effects.w_effect)
                        witnesses)))))
    prog.funcs;
  (* Bounds findings per function, from the relational domain (which
     subsumes [Range]'s verdicts access by access). *)
  List.iter
    (fun (key, (facts : Symbolic.fn_facts)) ->
      let fn = Ir.func_exn prog key in
      let total = facts.Symbolic.sf_total in
      let proven = facts.Symbolic.sf_proven in
      let oob = facts.Symbolic.sf_oob in
      if oob > 0 then
        add Error fn.Ir.fn_loc key "LMA006"
          (Printf.sprintf
             "%s: %d array access(es) provably out of bounds (always traps)"
             key oob);
      if total > 0 && proven = total then
        add Note fn.Ir.fn_loc key "LMA007"
          (Printf.sprintf "%s: all %d array access(es) provably in bounds" key
             total)
      else if proven > 0 then
        add Note fn.Ir.fn_loc key "LMA013"
          (Printf.sprintf "%s: %d of %d array access(es) proven in bounds" key
             proven total);
      if proven > 0 then
        add Note fn.Ir.fn_loc key "LMA014"
          (Printf.sprintf
             "%s: %d proven access(es) compile to unguarded loads/stores \
              (bounds checks elided)"
             key proven))
    symbolic.Symbolic.sp_fns;
  (* Dead-branch findings stay with the classic range analysis. *)
  List.iter
    (fun (key, (facts : Range.fn_facts)) ->
      let fn = Ir.func_exn prog key in
      if facts.Range.ff_dead_branches > 0 then
        add Warning fn.Ir.fn_loc key "LMA009"
          (Printf.sprintf "%s: %d branch(es) decided at compile time (dead code)"
             key facts.Range.ff_dead_branches))
    ranges.Range.pf_fns;
  (* Reduce combiners: the reassociation contract per kernel site. *)
  List.iter
    (fun site ->
      match site with
      | `Map _ -> ()
      | `Reduce (r : Ir.reduce_site) -> (
        match Algebra.analyze prog r.Ir.red_fn with
        | Algebra.Assoc_comm why ->
          add Note r.Ir.red_loc r.Ir.red_uid "LMA015"
            (Printf.sprintf
               "reduce %s: combiner %s proven associative+commutative (%s); \
                eligible for K>1 tree combining"
               r.Ir.red_uid r.Ir.red_fn why)
        | Algebra.Unknown why ->
          add Note r.Ir.red_loc r.Ir.red_uid "LMA016"
            (Printf.sprintf
               "reduce %s: combiner %s not proven associative (%s); pinned \
                at K=1"
               r.Ir.red_uid r.Ir.red_fn why)))
    (Ir.kernel_sites prog);
  (* Fusability: with [fuse] (the default) report each disjoint
     maximal fusible run once — a chain A-B-C yields one LMA017 for
     "A -> B -> C", not overlapping pair notes — plus one LMA018 per
     blocked adjacent pair. [~fuse:false] restores the legacy
     pair-by-pair view. *)
  (if fuse then (
     let rr = Fusability.runs prog effects in
     List.iter
       (fun (r : Fusability.run) ->
         let names =
           String.concat " -> "
             (List.map (fun (f : Ir.filter_info) -> f.Ir.uid) r.Fusability.fr_members)
         in
         let last = List.nth r.Fusability.fr_members
             (List.length r.Fusability.fr_members - 1) in
         add Note last.Ir.floc r.Fusability.fr_graph "LMA017"
           (Printf.sprintf
              "task graph %s: filters %s fuse into one segment (%s)"
              r.Fusability.fr_graph names r.Fusability.fr_why))
       rr.Fusability.rr_runs;
     List.iter
       (fun (p : Fusability.pair) ->
         let names =
           Printf.sprintf "%s -> %s" p.Fusability.fz_fst.Ir.uid
             p.Fusability.fz_snd.Ir.uid
         in
         match p.Fusability.fz_verdict with
         | Ok _ -> ()
         | Error why ->
           add Note p.Fusability.fz_snd.Ir.floc p.Fusability.fz_graph "LMA018"
             (Printf.sprintf "task graph %s: filters %s are not fusible: %s"
                p.Fusability.fz_graph names why))
       rr.Fusability.rr_blocked)
   else
     List.iter
       (fun (p : Fusability.pair) ->
         let names =
           Printf.sprintf "%s -> %s" p.Fusability.fz_fst.Ir.uid
             p.Fusability.fz_snd.Ir.uid
         in
         match p.Fusability.fz_verdict with
         | Ok why ->
           add Note p.Fusability.fz_snd.Ir.floc p.Fusability.fz_graph "LMA017"
             (Printf.sprintf "task graph %s: filters %s are fusible (%s)"
                p.Fusability.fz_graph names why)
         | Error why ->
           add Note p.Fusability.fz_snd.Ir.floc p.Fusability.fz_graph "LMA018"
             (Printf.sprintf "task graph %s: filters %s are not fusible: %s"
                p.Fusability.fz_graph names why))
       (Fusability.analyze prog effects));
  (* Task-graph lint. *)
  List.iter
    (fun (f : Graphlint.finding) ->
      let sev =
        match f.Graphlint.g_sev with
        | `Error -> Error
        | `Warning -> Warning
        | `Note -> Note
      in
      add sev f.Graphlint.g_loc f.Graphlint.g_uid f.Graphlint.g_code
        f.Graphlint.g_msg)
    (Graphlint.check prog ~fifo_capacity
       ~graph_args:ranges.Range.pf_graph_args);
  (* Deterministic order: subject uid first, then code, then message —
     stable across OCaml versions and map-iteration details. *)
  let ordered =
    List.sort
      (fun a b ->
        let c = compare a.d_uid b.d_uid in
        if c <> 0 then c
        else
          let c = compare a.d_code b.d_code in
          if c <> 0 then c else compare a.d_msg b.d_msg)
      (List.rev !diags)
  in
  { diags = ordered; effects; ranges; symbolic }

(* Per-access bounds-proof predicate for the backends: [prover report
   key instr] is [true] iff [instr]'s array access in function [key]
   was proven in bounds. *)
let prover (t : t) : string -> Ir.instr -> bool = Symbolic.prover t.symbolic
