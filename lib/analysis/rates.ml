(* The SDF-style rate algebra over task graphs.

   Every actor in a task graph has a static *rate signature*: how many
   elements it pops from each input FIFO and pushes to each output
   FIFO per firing. When all rates are static constants the graph is
   synchronous dataflow, and the classic balance equations

       reps(src) * push(e)  =  reps(dst) * pop(e)      for every edge e

   either have a minimal positive integer solution — the *repetition
   vector*, from which a periodic admissible schedule (one steady
   iteration) follows — or they don't, which proves the graph can
   never reach a steady state: some FIFO starves or grows without
   bound no matter how the scheduler interleaves the actors.

   [Graphlint] uses the verdict statically (LMA010/LMA011/LMA012 and
   the per-edge LMA003 capacity check); [Runtime.Exec] uses the solved
   repetition vector to run the graph in steady-state order with
   schedule-sized FIFO capacities instead of blind round-robin
   stepping.

   Rates are intervals (the same domain the range analysis computes
   for the [R_mkgraph] operands), so "not a static constant" is a
   first-class verdict ([Dynamic]) rather than a crash — those graphs
   simply keep the dynamic round-robin scheduler. *)

module Iv = Interval
module Ir = Lime_ir.Ir

type edge = {
  e_src : string;
  e_dst : string;
  e_push : Iv.t;  (** elements pushed per firing of [e_src] *)
  e_pop : Iv.t;  (** elements popped per firing of [e_dst] *)
  e_init : int;  (** initial tokens (needed for cycles to be schedulable) *)
}

type graph = {
  g_actors : string list;  (** firing-priority order (sources first) *)
  g_edges : edge list;
}

type schedule = {
  s_reps : (string * int) list;
      (** the repetition vector: firings per steady iteration *)
  s_order : (string * int) list;
      (** one steady iteration as batched firings, in admissible order *)
  s_bursts : (edge * int) list;
      (** max tokens each edge holds during that iteration *)
}

type unsolvable =
  | Dynamic of string  (** a rate is not a static constant *)
  | Starved of string  (** a rate is never positive: the edge starves *)
  | Mismatch of string  (** the balance equations have no solution *)
  | Deadlocked of string  (** solvable, but a token-free cycle blocks every order *)

let unsolvable_reason = function
  | Dynamic m | Starved m | Mismatch m | Deadlocked m -> m

let describe_unsolvable = function
  | Dynamic m -> "dynamic rates: " ^ m
  | Starved m -> "starvation: " ^ m
  | Mismatch m -> "rate mismatch: " ^ m
  | Deadlocked m -> "insufficient initial tokens: " ^ m

let describe_reps (s : schedule) =
  String.concat " "
    (List.map (fun (a, r) -> Printf.sprintf "%s=%d" a r) s.s_reps)

(* The smallest FIFO capacity that lets one firing on this edge
   complete: the producer must land a full push burst, and the
   consumer must see a full pop burst at once. A provable lower bound
   even when the rates are intervals. *)
let min_edge_capacity (e : edge) : int =
  let lo iv = match Iv.lower iv with Some l -> max l 1 | None -> 1 in
  max (lo e.e_push) (lo e.e_pop)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else a / gcd a b * b

let solve (g : graph) : (schedule, unsolvable) result =
  let exception Stop of unsolvable in
  try
    if g.g_actors = [] then
      Ok { s_reps = []; s_order = []; s_bursts = [] }
    else begin
      (* 1. Every rate must be a positive static constant. *)
      let const_rate ~what (e : edge) iv =
        match Iv.upper iv with
        | Some hi when hi <= 0 ->
          raise
            (Stop
               (Starved
                  (Printf.sprintf
                     "%s rate %s on edge %s -> %s is never positive" what
                     (Iv.to_string iv) e.e_src e.e_dst)))
        | _ -> (
          match Iv.const_of iv with
          | Some c -> c
          | None ->
            raise
              (Stop
                 (Dynamic
                    (Printf.sprintf
                       "%s rate %s on edge %s -> %s is not a static constant"
                       what (Iv.to_string iv) e.e_src e.e_dst))))
      in
      let edges =
        Array.of_list
          (List.map
             (fun e ->
               e, const_rate ~what:"push" e e.e_push,
               const_rate ~what:"pop" e e.e_pop)
             g.g_edges)
      in
      let n = List.length g.g_actors in
      let names = Array.of_list g.g_actors in
      let idx = Hashtbl.create n in
      Array.iteri (fun i a -> Hashtbl.replace idx a i) names;
      let index_of name =
        match Hashtbl.find_opt idx name with
        | Some i -> i
        | None ->
          invalid_arg (Printf.sprintf "Rates.solve: unknown actor %s" name)
      in
      (* 2. Propagate repetition ratios as normalized fractions: for
         edge src->dst with push p / pop q, reps(dst) = reps(src)*p/q.
         A BFS over the undirected adjacency covers each connected
         component; a node reached with two different ratios is a
         balance-equation conflict. *)
      let adj = Array.make n [] in
      Array.iter
        (fun (e, p, q) ->
          let s = index_of e.e_src and d = index_of e.e_dst in
          adj.(s) <- (d, p, q) :: adj.(s);
          adj.(d) <- (s, q, p) :: adj.(d))
        edges;
      let frac = Array.make n None in
      let norm (a, b) =
        let g = gcd a b in
        a / g, b / g
      in
      for start = 0 to n - 1 do
        if frac.(start) = None then begin
          frac.(start) <- Some (1, 1);
          let q = Queue.create () in
          Queue.push start q;
          while not (Queue.is_empty q) do
            let i = Queue.pop q in
            let ni, di = Option.get frac.(i) in
            List.iter
              (fun (j, p, qq) ->
                let cand = norm (ni * p, di * qq) in
                match frac.(j) with
                | None ->
                  frac.(j) <- Some cand;
                  Queue.push j q
                | Some have ->
                  if have <> cand then
                    raise
                      (Stop
                         (Mismatch
                            (Printf.sprintf
                               "%s would need repetition ratio %d/%d on one \
                                path and %d/%d on another"
                               names.(j) (fst have) (snd have) (fst cand)
                               (snd cand)))))
              adj.(i)
          done
        end
      done;
      (* 3. Scale the fractions to the minimal positive integer
         vector: multiply by the lcm of denominators, divide by the
         gcd of the results. *)
      let fracs = Array.map Option.get frac in
      let l = Array.fold_left (fun acc (_, d) -> lcm acc d) 1 fracs in
      let nums = Array.map (fun (nu, d) -> nu * (l / d)) fracs in
      let g0 = Array.fold_left gcd 0 nums in
      let reps = Array.map (fun nu -> nu / g0) nums in
      (* 4. Simulate one steady iteration (batched firings in actor
         priority order) to find an admissible order and the per-edge
         peak occupancy. A pass where nothing can fire while firings
         remain is a token-free cycle: the equations balance but no
         schedule exists. *)
      let tok = Array.map (fun (e, _, _) -> e.e_init) edges in
      let burst = Array.copy tok in
      let remaining = Array.copy reps in
      let in_edges = Array.make n [] in
      let out_edges = Array.make n [] in
      Array.iteri
        (fun k (e, p, q) ->
          out_edges.(index_of e.e_src) <- (k, p) :: out_edges.(index_of e.e_src);
          in_edges.(index_of e.e_dst) <- (k, q) :: in_edges.(index_of e.e_dst))
        edges;
      let order = ref [] in
      let left = ref (Array.fold_left ( + ) 0 remaining) in
      while !left > 0 do
        let fired = ref false in
        for i = 0 to n - 1 do
          if remaining.(i) > 0 then begin
            let can =
              List.fold_left
                (fun acc (k, q) -> min acc (tok.(k) / q))
                remaining.(i) in_edges.(i)
            in
            if can > 0 then begin
              fired := true;
              List.iter (fun (k, q) -> tok.(k) <- tok.(k) - (can * q))
                in_edges.(i);
              List.iter
                (fun (k, p) ->
                  tok.(k) <- tok.(k) + (can * p);
                  if tok.(k) > burst.(k) then burst.(k) <- tok.(k))
                out_edges.(i);
              remaining.(i) <- remaining.(i) - can;
              left := !left - can;
              order := (names.(i), can) :: !order
            end
          end
        done;
        if not !fired then
          raise
            (Stop
               (Deadlocked
                  (Printf.sprintf
                     "no admissible firing order: %s cannot fire — a cycle \
                      carries too few initial tokens"
                     (String.concat ", "
                        (List.filteri (fun i _ -> remaining.(i) > 0)
                           g.g_actors)))))
      done;
      Ok
        {
          s_reps = List.mapi (fun i a -> a, reps.(i)) g.g_actors;
          s_order = List.rev !order;
          s_bursts =
            Array.to_list (Array.mapi (fun k (e, _, _) -> e, burst.(k)) edges);
        }
    end
  with Stop why -> Error why

(* The rate graph of a lowered map/reduce site
   ([Lime_ir.Lower_mapreduce]): a scatter source fanning chunk
   descriptors out to [workers] replicated worker actors, and a gather
   sink joining them. Every edge moves one descriptor per firing —
   SDF firing semantics push on *all* out-edges — so the balance
   equations always have the all-ones repetition vector: every lowered
   graph is solvable by construction, which the property tests assert
   for arbitrary K. *)
let scatter_gather ~(workers : int) : graph =
  let k = max 1 workers in
  let one = Iv.of_int 1 in
  let worker i = Printf.sprintf "worker%d" i in
  let names = List.init k worker in
  {
    g_actors = ("scatter" :: names) @ [ "gather" ];
    g_edges =
      List.concat_map
        (fun w ->
          [
            { e_src = "scatter"; e_dst = w; e_push = one; e_pop = one;
              e_init = 0 };
            { e_src = w; e_dst = "gather"; e_push = one; e_pop = one;
              e_init = 0 };
          ])
        names;
  }

(* The rate graph of a template: a linear pipeline where the source
   pushes [source_rate] per firing and every filter is elementwise
   (pop 1 / push 1) — device substitution happens later and rebatches
   at runtime, see [Runtime.Exec]. *)
let of_template ~(source_rate : Iv.t) (gt : Ir.graph_template) : graph =
  let one = Iv.of_int 1 in
  let stages =
    List.filter_map
      (function Ir.N_filter f -> Some f.Ir.uid | _ -> None)
      gt.Ir.gt_nodes
  in
  let actors = ("source" :: stages) @ [ "sink" ] in
  let rec link prev acc = function
    | [] -> List.rev acc
    | dst :: rest ->
      let push = if prev = "source" then source_rate else one in
      link dst
        ({ e_src = prev; e_dst = dst; e_push = push; e_pop = one; e_init = 0 }
        :: acc)
        rest
  in
  { g_actors = actors; g_edges = link "source" [] (stages @ [ "sink" ]) }
