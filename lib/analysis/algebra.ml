(* Algebraic-property inference for reduce combiners.

   [Lower_mapreduce] may only split a reduce into K > 1 chunks when
   the combiner is associative: the lowered graph computes
   `(fold c1) . (fold c2) . ...` where the legacy path computes one
   strict left fold. For 32-bit integer machine arithmetic the usual
   suspects — `+`, `*`, `&`, `|`, `^`, `min`, `max` and the boolean
   connectives — are *exactly* associative and commutative (wraparound
   included), so any re-grouping is bit-identical. Floating point is
   not (rounding depends on grouping), so float combiners stay
   [Unknown] and the reduce stays pinned at K = 1.

   The prover evaluates the combiner body symbolically over its two
   parameters into a small expression tree and pattern-matches the
   known-good shapes. Anything it cannot evaluate (loops, side
   effects, opaque calls) is conservatively [Unknown]. The verdict
   carries the contract sentence shown by `lmc analyze` (LMA015/016)
   and documented in docs/ANALYSIS.md. *)

module Ir = Lime_ir.Ir

type aexpr =
  | A_param of int  (** 0 = accumulator, 1 = element *)
  | A_const of Ir.const
  | A_bin of Ir.binop * aexpr * aexpr
  | A_un of Ir.unop * aexpr
  | A_ite of aexpr * aexpr * aexpr

type verdict =
  | Assoc_comm of string  (** proven associative + commutative; why *)
  | Unknown of string  (** not proven; why *)

exception Opaque of string

let max_inline_depth = 4

let binop_name = function
  | Ir.Add_i -> "int +"
  | Ir.Mul_i -> "int *"
  | Ir.And_i -> "int &"
  | Ir.Or_i -> "int |"
  | Ir.Xor_i -> "int ^"
  | Ir.And_b | Ir.And_bit -> "boolean &&"
  | Ir.Or_b | Ir.Or_bit -> "boolean ||"
  | Ir.Xor_b | Ir.Xor_bit -> "boolean ^"
  | Ir.Add_f -> "float +"
  | Ir.Mul_f -> "float *"
  | _ -> "operator"

(* Exactly associative+commutative over machine values. *)
let assoc_comm_binop = function
  | Ir.Add_i | Ir.Mul_i | Ir.And_i | Ir.Or_i | Ir.Xor_i | Ir.And_b | Ir.Or_b
  | Ir.Xor_b | Ir.And_bit | Ir.Or_bit | Ir.Xor_bit ->
    true
  | _ -> false

let float_binop = function
  | Ir.Add_f | Ir.Sub_f | Ir.Mul_f | Ir.Div_f | Ir.Rem_f -> true
  | _ -> false

(* --- symbolic evaluation of the combiner body ---------------------- *)

type outcome = Returned of aexpr | Fell_through

let eval_fn (prog : Ir.program) (fn : Ir.func) (args : aexpr list) depth :
    aexpr =
  let rec eval_body (fn : Ir.func) args depth =
    if depth > max_inline_depth then raise (Opaque "call nesting too deep");
    if List.length fn.Ir.fn_params <> List.length args then
      raise (Opaque "arity mismatch");
    let nslots = max 1 (Ir.var_slot_count fn) in
    let env = Array.make nslots None in
    List.iter2
      (fun (p : Ir.var) a -> env.(p.Ir.v_id) <- Some a)
      fn.Ir.fn_params args;
    match block env fn.Ir.fn_body depth with
    | Returned e -> e
    | Fell_through -> raise (Opaque "no return value")
  and operand env (o : Ir.operand) =
    match o with
    | Ir.O_const c -> A_const c
    | Ir.O_var v -> (
      match env.(v.Ir.v_id) with
      | Some e -> e
      | None -> raise (Opaque "read of an undefined register"))
  and rhs env (r : Ir.rhs) depth =
    match r with
    | Ir.R_op o -> operand env o
    | Ir.R_unop (op, a) -> A_un (op, operand env a)
    | Ir.R_binop (op, a, b) -> A_bin (op, operand env a, operand env b)
    | Ir.R_call (key, args) ->
      if Lime_ir.Intrinsics.is_intrinsic key then
        raise (Opaque (Printf.sprintf "calls intrinsic %s" key));
      let callee =
        match Ir.find_func prog key with
        | Some f -> f
        | None -> raise (Opaque (Printf.sprintf "calls unknown %s" key))
      in
      eval_body callee (List.map (operand env) args) (depth + 1)
    | Ir.R_alen _ | Ir.R_aload _ | Ir.R_newarr _ | Ir.R_freeze _
    | Ir.R_newobj _ | Ir.R_field _ | Ir.R_map _ | Ir.R_reduce _
    | Ir.R_mkgraph _ ->
      raise (Opaque "combiner touches memory or graphs")
  and block env (b : Ir.block) depth : outcome =
    match b with
    | [] -> Fell_through
    | i :: rest -> (
      match i with
      | Ir.I_let (v, r) | Ir.I_set (v, r) ->
        env.(v.Ir.v_id) <- Some (rhs env r depth);
        block env rest depth
      | Ir.I_return (Some o) -> Returned (operand env o)
      | Ir.I_return None -> raise (Opaque "void return")
      | Ir.I_if (c, then_b, else_b) -> (
        let cond = operand env c in
        let env_t = Array.copy env and env_e = Array.copy env in
        let out_t = block env_t (then_b @ rest) depth in
        let out_e = block env_e (else_b @ rest) depth in
        match out_t, out_e with
        | Returned a, Returned b ->
          Returned (if a = b then a else A_ite (cond, a, b))
        | Fell_through, Fell_through -> Fell_through
        | _ -> raise (Opaque "branch returns on one arm only"))
      | Ir.I_while _ -> raise (Opaque "combiner contains a loop")
      | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_run_graph _ | Ir.I_do _ ->
        raise (Opaque "combiner has side effects"))
  in
  eval_body fn args depth

(* --- shape classification ------------------------------------------ *)

(* `min`/`max` via a comparison of the two parameters selecting one of
   them: associative, commutative, and grouping-exact even for floats
   in the absence of NaN — but Lime floats can be NaN, so only the
   integer comparisons qualify. *)
let minmax_shape (cond : aexpr) (t : aexpr) (f : aexpr) : string option =
  match cond, t, f with
  | A_bin (op, A_param a, A_param b), A_param ta, A_param fa
    when a <> b && ta <> fa && (ta = a || ta = b) && (fa = a || fa = b) -> (
    match op with
    | Ir.Lt_i | Ir.Leq_i -> Some (if ta = a then "int min" else "int max")
    | Ir.Gt_i | Ir.Geq_i -> Some (if ta = a then "int max" else "int min")
    | _ -> None)
  | _ -> None

let classify (e : aexpr) : verdict =
  let contract name =
    Assoc_comm
      (Printf.sprintf
         "%s is associative and commutative over machine values — any \
          re-grouping of the fold is bit-identical"
         name)
  in
  match e with
  | A_bin (op, A_param 0, A_param 1) | A_bin (op, A_param 1, A_param 0) ->
    if assoc_comm_binop op then contract (binop_name op)
    else if float_binop op then
      Unknown
        (Printf.sprintf
           "%s is not associative (rounding depends on grouping)"
           (binop_name op))
    else
      Unknown (Printf.sprintf "%s is not associative" (binop_name op))
  | A_ite (cond, t, f) -> (
    match minmax_shape cond t f with
    | Some name -> contract name
    | None -> Unknown "combiner shape not recognized")
  | _ -> Unknown "combiner shape not recognized"

(* --- entry point ---------------------------------------------------- *)

let scalar_combiner_ty = function
  | Ir.I32 | Ir.F32 | Ir.Bool | Ir.Bit -> true
  | _ -> false

(* Verdict for the combiner function [key]: is `reduce` with this
   combiner safe to re-associate (tree-combine)? *)
let analyze (prog : Ir.program) (key : string) : verdict =
  match Ir.find_func prog key with
  | None -> Unknown (Printf.sprintf "no function named %s" key)
  | Some fn -> (
    match fn.Ir.fn_params with
    | [ a; b ]
      when a.Ir.v_ty = b.Ir.v_ty
           && fn.Ir.fn_ret = a.Ir.v_ty
           && scalar_combiner_ty a.Ir.v_ty -> (
      try classify (eval_fn prog fn [ A_param 0; A_param 1 ] 0)
      with Opaque why -> Unknown why)
    | _ -> Unknown "combiner is not a binary scalar function")

let is_assoc_comm prog key =
  match analyze prog key with Assoc_comm _ -> true | Unknown _ -> false
