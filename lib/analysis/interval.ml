(* The interval abstract domain over 32-bit integers.

   Bounds are OCaml native ints (comfortably wider than 32 bits), with
   [None] standing for the corresponding infinity. Any arithmetic
   result that could leave the 32-bit range goes to [top]: the VM
   normalizes to 32-bit wraparound semantics, so a potential overflow
   destroys all bound information rather than saturating. *)

type t =
  | Bot  (** unreachable / no value *)
  | Itv of int option * int option
      (** [lo, hi]; [None] is -inf / +inf respectively *)

let i32_min = -0x8000_0000
let i32_max = 0x7fff_ffff
let top = Itv (None, None)
let of_int n = Itv (Some n, Some n)
let of_bounds lo hi = if lo > hi then Bot else Itv (Some lo, Some hi)
let nonneg = Itv (Some 0, None)
let boolean = Itv (Some 0, Some 1)
let is_bot t = t = Bot

let to_string = function
  | Bot -> "bot"
  | Itv (lo, hi) ->
    let b = function Some n -> string_of_int n | None -> "" in
    Printf.sprintf "[%s%s, %s%s]"
      (match lo with Some _ -> "" | None -> "-inf")
      (b lo)
      (match hi with Some _ -> "" | None -> "+inf")
      (b hi)

(* Wraparound guard: a finite bound outside the 32-bit range means the
   concrete value may have wrapped, so the whole interval is unknown. *)
let norm = function
  | Bot -> Bot
  | Itv (Some lo, Some hi) when lo > hi -> Bot
  | Itv (lo, hi) ->
    let out_low = match lo with Some l -> l < i32_min | None -> false in
    let out_high = match hi with Some h -> h > i32_max | None -> false in
    if out_low || out_high then top else Itv (lo, hi)

let equal a b = a = b

let join a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Itv (l1, h1), Itv (l2, h2) ->
    let lo = match l1, l2 with Some a, Some b -> Some (min a b) | _ -> None in
    let hi = match h1, h2 with Some a, Some b -> Some (max a b) | _ -> None in
    Itv (lo, hi)

let meet a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) ->
    let lo =
      match l1, l2 with
      | Some a, Some b -> Some (max a b)
      | (Some _ as s), None | None, (Some _ as s) -> s
      | None, None -> None
    in
    let hi =
      match h1, h2 with
      | Some a, Some b -> Some (min a b)
      | (Some _ as s), None | None, (Some _ as s) -> s
      | None, None -> None
    in
    (match lo, hi with
    | Some l, Some h when l > h -> Bot
    | _ -> Itv (lo, hi))

(* Standard interval widening: any bound that moved jumps to infinity. *)
let widen old incoming =
  match old, incoming with
  | Bot, x | x, Bot -> x
  | Itv (l1, h1), Itv (l2, h2) ->
    let lo =
      match l1, l2 with
      | Some a, Some b when b < a -> None
      | None, _ | _, None -> None
      | _ -> l1
    in
    let hi =
      match h1, h2 with
      | Some a, Some b when b > a -> None
      | None, _ | _, None -> None
      | _ -> h1
    in
    Itv (lo, hi)

(* --- arithmetic transfer functions -------------------------------- *)

let lift2 f a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) -> norm (f (l1, h1) (l2, h2))

let badd a b = match a, b with Some x, Some y -> Some (x + y) | _ -> None
let bneg = Option.map (fun x -> -x)

let add = lift2 (fun (l1, h1) (l2, h2) -> Itv (badd l1 l2, badd h1 h2))

let neg = function
  | Bot -> Bot
  | Itv (lo, hi) -> norm (Itv (bneg hi, bneg lo))

let sub a b = add a (neg b)

let mul =
  lift2 (fun (l1, h1) (l2, h2) ->
      match l1, h1, l2, h2 with
      | Some l1, Some h1, Some l2, Some h2 ->
        let products = [ l1 * l2; l1 * h2; h1 * l2; h1 * h2 ] in
        Itv
          ( Some (List.fold_left min max_int products),
            Some (List.fold_left max min_int products) )
      | _ -> top)

(* Truncating division; a divisor interval containing 0 may trap, so
   no bound survives. *)
let div =
  lift2 (fun (l1, h1) (l2, h2) ->
      match l1, h1, l2, h2 with
      | Some l1, Some h1, Some l2, Some h2 when l2 > 0 || h2 < 0 ->
        let quotients = [ l1 / l2; l1 / h2; h1 / l2; h1 / h2 ] in
        Itv
          ( Some (List.fold_left min max_int quotients),
            Some (List.fold_left max min_int quotients) )
      | _ -> top)

(* OCaml / C-style remainder takes the dividend's sign and satisfies
   |x rem m| < |m|. *)
let rem a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, _h1), Itv (l2, h2) -> (
    match l2, h2 with
    | Some l2, Some h2 when l2 > 0 || h2 < 0 ->
      let m = max (abs l2) (abs h2) - 1 in
      let lo = match l1 with Some l when l >= 0 -> 0 | _ -> -m in
      let hi =
        match a with Itv (_, Some h) when h <= 0 -> 0 | _ -> m
      in
      norm (Itv (Some lo, Some hi))
    | _ -> top)

(* x land m with m >= 0 yields a value in [0, m]; symmetric in x. *)
let band a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) ->
    let bound_from (lo, hi) =
      match lo, hi with
      | Some l, Some h when l >= 0 -> Some h
      | _ -> None
    in
    (match bound_from (l1, h1), bound_from (l2, h2) with
    | Some m1, Some m2 -> of_bounds 0 (min m1 m2)
    | Some m, None | None, Some m -> of_bounds 0 m
    | None, None -> top)

(* or/xor of two non-negative values stays under the next power of
   two covering both. *)
let bor_like a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (Some l1, Some h1), Itv (Some l2, Some h2) when l1 >= 0 && l2 >= 0 ->
    let m = max h1 h2 in
    let rec pow2 p = if p - 1 >= m then p - 1 else pow2 (p * 2) in
    of_bounds 0 (pow2 1)
  | _ -> top

let shl a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (Some l, Some h), Itv (Some k, Some k') when k = k' && k >= 0 && k < 32
    ->
    norm (Itv (Some (l lsl k), Some (h lsl k)))
  | _ -> top

(* Arithmetic shift right is monotone in the shifted value. *)
let shr a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (Some l, Some h), Itv (Some k, Some k') when k = k' && k >= 0 && k < 32
    ->
    norm (Itv (Some (l asr k), Some (h asr k)))
  | Itv (Some l, _), Itv (Some k, _) when l >= 0 && k >= 0 ->
    Itv (Some 0, match a with Itv (_, Some h) -> Some h | _ -> None)
  | _ -> top

let bnot a = sub (of_int (-1)) a

(* --- comparisons: return a boolean interval, constant when the
   operand intervals are disjoint / ordered ------------------------- *)

let bool_itv b = if b then of_int 1 else of_int 0

let cmp_lt a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (_, Some h1), Itv (Some l2, _) when h1 < l2 -> bool_itv true
  | Itv (Some l1, _), Itv (_, Some h2) when l1 >= h2 -> bool_itv false
  | _ -> boolean

let cmp_leq a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (_, Some h1), Itv (Some l2, _) when h1 <= l2 -> bool_itv true
  | Itv (Some l1, _), Itv (_, Some h2) when l1 > h2 -> bool_itv false
  | _ -> boolean

let cmp_eq a b =
  match a, b with
  | Bot, _ | _, Bot -> Bot
  | Itv (Some l1, Some h1), Itv (Some l2, Some h2)
    when l1 = h1 && l2 = h2 && l1 = l2 ->
    bool_itv true
  | _ -> if is_bot (meet a b) then bool_itv false else boolean

(* --- queries ------------------------------------------------------- *)

let const_of = function Itv (Some l, Some h) when l = h -> Some l | _ -> None
let lower = function Itv (Some l, _) -> Some l | _ -> None
let upper = function Itv (_, Some h) -> Some h | _ -> None

(* Bits needed for an unsigned value in [0, n]. *)
let rec unsigned_bits n = if n <= 1 then 1 else 1 + unsigned_bits (n / 2)

(* Smallest two's-complement width holding every value of the
   interval; [None] when a bound is infinite (no narrowing). *)
let width = function
  | Bot -> Some 1
  | Itv (Some lo, Some hi) when lo >= 0 -> Some (unsigned_bits hi)
  | Itv (Some lo, Some hi) ->
    let rec signed_bits w =
      if -(1 lsl (w - 1)) <= lo && hi <= (1 lsl (w - 1)) - 1 then w
      else signed_bits (w + 1)
    in
    Some (signed_bits 2)
  | _ -> None
