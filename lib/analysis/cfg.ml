(* Control-flow graph construction over the structured Lime IR.

   [Ir.block] is a statement tree (ifs and whiles nest); the dataflow
   analyses want a flat graph of straight-line nodes with explicit
   edges. Each node holds the instructions executed unconditionally in
   sequence and ends in a terminator. Loop heads are marked so the
   fixpoint engine knows where to widen. *)

module Ir = Lime_ir.Ir

type terminator =
  | T_jump of int
  | T_branch of Ir.operand * int * int  (** condition, then, else *)
  | T_return of Ir.operand option
  | T_exit  (** fell off the end of the function *)

type node = {
  mutable instrs : Ir.instr list;  (** straight-line code, in order *)
  mutable term : terminator;
}

type t = {
  nodes : node array;
  entry : int;
  loop_heads : bool array;
  loop_branches : bool array;
      (** nodes whose branch is a loop condition (not source-level
          [if]); dead-code lint skips these *)
  preds : int list array;
}

let succs_of_term = function
  | T_jump n -> [ n ]
  | T_branch (_, a, b) -> if a = b then [ a ] else [ a; b ]
  | T_return _ | T_exit -> []

let succs g n = succs_of_term g.nodes.(n).term

let build (body : Ir.block) : t =
  let tbl : (int, node) Hashtbl.t = Hashtbl.create 16 in
  let heads : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let loop_branch : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let count = ref 0 in
  let fresh () =
    let id = !count in
    incr count;
    Hashtbl.add tbl id { instrs = []; term = T_exit };
    id
  in
  let node id = Hashtbl.find tbl id in
  let push id i =
    let nd = node id in
    nd.instrs <- i :: nd.instrs
  in
  (* Close a node with [t] unless it already ended (in a return). *)
  let seal id t =
    let nd = node id in
    match nd.term with T_exit -> nd.term <- t | _ -> ()
  in
  let rec go cur (b : Ir.block) : int =
    match b with
    | [] -> cur
    | Ir.I_if (c, then_b, else_b) :: rest ->
      let tn = fresh () and en = fresh () in
      seal cur (T_branch (c, tn, en));
      let t_end = go tn then_b in
      let e_end = go en else_b in
      let join = fresh () in
      seal t_end (T_jump join);
      seal e_end (T_jump join);
      go join rest
    | Ir.I_while (cond_b, c, body_b) :: rest ->
      let head = fresh () in
      Hashtbl.replace heads head ();
      seal cur (T_jump head);
      let head_end = go head cond_b in
      Hashtbl.replace loop_branch head_end ();
      let bn = fresh () and exit_n = fresh () in
      seal head_end (T_branch (c, bn, exit_n));
      let b_end = go bn body_b in
      seal b_end (T_jump head);
      go exit_n rest
    | Ir.I_return o :: rest ->
      seal cur (T_return o);
      (* anything after a return is dead code: park it in a node with
         no predecessors so reachability analysis sees it as dead *)
      let dead = fresh () in
      go dead rest
    | i :: rest ->
      push cur i;
      go cur rest
  in
  let entry = fresh () in
  ignore (go entry body);
  let nodes =
    Array.init !count (fun i ->
        let nd = node i in
        { nd with instrs = List.rev nd.instrs })
  in
  let preds = Array.make !count [] in
  Array.iteri
    (fun i nd ->
      List.iter (fun s -> preds.(s) <- i :: preds.(s)) (succs_of_term nd.term))
    nodes;
  {
    nodes;
    entry;
    loop_heads = Array.init !count (Hashtbl.mem heads);
    loop_branches = Array.init !count (Hashtbl.mem loop_branch);
    preds;
  }

let size g = Array.length g.nodes
