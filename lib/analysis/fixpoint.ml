(* A generic monotone dataflow framework.

   The device compilers need several fixpoint computations — interval
   analysis over control-flow graphs, effect inference over the call
   graph — and they all share the same skeleton: a lattice of facts, a
   graph of nodes, a monotone transfer function, and a worklist that
   iterates to a fixed point. [Make] packages that skeleton once.

   Termination: for finite-height lattices the worklist terminates on
   its own; for infinite-ascending-chain lattices (intervals) the
   caller marks widening points (loop heads) and supplies [widen],
   which the solver applies after a node has been visited more than
   [widen_after] times. *)

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old new_] must yield an upper bound of both and guarantee
      that repeated widening stabilizes. Finite-height lattices can
      use [join]. *)
end

type stats = { iterations : int; widenings : int }

(* Visits before widening kicks in at a widening point: lets a loop
   body contribute a couple of concrete bounds before extrapolating. *)
let widen_after = 2

module Make (L : LATTICE) = struct
  type problem = {
    size : int;  (** nodes are [0 .. size-1] *)
    entries : (int * L.t) list;  (** seed nodes with their initial facts *)
    succs : int -> int list;
    transfer : int -> L.t -> L.t;  (** out-fact of a node from its in-fact *)
    edge : int -> int -> L.t -> L.t;
        (** refinement applied to a fact flowing along [src -> dst]
            (e.g. branch-condition narrowing); identity if none *)
    widen_at : int -> bool;  (** widening points (loop heads) *)
  }

  (* Solve to a fixpoint; returns the in-fact of every node. Nodes
     never reached from an entry keep [L.bottom] — callers use that
     for reachability. *)
  let solve (p : problem) : L.t array * stats =
    let in_fact = Array.make p.size L.bottom in
    let visits = Array.make p.size 0 in
    let on_queue = Array.make p.size false in
    let queue = Queue.create () in
    let iterations = ref 0 and widenings = ref 0 in
    let enqueue n =
      if not on_queue.(n) then begin
        on_queue.(n) <- true;
        Queue.push n queue
      end
    in
    List.iter
      (fun (n, fact) ->
        in_fact.(n) <- L.join in_fact.(n) fact;
        enqueue n)
      p.entries;
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      on_queue.(n) <- false;
      incr iterations;
      if !iterations > 200_000 then
        failwith "Fixpoint.solve: iteration budget exceeded";
      let out = p.transfer n in_fact.(n) in
      List.iter
        (fun s ->
          let incoming = p.edge n s out in
          let cur = in_fact.(s) in
          visits.(s) <- visits.(s) + 1;
          let merged =
            if p.widen_at s && visits.(s) > widen_after then begin
              let w = L.widen cur (L.join cur incoming) in
              if not (L.equal w cur) then incr widenings;
              w
            end
            else L.join cur incoming
          in
          if not (L.equal merged cur) then begin
            in_fact.(s) <- merged;
            enqueue s
          end)
        (p.succs n)
    done;
    in_fact, { iterations = !iterations; widenings = !widenings }
end
