(* Relational value analysis over the Lime IR.

   [Range] is non-relational: inside `for (i = 0; i < a.length; i++)`
   the loop head widens `i` to [0, +inf) and every access `a[i]`
   reports [Unknown]. This pass runs the same CFG fixpoint but pairs
   the concrete interval state with *symbolic bounds*: per register an
   optional upper/lower bound of the form `expr + offset`, where
   [expr] is a canonical expression over registers that are never
   reassigned (parameters and the lengths/values derived from them).

   The key facts:

   - Canonicalization is flow-insensitive. A leaf [X_arg s] names a
     register with no definition in the function body (a parameter);
     its machine value is fixed for the whole activation, so two
     occurrences of the same canonical expression — even textual
     re-computations like the `n * n` in a loop condition vs the
     `n * n` that sized an allocation — denote the same machine value.
     Structural equality of canonical expressions is therefore value
     equality, with no invalidation needed anywhere.

   - Expressions evaluate with machine (wraparound) semantics. We
     never split `e + c` into bound `{e, c}`: offsets only enter
     through comparison refinement (`i < e` gives `i <= e - 1`),
     which is exact over any two in-range machine integers.

   - Widening never loops: symbolic bounds that disagree at a widening
     point drop to [None], and the loop-head-to-body edge refinement
     re-establishes `i <= len - 1` on every iteration — which is
     exactly where the access proof needs it.

   An access `a[i]` is proven when the concrete lower bound of `i` is
   >= 0 and the symbolic upper bound of `i` is `{e, off}` with
   `off < 0` and `e` structurally equal to the canonical length
   expression of `a`. *)

module Ir = Lime_ir.Ir
module Iv = Interval

(* --- canonical expressions ----------------------------------------- *)

type sexpr =
  | X_arg of int  (** register with no definition in the body *)
  | X_const of int
  | X_len of sexpr  (** length of the array denoted by the expression *)
  | X_bin of Ir.binop * sexpr * sexpr
  | X_un of Ir.unop * sexpr

let rec sexpr_size = function
  | X_arg _ | X_const _ -> 1
  | X_len e | X_un (_, e) -> 1 + sexpr_size e
  | X_bin (_, a, b) -> 1 + sexpr_size a + sexpr_size b

let max_sexpr_size = 64

let rec sexpr_to_string = function
  | X_arg s -> Printf.sprintf "r%d" s
  | X_const n -> string_of_int n
  | X_len e -> Printf.sprintf "len(%s)" (sexpr_to_string e)
  | X_bin (op, a, b) ->
    let sym =
      match op with
      | Ir.Add_i -> "+"
      | Ir.Sub_i -> "-"
      | Ir.Mul_i -> "*"
      | Ir.Div_i -> "/"
      | Ir.Rem_i -> "%"
      | Ir.Shl_i -> "<<"
      | Ir.Shr_i -> ">>"
      | Ir.And_i -> "&"
      | Ir.Or_i -> "|"
      | Ir.Xor_i -> "^"
      | _ -> "?"
    in
    Printf.sprintf "(%s %s %s)" (sexpr_to_string a) sym (sexpr_to_string b)
  | X_un (Ir.Neg_i, e) -> Printf.sprintf "(-%s)" (sexpr_to_string e)
  | X_un (Ir.Bnot_i, e) -> Printf.sprintf "(~%s)" (sexpr_to_string e)
  | X_un (_, e) -> Printf.sprintf "(?%s)" (sexpr_to_string e)

let commutative = function
  | Ir.Add_i | Ir.Mul_i | Ir.And_i | Ir.Or_i | Ir.Xor_i -> true
  | _ -> false

(* Deterministic integer operators whose machine result is a function
   of the operand machine values alone. *)
let canonical_binop = function
  | Ir.Add_i | Ir.Sub_i | Ir.Mul_i | Ir.Div_i | Ir.Rem_i | Ir.Shl_i
  | Ir.Shr_i | Ir.And_i | Ir.Or_i | Ir.Xor_i ->
    true
  | _ -> false

let canonical_unop = function
  | Ir.Neg_i | Ir.Bnot_i -> true
  | Ir.Not_b | Ir.Neg_f | Ir.I2f -> false

let mk_bin op a b =
  let a, b = if commutative op && compare a b > 0 then b, a else a, b in
  let e = X_bin (op, a, b) in
  if sexpr_size e > max_sexpr_size then None else Some e

(* Canonicalizer: resolves a register to an expression over
   never-reassigned leaves by looking through single-definition
   registers (the [Range.collect_defs] table: no entry = never
   defined in the body; [Some r] = exactly one textual definition;
   [None] = several). *)
type canon = {
  defs : (int, Ir.rhs option) Hashtbl.t;
  val_memo : (int, sexpr option) Hashtbl.t;
  len_memo : (int, sexpr option) Hashtbl.t;
  mutable visiting : int list;
}

let make_canon (fn : Ir.func) =
  {
    defs = Range.collect_defs fn;
    val_memo = Hashtbl.create 16;
    len_memo = Hashtbl.create 16;
    visiting = [];
  }

let rec canon_value c (o : Ir.operand) : sexpr option =
  match o with
  | Ir.O_const (Ir.C_i32 n) -> Some (X_const n)
  | Ir.O_const (Ir.C_bool b) | Ir.O_const (Ir.C_bit b) ->
    Some (X_const (if b then 1 else 0))
  | Ir.O_const _ -> None
  | Ir.O_var v -> canon_value_slot c v.Ir.v_id

and canon_value_slot c id =
  match Hashtbl.find_opt c.val_memo id with
  | Some r -> r
  | None ->
    let r =
      if List.mem id c.visiting then None
      else begin
        c.visiting <- id :: c.visiting;
        let r =
          match Hashtbl.find_opt c.defs id with
          | None -> Some (X_arg id) (* never assigned in the body *)
          | Some None -> None (* several definitions *)
          | Some (Some rhs) -> canon_value_rhs c rhs
        in
        c.visiting <- List.tl c.visiting;
        r
      end
    in
    Hashtbl.replace c.val_memo id r;
    r

and canon_value_rhs c (r : Ir.rhs) : sexpr option =
  match r with
  | Ir.R_op o -> canon_value c o
  | Ir.R_unop (op, a) when canonical_unop op -> (
    match canon_value c a with
    | Some e ->
      let e = X_un (op, e) in
      if sexpr_size e > max_sexpr_size then None else Some e
    | None -> None)
  | Ir.R_binop (op, a, b) when canonical_binop op -> (
    match canon_value c a, canon_value c b with
    | Some ea, Some eb -> mk_bin op ea eb
    | _ -> None)
  | Ir.R_alen a -> canon_length c a
  | _ -> None

(* Canonical expression for the *length* of the array an operand
   holds. Array lengths are immutable, so the length of a
   never-reassigned array register is fixed; an allocation's length
   is the canonical value of its size operand. *)
and canon_length c (o : Ir.operand) : sexpr option =
  match o with
  | Ir.O_const _ -> None
  | Ir.O_var v -> canon_length_slot c v.Ir.v_id

and canon_length_slot c id =
  match Hashtbl.find_opt c.len_memo id with
  | Some r -> r
  | None ->
    let r =
      if List.mem (-id - 1) c.visiting then None
      else begin
        c.visiting <- (-id - 1) :: c.visiting;
        let r =
          match Hashtbl.find_opt c.defs id with
          | None -> Some (X_len (X_arg id)) (* array parameter *)
          | Some None -> None
          | Some (Some rhs) -> (
            match rhs with
            | Ir.R_newarr (_, n) -> canon_value c n
            | Ir.R_freeze a | Ir.R_op a -> canon_length c a
            | _ -> None)
        in
        c.visiting <- List.tl c.visiting;
        r
      end
    in
    Hashtbl.replace c.len_memo id r;
    r

(* --- the relational state ------------------------------------------ *)

(* [val <= eval(b_expr) + b_off] (upper) / [>=] (lower), where
   [eval] is machine evaluation and the [+ b_off] is exact. *)
type bound = { b_expr : sexpr; b_off : int }

type state = {
  conc : Range.state;
  slo : bound option array;
  shi : bound option array;
}

let copy_state s =
  {
    conc =
      {
        Range.vals = Array.copy s.conc.Range.vals;
        lens = Array.copy s.conc.Range.lens;
      };
    slo = Array.copy s.slo;
    shi = Array.copy s.shi;
  }

module Env = struct
  type t = state option

  let bottom = None

  let equal a b =
    match a, b with
    | None, None -> true
    | Some a, Some b ->
      a.conc.Range.vals = b.conc.Range.vals
      && a.conc.Range.lens = b.conc.Range.lens
      && a.slo = b.slo && a.shi = b.shi
    | _ -> false

  let join_bound ~upper a b =
    match a, b with
    | None, _ | _, None -> None
    | Some a, Some b ->
      if a.b_expr = b.b_expr then
        Some { a with b_off = (if upper then max else min) a.b_off b.b_off }
      else None

  let lift2 fconc fsym a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b ->
      Some
        {
          conc =
            {
              Range.vals = Array.map2 fconc a.conc.Range.vals b.conc.Range.vals;
              lens = Array.map2 fconc a.conc.Range.lens b.conc.Range.lens;
            };
          slo = Array.map2 (fsym ~upper:false) a.slo b.slo;
          shi = Array.map2 (fsym ~upper:true) a.shi b.shi;
        }

  let join = lift2 Iv.join join_bound

  (* Symbolic bounds have no infinite ascending chains of interest:
     disagreeing bounds drop to [None] at widening points, so each
     slot changes at most twice there. *)
  let widen_bound ~upper a b =
    ignore upper;
    match a, b with Some a, Some b when a = b -> Some a | _ -> None

  let widen = lift2 Iv.widen widen_bound
end

module Solver = Fixpoint.Make (Env)

(* --- transfer ------------------------------------------------------ *)

(* A literal ±constant shifts a bound exactly: the bound relation
   [u <= e + off] gives [u + c <= e + off + c] over in-range machine
   integers (indices and lengths are non-negative i32s and the
   offsets are source literals, so neither side wraps). This is what
   lets a *derived* index [j = i + off] inherit the loop guard's
   bound on [i]. *)
let shift_bound c = Option.map (fun b -> { b with b_off = b.b_off + c })

let assign canon st (v : Ir.var) (r : Ir.rhs) =
  let id = v.Ir.v_id in
  match canon_value_rhs canon r with
  | Some e ->
    (* the rhs is a deterministic function of fixed leaves: the new
       value *equals* the expression *)
    let b = Some { b_expr = e; b_off = 0 } in
    st.slo.(id) <- b;
    st.shi.(id) <- b
  | None -> (
    match r with
    | Ir.R_op (Ir.O_var u) ->
      st.slo.(id) <- st.slo.(u.Ir.v_id);
      st.shi.(id) <- st.shi.(u.Ir.v_id)
    | Ir.R_binop (Ir.Add_i, Ir.O_var u, Ir.O_const (Ir.C_i32 c))
    | Ir.R_binop (Ir.Add_i, Ir.O_const (Ir.C_i32 c), Ir.O_var u) ->
      (* read [u]'s bounds before writing: [i = i + 1] must shift the
         pre-state bound, and it does because both arrays are read
         first *)
      st.slo.(id) <- shift_bound c st.slo.(u.Ir.v_id);
      st.shi.(id) <- shift_bound c st.shi.(u.Ir.v_id)
    | Ir.R_binop (Ir.Sub_i, Ir.O_var u, Ir.O_const (Ir.C_i32 c)) ->
      st.slo.(id) <- shift_bound (-c) st.slo.(u.Ir.v_id);
      st.shi.(id) <- shift_bound (-c) st.shi.(u.Ir.v_id)
    | _ ->
      st.slo.(id) <- None;
      st.shi.(id) <- None)

let exec rctx canon ~record (instrs : Ir.instr list) (st : state option) :
    state option =
  match st with
  | None -> None
  | Some s ->
    let s = copy_state s in
    List.iter
      (fun (i : Ir.instr) ->
        match i with
        | Ir.I_let (v, r) | Ir.I_set (v, r) ->
          let value, len = Range.eval_rhs rctx s.conc ~record:ignore r in
          record i s;
          s.conc.Range.vals.(v.Ir.v_id) <- value;
          s.conc.Range.lens.(v.Ir.v_id) <- len;
          assign canon s v r
        | Ir.I_astore _ -> record i s
        | Ir.I_do r ->
          ignore (Range.eval_rhs rctx s.conc ~record:ignore r);
          record i s
        | Ir.I_setfield _ | Ir.I_run_graph _ -> ()
        | Ir.I_if _ | Ir.I_while _ | Ir.I_return _ ->
          (* structured control flow was dissolved by Cfg.build *)
          assert false)
      instrs;
    Some s

(* --- branch refinement --------------------------------------------- *)

let tighten ~upper slot (arr : bound option array) e off =
  let candidate = { b_expr = e; b_off = off } in
  match arr.(slot) with
  | Some b when b.b_expr = e ->
    arr.(slot) <-
      Some { b with b_off = (if upper then min else max) b.b_off off }
  | _ -> arr.(slot) <- Some candidate

(* Apply `x OP y` known [truth] to the symbolic bounds. Offsets +-1
   are exact: both sides are in-range machine integers, so x < y
   implies x <= y - 1 with no wraparound. *)
let sym_constrain canon s truth (op : Ir.binop) x y =
  let upper_of o e off =
    match o with
    | Ir.O_var v -> tighten ~upper:true v.Ir.v_id s.shi e off
    | Ir.O_const _ -> ()
  in
  let lower_of o e off =
    match o with
    | Ir.O_var v -> tighten ~upper:false v.Ir.v_id s.slo e off
    | Ir.O_const _ -> ()
  in
  let apply kind =
    let ex = canon_value canon x and ey = canon_value canon y in
    match kind with
    | `Lt ->
      Option.iter (fun e -> upper_of x e (-1)) ey;
      Option.iter (fun e -> lower_of y e 1) ex
    | `Leq ->
      Option.iter (fun e -> upper_of x e 0) ey;
      Option.iter (fun e -> lower_of y e 0) ex
    | `Gt ->
      Option.iter (fun e -> lower_of x e 1) ey;
      Option.iter (fun e -> upper_of y e (-1)) ex
    | `Geq ->
      Option.iter (fun e -> lower_of x e 0) ey;
      Option.iter (fun e -> upper_of y e 0) ex
    | `Eq ->
      Option.iter
        (fun e ->
          upper_of x e 0;
          lower_of x e 0)
        ey;
      Option.iter
        (fun e ->
          upper_of y e 0;
          lower_of y e 0)
        ex
    | `Noop -> ()
  in
  match op, truth with
  | Ir.Lt_i, true | Ir.Geq_i, false -> apply `Lt
  | Ir.Leq_i, true | Ir.Gt_i, false -> apply `Leq
  | Ir.Gt_i, true | Ir.Leq_i, false -> apply `Gt
  | Ir.Geq_i, true | Ir.Lt_i, false -> apply `Geq
  | Ir.Eq, true | Ir.Neq, false -> apply `Eq
  | _ -> apply `Noop

let refine canon (g : Cfg.t) src dst (st : state option) : state option =
  match st with
  | None -> None
  | Some s -> (
    match g.Cfg.nodes.(src).Cfg.term with
    | Cfg.T_branch (c, tn, en) when tn <> en && (dst = tn || dst = en) -> (
      let truth = dst = tn in
      match c with
      | Ir.O_const k -> (
        match Iv.const_of (Range.eval_const k) with
        | Some n -> if (n <> 0) = truth then st else None
        | None -> st)
      | Ir.O_var v -> (
        let s = copy_state s in
        s.conc.Range.vals.(v.Ir.v_id) <-
          Iv.meet
            s.conc.Range.vals.(v.Ir.v_id)
            (if truth then Iv.of_int 1 else Iv.of_int 0);
        (match Hashtbl.find_opt canon.defs v.Ir.v_id with
        | Some (Some (Ir.R_binop (op, x, y))) ->
          Range.constrain s.conc truth op x y;
          sym_constrain canon s truth op x y
        | _ -> ());
        if Array.exists Iv.is_bot s.conc.Range.vals then None else Some s))
    | _ -> st)

(* --- access verdicts ----------------------------------------------- *)

type access = {
  ac_kind : [ `Load | `Store ];
  ac_bounds : Range.bounds;
  ac_relational : bool;
      (** proven by a symbolic bound where [Range] alone could not *)
  ac_instr : Ir.instr;  (** physical identity keys the proof *)
}

(* Peel literal constants off a canonical expression: [e - c] and
   [e + c] (in either commutative order) normalize to (base, ±c),
   recursively. Lets [i <= (len - off) - 1] shifted by [+ off] (the
   derived index [i + off]) compare against the plain [len]: both
   sides reduce to the same base with the offsets folded into the
   comparison. Exact for the same reason bound offsets are: lengths
   are non-negative i32s and the peeled constants are source
   literals, so no intermediate wraps. *)
let rec split_const (e : sexpr) : sexpr * int =
  match e with
  | X_bin (Ir.Add_i, X_const c, e') | X_bin (Ir.Add_i, e', X_const c) ->
    let base, k = split_const e' in
    base, k + c
  | X_bin (Ir.Sub_i, e', X_const c) ->
    let base, k = split_const e' in
    base, k - c
  | e -> e, 0

let access_verdict canon s ~(index : Ir.operand) ~(arr : Ir.operand) :
    Range.bounds * bool =
  let conc =
    Range.bounds_verdict
      ~index:(Range.operand_itv s.conc index)
      ~len:(Range.operand_len s.conc arr)
  in
  match conc with
  | Range.Proven | Range.Out_of_bounds -> conc, false
  | Range.Unknown -> (
    let lower_ok =
      match index with
      | Ir.O_const c -> (
        match Iv.lower (Range.eval_const c) with
        | Some l -> l >= 0
        | None -> false)
      | Ir.O_var v -> (
        let conc_lo =
          match Iv.lower s.conc.Range.vals.(v.Ir.v_id) with
          | Some l -> l >= 0
          | None -> false
        in
        conc_lo
        ||
        match s.slo.(v.Ir.v_id) with
        | Some { b_expr; b_off } -> (
          match split_const b_expr with
          | X_const n, k -> n + k + b_off >= 0
          | _ -> false)
        | _ -> false)
    in
    let upper_bound =
      match index with Ir.O_var v -> s.shi.(v.Ir.v_id) | Ir.O_const _ -> None
    in
    match upper_bound, canon_length canon arr with
    | Some { b_expr; b_off }, Some len_expr when lower_ok -> (
      let base_b, k_b = split_const b_expr in
      let base_l, k_l = split_const len_expr in
      (* index <= base + (k_b + b_off); length = base + k_l; in
         bounds iff the total offset stays strictly below the
         length's *)
      if base_b = base_l && b_off + k_b - k_l < 0 then Range.Proven, true
      else Range.Unknown, false)
    | _ -> Range.Unknown, false)

(* --- per-function analysis ----------------------------------------- *)

type fn_facts = {
  sf_accesses : access list;  (** in replay order *)
  sf_proven : int;
  sf_relational : int;  (** subset of [sf_proven] beyond [Range]'s reach *)
  sf_oob : int;
  sf_total : int;
}

let analyze_fn (prog : Ir.program) (fn : Ir.func) : fn_facts =
  let g = Cfg.build fn.Ir.fn_body in
  let nslots = max 1 (Ir.var_slot_count fn) in
  let canon = make_canon fn in
  let rctx = Range.make_ctx prog in
  rctx.Range.visiting <- [ fn.Ir.fn_key ];
  let init =
    {
      conc =
        {
          Range.vals = Array.make nslots Iv.top;
          lens = Array.make nslots Iv.top;
        };
      slo = Array.make nslots None;
      shi = Array.make nslots None;
    }
  in
  List.iter
    (fun (p : Ir.var) ->
      init.conc.Range.vals.(p.Ir.v_id) <- Range.of_ty prog p.Ir.v_ty;
      init.conc.Range.lens.(p.Ir.v_id) <- Range.len_of_ty p.Ir.v_ty)
    fn.Ir.fn_params;
  let no_record _ _ = () in
  let facts, _stats =
    Solver.solve
      {
        Solver.size = Cfg.size g;
        entries = [ g.Cfg.entry, Some init ];
        succs = Cfg.succs g;
        transfer =
          (fun n st ->
            exec rctx canon ~record:no_record g.Cfg.nodes.(n).Cfg.instrs st);
        edge = refine canon g;
        widen_at = (fun n -> g.Cfg.loop_heads.(n));
      }
  in
  (* Stabilized: replay each reachable node once, recording per-access
     verdicts keyed by the physical instruction. *)
  let accesses = ref [] in
  let record (i : Ir.instr) s =
    let note kind index arr =
      let bounds, relational = access_verdict canon s ~index ~arr in
      accesses :=
        { ac_kind = kind; ac_bounds = bounds; ac_relational = relational;
          ac_instr = i }
        :: !accesses
    in
    match i with
    | Ir.I_astore (a, idx, _) -> note `Store idx a
    | Ir.I_let (_, Ir.R_aload (a, idx))
    | Ir.I_set (_, Ir.R_aload (a, idx))
    | Ir.I_do (Ir.R_aload (a, idx)) ->
      note `Load idx a
    | _ -> ()
  in
  Array.iteri
    (fun i st ->
      match st with
      | None -> ()
      | Some _ -> ignore (exec rctx canon ~record g.Cfg.nodes.(i).Cfg.instrs st))
    facts;
  let accesses = List.rev !accesses in
  let count p = List.length (List.filter p accesses) in
  {
    sf_accesses = accesses;
    sf_proven = count (fun a -> a.ac_bounds = Range.Proven);
    sf_relational = count (fun a -> a.ac_relational);
    sf_oob = count (fun a -> a.ac_bounds = Range.Out_of_bounds);
    sf_total = List.length accesses;
  }

type program_facts = { sp_fns : (string * fn_facts) list }

let analyze_program (prog : Ir.program) : program_facts =
  {
    sp_fns =
      Ir.String_map.fold
        (fun key fn acc -> (key, analyze_fn prog fn) :: acc)
        prog.Ir.funcs []
      |> List.rev;
  }

(* --- proof consumption --------------------------------------------- *)

(* Physical-identity predicate: [true] iff [instr]'s array access was
   proven in bounds. The compiler and the analysis walk the *same*
   program value, so identity survives from analysis to codegen. *)
let fn_prover (ff : fn_facts) : Ir.instr -> bool =
 fun instr ->
  List.exists
    (fun a -> a.ac_bounds = Range.Proven && a.ac_instr == instr)
    ff.sf_accesses

let prover (pf : program_facts) : string -> Ir.instr -> bool =
 fun key instr ->
  match List.assoc_opt key pf.sp_fns with
  | None -> false
  | Some ff -> fn_prover ff instr
