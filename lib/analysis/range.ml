(* Value-range analysis over the Lime IR.

   An intraprocedural interval analysis (with memoized interprocedural
   return summaries) run on the CFG of each function by the generic
   fixpoint engine. Per virtual register it tracks the interval of the
   register's value and, for array-typed registers, the interval of
   the array's length. Clients:

   - [Rtl.Synth] narrows FPGA register/wire widths from the return
     interval of filter functions;
   - the GPU path marks provably in-bounds array accesses;
   - the task-graph lint reads the intervals of [R_mkgraph] operands
     (source rates) to detect graphs that can never make progress. *)

module Ir = Lime_ir.Ir
module Iv = Interval

type state = { vals : Iv.t array; lens : Iv.t array }

module Env = struct
  type t = state option  (* [None] = unreachable *)

  let bottom = None

  let lift2 f a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b ->
      Some
        {
          vals = Array.map2 f a.vals b.vals;
          lens = Array.map2 f a.lens b.lens;
        }

  let equal a b =
    match a, b with
    | None, None -> true
    | Some a, Some b -> a.vals = b.vals && a.lens = b.lens
    | _ -> false

  let join = lift2 Iv.join
  let widen = lift2 Iv.widen
end

module Solver = Fixpoint.Make (Env)

(* --- type-derived intervals ---------------------------------------- *)

let of_ty (prog : Ir.program) = function
  | Ir.Bool | Ir.Bit -> Iv.boolean
  | Ir.Enum e -> (
    match Ir.String_map.find_opt e prog.enums with
    | Some cases -> Iv.of_bounds 0 (max 0 (Array.length cases - 1))
    | None -> Iv.top)
  | Ir.I32 | Ir.F32 | Ir.Arr _ | Ir.Obj _ | Ir.Graph | Ir.Unit -> Iv.top

let len_of_ty = function Ir.Arr _ -> Iv.nonneg | _ -> Iv.top

let eval_const = function
  | Ir.C_i32 n -> Iv.of_int n
  | Ir.C_bool b | Ir.C_bit b -> Iv.of_int (if b then 1 else 0)
  | Ir.C_enum (_, tag) -> Iv.of_int tag
  | Ir.C_unit | Ir.C_f32 _ | Ir.C_bits _ -> Iv.top

(* --- operator transfer --------------------------------------------- *)

let bool_not v =
  match Iv.const_of v with
  | Some 0 -> Iv.of_int 1
  | Some _ -> Iv.of_int 0
  | None -> Iv.boolean

let bool_and a b =
  match Iv.const_of a, Iv.const_of b with
  | Some 0, _ | _, Some 0 -> Iv.of_int 0
  | Some x, Some y when x <> 0 && y <> 0 -> Iv.of_int 1
  | _ -> Iv.boolean

let bool_or a b =
  match Iv.const_of a, Iv.const_of b with
  | Some x, _ when x <> 0 -> Iv.of_int 1
  | _, Some y when y <> 0 -> Iv.of_int 1
  | Some 0, Some 0 -> Iv.of_int 0
  | _ -> Iv.boolean

let bool_xor a b =
  match Iv.const_of a, Iv.const_of b with
  | Some x, Some y -> Iv.of_int (if (x <> 0) <> (y <> 0) then 1 else 0)
  | _ -> Iv.boolean

let eval_binop (op : Ir.binop) a b =
  match op with
  | Ir.Add_i -> Iv.add a b
  | Ir.Sub_i -> Iv.sub a b
  | Ir.Mul_i -> Iv.mul a b
  | Ir.Div_i -> Iv.div a b
  | Ir.Rem_i -> Iv.rem a b
  | Ir.Shl_i -> Iv.shl a b
  | Ir.Shr_i -> Iv.shr a b
  | Ir.And_i -> Iv.band a b
  | Ir.Or_i | Ir.Xor_i -> Iv.bor_like a b
  | Ir.And_b | Ir.And_bit -> bool_and a b
  | Ir.Or_b | Ir.Or_bit -> bool_or a b
  | Ir.Xor_b | Ir.Xor_bit -> bool_xor a b
  | Ir.Eq -> Iv.cmp_eq a b
  | Ir.Neq -> bool_not (Iv.cmp_eq a b)
  | Ir.Lt_i -> Iv.cmp_lt a b
  | Ir.Leq_i -> Iv.cmp_leq a b
  | Ir.Gt_i -> Iv.cmp_lt b a
  | Ir.Geq_i -> Iv.cmp_leq b a
  | Ir.Add_f | Ir.Sub_f | Ir.Mul_f | Ir.Div_f | Ir.Rem_f -> Iv.top
  | Ir.Lt_f | Ir.Leq_f | Ir.Gt_f | Ir.Geq_f -> Iv.boolean

let eval_unop (op : Ir.unop) a =
  match op with
  | Ir.Neg_i -> Iv.neg a
  | Ir.Bnot_i -> Iv.bnot a
  | Ir.Not_b -> bool_not a
  | Ir.Neg_f | Ir.I2f -> Iv.top

(* --- recorded facts ------------------------------------------------ *)

type bounds = Proven | Unknown | Out_of_bounds

type event =
  | Ev_graph of string * Iv.t list  (** mkgraph uid, operand intervals *)
  | Ev_access of [ `Load | `Store ] * bounds

type fn_facts = {
  ff_ret : Iv.t;  (** join over reachable returns; [Bot] if none *)
  ff_graph_args : (string * Iv.t list) list;
  ff_accesses : ([ `Load | `Store ] * bounds) list;
  ff_dead_branches : int;  (** non-loop branches decided statically *)
  ff_stats : Fixpoint.stats;
}

type ctx = {
  prog : Ir.program;
  call_memo : (string * Iv.t list, Iv.t) Hashtbl.t;
  mutable visiting : string list;
}

let make_ctx prog = { prog; call_memo = Hashtbl.create 16; visiting = [] }

(* --- state transfer ------------------------------------------------ *)

let operand_itv st = function
  | Ir.O_const c -> eval_const c
  | Ir.O_var v -> st.vals.(v.Ir.v_id)

let operand_len st = function
  | Ir.O_const (Ir.C_bits body) ->
    (* bit literal: length = number of binary digits *)
    let n =
      String.fold_left
        (fun n c -> if c = '0' || c = '1' then n + 1 else n)
        0 body
    in
    Iv.of_int n
  | Ir.O_const _ -> Iv.top
  | Ir.O_var v -> st.lens.(v.Ir.v_id)

let bounds_verdict ~index ~len =
  let nonneg = match Iv.lower index with Some l -> l >= 0 | None -> false in
  match Iv.upper index, Iv.lower len with
  | Some hi, Some min_len when nonneg && hi < min_len -> Proven
  | _ -> (
    (* definitely out of bounds: every index is negative, or no index
       can be below any possible length *)
    match Iv.upper index, Iv.lower index, Iv.upper len with
    | Some hi, _, _ when hi < 0 -> Out_of_bounds
    | _, Some lo, Some max_len when lo >= max_len -> Out_of_bounds
    | _ -> Unknown)

let rec eval_rhs ctx st ~record (r : Ir.rhs) : Iv.t * Iv.t =
  let scalar v = v, Iv.top in
  match r with
  | Ir.R_op o -> operand_itv st o, operand_len st o
  | Ir.R_unop (op, a) -> scalar (eval_unop op (operand_itv st a))
  | Ir.R_binop (op, a, b) ->
    scalar (eval_binop op (operand_itv st a) (operand_itv st b))
  | Ir.R_alen a -> scalar (Iv.meet (operand_len st a) Iv.nonneg)
  | Ir.R_aload (a, i) ->
    record
      (Ev_access
         ( `Load,
           bounds_verdict ~index:(operand_itv st i) ~len:(operand_len st a) ));
    let elem =
      match Ir.operand_ty a with
      | Ir.Arr t -> of_ty ctx.prog t
      | _ -> Iv.top
    in
    scalar elem
  | Ir.R_call (key, args) ->
    let arg_itvs = List.map (operand_itv st) args in
    scalar (call_summary ctx key arg_itvs)
  | Ir.R_newarr (_, n) -> Iv.top, Iv.meet (operand_itv st n) Iv.nonneg
  | Ir.R_freeze a -> Iv.top, operand_len st a
  | Ir.R_newobj _ -> Iv.top, Iv.top
  | Ir.R_field (o, slot) ->
    let field_ty =
      match Ir.operand_ty o with
      | Ir.Obj cls -> (
        match Ir.String_map.find_opt cls ctx.prog.classes with
        | Some cm -> Option.map snd (List.nth_opt cm.cm_fields slot)
        | None -> None)
      | _ -> None
    in
    (match field_ty with
    | Some t -> of_ty ctx.prog t, len_of_ty t
    | None -> Iv.top, Iv.top)
  | Ir.R_map m ->
    (* elementwise: the result has the length of the mapped array *)
    let lens =
      List.filter_map
        (fun (o, mapped) -> if mapped then Some (operand_len st o) else None)
        m.map_args
    in
    Iv.top, List.fold_left Iv.join Iv.Bot lens
  | Ir.R_reduce r -> of_ty ctx.prog r.red_elem_ty, Iv.top
  | Ir.R_mkgraph (uid, ops) ->
    record (Ev_graph (uid, List.map (operand_itv st) ops));
    Iv.top, Iv.top

and exec ctx ~record (instrs : Ir.instr list) (st : state option) :
    state option =
  match st with
  | None -> None
  | Some s ->
    let s = { vals = Array.copy s.vals; lens = Array.copy s.lens } in
    List.iter
      (fun (i : Ir.instr) ->
        match i with
        | Ir.I_let (v, r) | Ir.I_set (v, r) ->
          let value, len = eval_rhs ctx s ~record r in
          s.vals.(v.Ir.v_id) <- value;
          s.lens.(v.Ir.v_id) <- len
        | Ir.I_astore (a, i, _) ->
          record
            (Ev_access
               ( `Store,
                 bounds_verdict ~index:(operand_itv s i)
                   ~len:(operand_len s a) ))
        | Ir.I_do r -> ignore (eval_rhs ctx s ~record r)
        | Ir.I_setfield _ | Ir.I_run_graph _ -> ()
        | Ir.I_if _ | Ir.I_while _ | Ir.I_return _ ->
          (* structured control flow was dissolved by Cfg.build *)
          assert false)
      instrs;
    Some s

(* --- branch refinement --------------------------------------------- *)

(* Registers with exactly one textual definition; branch refinement
   looks through them to recover the comparison behind a condition. *)
and collect_defs (fn : Ir.func) : (int, Ir.rhs option) Hashtbl.t =
  let defs = Hashtbl.create 16 in
  let def (v : Ir.var) r =
    match Hashtbl.find_opt defs v.Ir.v_id with
    | None -> Hashtbl.replace defs v.Ir.v_id (Some r)
    | Some _ -> Hashtbl.replace defs v.Ir.v_id None
  in
  let rec block b = List.iter instr b
  and instr = function
    | Ir.I_let (v, r) | Ir.I_set (v, r) -> def v r
    | Ir.I_if (_, a, b) ->
      block a;
      block b
    | Ir.I_while (c, _, body) ->
      block c;
      block body
    | Ir.I_astore _ | Ir.I_setfield _ | Ir.I_return _ | Ir.I_run_graph _
    | Ir.I_do _ ->
      ()
  in
  block fn.fn_body;
  defs

and below ~strict other =
  match Iv.upper other with
  | Some h -> Iv.Itv (None, Some (if strict then h - 1 else h))
  | None -> Iv.top

and above ~strict other =
  match Iv.lower other with
  | Some l -> Iv.Itv (Some (if strict then l + 1 else l), None)
  | None -> Iv.top

and constrain s truth (op : Ir.binop) x y =
  let ix = operand_itv s x and iy = operand_itv s y in
  let narrow o itv =
    match o with
    | Ir.O_var v -> s.vals.(v.Ir.v_id) <- Iv.meet s.vals.(v.Ir.v_id) itv
    | Ir.O_const _ -> ()
  in
  let apply kind =
    match kind with
    | `Lt ->
      narrow x (below ~strict:true iy);
      narrow y (above ~strict:true ix)
    | `Leq ->
      narrow x (below ~strict:false iy);
      narrow y (above ~strict:false ix)
    | `Gt ->
      narrow x (above ~strict:true iy);
      narrow y (below ~strict:true ix)
    | `Geq ->
      narrow x (above ~strict:false iy);
      narrow y (below ~strict:false ix)
    | `Eq ->
      narrow x iy;
      narrow y ix
    | `Noop -> ()
  in
  match op, truth with
  | Ir.Lt_i, true | Ir.Geq_i, false -> apply `Lt
  | Ir.Leq_i, true | Ir.Gt_i, false -> apply `Leq
  | Ir.Gt_i, true | Ir.Leq_i, false -> apply `Gt
  | Ir.Geq_i, true | Ir.Lt_i, false -> apply `Geq
  | Ir.Eq, true | Ir.Neq, false -> apply `Eq
  | _ -> apply `Noop

and refine ctx defs (g : Cfg.t) src dst (st : state option) : state option =
  ignore ctx;
  match st with
  | None -> None
  | Some s -> (
    match g.Cfg.nodes.(src).Cfg.term with
    | Cfg.T_branch (c, tn, en) when tn <> en && (dst = tn || dst = en) -> (
      let truth = dst = tn in
      match c with
      | Ir.O_const k -> (
        match Iv.const_of (eval_const k) with
        | Some n -> if (n <> 0) = truth then st else None
        | None -> st)
      | Ir.O_var v -> (
        let s = { vals = Array.copy s.vals; lens = Array.copy s.lens } in
        s.vals.(v.Ir.v_id) <-
          Iv.meet s.vals.(v.Ir.v_id) (if truth then Iv.of_int 1 else Iv.of_int 0);
        (match Hashtbl.find_opt defs v.Ir.v_id with
        | Some (Some (Ir.R_binop (op, x, y))) -> constrain s truth op x y
        | _ -> ());
        if Array.exists Iv.is_bot s.vals then None else Some s))
    | _ -> st)

(* --- per-function analysis ----------------------------------------- *)

and analyze_fn_args ctx (fn : Ir.func) ~(args : Iv.t list) : fn_facts =
  let g = Cfg.build fn.Ir.fn_body in
  let nslots = max 1 (Ir.var_slot_count fn) in
  let defs = collect_defs fn in
  let init =
    { vals = Array.make nslots Iv.top; lens = Array.make nslots Iv.top }
  in
  let rec seed params args =
    match params, args with
    | [], _ -> ()
    | (p : Ir.var) :: ps, [] ->
      init.vals.(p.Ir.v_id) <- of_ty ctx.prog p.Ir.v_ty;
      init.lens.(p.Ir.v_id) <- len_of_ty p.Ir.v_ty;
      seed ps []
    | (p : Ir.var) :: ps, a :: rest ->
      init.vals.(p.Ir.v_id) <- Iv.meet (of_ty ctx.prog p.Ir.v_ty) a;
      init.lens.(p.Ir.v_id) <- len_of_ty p.Ir.v_ty;
      seed ps rest
  in
  seed fn.Ir.fn_params args;
  let ignore_event _ = () in
  let facts, stats =
    Solver.solve
      {
        Solver.size = Cfg.size g;
        entries = [ g.Cfg.entry, Some init ];
        succs = Cfg.succs g;
        transfer =
          (fun n st -> exec ctx ~record:ignore_event g.Cfg.nodes.(n).Cfg.instrs st);
        edge = refine ctx defs g;
        widen_at = (fun n -> g.Cfg.loop_heads.(n));
      }
  in
  (* Stabilized: replay each reachable node once, recording facts. *)
  let graphs = ref [] and accesses = ref [] in
  let ret = ref Iv.Bot and dead = ref 0 in
  let record = function
    | Ev_graph (uid, ops) ->
      let merged =
        match List.assoc_opt uid !graphs with
        | None -> ops
        | Some prev -> (
          try List.map2 Iv.join prev ops with Invalid_argument _ -> ops)
      in
      graphs := (uid, merged) :: List.remove_assoc uid !graphs
    | Ev_access (kind, verdict) -> accesses := (kind, verdict) :: !accesses
  in
  Array.iteri
    (fun i st ->
      match st with
      | None -> ()
      | Some _ -> (
        let out = exec ctx ~record g.Cfg.nodes.(i).Cfg.instrs st in
        match out, g.Cfg.nodes.(i).Cfg.term with
        | Some s, Cfg.T_return (Some o) ->
          ret := Iv.join !ret (operand_itv s o)
        | Some s, Cfg.T_branch (c, tn, en) when tn <> en ->
          if
            (not g.Cfg.loop_branches.(i))
            && Iv.const_of (operand_itv s c) <> None
          then incr dead
        | _ -> ()))
    facts;
  {
    ff_ret = !ret;
    ff_graph_args = List.rev !graphs;
    ff_accesses = List.rev !accesses;
    ff_dead_branches = !dead;
    ff_stats = stats;
  }

(* --- interprocedural return summaries ------------------------------ *)

and call_summary ctx key (args : Iv.t list) : Iv.t =
  if Lime_ir.Intrinsics.is_intrinsic key then Iv.top
  else
    match Ir.find_func ctx.prog key with
    | None -> Iv.top
    | Some fn -> (
      let fallback = of_ty ctx.prog fn.Ir.fn_ret in
      if List.mem key ctx.visiting || List.length ctx.visiting > 24 then
        fallback
      else
        match Hashtbl.find_opt ctx.call_memo (key, args) with
        | Some r -> r
        | None ->
          ctx.visiting <- key :: ctx.visiting;
          let facts = analyze_fn_args ctx fn ~args in
          ctx.visiting <- List.tl ctx.visiting;
          let r =
            if Iv.is_bot facts.ff_ret then fallback
            else Iv.meet facts.ff_ret fallback
          in
          Hashtbl.replace ctx.call_memo (key, args) r;
          r)

(* --- public entry points ------------------------------------------- *)

(* Return interval of [key] given argument intervals — used by the
   FPGA backend to size output ports. *)
let return_interval (prog : Ir.program) key ~(args : Iv.t list) : Iv.t =
  call_summary (make_ctx prog) key args

let analyze_fn (prog : Ir.program) (fn : Ir.func) : fn_facts =
  let ctx = make_ctx prog in
  ctx.visiting <- [ fn.Ir.fn_key ];
  analyze_fn_args ctx fn
    ~args:(List.map (fun (p : Ir.var) -> of_ty prog p.Ir.v_ty) fn.Ir.fn_params)

type program_facts = {
  pf_fns : (string * fn_facts) list;  (** sorted by function key *)
  pf_graph_args : (string * Iv.t list) list;
      (** mkgraph operand intervals, joined over every reachable site *)
}

let analyze_program (prog : Ir.program) : program_facts =
  let ctx = make_ctx prog in
  let fns =
    Ir.String_map.fold
      (fun key (fn : Ir.func) acc ->
        ctx.visiting <- [ key ];
        let facts =
          analyze_fn_args ctx fn
            ~args:
              (List.map
                 (fun (p : Ir.var) -> of_ty prog p.Ir.v_ty)
                 fn.Ir.fn_params)
        in
        ctx.visiting <- [];
        (key, facts) :: acc)
      prog.funcs []
    |> List.rev
  in
  let graph_args =
    List.fold_left
      (fun acc (_, facts) ->
        List.fold_left
          (fun acc (uid, ops) ->
            match List.assoc_opt uid acc with
            | None -> (uid, ops) :: acc
            | Some prev ->
              let merged =
                try List.map2 Iv.join prev ops
                with Invalid_argument _ -> ops
              in
              (uid, merged) :: List.remove_assoc uid acc)
          acc facts.ff_graph_args)
      [] fns
  in
  { pf_fns = fns; pf_graph_args = List.rev graph_args }
