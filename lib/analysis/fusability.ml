(* Fusability lint for adjacent filter pairs.

   Cross-filter fusion (the ROADMAP open item) merges two adjacent
   pipeline stages into one artifact so a stream crosses the host <->
   device wire once instead of per stage. Fusing `f` then `g` into
   `g . f` is only legal when:

   - both filters are *pure* ([Effects] proves neither reads or
     writes state the other — or the host — could observe between
     the two applications);
   - neither carries aliased receiver state (an [F_instance] target
     closes over a mutable object; two stages sharing it must observe
     each other's writes in pipeline order);
   - both are relocatable (the user allowed the runtime to move them);
   - their rates are compatible: one firing of the pair consumes and
     produces matching element counts, i.e. the two-actor balance
     equations solve with equal repetitions (for today's 1:1 filters
     this is always `1 = 1`, but the check goes through [Rates.solve]
     so rate annotations keep it honest).

   This pass only *marks* the candidate set (LMA017/LMA018); the
   fusion transformation itself is a separate change. *)

module Ir = Lime_ir.Ir

type pair = {
  fz_graph : string;  (** template uid *)
  fz_fst : Ir.filter_info;
  fz_snd : Ir.filter_info;
  fz_verdict : (string, string) result;
      (** [Ok why] = fusible; [Error why] = not *)
}

let target_key = function
  | Ir.F_static key -> key
  | Ir.F_instance (cls, m) -> cls ^ "." ^ m

let rate_compatible (a : Ir.filter_info) (b : Ir.filter_info) :
    (unit, string) result =
  let one = Interval.of_int 1 in
  let g =
    {
      Rates.g_actors = [ a.Ir.uid; b.Ir.uid ];
      g_edges =
        [
          {
            Rates.e_src = a.Ir.uid;
            e_dst = b.Ir.uid;
            e_push = one;
            e_pop = one;
            e_init = 0;
          };
        ];
    }
  in
  match Rates.solve g with
  | Error u -> Error (Rates.unsolvable_reason u)
  | Ok sched -> (
    match
      ( List.assoc_opt a.Ir.uid sched.Rates.s_reps,
        List.assoc_opt b.Ir.uid sched.Rates.s_reps )
    with
    | Some ra, Some rb when ra = rb -> Ok ()
    | Some ra, Some rb ->
      Error
        (Printf.sprintf "repetition mismatch (%d firings vs %d)" ra rb)
    | _ -> Error "missing repetition entry")

let judge (effects : Effects.t) (a : Ir.filter_info) (b : Ir.filter_info) :
    (string, string) result =
  let stateful (f : Ir.filter_info) =
    match f.Ir.target with
    | Ir.F_instance _ ->
      Some
        (Printf.sprintf "%s holds aliased receiver state" (target_key f.Ir.target))
    | Ir.F_static _ -> None
  in
  let not_relocatable (f : Ir.filter_info) =
    if f.Ir.relocatable then None
    else
      Some
        (Printf.sprintf "%s is outside relocation brackets"
           (target_key f.Ir.target))
  in
  let impure (f : Ir.filter_info) =
    let key = target_key f.Ir.target in
    match Effects.summary effects key with
    | [] -> None
    | w :: _ -> Some (Printf.sprintf "%s %s" key (Effects.describe_witness w))
  in
  let first_failure checks =
    List.fold_left
      (fun acc check ->
        match acc with
        | Some _ -> acc
        | None -> ( match check a with Some _ as r -> r | None -> check b))
      None checks
  in
  match first_failure [ stateful; not_relocatable; impure ] with
  | Some why -> Error why
  | None -> (
    if a.Ir.output <> b.Ir.input then
      Error
        (Printf.sprintf "port type mismatch (%s vs %s)"
           (Ir.ty_to_string a.Ir.output)
           (Ir.ty_to_string b.Ir.input))
    else
      match rate_compatible a b with
      | Error why -> Error why
      | Ok () ->
        Ok "pure, relocatable, rate-compatible, no aliased state")

type run = {
  fr_graph : string;  (** template uid *)
  fr_members : Ir.filter_info list;  (** >= 2, in pipeline order *)
  fr_why : string;
}
(** A disjoint maximal fusible run: every adjacent pair inside the run
    judged [Ok], and the run cannot be extended on either side. *)

type runs_report = {
  rr_runs : run list;
  rr_blocked : pair list;
      (** adjacent pairs whose verdict is [Error] — the fusion
          frontier; reported so the diagnostics stay actionable *)
}

(* Greedy left-to-right maximal grouping. Because fusibility of a
   chain is exactly pairwise fusibility of its adjacent stages (the
   judge's conditions are all per-filter or per-adjacent-pair), the
   greedy grouping yields the unique partition into disjoint maximal
   runs — the fix for the overlapping-pairs ambiguity on chains of
   three or more stages. *)
let runs (prog : Ir.program) (effects : Effects.t) : runs_report =
  let runs_acc = ref [] and blocked_acc = ref [] in
  Ir.String_map.iter
    (fun _ (gt : Ir.graph_template) ->
      let filters =
        List.filter_map
          (function Ir.N_filter f -> Some f | _ -> None)
          gt.Ir.gt_nodes
      in
      let flush current why =
        match current with
        | _ :: _ :: _ ->
          runs_acc :=
            { fr_graph = gt.Ir.gt_uid;
              fr_members = List.rev current;
              fr_why = why }
            :: !runs_acc
        | _ -> ()
      in
      let rec walk current why = function
        | [] -> flush current why
        | f :: rest -> (
          match current with
          | [] -> walk [ f ] why rest
          | prev :: _ -> (
            match judge effects prev f with
            | Ok w -> walk (f :: current) w rest
            | Error w ->
              flush current why;
              blocked_acc :=
                {
                  fz_graph = gt.Ir.gt_uid;
                  fz_fst = prev;
                  fz_snd = f;
                  fz_verdict = Error w;
                }
                :: !blocked_acc;
              walk [ f ] "" rest))
      in
      walk [] "" filters)
    prog.Ir.templates;
  { rr_runs = List.rev !runs_acc; rr_blocked = List.rev !blocked_acc }

(* Every adjacent filter pair of every template, judged. *)
let analyze (prog : Ir.program) (effects : Effects.t) : pair list =
  Ir.String_map.fold
    (fun _ (gt : Ir.graph_template) acc ->
      let filters =
        List.filter_map
          (function Ir.N_filter f -> Some f | _ -> None)
          gt.Ir.gt_nodes
      in
      let rec pairs acc = function
        | a :: (b :: _ as rest) ->
          pairs
            ({
               fz_graph = gt.Ir.gt_uid;
               fz_fst = a;
               fz_snd = b;
               fz_verdict = judge effects a b;
             }
            :: acc)
            rest
        | _ -> acc
      in
      pairs acc filters)
    prog.Ir.templates []
  |> List.rev
