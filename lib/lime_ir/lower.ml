open Support
module T = Lime_types.Tast
module Ty = Lime_types.Types
module A = Lime_syntax.Ast

let err ?loc fmt = Diag.error ?loc ~phase:"lower" fmt

let rec ty_of loc (t : Ty.ty) : Ir.ty =
  match t with
  | Ty.Int -> Ir.I32
  | Ty.Float -> Ir.F32
  | Ty.Bool -> Ir.Bool
  | Ty.Bit -> Ir.Bit
  | Ty.Void -> Ir.Unit
  | Ty.Enum n -> Ir.Enum n
  | Ty.Array (t, _) -> Ir.Arr (ty_of loc t)
  | Ty.Instance c -> Ir.Obj c
  | Ty.Task _ -> err ~loc "a task value cannot be used here"

(* A symbolic task-graph fragment: the statically discovered node
   chain plus the dynamic operands its nodes consume, in order. *)
type fragment = { fr_nodes : Ir.tnode list; fr_operands : Ir.operand list }

type binding = B_var of Ir.var | B_fragment of fragment

type ctx = {
  tprog : T.program;
  mutable next_var : int;
  mutable scopes : (string * binding) list list;
  mutable code : Ir.instr list;  (* reversed *)
  mutable next_site : int;  (* per-function site counter *)
  fn_name : string;
  sites : site_registry;
}

and site_registry = {
  mutable templates : Ir.graph_template list;
  mutable next_template : int;
}

let fresh_var ctx name ty =
  let id = ctx.next_var in
  ctx.next_var <- id + 1;
  { Ir.v_id = id; v_name = name; v_ty = ty }

let emit ctx i = ctx.code <- i :: ctx.code

(* Run [f] collecting its emissions into a fresh block. *)
let in_block ctx f =
  let saved = ctx.code in
  ctx.code <- [];
  let result = f () in
  let block = List.rev ctx.code in
  ctx.code <- saved;
  block, result

let push_scope ctx = ctx.scopes <- [] :: ctx.scopes

let pop_scope ctx =
  match ctx.scopes with
  | _ :: rest -> ctx.scopes <- rest
  | [] -> assert false

let bind ctx name b =
  match ctx.scopes with
  | scope :: rest -> ctx.scopes <- ((name, b) :: scope) :: rest
  | [] -> assert false

let lookup ctx name =
  let rec search = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some b -> Some b
      | None -> search rest)
  in
  search ctx.scopes

let fresh_site ctx base =
  let n = ctx.next_site in
  ctx.next_site <- n + 1;
  Printf.sprintf "%s@%s/%d" base ctx.fn_name n

let method_key (k : T.method_key) = k.mclass ^ "." ^ k.mmethod

(* The result of lowering an expression: a plain operand, or a
   symbolic graph fragment. *)
type lowered = L_op of Ir.operand | L_frag of fragment

let as_operand loc = function
  | L_op o -> o
  | L_frag _ ->
    err ~loc
      "task graphs are compile-time shapes here; they can only be \
       connected, stored in local variables, relocated, or started"

(* Parameter and return types for a target method; [Math] intrinsics
   have no Tast body, so their all-float signature is synthesized. *)
let target_signature ctx loc (key : T.method_key) :
    (string * Ty.ty) list * Ty.ty =
  let k = method_key key in
  if Intrinsics.is_intrinsic k then begin
    let arity = List.assoc key.T.mmethod Intrinsics.signatures in
    List.init arity (fun i -> Printf.sprintf "x%d" i, Ty.Float), Ty.Float
  end
  else
    match T.find_method ctx.tprog key with
    | Some m -> m.mi_params, m.mi_ret
    | None -> err ~loc "internal: unknown method %s" (method_key key)

let mark_relocatable fragment =
  {
    fragment with
    fr_nodes =
      List.map
        (function
          | Ir.N_filter f -> Ir.N_filter { f with relocatable = true }
          | (Ir.N_source _ | Ir.N_sink _) as n -> n)
        fragment.fr_nodes;
  }

let rec lower_expr ctx (e : T.expr) : lowered =
  let loc = e.loc in
  let op o = L_op o in
  let let_rhs ty rhs =
    let v = fresh_var ctx "t" ty in
    emit ctx (Ir.I_let (v, rhs));
    L_op (Ir.O_var v)
  in
  match e.desc with
  | T.T_int_lit i -> op (Ir.O_const (Ir.C_i32 i))
  | T.T_float_lit f -> op (Ir.O_const (Ir.C_f32 (Wire.Value.f32 f)))
  | T.T_bool_lit b -> op (Ir.O_const (Ir.C_bool b))
  | T.T_bit_lit s -> op (Ir.O_const (Ir.C_bits s))
  | T.T_enum_lit ("bit", tag) -> op (Ir.O_const (Ir.C_bit (tag = 1)))
  | T.T_enum_lit (enum, tag) -> op (Ir.O_const (Ir.C_enum (enum, tag)))
  | T.T_var name -> (
    match lookup ctx name with
    | Some (B_var v) -> op (Ir.O_var v)
    | Some (B_fragment f) -> L_frag f
    | None -> err ~loc "internal: unbound variable '%s'" name)
  | T.T_this -> (
    match lookup ctx "this" with
    | Some (B_var v) -> op (Ir.O_var v)
    | _ -> err ~loc "internal: 'this' outside an instance method")
  | T.T_field_get (_, slot) -> (
    match lookup ctx "this" with
    | Some (B_var this) ->
      let_rhs (ty_of loc e.ty) (Ir.R_field (Ir.O_var this, slot))
    | _ -> err ~loc "internal: field read outside an instance method")
  | T.T_int_to_float a ->
    let a = lower_value ctx a in
    let_rhs Ir.F32 (Ir.R_unop (Ir.I2f, a))
  | T.T_unop (uop, a) -> (
    let ir_ty = ty_of loc e.ty in
    let a' = lower_value ctx a in
    match uop, a.ty with
    | A.Neg, Ty.Int -> let_rhs ir_ty (Ir.R_unop (Ir.Neg_i, a'))
    | A.Neg, Ty.Float -> let_rhs ir_ty (Ir.R_unop (Ir.Neg_f, a'))
    | A.Not, _ -> let_rhs ir_ty (Ir.R_unop (Ir.Not_b, a'))
    | A.Bit_not, Ty.Int -> let_rhs ir_ty (Ir.R_unop (Ir.Bnot_i, a'))
    | _ -> err ~loc "internal: unexpected unary operator typing")
  | T.T_binop (bop, a, b) ->
    let ta = a.ty in
    let a' = lower_value ctx a in
    let b' = lower_value ctx b in
    let ir_op = select_binop loc bop ta in
    let_rhs (ty_of loc e.ty) (Ir.R_binop (ir_op, a', b'))
  | T.T_cond (c, a, b) ->
    let c' = lower_value ctx c in
    let dest = fresh_var ctx "cond" (ty_of loc e.ty) in
    let then_block, () =
      in_block ctx (fun () ->
          let a' = lower_value ctx a in
          emit ctx (Ir.I_let (dest, Ir.R_op a')))
    in
    let else_block, () =
      in_block ctx (fun () ->
          let b' = lower_value ctx b in
          emit ctx (Ir.I_let (dest, Ir.R_op b')))
    in
    emit ctx (Ir.I_if (c', then_block, else_block));
    op (Ir.O_var dest)
  | T.T_index (a, i) ->
    let a' = lower_value ctx a in
    let i' = lower_value ctx i in
    let_rhs (ty_of loc e.ty) (Ir.R_aload (a', i'))
  | T.T_length a ->
    let a' = lower_value ctx a in
    let_rhs Ir.I32 (Ir.R_alen a')
  | T.T_call (key, args) ->
    let args = List.map (lower_value ctx) args in
    let_rhs (ty_of loc e.ty) (Ir.R_call (method_key key, args))
  | T.T_instance_call (cls, m, recv, args) ->
    let recv = lower_value ctx recv in
    let args = List.map (lower_value ctx) args in
    let_rhs (ty_of loc e.ty)
      (Ir.R_call (cls ^ "." ^ m, recv :: args))
  | T.T_new_array (elt, n) ->
    let n = lower_value ctx n in
    let_rhs (ty_of loc e.ty) (Ir.R_newarr (ty_of loc elt, n))
  | T.T_freeze a ->
    let a = lower_value ctx a in
    let_rhs (ty_of loc e.ty) (Ir.R_freeze a)
  | T.T_new_instance (cls, args) ->
    let args = List.map (lower_value ctx) args in
    let_rhs (Ir.Obj cls) (Ir.R_newobj (cls, args))
  | T.T_map (key, args) ->
    let params, ret = target_signature ctx loc key in
    let lowered =
      List.map2
        (fun (_, pty) (a : T.expr) ->
          let mapped = not (Ty.equal a.ty pty) in
          lower_value ctx a, mapped)
        params args
    in
    let uid = fresh_site ctx (method_key key ^ ".map") in
    let_rhs (ty_of loc e.ty)
      (Ir.R_map
         {
           map_uid = uid;
           map_fn = method_key key;
           map_args = lowered;
           map_elem_ty = ty_of loc ret;
           map_loc = loc;
         })
  | T.T_reduce (key, args) -> (
    match args with
    | [ arr ] ->
      let _, ret = target_signature ctx loc key in
      let arr = lower_value ctx arr in
      let uid = fresh_site ctx (method_key key ^ ".reduce") in
      let_rhs (ty_of loc e.ty)
        (Ir.R_reduce
           {
             red_uid = uid;
             red_fn = method_key key;
             red_arg = arr;
             red_elem_ty = ty_of loc ret;
             red_loc = loc;
           })
    | _ -> err ~loc "internal: reduce with multiple arguments")
  | T.T_task_static key -> (
    let params, ret = target_signature ctx loc key in
    match params with
    | [ (_, input) ] ->
      let uid = fresh_site ctx (method_key key) in
      L_frag
        {
          fr_nodes =
            [
              Ir.N_filter
                {
                  uid;
                  target = Ir.F_static (method_key key);
                  relocatable = false;
                  input = ty_of loc input;
                  output = ty_of loc ret;
                  floc = loc;
                };
            ];
          fr_operands = [];
        }
    | _ -> err ~loc "internal: static task with wrong arity")
  | T.T_task_instance (cls, mname, recv) -> (
    let params, ret =
      target_signature ctx loc { T.mclass = cls; mmethod = mname }
    in
    match params with
    | [ (_, input) ] ->
      let recv = lower_value ctx recv in
      let uid = fresh_site ctx (cls ^ "." ^ mname) in
      L_frag
        {
          fr_nodes =
            [
              Ir.N_filter
                {
                  uid;
                  target = Ir.F_instance (cls, mname);
                  relocatable = false;
                  input = ty_of loc input;
                  output = ty_of loc ret;
                  floc = loc;
                };
            ];
          fr_operands = [ recv ];
        }
    | _ -> err ~loc "internal: instance task with wrong arity")
  | T.T_relocate inner -> (
    match lower_expr ctx inner with
    | L_frag f -> L_frag (mark_relocatable f)
    | L_op _ -> err ~loc "internal: relocation brackets on a non-task")
  | T.T_connect (a, b) -> (
    let a = lower_expr ctx a in
    let b = lower_expr ctx b in
    match a, b with
    | L_frag fa, L_frag fb ->
      L_frag
        {
          fr_nodes = fa.fr_nodes @ fb.fr_nodes;
          fr_operands = fa.fr_operands @ fb.fr_operands;
        }
    | _ -> err ~loc "cannot determine the static shape of this task graph")
  | T.T_source (arr, rate) ->
    let elt =
      match arr.ty with
      | Ty.Array (elt, _) -> ty_of loc elt
      | _ -> err ~loc "internal: source on a non-array"
    in
    let arr = lower_value ctx arr in
    let rate = lower_value ctx rate in
    L_frag
      { fr_nodes = [ Ir.N_source { elt } ]; fr_operands = [ arr; rate ] }
  | T.T_sink (elt, dest) ->
    let dest = lower_value ctx dest in
    L_frag
      {
        fr_nodes = [ Ir.N_sink { elt = ty_of loc elt } ];
        fr_operands = [ dest ];
      }
  | T.T_graph_run (g, blocking) -> (
    match lower_expr ctx g with
    | L_frag f ->
      validate_chain loc f.fr_nodes;
      let uid = Printf.sprintf "graph@%d" ctx.sites.next_template in
      ctx.sites.next_template <- ctx.sites.next_template + 1;
      ctx.sites.templates <-
        { Ir.gt_uid = uid; gt_nodes = f.fr_nodes } :: ctx.sites.templates;
      let v = fresh_var ctx "graph" Ir.Graph in
      emit ctx (Ir.I_let (v, Ir.R_mkgraph (uid, f.fr_operands)));
      emit ctx (Ir.I_run_graph (Ir.O_var v, blocking));
      L_op (Ir.O_const Ir.C_unit)
    | L_op _ ->
      err ~loc
        "the shape of this task graph is not statically discoverable; \
         build it as a single connected expression")

and validate_chain loc nodes =
  (* A runnable graph is source, filters, sink. The typechecker
     guarantees port compatibility; this guards the shape itself. *)
  match nodes with
  | Ir.N_source _ :: rest -> (
    let rec walk = function
      | [ Ir.N_sink _ ] -> ()
      | Ir.N_filter _ :: rest -> walk rest
      | _ -> err ~loc "task graph is not a linear source-to-sink pipeline"
    in
    walk rest)
  | _ -> err ~loc "task graph must begin with a source"

and lower_value ctx (e : T.expr) : Ir.operand =
  as_operand e.loc (lower_expr ctx e)

and select_binop loc (op : A.binop) (operand_ty : Ty.ty) : Ir.binop =
  match op, operand_ty with
  | A.Add, Ty.Int -> Ir.Add_i
  | A.Add, Ty.Float -> Ir.Add_f
  | A.Sub, Ty.Int -> Ir.Sub_i
  | A.Sub, Ty.Float -> Ir.Sub_f
  | A.Mul, Ty.Int -> Ir.Mul_i
  | A.Mul, Ty.Float -> Ir.Mul_f
  | A.Div, Ty.Int -> Ir.Div_i
  | A.Div, Ty.Float -> Ir.Div_f
  | A.Rem, Ty.Int -> Ir.Rem_i
  | A.Rem, Ty.Float -> Ir.Rem_f
  | A.Shl, Ty.Int -> Ir.Shl_i
  | A.Shr, Ty.Int -> Ir.Shr_i
  | A.Band, Ty.Int -> Ir.And_i
  | A.Bor, Ty.Int -> Ir.Or_i
  | A.Bxor, Ty.Int -> Ir.Xor_i
  | A.Band, Ty.Bool -> Ir.And_b
  | A.Bor, Ty.Bool -> Ir.Or_b
  | A.Bxor, Ty.Bool -> Ir.Xor_b
  | A.Band, Ty.Bit -> Ir.And_bit
  | A.Bor, Ty.Bit -> Ir.Or_bit
  | A.Bxor, Ty.Bit -> Ir.Xor_bit
  | (A.And | A.Or), Ty.Bool -> (
    (* Short-circuit operators were checked to Bool; lower as strict
       boolean ops (operands are side-effect-free value computations
       in this subset). *)
    match op with A.And -> Ir.And_b | _ -> Ir.Or_b)
  | A.Eq, _ -> Ir.Eq
  | A.Neq, _ -> Ir.Neq
  | A.Lt, Ty.Int -> Ir.Lt_i
  | A.Leq, Ty.Int -> Ir.Leq_i
  | A.Gt, Ty.Int -> Ir.Gt_i
  | A.Geq, Ty.Int -> Ir.Geq_i
  | A.Lt, Ty.Float -> Ir.Lt_f
  | A.Leq, Ty.Float -> Ir.Leq_f
  | A.Gt, Ty.Float -> Ir.Gt_f
  | A.Geq, Ty.Float -> Ir.Geq_f
  | _, t ->
    err ~loc "internal: no IR operator for this combination on %s"
      (Ty.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt ctx (s : T.stmt) : unit =
  let loc = s.sloc in
  match s.sdesc with
  | T.TS_decl (name, Ty.Task _, init) -> (
    match lower_expr ctx init with
    | L_frag f -> bind ctx name (B_fragment f)
    | L_op _ -> err ~loc "internal: task variable bound to a non-task")
  | T.TS_decl (name, ty, init) ->
    let rhs =
      match lower_expr ctx init with
      | L_op o -> Ir.R_op o
      | L_frag _ -> err ~loc "a task graph cannot be stored in a %s variable"
                      (Ty.to_string ty)
    in
    let v = fresh_var ctx name (ty_of loc ty) in
    emit ctx (Ir.I_let (v, rhs));
    bind ctx name (B_var v)
  | T.TS_assign (T.TLv_var (name, _), e) -> (
    match lookup ctx name with
    | Some (B_var v) ->
      let o = lower_value ctx e in
      emit ctx (Ir.I_set (v, Ir.R_op o))
    | Some (B_fragment _) ->
      err ~loc "task-graph variables cannot be reassigned (static shape)"
    | None -> err ~loc "internal: unbound variable '%s'" name)
  | T.TS_assign (T.TLv_index (a, i), e) ->
    let a = lower_value ctx a in
    let i = lower_value ctx i in
    let o = lower_value ctx e in
    emit ctx (Ir.I_astore (a, i, o))
  | T.TS_assign (T.TLv_field (_, slot, _), e) -> (
    match lookup ctx "this" with
    | Some (B_var this) ->
      let o = lower_value ctx e in
      emit ctx (Ir.I_setfield (Ir.O_var this, slot, o))
    | _ -> err ~loc "internal: field write outside an instance method")
  | T.TS_if (c, then_, else_) ->
    let c = lower_value ctx c in
    let then_block, () = in_block ctx (fun () -> lower_block ctx then_) in
    let else_block, () = in_block ctx (fun () -> lower_block ctx else_) in
    emit ctx (Ir.I_if (c, then_block, else_block))
  | T.TS_while (c, body) ->
    let cond_block, cond_op =
      in_block ctx (fun () -> lower_value ctx c)
    in
    let body_block, () = in_block ctx (fun () -> lower_block ctx body) in
    emit ctx (Ir.I_while (cond_block, cond_op, body_block))
  | T.TS_for (init, cond, update, body) ->
    push_scope ctx;
    Option.iter (lower_stmt ctx) init;
    let cond_block, cond_op =
      in_block ctx (fun () ->
          match cond with
          | Some c -> lower_value ctx c
          | None -> Ir.O_const (Ir.C_bool true))
    in
    let body_block, () =
      in_block ctx (fun () ->
          lower_block ctx body;
          Option.iter (lower_stmt ctx) update)
    in
    emit ctx (Ir.I_while (cond_block, cond_op, body_block));
    pop_scope ctx
  | T.TS_return None -> emit ctx (Ir.I_return None)
  | T.TS_return (Some e) ->
    let o = lower_value ctx e in
    emit ctx (Ir.I_return (Some o))
  | T.TS_expr e -> (
    match lower_expr ctx e with
    | L_op (Ir.O_const Ir.C_unit) -> ()
    | L_op _ -> ()
    | L_frag _ ->
      err ~loc "a task graph expression has no effect unless started")
  | T.TS_block b ->
    push_scope ctx;
    lower_block ctx b;
    pop_scope ctx

and lower_block ctx (b : T.stmt list) : unit = List.iter (lower_stmt ctx) b

(* ------------------------------------------------------------------ *)
(* Functions, classes, programs                                       *)
(* ------------------------------------------------------------------ *)

let lower_method tprog sites ~owner ~receiver_ty (m : T.method_info) : Ir.func =
  let fn_name = method_key m.mi_key in
  let ctx =
    {
      tprog;
      next_var = 0;
      scopes = [ [] ];
      code = [];
      next_site = 0;
      fn_name;
      sites;
    }
  in
  let this_params =
    if m.mi_static then []
    else begin
      let this = fresh_var ctx "this" receiver_ty in
      bind ctx "this" (B_var this);
      [ this ]
    end
  in
  let params =
    List.map
      (fun (name, ty) ->
        let v = fresh_var ctx name (ty_of m.mi_loc ty) in
        bind ctx name (B_var v);
        v)
      m.mi_params
  in
  lower_block ctx m.mi_body;
  {
    Ir.fn_key = fn_name;
    fn_kind = (if m.mi_static then Ir.K_static else Ir.K_instance owner);
    fn_params = this_params @ params;
    fn_ret = ty_of m.mi_loc m.mi_ret;
    fn_body = List.rev ctx.code;
    fn_local = m.mi_local;
    fn_pure = m.mi_pure;
    fn_loc = m.mi_loc;
  }

let lower_ctor tprog sites ~cls (fields : T.field_info list)
    (c : T.ctor_info) : Ir.func =
  let fn_name = cls ^ ".<init>" in
  let ctx =
    {
      tprog;
      next_var = 0;
      scopes = [ [] ];
      code = [];
      next_site = 0;
      fn_name;
      sites;
    }
  in
  let this = fresh_var ctx "this" (Ir.Obj cls) in
  bind ctx "this" (B_var this);
  let params =
    List.map
      (fun (name, ty) ->
        let v = fresh_var ctx name (ty_of Srcloc.dummy ty) in
        bind ctx name (B_var v);
        v)
      c.ci_params
  in
  (* Field initializers run before the constructor body. *)
  List.iter
    (fun (f : T.field_info) ->
      match f.fi_init with
      | Some e ->
        let o = lower_value ctx e in
        emit ctx (Ir.I_setfield (Ir.O_var this, f.fi_slot, o))
      | None -> ())
    fields;
  lower_block ctx c.ci_body;
  {
    Ir.fn_key = fn_name;
    fn_kind = Ir.K_ctor cls;
    fn_params = this :: params;
    fn_ret = Ir.Unit;
    fn_body = List.rev ctx.code;
    fn_local = c.ci_local;
    fn_pure = false;
    fn_loc =
      (match c.ci_body with
      | s :: _ -> s.T.sloc
      | [] -> Srcloc.dummy);
  }

let lower (tprog : T.program) : Ir.program =
  let sites = { templates = []; next_template = 0 } in
  let funcs = ref Ir.String_map.empty in
  let add_func f = funcs := Ir.String_map.add f.Ir.fn_key f !funcs in
  T.String_map.iter
    (fun _ (e : T.enum_info) ->
      let receiver_ty =
        if e.ei_name = "bit" then Ir.Bit else Ir.Enum e.ei_name
      in
      List.iter
        (fun m -> add_func (lower_method tprog sites ~owner:e.ei_name ~receiver_ty m))
        e.ei_methods)
    tprog.enums;
  let classes = ref Ir.String_map.empty in
  T.String_map.iter
    (fun _ (k : T.class_info) ->
      List.iter
        (fun m ->
          add_func
            (lower_method tprog sites ~owner:k.ki_name
               ~receiver_ty:(Ir.Obj k.ki_name) m))
        k.ki_methods;
      let ctor_key =
        match k.ki_ctors with
        | [] -> None
        | c :: _ ->
          (* Our subset allows one constructor per class. *)
          add_func (lower_ctor tprog sites ~cls:k.ki_name k.ki_fields c);
          Some (k.ki_name ^ ".<init>")
      in
      classes :=
        Ir.String_map.add k.ki_name
          {
            Ir.cm_name = k.ki_name;
            cm_fields =
              List.map
                (fun (f : T.field_info) ->
                  f.fi_name, ty_of Srcloc.dummy f.fi_ty)
                k.ki_fields;
            cm_ctor = ctor_key;
          }
          !classes)
    tprog.classes;
  let enums =
    T.String_map.fold
      (fun name (e : T.enum_info) acc -> Ir.String_map.add name e.ei_cases acc)
      tprog.enums Ir.String_map.empty
  in
  let templates =
    List.fold_left
      (fun acc (gt : Ir.graph_template) -> Ir.String_map.add gt.gt_uid gt acc)
      Ir.String_map.empty sites.templates
  in
  { Ir.funcs = !funcs; classes = !classes; enums; templates }
