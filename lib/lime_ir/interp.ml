module V = Wire.Value

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

type v =
  | Prim of Wire.Value.t
  | Obj of obj
  | Graph_handle of int

and obj = { obj_class : string; obj_fields : v array }

type hooks = {
  on_map : Ir.map_site -> v list -> v option;
  on_reduce : Ir.reduce_site -> v -> v option;
  on_run_graph :
    (Ir.graph_template -> v list -> blocking:bool -> bool) option;
}

let no_hooks =
  { on_map = (fun _ _ -> None); on_reduce = (fun _ _ -> None); on_run_graph = None }

let rec default_value (ty : Ir.ty) : v =
  match ty with
  | Ir.I32 -> Prim (V.Int 0)
  | Ir.F32 -> Prim (V.Float 0.0)
  | Ir.Bool -> Prim (V.Bool false)
  | Ir.Bit -> Prim (V.Bit false)
  | Ir.Enum e -> Prim (V.Enum { enum = e; tag = 0 })
  | Ir.Arr elt -> (
    match default_value elt with
    | Prim _ -> Prim (V.Array [||])
    | _ -> Prim (V.Array [||]))
  | Ir.Obj c -> Obj { obj_class = c; obj_fields = [||] }
  | Ir.Graph -> Graph_handle (-1)
  | Ir.Unit -> Prim V.Unit

let prim_exn = function
  | Prim p -> p
  | Obj o -> fail "expected a value but found an instance of %s" o.obj_class
  | Graph_handle _ -> fail "expected a value but found a task graph"

let pp ppf = function
  | Prim p -> V.pp ppf p
  | Obj o -> Format.fprintf ppf "<%s instance>" o.obj_class
  | Graph_handle i -> Format.fprintf ppf "<graph %d>" i

(* --- array helpers: every Lime array representation ---------------- *)

let array_length (p : V.t) =
  match p with
  | V.Int_array a -> Array.length a
  | V.Float_array a -> Array.length a
  | V.Bool_array a -> Array.length a
  | V.Array a -> Array.length a
  | V.Bits b -> Bits.Bitvec.length b
  | v -> fail "'.length' on a non-array %s" (V.type_name v)

let check_bounds what n i =
  if i < 0 || i >= n then fail "%s index %d out of bounds (length %d)" what i n

let array_get (p : V.t) i : V.t =
  match p with
  | V.Int_array a ->
    check_bounds "array" (Array.length a) i;
    V.Int a.(i)
  | V.Float_array a ->
    check_bounds "array" (Array.length a) i;
    V.Float a.(i)
  | V.Bool_array a ->
    check_bounds "array" (Array.length a) i;
    V.Bool a.(i)
  | V.Array a ->
    check_bounds "array" (Array.length a) i;
    a.(i)
  | V.Bits b ->
    check_bounds "bit array" (Bits.Bitvec.length b) i;
    V.Bit (Bits.Bitvec.get b i)
  | v -> fail "indexing a non-array %s" (V.type_name v)

let array_set (p : V.t) i (x : V.t) : unit =
  match p, x with
  | V.Int_array a, V.Int x ->
    check_bounds "array" (Array.length a) i;
    a.(i) <- x
  | V.Float_array a, V.Float x ->
    check_bounds "array" (Array.length a) i;
    a.(i) <- x
  | V.Bool_array a, V.Bool x ->
    check_bounds "array" (Array.length a) i;
    a.(i) <- x
  | V.Array a, x ->
    check_bounds "array" (Array.length a) i;
    a.(i) <- x
  | V.Bits _, _ -> fail "value bit arrays are immutable"
  | a, _ -> fail "cannot store into %s" (V.type_name a)

(* Unchecked variants for accesses the relational analysis proved in
   bounds ([Analysis.Symbolic]): the Lime-level trap check is elided.
   OCaml's own array bounds check remains underneath as a safety net —
   a wrong proof surfaces as [Invalid_argument], not memory unsafety. *)

let array_get_unchecked (p : V.t) i : V.t =
  match p with
  | V.Int_array a -> V.Int a.(i)
  | V.Float_array a -> V.Float a.(i)
  | V.Bool_array a -> V.Bool a.(i)
  | V.Array a -> a.(i)
  | V.Bits b -> V.Bit (Bits.Bitvec.get b i)
  | v -> fail "indexing a non-array %s" (V.type_name v)

let array_set_unchecked (p : V.t) i (x : V.t) : unit =
  match p, x with
  | V.Int_array a, V.Int x -> a.(i) <- x
  | V.Float_array a, V.Float x -> a.(i) <- x
  | V.Bool_array a, V.Bool x -> a.(i) <- x
  | V.Array a, x -> a.(i) <- x
  | V.Bits _, _ -> fail "value bit arrays are immutable"
  | a, _ -> fail "cannot store into %s" (V.type_name a)

(* Mutable bit[] arrays are represented as [Array] of [Bit] values so
   they can be written in place; freezing packs them into [Bits]. *)
let new_array (elt : Ir.ty) n : V.t =
  if n < 0 then fail "negative array length %d" n;
  match elt with
  | Ir.I32 -> V.Int_array (Array.make n 0)
  | Ir.F32 -> V.Float_array (Array.make n 0.0)
  | Ir.Bool -> V.Bool_array (Array.make n false)
  | Ir.Bit -> V.Array (Array.make n (V.Bit false))
  | Ir.Enum e -> V.Array (Array.make n (V.Enum { enum = e; tag = 0 }))
  | Ir.Arr _ -> V.Array (Array.make n (V.Array [||]))
  | Ir.Obj _ | Ir.Graph | Ir.Unit -> fail "invalid array element type"

let freeze (p : V.t) : V.t =
  match p with
  | V.Int_array a -> V.Int_array (Array.copy a)
  | V.Float_array a -> V.Float_array (Array.copy a)
  | V.Bool_array a -> V.Bool_array (Array.copy a)
  | V.Array a when
      Array.length a > 0 && (match a.(0) with V.Bit _ -> true | _ -> false) ->
    V.Bits
      (Bits.Bitvec.of_bool_array
         (Array.map (function V.Bit b -> b | _ -> fail "mixed bit array") a))
  | V.Array [||] -> V.Bits (Bits.Bitvec.create 0 false)
  | V.Array a -> V.Array (Array.copy a)
  | V.Bits b -> V.Bits b
  | v -> fail "cannot freeze %s" (V.type_name v)

(* --- operators ------------------------------------------------------ *)

let eval_unop (op : Ir.unop) (a : V.t) : V.t =
  match op, a with
  | Ir.Neg_i, V.Int x -> V.Int (V.norm32 (-x))
  | Ir.Neg_f, V.Float x -> V.Float (V.f32 (-.x))
  | Ir.Not_b, V.Bool b -> V.Bool (not b)
  | Ir.Bnot_i, V.Int x -> V.Int (V.norm32 (lnot x))
  | Ir.I2f, V.Int x -> V.Float (V.f32 (float_of_int x))
  | _, v -> fail "bad unary operand %s" (V.type_name v)

let eval_binop (op : Ir.binop) (a : V.t) (b : V.t) : V.t =
  match op, a, b with
  | Ir.Add_i, V.Int x, V.Int y -> V.Int (V.add32 x y)
  | Ir.Sub_i, V.Int x, V.Int y -> V.Int (V.sub32 x y)
  | Ir.Mul_i, V.Int x, V.Int y -> V.Int (V.mul32 x y)
  | Ir.Div_i, V.Int x, V.Int y ->
    if y = 0 then fail "division by zero" else V.Int (V.div32 x y)
  | Ir.Rem_i, V.Int x, V.Int y ->
    if y = 0 then fail "division by zero" else V.Int (V.rem32 x y)
  | Ir.Add_f, V.Float x, V.Float y -> V.Float (V.add_f32 x y)
  | Ir.Sub_f, V.Float x, V.Float y -> V.Float (V.sub_f32 x y)
  | Ir.Mul_f, V.Float x, V.Float y -> V.Float (V.mul_f32 x y)
  | Ir.Div_f, V.Float x, V.Float y -> V.Float (V.div_f32 x y)
  | Ir.Rem_f, V.Float x, V.Float y -> V.Float (V.f32 (Float.rem x y))
  | Ir.Shl_i, V.Int x, V.Int y -> V.Int (V.shl32 x y)
  | Ir.Shr_i, V.Int x, V.Int y -> V.Int (V.shr32 x y)
  | Ir.And_i, V.Int x, V.Int y -> V.Int (x land y)
  | Ir.Or_i, V.Int x, V.Int y -> V.Int (x lor y)
  | Ir.Xor_i, V.Int x, V.Int y -> V.Int (V.norm32 (x lxor y))
  | Ir.And_b, V.Bool x, V.Bool y -> V.Bool (x && y)
  | Ir.Or_b, V.Bool x, V.Bool y -> V.Bool (x || y)
  | Ir.Xor_b, V.Bool x, V.Bool y -> V.Bool (x <> y)
  | Ir.And_bit, V.Bit x, V.Bit y -> V.Bit (x && y)
  | Ir.Or_bit, V.Bit x, V.Bit y -> V.Bit (x || y)
  | Ir.Xor_bit, V.Bit x, V.Bit y -> V.Bit (x <> y)
  | Ir.Eq, x, y -> V.Bool (V.equal x y)
  | Ir.Neq, x, y -> V.Bool (not (V.equal x y))
  | Ir.Lt_i, V.Int x, V.Int y -> V.Bool (x < y)
  | Ir.Leq_i, V.Int x, V.Int y -> V.Bool (x <= y)
  | Ir.Gt_i, V.Int x, V.Int y -> V.Bool (x > y)
  | Ir.Geq_i, V.Int x, V.Int y -> V.Bool (x >= y)
  | Ir.Lt_f, V.Float x, V.Float y -> V.Bool (x < y)
  | Ir.Leq_f, V.Float x, V.Float y -> V.Bool (x <= y)
  | Ir.Gt_f, V.Float x, V.Float y -> V.Bool (x > y)
  | Ir.Geq_f, V.Float x, V.Float y -> V.Bool (x >= y)
  | _, x, y ->
    fail "bad binary operands %s, %s" (V.type_name x) (V.type_name y)

let const_value (c : Ir.const) : V.t =
  match c with
  | Ir.C_unit -> V.Unit
  | Ir.C_bool b -> V.Bool b
  | Ir.C_i32 i -> V.Int i
  | Ir.C_f32 f -> V.Float f
  | Ir.C_bit b -> V.Bit b
  | Ir.C_enum (e, tag) -> V.Enum { enum = e; tag }
  | Ir.C_bits s -> V.Bits (Bits.Bitvec.of_literal s)

(* --- execution ------------------------------------------------------ *)

exception Return of v

type state = {
  prog : Ir.program;
  hooks : hooks;
  proven : Ir.instr -> bool;
      (** per-access bounds proofs, keyed by physical instruction *)
  mutable graph_counter : int;
  (* Graph handles are transient: created by R_mkgraph and consumed
     by the I_run_graph that lowering emits right after. *)
  mutable pending : (int * (Ir.graph_template * v list)) list;
}

type frame = { slots : v array }

let operand st frame (o : Ir.operand) : v =
  ignore st;
  match o with
  | Ir.O_const c -> Prim (const_value c)
  | Ir.O_var var -> frame.slots.(var.Ir.v_id)

let rec call_fn st (key : string) (args : v list) : v =
  if Intrinsics.is_intrinsic key then
    match Intrinsics.apply key (List.map prim_exn args) with
    | v -> Prim v
    | exception Intrinsics.Error m -> fail "%s" m
  else
  let fn =
    match Ir.find_func st.prog key with
    | Some f -> f
    | None -> fail "no function named %s" key
  in
  if List.length args <> List.length fn.fn_params then
    fail "%s expects %d argument(s), got %d" key (List.length fn.fn_params)
      (List.length args);
  let frame = { slots = Array.make (Ir.var_slot_count fn) (Prim V.Unit) } in
  List.iter2
    (fun (p : Ir.var) a -> frame.slots.(p.v_id) <- a)
    fn.fn_params args;
  match exec_block st frame fn.fn_body with
  | () -> (
    match fn.fn_ret with
    | Ir.Unit -> Prim V.Unit
    | _ -> fail "%s fell off the end without returning a value" key)
  | exception Return v -> v

and exec_block st frame (b : Ir.block) : unit =
  List.iter (exec_instr st frame) b

and exec_instr st frame (i : Ir.instr) : unit =
  match i with
  | Ir.I_let (v, Ir.R_aload (a, idx)) | Ir.I_set (v, Ir.R_aload (a, idx))
    when st.proven i -> (
    (* proven in bounds: skip the per-access trap check *)
    match prim_exn (operand st frame idx) with
    | V.Int n ->
      frame.slots.(v.Ir.v_id) <-
        Prim (array_get_unchecked (prim_exn (operand st frame a)) n)
    | v -> fail "array index must be an int, found %s" (V.type_name v))
  | Ir.I_let (v, rhs) | Ir.I_set (v, rhs) ->
    frame.slots.(v.Ir.v_id) <- eval_rhs st frame rhs
  | Ir.I_astore (a, idx, x) -> (
    let set = if st.proven i then array_set_unchecked else array_set in
    let a = prim_exn (operand st frame a) in
    match prim_exn (operand st frame idx) with
    | V.Int i -> set a i (prim_exn (operand st frame x))
    | v -> fail "array index must be an int, found %s" (V.type_name v))
  | Ir.I_setfield (o, slot, x) -> (
    match operand st frame o with
    | Obj obj -> obj.obj_fields.(slot) <- operand st frame x
    | v -> fail "field write on non-object %s" (Format.asprintf "%a" pp v))
  | Ir.I_if (c, then_, else_) -> (
    match prim_exn (operand st frame c) with
    | V.Bool true -> exec_block st frame then_
    | V.Bool false -> exec_block st frame else_
    | v -> fail "condition must be a boolean, found %s" (V.type_name v))
  | Ir.I_while (cond_block, cond_op, body) ->
    let rec loop () =
      exec_block st frame cond_block;
      match prim_exn (operand st frame cond_op) with
      | V.Bool true ->
        exec_block st frame body;
        loop ()
      | V.Bool false -> ()
      | v -> fail "loop condition must be a boolean, found %s" (V.type_name v)
    in
    loop ()
  | Ir.I_return None -> raise (Return (Prim V.Unit))
  | Ir.I_return (Some o) -> raise (Return (operand st frame o))
  | Ir.I_run_graph (g, blocking) -> (
    match operand st frame g with
    | Graph_handle h -> run_graph_handle st h ~blocking
    | v -> fail "run on a non-graph %s" (Format.asprintf "%a" pp v))
  | Ir.I_do rhs -> ignore (eval_rhs st frame rhs)

and eval_rhs st frame (rhs : Ir.rhs) : v =
  match rhs with
  | Ir.R_op o -> operand st frame o
  | Ir.R_unop (op, a) ->
    Prim (eval_unop op (prim_exn (operand st frame a)))
  | Ir.R_binop (op, a, b) ->
    Prim
      (eval_binop op
         (prim_exn (operand st frame a))
         (prim_exn (operand st frame b)))
  | Ir.R_alen a -> Prim (V.Int (array_length (prim_exn (operand st frame a))))
  | Ir.R_aload (a, i) -> (
    match prim_exn (operand st frame i) with
    | V.Int i -> Prim (array_get (prim_exn (operand st frame a)) i)
    | v -> fail "array index must be an int, found %s" (V.type_name v))
  | Ir.R_call (key, args) ->
    call_fn st key (List.map (operand st frame) args)
  | Ir.R_newarr (elt, n) -> (
    match prim_exn (operand st frame n) with
    | V.Int n -> Prim (new_array elt n)
    | v -> fail "array length must be an int, found %s" (V.type_name v))
  | Ir.R_freeze a -> Prim (freeze (prim_exn (operand st frame a)))
  | Ir.R_newobj (cls, args) -> (
    match Ir.String_map.find_opt cls st.prog.classes with
    | None -> fail "no class named %s" cls
    | Some meta ->
      let fields =
        Array.of_list (List.map (fun (_, ty) -> default_value ty) meta.cm_fields)
      in
      let obj = Obj { obj_class = cls; obj_fields = fields } in
      (match meta.cm_ctor with
      | Some ctor ->
        ignore (call_fn st ctor (obj :: List.map (operand st frame) args))
      | None -> ());
      obj)
  | Ir.R_field (o, slot) -> (
    match operand st frame o with
    | Obj obj -> obj.obj_fields.(slot)
    | v -> fail "field read on non-object %s" (Format.asprintf "%a" pp v))
  | Ir.R_map site -> (
    let args = List.map (fun (o, _) -> operand st frame o) site.map_args in
    match st.hooks.on_map site args with
    | Some result -> result
    | None -> eval_map st site args)
  | Ir.R_reduce site -> (
    let arg = operand st frame site.red_arg in
    match st.hooks.on_reduce site arg with
    | Some result -> result
    | None -> eval_reduce st site arg)
  | Ir.R_mkgraph (uid, operands) ->
    let template = Ir.template_exn st.prog uid in
    let ops = List.map (operand st frame) operands in
    st.graph_counter <- st.graph_counter + 1;
    st.pending <- (st.graph_counter, (template, ops)) :: st.pending;
    Graph_handle st.graph_counter

and run_graph_handle st h ~blocking =
  match List.assoc_opt h st.pending with
  | None -> fail "stale task-graph handle"
  | Some (template, ops) ->
    st.pending <- List.remove_assoc h st.pending;
    let handled =
      match st.hooks.on_run_graph with
      | Some hook -> hook template ops ~blocking
      | None -> false
    in
    if not handled then run_graph_seq st template ops

(* Map semantics: apply the function elementwise; broadcast scalar
   arguments are passed unchanged. *)
and eval_map st (site : Ir.map_site) (args : v list) : v =
  let flags = List.map snd site.map_args in
  let pairs = List.combine args flags in
  let mapped_lengths =
    List.filter_map
      (fun (a, mapped) ->
        if mapped then Some (array_length (prim_exn a)) else None)
      pairs
  in
  let n =
    match mapped_lengths with
    | [] -> fail "map needs at least one array argument"
    | n :: rest ->
      if List.exists (fun m -> m <> n) rest then
        fail "mapped arrays have different lengths";
      n
  in
  let result = new_array site.map_elem_ty n in
  for i = 0 to n - 1 do
    let call_args =
      List.map
        (fun (a, mapped) ->
          if mapped then Prim (array_get (prim_exn a) i) else a)
        pairs
    in
    let r = call_fn st site.map_fn call_args in
    array_set result i (prim_exn r)
  done;
  (* Maps produce value arrays. *)
  Prim (freeze result)

(* Reduce semantics: a left fold. (Timing models may simulate a tree,
   but the value semantics stay the deterministic left fold so every
   backend produces identical results.) *)
and eval_reduce st (site : Ir.reduce_site) (arg : v) : v =
  let p = prim_exn arg in
  let n = array_length p in
  if n = 0 then fail "reduce of an empty array";
  let acc = ref (Prim (array_get p 0)) in
  for i = 1 to n - 1 do
    acc := call_fn st site.red_fn [ !acc; Prim (array_get p i) ]
  done;
  !acc

(* Sequential in-process graph execution (no runtime, no devices). *)
and run_graph_seq st (template : Ir.graph_template) (ops : v list) : unit =
  let take_operands n ops =
    let rec go n acc = function
      | rest when n = 0 -> List.rev acc, rest
      | x :: rest -> go (n - 1) (x :: acc) rest
      | [] -> fail "graph template operand underflow"
    in
    go n [] ops
  in
  (* Pair each node with its dynamic operands. *)
  let nodes_with_ops, rest =
    List.fold_left
      (fun (acc, ops) node ->
        let k = Ir.tnode_operand_count node in
        let mine, ops = take_operands k ops in
        (node, mine) :: acc, ops)
      ([], ops) template.gt_nodes
  in
  if rest <> [] then fail "graph template operand overflow";
  let nodes_with_ops = List.rev nodes_with_ops in
  let source_array, filters, sink_array =
    match nodes_with_ops with
    | (Ir.N_source _, [ arr; _rate ]) :: rest -> (
      let rec split filters = function
        | [ (Ir.N_sink _, [ dest ]) ] -> List.rev filters, dest
        | (Ir.N_filter f, fops) :: rest -> split ((f, fops) :: filters) rest
        | _ -> fail "malformed graph template"
      in
      let filters, dest = split [] rest in
      prim_exn arr, filters, prim_exn dest)
    | _ -> fail "malformed graph template"
  in
  let n = array_length source_array in
  let apply (f : _) fops x =
    match f.Ir.target, fops with
    | Ir.F_static key, [] -> call_fn st key [ x ]
    | Ir.F_instance (cls, m), [ recv ] -> call_fn st (cls ^ "." ^ m) [ recv; x ]
    | _ -> fail "malformed filter operands"
  in
  for i = 0 to n - 1 do
    let x = ref (Prim (array_get source_array i)) in
    List.iter (fun (f, fops) -> x := apply f fops !x) filters;
    array_set sink_array i (prim_exn !x)
  done

let no_proofs : Ir.instr -> bool = fun _ -> false

let call ?(hooks = no_hooks) ?(proven = no_proofs) prog key args =
  call_fn { prog; hooks; proven; graph_counter = 0; pending = [] } key args

let run_graph_inline ?(hooks = no_hooks) prog template ops =
  run_graph_seq
    { prog; hooks; proven = no_proofs; graph_counter = 0; pending = [] }
    template ops
