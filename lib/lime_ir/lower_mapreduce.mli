(** Lowering map/reduce kernel sites into chunked scatter/worker/gather
    task graphs — the pass that puts the data-parallel `@` operators on
    the same placement/scheduling/fault substrate as every other task
    graph. See [docs/LOWERING.md]. *)

type kind = K_map of Ir.map_site | K_reduce of Ir.reduce_site

type lowered = {
  lw_uid : string;  (** the kernel site's UID — also the worker UID *)
  lw_kind : kind;
  lw_fn : string;  (** the per-element function key *)
  lw_elem_ty : Ir.ty;  (** result element type *)
  lw_worker : Ir.filter_info;
      (** the replicated worker filter; its UID equals the site UID so
          per-site artifacts (GPU kernels, native binaries) substitute
          for it directly *)
}

val lower_site : kind -> lowered

val lower_program : Ir.program -> lowered Ir.String_map.t
(** Every kernel site in the program, lowered, keyed by site UID. *)

val worker_filter : kind -> Ir.filter_info

val chunks_for : ?override:int -> ?assoc:bool -> n:int -> kind -> int
(** How many chunks to scatter an [n]-element stream into. Maps split
    into up to 4 chunks of at least 1024 elements; reduces default to
    1 chunk (chunked combining reassociates the fold), unless [assoc]
    says the algebraic analysis proved the combiner associative and
    commutative — then a reduce follows the map policy and the partial
    folds combine as a tree, bit-identical by the reassociation
    contract (docs/ANALYSIS.md). [override] forces a count, clamped to
    [\[1, max n 1\]]. *)

val split_bounds : n:int -> chunks:int -> (int * int) list
(** Balanced contiguous [(offset, length)] chunk bounds covering
    [0, n) exactly; lengths differ by at most one. *)

val kind_name : kind -> string
val describe : lowered -> string

val weighted_insns : Ir.program -> string -> int
(** Loop- and call-aware static instruction estimate for one
    per-element application of a kernel-site function (loops weighted
    by an assumed trip count, callees inlined with memoization). *)
