(** Cross-filter fusion: collapse a proven-fusible run of adjacent
    pipeline filters into one synthetic filter whose function composes
    the member bodies, so a fused segment crosses the host/device wire
    once instead of per stage. Legality is established by
    [Analysis.Fusability]; this pass is mechanical. See
    [docs/FUSION.md]. *)

val fused_prefix : string
(** ["fuse:"] — every fused uid/function key starts with this. *)

val fused_uid : Ir.filter_info list -> string
(** ["fuse:" ^ member uids joined with '+']. Doubles as the fused
    function key and the fused artifact uid, so pre-fusion segment
    names are recoverable from the fused name alone. *)

val is_fused_uid : string -> bool

val member_uids : string -> string list
(** Pre-fusion segment names behind a (possibly fused) uid; a plain
    uid is its own single member. *)

type fused = {
  fu_filter : Ir.filter_info;  (** synthetic filter standing for the run *)
  fu_members : Ir.filter_info list;  (** pre-fusion filters, pipeline order *)
  fu_inlined : bool;
      (** [true] = member bodies spliced (intermediates stay in
          registers); [false] = call-chain fallback *)
}

val fuse_run :
  Ir.program -> Ir.filter_info list -> (Ir.program * fused, string) result
(** Compose one run (>= 2 members, all [F_static], pipeline order)
    into a fused function registered in the returned program. *)

val fuse_program :
  Ir.program -> Ir.filter_info list list -> Ir.program * fused list
(** Fuse every run; runs the composer cannot handle are skipped. *)
