(* The Liquid Metal intermediate representation.

   "A program is lowered into an intermediate representation that
   describes the computation as independent but interconnected
   computational nodes" (paper section 1). Concretely:

   - ordinary code becomes {!func} values: structured, explicitly
     typed statement trees over virtual registers, easy for all three
     backends (bytecode, OpenCL, Verilog) to consume;
   - task graphs become {!graph_template} values: statically
     discovered linear pipelines whose nodes carry the unique task
     identifiers (UIDs) that label backend artifacts and that the
     generated host code hands to the runtime (sections 3 and 4.1);
   - map/reduce sites carry their own UIDs so the GPU backend can
     provide kernels for them. *)

type ty =
  | I32
  | F32
  | Bool
  | Bit
  | Enum of string
  | Arr of ty
  | Obj of string  (** class instance *)
  | Graph  (** a runtime task-graph handle *)
  | Unit

let rec ty_to_string = function
  | I32 -> "i32"
  | F32 -> "f32"
  | Bool -> "bool"
  | Bit -> "bit"
  | Enum n -> "enum:" ^ n
  | Arr t -> ty_to_string t ^ "[]"
  | Obj c -> "obj:" ^ c
  | Graph -> "graph"
  | Unit -> "unit"

let pp_ty ppf t = Format.fprintf ppf "%s" (ty_to_string t)

(* Shared device-type predicates: every device backend agrees on what
   a scalar is (fits a register / an OpenCL value) and what data is
   (scalars and arrays of scalars). Both [Gpu.Suitability] and
   [Rtl.Synth] consult these. *)
let scalar_ty = function
  | I32 | F32 | Bool | Bit | Enum _ -> true
  | Arr _ | Obj _ | Graph | Unit -> false

let data_ty = function
  | Arr t -> scalar_ty t
  | t -> scalar_ty t

type const =
  | C_unit
  | C_bool of bool
  | C_i32 of int
  | C_f32 of float
  | C_bit of bool
  | C_enum of string * int
  | C_bits of string  (** bit-literal body *)

type var = { v_id : int; v_name : string; v_ty : ty }

type operand = O_var of var | O_const of const

let operand_ty = function
  | O_var v -> v.v_ty
  | O_const c -> (
    match c with
    | C_unit -> Unit
    | C_bool _ -> Bool
    | C_i32 _ -> I32
    | C_f32 _ -> F32
    | C_bit _ -> Bit
    | C_enum (e, _) -> Enum e
    | C_bits _ -> Arr Bit)

(* Operators are monomorphic: the lowering selects the [_i] / [_f] /
   bit variant from the checked types, so backends never re-dispatch. *)
type unop =
  | Neg_i
  | Neg_f
  | Not_b
  | Bnot_i
  | I2f  (** int-to-float widening *)

type binop =
  | Add_i | Sub_i | Mul_i | Div_i | Rem_i
  | Add_f | Sub_f | Mul_f | Div_f | Rem_f
  | Shl_i | Shr_i
  | And_i | Or_i | Xor_i
  | And_b | Or_b | Xor_b
  | And_bit | Or_bit | Xor_bit
  | Eq | Neq  (** on any value type; operands have equal IR type *)
  | Lt_i | Leq_i | Gt_i | Geq_i
  | Lt_f | Leq_f | Gt_f | Geq_f

type rhs =
  | R_op of operand
  | R_unop of unop * operand
  | R_binop of binop * operand * operand
  | R_alen of operand
  | R_aload of operand * operand
  | R_call of string * operand list
      (** static call by function key; instance methods pass the
          receiver as the first argument *)
  | R_newarr of ty * operand  (** element type, length *)
  | R_freeze of operand
      (** defensive copy that seals a mutable array into a value *)
  | R_newobj of string * operand list  (** class, constructor args *)
  | R_field of operand * int
  | R_map of map_site
  | R_reduce of reduce_site
  | R_mkgraph of string * operand list
      (** template UID + the dynamic operands consumed by the
          template's nodes in order *)

and map_site = {
  map_uid : string;  (** artifact label for this map site *)
  map_fn : string;
  map_args : (operand * bool) list;  (** operand, [true] = mapped array *)
  map_elem_ty : ty;  (** result element type *)
  map_loc : Support.Srcloc.t;  (** source position of the map expression *)
}

and reduce_site = {
  red_uid : string;
  red_fn : string;
  red_arg : operand;
  red_elem_ty : ty;
  red_loc : Support.Srcloc.t;
}

type instr =
  | I_let of var * rhs
  | I_set of var * rhs
  | I_astore of operand * operand * operand  (** array, index, value *)
  | I_setfield of operand * int * operand
  | I_if of operand * block * block
  | I_while of block * operand * block
      (** condition instructions, condition operand, body *)
  | I_return of operand option
  | I_run_graph of operand * bool  (** graph handle, blocking *)
  | I_do of rhs  (** evaluate for effect *)

and block = instr list

type fn_kind = K_static | K_instance of string | K_ctor of string

type func = {
  fn_key : string;  (** e.g. ["Bitflip.flip"], ["Avg.<init>"] *)
  fn_kind : fn_kind;
  fn_params : var list;
  fn_ret : ty;
  fn_body : block;
  fn_local : bool;
  fn_pure : bool;
  fn_loc : Support.Srcloc.t;  (** declaration site, for diagnostics *)
}

(* --- Task-graph templates (static shape, paper section 3) --------- *)

(* A filter's target: a pure static method, or a local instance method
   on an isolated object (the object handle is a dynamic operand). *)
type filter_target =
  | F_static of string  (** function key *)
  | F_instance of string * string  (** class, method key suffix *)

type filter_info = {
  uid : string;  (** the unique task identifier in the manifest *)
  target : filter_target;
  relocatable : bool;  (** inside relocation brackets *)
  input : ty;
  output : ty;
  floc : Support.Srcloc.t;  (** source position of the task expression *)
}

type tnode =
  | N_source of { elt : ty }
      (** consumes two dynamic operands: the source array and rate *)
  | N_filter of filter_info
  | N_sink of { elt : ty }
      (** consumes one dynamic operand: the destination array *)

(* How many dynamic operands a node consumes from the [R_mkgraph]
   operand list. *)
let tnode_operand_count = function
  | N_source _ -> 2  (* array, rate *)
  | N_filter { target = F_static _; _ } -> 0
  | N_filter { target = F_instance _; _ } -> 1  (* receiver object *)
  | N_sink _ -> 1  (* destination array *)

type graph_template = {
  gt_uid : string;
  gt_nodes : tnode list;  (** linear pipeline, source first *)
}

(* --- Whole programs ----------------------------------------------- *)

module String_map = Map.Make (String)

type class_meta = {
  cm_name : string;
  cm_fields : (string * ty) list;  (** slot order *)
  cm_ctor : string option;  (** constructor function key *)
}

type program = {
  funcs : func String_map.t;
  classes : class_meta String_map.t;
  enums : string array String_map.t;  (** enum name -> cases *)
  templates : graph_template String_map.t;
}

let find_func p key = String_map.find_opt key p.funcs

let func_exn p key =
  match find_func p key with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.func_exn: no function %s" key)

let template_exn p uid =
  match String_map.find_opt uid p.templates with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ir.template_exn: no template %s" uid)

(* Every filter UID in the program, with its target and ports; the
   backends iterate this to decide what to compile. *)
let filter_sites p =
  String_map.fold
    (fun _ gt acc ->
      List.fold_left
        (fun acc node ->
          match node with
          | N_filter f -> (gt.gt_uid, f) :: acc
          | N_source _ | N_sink _ -> acc)
        acc gt.gt_nodes)
    p.templates []
    |> List.rev

(* Map/reduce sites found in function bodies. *)
let rec kernel_sites_block acc (b : block) =
  List.fold_left
    (fun acc i ->
      match i with
      | I_let (_, r) | I_set (_, r) | I_do r -> kernel_sites_rhs acc r
      | I_if (_, a, b) -> kernel_sites_block (kernel_sites_block acc a) b
      | I_while (c, _, body) ->
        kernel_sites_block (kernel_sites_block acc c) body
      | I_astore _ | I_setfield _ | I_return _ | I_run_graph _ -> acc)
    acc b

and kernel_sites_rhs acc = function
  | R_map m -> `Map m :: acc
  | R_reduce r -> `Reduce r :: acc
  | R_op _ | R_unop _ | R_binop _ | R_alen _ | R_aload _ | R_call _
  | R_newarr _ | R_freeze _ | R_newobj _ | R_field _ | R_mkgraph _ ->
    acc

let kernel_sites p =
  String_map.fold (fun _ f acc -> kernel_sites_block acc f.fn_body) p.funcs []
  |> List.rev

(* Number of virtual-register slots a function needs (ids are dense,
   assigned from 0 during lowering). *)
let var_slot_count (f : func) =
  let max_id = ref (-1) in
  let see_var v = if v.v_id > !max_id then max_id := v.v_id in
  let see_operand = function O_var v -> see_var v | O_const _ -> () in
  let see_rhs = function
    | R_op o | R_unop (_, o) | R_alen o | R_freeze o | R_field (o, _) -> see_operand o
    | R_binop (_, a, b) | R_aload (a, b) ->
      see_operand a;
      see_operand b
    | R_call (_, os) | R_newobj (_, os) | R_mkgraph (_, os) ->
      List.iter see_operand os
    | R_newarr (_, o) -> see_operand o
    | R_map m -> List.iter (fun (o, _) -> see_operand o) m.map_args
    | R_reduce r -> see_operand r.red_arg
  in
  let rec see_block b = List.iter see_instr b
  and see_instr = function
    | I_let (v, r) | I_set (v, r) ->
      see_var v;
      see_rhs r
    | I_astore (a, i, x) ->
      see_operand a;
      see_operand i;
      see_operand x
    | I_setfield (o, _, x) ->
      see_operand o;
      see_operand x
    | I_if (c, a, b) ->
      see_operand c;
      see_block a;
      see_block b
    | I_while (c, o, body) ->
      see_block c;
      see_operand o;
      see_block body
    | I_return (Some o) -> see_operand o
    | I_return None -> ()
    | I_run_graph (o, _) -> see_operand o
    | I_do r -> see_rhs r
  in
  List.iter see_var f.fn_params;
  see_block f.fn_body;
  !max_id + 1
