(* Lowering map/reduce sites onto the task-graph substrate.

   The paper's data-parallel operators (`@` map and `@@` reduce,
   section 2) historically executed through ad-hoc VM hooks: the GPU
   backend registered a kernel per site and the runtime dispatched the
   whole array to it in one launch — invisible to the rate algebra,
   the placement planner and the fault-tolerant retry path that cover
   task graphs.

   This pass rewrites each kernel site into the same dataflow shape
   every other workload uses (the SOMD scatter/gather decomposition):

       scatter --1--> worker_0 --1--> gather
          \----1----> ...      --1----/
           \---1----> worker_{K-1} -1-/

   - the *scatter* source splits the input array into K contiguous
     chunks and hands each worker a chunk descriptor;
   - K replicated *worker* filters apply the site's function to their
     chunk — each worker is an ordinary [Ir.filter_info] whose UID is
     the site UID, so the artifact store's per-site GPU kernels and
     native binaries substitute for it unchanged;
   - the *gather* sink reassembles chunk results in offset order (map)
     or combines the per-chunk partial folds (reduce).

   All rates are static (1 descriptor per firing on every edge), so
   [Analysis.Rates] solves every lowered graph with the all-ones
   repetition vector, and the planner can cost the worker chain like
   any other filter chain. *)

type kind = K_map of Ir.map_site | K_reduce of Ir.reduce_site

type lowered = {
  lw_uid : string;  (** the kernel site's UID — also the worker UID *)
  lw_kind : kind;
  lw_fn : string;  (** the per-element function key *)
  lw_elem_ty : Ir.ty;  (** result element type *)
  lw_worker : Ir.filter_info;
      (** the replicated worker filter: the unit of substitution the
          store, planner and calibrator all see *)
}

let uid_of = function
  | K_map m -> m.Ir.map_uid
  | K_reduce r -> r.Ir.red_uid

let fn_of = function K_map m -> m.Ir.map_fn | K_reduce r -> r.Ir.red_fn

let loc_of = function K_map m -> m.Ir.map_loc | K_reduce r -> r.Ir.red_loc

(* The worker's stream type: what one element of the scattered input
   looks like. For a map it is the first mapped argument's element
   type; for a reduce the reduced array's element type. *)
let input_elem_ty = function
  | K_map m -> (
    match
      List.find_opt (fun ((_ : Ir.operand), mapped) -> mapped) m.Ir.map_args
    with
    | Some (op, _) -> (
      match Ir.operand_ty op with Ir.Arr t -> t | t -> t)
    | None -> m.Ir.map_elem_ty)
  | K_reduce r -> (
    match Ir.operand_ty r.Ir.red_arg with Ir.Arr t -> t | t -> t)

let worker_filter (k : kind) : Ir.filter_info =
  {
    Ir.uid = uid_of k;
    (* The worker UID *is* the site UID: [Artifact.chain_uid [worker]]
       collapses to it, so substitution planning finds the per-site
       G_map/G_reduce kernels and native binaries the backends already
       register under that key. *)
    target = Ir.F_static (fn_of k);
    relocatable = true;
    input = Ir.Arr (input_elem_ty k);
    (* A worker consumes a chunk (an array slice), not a scalar — the
       [Arr] port type routes the placement calibrator to its analytic
       model rather than the scalar microbenchmark. *)
    output =
      (match k with
      | K_map m -> Ir.Arr m.Ir.map_elem_ty
      | K_reduce r -> r.Ir.red_elem_ty);
    floc = loc_of k;
  }

let lower_site (k : kind) : lowered =
  {
    lw_uid = uid_of k;
    lw_kind = k;
    lw_fn = fn_of k;
    lw_elem_ty =
      (match k with
      | K_map m -> m.Ir.map_elem_ty
      | K_reduce r -> r.Ir.red_elem_ty);
    lw_worker = worker_filter k;
  }

(* Every kernel site in the program, lowered, keyed by site UID. *)
let lower_program (p : Ir.program) : lowered Ir.String_map.t =
  List.fold_left
    (fun acc site ->
      let lw =
        match site with
        | `Map m -> lower_site (K_map m)
        | `Reduce r -> lower_site (K_reduce r)
      in
      Ir.String_map.add lw.lw_uid lw acc)
    Ir.String_map.empty (Ir.kernel_sites p)

(* --- chunking policy --------------------------------------------------- *)

(* Default split granularity. Chunks below [min_chunk] elements are
   not worth a separate worker firing (device launches amortize over
   at least this many elements); [max_chunks] bounds the replication
   factor — the simulated devices expose no real parallelism, so more
   chunks only buy scheduling granularity, fault isolation and earlier
   first results, never throughput. *)
let default_min_chunk = 1024
let default_max_chunks = 4

(* How many chunks to scatter an [n]-element stream into. Maps split
   once they are large enough to amortize; reduces default to a single
   chunk because the combine step reassociates the fold — bit-exact
   only for associative operators. When the algebraic analysis proves
   the combiner associative and commutative ([assoc]), a reduce earns
   the map policy: the reassociation contract (docs/ANALYSIS.md)
   guarantees the chunked tree combine is bit-identical to the
   left-fold. [override] (the [map_chunks]/[reduce_chunks] knobs)
   forces a count, clamped so no chunk is empty. *)
let chunks_for ?override ?(assoc = false) ~(n : int) (k : kind) : int =
  let clamp c = max 1 (min c (max n 1)) in
  match override with
  | Some c -> clamp c
  | None -> (
    match k with
    | K_reduce _ when not assoc -> 1
    | K_reduce _ | K_map _ ->
      clamp (min default_max_chunks (n / default_min_chunk)))

(* Balanced contiguous [(offset, length)] bounds: the first [n mod k]
   chunks take the extra element, lengths never differ by more than
   one, and the chunks cover [0, n) exactly — including the
   length-not-divisible-by-K case. *)
let split_bounds ~(n : int) ~(chunks : int) : (int * int) list =
  let k = max 1 (min chunks (max n 1)) in
  let base = n / k and extra = n mod k in
  let rec go i offset acc =
    if i >= k then List.rev acc
    else
      let len = base + if i < extra then 1 else 0 in
      go (i + 1) (offset + len) ((offset, len) :: acc)
  in
  go 0 0 []

let kind_name = function K_map _ -> "map" | K_reduce _ -> "reduce"

let describe (lw : lowered) =
  Printf.sprintf "%s %s: scatter -> %s -> gather" (kind_name lw.lw_kind)
    lw.lw_uid lw.lw_fn

(* --- weighted instruction estimate ------------------------------------- *)

(* A static per-element work estimate for a kernel-site function that,
   unlike a flat instruction count, sees through loops and calls: loop
   bodies are weighted by an assumed trip count and callee bodies are
   inlined (memoized, depth-capped against recursion). The placement
   calibrator uses this for worker chains, where the body frequently
   *is* a loop (matmul's dot product, nbody's force accumulation) and
   a flat count would underestimate the bytecode/native cost by the
   trip count, inverting device orderings. *)
let loop_weight = 32
let max_inline_depth = 8

let weighted_insns (p : Ir.program) (fn_key : string) : int =
  let memo = Hashtbl.create 16 in
  let rec cost_fn depth key =
    if depth > max_inline_depth then 16
    else
      match Hashtbl.find_opt memo key with
      | Some c -> c
      | None ->
        let c =
          match Ir.find_func p key with
          | None -> 16 (* intrinsic or unknown: one dispatch *)
          | Some f ->
            (* Guard the memo against recursion before walking. *)
            Hashtbl.replace memo key 16;
            cost_block depth f.Ir.fn_body
        in
        Hashtbl.replace memo key c;
        c
  and cost_rhs depth = function
    | Ir.R_call (key, ops) -> 1 + List.length ops + cost_fn (depth + 1) key
    | Ir.R_map m ->
      (* nested map: charge body times the loop weight *)
      (loop_weight * cost_fn (depth + 1) m.Ir.map_fn) + 4
    | Ir.R_reduce r -> (loop_weight * cost_fn (depth + 1) r.Ir.red_fn) + 4
    | Ir.R_op _ | Ir.R_unop _ | Ir.R_binop _ | Ir.R_alen _ | Ir.R_aload _
    | Ir.R_newarr _ | Ir.R_freeze _ | Ir.R_newobj _ | Ir.R_field _
    | Ir.R_mkgraph _ ->
      2
  and cost_instr depth = function
    | Ir.I_let (_, r) | Ir.I_set (_, r) | Ir.I_do r -> 2 + cost_rhs depth r
    | Ir.I_astore _ | Ir.I_setfield _ -> 3
    | Ir.I_return _ -> 1
    | Ir.I_run_graph _ -> 2
    | Ir.I_if (_, a, b) ->
      2 + max (cost_block depth a) (cost_block depth b)
    | Ir.I_while (cond, _, body) ->
      loop_weight * (cost_block depth cond + cost_block depth body + 2)
  and cost_block depth b =
    List.fold_left (fun acc i -> acc + cost_instr depth i) 0 b
  in
  max 1 (cost_fn 0 fn_key)
