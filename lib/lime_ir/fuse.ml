(* Cross-filter fusion: collapse a maximal fusible run of adjacent
   pipeline filters into one synthetic filter whose function composes
   the member bodies.

   The legality proof lives in [Analysis.Fusability] (pure,
   relocatable, rate-compatible, no aliased receiver state); this pass
   is purely mechanical and assumes the caller only hands it proven
   runs. Composition prefers *tail-return inlining* — each member's
   body is spliced in with its parameter substituted by the previous
   member's result, so intermediate values stay in virtual registers
   (and hence in device registers after codegen, never crossing the
   wire). Bodies the inliner cannot prove safe to splice (early
   returns, void returns, writes to the parameter) fall back to a
   call chain [let t1 = f1 x; let t2 = f2 t1; ...], which is always
   semantically correct but opaque to the RTL synthesizer.

   The fused function key doubles as the fused artifact uid:
   ["fuse:" ^ member uids joined with '+'], so any consumer can
   recover the pre-fusion segment names from the fused name alone
   (fault-injection specs, unfuse-on-fault, trace attribution). *)

let fused_prefix = "fuse:"

let fused_uid (members : Ir.filter_info list) =
  fused_prefix ^ String.concat "+" (List.map (fun f -> f.Ir.uid) members)

let is_fused_uid uid =
  String.length uid > String.length fused_prefix
  && String.sub uid 0 (String.length fused_prefix) = fused_prefix

(* Pre-fusion segment names behind a (possibly fused) uid; a plain uid
   is its own single member. *)
let member_uids uid =
  if is_fused_uid uid then
    String.split_on_char '+'
      (String.sub uid
         (String.length fused_prefix)
         (String.length uid - String.length fused_prefix))
  else [ uid ]

type fused = {
  fu_filter : Ir.filter_info;  (** synthetic filter standing for the run *)
  fu_members : Ir.filter_info list;  (** pre-fusion filters, pipeline order *)
  fu_inlined : bool;
      (** [true] = member bodies spliced (register intermediates);
          [false] = call-chain fallback *)
}

(* --- tail-return inlining ------------------------------------------ *)

exception Not_inlinable of string

type st = { mutable next : int }

let fresh st name ty =
  let v = { Ir.v_id = st.next; v_name = name; v_ty = ty } in
  st.next <- st.next + 1;
  v

let map_operand env = function
  | Ir.O_const _ as o -> o
  | Ir.O_var v -> (
    match Hashtbl.find_opt env v.Ir.v_id with
    | Some o -> o
    | None -> raise (Not_inlinable "use of unbound variable"))

let bind env st (v : Ir.var) =
  match Hashtbl.find_opt env v.Ir.v_id with
  | Some (Ir.O_var v') when v'.Ir.v_ty = v.Ir.v_ty -> v'
  | _ ->
    let v' = fresh st v.Ir.v_name v.Ir.v_ty in
    Hashtbl.replace env v.Ir.v_id (Ir.O_var v');
    v'

let map_rhs env = function
  | Ir.R_op o -> Ir.R_op (map_operand env o)
  | Ir.R_unop (u, o) -> Ir.R_unop (u, map_operand env o)
  | Ir.R_binop (b, x, y) -> Ir.R_binop (b, map_operand env x, map_operand env y)
  | Ir.R_alen o -> Ir.R_alen (map_operand env o)
  | Ir.R_aload (a, i) -> Ir.R_aload (map_operand env a, map_operand env i)
  | Ir.R_call (k, os) -> Ir.R_call (k, List.map (map_operand env) os)
  | Ir.R_newarr (t, o) -> Ir.R_newarr (t, map_operand env o)
  | Ir.R_freeze o -> Ir.R_freeze (map_operand env o)
  | Ir.R_newobj (c, os) -> Ir.R_newobj (c, List.map (map_operand env) os)
  | Ir.R_field (o, i) -> Ir.R_field (map_operand env o, i)
  | Ir.R_map _ | Ir.R_reduce _ | Ir.R_mkgraph _ ->
    (* a filter body nesting a kernel site or graph construction is
       never fusible in practice (it would be impure); refuse rather
       than renumber site uids *)
    raise (Not_inlinable "kernel site in filter body")

(* Splice a member body, rewriting every tail [I_return (Some e)] via
   [emit]; any return outside tail position aborts the splice. *)
let rec rw_block env st ~tail ~emit block =
  let n = List.length block in
  List.concat
    (List.mapi
       (fun i ins -> rw_instr env st ~tail:(tail && i = n - 1) ~emit ins)
       block)

and rw_instr env st ~tail ~emit = function
  | Ir.I_return (Some o) ->
    if not tail then raise (Not_inlinable "early return");
    emit (map_operand env o)
  | Ir.I_return None -> raise (Not_inlinable "void return")
  | Ir.I_let (v, r) ->
    let r' = map_rhs env r in
    [ Ir.I_let (bind env st v, r') ]
  | Ir.I_set (v, r) -> (
    let r' = map_rhs env r in
    match Hashtbl.find_opt env v.Ir.v_id with
    | Some (Ir.O_var v') -> [ Ir.I_set (v', r') ]
    | Some (Ir.O_const _) -> raise (Not_inlinable "write to fused parameter")
    | None -> [ Ir.I_set (bind env st v, r') ])
  | Ir.I_astore (a, i, x) ->
    [ Ir.I_astore (map_operand env a, map_operand env i, map_operand env x) ]
  | Ir.I_setfield (o, i, x) ->
    [ Ir.I_setfield (map_operand env o, i, map_operand env x) ]
  | Ir.I_if (c, a, b) ->
    [
      Ir.I_if
        ( map_operand env c,
          rw_block env st ~tail ~emit a,
          rw_block env st ~tail ~emit b );
    ]
  | Ir.I_while (c, o, body) ->
    [
      Ir.I_while
        ( rw_block env st ~tail:false ~emit c,
          map_operand env o,
          rw_block env st ~tail:false ~emit body );
    ]
  | Ir.I_run_graph _ -> raise (Not_inlinable "graph execution in filter body")
  | Ir.I_do r -> [ Ir.I_do (map_rhs env r) ]

let rec always_returns (block : Ir.block) =
  match List.rev block with
  | Ir.I_return (Some _) :: _ -> true
  | Ir.I_if (_, a, b) :: _ -> always_returns a && always_returns b
  | _ -> false

let default_const = function
  | Ir.I32 -> Some (Ir.C_i32 0)
  | Ir.F32 -> Some (Ir.C_f32 0.0)
  | Ir.Bool -> Some (Ir.C_bool false)
  | Ir.Bit -> Some (Ir.C_bit false)
  | Ir.Enum _ | Ir.Arr _ | Ir.Obj _ | Ir.Graph | Ir.Unit -> None

let rec contains_set_to p (block : Ir.block) =
  List.exists
    (fun i ->
      match i with
      | Ir.I_set (v, _) -> v.Ir.v_id = p.Ir.v_id
      | Ir.I_if (_, a, b) -> contains_set_to p a || contains_set_to p b
      | Ir.I_while (c, _, body) ->
        contains_set_to p c || contains_set_to p body
      | _ -> false)
    block

(* Count the returns in a body (tail or not). *)
let rec return_count (block : Ir.block) =
  List.fold_left
    (fun acc i ->
      match i with
      | Ir.I_return _ -> acc + 1
      | Ir.I_if (_, a, b) -> acc + return_count a + return_count b
      | Ir.I_while (c, _, body) -> acc + return_count c + return_count body
      | _ -> acc)
    0 block

(* Splice one member: returns the rewritten instructions plus the
   operand carrying the member's result. *)
let inline_member st prog key (cur : Ir.operand) =
  let fn = Ir.func_exn prog key in
  (match fn.Ir.fn_params with
  | [ _ ] -> ()
  | _ -> raise (Not_inlinable "filter function is not unary"));
  let param = List.hd fn.Ir.fn_params in
  if contains_set_to param fn.Ir.fn_body then
    raise (Not_inlinable "write to fused parameter");
  let env = Hashtbl.create 16 in
  Hashtbl.replace env param.Ir.v_id cur;
  if return_count fn.Ir.fn_body = 1 && always_returns fn.Ir.fn_body then (
    (* straight-line tail return: thread the result operand directly,
       introducing no extra register *)
    let result = ref None in
    let body =
      rw_block env st ~tail:true
        ~emit:(fun o ->
          result := Some o;
          [])
        fn.Ir.fn_body
    in
    match !result with
    | Some o -> (body, o)
    | None -> raise (Not_inlinable "no tail return"))
  else if always_returns fn.Ir.fn_body then (
    match default_const fn.Ir.fn_ret with
    | None -> raise (Not_inlinable "non-scalar return type")
    | Some c ->
      let r = fresh st "fuse_r" fn.Ir.fn_ret in
      let body =
        rw_block env st ~tail:true
          ~emit:(fun o -> [ Ir.I_set (r, Ir.R_op o) ])
          fn.Ir.fn_body
      in
      (Ir.I_let (r, Ir.R_op (Ir.O_const c)) :: body, Ir.O_var r))
  else raise (Not_inlinable "control flow may fall off the end")

(* --- composition --------------------------------------------------- *)

let static_keys members =
  List.map
    (fun (f : Ir.filter_info) ->
      match f.Ir.target with
      | Ir.F_static k -> Ok k
      | Ir.F_instance (c, m) -> Error (c ^ "." ^ m ^ " holds receiver state"))
    members

let compose prog (members : Ir.filter_info list) :
    (Ir.func * bool, string) result =
  match
    List.find_opt (function Error _ -> true | Ok _ -> false)
      (static_keys members)
  with
  | Some (Error why) -> Error why
  | _ -> (
    let keys =
      List.map
        (fun (f : Ir.filter_info) ->
          match f.Ir.target with Ir.F_static k -> k | _ -> assert false)
        members
    in
    match List.find_opt (fun k -> Ir.find_func prog k = None) keys with
    | Some k -> Error (Printf.sprintf "no function %s" k)
    | None ->
      let first = List.hd members in
      let last = List.nth members (List.length members - 1) in
      let param = { Ir.v_id = 0; v_name = "x"; v_ty = first.Ir.input } in
      let key = fused_uid members in
      let mk body ~inlined =
        ( {
            Ir.fn_key = key;
            fn_kind = Ir.K_static;
            fn_params = [ param ];
            fn_ret = last.Ir.output;
            fn_body = body;
            fn_local = true;
            fn_pure = true;
            fn_loc = first.Ir.floc;
          },
          inlined )
      in
      let call_chain () =
        let st = { next = 1 } in
        let rec chain cur acc = function
          | [] -> List.rev (Ir.I_return (Some cur) :: acc)
          | k :: rest ->
            let t =
              fresh st "fuse_t" (Ir.func_exn prog k).Ir.fn_ret
            in
            chain (Ir.O_var t)
              (Ir.I_let (t, Ir.R_call (k, [ cur ])) :: acc)
              rest
        in
        mk (chain (Ir.O_var param) [] keys) ~inlined:false
      in
      let fused =
        try
          let st = { next = 1 } in
          let body, result =
            List.fold_left
              (fun (acc, cur) k ->
                let instrs, out = inline_member st prog k cur in
                (acc @ instrs, out))
              ([], Ir.O_var param)
              keys
          in
          mk (body @ [ Ir.I_return (Some result) ]) ~inlined:true
        with Not_inlinable _ -> call_chain ()
      in
      Ok fused)

(* Fuse one proven run into the program: registers the composed
   function under the fused uid and returns the synthetic filter. *)
let fuse_run prog (members : Ir.filter_info list) :
    (Ir.program * fused, string) result =
  if List.length members < 2 then Error "run has fewer than two members"
  else
    match compose prog members with
    | Error _ as e -> e
    | Ok (fn, inlined) ->
      let first = List.hd members in
      let last = List.nth members (List.length members - 1) in
      let filter =
        {
          Ir.uid = fn.Ir.fn_key;
          target = Ir.F_static fn.Ir.fn_key;
          relocatable = true;
          input = first.Ir.input;
          output = last.Ir.output;
          floc = first.Ir.floc;
        }
      in
      let prog' =
        { prog with Ir.funcs = Ir.String_map.add fn.Ir.fn_key fn prog.Ir.funcs }
      in
      Ok (prog', { fu_filter = filter; fu_members = members; fu_inlined = inlined })

(* Fuse every run the analysis proved; runs the composer cannot handle
   are skipped (they simply keep their per-stage artifacts). *)
let fuse_program prog (runs : Ir.filter_info list list) :
    Ir.program * fused list =
  List.fold_left
    (fun (prog, acc) members ->
      match fuse_run prog members with
      | Ok (prog', f) -> (prog', f :: acc)
      | Error _ -> (prog, acc))
    (prog, []) runs
  |> fun (p, fs) -> (p, List.rev fs)
