(** Reference interpreter for the IR.

    This is the semantic oracle: the bytecode VM, the GPU simulator and
    the RTL netlists are all tested against it. It also gives host
    methods a direct execution path in unit tests, without the runtime.

    Map/reduce sites and task graphs execute inline by default; the
    Liquid Metal runtime overrides them through {!hooks} to perform
    artifact substitution and co-execution. *)

exception Runtime_error of string

(** Interpreter values: Lime wire values, plus class instances and
    task-graph handles (which never cross a device boundary). *)
type v =
  | Prim of Wire.Value.t
  | Obj of obj
  | Graph_handle of int

and obj = { obj_class : string; obj_fields : v array }

type hooks = {
  on_map : Ir.map_site -> v list -> v option;
      (** return [Some result] to intercept a map site *)
  on_reduce : Ir.reduce_site -> v -> v option;
  on_run_graph :
    (Ir.graph_template -> v list -> blocking:bool -> bool) option;
      (** full control over graph execution; return [true] if handled *)
}

val no_hooks : hooks

val default_value : Ir.ty -> v
(** Zero / false / empty value used for uninitialized slots. *)

val prim_exn : v -> Wire.Value.t
(** @raise Runtime_error if the value is an object or graph handle. *)

val call :
  ?hooks:hooks ->
  ?proven:(Ir.instr -> bool) ->
  Ir.program ->
  string ->
  v list ->
  v
(** [call prog "Class.method" args] runs a function to completion.
    [proven] marks array accesses (by physical instruction identity)
    whose bounds were statically proven; those skip the per-access
    trap check (see [Analysis.Symbolic]).
    @raise Runtime_error on dynamic errors (bad index, missing
    function, sink overflow, division by zero...). *)

val run_graph_inline :
  ?hooks:hooks -> Ir.program -> Ir.graph_template -> v list -> unit
(** The default sequential graph execution: pull every element from
    the source, apply each filter in order, store into the sink. *)

val pp : Format.formatter -> v -> unit

(** {2 Primitive semantics}

    Shared with the bytecode VM (and usable by other backends) so that
    every execution engine agrees bit-for-bit on operator, array and
    constant semantics. All raise {!Runtime_error} on misuse. *)

val eval_unop : Ir.unop -> Wire.Value.t -> Wire.Value.t
val eval_binop : Ir.binop -> Wire.Value.t -> Wire.Value.t -> Wire.Value.t
val const_value : Ir.const -> Wire.Value.t
val array_length : Wire.Value.t -> int
val array_get : Wire.Value.t -> int -> Wire.Value.t
val array_set : Wire.Value.t -> int -> Wire.Value.t -> unit

val array_get_unchecked : Wire.Value.t -> int -> Wire.Value.t
(** [array_get] without the Lime-level bounds trap, for accesses a
    static analysis proved in bounds. The OCaml runtime check remains
    as a safety net. *)

val array_set_unchecked : Wire.Value.t -> int -> Wire.Value.t -> unit
val new_array : Ir.ty -> int -> Wire.Value.t
val freeze : Wire.Value.t -> Wire.Value.t
