(** The benchmark workload suite.

    Each workload bundles a Lime program, an entry point, a
    deterministic input generator and (where practical) an OCaml
    reference implementation used to validate results. The GPU-class
    workloads mirror the data-parallel benchmarks behind the paper's
    12x-431x claim (saxpy, matrix multiply, 2D convolution, n-body,
    mandelbrot, dot product); the FPGA-class workloads exercise the
    streaming pipeline path of Figures 1 and 4 (bitflip, a DSP-style
    scale/offset/clamp chain, a stateful prefix-sum).

    Transcendentals come from the builtin [Math] intrinsics, which the
    GPU, native and bytecode paths all support (the FPGA backend
    excludes them: no FP IP cores in its work-in-progress feature
    set); n-body uses a softened [1/d^2] kernel to keep its inner loop
    intrinsic-free and FPGA-comparable. *)

module Rng : sig
  (** Deterministic input generation (xorshift). *)
  type t

  val create : ?seed:int64 -> unit -> t
  val int : t -> int -> int
  val float : t -> float
  val float_range : t -> float -> float -> float
  val float_array : t -> int -> lo:float -> hi:float -> float array
  val int_array : t -> int -> bound:int -> int array
  val bool_array : t -> int -> bool array
end

type category =
  | Gpu_map  (** data-parallel map/reduce, the GPU story *)
  | Pipeline  (** task graphs eligible for GPU or FPGA substitution *)
  | Fpga_stream  (** streaming pipelines aimed at the FPGA backend *)

type t = {
  name : string;
  description : string;
  category : category;
  source : string;  (** Lime source of the whole program *)
  entry : string;  (** host method to invoke, e.g. ["MatMul.run"] *)
  args : size:int -> Liquid_metal.Lm.I.v list;
      (** deterministic inputs for a problem size *)
  default_size : int;
  validate :
    (size:int -> Liquid_metal.Lm.I.v -> (unit, string) result) option;
      (** OCaml reference check of the result, when practical *)
}

val all : t list
val find : string -> t
(** @raise Not_found for unknown names. *)

val saxpy : t
val dotproduct : t
val matmul : t
val conv2d : t
val nbody : t
val blackscholes : t
val mandelbrot : t
val sumsq : t
val bitflip : t
val dsp_chain : t
val prefix_sum : t
val fir4 : t
val crc8 : t
