(* The deterministic xorshift generator lives in Support.Rng (the
   fault-injection schedule shares it); this module re-exports it and
   adds the wire-value helpers the workloads need. *)

include Support.Rng

let float_array t n ~lo ~hi =
  Array.init n (fun _ -> Wire.Value.f32 (float_range t lo hi))
