module Lm = Liquid_metal.Lm
module V = Wire.Value
module Rng = Rng

type category = Gpu_map | Pipeline | Fpga_stream

type t = {
  name : string;
  description : string;
  category : category;
  source : string;
  entry : string;
  args : size:int -> Lm.I.v list;
  default_size : int;
  validate : (size:int -> Lm.I.v -> (unit, string) result) option;
}

let seed = 0x51CE5EEDL

let close a b =
  let d = Float.abs (a -. b) in
  d <= 1e-3 *. (1.0 +. Float.max (Float.abs a) (Float.abs b))

let check_float_array ~what expected (v : Lm.I.v) =
  match v with
  | Lm.I.Prim (V.Float_array got) ->
    if Array.length got <> Array.length expected then
      Error
        (Printf.sprintf "%s: length %d, expected %d" what (Array.length got)
           (Array.length expected))
    else begin
      let bad = ref None in
      Array.iteri
        (fun i g ->
          if !bad = None && not (close g expected.(i)) then bad := Some i)
        got;
      match !bad with
      | None -> Ok ()
      | Some i ->
        Error
          (Printf.sprintf "%s: index %d is %g, expected %g" what i got.(i)
             expected.(i))
    end
  | _ -> Error (what ^ ": not a float array")

(* ------------------------------------------------------------------ *)
(* saxpy: y' = a*x + y — bandwidth-bound, the low end of the paper's
   speedup range.                                                      *)
(* ------------------------------------------------------------------ *)

let saxpy_source =
  {|
public class Saxpy {
  local static float axpy(float a, float x, float y) {
    return a * x + y;
  }
  public static float[[]] run(float a, float[[]] xs, float[[]] ys) {
    return Saxpy @ axpy(a, xs, ys);
  }
}
|}

let saxpy_inputs ~size =
  let rng = Rng.create ~seed () in
  let xs = Rng.float_array rng size ~lo:(-10.0) ~hi:10.0 in
  let ys = Rng.float_array rng size ~lo:(-10.0) ~hi:10.0 in
  2.5, xs, ys

let saxpy =
  {
    name = "saxpy";
    description = "y' = a*x + y over float arrays (map, bandwidth-bound)";
    category = Gpu_map;
    source = saxpy_source;
    entry = "Saxpy.run";
    default_size = 1 lsl 14;
    args =
      (fun ~size ->
        let a, xs, ys = saxpy_inputs ~size in
        [ Lm.float a; Lm.float_array xs; Lm.float_array ys ]);
    validate =
      Some
        (fun ~size v ->
          let a, xs, ys = saxpy_inputs ~size in
          let expected =
            Array.init size (fun i ->
                V.add_f32 (V.mul_f32 (V.f32 a) xs.(i)) ys.(i))
          in
          check_float_array ~what:"saxpy" expected v);
  }

(* ------------------------------------------------------------------ *)
(* dotproduct: map multiply then reduce add.                           *)
(* ------------------------------------------------------------------ *)

let dot_source =
  {|
public class Dot {
  local static float mul(float x, float y) { return x * y; }
  local static float add(float a, float b) { return a + b; }
  public static float run(float[[]] xs, float[[]] ys) {
    var products = Dot @ mul(xs, ys);
    return Dot @@ add(products);
  }
}
|}

let dot_inputs ~size =
  let rng = Rng.create ~seed () in
  let xs = Rng.float_array rng size ~lo:(-1.0) ~hi:1.0 in
  let ys = Rng.float_array rng size ~lo:(-1.0) ~hi:1.0 in
  xs, ys

let dotproduct =
  {
    name = "dotproduct";
    description = "map multiply + reduce add over float arrays";
    category = Gpu_map;
    source = dot_source;
    entry = "Dot.run";
    default_size = 1 lsl 14;
    args =
      (fun ~size ->
        let xs, ys = dot_inputs ~size in
        [ Lm.float_array xs; Lm.float_array ys ]);
    validate =
      Some
        (fun ~size v ->
          let xs, ys = dot_inputs ~size in
          let products = Array.init size (fun i -> V.mul_f32 xs.(i) ys.(i)) in
          let expected =
            Array.fold_left
              (fun acc p -> V.add_f32 acc p)
              products.(0)
              (Array.sub products 1 (size - 1))
          in
          match v with
          | Lm.I.Prim (V.Float f) ->
            if close f expected then Ok ()
            else Error (Printf.sprintf "dot: %g, expected %g" f expected)
          | _ -> Error "dot: not a float");
  }

(* ------------------------------------------------------------------ *)
(* matmul: n x n single-precision multiply. The map runs over a flat
   index array with the matrices broadcast.                            *)
(* ------------------------------------------------------------------ *)

let matmul_source =
  {|
public class MatMul {
  local static float cell(int ij, float[[]] a, float[[]] b, int n) {
    int i = ij / n;
    int j = ij % n;
    float acc = 0.0;
    for (int k = 0; k < n; k++) {
      acc += a[i * n + k] * b[k * n + j];
    }
    return acc;
  }
  public static float[[]] run(float[[]] a, float[[]] b, int n) {
    int[] idx = new int[n * n];
    for (int i = 0; i < n * n; i++) {
      idx[i] = i;
    }
    var flat = new int[[]](idx);
    return MatMul @ cell(flat, a, b, n);
  }
}
|}

let matmul_inputs ~size =
  let rng = Rng.create ~seed () in
  let a = Rng.float_array rng (size * size) ~lo:(-1.0) ~hi:1.0 in
  let b = Rng.float_array rng (size * size) ~lo:(-1.0) ~hi:1.0 in
  a, b

let matmul =
  {
    name = "matmul";
    description = "n x n single-precision matrix multiply (map over cells)";
    category = Gpu_map;
    source = matmul_source;
    entry = "MatMul.run";
    default_size = 48;
    args =
      (fun ~size ->
        let a, b = matmul_inputs ~size in
        [ Lm.float_array a; Lm.float_array b; Lm.int size ]);
    validate =
      Some
        (fun ~size v ->
          let a, b = matmul_inputs ~size in
          let n = size in
          let expected =
            Array.init (n * n) (fun ij ->
                let i = ij / n and j = ij mod n in
                let acc = ref 0.0 in
                for k = 0 to n - 1 do
                  acc :=
                    V.add_f32 !acc (V.mul_f32 a.((i * n) + k) b.((k * n) + j))
                done;
                !acc)
          in
          check_float_array ~what:"matmul" expected v);
  }

(* ------------------------------------------------------------------ *)
(* conv2d: 3x3 convolution over a grayscale image.                     *)
(* ------------------------------------------------------------------ *)

let conv2d_source =
  {|
public class Conv {
  local static float at(float[[]] img, int w, int h, int x, int y) {
    int cx = x < 0 ? 0 : (x >= w ? w - 1 : x);
    int cy = y < 0 ? 0 : (y >= h ? h - 1 : y);
    return img[cy * w + cx];
  }
  local static float pixel(int xy, float[[]] img, float[[]] k, int w, int h) {
    int x = xy % w;
    int y = xy / w;
    float acc = 0.0;
    for (int dy = -1; dy <= 1; dy++) {
      for (int dx = -1; dx <= 1; dx++) {
        acc += at(img, w, h, x + dx, y + dy) * k[(dy + 1) * 3 + (dx + 1)];
      }
    }
    return acc;
  }
  public static float[[]] run(float[[]] img, float[[]] k, int w, int h) {
    int[] idx = new int[w * h];
    for (int i = 0; i < w * h; i++) {
      idx[i] = i;
    }
    var flat = new int[[]](idx);
    return Conv @ pixel(flat, img, k, w, h);
  }
}
|}

(* size is the image edge; the kernel is a 3x3 sharpen *)
let conv_kernel =
  [| 0.0; -1.0; 0.0; -1.0; 5.0; -1.0; 0.0; -1.0; 0.0 |]

let conv2d_inputs ~size =
  let rng = Rng.create ~seed () in
  Rng.float_array rng (size * size) ~lo:0.0 ~hi:1.0

let conv2d =
  {
    name = "conv2d";
    description = "3x3 sharpen convolution over a grayscale image (map)";
    category = Gpu_map;
    source = conv2d_source;
    entry = "Conv.run";
    default_size = 64;
    args =
      (fun ~size ->
        let img = conv2d_inputs ~size in
        [
          Lm.float_array img;
          Lm.float_array conv_kernel;
          Lm.int size;
          Lm.int size;
        ]);
    validate =
      Some
        (fun ~size v ->
          let img = conv2d_inputs ~size in
          let w = size and h = size in
          let at x y =
            let cx = max 0 (min (w - 1) x) and cy = max 0 (min (h - 1) y) in
            img.((cy * w) + cx)
          in
          let expected =
            Array.init (w * h) (fun xy ->
                let x = xy mod w and y = xy / w in
                let acc = ref 0.0 in
                for dy = -1 to 1 do
                  for dx = -1 to 1 do
                    acc :=
                      V.add_f32 !acc
                        (V.mul_f32
                           (at (x + dx) (y + dy))
                           (V.f32 conv_kernel.(((dy + 1) * 3) + dx + 1)))
                  done
                done;
                !acc)
          in
          check_float_array ~what:"conv2d" expected v);
  }

(* ------------------------------------------------------------------ *)
(* nbody: one force-accumulation step with a softened 1/d^2 kernel
   (no inverse square root: the Lime subset has no transcendental
   intrinsics; the arithmetic intensity profile is preserved).         *)
(* ------------------------------------------------------------------ *)

let nbody_source =
  {|
public class NBody {
  local static float force(int i, float[[]] px, float[[]] py, float[[]] m, int n) {
    float fx = 0.0;
    float fy = 0.0;
    float xi = px[i];
    float yi = py[i];
    for (int j = 0; j < n; j++) {
      if (j != i) {
        float dx = px[j] - xi;
        float dy = py[j] - yi;
        float d2 = dx * dx + dy * dy + 0.01;
        float s = m[j] / d2;
        fx += dx * s;
        fy += dy * s;
      }
    }
    return fx * fx + fy * fy;
  }
  public static float[[]] run(float[[]] px, float[[]] py, float[[]] m, int n) {
    int[] idx = new int[n];
    for (int i = 0; i < n; i++) {
      idx[i] = i;
    }
    var flat = new int[[]](idx);
    return NBody @ force(flat, px, py, m, n);
  }
}
|}

let nbody_inputs ~size =
  let rng = Rng.create ~seed () in
  let px = Rng.float_array rng size ~lo:(-5.0) ~hi:5.0 in
  let py = Rng.float_array rng size ~lo:(-5.0) ~hi:5.0 in
  let m = Rng.float_array rng size ~lo:0.1 ~hi:2.0 in
  px, py, m

let nbody =
  {
    name = "nbody";
    description = "n-body force accumulation, softened 1/d^2 (map, O(n^2))";
    category = Gpu_map;
    source = nbody_source;
    entry = "NBody.run";
    default_size = 256;
    args =
      (fun ~size ->
        let px, py, m = nbody_inputs ~size in
        [ Lm.float_array px; Lm.float_array py; Lm.float_array m; Lm.int size ]);
    validate = None;
      (* validated differentially (bytecode vs accelerators) in tests *)
  }

(* ------------------------------------------------------------------ *)
(* mandelbrot: escape-time iteration — heavily branch-divergent, the
   high end of the compute-bound spectrum (stands in for the paper's
   most compute-intensive kernels).                                    *)
(* ------------------------------------------------------------------ *)

let mandelbrot_source =
  {|
public class Mandel {
  local static int escape(int xy, int w, int h, int maxIter) {
    float cx = 3.5 * (xy % w) / w - 2.5;
    float cy = 2.0 * (xy / w) / h - 1.0;
    float zx = 0.0;
    float zy = 0.0;
    int iter = 0;
    while (iter < maxIter && zx * zx + zy * zy <= 4.0) {
      float t = zx * zx - zy * zy + cx;
      zy = 2.0 * zx * zy + cy;
      zx = t;
      iter++;
    }
    return iter;
  }
  public static int[[]] run(int w, int h, int maxIter) {
    int[] idx = new int[w * h];
    for (int i = 0; i < w * h; i++) {
      idx[i] = i;
    }
    var flat = new int[[]](idx);
    return Mandel @ escape(flat, w, h, maxIter);
  }
}
|}

let mandelbrot =
  {
    name = "mandelbrot";
    description = "escape-time fractal (map, branch-divergent, compute-bound)";
    category = Gpu_map;
    source = mandelbrot_source;
    entry = "Mandel.run";
    default_size = 96;  (* edge length; iterations fixed at 64 *)
    args = (fun ~size -> [ Lm.int size; Lm.int size; Lm.int 64 ]);
    validate = None;
  }

(* ------------------------------------------------------------------ *)
(* sumsq: integer map square + reduce add. The combiner is int [+],
   which the algebraic analysis proves associative and commutative, so
   the lowered reduce scatters into K > 1 chunks and tree-combines the
   partials — bit-identically to the sequential fold.                  *)
(* ------------------------------------------------------------------ *)

let sumsq_source =
  {|
public class SumSq {
  local static int sq(int x) { return x * x; }
  local static int add(int a, int b) { return a + b; }
  public static int run(int[[]] xs) {
    var squares = SumSq @ sq(xs);
    return SumSq @@ add(squares);
  }
}
|}

let sumsq_inputs ~size =
  let rng = Rng.create ~seed () in
  Array.map (fun v -> v - 500) (Rng.int_array rng size ~bound:1000)

let sumsq =
  {
    name = "sumsq";
    description = "sum of squares over int arrays (map + proven-assoc reduce)";
    category = Gpu_map;
    source = sumsq_source;
    entry = "SumSq.run";
    (* large enough that the chunked reduce's extra launches and tree
       combines amortize against the stream in the modeled-time gate
       (bench/lower_bench.ml) *)
    default_size = 1 lsl 16;
    args = (fun ~size -> [ Lm.int_array (sumsq_inputs ~size) ]);
    validate =
      Some
        (fun ~size v ->
          let xs = sumsq_inputs ~size in
          let expected =
            Array.fold_left
              (fun acc x -> V.add32 acc (V.mul32 x x))
              (V.mul32 xs.(0) xs.(0))
              (Array.sub xs 1 (size - 1))
          in
          match v with
          | Lm.I.Prim (V.Int got) ->
            if got = expected then Ok ()
            else Error (Printf.sprintf "sumsq: %d, expected %d" got expected)
          | _ -> Error "sumsq: not an int");
  }

(* ------------------------------------------------------------------ *)
(* bitflip: the paper's Figure 1, both map and task-graph forms.       *)
(* ------------------------------------------------------------------ *)

let bitflip_source =
  {|
public value enum bit {
  zero, one;
  public bit ~ this {
    return this == zero ? one : zero;
  }
}

public class Bitflip {
  local static bit flip(bit b) {
    return ~b;
  }
  local static bit[[]] mapFlip(bit[[]] input) {
    var flipped = Bitflip @ flip(input);
    return flipped;
  }
  static bit[[]] taskFlip(bit[[]] input) {
    bit[] result = new bit[input.length];
    var flipit = input.source(1)
      => ([ task flip ])
      => result.<bit>sink();
    flipit.finish();
    return new bit[[]](result);
  }
}
|}

let bitflip_input ~size =
  let rng = Rng.create ~seed () in
  Bits.Bitvec.of_bool_array (Rng.bool_array rng size)

let bitflip =
  {
    name = "bitflip";
    description = "Figure 1: bit-stream inverter task graph";
    category = Pipeline;
    source = bitflip_source;
    entry = "Bitflip.taskFlip";
    default_size = 256;
    args =
      (fun ~size -> [ Lm.I.Prim (V.Bits (bitflip_input ~size)) ]);
    validate =
      Some
        (fun ~size v ->
          let expected =
            Bits.Bitvec.to_literal (Bits.Bitvec.lognot (bitflip_input ~size))
          in
          match v with
          | Lm.I.Prim (V.Bits got) ->
            if String.equal (Bits.Bitvec.to_literal got) expected then Ok ()
            else Error "bitflip: wrong bits"
          | _ -> Error "bitflip: not a bit array");
  }

(* ------------------------------------------------------------------ *)
(* dsp_chain: a 3-stage integer DSP pipeline (scale, offset, clamp) —
   straight-line filters, synthesizable by the FPGA backend.           *)
(* ------------------------------------------------------------------ *)

let dsp_source =
  {|
public class Dsp {
  local static int scale(int x) { return x * 3; }
  local static int offset(int x) { return x + 128; }
  local static int clamp(int x) {
    return x < 0 ? 0 : (x > 255 ? 255 : x);
  }
  public static int[[]] run(int[[]] samples) {
    int[] out = new int[samples.length];
    var g = samples.source(1)
      => ([ task scale ]) => ([ task offset ]) => ([ task clamp ])
      => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}

let dsp_inputs ~size =
  let rng = Rng.create ~seed () in
  Array.map (fun v -> v - 100) (Rng.int_array rng size ~bound:200)

let dsp_chain =
  {
    name = "dsp_chain";
    description = "scale -> offset -> clamp integer pipeline (FPGA-ready)";
    category = Fpga_stream;
    source = dsp_source;
    entry = "Dsp.run";
    default_size = 512;
    args = (fun ~size -> [ Lm.int_array (dsp_inputs ~size) ]);
    validate =
      Some
        (fun ~size v ->
          let expected =
            Array.map
              (fun x ->
                let y = (x * 3) + 128 in
                max 0 (min 255 y))
              (dsp_inputs ~size)
          in
          match v with
          | Lm.I.Prim (V.Int_array got) ->
            if got = expected then Ok () else Error "dsp: wrong samples"
          | _ -> Error "dsp: not an int array");
  }

(* ------------------------------------------------------------------ *)
(* prefix_sum: a stateful streaming accumulator — pipeline parallelism
   with state, FPGA registers (paper section 2.1).                     *)
(* ------------------------------------------------------------------ *)

let prefix_source =
  {|
public class Acc {
  int total;
  local Acc(int start) { total = start; }
  local int push(int x) { total += x; return total; }
}
public class Prefix {
  public static int[[]] run(int[[]] xs) {
    int[] out = new int[xs.length];
    var acc = new Acc(0);
    var g = xs.source(1) => ([ task acc.push ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}

let prefix_inputs ~size =
  let rng = Rng.create ~seed () in
  Rng.int_array rng size ~bound:100

let prefix_sum =
  {
    name = "prefix_sum";
    description = "stateful running-sum filter (registers on the FPGA)";
    category = Fpga_stream;
    source = prefix_source;
    entry = "Prefix.run";
    default_size = 512;
    args = (fun ~size -> [ Lm.int_array (prefix_inputs ~size) ]);
    validate =
      Some
        (fun ~size v ->
          let xs = prefix_inputs ~size in
          let acc = ref 0 in
          let expected =
            Array.map
              (fun x ->
                acc := V.add32 !acc x;
                !acc)
              xs
          in
          match v with
          | Lm.I.Prim (V.Int_array got) ->
            if got = expected then Ok () else Error "prefix: wrong sums"
          | _ -> Error "prefix: not an int array");
  }

(* ------------------------------------------------------------------ *)
(* blackscholes: European call pricing with the Abramowitz-Stegun
   cumulative-normal approximation — transcendental-heavy and
   compute-bound, enabled by the builtin Math intrinsics.             *)
(* ------------------------------------------------------------------ *)

let blackscholes_source =
  {|
public class Bs {
  local static float cnd(float x) {
    float l = Math.abs(x);
    float k = 1.0 / (1.0 + 0.2316419 * l);
    float poly = k * (0.31938153
               + k * (-0.356563782
               + k * (1.781477937
               + k * (-1.821255978
               + k * 1.330274429))));
    float w = 1.0 - 0.39894228 * Math.exp(0.0 - l * l / 2.0) * poly;
    return x < 0.0 ? 1.0 - w : w;
  }
  local static float callPrice(float s, float k, float t, float r, float v) {
    float srt = v * Math.sqrt(t);
    float d1 = (Math.log(s / k) + (r + 0.5 * v * v) * t) / srt;
    float d2 = d1 - srt;
    return s * cnd(d1) - k * Math.exp(0.0 - r * t) * cnd(d2);
  }
  public static float[[]] run(float[[]] spots, float[[]] strikes,
                              float[[]] years, float r, float v) {
    return Bs @ callPrice(spots, strikes, years, r, v);
  }
}
|}

let blackscholes_inputs ~size =
  let rng = Rng.create ~seed () in
  let spots = Rng.float_array rng size ~lo:10.0 ~hi:100.0 in
  let strikes = Rng.float_array rng size ~lo:10.0 ~hi:100.0 in
  let years = Rng.float_array rng size ~lo:0.2 ~hi:2.0 in
  spots, strikes, years

let blackscholes =
  {
    name = "blackscholes";
    description =
      "European option pricing, Abramowitz-Stegun CND (map, transcendental)";
    category = Gpu_map;
    source = blackscholes_source;
    entry = "Bs.run";
    default_size = 4096;
    args =
      (fun ~size ->
        let spots, strikes, years = blackscholes_inputs ~size in
        [
          Lm.float_array spots; Lm.float_array strikes; Lm.float_array years;
          Lm.float 0.02; Lm.float 0.30;
        ]);
    validate =
      Some
        (fun ~size v ->
          (* double-precision reference, tolerance check *)
          let spots, strikes, years = blackscholes_inputs ~size in
          let r = 0.02 and vol = 0.30 in
          let cnd x =
            let l = Float.abs x in
            let k = 1.0 /. (1.0 +. (0.2316419 *. l)) in
            let poly =
              k *. (0.31938153
              +. k *. (-0.356563782
              +. k *. (1.781477937
              +. k *. (-1.821255978 +. (k *. 1.330274429)))))
            in
            let w = 1.0 -. (0.39894228 *. exp (-.l *. l /. 2.0) *. poly) in
            if x < 0.0 then 1.0 -. w else w
          in
          let price s k t =
            let srt = vol *. sqrt t in
            let d1 = (log (s /. k) +. ((r +. (0.5 *. vol *. vol)) *. t)) /. srt in
            let d2 = d1 -. srt in
            (s *. cnd d1) -. (k *. exp (-.r *. t) *. cnd d2)
          in
          let expected =
            Array.init size (fun i -> price spots.(i) strikes.(i) years.(i))
          in
          match v with
          | Lm.I.Prim (V.Float_array got) ->
            let bad = ref None in
            Array.iteri
              (fun i g ->
                if
                  !bad = None
                  && Float.abs (g -. expected.(i))
                     > 1e-2 *. (1.0 +. Float.abs expected.(i))
                then bad := Some i)
              got;
            (match !bad with
            | None -> Ok ()
            | Some i ->
              Error
                (Printf.sprintf "blackscholes: index %d is %g, expected %g" i
                   got.(i) expected.(i)))
          | _ -> Error "blackscholes: not a float array");
  }

(* ------------------------------------------------------------------ *)
(* fir4: a 4-tap FIR filter — the classic DSP streaming kernel. Its
   delay line is three scalar fields, so the FPGA backend turns it
   into registers (straight-line datapath, no loops).                 *)
(* ------------------------------------------------------------------ *)

let fir4_source =
  {|
public class Fir {
  float z1;
  float z2;
  float z3;
  local Fir(float init) {
    z1 = init;
    z2 = init;
    z3 = init;
  }
  local float step(float x) {
    float y = 0.4 * x + 0.3 * z1 + 0.2 * z2 + 0.1 * z3;
    z3 = z2;
    z2 = z1;
    z1 = x;
    return y;
  }
}
public class FirMain {
  public static float[[]] run(float[[]] xs) {
    float[] out = new float[xs.length];
    var f = new Fir(0.0);
    var g = xs.source(1) => ([ task f.step ]) => out.<float>sink();
    g.finish();
    return new float[[]](out);
  }
}
|}

let fir4_inputs ~size =
  let rng = Rng.create ~seed () in
  Rng.float_array rng size ~lo:(-1.0) ~hi:1.0

let fir4 =
  {
    name = "fir4";
    description = "4-tap FIR filter, delay line in registers (FPGA stream)";
    category = Fpga_stream;
    source = fir4_source;
    entry = "FirMain.run";
    default_size = 512;
    args = (fun ~size -> [ Lm.float_array (fir4_inputs ~size) ]);
    validate =
      Some
        (fun ~size v ->
          (* exact f32 replica, matching Lime's evaluation order *)
          let xs = fir4_inputs ~size in
          let m = V.mul_f32 and a = V.add_f32 in
          let f c = V.f32 c in
          let z1 = ref 0.0 and z2 = ref 0.0 and z3 = ref 0.0 in
          let expected =
            Array.map
              (fun x ->
                let y =
                  a (a (a (m (f 0.4) x) (m (f 0.3) !z1)) (m (f 0.2) !z2))
                    (m (f 0.1) !z3)
                in
                z3 := !z2;
                z2 := !z1;
                z1 := x;
                y)
              xs
          in
          check_float_array ~what:"fir4" expected v);
  }

(* ------------------------------------------------------------------ *)
(* crc8: a rolling CRC-8 (polynomial 0x07) with the 8 shift steps
   unrolled — pure bit-twiddling muxes, the archetypal FPGA kernel
   (the paper's bit-literal motivation, section 2.2).                  *)
(* ------------------------------------------------------------------ *)

let crc8_source =
  {|
public class Crc {
  int crc;
  local Crc(int init) { crc = init; }
  local int update(int b) {
    int c = crc ^ (b & 255);
    c = (c & 128) != 0 ? ((c << 1) & 255) ^ 7 : (c << 1) & 255;
    c = (c & 128) != 0 ? ((c << 1) & 255) ^ 7 : (c << 1) & 255;
    c = (c & 128) != 0 ? ((c << 1) & 255) ^ 7 : (c << 1) & 255;
    c = (c & 128) != 0 ? ((c << 1) & 255) ^ 7 : (c << 1) & 255;
    c = (c & 128) != 0 ? ((c << 1) & 255) ^ 7 : (c << 1) & 255;
    c = (c & 128) != 0 ? ((c << 1) & 255) ^ 7 : (c << 1) & 255;
    c = (c & 128) != 0 ? ((c << 1) & 255) ^ 7 : (c << 1) & 255;
    c = (c & 128) != 0 ? ((c << 1) & 255) ^ 7 : (c << 1) & 255;
    crc = c;
    return c;
  }
}
public class CrcMain {
  public static int[[]] run(int[[]] bytes) {
    int[] out = new int[bytes.length];
    var c = new Crc(0);
    var g = bytes.source(1) => ([ task c.update ]) => out.<int>sink();
    g.finish();
    return new int[[]](out);
  }
}
|}

let crc8_inputs ~size =
  let rng = Rng.create ~seed () in
  Rng.int_array rng size ~bound:256

let crc8 =
  {
    name = "crc8";
    description = "rolling CRC-8 (poly 0x07), 8 unrolled steps (FPGA stream)";
    category = Fpga_stream;
    source = crc8_source;
    entry = "CrcMain.run";
    default_size = 512;
    args = (fun ~size -> [ Lm.int_array (crc8_inputs ~size) ]);
    validate =
      Some
        (fun ~size v ->
          let step c =
            if c land 128 <> 0 then ((c lsl 1) land 255) lxor 7
            else (c lsl 1) land 255
          in
          let crc = ref 0 in
          let expected =
            Array.map
              (fun b ->
                let c = ref (!crc lxor (b land 255)) in
                for _ = 1 to 8 do
                  c := step !c
                done;
                crc := !c;
                !c)
              (crc8_inputs ~size)
          in
          match v with
          | Lm.I.Prim (V.Int_array got) ->
            if got = expected then Ok () else Error "crc8: wrong checksums"
          | _ -> Error "crc8: not an int array");
  }

let all =
  [
    saxpy; dotproduct; matmul; conv2d; nbody; blackscholes; mandelbrot;
    sumsq; bitflip; dsp_chain; prefix_sum; fir4; crc8;
  ]

let find name =
  match List.find_opt (fun w -> String.equal w.name name) all with
  | Some w -> w
  | None -> raise Not_found
