open Support
module A = Lime_syntax.Ast

let err ?loc fmt = Diag.error ?loc ~phase:"typecheck" fmt

module String_map = Tast.String_map

(* ------------------------------------------------------------------ *)
(* Signatures collected in a first pass                               *)
(* ------------------------------------------------------------------ *)

type msig = {
  sg_key : Tast.method_key;
  sg_static : bool;
  sg_local : bool;
  sg_params : (string * Types.ty) list;
  sg_ret : Types.ty;
}

type csig = {
  cg_local : bool;
  cg_params : (string * Types.ty) list;
}

type owner_kind = Owner_enum of string array | Owner_class of A.class_decl

type owner = {
  ow_name : string;
  ow_kind : owner_kind;
  ow_is_value : bool;
  ow_methods : msig list;
  ow_ctors : csig list;
  ow_fields : (string * Types.ty) list;  (* declaration order *)
}

type genv = {
  owners : owner String_map.t;
  enum_cases : string array String_map.t;  (* includes builtin "bit" *)
}

let resolve_locality ~in_value (l : A.locality) =
  match l with
  | A.L_local -> true
  | A.L_global -> false
  | A.L_default -> in_value
(* Methods of a value type are local by default; a global method may
   perform side-effecting operations (paper section 2.1). *)

let rec resolve_ty genv loc (t : A.ty) : Types.ty =
  match t with
  | A.T_int -> Types.Int
  | A.T_float -> Types.Float
  | A.T_bool -> Types.Bool
  | A.T_bit -> Types.Bit
  | A.T_void -> Types.Void
  | A.T_named "bit" -> Types.Bit
  | A.T_named n -> (
    match String_map.find_opt n genv.enum_cases with
    | Some _ -> Types.Enum n
    | None ->
      if String_map.mem n genv.owners then Types.Instance n
      else err ~loc "unknown type '%s'" n)
  | A.T_array (t, A.Mut) -> Types.Array (resolve_ty genv loc t, Types.Mut)
  | A.T_array (t, A.Immut) -> Types.Array (resolve_ty genv loc t, Types.Immut)

let builtin_bit_cases = [| "zero"; "one" |]

let collect_signatures (prog : A.program) : genv =
  (* First register all type names so signatures can refer to them. *)
  let user_enums = ref Tast.String_map.empty in
  let enum_cases =
    List.fold_left
      (fun acc -> function
        | A.D_enum e ->
          if String_map.mem e.e_name !user_enums then
            err ~loc:e.e_loc "duplicate enum '%s'" e.e_name;
          user_enums := String_map.add e.e_name () !user_enums;
          if e.e_name = "bit" && e.e_cases <> [ "zero"; "one" ] then
            err ~loc:e.e_loc
              "enum 'bit' must declare exactly the cases zero, one";
          String_map.add e.e_name (Array.of_list e.e_cases) acc
        | A.D_class _ -> acc)
      (String_map.singleton "bit" builtin_bit_cases)
      prog.decls
  in
  let class_names =
    List.filter_map
      (function
        | A.D_class k -> Some k.k_name
        | A.D_enum _ -> None)
      prog.decls
  in
  let pre_owners =
    List.fold_left
      (fun acc name -> String_map.add name () acc)
      String_map.empty class_names
  in
  let genv0 =
    {
      owners =
        String_map.map
          (fun () ->
            {
              ow_name = "";
              ow_kind = Owner_enum [||];
              ow_is_value = false;
              ow_methods = [];
              ow_ctors = [];
              ow_fields = [];
            })
          pre_owners;
      enum_cases;
    }
  in
  let method_sig owner_name in_value (m : A.method_decl) =
    {
      sg_key = { Tast.mclass = owner_name; mmethod = m.m_name };
      sg_static = m.m_static;
      sg_local = resolve_locality ~in_value m.m_locality;
      sg_params =
        List.map (fun (n, t) -> n, resolve_ty genv0 m.m_loc t) m.m_params;
      sg_ret = resolve_ty genv0 m.m_loc m.m_ret;
    }
  in
  let owners =
    List.fold_left
      (fun acc decl ->
        match decl with
        | A.D_enum e ->
          let cases = String_map.find e.e_name enum_cases in
          let owner =
            {
              ow_name = e.e_name;
              ow_kind = Owner_enum cases;
              ow_is_value = true;
              ow_methods = List.map (method_sig e.e_name true) e.e_methods;
              ow_ctors = [];
              ow_fields = [];
            }
          in
          if String_map.mem e.e_name acc then
            err ~loc:e.e_loc "duplicate declaration of '%s'" e.e_name;
          String_map.add e.e_name owner acc
        | A.D_class k ->
          if String_map.mem k.k_name acc then
            err ~loc:k.k_loc "duplicate declaration of '%s'" k.k_name;
          let owner =
            {
              ow_name = k.k_name;
              ow_kind = Owner_class k;
              ow_is_value = k.k_is_value;
              ow_methods =
                List.map (method_sig k.k_name k.k_is_value) k.k_methods;
              ow_ctors =
                List.map
                  (fun (c : A.ctor_decl) ->
                    {
                      cg_local =
                        resolve_locality ~in_value:k.k_is_value c.c_locality;
                      cg_params =
                        List.map
                          (fun (n, t) -> n, resolve_ty genv0 c.c_loc t)
                          c.c_params;
                    })
                  k.k_ctors;
              ow_fields =
                List.map
                  (fun (f : A.field_decl) ->
                    f.f_name, resolve_ty genv0 f.f_loc f.f_ty)
                  k.k_fields;
            }
          in
          String_map.add k.k_name owner acc)
      String_map.empty prog.decls
  in
  (* The builtin Math class: static local float intrinsics. *)
  let owners =
    let math_sig name arity =
      {
        sg_key = { Tast.mclass = "Math"; mmethod = name };
        sg_static = true;
        sg_local = true;
        sg_params =
          List.init arity (fun i -> Printf.sprintf "x%d" i, Types.Float);
        sg_ret = Types.Float;
      }
    in
    if String_map.mem "Math" owners then owners
    else
      String_map.add "Math"
        {
          ow_name = "Math";
          ow_kind = Owner_enum [||];
          ow_is_value = true;
          ow_methods =
            List.map
              (fun (name, arity) -> math_sig name arity)
              [
                "sqrt", 1; "exp", 1; "log", 1; "sin", 1; "cos", 1; "abs", 1;
                "floor", 1; "pow", 2; "min", 2; "max", 2;
              ];
          ow_ctors = [];
          ow_fields = [];
        }
        owners
  in
  (* The builtin bit enum, unless the program declares it itself. *)
  let owners =
    if String_map.mem "bit" owners then owners
    else
      String_map.add "bit"
        {
          ow_name = "bit";
          ow_kind = Owner_enum builtin_bit_cases;
          ow_is_value = true;
          ow_methods =
            [
              {
                sg_key = { Tast.mclass = "bit"; mmethod = "~" };
                sg_static = false;
                sg_local = true;
                sg_params = [];
                sg_ret = Types.Bit;
              };
            ];
          ow_ctors = [];
          ow_fields = [];
        }
        owners
  in
  { owners; enum_cases }

let find_owner genv name = String_map.find_opt name genv.owners

let find_msig genv cls name =
  match find_owner genv cls with
  | None -> None
  | Some ow -> List.find_opt (fun s -> s.sg_key.Tast.mmethod = name) ow.ow_methods

(* ------------------------------------------------------------------ *)
(* Expression and statement checking                                  *)
(* ------------------------------------------------------------------ *)

type ctx = {
  genv : genv;
  cur_owner : owner;
  cur_static : bool;
  cur_local : bool;  (* the enclosing method's resolved locality *)
  cur_ret : Types.ty;
  mutable scopes : (string * Types.ty) list list;
}

let lookup_var ctx name =
  let rec search = function
    | [] -> None
    | scope :: rest -> (
      match List.assoc_opt name scope with
      | Some t -> Some t
      | None -> search rest)
  in
  search ctx.scopes

let declare_var ctx loc name ty =
  match ctx.scopes with
  | scope :: rest ->
    if List.mem_assoc name scope then
      err ~loc "variable '%s' is already declared in this scope" name;
    ctx.scopes <- ((name, ty) :: scope) :: rest
  | [] -> assert false

let push_scope ctx = ctx.scopes <- [] :: ctx.scopes

let pop_scope ctx =
  match ctx.scopes with
  | _ :: rest -> ctx.scopes <- rest
  | [] -> assert false

let field_slot ctx name =
  let rec search i = function
    | [] -> None
    | (n, t) :: _ when String.equal n name -> Some (i, t)
    | _ :: rest -> search (i + 1) rest
  in
  search 0 ctx.cur_owner.ow_fields

let mk ty loc desc : Tast.expr = { ty; desc; loc }

(* Insert the implicit int-to-float widening when needed. *)
let coerce loc (e : Tast.expr) (want : Types.ty) : Tast.expr =
  if Types.equal e.ty want then e
  else if Types.equal e.ty Types.Int && Types.equal want Types.Float then
    mk Types.Float loc (Tast.T_int_to_float e)
  else
    err ~loc "expected type %s but found %s" (Types.to_string want)
      (Types.to_string e.ty)

(* The paper's purity condition for map/reduce/static-task targets.
   Locality is deliberately NOT required here: a [global] target is
   admitted by the typechecker and judged by the interprocedural
   effect inference ([Analysis.Effects]) instead, so a provably pure
   global function can still be relocated to a device backend. *)
let require_relocatable_target genv loc (s : msig) ~what =
  if not s.sg_static then
    err ~loc "%s target '%s' must be static" what
      (Tast.method_key_to_string s.sg_key);
  List.iter
    (fun (n, t) ->
      if not (Types.is_value t) then
        err ~loc "%s target '%s': parameter '%s' has non-value type %s" what
          (Tast.method_key_to_string s.sg_key)
          n (Types.to_string t))
    s.sg_params;
  if not (Types.is_value s.sg_ret) then
    err ~loc "%s target '%s': return type %s is not a value type" what
      (Tast.method_key_to_string s.sg_key)
      (Types.to_string s.sg_ret);
  ignore genv

let rec check_expr ctx (e : A.expr) : Tast.expr =
  let loc = e.loc in
  match e.desc with
  | A.Int_lit i -> mk Types.Int loc (Tast.T_int_lit (Wire.Value.norm32 i))
  | A.Float_lit f -> mk Types.Float loc (Tast.T_float_lit f)
  | A.Bool_lit b -> mk Types.Bool loc (Tast.T_bool_lit b)
  | A.Bit_lit s ->
    mk (Types.Array (Types.Bit, Types.Immut)) loc (Tast.T_bit_lit s)
  | A.This ->
    if ctx.cur_static then err ~loc "'this' cannot appear in a static method";
    let ty =
      match ctx.cur_owner.ow_kind with
      | Owner_enum _ ->
        if ctx.cur_owner.ow_name = "bit" then Types.Bit
        else Types.Enum ctx.cur_owner.ow_name
      | Owner_class _ -> Types.Instance ctx.cur_owner.ow_name
    in
    mk ty loc Tast.T_this
  | A.Name s -> (
    match lookup_var ctx s with
    | Some ty -> mk ty loc (Tast.T_var s)
    | None -> (
      (* Enum case of the enclosing enum, then a globally unique case. *)
      match resolve_enum_case ctx loc s with
      | Some e -> e
      | None -> (
        match field_slot ctx s with
        | Some (slot, ty) when not ctx.cur_static ->
          mk ty loc (Tast.T_field_get (s, slot))
        | Some _ -> err ~loc "field '%s' cannot be read from a static method" s
        | None -> err ~loc "unknown name '%s'" s)))
  | A.Qualified (q, m) -> (
    match String_map.find_opt q ctx.genv.enum_cases with
    | Some cases -> (
      match Array.find_index (String.equal m) cases with
      | Some tag ->
        let ty = if q = "bit" then Types.Bit else Types.Enum q in
        mk ty loc (Tast.T_enum_lit (q, tag))
      | None -> err ~loc "enum '%s' has no case '%s'" q m)
    | None -> err ~loc "'%s.%s': '%s' is not an enum" q m q)
  | A.Unop (op, a) -> check_unop ctx loc op a
  | A.Binop (op, a, b) -> check_binop ctx loc op a b
  | A.Cond (c, a, b) ->
    let c = coerce loc (check_expr ctx c) Types.Bool in
    let a = check_expr ctx a in
    let b = check_expr ctx b in
    let a, b =
      if Types.equal a.ty b.ty then a, b
      else if Types.equal a.ty Types.Int && Types.equal b.ty Types.Float then
        coerce loc a Types.Float, b
      else if Types.equal a.ty Types.Float && Types.equal b.ty Types.Int then
        a, coerce loc b Types.Float
      else
        err ~loc "branches of '?:' have different types %s and %s"
          (Types.to_string a.ty) (Types.to_string b.ty)
    in
    mk a.ty loc (Tast.T_cond (c, a, b))
  | A.Index (a, i) -> (
    let a = check_expr ctx a in
    let i = coerce loc (check_expr ctx i) Types.Int in
    match a.ty with
    | Types.Array (elt, _) -> mk elt loc (Tast.T_index (a, i))
    | t -> err ~loc "cannot index a value of type %s" (Types.to_string t))
  | A.Length a -> (
    let a = check_expr ctx a in
    match a.ty with
    | Types.Array _ -> mk Types.Int loc (Tast.T_length a)
    | t -> err ~loc "'.length' needs an array, found %s" (Types.to_string t))
  | A.Call (target, args) -> check_call ctx loc target args
  | A.New_array (elt_ast, n) -> (
    let elt = resolve_ty ctx.genv loc elt_ast in
    let n = coerce loc (check_expr ctx n) Types.Int in
    match elt with
    | Types.Void | Types.Task _ -> err ~loc "invalid array element type"
    | _ -> mk (Types.Array (elt, Types.Mut)) loc (Tast.T_new_array (elt, n)))
  | A.New_value_array (elt_ast, src) -> (
    let elt = resolve_ty ctx.genv loc elt_ast in
    let src = check_expr ctx src in
    match src.ty with
    | Types.Array (e, _) when Types.equal e elt ->
      mk (Types.Array (elt, Types.Immut)) loc (Tast.T_freeze src)
    | t ->
      err ~loc "new %s[[]](e) expects a %s array argument, found %s"
        (Types.to_string elt) (Types.to_string elt) (Types.to_string t))
  | A.New_instance (cls, args) -> (
    match find_owner ctx.genv cls with
    | Some { ow_kind = Owner_class _; ow_ctors; _ } -> (
      let args = List.map (check_expr ctx) args in
      let matching =
        List.find_opt
          (fun c ->
            List.length c.cg_params = List.length args
            && List.for_all2
                 (fun (_, p) (a : Tast.expr) -> Types.widens_to a.ty p)
                 c.cg_params args)
          ow_ctors
      in
      match matching with
      | None -> err ~loc "no constructor of '%s' matches these arguments" cls
      | Some c ->
        if ctx.cur_local && not c.cg_local then
          err ~loc "local method cannot call the global constructor of '%s'" cls;
        let args =
          List.map2 (fun (_, p) a -> coerce loc a p) c.cg_params args
        in
        mk (Types.Instance cls) loc (Tast.T_new_instance (cls, args)))
    | Some _ -> err ~loc "'%s' is an enum, not a constructible class" cls
    | None -> err ~loc "unknown class '%s'" cls)
  | A.Map (cls, m, args) ->
    let cls = Option.value cls ~default:ctx.cur_owner.ow_name in
    check_map ctx loc cls m args
  | A.Reduce (cls, m, args) ->
    let cls = Option.value cls ~default:ctx.cur_owner.ow_name in
    check_reduce ctx loc cls m args
  | A.Task (receiver, m) -> check_task ctx loc receiver m
  | A.Relocate inner -> (
    let inner = check_expr ctx inner in
    match inner.ty with
    | Types.Task _ -> mk inner.ty loc (Tast.T_relocate inner)
    | t ->
      err ~loc "relocation brackets need a task expression, found %s"
        (Types.to_string t))
  | A.Connect (a, b) -> (
    let a = check_expr ctx a in
    let b = check_expr ctx b in
    match a.ty, b.ty with
    | Types.Task (i, Some out), Types.Task (Some inp, o) ->
      if not (Types.equal out inp) then
        err ~loc "connected ports disagree: %s flows into %s"
          (Types.to_string out) (Types.to_string inp);
      mk (Types.Task (i, o)) loc (Tast.T_connect (a, b))
    | Types.Task (_, None), Types.Task _ ->
      err ~loc "left side of '=>' has no output port"
    | Types.Task _, Types.Task (None, _) ->
      err ~loc "right side of '=>' has no input port"
    | ta, tb ->
      err ~loc "'=>' connects tasks, found %s and %s" (Types.to_string ta)
        (Types.to_string tb))
  | A.Source (arr, rate) -> (
    let arr = check_expr ctx arr in
    let rate = coerce loc (check_expr ctx rate) Types.Int in
    match arr.ty with
    | Types.Array (elt, _) when Types.is_value elt ->
      mk (Types.Task (None, Some elt)) loc (Tast.T_source (arr, rate))
    | Types.Array (elt, _) ->
      err ~loc "source elements must be values, found %s" (Types.to_string elt)
    | t -> err ~loc "'.source' needs an array, found %s" (Types.to_string t))
  | A.Sink (elt_ast, dest) -> (
    let elt = resolve_ty ctx.genv loc elt_ast in
    let dest = check_expr ctx dest in
    match dest.ty with
    | Types.Array (e, Types.Mut) when Types.equal e elt ->
      if not (Types.is_value elt) then
        err ~loc "sink elements must be values, found %s" (Types.to_string elt);
      mk (Types.Task (Some elt, None)) loc (Tast.T_sink (elt, dest))
    | Types.Array (_, Types.Immut) ->
      err ~loc "a sink needs a mutable destination array"
    | t ->
      err ~loc "'.<%s>sink()' needs a %s[] destination, found %s"
        (Types.to_string elt) (Types.to_string elt) (Types.to_string t))

and resolve_enum_case ctx loc name : Tast.expr option =
  (* Bare case names: the enclosing enum's cases first, then any
     globally unique case. *)
  let of_enum enum_name cases =
    match Array.find_index (String.equal name) cases with
    | Some tag ->
      let ty = if enum_name = "bit" then Types.Bit else Types.Enum enum_name in
      Some (mk ty loc (Tast.T_enum_lit (enum_name, tag)))
    | None -> None
  in
  match ctx.cur_owner.ow_kind with
  | Owner_enum cases when Option.is_some (of_enum ctx.cur_owner.ow_name cases)
    ->
    of_enum ctx.cur_owner.ow_name cases
  | Owner_enum _ | Owner_class _ -> (
    let hits =
      String_map.fold
        (fun enum_name cases acc ->
          match of_enum enum_name cases with
          | Some e -> (enum_name, e) :: acc
          | None -> acc)
        ctx.genv.enum_cases []
    in
    match hits with
    | [ (_, e) ] -> Some e
    | [] -> None
    | _ :: _ :: _ ->
      err ~loc "enum case '%s' is ambiguous; qualify it as Enum.%s" name name)

and check_unop ctx loc (op : A.unop) a : Tast.expr =
  let a = check_expr ctx a in
  match op, a.ty with
  | A.Neg, (Types.Int | Types.Float) -> mk a.ty loc (Tast.T_unop (A.Neg, a))
  | A.Not, Types.Bool -> mk Types.Bool loc (Tast.T_unop (A.Not, a))
  | A.Bit_not, Types.Int -> mk Types.Int loc (Tast.T_unop (A.Bit_not, a))
  | A.Bit_not, (Types.Bit | Types.Enum _) -> (
    (* [~e] resolves to the enum's operator method (Figure 1). *)
    let enum_name =
      match a.ty with Types.Bit -> "bit" | Types.Enum n -> n | _ -> assert false
    in
    match find_msig ctx.genv enum_name "~" with
    | Some s ->
      if ctx.cur_local && not s.sg_local then
        err ~loc "local method cannot call global operator '~' of %s" enum_name;
      mk s.sg_ret loc (Tast.T_instance_call (enum_name, "~", a, []))
    | None -> err ~loc "enum '%s' does not define operator '~'" enum_name)
  | (A.Neg | A.Not | A.Bit_not), t ->
    err ~loc "operator cannot be applied to %s" (Types.to_string t)

and check_binop ctx loc (op : A.binop) a b : Tast.expr =
  let a = check_expr ctx a in
  let b = check_expr ctx b in
  let promote () =
    match a.ty, b.ty with
    | Types.Int, Types.Int -> a, b, Types.Int
    | Types.Float, Types.Float -> a, b, Types.Float
    | Types.Int, Types.Float -> coerce loc a Types.Float, b, Types.Float
    | Types.Float, Types.Int -> a, coerce loc b Types.Float, Types.Float
    | ta, tb ->
      err ~loc "arithmetic on %s and %s" (Types.to_string ta)
        (Types.to_string tb)
  in
  match op with
  | A.Add | A.Sub | A.Mul | A.Div | A.Rem ->
    let a, b, ty = promote () in
    mk ty loc (Tast.T_binop (op, a, b))
  | A.Shl | A.Shr ->
    let a = coerce loc a Types.Int and b = coerce loc b Types.Int in
    mk Types.Int loc (Tast.T_binop (op, a, b))
  | A.Band | A.Bor | A.Bxor -> (
    match a.ty, b.ty with
    | Types.Int, Types.Int -> mk Types.Int loc (Tast.T_binop (op, a, b))
    | Types.Bool, Types.Bool -> mk Types.Bool loc (Tast.T_binop (op, a, b))
    | Types.Bit, Types.Bit -> mk Types.Bit loc (Tast.T_binop (op, a, b))
    | ta, tb ->
      err ~loc "bitwise operator on %s and %s" (Types.to_string ta)
        (Types.to_string tb))
  | A.And | A.Or ->
    let a = coerce loc a Types.Bool and b = coerce loc b Types.Bool in
    mk Types.Bool loc (Tast.T_binop (op, a, b))
  | A.Eq | A.Neq -> (
    match a.ty, b.ty with
    | ta, tb when Types.equal ta tb && Types.is_value ta ->
      mk Types.Bool loc (Tast.T_binop (op, a, b))
    | (Types.Int | Types.Float), (Types.Int | Types.Float) ->
      let a, b, _ = promote () in
      mk Types.Bool loc (Tast.T_binop (op, a, b))
    | ta, tb ->
      err ~loc "cannot compare %s with %s" (Types.to_string ta)
        (Types.to_string tb))
  | A.Lt | A.Leq | A.Gt | A.Geq ->
    let a, b, _ = promote () in
    mk Types.Bool loc (Tast.T_binop (op, a, b))

and check_args ctx loc (params : (string * Types.ty) list) args =
  if List.length params <> List.length args then
    err ~loc "expected %d argument(s) but found %d" (List.length params)
      (List.length args);
  List.map2
    (fun (_, p) a -> coerce loc (check_expr ctx a) p)
    params args

and check_call ctx loc (target : A.call_target) args : Tast.expr =
  match target with
  | A.Unresolved_call m -> (
    match find_msig ctx.genv ctx.cur_owner.ow_name m with
    | Some s -> finish_static_or_self_call ctx loc s args
    | None ->
      err ~loc "unknown method '%s' in %s" m ctx.cur_owner.ow_name)
  | A.Qualified_call (cls, m) -> (
    match find_msig ctx.genv cls m with
    | Some s when s.sg_static ->
      let args = check_args ctx loc s.sg_params args in
      require_local_ok ctx loc s;
      mk s.sg_ret loc (Tast.T_call (s.sg_key, args))
    | Some _ -> err ~loc "'%s.%s' is an instance method; call it on a receiver" cls m
    | None -> (
      match lookup_var ctx cls with
      | Some _ ->
        check_call ctx loc
          (A.Method_call ({ desc = A.Name cls; loc }, m))
          args
      | None -> err ~loc "unknown method '%s.%s'" cls m))
  | A.Method_call (recv, m) -> (
    let recv = check_expr ctx recv in
    match recv.ty, m with
    | Types.Task (None, None), ("finish" | "start") ->
      if args <> [] then err ~loc "%s() takes no arguments" m;
      mk Types.Void loc (Tast.T_graph_run (recv, m = "finish"))
    | Types.Task _, ("finish" | "start") ->
      err ~loc "only a complete task graph (no open ports) can be %sed" m
    | (Types.Bit | Types.Enum _ | Types.Instance _), _ -> (
      let owner_name =
        match recv.ty with
        | Types.Bit -> "bit"
        | Types.Enum n | Types.Instance n -> n
        | _ -> assert false
      in
      match find_msig ctx.genv owner_name m with
      | Some s when not s.sg_static ->
        let args = check_args ctx loc s.sg_params args in
        require_local_ok ctx loc s;
        mk s.sg_ret loc (Tast.T_instance_call (owner_name, m, recv, args))
      | Some _ ->
        err ~loc "'%s.%s' is static; call it without a receiver object"
          owner_name m
      | None -> err ~loc "'%s' has no method '%s'" owner_name m)
    | t, _ ->
      err ~loc "cannot call '%s' on a value of type %s" m (Types.to_string t))

and require_local_ok ctx loc (s : msig) =
  if ctx.cur_local && not s.sg_local then
    err ~loc "local method may only call local methods, but '%s' is global"
      (Tast.method_key_to_string s.sg_key)

and finish_static_or_self_call ctx loc (s : msig) args : Tast.expr =
  let args = check_args ctx loc s.sg_params args in
  require_local_ok ctx loc s;
  if s.sg_static then mk s.sg_ret loc (Tast.T_call (s.sg_key, args))
  else begin
    if ctx.cur_static then
      err ~loc "instance method '%s' called without a receiver"
        (Tast.method_key_to_string s.sg_key);
    let this =
      mk
        (match ctx.cur_owner.ow_kind with
        | Owner_enum _ ->
          if ctx.cur_owner.ow_name = "bit" then Types.Bit
          else Types.Enum ctx.cur_owner.ow_name
        | Owner_class _ -> Types.Instance ctx.cur_owner.ow_name)
        loc Tast.T_this
    in
    mk s.sg_ret loc
      (Tast.T_instance_call (ctx.cur_owner.ow_name, s.sg_key.Tast.mmethod, this, args))
  end

and check_map ctx loc cls m args : Tast.expr =
  match find_msig ctx.genv cls m with
  | None -> err ~loc "unknown map target '%s.%s'" cls m
  | Some s ->
    require_relocatable_target ctx.genv loc s ~what:"map";
    if List.length s.sg_params <> List.length args then
      err ~loc "map target takes %d argument(s) but %d were supplied"
        (List.length s.sg_params) (List.length args);
    let targs =
      List.map2
        (fun (_, p) a ->
          let a = check_expr ctx a in
          match a.ty with
          | Types.Array (elt, _) when Types.equal elt p -> a
          | t when Types.widens_to t p -> coerce loc a p  (* broadcast *)
          | t ->
            err ~loc
              "map argument has type %s; expected %s[] (mapped) or %s \
               (broadcast)"
              (Types.to_string t) (Types.to_string p) (Types.to_string p))
        s.sg_params args
    in
    if
      not
        (List.exists
           (fun (a : Tast.expr) ->
             match a.ty with Types.Array _ -> true | _ -> false)
           targs)
    then err ~loc "map needs at least one array argument";
    mk (Types.Array (s.sg_ret, Types.Immut)) loc (Tast.T_map (s.sg_key, targs))

and check_reduce ctx loc cls m args : Tast.expr =
  match find_msig ctx.genv cls m with
  | None -> err ~loc "unknown reduce target '%s.%s'" cls m
  | Some s -> (
    require_relocatable_target ctx.genv loc s ~what:"reduce";
    match s.sg_params, args with
    | [ (_, p1); (_, p2) ], [ arr ] ->
      if not (Types.equal p1 p2 && Types.equal p1 s.sg_ret) then
        err ~loc "reduce target must have type (t, t) -> t";
      let arr = check_expr ctx arr in
      (match arr.ty with
      | Types.Array (elt, _) when Types.equal elt p1 -> ()
      | t ->
        err ~loc "reduce argument must be a %s array, found %s"
          (Types.to_string p1) (Types.to_string t));
      mk s.sg_ret loc (Tast.T_reduce (s.sg_key, [ arr ]))
    | _ ->
      err ~loc
        "reduce target must be a binary method applied to a single array")

and check_task ctx loc (receiver : string option) m : Tast.expr =
  let static_task cls =
    match find_msig ctx.genv cls m with
    | None -> err ~loc "unknown task target '%s.%s'" cls m
    | Some s -> (
      require_relocatable_target ctx.genv loc s ~what:"task";
      match s.sg_params with
      | [ (_, input) ] ->
        mk (Types.Task (Some input, Some s.sg_ret)) loc
          (Tast.T_task_static s.sg_key)
      | _ -> err ~loc "a task filter takes exactly one argument")
  in
  match receiver with
  | None -> static_task ctx.cur_owner.ow_name
  | Some r -> (
    match lookup_var ctx r with
    | None -> static_task r
    | Some (Types.Instance cls) -> (
      let ow =
        match find_owner ctx.genv cls with
        | Some ow -> ow
        | None -> assert false
      in
      (* Stateful tasks need isolation: the object must come from an
         isolating constructor, so require every constructor of the
         class to be local with value arguments (paper section 2.1). *)
      if ow.ow_ctors = [] then
        err ~loc "class '%s' has no constructors; stateful tasks need an \
                  isolating constructor" cls;
      List.iter
        (fun c ->
          if not c.cg_local then
            err ~loc "class '%s' has a non-local constructor; its instances \
                      cannot be tasks" cls;
          List.iter
            (fun (n, t) ->
              if not (Types.is_value t) then
                err ~loc "constructor of '%s': parameter '%s' has non-value \
                          type %s, so the constructor is not isolating" cls n
                  (Types.to_string t))
            c.cg_params)
        ow.ow_ctors;
      match find_msig ctx.genv cls m with
      | None -> err ~loc "'%s' has no method '%s'" cls m
      | Some s when s.sg_static ->
        err ~loc "'task %s.%s' on an instance needs an instance method" r m
      | Some s -> (
        if not s.sg_local then
          err ~loc "stateful task method '%s.%s' must be local" cls m;
        match s.sg_params with
        | [ (_, input) ] when Types.is_value input && Types.is_value s.sg_ret
          ->
          mk
            (Types.Task (Some input, Some s.sg_ret))
            loc
            (Tast.T_task_instance
               (cls, m, mk (Types.Instance cls) loc (Tast.T_var r)))
        | [ _ ] -> err ~loc "stateful task ports must be value types"
        | _ -> err ~loc "a task filter takes exactly one argument"))
    | Some t ->
      err ~loc "task receiver '%s' has type %s, not a class instance" r
        (Types.to_string t))

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let default_init loc (ty : Types.ty) : Tast.expr =
  match ty with
  | Types.Int -> mk Types.Int loc (Tast.T_int_lit 0)
  | Types.Float -> mk Types.Float loc (Tast.T_float_lit 0.0)
  | Types.Bool -> mk Types.Bool loc (Tast.T_bool_lit false)
  | Types.Bit -> mk Types.Bit loc (Tast.T_enum_lit ("bit", 0))
  | Types.Void | Types.Enum _ | Types.Array _ | Types.Instance _ | Types.Task _
    ->
    err ~loc "a variable of type %s must be initialized" (Types.to_string ty)

let check_lvalue ctx loc (lv : A.lvalue) : Tast.lvalue * Types.ty =
  match lv with
  | A.Lv_name s -> (
    match lookup_var ctx s with
    | Some ty -> Tast.TLv_var (s, ty), ty
    | None -> (
      match field_slot ctx s with
      | Some (slot, ty) ->
        if ctx.cur_static then
          err ~loc "field '%s' cannot be assigned from a static method" s;
        Tast.TLv_field (s, slot, ty), ty
      | None -> err ~loc "unknown variable '%s'" s))
  | A.Lv_index (a, i) -> (
    let a = check_expr ctx a in
    let i = coerce loc (check_expr ctx i) Types.Int in
    match a.ty with
    | Types.Array (elt, Types.Mut) -> Tast.TLv_index (a, i), elt
    | Types.Array (_, Types.Immut) ->
      err ~loc "value arrays are immutable and cannot be assigned"
    | t -> err ~loc "cannot index-assign a value of type %s" (Types.to_string t))

let lvalue_as_expr loc (lv : Tast.lvalue) : Tast.expr =
  match lv with
  | Tast.TLv_var (s, ty) -> mk ty loc (Tast.T_var s)
  | Tast.TLv_index (a, i) -> (
    match a.ty with
    | Types.Array (elt, _) -> mk elt loc (Tast.T_index (a, i))
    | _ -> assert false)
  | Tast.TLv_field (name, slot, ty) -> mk ty loc (Tast.T_field_get (name, slot))

let rec check_stmt ctx (s : A.stmt) : Tast.stmt =
  let loc = s.sloc in
  let st d : Tast.stmt = { sdesc = d; sloc = loc } in
  match s.sdesc with
  | A.Var_decl (ty_ast, name, init) ->
    let init_t, ty =
      match ty_ast, init with
      | Some ty_ast, Some e ->
        let ty = resolve_ty ctx.genv loc ty_ast in
        coerce loc (check_expr ctx e) ty, ty
      | Some ty_ast, None ->
        let ty = resolve_ty ctx.genv loc ty_ast in
        default_init loc ty, ty
      | None, Some e ->
        let e = check_expr ctx e in
        if Types.equal e.ty Types.Void then
          err ~loc "cannot bind 'var %s' to a void expression" name;
        e, e.ty
      | None, None -> err ~loc "'var %s' needs an initializer" name
    in
    declare_var ctx loc name ty;
    st (Tast.TS_decl (name, ty, init_t))
  | A.Assign (lv, e) ->
    let lv, ty = check_lvalue ctx loc lv in
    st (Tast.TS_assign (lv, coerce loc (check_expr ctx e) ty))
  | A.Op_assign (op, lv, e) ->
    let tlv, _ty = check_lvalue ctx loc lv in
    let cur = lvalue_as_expr loc tlv in
    let rhs =
      check_binop_t ctx loc op cur (check_expr ctx e)
    in
    st (Tast.TS_assign (tlv, coerce loc rhs cur.ty))
  | A.Incr lv ->
    let tlv, ty = check_lvalue ctx loc lv in
    if not (Types.equal ty Types.Int) then err ~loc "'++' needs an int";
    let cur = lvalue_as_expr loc tlv in
    let one = mk Types.Int loc (Tast.T_int_lit 1) in
    st (Tast.TS_assign (tlv, mk Types.Int loc (Tast.T_binop (A.Add, cur, one))))
  | A.Decr lv ->
    let tlv, ty = check_lvalue ctx loc lv in
    if not (Types.equal ty Types.Int) then err ~loc "'--' needs an int";
    let cur = lvalue_as_expr loc tlv in
    let one = mk Types.Int loc (Tast.T_int_lit 1) in
    st (Tast.TS_assign (tlv, mk Types.Int loc (Tast.T_binop (A.Sub, cur, one))))
  | A.If (c, then_, else_) ->
    let c = coerce loc (check_expr ctx c) Types.Bool in
    let then_ = check_block ctx then_ in
    let else_ = match else_ with None -> [] | Some b -> check_block ctx b in
    st (Tast.TS_if (c, then_, else_))
  | A.While (c, body) ->
    let c = coerce loc (check_expr ctx c) Types.Bool in
    st (Tast.TS_while (c, check_block ctx body))
  | A.For (init, cond, update, body) ->
    push_scope ctx;
    let init = Option.map (check_stmt ctx) init in
    let cond =
      Option.map (fun c -> coerce loc (check_expr ctx c) Types.Bool) cond
    in
    let update = Option.map (check_stmt ctx) update in
    let body = check_block ctx body in
    pop_scope ctx;
    st (Tast.TS_for (init, cond, update, body))
  | A.Return None ->
    if not (Types.equal ctx.cur_ret Types.Void) then
      err ~loc "this method must return a %s" (Types.to_string ctx.cur_ret);
    st (Tast.TS_return None)
  | A.Return (Some e) ->
    if Types.equal ctx.cur_ret Types.Void then
      err ~loc "a void method cannot return a value";
    st (Tast.TS_return (Some (coerce loc (check_expr ctx e) ctx.cur_ret)))
  | A.Expr_stmt e -> st (Tast.TS_expr (check_expr ctx e))
  | A.Block b -> st (Tast.TS_block (check_block ctx b))

and check_binop_t ctx loc op (a : Tast.expr) (b : Tast.expr) : Tast.expr =
  (* Re-type a binop whose operands are already typed (op-assign). *)
  ignore ctx;
  match op with
  | A.Add | A.Sub | A.Mul | A.Div | A.Rem -> (
    match a.ty, b.ty with
    | Types.Int, Types.Int -> mk Types.Int loc (Tast.T_binop (op, a, b))
    | Types.Float, Types.Float -> mk Types.Float loc (Tast.T_binop (op, a, b))
    | Types.Float, Types.Int ->
      mk Types.Float loc (Tast.T_binop (op, a, coerce loc b Types.Float))
    | Types.Int, Types.Float ->
      mk Types.Float loc (Tast.T_binop (op, coerce loc a Types.Float, b))
    | ta, tb ->
      err ~loc "arithmetic on %s and %s" (Types.to_string ta)
        (Types.to_string tb))
  | _ -> err ~loc "unsupported compound assignment operator"

and check_block ctx (b : A.block) : Tast.stmt list =
  push_scope ctx;
  let stmts = List.map (check_stmt ctx) b in
  pop_scope ctx;
  stmts

(* ------------------------------------------------------------------ *)
(* Declarations                                                       *)
(* ------------------------------------------------------------------ *)

let check_method genv owner (sigs : msig) (m : A.method_decl) : Tast.method_info
    =
  let ctx =
    {
      genv;
      cur_owner = owner;
      cur_static = sigs.sg_static;
      cur_local = sigs.sg_local;
      cur_ret = sigs.sg_ret;
      scopes = [ sigs.sg_params ];
    }
  in
  let body = check_block ctx m.m_body in
  let pure =
    sigs.sg_static && sigs.sg_local
    && List.for_all (fun (_, t) -> Types.is_value t) sigs.sg_params
    && Types.is_value sigs.sg_ret
  in
  {
    mi_key = sigs.sg_key;
    mi_static = sigs.sg_static;
    mi_local = sigs.sg_local;
    mi_pure = pure;
    mi_params = sigs.sg_params;
    mi_ret = sigs.sg_ret;
    mi_body = body;
    mi_loc = m.m_loc;
  }

(* The builtin [~] of bit: [return this == zero ? one : zero]. *)
let builtin_bit_not : Tast.method_info =
  let loc = Srcloc.dummy in
  let this = mk Types.Bit loc Tast.T_this in
  let zero = mk Types.Bit loc (Tast.T_enum_lit ("bit", 0)) in
  let one = mk Types.Bit loc (Tast.T_enum_lit ("bit", 1)) in
  let cond =
    mk Types.Bool loc (Tast.T_binop (Lime_syntax.Ast.Eq, this, zero))
  in
  {
    mi_key = { Tast.mclass = "bit"; mmethod = "~" };
    mi_static = false;
    mi_local = true;
    mi_pure = false;
    mi_params = [];
    mi_ret = Types.Bit;
    mi_body =
      [
        {
          Tast.sdesc =
            Tast.TS_return (Some (mk Types.Bit loc (Tast.T_cond (cond, one, zero))));
          sloc = loc;
        };
      ];
    mi_loc = loc;
  }

let check (prog : A.program) : Tast.program =
  let genv = collect_signatures prog in
  let enums = ref String_map.empty in
  let classes = ref String_map.empty in
  List.iter
    (fun decl ->
      match decl with
      | A.D_enum e ->
        let owner = String_map.find e.e_name genv.owners in
        let methods =
          List.map
            (fun (m : A.method_decl) ->
              let s =
                List.find
                  (fun s -> s.sg_key.Tast.mmethod = m.m_name)
                  owner.ow_methods
              in
              check_method genv owner s m)
            e.e_methods
        in
        enums :=
          String_map.add e.e_name
            {
              Tast.ei_name = e.e_name;
              ei_cases = String_map.find e.e_name genv.enum_cases;
              ei_methods = methods;
            }
            !enums
      | A.D_class k ->
        let owner = String_map.find k.k_name genv.owners in
        let methods =
          List.map
            (fun (m : A.method_decl) ->
              let s =
                List.find
                  (fun s -> s.sg_key.Tast.mmethod = m.m_name)
                  owner.ow_methods
              in
              check_method genv owner s m)
            k.k_methods
        in
        let fields =
          List.mapi
            (fun slot (f : A.field_decl) ->
              let ty = resolve_ty genv f.f_loc f.f_ty in
              let ctx =
                {
                  genv;
                  cur_owner = owner;
                  cur_static = false;
                  cur_local = false;
                  cur_ret = Types.Void;
                  scopes = [ [] ];
                }
              in
              {
                Tast.fi_name = f.f_name;
                fi_ty = ty;
                fi_slot = slot;
                fi_init =
                  Option.map
                    (fun e -> coerce f.f_loc (check_expr ctx e) ty)
                    f.f_init;
              })
            k.k_fields
        in
        let ctors =
          List.map2
            (fun (c : A.ctor_decl) (cs : csig) ->
              let ctx =
                {
                  genv;
                  cur_owner = owner;
                  cur_static = false;
                  cur_local = cs.cg_local;
                  cur_ret = Types.Void;
                  scopes = [ cs.cg_params ];
                }
              in
              let body = check_block ctx c.c_body in
              {
                Tast.ci_local = cs.cg_local;
                ci_isolating =
                  cs.cg_local
                  && List.for_all (fun (_, t) -> Types.is_value t) cs.cg_params;
                ci_params = cs.cg_params;
                ci_body = body;
              })
            k.k_ctors owner.ow_ctors
        in
        classes :=
          String_map.add k.k_name
            {
              Tast.ki_name = k.k_name;
              ki_is_value = k.k_is_value;
              ki_fields = fields;
              ki_ctors = ctors;
              ki_methods = methods;
            }
            !classes)
    prog.decls;
  (* Install the builtin bit enum when the program did not declare it;
     when it did, make sure the operator method is present. *)
  (match String_map.find_opt "bit" !enums with
  | None ->
    enums :=
      String_map.add "bit"
        {
          Tast.ei_name = "bit";
          ei_cases = builtin_bit_cases;
          ei_methods = [ builtin_bit_not ];
        }
        !enums
  | Some e ->
    if
      not
        (List.exists (fun m -> m.Tast.mi_key.Tast.mmethod = "~") e.ei_methods)
    then
      enums :=
        String_map.add "bit"
          { e with ei_methods = builtin_bit_not :: e.ei_methods }
          !enums);
  { Tast.enums = !enums; classes = !classes }
