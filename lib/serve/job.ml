type deadline = Interactive | Batch

let deadline_name = function Interactive -> "interactive" | Batch -> "batch"

type tenant = { t_name : string; t_weight : int; t_quota : int }

type spec = {
  j_id : int;
  j_tenant : string;
  j_workload : string;
  j_size : int;
  j_arrival_ns : float;
  j_class : deadline;
}

type load = { l_tenants : tenant list; l_jobs : spec list }

exception Parse_error of string

let fail line fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "line %d: %s" line m))) fmt

(* Stable sort by arrival keeps submission order among simultaneous
   arrivals, then re-number so j_id is dense in schedule order. *)
let finish tenants jobs =
  let jobs =
    List.stable_sort (fun a b -> compare a.j_arrival_ns b.j_arrival_ns) jobs
  in
  let jobs = List.mapi (fun i j -> { j with j_id = i }) jobs in
  { l_tenants = List.rev tenants; l_jobs = jobs }

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let parse_kv line w =
  match String.index_opt w '=' with
  | Some i ->
      ( String.sub w 0 i,
        String.sub w (i + 1) (String.length w - i - 1) )
  | None -> fail line "expected key=value, got %S" w

let int_of line k v =
  match int_of_string_opt v with
  | Some n -> n
  | None -> fail line "%s wants an integer, got %S" k v

let float_of line k v =
  match float_of_string_opt v with
  | Some f -> f
  | None -> fail line "%s wants a number, got %S" k v

let parse text =
  let tenants = ref [] and jobs = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let ln = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      match split_words line with
      | [] -> ()
      | "tenant" :: name :: opts ->
          let weight = ref 1 and quota = ref max_int in
          List.iter
            (fun w ->
              match parse_kv ln w with
              | "weight", v -> weight := int_of ln "weight" v
              | "quota", v -> quota := int_of ln "quota" v
              | k, _ -> fail ln "unknown tenant option %S" k)
            opts;
          tenants :=
            { t_name = name; t_weight = !weight; t_quota = !quota } :: !tenants
      | "job" :: tenant :: workload :: opts ->
          let size = ref (-1)
          and at = ref 0.0
          and count = ref 1
          and every = ref 0.0
          and cls = ref Batch in
          List.iter
            (fun w ->
              match parse_kv ln w with
              | "size", v -> size := int_of ln "size" v
              | "at", v -> at := float_of ln "at" v
              | "count", v -> count := int_of ln "count" v
              | "every", v -> every := float_of ln "every" v
              | "class", v -> (
                  match v with
                  | "interactive" -> cls := Interactive
                  | "batch" -> cls := Batch
                  | _ -> fail ln "class is interactive or batch, got %S" v)
              | k, _ -> fail ln "unknown job option %S" k)
            opts;
          let size =
            if !size >= 0 then !size
            else
              match Workloads.find workload with
              | w -> w.Workloads.default_size
              | exception Not_found -> fail ln "unknown workload %S" workload
          in
          if !count < 1 then fail ln "count must be >= 1";
          for k = 0 to !count - 1 do
            jobs :=
              {
                j_id = 0;
                j_tenant = tenant;
                j_workload = workload;
                j_size = size;
                j_arrival_ns = !at +. (float_of_int k *. !every);
                j_class = !cls;
              }
              :: !jobs
          done
      | w :: _ -> fail ln "unknown directive %S" w)
    lines;
  finish !tenants (List.rev !jobs)

let parse_file path =
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error m -> raise (Parse_error m)
  in
  parse text

let synthetic ?(quota = max_int) ?(workloads = [ "saxpy" ]) ?(size = 256)
    ?(jobs_per_tenant = 8) ?(interarrival_ns = 50_000.0) ?(seed = 1)
    tenants =
  if workloads = [] then raise (Parse_error "synthetic: no workloads");
  let wls = Array.of_list workloads in
  let jobs =
    List.concat
      (List.mapi
         (fun ti (name, _) ->
           let rng =
             Workloads.Rng.create
               ~seed:(Int64.of_int ((seed * 1009) + (ti * 7919) + 17))
               ()
           in
           let t = ref 0.0 in
           List.init jobs_per_tenant (fun k ->
               let jitter = 0.5 +. Workloads.Rng.float rng in
               let arrival = !t in
               t := !t +. (interarrival_ns *. jitter);
               {
                 j_id = 0;
                 j_tenant = name;
                 j_workload = wls.(k mod Array.length wls);
                 j_size = size;
                 j_arrival_ns = arrival;
                 j_class = Batch;
               }))
         tenants)
  in
  let tenants =
    List.rev_map
      (fun (name, weight) ->
        { t_name = name; t_weight = weight; t_quota = quota })
      tenants
  in
  finish tenants jobs

let validate load =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* () =
    if load.l_tenants = [] then err "no tenants declared" else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc t ->
        let* () = acc in
        let* () =
          if t.t_weight < 1 then err "tenant %s: weight must be >= 1" t.t_name
          else Ok ()
        in
        if t.t_quota < 1 then err "tenant %s: quota must be >= 1" t.t_name
        else Ok ())
      (Ok ()) load.l_tenants
  in
  let* () =
    let names = List.map (fun t -> t.t_name) load.l_tenants in
    if List.length (List.sort_uniq compare names) <> List.length names then
      err "duplicate tenant names"
    else Ok ()
  in
  List.fold_left
    (fun acc j ->
      let* () = acc in
      let* () =
        if List.exists (fun t -> t.t_name = j.j_tenant) load.l_tenants then
          Ok ()
        else err "job %d: unknown tenant %S" j.j_id j.j_tenant
      in
      let* () =
        match Workloads.find j.j_workload with
        | _ -> Ok ()
        | exception Not_found ->
            err "job %d: unknown workload %S" j.j_id j.j_workload
      in
      if j.j_size < 1 then err "job %d: size must be >= 1" j.j_id
      else if j.j_arrival_ns < 0.0 then err "job %d: negative arrival" j.j_id
      else Ok ())
    (Ok ()) load.l_jobs

let render load =
  let b = Buffer.create 256 in
  List.iter
    (fun t ->
      Buffer.add_string b
        (if t.t_quota = max_int then
           Printf.sprintf "tenant %s weight=%d\n" t.t_name t.t_weight
         else
           Printf.sprintf "tenant %s weight=%d quota=%d\n" t.t_name t.t_weight
             t.t_quota))
    load.l_tenants;
  List.iter
    (fun j ->
      Buffer.add_string b
        (Printf.sprintf "job %s %s size=%d at=%.0f class=%s\n" j.j_tenant
           j.j_workload j.j_size j.j_arrival_ns (deadline_name j.j_class)))
    load.l_jobs;
  Buffer.contents b
