(** Jobs, tenants and job files for the multi-tenant engine (see
    [docs/SERVE.md]).

    A {e job} is one request to run a workload of the benchmark suite
    ([lib/workloads]) over a stream of a given size, submitted by a
    {e tenant} at a virtual arrival time. Tenants carry a fairness
    weight (their share of contended device time under weighted
    deficit round-robin) and an admission quota (the maximum number of
    their jobs allowed in the system at once; arrivals beyond it are
    rejected, not queued). A {e load} is the full scripted input to
    one [lmc serve] run: the tenant table plus the arrival schedule.

    Everything is deterministic — arrival times are modeled
    nanoseconds on the same virtual clock the runtime's cost models
    use, and the synthetic generator draws its jitter from the
    workload suite's xorshift generator — so a load replays
    bit-identically. *)

type deadline = Interactive | Batch

val deadline_name : deadline -> string

type tenant = {
  t_name : string;
  t_weight : int;  (** WDRR share of contended device time, >= 1 *)
  t_quota : int;  (** max outstanding (admitted, uncompleted) jobs *)
}

type spec = {
  j_id : int;  (** dense, assigned in submission order *)
  j_tenant : string;
  j_workload : string;  (** a [Workloads.find] name *)
  j_size : int;  (** stream length passed to the workload *)
  j_arrival_ns : float;  (** virtual arrival time *)
  j_class : deadline;
}

type load = { l_tenants : tenant list; l_jobs : spec list (** by arrival *) }

exception Parse_error of string

val parse : string -> load
(** Parse a job file. The grammar, one directive per line ([#]
    comments and blank lines ignored):

    {v
    tenant NAME weight=W [quota=Q]
    job TENANT WORKLOAD [size=N] [at=NS] [count=K] [every=NS] [class=interactive|batch]
    v}

    [count]/[every] expand one directive into [K] arrivals spaced
    [every] apart starting at [at]. Defaults: [size] the workload's
    default, [at] 0, [count] 1, [every] 0, [class] batch, [quota]
    unlimited. @raise Parse_error with a line number on bad input. *)

val parse_file : string -> load
(** [parse] on a file's contents. @raise Parse_error (also for an
    unreadable file). *)

val synthetic :
  ?quota:int ->
  ?workloads:string list ->
  ?size:int ->
  ?jobs_per_tenant:int ->
  ?interarrival_ns:float ->
  ?seed:int ->
  (string * int) list ->
  load
(** [synthetic tenants] builds an open-loop arrival schedule: each
    tenant of [(name, weight)] submits [jobs_per_tenant] (default 8)
    jobs cycling through [workloads] (default ["saxpy"]), sized [size]
    (default 256), with exponential-ish interarrival gaps — a
    deterministic jitter in [0.5x, 1.5x) of [interarrival_ns] (default
    50_000) drawn from {!Workloads.Rng} keyed by [seed] and the tenant
    index, so tenants' schedules differ but replay identically. *)

val validate : load -> (unit, string) result
(** Check tenant-table well-formedness (unique names, positive weights
    and quotas) and that every job names a known tenant and a known
    workload with a positive size. *)

val render : load -> string
(** The load back in job-file syntax (one [job] line per arrival). *)
