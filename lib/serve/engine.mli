(** The multi-tenant job engine behind [lmc serve] (see
    [docs/SERVE.md]).

    One long-lived engine hosts many concurrent jobs over the shared
    device pool: admission control (per-tenant quotas), weighted
    deficit round-robin across tenant queues, a data-aware scoring
    step that places each job where its calibrated makespan plus
    boundary traffic is cheapest — jobs whose artifacts are already
    resident on a device ({!Runtime.Store.is_resident}) prefer it —
    and batching of back-to-back small jobs of the same shape into one
    device occupancy window.

    Time is virtual: the engine is a discrete-event simulation over
    the same deterministic modeled-nanosecond clock the runtime's cost
    models use ({!Runtime.Exec.modeled_ns}), so a run is bit-stable
    and needs no real concurrency or networking. Device occupancy is
    modeled as per-device slot timelines; every job still {e really
    executes} through a shared per-workload co-execution engine — the
    policy pinned to the scheduler's chosen device — so outputs,
    faults, retries, quarantines and re-substitutions are all real,
    and each job's output is bit-identical to a solo [lmc run]. Job
    service times are measured (modeled-ns deltas), not predicted, and
    per-job metrics come from {!Runtime.Metrics.diff} against the
    shared accumulator. *)

type config = {
  c_slots : (string * int) list;
      (** concurrent occupancy windows per device, over
          ["gpu"]/["fpga"]/["native"]/["vm"]; devices absent or at 0
          take no jobs *)
  c_quantum_ns : float;  (** WDRR quantum per unit of tenant weight *)
  c_batch_window_ns : float;
      (** dispatches of the same (workload, size, device) within this
          window coalesce into one occupancy window *)
  c_batch_max : int;  (** max jobs per coalesced window *)
  c_profile_path : string;  (** placement profile store *)
}

val default_config : config
(** One slot per device, 1us quantum (fine-grained weighted
    interleaving — well below typical job makespans), 10us batch
    window of up to 4 jobs, profiles in [lm.profiles]. *)

type job_result = {
  jr_spec : Job.spec;
  jr_device : string;
  jr_start_ns : float;  (** occupancy-window start (virtual) *)
  jr_finish_ns : float;  (** completion (virtual) *)
  jr_service_ns : float;  (** measured modeled-ns of the execution *)
  jr_predicted_ns : float;  (** the score the scheduler dispatched on *)
  jr_batched : bool;  (** shared its occupancy window *)
  jr_output : string;  (** [Lm.show] of the result value *)
  jr_metrics : Runtime.Metrics.snapshot;  (** this job's share *)
}

type tenant_report = {
  tr_tenant : Job.tenant;
  tr_submitted : int;
  tr_admitted : int;
  tr_rejected : int;  (** quota rejections *)
  tr_completed : int;
  tr_peak_outstanding : int;  (** max admitted-but-uncompleted *)
  tr_service_ns : float;
  tr_contended_service_ns : float;
      (** device time received while every tenant still had work —
          the window the fairness ratios are judged over *)
  tr_latencies_ns : float array;  (** arrival -> completion, per job *)
  tr_throughput_jps : float;  (** completed per virtual second *)
}

type device_report = {
  dr_device : string;
  dr_slots : int;
  dr_windows : int;  (** occupancy windows opened *)
  dr_jobs : int;
  dr_batched_jobs : int;  (** jobs that shared a window *)
  dr_busy_ns : float;
  dr_peak_occupancy : int;  (** never exceeds [dr_slots] *)
}

type report = {
  sr_wall_ns : float;  (** virtual time from first arrival to drain *)
  sr_contended_until_ns : float;
  sr_tenants : tenant_report list;
  sr_devices : device_report list;
  sr_jobs : job_result list;  (** by job id *)
}

exception Serve_error of string

val run : ?config:config -> Job.load -> report
(** Admit, schedule and really execute a load to drain.
    @raise Serve_error on an invalid load or config (e.g. zero slots
    everywhere). *)

val solo_output : Job.spec -> string
(** The job run alone through a fresh session under the default
    policy — the bit-identity baseline ([Lm.show] of the result). *)

val render : report -> string
(** Per-tenant table (throughput, p50/p95/p99 latency, fairness
    shares), per-device table, and totals. *)

val render_json : report -> string
