module Stats = Support.Stats
module Trace = Support.Trace
module Exec = Runtime.Exec
module Metrics = Runtime.Metrics
module Store = Runtime.Store
module Artifact = Runtime.Artifact
module Substitute = Runtime.Substitute
module Planner = Placement.Planner
module Calibrate = Placement.Calibrate
module Profile = Placement.Profile
module Compiler = Liquid_metal.Compiler
module Lm = Liquid_metal.Lm

type config = {
  c_slots : (string * int) list;
  c_quantum_ns : float;
  c_batch_window_ns : float;
  c_batch_max : int;
  c_profile_path : string;
}

let default_config =
  {
    c_slots = [ ("gpu", 1); ("fpga", 1); ("native", 1); ("vm", 1) ];
    c_quantum_ns = 1_000.0;
    c_batch_window_ns = 10_000.0;
    c_batch_max = 4;
    c_profile_path = "lm.profiles";
  }

type job_result = {
  jr_spec : Job.spec;
  jr_device : string;
  jr_start_ns : float;
  jr_finish_ns : float;
  jr_service_ns : float;
  jr_predicted_ns : float;
  jr_batched : bool;
  jr_output : string;
  jr_metrics : Metrics.snapshot;
}

type tenant_report = {
  tr_tenant : Job.tenant;
  tr_submitted : int;
  tr_admitted : int;
  tr_rejected : int;
  tr_completed : int;
  tr_peak_outstanding : int;
  tr_service_ns : float;
  tr_contended_service_ns : float;
  tr_latencies_ns : float array;
  tr_throughput_jps : float;
}

type device_report = {
  dr_device : string;
  dr_slots : int;
  dr_windows : int;
  dr_jobs : int;
  dr_batched_jobs : int;
  dr_busy_ns : float;
  dr_peak_occupancy : int;
}

type report = {
  sr_wall_ns : float;
  sr_contended_until_ns : float;
  sr_tenants : tenant_report list;
  sr_devices : device_report list;
  sr_jobs : job_result list;
}

exception Serve_error of string

let serve_error fmt = Printf.ksprintf (fun m -> raise (Serve_error m)) fmt

(* The schedulable devices, in deterministic preference order for
   score ties. "vm" is the interpreter: always available, no artifact. *)
let devices =
  [
    ("gpu", Some Artifact.Gpu);
    ("fpga", Some Artifact.Fpga);
    ("native", Some Artifact.Native);
    ("vm", None);
  ]

(* One boundary crossing's latency: what a coalesced launch saves per
   extra job (both directions) and what residency saves per staged
   artifact. Matches the runtime's boundary models (PCIe-class for
   accelerators, JNI for native, nothing for the interpreter). *)
let boundary_latency = function
  | "gpu" | "fpga" -> 10_000.0
  | "native" -> 800.0
  | _ -> 0.0

(* ---------- per-workload compilation cache ---------- *)

type dev_plan = {
  dp_makespan : float;
  dp_artifacts : (Artifact.device * string) list;  (* device, uid *)
}

type plan_info = {
  p_cost : float;  (* calibrated best makespan: the WDRR debit *)
  p_devices : (string * dev_plan) list;
}

type wl = {
  w_workload : Workloads.t;
  w_engine : Exec.t;
  w_ctx : Calibrate.ctx;
  w_plans : (int, plan_info) Hashtbl.t;
}

(* ---------- virtual-time state ---------- *)

type pending_job = {
  pj_spec : Job.spec;
  pj_service : float;
  pj_predicted : float;
  pj_output : string;
  pj_metrics : Metrics.snapshot;
}

type window = {
  w_device : string;
  w_created : float;  (* dispatch time of the first job *)
  mutable w_start : float;
  mutable w_end : float;
  mutable w_jobs : pending_job list;  (* newest first *)
  mutable w_done : bool;
}

type slot = { mutable sl_free : float; mutable sl_tail : window option }

type dstate = {
  ds_name : string;
  ds_art : Artifact.device option;
  ds_slots : slot array;
}

type tstate = {
  ts_tenant : Job.tenant;
  ts_queue : Job.spec Queue.t;
  mutable ts_deficit : float;
  mutable ts_outstanding : int;
  mutable ts_peak : int;
  mutable ts_submitted : int;
  mutable ts_admitted : int;
  mutable ts_rejected : int;
  mutable ts_completed : int;
  mutable ts_service : float;
  mutable ts_latencies : float list;  (* completion order, reversed *)
}

let run ?(config = default_config) load =
  (match Job.validate load with
  | Ok () -> ()
  | Error m -> raise (Serve_error m));
  let slots_of name =
    Option.value (List.assoc_opt name config.c_slots) ~default:0
  in
  let devs =
    List.filter_map
      (fun (name, art) ->
        let n = slots_of name in
        if n <= 0 then None
        else
          Some
            {
              ds_name = name;
              ds_art = art;
              ds_slots =
                Array.init n (fun _ -> { sl_free = 0.0; sl_tail = None });
            })
      devices
  in
  if devs = [] then serve_error "no device slots configured";
  if config.c_quantum_ns <= 0.0 then serve_error "quantum must be positive";
  if config.c_batch_max < 1 then serve_error "batch_max must be >= 1";

  let profile_store = Profile.load config.c_profile_path in
  let wl_cache = Hashtbl.create 7 in
  let wl_of name =
    match Hashtbl.find_opt wl_cache name with
    | Some w -> w
    | None ->
        let workload = Workloads.find name in
        let compiled =
          Compiler.compile ~file:(name ^ ".lime") workload.Workloads.source
        in
        let ctx = Calibrate.create ~profile_store compiled in
        let engine = Compiler.engine compiled in
        Exec.set_cost_model engine (Planner.cost_fn ctx);
        let w =
          {
            w_workload = workload;
            w_engine = engine;
            w_ctx = ctx;
            w_plans = Hashtbl.create 4;
          }
        in
        Hashtbl.add wl_cache name w;
        w
  in
  (* Per-(workload, size) placement prediction: one planner pass gives
     every device's calibrated makespan plus the artifact set the plan
     would stage there (the residency-bonus join key). *)
  let plan_of w n =
    match Hashtbl.find_opt w.w_plans n with
    | Some p -> p
    | None ->
        let report = Planner.plan w.w_ctx ~n in
        let cand_name = function "vm" -> "bytecode" | d -> d ^ "-only" in
        let per_device =
          List.map
            (fun (dname, _) ->
              let ms, arts =
                List.fold_left
                  (fun (ms, arts) g ->
                    let c =
                      match
                        List.find_opt
                          (fun c -> c.Planner.cd_name = cand_name dname)
                          g.Planner.gp_candidates
                      with
                      | Some c -> c
                      | None -> g.Planner.gp_planned
                    in
                    let arts' =
                      List.filter_map
                        (function
                          | Substitute.S_device (a, _) ->
                              Some (Artifact.device a, Artifact.uid a)
                          | Substitute.S_bytecode _ -> None)
                        c.Planner.cd_plan
                    in
                    (ms +. c.Planner.cd_makespan_ns, arts' @ arts))
                  (0.0, []) report.Planner.rp_graphs
              in
              (dname, { dp_makespan = ms; dp_artifacts = arts }))
            devices
        in
        let cost =
          List.fold_left
            (fun acc g -> acc +. g.Planner.gp_planned.Planner.cd_makespan_ns)
            0.0 report.Planner.rp_graphs
        in
        let p = { p_cost = Float.max cost 1.0; p_devices = per_device } in
        Hashtbl.add w.w_plans n p;
        p
  in

  let tstates =
    List.map
      (fun t ->
        {
          ts_tenant = t;
          ts_queue = Queue.create ();
          ts_deficit = 0.0;
          ts_outstanding = 0;
          ts_peak = 0;
          ts_submitted = 0;
          ts_admitted = 0;
          ts_rejected = 0;
          ts_completed = 0;
          ts_service = 0.0;
          ts_latencies = [];
        })
      load.Job.l_tenants
  in
  let tstate_of name =
    List.find (fun ts -> ts.ts_tenant.Job.t_name = name) tstates
  in
  let windows = ref [] in

  let earliest_free d =
    let best = ref 0 in
    Array.iteri
      (fun i sl -> if sl.sl_free < d.ds_slots.(!best).sl_free then best := i)
      d.ds_slots;
    (!best, d.ds_slots.(!best).sl_free)
  in

  (* Data-aware score: when would this job finish on device [d]?
     Queue delay on the device's least-loaded slot, plus the
     calibrated makespan, minus a residency credit for every artifact
     of the plan already staged there (those boundary crossings were
     already paid by an earlier job). *)
  let score now w p d =
    let dplan = List.assoc d.ds_name p.p_devices in
    let store = Exec.store w.w_engine in
    let bonus =
      List.fold_left
        (fun acc (dev, uid) ->
          if Some dev = d.ds_art && Store.is_resident store ~device:dev ~uid
          then acc +. (2.0 *. boundary_latency d.ds_name)
          else acc)
        0.0 dplan.dp_artifacts
    in
    let slot_i, free = earliest_free d in
    let start = Float.max now free in
    (start +. dplan.dp_makespan -. bonus, slot_i, start, dplan.dp_makespan)
  in

  let dispatch now spec =
    let w = wl_of spec.Job.j_workload in
    let p = plan_of w spec.Job.j_size in
    let best =
      List.fold_left
        (fun acc d ->
          let est, slot_i, start, ms = score now w p d in
          match acc with
          | Some (best_est, _, _, _, _) when best_est <= est -> acc
          | _ -> Some (est, d, slot_i, start, ms))
        None devs
    in
    let _, d, slot_i, start, makespan = Option.get best in
    let slot = d.ds_slots.(slot_i) in
    let coalesce =
      if d.ds_name = "vm" then None
      else
        match slot.sl_tail with
        | Some tw
          when (not tw.w_done)
               && (match tw.w_jobs with
                  | pj :: _ ->
                      pj.pj_spec.Job.j_workload = spec.Job.j_workload
                      && pj.pj_spec.Job.j_size = spec.Job.j_size
                  | [] -> false)
               && List.length tw.w_jobs < config.c_batch_max
               && now -. tw.w_created <= config.c_batch_window_ns ->
            Some tw
        | _ -> None
    in
    (* Really execute, pinned to the scheduler's choice. The engine is
       shared across the tenant's and everyone else's jobs of this
       workload — quarantines, residency and profiles are common state. *)
    let policy =
      match d.ds_art with
      | None -> Substitute.Bytecode_only
      | Some dev -> Substitute.Prefer_devices [ dev ]
    in
    Exec.set_policy w.w_engine policy;
    let m0 = Metrics.snapshot (Exec.metrics w.w_engine) in
    let t0 = Exec.modeled_ns w.w_engine in
    let out =
      Trace.with_span
        ~args:
          [
            ("tenant", Trace.Str spec.Job.j_tenant);
            ("workload", Trace.Str spec.Job.j_workload);
            ("device", Trace.Str d.ds_name);
            ("job", Trace.Int spec.Job.j_id);
            ("size", Trace.Int spec.Job.j_size);
          ]
        ~cat:"job"
        (Printf.sprintf "job:%s:%s" spec.Job.j_tenant spec.Job.j_workload)
        (fun () ->
          Exec.call w.w_engine w.w_workload.Workloads.entry
            (w.w_workload.Workloads.args ~size:spec.Job.j_size))
    in
    let service = Exec.modeled_ns w.w_engine -. t0 in
    let m1 = Metrics.snapshot (Exec.metrics w.w_engine) in
    (match w.w_workload.Workloads.validate with
    | Some check -> (
        match check ~size:spec.Job.j_size out with
        | Ok () -> ()
        | Error m ->
            serve_error "job %d (%s on %s): %s" spec.Job.j_id
              spec.Job.j_workload d.ds_name m)
    | None -> ());
    let pj =
      {
        pj_spec = spec;
        pj_service = service;
        pj_predicted = makespan;
        pj_output = Lm.show out;
        pj_metrics = Metrics.diff m1 m0;
      }
    in
    match coalesce with
    | Some tw ->
        (* One occupancy window, one pair of boundary crossings: the
           coalesced job rides the window's launch. *)
        let saving = 2.0 *. boundary_latency d.ds_name in
        tw.w_end <- tw.w_end +. Float.max 0.0 (service -. saving);
        tw.w_jobs <- pj :: tw.w_jobs;
        slot.sl_free <- tw.w_end
    | None ->
        let win =
          {
            w_device = d.ds_name;
            w_created = now;
            w_start = start;
            w_end = start +. service;
            w_jobs = [ pj ];
            w_done = false;
          }
        in
        slot.sl_free <- win.w_end;
        slot.sl_tail <- Some win;
        windows := win :: !windows
  in

  (* Weighted deficit round-robin over the tenant queues: each round
     credits quantum * weight; a tenant dispatches while its deficit
     covers the head job's calibrated cost. Rounds repeat until every
     queue drains (capacity is a timeline, so dispatch never blocks —
     contention shows up as queue delay on the slots). *)
  let wdrr now =
    let rec rounds () =
      if List.exists (fun ts -> not (Queue.is_empty ts.ts_queue)) tstates
      then begin
        List.iter
          (fun ts ->
            if not (Queue.is_empty ts.ts_queue) then begin
              ts.ts_deficit <-
                ts.ts_deficit
                +. (config.c_quantum_ns
                   *. float_of_int ts.ts_tenant.Job.t_weight);
              let rec drain () =
                match Queue.peek_opt ts.ts_queue with
                | Some spec ->
                    let w = wl_of spec.Job.j_workload in
                    let cost = (plan_of w spec.Job.j_size).p_cost in
                    if ts.ts_deficit >= cost then begin
                      ignore (Queue.pop ts.ts_queue);
                      ts.ts_deficit <- ts.ts_deficit -. cost;
                      dispatch now spec;
                      drain ()
                    end
                | None -> ()
              in
              drain ();
              if Queue.is_empty ts.ts_queue then ts.ts_deficit <- 0.0
            end)
          tstates;
        rounds ()
      end
    in
    rounds ()
  in

  let complete t =
    List.iter
      (fun w ->
        if (not w.w_done) && w.w_end <= t +. 1e-9 then begin
          w.w_done <- true;
          List.iter
            (fun pj ->
              let ts = tstate_of pj.pj_spec.Job.j_tenant in
              ts.ts_completed <- ts.ts_completed + 1;
              ts.ts_outstanding <- ts.ts_outstanding - 1;
              ts.ts_service <- ts.ts_service +. pj.pj_service;
              ts.ts_latencies <-
                (w.w_end -. pj.pj_spec.Job.j_arrival_ns) :: ts.ts_latencies)
            (List.rev w.w_jobs)
        end)
      !windows
  in
  let admit spec =
    let ts = tstate_of spec.Job.j_tenant in
    ts.ts_submitted <- ts.ts_submitted + 1;
    if ts.ts_outstanding >= ts.ts_tenant.Job.t_quota then
      ts.ts_rejected <- ts.ts_rejected + 1
    else begin
      ts.ts_admitted <- ts.ts_admitted + 1;
      ts.ts_outstanding <- ts.ts_outstanding + 1;
      ts.ts_peak <- max ts.ts_peak ts.ts_outstanding;
      Queue.push spec ts.ts_queue
    end
  in

  let pending = ref load.Job.l_jobs in
  let now = ref 0.0 in
  let next_completion () =
    List.fold_left
      (fun acc w ->
        if w.w_done then acc
        else
          match acc with
          | None -> Some w.w_end
          | Some t -> Some (Float.min t w.w_end))
      None !windows
  in
  let rec loop () =
    let next_arrival =
      match !pending with [] -> None | j :: _ -> Some j.Job.j_arrival_ns
    in
    match (next_arrival, next_completion ()) with
    | None, None -> ()
    | a, c ->
        let t =
          match (a, c) with
          | Some a, Some c -> Float.min a c
          | Some a, None -> a
          | None, Some c -> c
          | None, None -> assert false
        in
        now := Float.max !now t;
        (* completions free quota before simultaneous arrivals admit *)
        complete !now;
        let arrivals, rest =
          List.partition
            (fun j -> j.Job.j_arrival_ns <= !now +. 1e-9)
            !pending
        in
        pending := rest;
        List.iter admit arrivals;
        wdrr !now;
        loop ()
  in
  loop ();
  Profile.save profile_store;

  (* ---------- reporting ---------- *)
  let all_windows = List.rev !windows in
  let jobs =
    List.concat_map
      (fun w ->
        let batched = List.length w.w_jobs > 1 in
        List.rev_map
          (fun pj ->
            {
              jr_spec = pj.pj_spec;
              jr_device = w.w_device;
              jr_start_ns = w.w_start;
              jr_finish_ns = w.w_end;
              jr_service_ns = pj.pj_service;
              jr_predicted_ns = pj.pj_predicted;
              jr_batched = batched;
              jr_output = pj.pj_output;
              jr_metrics = pj.pj_metrics;
            })
          w.w_jobs)
      all_windows
    |> List.sort (fun a b -> compare a.jr_spec.Job.j_id b.jr_spec.Job.j_id)
  in
  let wall =
    List.fold_left (fun acc w -> Float.max acc w.w_end) 0.0 all_windows
  in
  (* The contended window: until the first tenant runs out of work,
     every tenant is competing, so the WDRR shares are judged there. *)
  let contended_until =
    let last_starts =
      List.filter_map
        (fun ts ->
          let starts =
            List.filter_map
              (fun jr ->
                if jr.jr_spec.Job.j_tenant = ts.ts_tenant.Job.t_name then
                  Some jr.jr_start_ns
                else None)
              jobs
          in
          match starts with
          | [] -> None
          | ss -> Some (List.fold_left Float.max 0.0 ss))
        tstates
    in
    match last_starts with
    | [] -> 0.0
    | ss -> List.fold_left Float.min wall ss
  in
  let tenants =
    List.map
      (fun ts ->
        let contended =
          List.fold_left
            (fun acc jr ->
              if
                jr.jr_spec.Job.j_tenant = ts.ts_tenant.Job.t_name
                && jr.jr_start_ns <= contended_until +. 1e-9
              then acc +. jr.jr_service_ns
              else acc)
            0.0 jobs
        in
        {
          tr_tenant = ts.ts_tenant;
          tr_submitted = ts.ts_submitted;
          tr_admitted = ts.ts_admitted;
          tr_rejected = ts.ts_rejected;
          tr_completed = ts.ts_completed;
          tr_peak_outstanding = ts.ts_peak;
          tr_service_ns = ts.ts_service;
          tr_contended_service_ns = contended;
          tr_latencies_ns = Array.of_list (List.rev ts.ts_latencies);
          tr_throughput_jps =
            (if wall > 0.0 then float_of_int ts.ts_completed /. (wall /. 1e9)
             else 0.0);
        })
      tstates
  in
  let dev_reports =
    List.map
      (fun d ->
        let mine = List.filter (fun w -> w.w_device = d.ds_name) all_windows in
        let jobs_of = List.fold_left (fun n w -> n + List.length w.w_jobs) 0 in
        let batched =
          List.fold_left
            (fun n w ->
              let k = List.length w.w_jobs in
              if k > 1 then n + k else n)
            0 mine
        in
        (* sweep the window intervals for the peak slot occupancy *)
        let edges =
          List.concat_map (fun w -> [ (w.w_start, 1); (w.w_end, -1) ]) mine
          |> List.sort (fun (ta, da) (tb, db) ->
                 match compare ta tb with 0 -> compare da db | c -> c)
        in
        let peak, _ =
          List.fold_left
            (fun (peak, cur) (_, d) ->
              let cur = cur + d in
              (max peak cur, cur))
            (0, 0) edges
        in
        {
          dr_device = d.ds_name;
          dr_slots = Array.length d.ds_slots;
          dr_windows = List.length mine;
          dr_jobs = jobs_of mine;
          dr_batched_jobs = batched;
          dr_busy_ns =
            List.fold_left (fun acc w -> acc +. (w.w_end -. w.w_start)) 0.0 mine;
          dr_peak_occupancy = peak;
        })
      devs
  in
  {
    sr_wall_ns = wall;
    sr_contended_until_ns = contended_until;
    sr_tenants = tenants;
    sr_devices = dev_reports;
    sr_jobs = jobs;
  }

let solo_output spec =
  let w = Workloads.find spec.Job.j_workload in
  let session = Lm.load w.Workloads.source in
  let out =
    Lm.run session w.Workloads.entry (w.Workloads.args ~size:spec.Job.j_size)
  in
  Lm.show out

(* ---------- rendering ---------- *)

let us ns = Printf.sprintf "%.1f" (ns /. 1e3)

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "serve: %d jobs, %d tenants, virtual wall %.1f us (contended %.1f us)\n\n"
       (List.length r.sr_jobs)
       (List.length r.sr_tenants)
       (r.sr_wall_ns /. 1e3)
       (r.sr_contended_until_ns /. 1e3));
  let total_contended =
    List.fold_left (fun acc t -> acc +. t.tr_contended_service_ns) 0.0
      r.sr_tenants
  in
  let tt =
    Stats.Table.create
      ~columns:
        [
          "tenant"; "weight"; "sub"; "adm"; "rej"; "done"; "jobs/s";
          "p50_us"; "p95_us"; "p99_us"; "share"; "fair";
        ]
  in
  List.iter
    (fun t ->
      let lats = Array.to_list t.tr_latencies_ns in
      let p50, p95, p99 =
        match lats with
        | [] -> ("-", "-", "-")
        | _ ->
            let s = Stats.summarize lats in
            (us s.Stats.p50, us s.Stats.p95, us s.Stats.p99)
      in
      let share =
        if total_contended > 0.0 then
          t.tr_contended_service_ns /. total_contended
        else 0.0
      in
      let total_weight =
        List.fold_left
          (fun acc t -> acc + t.tr_tenant.Job.t_weight)
          0 r.sr_tenants
      in
      let fair =
        float_of_int t.tr_tenant.Job.t_weight /. float_of_int total_weight
      in
      Stats.Table.add_row tt
        [
          t.tr_tenant.Job.t_name;
          string_of_int t.tr_tenant.Job.t_weight;
          string_of_int t.tr_submitted;
          string_of_int t.tr_admitted;
          string_of_int t.tr_rejected;
          string_of_int t.tr_completed;
          Printf.sprintf "%.0f" t.tr_throughput_jps;
          p50;
          p95;
          p99;
          Printf.sprintf "%.2f" share;
          Printf.sprintf "%.2f" fair;
        ])
    r.sr_tenants;
  Buffer.add_string b (Stats.Table.render tt);
  Buffer.add_char b '\n';
  let dt =
    Stats.Table.create
      ~columns:
        [ "device"; "slots"; "windows"; "jobs"; "batched"; "busy_us"; "peak" ]
  in
  List.iter
    (fun d ->
      Stats.Table.add_row dt
        [
          d.dr_device;
          string_of_int d.dr_slots;
          string_of_int d.dr_windows;
          string_of_int d.dr_jobs;
          string_of_int d.dr_batched_jobs;
          us d.dr_busy_ns;
          string_of_int d.dr_peak_occupancy;
        ])
    r.sr_devices;
  Buffer.add_string b (Stats.Table.render dt);
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"wall_ns\": %.1f, \"contended_until_ns\": %.1f, \"tenants\": ["
       r.sr_wall_ns r.sr_contended_until_ns);
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_string b ", ";
      let lats = Array.to_list t.tr_latencies_ns in
      let p50, p95, p99 =
        match lats with
        | [] -> (0.0, 0.0, 0.0)
        | _ ->
            let s = Stats.summarize lats in
            (s.Stats.p50, s.Stats.p95, s.Stats.p99)
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"tenant\": \"%s\", \"weight\": %d, \"submitted\": %d, \
            \"admitted\": %d, \"rejected\": %d, \"completed\": %d, \
            \"peak_outstanding\": %d, \"service_ns\": %.1f, \
            \"contended_service_ns\": %.1f, \"throughput_jps\": %.3f, \
            \"p50_ns\": %.1f, \"p95_ns\": %.1f, \"p99_ns\": %.1f}"
           (json_escape t.tr_tenant.Job.t_name)
           t.tr_tenant.Job.t_weight t.tr_submitted t.tr_admitted t.tr_rejected
           t.tr_completed t.tr_peak_outstanding t.tr_service_ns
           t.tr_contended_service_ns t.tr_throughput_jps p50 p95 p99))
    r.sr_tenants;
  Buffer.add_string b "], \"devices\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"device\": \"%s\", \"slots\": %d, \"windows\": %d, \"jobs\": \
            %d, \"batched_jobs\": %d, \"busy_ns\": %.1f, \"peak_occupancy\": \
            %d}"
           d.dr_device d.dr_slots d.dr_windows d.dr_jobs d.dr_batched_jobs
           d.dr_busy_ns d.dr_peak_occupancy))
    r.sr_devices;
  Buffer.add_string b "], \"jobs\": [";
  List.iteri
    (fun i j ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\": %d, \"tenant\": \"%s\", \"workload\": \"%s\", \"size\": \
            %d, \"device\": \"%s\", \"arrival_ns\": %.1f, \"start_ns\": \
            %.1f, \"finish_ns\": %.1f, \"service_ns\": %.1f, \
            \"predicted_ns\": %.1f, \"batched\": %b}"
           j.jr_spec.Job.j_id
           (json_escape j.jr_spec.Job.j_tenant)
           (json_escape j.jr_spec.Job.j_workload)
           j.jr_spec.Job.j_size j.jr_device j.jr_spec.Job.j_arrival_ns
           j.jr_start_ns j.jr_finish_ns j.jr_service_ns j.jr_predicted_ns
           j.jr_batched))
    r.sr_jobs;
  Buffer.add_string b "]}";
  Buffer.contents b
