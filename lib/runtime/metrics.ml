(* Execution metrics.

   The runtime accounts for everything the evaluation needs: VM
   instruction counts (CPU model), device kernel times (GPU/FPGA
   models), marshaling traffic (Figure 3) and the substitutions that
   were performed. *)

type snapshot = {
  vm_instructions : int;
  native_instructions : int;
      (** instructions executed inside native (compiled C) segments *)
  native_ns : float;
  gpu_kernels : int;
  gpu_kernel_ns : float;
  fpga_runs : int;
  fpga_cycles : int;
  fpga_ns : float;
  marshal : Wire.Boundary.stats;
      (** the accelerator (PCIe-class) boundary *)
  marshal_native : Wire.Boundary.stats;
      (** the JNI-only boundary used by native shared libraries *)
  substitutions : (string * Artifact.device) list;
      (** chain uid, chosen device — in execution order *)
  device_faults : int;  (** faults observed (injected or real) *)
  retries : int;  (** launch retries after a fault *)
  resubstitutions : int;  (** dynamic re-plans after retry exhaustion *)
  replans : int;
      (** online re-plans: a device underperformed its cost model *)
  backoff_ns : float;  (** modeled time spent backing off before retries *)
  sched_runs : int;  (** task-graph scheduler invocations *)
  sched_steady : int;  (** of which ran the steady-state schedule *)
  sched_fallbacks : int;
      (** steady-state requested but fell back to round-robin *)
  sched_rounds : int;  (** cumulative scheduling rounds *)
  sched_steps : int;  (** cumulative actor steps *)
  sched_blocked_steps : int;  (** cumulative blocked steps *)
  sched_cache_hits : int;
      (** steady-state schedules served from the session cache *)
}

type t = {
  mutable vm_instructions : int;
  mutable native_instructions : int;
  mutable gpu_kernels : int;
  mutable gpu_kernel_ns : float;
  mutable fpga_runs : int;
  mutable fpga_cycles : int;
  mutable fpga_ns : float;
  boundary : Wire.Boundary.t;
  native_boundary : Wire.Boundary.t;
  mutable substitutions : (string * Artifact.device) list;
  mutable device_faults : int;
  mutable retries : int;
  mutable resubstitutions : int;
  mutable replans : int;
  mutable backoff_ns : float;
  mutable sched_runs : int;
  mutable sched_steady : int;
  mutable sched_fallbacks : int;
  mutable sched_rounds : int;
  mutable sched_steps : int;
  mutable sched_blocked_steps : int;
  mutable sched_cache_hits : int;
}

(* Crossing into a dynamically loaded shared library is a JNI call:
   sub-microsecond latency and memcpy-class bandwidth, no PCIe. *)
let native_boundary_model () =
  Wire.Boundary.create ~label:"jni" ~latency_ns:800.0
    ~bandwidth_bytes_per_ns:24.0 ()

let create ?boundary () =
  {
    vm_instructions = 0;
    native_instructions = 0;
    gpu_kernels = 0;
    gpu_kernel_ns = 0.0;
    fpga_runs = 0;
    fpga_cycles = 0;
    fpga_ns = 0.0;
    boundary =
      (match boundary with
      | Some b -> b
      | None -> Wire.Boundary.create ~label:"pcie" ());
    native_boundary = native_boundary_model ();
    substitutions = [];
    device_faults = 0;
    retries = 0;
    resubstitutions = 0;
    replans = 0;
    backoff_ns = 0.0;
    sched_runs = 0;
    sched_steady = 0;
    sched_fallbacks = 0;
    sched_rounds = 0;
    sched_steps = 0;
    sched_blocked_steps = 0;
    sched_cache_hits = 0;
  }

let add_vm_instructions t n = t.vm_instructions <- t.vm_instructions + n

let add_native_instructions t n =
  t.native_instructions <- t.native_instructions + n

let add_gpu_kernel t ~ns =
  t.gpu_kernels <- t.gpu_kernels + 1;
  t.gpu_kernel_ns <- t.gpu_kernel_ns +. ns

let add_fpga_run t ~cycles ~ns =
  t.fpga_runs <- t.fpga_runs + 1;
  t.fpga_cycles <- t.fpga_cycles + cycles;
  t.fpga_ns <- t.fpga_ns +. ns

let add_substitution t uid device =
  t.substitutions <- (uid, device) :: t.substitutions

let add_device_fault t = t.device_faults <- t.device_faults + 1

let add_retry t ~backoff_ns =
  t.retries <- t.retries + 1;
  t.backoff_ns <- t.backoff_ns +. backoff_ns

let add_resubstitution t = t.resubstitutions <- t.resubstitutions + 1
let add_replan t = t.replans <- t.replans + 1
let add_sched_cache_hit t = t.sched_cache_hits <- t.sched_cache_hits + 1

let add_scheduler_run t ~steady ~fallback ~rounds ~steps ~blocked_steps =
  t.sched_runs <- t.sched_runs + 1;
  if steady then t.sched_steady <- t.sched_steady + 1;
  if fallback then t.sched_fallbacks <- t.sched_fallbacks + 1;
  t.sched_rounds <- t.sched_rounds + rounds;
  t.sched_steps <- t.sched_steps + steps;
  t.sched_blocked_steps <- t.sched_blocked_steps + blocked_steps

let boundary t = t.boundary
let native_boundary t = t.native_boundary

(* The CPU cost models. Interpreted bytecode dispatch costs ~6ns per
   instruction on a ~2GHz core; the same operation compiled to native
   code retires in under a nanosecond — the classic interpreter/JIT
   gap the paper's native configuration exploits. *)
let cpu_ns_per_instruction = 6.0
let native_ns_per_instruction = 0.75

let snapshot t : snapshot =
  {
    vm_instructions = t.vm_instructions;
    native_instructions = t.native_instructions;
    native_ns =
      float_of_int t.native_instructions *. native_ns_per_instruction;
    gpu_kernels = t.gpu_kernels;
    gpu_kernel_ns = t.gpu_kernel_ns;
    fpga_runs = t.fpga_runs;
    fpga_cycles = t.fpga_cycles;
    fpga_ns = t.fpga_ns;
    marshal = Wire.Boundary.stats t.boundary;
    marshal_native = Wire.Boundary.stats t.native_boundary;
    substitutions = List.rev t.substitutions;
    device_faults = t.device_faults;
    retries = t.retries;
    resubstitutions = t.resubstitutions;
    replans = t.replans;
    backoff_ns = t.backoff_ns;
    sched_runs = t.sched_runs;
    sched_steady = t.sched_steady;
    sched_fallbacks = t.sched_fallbacks;
    sched_rounds = t.sched_rounds;
    sched_steps = t.sched_steps;
    sched_blocked_steps = t.sched_blocked_steps;
    sched_cache_hits = t.sched_cache_hits;
  }

let reset t =
  t.vm_instructions <- 0;
  t.native_instructions <- 0;
  t.gpu_kernels <- 0;
  t.gpu_kernel_ns <- 0.0;
  t.fpga_runs <- 0;
  t.fpga_cycles <- 0;
  t.fpga_ns <- 0.0;
  Wire.Boundary.reset_stats t.boundary;
  Wire.Boundary.reset_stats t.native_boundary;
  t.substitutions <- [];
  t.device_faults <- 0;
  t.retries <- 0;
  t.resubstitutions <- 0;
  t.replans <- 0;
  t.backoff_ns <- 0.0;
  t.sched_runs <- 0;
  t.sched_steady <- 0;
  t.sched_fallbacks <- 0;
  t.sched_rounds <- 0;
  t.sched_steps <- 0;
  t.sched_blocked_steps <- 0;
  t.sched_cache_hits <- 0

(* --- snapshot presentation -------------------------------------------- *)

(* Callers used to hand-format snapshot fields; these are the one
   shared pretty-printer and JSON form (lmc --profile, tooling). *)

let pp_boundary ppf (name, (b : Wire.Boundary.stats)) =
  Format.fprintf ppf
    "@[%-8s %d+%d crossing(s), %d+%d byte(s) to device+host, %.1f us \
     modeled@]"
    name b.crossings_to_device b.crossings_to_host b.bytes_to_device
    b.bytes_to_host
    (b.modeled_transfer_ns /. 1000.0)

let pp ppf (s : snapshot) =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "vm:       %d instruction(s)@," s.vm_instructions;
  Format.fprintf ppf "native:   %d instruction(s), %.1f us modeled@,"
    s.native_instructions (s.native_ns /. 1000.0);
  Format.fprintf ppf "gpu:      %d kernel(s), %.1f us modeled@," s.gpu_kernels
    (s.gpu_kernel_ns /. 1000.0);
  Format.fprintf ppf "fpga:     %d run(s), %d cycle(s), %.1f us modeled@,"
    s.fpga_runs s.fpga_cycles (s.fpga_ns /. 1000.0);
  Format.fprintf ppf "%a@," pp_boundary ("pcie", s.marshal);
  Format.fprintf ppf "%a@," pp_boundary ("jni", s.marshal_native);
  Format.fprintf ppf
    "faults:   %d fault(s), %d retry(s), %d resubstitution(s), %.1f us \
     backoff@,"
    s.device_faults s.retries s.resubstitutions (s.backoff_ns /. 1000.0);
  Format.fprintf ppf "replans:  %d online re-plan(s)@," s.replans;
  Format.fprintf ppf
    "sched:    %d run(s) (%d steady, %d fallback(s)), %d round(s), %d \
     step(s), %d blocked, %d cached schedule(s)@,"
    s.sched_runs s.sched_steady s.sched_fallbacks s.sched_rounds s.sched_steps
    s.sched_blocked_steps s.sched_cache_hits;
  Format.fprintf ppf "substitutions: %s"
    (if s.substitutions = [] then "none"
     else
       String.concat ", "
         (List.map
            (fun (uid, d) -> uid ^ " -> " ^ Artifact.device_name d)
            s.substitutions));
  Format.fprintf ppf "@]"

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let boundary_json (b : Wire.Boundary.stats) =
  Printf.sprintf
    "{\"crossings_to_device\":%d,\"crossings_to_host\":%d,\"bytes_to_device\":%d,\"bytes_to_host\":%d,\"modeled_transfer_ns\":%.1f}"
    b.crossings_to_device b.crossings_to_host b.bytes_to_device
    b.bytes_to_host b.modeled_transfer_ns

let to_json (s : snapshot) =
  Printf.sprintf
    "{\"vm_instructions\":%d,\"native_instructions\":%d,\"native_ns\":%.1f,\"gpu_kernels\":%d,\"gpu_kernel_ns\":%.1f,\"fpga_runs\":%d,\"fpga_cycles\":%d,\"fpga_ns\":%.1f,\"marshal\":%s,\"marshal_native\":%s,\"device_faults\":%d,\"retries\":%d,\"resubstitutions\":%d,\"replans\":%d,\"backoff_ns\":%.1f,\"sched\":{\"runs\":%d,\"steady\":%d,\"fallbacks\":%d,\"rounds\":%d,\"steps\":%d,\"blocked_steps\":%d,\"cache_hits\":%d},\"substitutions\":[%s]}"
    s.vm_instructions s.native_instructions s.native_ns s.gpu_kernels
    s.gpu_kernel_ns s.fpga_runs s.fpga_cycles s.fpga_ns
    (boundary_json s.marshal)
    (boundary_json s.marshal_native)
    s.device_faults s.retries s.resubstitutions s.replans s.backoff_ns
    s.sched_runs s.sched_steady s.sched_fallbacks s.sched_rounds s.sched_steps
    s.sched_blocked_steps s.sched_cache_hits
    (String.concat ","
       (List.map
          (fun (uid, d) ->
            Printf.sprintf "{\"uid\":\"%s\",\"device\":\"%s\"}"
              (json_escape uid)
              (Artifact.device_name d))
          s.substitutions))

let modeled_cpu_ns t = float_of_int t.vm_instructions *. cpu_ns_per_instruction

let modeled_accelerator_ns t =
  t.gpu_kernel_ns +. t.fpga_ns
  +. (float_of_int t.native_instructions *. native_ns_per_instruction)
  +. (Wire.Boundary.stats t.boundary).modeled_transfer_ns
  +. (Wire.Boundary.stats t.native_boundary).modeled_transfer_ns
